// fifo.h — first-in-first-out cache (future-work ablation baseline).
#pragma once

#include <deque>
#include <unordered_map>

#include "cache/cache.h"

namespace spindown::cache {

class FifoCache final : public FileCache {
public:
  explicit FifoCache(util::Bytes capacity);

  bool access(workload::FileId id, util::Bytes size) override;
  bool contains(workload::FileId id) const override;

  util::Bytes capacity() const override { return capacity_; }
  util::Bytes used() const override { return used_; }
  std::size_t entries() const override { return sizes_.size(); }
  const CacheStats& stats() const override { return stats_; }
  std::string name() const override { return "fifo"; }

private:
  void evict_one();

  util::Bytes capacity_;
  util::Bytes used_ = 0;
  std::deque<workload::FileId> order_; // front = oldest
  // Lookup only — never iterated; eviction order is defined by order_.
  std::unordered_map<workload::FileId, util::Bytes> sizes_;
  CacheStats stats_;
};

} // namespace spindown::cache
