#include "cache/lru.h"

#include <cassert>

namespace spindown::cache {

LruCache::LruCache(util::Bytes capacity) : capacity_(capacity) {}

bool LruCache::access(workload::FileId id, util::Bytes size) {
  if (const auto it = index_.find(id); it != index_.end()) {
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second); // move to front
    return true;
  }
  ++stats_.misses;
  if (size > capacity_) return false; // never admissible
  while (used_ + size > capacity_) evict_one();
  order_.push_front(Entry{id, size});
  index_[id] = order_.begin();
  used_ += size;
  return false;
}

bool LruCache::contains(workload::FileId id) const {
  return index_.contains(id);
}

void LruCache::evict_one() {
  assert(!order_.empty());
  const Entry& victim = order_.back();
  used_ -= victim.size;
  index_.erase(victim.id);
  order_.pop_back();
  ++stats_.evictions;
}

} // namespace spindown::cache
