// cache.h — byte-capacity whole-file caches in front of the disk farm.
//
// §5.1 places a 16 GB LRU cache before the dispatcher ("RND+LRU",
// "Pack_Disk4+LRU" in Figures 5/6) and reports a 5.6% hit ratio on the NERSC
// workload.  The conclusions list cache policy as future work, so FIFO and
// LFU variants are provided for the ablation bench.
//
// Semantics: whole files only (the paper's requests fetch whole files); a
// file larger than the capacity is never admitted; admission happens on
// miss (demand caching), evicting per policy until the file fits.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t accesses() const { return hits + misses; }
  double hit_ratio() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(accesses());
  }
};

class FileCache {
public:
  virtual ~FileCache() = default;

  /// Record an access: returns true on hit.  On miss the file is admitted
  /// (unless larger than capacity), evicting victims per policy.
  virtual bool access(workload::FileId id, util::Bytes size) = 0;

  /// Presence check without side effects.
  virtual bool contains(workload::FileId id) const = 0;

  virtual util::Bytes capacity() const = 0;
  virtual util::Bytes used() const = 0;
  virtual std::size_t entries() const = 0;

  virtual const CacheStats& stats() const = 0;
  virtual std::string name() const = 0;
};

} // namespace spindown::cache
