#include "cache/lfu.h"

#include <cassert>

namespace spindown::cache {

LfuCache::LfuCache(util::Bytes capacity) : capacity_(capacity) {}

bool LfuCache::access(workload::FileId id, util::Bytes size) {
  ++clock_;
  if (const auto it = entries_.find(id); it != entries_.end()) {
    ++stats_.hits;
    victim_order_.erase({{it->second.freq, it->second.last_touch}, id});
    ++it->second.freq;
    it->second.last_touch = clock_;
    victim_order_.insert({{it->second.freq, it->second.last_touch}, id});
    return true;
  }
  ++stats_.misses;
  if (size > capacity_) return false;
  while (used_ + size > capacity_) evict_one();
  Entry e{size, 1, clock_};
  entries_[id] = e;
  victim_order_.insert({{e.freq, e.last_touch}, id});
  used_ += size;
  return false;
}

bool LfuCache::contains(workload::FileId id) const {
  return entries_.contains(id);
}

std::uint64_t LfuCache::frequency(workload::FileId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.freq;
}

void LfuCache::evict_one() {
  assert(!victim_order_.empty());
  const auto [key, id] = *victim_order_.begin();
  victim_order_.erase(victim_order_.begin());
  const auto it = entries_.find(id);
  used_ -= it->second.size;
  entries_.erase(it);
  ++stats_.evictions;
}

} // namespace spindown::cache
