#include "cache/fifo.h"

#include <cassert>

namespace spindown::cache {

FifoCache::FifoCache(util::Bytes capacity) : capacity_(capacity) {}

bool FifoCache::access(workload::FileId id, util::Bytes size) {
  if (sizes_.contains(id)) {
    ++stats_.hits; // FIFO order is insertion order: no promotion on hit
    return true;
  }
  ++stats_.misses;
  if (size > capacity_) return false;
  while (used_ + size > capacity_) evict_one();
  order_.push_back(id);
  sizes_[id] = size;
  used_ += size;
  return false;
}

bool FifoCache::contains(workload::FileId id) const {
  return sizes_.contains(id);
}

void FifoCache::evict_one() {
  assert(!order_.empty());
  const auto victim = order_.front();
  order_.pop_front();
  const auto it = sizes_.find(victim);
  used_ -= it->second;
  sizes_.erase(it);
  ++stats_.evictions;
}

} // namespace spindown::cache
