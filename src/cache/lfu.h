// lfu.h — least-frequently-used cache with LRU tie-breaking (ablation).
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "cache/cache.h"

namespace spindown::cache {

class LfuCache final : public FileCache {
public:
  explicit LfuCache(util::Bytes capacity);

  bool access(workload::FileId id, util::Bytes size) override;
  bool contains(workload::FileId id) const override;

  util::Bytes capacity() const override { return capacity_; }
  util::Bytes used() const override { return used_; }
  std::size_t entries() const override { return entries_.size(); }
  const CacheStats& stats() const override { return stats_; }
  std::string name() const override { return "lfu"; }

  /// Access frequency recorded for a resident file (0 if absent); exposed
  /// for tests.
  std::uint64_t frequency(workload::FileId id) const;

private:
  struct Entry {
    util::Bytes size = 0;
    std::uint64_t freq = 0;
    std::uint64_t last_touch = 0; ///< logical clock for LRU tie-break
  };
  /// Victim order: smallest (freq, last_touch) first.
  using Key = std::pair<std::uint64_t, std::uint64_t>; // (freq, last_touch)

  void evict_one();

  util::Bytes capacity_;
  util::Bytes used_ = 0;
  std::uint64_t clock_ = 0;
  // Lookup only — never iterated; victim selection walks victim_order_,
  // whose std::set ordering is deterministic.
  std::unordered_map<workload::FileId, Entry> entries_;
  std::set<std::pair<Key, workload::FileId>> victim_order_;
  CacheStats stats_;
};

} // namespace spindown::cache
