// lru.h — least-recently-used cache (the paper's §5.1 configuration).
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.h"

namespace spindown::cache {

class LruCache final : public FileCache {
public:
  explicit LruCache(util::Bytes capacity);

  bool access(workload::FileId id, util::Bytes size) override;
  bool contains(workload::FileId id) const override;

  util::Bytes capacity() const override { return capacity_; }
  util::Bytes used() const override { return used_; }
  std::size_t entries() const override { return index_.size(); }
  const CacheStats& stats() const override { return stats_; }
  std::string name() const override { return "lru"; }

private:
  struct Entry {
    workload::FileId id;
    util::Bytes size;
  };

  void evict_one();

  util::Bytes capacity_;
  util::Bytes used_ = 0;
  // Front = most recently used.
  std::list<Entry> order_;
  // Lookup only — never iterated; eviction order is defined by order_.
  std::unordered_map<workload::FileId, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

} // namespace spindown::cache
