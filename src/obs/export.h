// export.h — trace serialization: Chrome trace_event JSON and JSONL.
//
// Both writers are deterministic functions of the RunTrace: fixed field
// order, fixed number formatting (%.17g round-trips every double), no
// wall-clock or environment input.  That is what makes the shard-count
// byte-identity check possible at the file level: equal RunTrace in, equal
// bytes out.
//
// Chrome format (load in Perfetto or chrome://tracing):
//   * pid 0 "sim" — one thread (track) per disk plus a "dispatcher" track;
//     spans are async b/e pairs keyed by request id, lifecycle edges and
//     policy decisions are thread-scoped instants, power states are "X"
//     slices whose duration runs to the next transition (or the horizon).
//   * counter tracks (queued / in_flight / spun_down) aggregated from the
//     sampled metrics across the farm.
//   * pid 1 "pipeline" — wall-clock stage slices (router fill, ring wait,
//     worker replay), one thread per lane; present only when profiling was
//     enabled, so sim-time-only traces stay shard-invariant byte-for-byte.
//
// JSONL format: one meta line, then one JSON object per event in canonical
// order (profile events last, marked "wall": true).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace.h"

namespace spindown::obs {

void write_chrome_trace(const RunTrace& trace, std::ostream& os);
void write_jsonl_trace(const RunTrace& trace, std::ostream& os);

/// Write `trace` to `path`; ".jsonl" selects JSONL, anything else Chrome
/// JSON.  Returns false if the file cannot be written.
bool write_trace_file(const std::string& path, const RunTrace& trace);

} // namespace spindown::obs
