// trace.h — deterministic trace events and per-shard buffers.
//
// The observability layer records three families of *sim-time* events
// (request-lifecycle spans, power-state transitions, policy decisions), one
// family of sampled metrics, and one family of *wall-clock* pipeline
// profiling samples.  The sim-time families obey the same determinism
// contract as RunResult: the canonical event stream is bit-identical at any
// shard count, because
//
//   * every track (one per disk, plus one dispatcher track) is written by
//     exactly one single-threaded owner, in sim-time order, and
//   * the canonical merge concatenates the per-shard buffers and stable-
//     sorts by track rank only (dispatcher first, then disks ascending), so
//     per-track emission order — which is shard-invariant — is preserved.
//
// Wall-clock profiling samples are kept in a separate stream (RunTrace::
// profile) and are explicitly excluded from the identity contract.
//
// The disabled path is a branch on a null pointer: components hold a
// `TraceBuffer*` that is nullptr unless the scenario enabled tracing, so
// `obs=off` adds no allocations and no measurable work to the hot path.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace spindown::obs {

/// Event families.  Each can be enabled independently through the
/// ObsSpec/`obs=` scenario key; TraceBuffer::wants() tests the bit.
enum class Kind : std::uint8_t {
  kSpan = 0,    ///< request lifecycle edge
  kPower = 1,   ///< Disk::enter() power-state transition
  kPolicy = 2,  ///< spin-down policy decision
  kMetric = 3,  ///< sampled gauge (queue depth, power state)
  kProfile = 4, ///< wall-clock pipeline stage timer (non-deterministic)
};
inline constexpr std::size_t kKindCount = 5;

constexpr std::uint32_t kind_bit(Kind k) {
  return 1u << static_cast<unsigned>(k);
}

/// Span edge codes (TraceEvent::code when kind == kSpan).
inline constexpr std::uint8_t kSpanSubmit = 0;    ///< arrived at the disk
inline constexpr std::uint8_t kSpanEnqueue = 1;   ///< entered the scheduler
inline constexpr std::uint8_t kSpanPosition = 2;  ///< batch began positioning
inline constexpr std::uint8_t kSpanTransfer = 3;  ///< transfer started
inline constexpr std::uint8_t kSpanComplete = 4;  ///< completion delivered
inline constexpr std::uint8_t kSpanCacheHit = 5;  ///< absorbed by the cache
inline constexpr std::uint8_t kSpanCacheMiss = 6; ///< forwarded to a disk
inline constexpr std::uint8_t kSpanRedirect = 7; ///< read routed to a
                                                 ///< replica (value=chosen
                                                 ///< disk, aux=primary)

/// Policy decision codes (kind == kPolicy).  Codes 0-3 are per-disk
/// spin-down decisions on the disk's own track; 4-6 are fleet-orchestration
/// decisions on the dispatcher track (src/orch/).
inline constexpr std::uint8_t kPolicyTimerArmed = 0;  ///< finite timeout
inline constexpr std::uint8_t kPolicyStayIdle = 1;    ///< nullopt: no timer
inline constexpr std::uint8_t kPolicySpinDownNow = 2; ///< timeout <= 0
inline constexpr std::uint8_t kPolicyThresholdFired = 3; ///< timer expired
inline constexpr std::uint8_t kPolicyOffload = 4; ///< write absorbed by a log
                                                  ///< disk (value=log disk,
                                                  ///< aux=sleeping target)
inline constexpr std::uint8_t kPolicyDestage = 5; ///< buffered writes flushed
                                                  ///< to their home disk
                                                  ///< (value=target disk,
                                                  ///< aux=batch size)
inline constexpr std::uint8_t kPolicyBudget = 6;  ///< sleep budget recomputed
                                                  ///< (value=awake quota,
                                                  ///< aux=arrival-rate est.)

/// Metric gauge codes (kind == kMetric).
inline constexpr std::uint8_t kMetricQueueDepth = 0; ///< value=queued,
                                                     ///< aux=in_service
inline constexpr std::uint8_t kMetricPowerState = 1; ///< value=state index,
                                                     ///< aux=served total

/// Pipeline stage codes (kind == kProfile; wall-clock).
inline constexpr std::uint8_t kProfRouterFill = 0;   ///< router fills a window
inline constexpr std::uint8_t kProfRingWait = 1;     ///< worker waits on ring
inline constexpr std::uint8_t kProfWorkerReplay = 2; ///< worker replays batch

/// Track id for events not owned by a disk (dispatcher / router decisions).
/// Ranked before disk 0 in the canonical order, mirroring partials[0].
inline constexpr std::uint32_t kDispatcherTrack = 0xffffffffu;

/// One trace record.  40 bytes, trivially copyable; the exact-field equality
/// is what the shard bit-identity tests compare.
struct TraceEvent {
  double t = 0.0;         ///< sim-time seconds (profile: wall-clock offset)
  std::uint64_t id = 0;   ///< request id / window index / 0
  double value = 0.0;     ///< primary payload (code-specific)
  double aux = 0.0;       ///< secondary payload (code-specific)
  std::uint32_t track = 0;
  Kind kind = Kind::kSpan;
  std::uint8_t code = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Single-writer event buffer.  Each shard worker (and the dispatcher or
/// router) appends to its own buffer, so the hot path takes no lock; the
/// canonical merge happens once, after the run.
class TraceBuffer {
public:
  explicit TraceBuffer(std::uint32_t kind_mask) : mask_(kind_mask) {}

  /// Cheap filter the emit sites test before building an event.
  bool wants(Kind k) const { return (mask_ & kind_bit(k)) != 0; }
  std::uint32_t mask() const { return mask_; }

  void emit(Kind kind, std::uint8_t code, double t, std::uint32_t track,
            std::uint64_t id, double value = 0.0, double aux = 0.0) {
    events_.push_back(TraceEvent{t, id, value, aux, track, kind, code});
  }

  /// Pre-size the buffer so steady-state tracing stays allocation-free
  /// (the alloc-count regression traces into a reserved buffer).
  void reserve(std::size_t n) { events_.reserve(n); }

  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent>& events() { return events_; }

private:
  std::uint32_t mask_;
  std::vector<TraceEvent> events_;
};

/// A whole run's trace.  `events` is the canonical sim-time stream
/// (dispatcher track first, then disks in id order; per-track order is
/// emission order, i.e. non-decreasing sim time).  `profile` carries the
/// wall-clock pipeline samples and is excluded from the determinism
/// contract; `shards`/`workers` describe the pipeline shape and are only
/// meaningful when `profile` is non-empty.
struct RunTrace {
  std::vector<TraceEvent> events;
  std::vector<TraceEvent> profile;
  double horizon_s = 0.0;
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
};

/// Canonical-order sort key: dispatcher track ranks before every disk.
inline std::uint64_t track_rank(std::uint32_t track) {
  return track == kDispatcherTrack ? 0 : std::uint64_t{track} + 1;
}

/// Append `buffers`' events to `out` in canonical order.  Stable on the
/// concatenation, sorting by track rank only — each track lives in exactly
/// one buffer, so per-track emission order survives regardless of how disks
/// were grouped into shards.
void append_canonical(std::vector<TraceEvent>& out,
                      std::span<TraceBuffer* const> buffers);

/// Name tables for the exporters and JSONL stream.
std::string_view kind_name(Kind k);
std::string_view code_name(Kind k, std::uint8_t code);

} // namespace spindown::obs
