#include "obs/sampler.h"

#include "disk/disk.h"

namespace spindown::obs {

void MetricsSampler::start() {
  if (trace_ == nullptr || !trace_->wants(Kind::kMetric)) return;
  if (interval_ <= 0.0 || horizon_ <= 0.0 || disks_.empty()) return;
  const double first = interval_ * static_cast<double>(next_k_);
  if (first >= horizon_) return; // ticks stay strictly inside the horizon
  sim_.schedule_at(first, [this] { tick(); });
}

void MetricsSampler::tick() {
  ++ticks_;
  const double t = sim_.now();
  for (const disk::Disk* d : disks_) {
    trace_->emit(Kind::kMetric, kMetricQueueDepth, t, d->id(), 0,
                 static_cast<double>(d->queue_length()),
                 static_cast<double>(d->in_service_count()));
    trace_->emit(Kind::kMetric, kMetricPowerState, t, d->id(), 0,
                 static_cast<double>(static_cast<unsigned>(d->state())),
                 static_cast<double>(d->served_count()));
  }
  ++next_k_;
  const double next = interval_ * static_cast<double>(next_k_);
  if (next < horizon_) sim_.schedule_at(next, [this] { tick(); });
}

} // namespace spindown::obs
