// profile.h — the one place the repo may read a wall clock.
//
// Pipeline profiling (FleetPerf, ShardPerf, the kProfile trace stream)
// measures *host* execution time, which is inherently nondeterministic and
// never feeds back into simulation results.  Concentrating the clock here
// keeps the determinism story auditable: the linter's `obs` rule rejects
// wall-clock reads (even waived ones) anywhere else in src/, so a stray
// timestamp cannot leak into result-affecting code unnoticed.
#pragma once

#include <chrono>

namespace spindown::obs {

/// Monotonic host clock for pipeline stage timing only.
// DETERMINISM-OK(wall-clock): profiling-only clock; sole sanctioned site.
using ProfileClock = std::chrono::steady_clock;

/// Seconds elapsed since `t0` on the profiling clock.
inline double seconds_since(ProfileClock::time_point t0) {
  return std::chrono::duration<double>(ProfileClock::now() - t0).count();
}

} // namespace spindown::obs
