// sampler.h — sim-time metrics sampling into the trace stream.
//
// A MetricsSampler schedules itself at t = k * interval (k = 1, 2, ...,
// strictly below the horizon) on the calendar that owns its disks and emits
// two gauges per disk per tick:
//
//   kMetricQueueDepth  value = scheduler queue length, aux = in-service
//   kMetricPowerState  value = power-state index,      aux = served total
//
// Determinism: the sampler is read-only, so it cannot perturb physical
// results — and tick timestamps are computed as k * interval (never
// accumulated), so the sampled timeline is identical whether the disk lives
// on the single calendar or on any shard's calendar.  The tick events it
// adds to the calendar are subtracted from the run's executed-event count by
// the callers, so `RunResult::events` matches the untraced run exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "des/simulation.h"
#include "obs/trace.h"

namespace spindown::disk {
class Disk;
}

namespace spindown::obs {

class MetricsSampler {
public:
  /// `trace` may be null or lack kMetric; start() is then a no-op.
  MetricsSampler(des::Simulation& sim, double interval_s, double horizon_s,
                 TraceBuffer* trace)
      : sim_(sim), interval_(interval_s), horizon_(horizon_s), trace_(trace) {}

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Register a disk to sample.  All registrations must precede start().
  void add_disk(const disk::Disk* d) { disks_.push_back(d); }

  /// Schedule the first tick (at `interval`, if below the horizon).
  void start();

  /// Ticks executed so far — the number of calendar events this sampler
  /// consumed, for the callers' executed-count correction.
  std::uint64_t ticks() const { return ticks_; }

private:
  void tick();

  des::Simulation& sim_;
  double interval_;
  double horizon_;
  TraceBuffer* trace_;
  std::vector<const disk::Disk*> disks_;
  std::uint64_t next_k_ = 1;
  std::uint64_t ticks_ = 0;
};

} // namespace spindown::obs
