#include "obs/trace.h"

#include <algorithm>

#include "disk/power.h"

namespace spindown::obs {

void append_canonical(std::vector<TraceEvent>& out,
                      std::span<TraceBuffer* const> buffers) {
  std::size_t total = 0;
  for (const TraceBuffer* b : buffers) {
    if (b != nullptr) total += b->size();
  }
  const std::size_t base = out.size();
  out.reserve(base + total);
  for (const TraceBuffer* b : buffers) {
    if (b == nullptr) continue;
    out.insert(out.end(), b->events().begin(), b->events().end());
  }
  std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return track_rank(a.track) < track_rank(b.track);
                   });
}

std::string_view kind_name(Kind k) {
  switch (k) {
    case Kind::kSpan: return "span";
    case Kind::kPower: return "power";
    case Kind::kPolicy: return "policy";
    case Kind::kMetric: return "metric";
    case Kind::kProfile: return "profile";
  }
  return "unknown";
}

std::string_view code_name(Kind k, std::uint8_t code) {
  switch (k) {
    case Kind::kSpan:
      switch (code) {
        case kSpanSubmit: return "submit";
        case kSpanEnqueue: return "enqueue";
        case kSpanPosition: return "position";
        case kSpanTransfer: return "transfer";
        case kSpanComplete: return "complete";
        case kSpanCacheHit: return "cache_hit";
        case kSpanCacheMiss: return "cache_miss";
        case kSpanRedirect: return "redirect";
        default: break;
      }
      break;
    case Kind::kPower:
      if (code < disk::kPowerStateCount) {
        return to_string(static_cast<disk::PowerState>(code));
      }
      break;
    case Kind::kPolicy:
      switch (code) {
        case kPolicyTimerArmed: return "timer_armed";
        case kPolicyStayIdle: return "stay_idle";
        case kPolicySpinDownNow: return "spin_down_now";
        case kPolicyThresholdFired: return "threshold_fired";
        case kPolicyOffload: return "offload";
        case kPolicyDestage: return "destage";
        case kPolicyBudget: return "budget";
        default: break;
      }
      break;
    case Kind::kMetric:
      switch (code) {
        case kMetricQueueDepth: return "queue_depth";
        case kMetricPowerState: return "power_state";
        default: break;
      }
      break;
    case Kind::kProfile:
      switch (code) {
        case kProfRouterFill: return "router_fill";
        case kProfRingWait: return "ring_wait";
        case kProfWorkerReplay: return "worker_replay";
        default: break;
      }
      break;
  }
  return "unknown";
}

} // namespace spindown::obs
