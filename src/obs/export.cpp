#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <string>

#include "disk/power.h"

namespace spindown::obs {
namespace {

constexpr std::uint32_t kCounterTid = 0xfffffffeu;

/// %.17g round-trips every finite double, so the byte stream is a pure
/// function of the event values.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

/// Comma-separated JSON array element writer.
class Emitter {
public:
  explicit Emitter(std::ostream& os) : os_(os) {}
  void item(const std::string& json) {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << json;
  }

private:
  std::ostream& os_;
  bool first_ = true;
};

std::string track_label(std::uint32_t track) {
  if (track == kDispatcherTrack) return "dispatcher";
  return "disk " + fmt_u64(track);
}

/// One farm-wide counter sample, folded from the per-disk metric gauges.
struct CounterRow {
  double queued = 0.0;
  double in_flight = 0.0;
  double spun_down = 0.0;
};

void emit_metadata(Emitter& out, const RunTrace& trace) {
  out.item(R"({"ph":"M","pid":0,"tid":0,"name":"process_name",)"
           R"("args":{"name":"sim"}})");
  std::uint32_t last_track = 0;
  bool have_track = false;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == Kind::kMetric) continue; // folded into counter tracks
    if (have_track && e.track == last_track) continue;
    last_track = e.track;
    have_track = true;
    out.item(R"({"ph":"M","pid":0,"tid":)" + fmt_u64(e.track) +
             R"(,"name":"thread_name","args":{"name":")" +
             track_label(e.track) + R"("}})");
  }
  bool any_metric = false;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == Kind::kMetric) {
      any_metric = true;
      break;
    }
  }
  if (any_metric) {
    out.item(R"({"ph":"M","pid":0,"tid":)" + fmt_u64(kCounterTid) +
             R"(,"name":"thread_name","args":{"name":"counters"}})");
  }
  if (!trace.profile.empty()) {
    out.item(R"({"ph":"M","pid":1,"tid":0,"name":"process_name",)"
             R"("args":{"name":"pipeline ()" + fmt_u64(trace.shards) +
             " shards, " + fmt_u64(trace.workers) +
             R"x( workers)"}})x");
    std::map<std::uint32_t, bool> lanes;
    for (const TraceEvent& e : trace.profile) lanes[e.track] = true;
    for (const auto& [lane, unused] : lanes) {
      (void)unused;
      const std::string name =
          lane == kDispatcherTrack ? "router" : "shard " + fmt_u64(lane);
      out.item(R"({"ph":"M","pid":1,"tid":)" + fmt_u64(lane) +
               R"(,"name":"thread_name","args":{"name":")" + name + R"("}})");
    }
  }
}

void emit_sim_events(Emitter& out, const RunTrace& trace,
                     std::map<double, CounterRow>& counters) {
  const auto& ev = trace.events;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    const TraceEvent& e = ev[i];
    const std::string ts = fmt(e.t * 1e6);
    const std::string tid = fmt_u64(e.track);
    const std::string name{code_name(e.kind, e.code)};
    switch (e.kind) {
      case Kind::kSpan:
        if (e.code == kSpanSubmit) {
          out.item(R"({"ph":"b","cat":"request","name":"request","id":)" +
                   fmt_u64(e.id) + R"(,"pid":0,"tid":)" + tid + R"(,"ts":)" +
                   ts + R"(,"args":{"bytes":)" + fmt(e.value) + "}}");
        } else if (e.code == kSpanComplete) {
          out.item(R"({"ph":"e","cat":"request","name":"request","id":)" +
                   fmt_u64(e.id) + R"(,"pid":0,"tid":)" + tid + R"(,"ts":)" +
                   ts + R"(,"args":{"response_s":)" + fmt(e.value) +
                   R"(,"wait_s":)" + fmt(e.aux) + "}}");
        } else {
          out.item(R"({"ph":"i","s":"t","cat":"request","name":")" + name +
                   R"(","pid":0,"tid":)" + tid + R"(,"ts":)" + ts +
                   R"(,"args":{"id":)" + fmt_u64(e.id) + R"(,"value":)" +
                   fmt(e.value) + "}}");
        }
        break;
      case Kind::kPower: {
        double dur = trace.horizon_s > e.t ? trace.horizon_s - e.t : 0.0;
        for (std::size_t j = i + 1; j < ev.size() && ev[j].track == e.track;
             ++j) {
          if (ev[j].kind == Kind::kPower) {
            dur = ev[j].t - e.t;
            break;
          }
        }
        const std::uint8_t from = static_cast<std::uint8_t>(e.value);
        out.item(R"({"ph":"X","cat":"power","name":")" + name +
                 R"(","pid":0,"tid":)" + tid + R"(,"ts":)" + ts +
                 R"(,"dur":)" + fmt(dur * 1e6) + R"(,"args":{"from":")" +
                 std::string{code_name(Kind::kPower, from)} + R"("}})");
        break;
      }
      case Kind::kPolicy:
        out.item(R"({"ph":"i","s":"t","cat":"policy","name":")" + name +
                 R"(","pid":0,"tid":)" + tid + R"(,"ts":)" + ts +
                 R"(,"args":{"timeout_s":)" + fmt(e.value) +
                 R"(,"estimate":)" + fmt(e.aux) + "}}");
        break;
      case Kind::kMetric: {
        CounterRow& row = counters[e.t];
        if (e.code == kMetricQueueDepth) {
          row.queued += e.value;
          row.in_flight += e.value + e.aux;
        } else if (e.code == kMetricPowerState) {
          row.spun_down +=
              e.value ==
                      static_cast<double>(static_cast<unsigned>(
                          disk::PowerState::kStandby))
                  ? 1.0
                  : 0.0;
        }
        break;
      }
      case Kind::kProfile:
        break; // lives in trace.profile, not the canonical stream
    }
  }
}

void emit_counters(Emitter& out,
                   const std::map<double, CounterRow>& counters) {
  for (const auto& [t, row] : counters) {
    const std::string ts = fmt(t * 1e6);
    const std::string head =
        R"({"ph":"C","pid":0,"tid":)" + fmt_u64(kCounterTid) + R"(,"ts":)" +
        ts;
    out.item(head + R"(,"name":"queued","args":{"queued":)" +
             fmt(row.queued) + "}}");
    out.item(head + R"(,"name":"in_flight","args":{"in_flight":)" +
             fmt(row.in_flight) + "}}");
    out.item(head + R"(,"name":"spun_down","args":{"spun_down":)" +
             fmt(row.spun_down) + "}}");
  }
}

void emit_profile(Emitter& out, const RunTrace& trace) {
  for (const TraceEvent& e : trace.profile) {
    out.item(R"({"ph":"X","cat":"pipeline","name":")" +
             std::string{code_name(Kind::kProfile, e.code)} +
             R"(","pid":1,"tid":)" + fmt_u64(e.track) + R"(,"ts":)" +
             fmt(e.t * 1e6) + R"(,"dur":)" + fmt(e.value * 1e6) +
             R"(,"args":{"window":)" + fmt_u64(e.id) + "}}");
  }
}

void jsonl_event(std::ostream& os, const TraceEvent& e, bool wall) {
  const std::int64_t track =
      e.track == kDispatcherTrack ? -1 : static_cast<std::int64_t>(e.track);
  char track_buf[24];
  std::snprintf(track_buf, sizeof track_buf, "%" PRId64, track);
  os << R"({"t":)" << fmt(e.t) << R"(,"track":)" << track_buf
     << R"(,"kind":")" << kind_name(e.kind) << R"(","code":")"
     << code_name(e.kind, e.code) << R"(","id":)" << fmt_u64(e.id)
     << R"(,"value":)" << fmt(e.value) << R"(,"aux":)" << fmt(e.aux);
  if (wall) os << R"(,"wall":true)";
  os << "}\n";
}

} // namespace

void write_chrome_trace(const RunTrace& trace, std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  Emitter out{os};
  std::map<double, CounterRow> counters;
  emit_metadata(out, trace);
  emit_sim_events(out, trace, counters);
  emit_counters(out, counters);
  emit_profile(out, trace);
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_jsonl_trace(const RunTrace& trace, std::ostream& os) {
  os << R"({"format":"spindown-trace","version":1,"horizon_s":)"
     << fmt(trace.horizon_s);
  if (!trace.profile.empty()) {
    os << R"(,"shards":)" << fmt_u64(trace.shards) << R"(,"workers":)"
       << fmt_u64(trace.workers);
  }
  os << "}\n";
  for (const TraceEvent& e : trace.events) jsonl_event(os, e, false);
  for (const TraceEvent& e : trace.profile) jsonl_event(os, e, true);
}

bool write_trace_file(const std::string& path, const RunTrace& trace) {
  std::ofstream os{path, std::ios::binary};
  if (!os) return false;
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl) {
    write_jsonl_trace(trace, os);
  } else {
    write_chrome_trace(trace, os);
  }
  os.flush();
  return static_cast<bool>(os);
}

} // namespace spindown::obs
