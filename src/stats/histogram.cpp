#include "stats/histogram.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace spindown::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void LinearHistogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1; // float edge case
  counts_[idx] += weight;
}

void LinearHistogram::merge(const LinearHistogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument{
        "LinearHistogram::merge: geometry mismatch (lo/hi/bins must agree)"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double LinearHistogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double LinearHistogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double LinearHistogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  if (p <= 0.0) return lo_;
  if (p >= 100.0) return hi_;
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : log_lo_(std::log(lo)), log_hi_(std::log(hi)),
      log_width_((std::log(hi) - std::log(lo)) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(lo > 0.0 && hi > lo);
  assert(bins > 0);
}

void LogHistogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x <= 0.0) return; // non-positive values cannot be log-binned; dropped
  const double lx = std::log(x);
  if (lx < log_lo_) {
    counts_.front() += weight; // clamp into the edge bins
    return;
  }
  if (lx >= log_hi_) {
    counts_.back() += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((lx - log_lo_) / log_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  counts_[idx] += weight;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (log_lo_ != other.log_lo_ || log_hi_ != other.log_hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument{
        "LogHistogram::merge: geometry mismatch (lo/hi/bins must agree)"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return std::exp(log_lo_ + log_width_ * static_cast<double>(i));
}

double LogHistogram::bin_hi(std::size_t i) const {
  return std::exp(log_lo_ + log_width_ * static_cast<double>(i + 1));
}

double LogHistogram::bin_mid(std::size_t i) const {
  return std::exp(log_lo_ + log_width_ * (static_cast<double>(i) + 0.5));
}

std::uint64_t LogHistogram::binned() const {
  std::uint64_t n = 0;
  for (auto c : counts_) n += c;
  return n;
}

double LogHistogram::mean() const {
  const std::uint64_t n = binned();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    sum += static_cast<double>(counts_[i]) * bin_mid(i);
  }
  return sum / static_cast<double>(n);
}

double LogHistogram::percentile(double p) const {
  const std::uint64_t n = binned();
  if (n == 0) return 0.0;
  if (p <= 0.0) return bin_lo(0);
  if (p >= 100.0) return bin_hi(counts_.size() - 1);
  const double target = p / 100.0 * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return std::exp(log_lo_ +
                      log_width_ * (static_cast<double>(i) + frac));
    }
    cum = next;
  }
  return bin_hi(counts_.size() - 1);
}

std::vector<double> LogHistogram::proportions() const {
  std::vector<double> out;
  if (total_ == 0) return out;
  out.reserve(counts_.size());
  for (auto c : counts_) {
    out.push_back(static_cast<double>(c) / static_cast<double>(total_));
  }
  return out;
}

} // namespace spindown::stats
