// welford.h — numerically stable streaming mean / variance / extrema.
//
// Response-time series from long simulations (hundreds of thousands of
// requests) are accumulated online; Welford's algorithm avoids the
// catastrophic cancellation of the naive sum-of-squares approach.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace spindown::stats {

class Welford {
public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merge another accumulator (Chan et al. parallel formula); used when
  /// per-thread accumulators are combined after a parallel sweep.
  void merge(const Welford& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    sum_ += other.sum_;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }

  /// Population variance; 0 with fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const { return std::sqrt(variance()); }

  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace spindown::stats
