// histogram.h — fixed-bin histograms with percentile estimation.
//
// Two binning schemes:
//   * LinearHistogram — equal-width bins over [lo, hi); under/overflow bins.
//   * LogHistogram    — log-spaced bins, used to reproduce the paper's
//     80-bin file-size classification of the NERSC workload (§5.1).
#pragma once

#include <cstdint>
#include <vector>

namespace spindown::stats {

class LinearHistogram {
public:
  /// [lo, hi) split into `bins` equal cells, plus underflow and overflow.
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  /// Exact bin-wise accumulation of `other` (identical geometry required;
  /// throws std::invalid_argument otherwise).  Integer adds commute, so the
  /// merged histogram is independent of merge order — the property the
  /// sharded-simulation aggregation relies on.
  void merge(const LinearHistogram& other);

  std::uint64_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Percentile estimate by linear interpolation inside the containing bin.
  /// Underflow clamps to lo, overflow to hi.  p in [0,100].
  double percentile(double p) const;

private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

class LogHistogram {
public:
  /// Log-spaced bins covering [lo, hi); lo must be > 0.
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  /// Exact bin-wise accumulation of `other` (identical geometry required;
  /// throws std::invalid_argument otherwise).  Order-independent.
  void merge(const LogHistogram& other);

  std::uint64_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }

  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Geometric midpoint of bin i (natural x-coordinate on a log axis).
  double bin_mid(std::size_t i) const;

  /// Samples that actually landed in a bin: add() drops non-positive
  /// values from the bins while still counting them in total(), so the
  /// summary statistics below use this as their denominator.
  std::uint64_t binned() const;
  /// Mean estimated from geometric bin midpoints over the binned mass
  /// (0 when no binned samples).
  double mean() const;
  /// Percentile estimate by log-linear interpolation inside the containing
  /// bin, over the binned mass.  p in [0,100]; 0 when no binned samples.
  double percentile(double p) const;

  /// Fraction of the total in each bin (empty vector if no samples).
  std::vector<double> proportions() const;

private:
  double log_lo_, log_hi_, log_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

} // namespace spindown::stats
