// summary.h — the response-time summary reported by every experiment.
#pragma once

#include <string>

#include "stats/histogram.h"
#include "stats/welford.h"

namespace spindown::stats {

/// Streaming summary of a response-time series: moments plus a histogram for
/// percentiles.  The histogram range covers everything a single request can
/// plausibly take in our model (sub-second cache hits through multi-minute
/// queue + spin-up + 20 GB transfers).
class ResponseSummary {
public:
  ResponseSummary();

  void add(double seconds);
  void merge(const ResponseSummary& other);

  std::uint64_t count() const { return moments_.count(); }
  double mean() const { return moments_.mean(); }
  double stddev() const { return moments_.stddev(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  double p50() const { return hist_.percentile(50.0); }
  double p95() const { return hist_.percentile(95.0); }
  double p99() const { return hist_.percentile(99.0); }

  /// One-line report, e.g. "n=115832 mean=7.3s p95=24.1s max=312s".
  std::string brief() const;

private:
  Welford moments_;
  LinearHistogram hist_;
};

} // namespace spindown::stats
