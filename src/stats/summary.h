// summary.h — the response-time summary reported by every experiment.
#pragma once

#include <string>

#include "stats/histogram.h"
#include "stats/welford.h"

namespace spindown::stats {

/// Streaming summary of a response-time series: moments plus a histogram for
/// percentiles.  The histogram range covers everything a single request can
/// plausibly take in our model (sub-second cache hits through multi-minute
/// queue + spin-up + 20 GB transfers).
class ResponseSummary {
public:
  /// Canonical histogram geometry: 0..2000 s in 0.1 s cells — fine enough
  /// for sub-second percentiles, wide enough that only pathological runs
  /// overflow (overflow still counted).  Every ResponseSummary shares it,
  /// which is what makes merge() exact.
  static constexpr double kHistLo = 0.0;
  static constexpr double kHistHi = 2000.0;
  static constexpr std::size_t kHistBins = 20000;

  ResponseSummary();

  void add(double seconds);
  /// Exact merge: moments via Chan's parallel formula, histogram bin-wise
  /// (no midpoint re-binning — under/overflow and every cell carry over
  /// exactly).  Note the moment combine is floating-point-order-dependent;
  /// aggregation paths that must be bitwise reproducible across shardings
  /// rebuild via from_parts() from per-disk accumulators instead.
  void merge(const ResponseSummary& other);

  /// Assemble a summary from separately accumulated parts — the sharded
  /// simulation's canonical aggregation: moments folded in disk-id order,
  /// histograms merged bin-wise.  `hist` must use the canonical geometry.
  static ResponseSummary from_parts(const Welford& moments,
                                    const LinearHistogram& hist);

  const Welford& moments() const { return moments_; }
  const LinearHistogram& histogram() const { return hist_; }

  std::uint64_t count() const { return moments_.count(); }
  double mean() const { return moments_.mean(); }
  double stddev() const { return moments_.stddev(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  double p50() const { return hist_.percentile(50.0); }
  double p95() const { return hist_.percentile(95.0); }
  double p99() const { return hist_.percentile(99.0); }

  /// One-line report, e.g. "n=115832 mean=7.3s p95=24.1s max=312s".
  std::string brief() const;

private:
  Welford moments_;
  LinearHistogram hist_;
};

} // namespace spindown::stats
