// time_weighted.h — time-in-state accounting.
//
// Power is integrated as sum(P(state) * time_in_state); this accumulator
// tracks how long a subject (a disk) spends in each discrete state.  State
// changes are reported with the simulation clock; durations are attributed to
// the *previous* state, which is exactly the semantics of a state machine
// transition trace.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>

namespace spindown::stats {

/// E: scoped enum whose underlying values are 0..N-1.
template <typename E, std::size_t N>
class TimeWeighted {
public:
  explicit TimeWeighted(E initial, double t0 = 0.0)
      : current_(initial), last_change_(t0), start_(t0) {}

  /// Record a transition at time `now`.  `now` must be monotone.
  void transition(double now, E next) {
    assert(now >= last_change_);
    times_[index(current_)] += now - last_change_;
    current_ = next;
    last_change_ = now;
  }

  /// Attribute the open interval [last_change, now) without changing state.
  /// Call before reading totals at the end of a run.
  void flush(double now) {
    assert(now >= last_change_);
    times_[index(current_)] += now - last_change_;
    last_change_ = now;
  }

  E current() const { return current_; }
  double time_in(E state) const { return times_[index(state)]; }
  double elapsed() const { return last_change_ - start_; }

  double total() const {
    double t = 0.0;
    for (double v : times_) t += v;
    return t;
  }

private:
  static std::size_t index(E e) {
    const auto i = static_cast<std::size_t>(e);
    assert(i < N);
    return i;
  }

  std::array<double, N> times_{};
  E current_;
  double last_change_;
  double start_;
};

} // namespace spindown::stats
