#include "stats/summary.h"

#include <stdexcept>

#include "util/units.h"

namespace spindown::stats {

ResponseSummary::ResponseSummary() : hist_(kHistLo, kHistHi, kHistBins) {}

void ResponseSummary::add(double seconds) {
  moments_.add(seconds);
  hist_.add(seconds);
}

void ResponseSummary::merge(const ResponseSummary& other) {
  moments_.merge(other.moments_);
  hist_.merge(other.hist_);
}

ResponseSummary ResponseSummary::from_parts(const Welford& moments,
                                            const LinearHistogram& hist) {
  ResponseSummary out;
  if (hist.lo() != kHistLo || hist.hi() != kHistHi ||
      hist.bins() != kHistBins) {
    throw std::invalid_argument{
        "ResponseSummary::from_parts: histogram must use the canonical "
        "geometry (kHistLo/kHistHi/kHistBins)"};
  }
  if (moments.count() != hist.total()) {
    throw std::invalid_argument{
        "ResponseSummary::from_parts: moments and histogram disagree on the "
        "sample count"};
  }
  out.moments_ = moments;
  out.hist_ = hist;
  return out;
}

std::string ResponseSummary::brief() const {
  using util::format_double;
  return "n=" + std::to_string(count()) +
         " mean=" + format_double(mean(), 3) + "s" +
         " p50=" + format_double(p50(), 3) + "s" +
         " p95=" + format_double(p95(), 3) + "s" +
         " max=" + format_double(max(), 3) + "s";
}

} // namespace spindown::stats
