#include "stats/summary.h"

#include "util/units.h"

namespace spindown::stats {

// 0..2000 s in 0.1 s cells: fine enough for sub-second percentiles, wide
// enough that only pathological runs overflow (overflow still counted).
ResponseSummary::ResponseSummary() : hist_(0.0, 2000.0, 20000) {}

void ResponseSummary::add(double seconds) {
  moments_.add(seconds);
  hist_.add(seconds);
}

void ResponseSummary::merge(const ResponseSummary& other) {
  moments_.merge(other.moments_);
  for (std::size_t i = 0; i < other.hist_.bins(); ++i) {
    if (const auto c = other.hist_.bin_count(i); c > 0) {
      hist_.add((other.hist_.bin_lo(i) + other.hist_.bin_hi(i)) / 2.0, c);
    }
  }
}

std::string ResponseSummary::brief() const {
  using util::format_double;
  return "n=" + std::to_string(count()) +
         " mean=" + format_double(mean(), 3) + "s" +
         " p50=" + format_double(p50(), 3) + "s" +
         " p95=" + format_double(p95(), 3) + "s" +
         " max=" + format_double(max(), 3) + "s";
}

} // namespace spindown::stats
