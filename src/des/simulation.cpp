#include "des/simulation.h"

#include <cassert>
#include <stdexcept>

namespace spindown::des {

std::uint32_t Simulation::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = nodes_[slot].next_free;
    return slot;
  }
  if (nodes_.size() > kSlotMask) {
    throw std::length_error{
        "Simulation: more than 2^24 concurrently pending events"};
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Simulation::recycle(std::uint32_t slot) {
  Node& n = nodes_[slot];
  n.fn.reset();
  // Bump the generation so handles to the old occupant stop matching; skip
  // 0, which is reserved for inert handles.
  if (++n.generation == 0) n.generation = 1;
  n.state = NodeState::kFree;
  n.next_free = free_head_;
  free_head_ = slot;
}

EventHandle Simulation::schedule_at(SimTime t, Callback fn) {
  if (t < now_) throw std::invalid_argument{"schedule_at: time in the past"};
  if (next_seq_ > kMaxSeq) {
    throw std::length_error{
        "Simulation: event sequence space exhausted (2^40 events)"};
  }
  const std::uint32_t slot = acquire_slot();
  Node& n = nodes_[slot];
  n.fn = std::move(fn);
  n.state = NodeState::kScheduled;
  const std::uint32_t generation = n.generation;
  // The push's move observer records the key's settling position in
  // n.heap_index (it writes through the slab, never resizes it).
  queue_.push(Key{t, (next_seq_++ << 24) | slot});
  ++live_;
  return EventHandle{slot, generation};
}

EventHandle Simulation::schedule_in(SimTime delay, Callback fn) {
  if (delay < 0.0) throw std::invalid_argument{"schedule_in: negative delay"};
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= nodes_.size()) return false;
  Node& n = nodes_[h.slot_];
  if (n.state != NodeState::kScheduled || n.generation != h.generation_) {
    return false;
  }
  // Remove the key in place (the node knows where it sits) and recycle the
  // slot immediately; the calendar never carries dead entries.
  const Key removed = queue_.remove_at(n.heap_index);
  assert(removed.slot() == h.slot_);
  (void)removed;
  recycle(h.slot_);
  --live_;
  return true;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  const Key key = queue_.pop();
  const std::uint32_t slot = key.slot();
  Node& n = nodes_[slot];
  assert(n.state == NodeState::kScheduled);
  assert(key.time >= now_);
  now_ = key.time;
  // Move the callback out and recycle the slot *before* firing, so the
  // callback may schedule new events (possibly into this very slot, or
  // growing the slab) freely.
  Callback fn = std::move(n.fn);
  recycle(slot);
  --live_;
  ++executed_;
  fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
  }
  if (t > now_) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::reserve(std::size_t events) {
  nodes_.reserve(events);
  queue_.reserve(events);
}

} // namespace spindown::des
