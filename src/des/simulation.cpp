#include "des/simulation.h"

#include <cassert>
#include <stdexcept>

namespace spindown::des {

EventHandle Simulation::schedule_at(SimTime t, Callback fn) {
  if (t < now_) throw std::invalid_argument{"schedule_at: time in the past"};
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, std::move(fn)});
  return EventHandle{id};
}

EventHandle Simulation::schedule_in(SimTime delay, Callback fn) {
  if (delay < 0.0) throw std::invalid_argument{"schedule_in: negative delay"};
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventHandle h) {
  if (!h.valid() || h.id_ >= next_id_) return false;
  // Lazy deletion: remember the id; the entry is dropped when it surfaces.
  // Ids are unique per event, so a stale id (cancel after execution) sits in
  // the set harmlessly; callers clear their handles to avoid creating them.
  return cancelled_.insert(h.id_).second;
}

void Simulation::prune_cancelled() {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Simulation::step() {
  prune_cancelled();
  if (queue_.empty()) return false;
  // priority_queue has no non-const pop-and-move; the const_cast is the
  // standard idiom and safe because the entry is popped immediately after.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  assert(e.time >= now_);
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  for (;;) {
    prune_cancelled();
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  if (t > now_) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

} // namespace spindown::des
