#include "des/resource.h"

#include <stdexcept>

namespace spindown::des {

Resource::Resource(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument{"Resource capacity must be > 0"};
  }
}

void Resource::enqueue(Simulation& sim, Callback fn) {
  if (in_use_ < capacity_ && waiters_.empty()) {
    ++in_use_;
    sim.schedule_in(0.0, std::move(fn));
  } else {
    waiters_.push_back(std::move(fn));
  }
}

void Resource::release(Simulation& sim) {
  if (in_use_ == 0) throw std::logic_error{"Resource::release without acquire"};
  if (!waiters_.empty()) {
    // Hand the slot straight to the next waiter: in_use_ is unchanged.
    auto fn = std::move(waiters_.front());
    waiters_.pop_front();
    sim.schedule_in(0.0, std::move(fn));
  } else {
    --in_use_;
  }
}

} // namespace spindown::des
