// simulation.h — discrete-event simulation kernel.
//
// This is the C++ substitute for the SimPy environment the paper's original
// study used.  The kernel is a classic event calendar:
//
//   * events are (time, sequence) pairs with a callback; ties in time are
//     broken by insertion order, so runs are fully deterministic,
//   * scheduling returns a handle that can cancel the event (used by the
//     disk's idleness timer, which is disarmed whenever a request arrives),
//   * on top of the callback core, process.h adds SimPy-style coroutine
//     processes (`co_await sim.delay(t)`).
//
// The kernel is intentionally single-threaded: determinism and simplicity
// beat parallelism at this scale (a 720-hour NERSC replay is ~10^6 events).
// Parallelism lives one level up, in sys/sweep.h, which runs independent
// experiment configurations on a thread pool.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace spindown::des {

using SimTime = double;
using Callback = std::function<void()>;

/// Identifies a scheduled event for cancellation.  Default-constructed
/// handles are inert ("no event").
class EventHandle {
public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

private:
  friend class Simulation;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulation {
public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation clock (seconds).
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now).
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, Callback fn);

  /// Cancel a pending event.  Returns false if the event already ran, was
  /// already cancelled, or the handle is inert.  Cancellation is O(1)
  /// (lazy deletion: the entry is skipped when popped).
  bool cancel(EventHandle h);

  /// Run a single event.  Returns false if the calendar is empty.
  bool step();

  /// Run events until the calendar empties or the next event is past `t`;
  /// the clock is then advanced to exactly `t`.
  void run_until(SimTime t);

  /// Drain the calendar completely.
  void run();

  /// Number of pending events, net of cancellations that have not yet been
  /// pruned (an upper bound equal to the true count in the common case where
  /// every cancelled id is still in the queue).
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Total events executed so far (for tests and engine statistics).
  std::uint64_t executed() const { return executed_; }

private:
  struct Entry {
    SimTime time;
    std::uint64_t seq; // tie-breaker: FIFO among same-time events
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drop cancelled entries sitting at the head of the calendar.
  void prune_cancelled();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1; // 0 is the inert handle
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

} // namespace spindown::des
