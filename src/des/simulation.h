// simulation.h — discrete-event simulation kernel.
//
// This is the C++ substitute for the SimPy environment the paper's original
// study used.  The kernel is a pooled event calendar built for throughput
// (every figure is a parameter sweep over millions of events, so events/sec
// multiplies everything):
//
//   * events are (time, sequence) pairs with a callback; ties in time are
//     broken by insertion order, so runs are fully deterministic,
//   * event nodes live in a slab recycled through a free list, callbacks are
//     InlineFunctions (64-byte small-buffer storage), and the calendar is a
//     4-ary min-heap of 16-byte (time, seq|slot) keys — so the steady-state
//     schedule -> fire -> recycle cycle performs zero heap allocations,
//   * scheduling returns a generation-counted handle for cancellation (used
//     by the disk's idleness timer, which is disarmed whenever a request
//     arrives).  Cancellation removes the calendar key eagerly — each node
//     tracks its key's heap position via the heap's move observer — so the
//     calendar only ever holds live events; since a not-yet-due timer sits
//     in a leaf, removal is O(1) in practice.  A stale handle — already
//     fired, already cancelled, or its slot since reused — can never cancel
//     anything,
//   * on top of the callback core, process.h adds SimPy-style coroutine
//     processes (`co_await sim.delay(t)`).
//
// The kernel is intentionally single-threaded: determinism and simplicity
// beat parallelism at this scale (a 720-hour NERSC replay is ~10^6 events).
// Parallelism lives one level up, in sys/sweep.h, which runs independent
// experiment configurations on a thread pool.
//
// Capacity bounds (both enforced with a clear throw, both far beyond any
// simulated experiment): at most 2^24 (16.7M) concurrently pending events,
// and at most 2^40 (~1.1e12) scheduled events per Simulation lifetime — the
// calendar key packs (sequence, slot) into one 64-bit word so the FIFO
// tie-break costs a single integer compare.
//
// bench/engine_throughput.cpp measures this kernel against the previous
// std::priority_queue + std::function + unordered_set design and records
// the baseline in BENCH_engine.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/binary_heap.h"
#include "util/inline_function.h"

namespace spindown::des {

using SimTime = double;

/// Scheduled-event callback.  The 64-byte inline buffer covers every capture
/// in the simulator's hot path (a `this` pointer, a coroutine handle, or a
/// by-value Request); larger captures still work but heap-allocate.
using Callback = util::InlineFunction<void(), 64>;

/// Identifies a scheduled event for cancellation.  Default-constructed
/// handles are inert ("no event").  A handle is a (slot, generation) pair:
/// the slot's generation is bumped every time it is recycled, so a handle
/// kept past its event's execution or cancellation stops matching.  (The
/// generation is 32-bit: a handle hoarded across 2^32 reuses of one slot
/// would match again; callers clear or overwrite handles long before that.)
class EventHandle {
public:
  EventHandle() = default;
  bool valid() const { return generation_ != 0; }

private:
  friend class Simulation;
  EventHandle(std::uint32_t slot, std::uint32_t generation)
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0; // 0 is the inert handle
};

class Simulation {
public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation clock (seconds).
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now).
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, Callback fn);

  /// Cancel a pending event: the callback (and its captures) is destroyed
  /// and the calendar key removed immediately.  O(heap depth) worst case,
  /// O(1) in practice (a not-yet-due event's key sits in a heap leaf).
  /// Returns false if the event already ran, was already cancelled, or the
  /// handle is inert/stale.
  bool cancel(EventHandle h);

  /// Run a single event.  Returns false if the calendar is empty.
  bool step();

  /// Run events until the calendar empties or the next event is past `t`;
  /// the clock is then advanced to exactly `t`.
  void run_until(SimTime t);

  /// Drain the calendar completely.
  void run();

  /// Pre-size the node slab and calendar so the first `events` concurrently
  /// pending events never reallocate.
  void reserve(std::size_t events);

  /// Number of live pending events (scheduled, not yet run, not cancelled).
  /// Exact: cancellation decrements the count immediately and stale cancels
  /// are rejected, so the count can never wrap.
  std::size_t pending() const { return live_; }

  /// Total events executed so far (for tests and engine statistics).
  std::uint64_t executed() const { return executed_; }

  /// Slots currently allocated in the node slab (capacity telemetry).
  std::size_t slab_size() const { return nodes_.size(); }

private:
  enum class NodeState : std::uint8_t { kFree, kScheduled };

  /// One slab entry.  `generation` makes handles safe across slot reuse;
  /// `heap_index` is the position of this event's key in the calendar heap,
  /// kept current by the heap's move observer so cancel() can remove the
  /// key in place.
  struct Node {
    Callback fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    std::uint32_t heap_index = 0;
    NodeState state = NodeState::kFree;
  };

  /// Calendar key: 16 bytes so a 4-ary node's children pack into one cache
  /// line.  `packed` carries the FIFO tie-break sequence in its upper 40
  /// bits and the slab slot in its lower 24, so same-time keys order by
  /// insertion with a single integer compare — no slab probe in the
  /// comparator, which matters because same-time events (zero-delay grants,
  /// spawns, batched timers) are common.
  struct Key {
    SimTime time;
    std::uint64_t packed;

    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(packed & kSlotMask);
    }
  };
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.packed > b.packed;
    }
  };
  /// Heap move observer: records where each key settles so cancellation can
  /// find (and remove) it without searching.
  struct TrackIndex {
    std::vector<Node>* nodes;
    void operator()(const Key& k, std::size_t idx) const noexcept {
      (*nodes)[k.slot()].heap_index = static_cast<std::uint32_t>(idx);
    }
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint64_t kSlotMask = (1ull << 24) - 1;   // 16.7M slots
  static constexpr std::uint64_t kMaxSeq = (1ull << 40) - 1;     // ~1.1e12

  std::uint32_t acquire_slot();
  void recycle(std::uint32_t slot);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNoSlot;
  util::BinaryHeap<Key, Later, 4, TrackIndex> queue_{Later{},
                                                     TrackIndex{&nodes_}};
};

} // namespace spindown::des
