// process.h — SimPy-style coroutine processes on top of the event kernel.
//
// A Process is a C++20 coroutine that models an active entity:
//
//   des::Process customer(des::Simulation& sim, Disk& d) {
//     co_await des::delay(sim, 5.0);      // like SimPy's `yield env.timeout`
//     co_await d.queue().acquire(sim);    // FCFS resource (resource.h)
//     ...
//   }
//   des::spawn(sim, customer(sim, disk));
//
// Lifetime model: the coroutine frame owns itself once spawned.  Final
// suspend never suspends, so the frame is destroyed automatically when the
// body finishes; all awaitables schedule resumption through the Simulation
// calendar, so resumption order is exactly event order (deterministic).
// Resumption callbacks capture only the 8-byte coroutine handle, which the
// calendar stores inline — suspending and resuming never heap-allocates.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <vector>

#include "des/simulation.h"

namespace spindown::des {

/// Coroutine task type for simulation processes.  Processes are fire-and-
/// forget: spawn() hands the frame to the simulation and returns.
class Process {
public:
  struct promise_type {
    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    // Suspend at the start so spawn() controls when the body first runs.
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Never suspend at the end: the frame frees itself on completion.
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    [[noreturn]] void unhandled_exception() {
      // An escaping exception inside a simulation process is a model bug;
      // the simulation state is unrecoverable, so fail fast.
      std::terminate();
    }
  };

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&&) = delete;

  ~Process() {
    // Only reached if the process was never spawned.
    if (handle_) handle_.destroy();
  }

private:
  friend void spawn(Simulation& sim, Process p);
  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

/// Start a process: its body begins executing at the current simulation time
/// (as a scheduled event, not inline, so spawning inside a running event
/// keeps FIFO ordering).
inline void spawn(Simulation& sim, Process p) {
  const auto h = std::exchange(p.handle_, nullptr);
  sim.schedule_in(0.0, [h] { h.resume(); });
}

/// Awaitable: suspend the process for `dt` simulated seconds.
class DelayAwaiter {
public:
  DelayAwaiter(Simulation& sim, SimTime dt) : sim_(sim), dt_(dt) {}
  bool await_ready() const noexcept { return dt_ == 0.0; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.schedule_in(dt_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

private:
  Simulation& sim_;
  SimTime dt_;
};

inline DelayAwaiter delay(Simulation& sim, SimTime dt) { return {sim, dt}; }

/// One-shot broadcast event (SimPy's `Event`): processes wait, someone fires.
/// After firing, waits complete immediately.
class Trigger {
public:
  class Awaiter {
  public:
    Awaiter(Simulation& sim, Trigger& t) : sim_(sim), trigger_(t) {}
    bool await_ready() const noexcept { return trigger_.fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      trigger_.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}

  private:
    Simulation& sim_;
    Trigger& trigger_;
  };

  /// Awaitable that completes when fire() is called.
  Awaiter wait(Simulation& sim) { return Awaiter{sim, *this}; }

  /// Fire the trigger: all current waiters resume (in wait order) at the
  /// current simulation time.
  void fire(Simulation& sim) {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) {
      sim.schedule_in(0.0, [h] { h.resume(); });
    }
    waiters_.clear();
  }

  bool fired() const { return fired_; }

private:
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace spindown::des
