// resource.h — FCFS resource with fixed capacity (SimPy's `Resource`).
//
// A disk is capacity-1: requests queue in arrival order and are served one
// at a time.  Usable from coroutine processes (`co_await res.acquire(sim)`)
// and from callback code (`res.enqueue(sim, fn)`).
//
// Every grant — contended or not — is delivered as a scheduled event at the
// grant time.  That costs one calendar entry per acquisition but makes the
// ordering rules uniform: grants interleave with other same-time events in
// FIFO order, which keeps simulations deterministic.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>

#include "des/simulation.h"

namespace spindown::des {

class Resource {
public:
  explicit Resource(std::size_t capacity = 1);

  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

  /// Callback interface: run `fn` once a slot is free (immediately if one is
  /// free now).  The slot is held until release().  Grants use the same
  /// allocation-free Callback type as the calendar, so contended waits do
  /// not heap-allocate either.
  void enqueue(Simulation& sim, Callback fn);

  /// Release one slot; the longest-waiting requester (if any) receives it.
  void release(Simulation& sim);

  /// Coroutine interface: `co_await res.acquire(sim)` suspends until a slot
  /// is granted.  Pair with `res.release(sim)` when done.
  class Awaiter {
  public:
    Awaiter(Simulation& sim, Resource& res) : sim_(sim), res_(res) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      res_.enqueue(sim_, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}

  private:
    Simulation& sim_;
    Resource& res_;
  };

  Awaiter acquire(Simulation& sim) { return Awaiter{sim, *this}; }

private:
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<Callback> waiters_;
};

} // namespace spindown::des
