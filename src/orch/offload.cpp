#include "orch/offload.h"

#include <algorithm>
#include <stdexcept>

namespace spindown::orch {

WriteOffload::WriteOffload(std::uint32_t data_disks, std::uint32_t log_disks,
                           util::Bytes log_capacity, double deadline_s,
                           double horizon_s)
    : placer_(log_disks, log_capacity, core::FitRule::kBestFit),
      data_disks_(data_disks), log_disks_(log_disks),
      deadline_s_(deadline_s), horizon_s_(horizon_s),
      capacity_blocks_(std::max<std::uint64_t>(
          1, log_capacity / util::kBlockBytes)),
      by_disk_(data_disks), log_cursor_(log_disks, 0) {
  if (data_disks == 0 || log_disks == 0) {
    throw std::invalid_argument{
        "WriteOffload: need at least one data disk and one log disk"};
  }
  if (!(deadline_s > 0.0)) {
    throw std::invalid_argument{"WriteOffload: deadline must be positive"};
  }
}

std::optional<WriteOffload::LogCopy> WriteOffload::absorb(
    double t, std::uint64_t request_id, workload::FileId file,
    util::Bytes bytes, std::uint64_t blocks, std::uint64_t target_lba,
    std::uint32_t target) {
  // Every log disk is always-on, so the spinning-aware placer degenerates
  // to best-fit over free buffer space — exactly §1.1's write rule.
  const std::vector<bool> spinning(log_disks_, true);
  const auto local = placer_.place(bytes, spinning);
  if (!local.has_value()) return std::nullopt;

  PendingWrite p;
  // The horizon cap keeps deadlines monotone (t is non-decreasing) *and*
  // guarantees the tier drains inside the measurement window.
  p.deadline = std::min(t + deadline_s_, horizon_s_);
  p.target = target;
  p.log_disk = data_disks_ + *local;
  p.file = file;
  p.request_id = request_id;
  p.bytes = bytes;
  p.target_lba = target_lba;
  p.log_lba = log_cursor_[*local];
  p.blocks = blocks;
  log_cursor_[*local] = (log_cursor_[*local] + blocks) % capacity_blocks_;

  const std::size_t index = pending_.size();
  pending_.push_back(p);
  done_.push_back(false);
  by_disk_[target].push_back(index);
  latest_[file] = index; // newer write shadows an older pending copy
  ++buffered_;
  return LogCopy{p.log_disk, p.log_lba};
}

std::optional<WriteOffload::LogCopy> WriteOffload::log_copy(
    workload::FileId file) const {
  const auto it = latest_.find(file);
  if (it == latest_.end()) return std::nullopt;
  const PendingWrite& p = pending_[it->second];
  return LogCopy{p.log_disk, p.log_lba};
}

bool WriteOffload::has_pending(std::uint32_t target) const {
  if (target >= by_disk_.size()) return false;
  // Deadline drains scrub per-disk indices lazily, so the list may hold
  // settled entries: pending means at least one *live* one.
  for (const std::size_t index : by_disk_[target]) {
    if (!done_[index]) return true;
  }
  return false;
}

void WriteOffload::settle(std::size_t index, std::vector<PendingWrite>& out) {
  const PendingWrite& p = pending_[index];
  placer_.release(p.log_disk - data_disks_, p.bytes);
  const auto it = latest_.find(p.file);
  if (it != latest_.end() && it->second == index) latest_.erase(it);
  done_[index] = true;
  ++destaged_;
  out.push_back(p);
}

void WriteOffload::drain_disk(std::uint32_t target,
                              std::vector<PendingWrite>& out) {
  if (target >= by_disk_.size()) return;
  for (const std::size_t index : by_disk_[target]) {
    if (!done_[index]) settle(index, out);
  }
  by_disk_[target].clear();
}

void WriteOffload::drain_due(double t, std::vector<PendingWrite>& out) {
  // Deadlines are non-decreasing in insertion order (monotone t, constant
  // deadline_s, horizon cap), so "everything due" is a prefix.
  while (head_ < pending_.size()) {
    if (done_[head_]) {
      ++head_;
      continue;
    }
    const PendingWrite& p = pending_[head_];
    if (p.deadline > t) break;
    // Settle, then scrub the stale index from the per-disk list lazily:
    // done_ entries are skipped by drain_disk.
    settle(head_, out);
    ++head_;
  }
}

} // namespace spindown::orch
