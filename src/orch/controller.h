// controller.h — fleet power orchestration behind one interface.
//
// The per-disk spin-down policies (src/disk/, src/adapt/) are greedy local
// actors: each spindle watches its own idle gaps and pays its own spin-ups.
// The orchestration layer adds the coordination the paper's trade-off
// analysis calls for at farm scale — *which* disk serves a request is a
// fleet decision, and making it power-aware buys sleep time the local
// policies cannot create on their own.  Three mechanisms compose behind
// FleetController:
//
//   * replica-aware read redirection — with `replicas=k`, each file has k
//     copies (replica r of file f on disk (mapping[f] + r*stride) % D,
//     stride = max(1, D/k)); a read routes to whichever replica the
//     controller predicts is spun up, deterministic tie-break by lowest
//     disk id, so a cold replica's disk can stay asleep;
//   * write off-loading — writes aimed at a sleeping disk detour to the
//     always-on log tier and destage later (orch/offload.h);
//   * global SLO sleep budget — an awake-disk quota from the fleet arrival
//     estimate and a streaming p99 (orch/budget.h); redirection prefers
//     replicas inside the awake prefix {0..quota-1}, concentrating load so
//     the disks outside it sleep through.
//
// The controller is a *deterministic stream rewriter*: it lives in the
// fleet router (src/sys/fleet.cpp), sees every post-cache arrival in global
// arrival order, and rewrites each into one foreground submission plus any
// triggered background destages.  It never reads simulator state — spin
// predictions come from its own busy_until service model — so its output
// is a pure function of the arrival stream and the run stays bit-identical
// at any shard count.  Decisions are traced onto the dispatcher track
// (obs::kSpanRedirect / kPolicyOffload / kPolicyDestage / kPolicyBudget).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "orch/budget.h"
#include "orch/offload.h"
#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::orch {

/// Which mechanisms are live and their knobs — a plain mirror of the
/// scenario-level sys::OrchSpec (src/orch/ sits below src/sys/ and cannot
/// include it), plus the fleet geometry the controller needs.
struct Config {
  bool redirect = false;
  bool offload = false;
  bool budget = false;
  std::uint32_t data_disks = 0; ///< disks [0, data_disks) hold the catalog
  std::uint32_t log_disks = 0;  ///< always-on tier at [data_disks, ...)
  std::uint32_t replicas = 1;   ///< k-way replication degree
  double destage_deadline_s = 600.0;
  double write_fraction = 0.2;  ///< share of requests classified as writes
  double slo_p99_s = 5.0;       ///< budget: p99 response SLO
  double horizon_s = 0.0;       ///< measurement window (caps deadlines)
  util::Bytes disk_capacity = 0; ///< per-disk bytes (log-tier buffer space)
  /// Request-weighted mean file size (catalog.mean_request_bytes()): sets
  /// the budget's per-disk service rate mu = 1 / service(mean bytes).
  double mean_request_bytes = 0.0;
};

/// The controller's model of one disk's service: enough physics to predict
/// "is this disk spinning" and "when would it finish this request" without
/// touching simulator state.  sleep_after_s is the per-disk policy's
/// predicted idle-to-spin-down delay (the break-even threshold for the
/// default policy, +inf for `never`).
struct ServiceModel {
  double position_s = 0.0;   ///< seek + rotation per request
  double transfer_bps = 1.0; ///< sustained transfer rate
  double spinup_s = 0.0;     ///< standby -> active latency
  double sleep_after_s = 0.0; ///< idle time before the policy spins down

  double service(util::Bytes bytes) const {
    return position_s + static_cast<double>(bytes) / transfer_bps;
  }
};

/// High bit tag on background (destage) request ids, keeping them disjoint
/// from every foreground id the workload generators hand out.
inline constexpr std::uint64_t kBackgroundIdBit = 1ULL << 63;

/// One rewritten submission the router ships to a shard.  `t` values are
/// non-decreasing across everything one controller emits, which is what
/// lets the router append them to the per-shard batches directly.
struct Submission {
  double t = 0.0;
  std::uint64_t request_id = 0;
  util::Bytes bytes = 0;
  std::uint64_t lba = 0;
  std::uint64_t blocks = 0;
  std::uint32_t disk = 0;
  bool background = false; ///< destage: excluded from foreground stats
};

/// Busy-horizon model of every disk in the fleet: busy_until[d] advances
/// with each routed submission, and a disk is predicted asleep once it has
/// been idle longer than the policy's sleep_after_s.  Log-tier disks
/// (id >= data_disks) never sleep.
class DiskModel {
public:
  DiskModel(std::uint32_t disks, std::uint32_t data_disks,
            const ServiceModel& model)
      : model_(model), busy_until_(disks, 0.0), data_disks_(data_disks) {}

  bool awake(std::uint32_t disk, double t) const {
    return disk >= data_disks_ ||
           t <= busy_until_[disk] + model_.sleep_after_s;
  }
  /// Predicted response: spin-up (if asleep) + queue drain + service.
  double predict_response(std::uint32_t disk, double t,
                          util::Bytes bytes) const {
    const double wake = awake(disk, t) ? 0.0 : model_.spinup_s;
    const double wait = std::max(0.0, busy_until_[disk] - t);
    return wake + wait + model_.service(bytes);
  }
  void on_submit(std::uint32_t disk, double t, util::Bytes bytes) {
    const double start = awake(disk, t)
                             ? std::max(busy_until_[disk], t)
                             : t + model_.spinup_s;
    busy_until_[disk] = start + model_.service(bytes);
  }

private:
  ServiceModel model_;
  std::vector<double> busy_until_;
  std::uint32_t data_disks_;
};

class FleetController {
public:
  /// `primary_mapping`/`primary_extents` are the scenario's replica-0
  /// layout (file id -> disk / extent); the controller derives the replica
  /// copies itself, continuing each disk's LBA cursor *after* the replica-0
  /// layout so the primary extents are untouched.  `trace` may be null.
  FleetController(const Config& config, const ServiceModel& model,
                  const std::vector<std::uint32_t>& primary_mapping,
                  const std::vector<workload::FileExtent>& primary_extents,
                  obs::TraceBuffer* trace);

  /// Rewrite one post-cache arrival (non-decreasing t) into submissions:
  /// exactly one foreground submission at time t, plus any background
  /// destages it triggers (also at t, appended after it).
  void route(double t, std::uint64_t id, const workload::FileInfo& file,
             std::vector<Submission>& out);

  /// Emit background destages for every buffered write whose deadline has
  /// passed (each at its own deadline time).  Call with the window frontier
  /// before routing an arrival at t >= frontier, and once with the horizon
  /// after the stream ends, so submission times stay globally monotone.
  void flush_deadlines(double t, std::vector<Submission>& out);

  /// Deterministic read/write classification: a splitmix64 hash of the
  /// request id against `fraction` — no RNG draws, so arrival streams are
  /// bit-identical with orchestration on or off.
  static bool classify_write(std::uint64_t id, double fraction);

  /// Replica disks of `file` (replica 0 = the primary; deduplicated, so
  /// size may be < k when the copies wrap onto the same disk).
  std::vector<std::uint32_t> replica_disks(workload::FileId file) const;

  std::uint32_t awake_quota() const;
  std::uint64_t redirects() const { return redirects_; }
  std::uint64_t offloads() const { return offloads_; }
  std::uint64_t destages() const { return destages_; }

private:
  struct Choice {
    std::uint32_t disk = 0;
    std::uint64_t lba = 0;
    std::uint64_t blocks = 0;
  };

  Choice pick_read_target(double t, const workload::FileInfo& file);
  void submit_foreground(double t, std::uint64_t id, util::Bytes bytes,
                         const Choice& c, std::vector<Submission>& out);
  void trigger_destage(double t, std::uint64_t id, std::uint32_t disk,
                       std::vector<Submission>& out);
  void emit_destage_subs(double t, const std::vector<PendingWrite>& batch,
                         std::vector<Submission>& out);

  Config cfg_;
  DiskModel model_;
  const std::vector<std::uint32_t>& mapping_;
  const std::vector<workload::FileExtent>& extents_;
  obs::TraceBuffer* trace_;
  std::unique_ptr<WriteOffload> offload_;
  std::unique_ptr<SleepBudget> budget_;
  // Replica copies r >= 1, flattened per file: replica_at_[offset_[f] .. ).
  std::vector<std::uint32_t> offset_;
  std::vector<std::uint32_t> replica_disk_;
  std::vector<workload::FileExtent> replica_extent_;
  std::vector<PendingWrite> drained_; ///< scratch, reused per call
  std::uint64_t redirects_ = 0;
  std::uint64_t offloads_ = 0;
  std::uint64_t destages_ = 0;
};

} // namespace spindown::orch
