#include "orch/budget.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spindown::orch {

std::uint32_t liu_min_awake(double lambda, double mu, double slo_s,
                            std::uint32_t disks) {
  if (disks == 0) return 0;
  const double drain = mu - std::log(100.0) / slo_s;
  if (drain <= 0.0) return disks; // SLO infeasible even for an idle disk
  if (lambda <= 0.0) return 1;
  const double m = std::ceil(lambda / drain);
  if (m >= static_cast<double>(disks)) return disks;
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(m));
}

SleepBudget::SleepBudget(std::uint32_t disks, double mu, double slo_s,
                         double epoch_s)
    : disks_(disks), mu_(mu), slo_s_(slo_s), epoch_s_(epoch_s),
      next_epoch_(epoch_s), quota_(disks),
      quantile_(/*percentile=*/99.0, /*gain=*/0.05) {
  if (disks == 0) {
    throw std::invalid_argument{"SleepBudget: need at least one disk"};
  }
  if (!(mu > 0.0) || !(slo_s > 0.0) || !(epoch_s > 0.0)) {
    throw std::invalid_argument{
        "SleepBudget: mu, slo and epoch must be positive"};
  }
}

std::optional<std::uint32_t> SleepBudget::maybe_recompute(double t) {
  if (t < next_epoch_) return std::nullopt;
  // One feedback step per crossed epoch: long idle stretches walk the quota
  // toward the closed-form m* one disk at a time, exactly as if the epochs
  // had been observed live.
  while (t >= next_epoch_) {
    recompute_once();
    next_epoch_ += epoch_s_;
    ++epochs_;
  }
  return quota_;
}

void SleepBudget::recompute_once() {
  const std::uint32_t target =
      liu_min_awake(rate_.rate(), mu_, slo_s_, disks_);
  const double p99 = quantile_.estimate();
  if (p99 > slo_s_) {
    // Measured tail over the SLO: the model underestimates; grow the awake
    // set regardless of what the closed form claims.
    quota_ = std::min(quota_ + 1, disks_);
  } else if (p99 < 0.5 * slo_s_ && quota_ > target) {
    // Comfortably inside the SLO and above the model's floor: release one
    // disk to the sleepable pool.
    --quota_;
  } else {
    quota_ = std::max(quota_, target);
  }
  quota_ = std::clamp<std::uint32_t>(quota_, 1, disks_);
}

} // namespace spindown::orch
