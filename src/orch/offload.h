// offload.h — write off-loading with deferred destage (fleet orchestration,
// mechanism 2).
//
// A write aimed at a sleeping data disk would force a spin-up for a request
// the client never waits on the placement of.  Instead, a small tier of
// always-on *log disks* (appended after the data disks, spin policy
// "never") absorbs the write: the foreground service happens on the log
// disk, a PendingWrite records the debt, and the buffered bytes are
// *destaged* to the home disk later as background I/O — either when the
// home disk next serves a foreground request (it is spinning anyway) or
// when the destage deadline expires, whichever comes first.  Until the
// destage lands, reads of an off-loaded file are routed to the log copy, so
// the freshest bytes are always the ones served.
//
// Placement on the log tier reuses core::WritePlacer (§1.1's spinning-aware
// best-fit — the log disks are all "spinning", so this degenerates to plain
// best-fit over free space), and destaging returns the bytes via
// WritePlacer::release.  Log-disk LBAs are handed out by a per-disk
// log-structured cursor that wraps at the disk's capacity.
//
// Determinism: deadlines are min(t + deadline_s, horizon), so with arrivals
// fed in non-decreasing t the pending queue is created in non-decreasing
// deadline order and drain_due() is a pop from the head — no ordering data
// structure, no ties to break.  The horizon cap guarantees every pending
// write destages inside the measurement window.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/write_policy.h"
#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::orch {

/// One buffered write: the debt owed to data disk `target`.
struct PendingWrite {
  double deadline = 0.0;         ///< latest destage time (<= horizon)
  std::uint32_t target = 0;      ///< home data disk
  std::uint32_t log_disk = 0;    ///< global id of the absorbing log disk
  workload::FileId file = 0;
  std::uint64_t request_id = 0;  ///< the foreground write's id
  util::Bytes bytes = 0;
  std::uint64_t target_lba = 0;  ///< home extent (destage destination)
  std::uint64_t log_lba = 0;     ///< log-cursor extent (reads until destage)
  std::uint64_t blocks = 0;
};

class WriteOffload {
public:
  /// Log disks occupy global ids [data_disks, data_disks + log_disks);
  /// each has `log_capacity` bytes of buffer space.  `horizon_s` caps every
  /// deadline so the tier drains inside the measurement window.
  WriteOffload(std::uint32_t data_disks, std::uint32_t log_disks,
               util::Bytes log_capacity, double deadline_s, double horizon_s);

  struct LogCopy {
    std::uint32_t log_disk = 0; ///< global disk id
    std::uint64_t log_lba = 0;
  };

  /// Buffer a write aimed at sleeping data disk `target`.  Returns the log
  /// placement, or nullopt when no log disk has room (the caller then
  /// writes through to the home disk).
  std::optional<LogCopy> absorb(double t, std::uint64_t request_id,
                                workload::FileId file, util::Bytes bytes,
                                std::uint64_t blocks,
                                std::uint64_t target_lba,
                                std::uint32_t target);

  /// Freshest buffered copy of `file`, if one is still pending.
  std::optional<LogCopy> log_copy(workload::FileId file) const;

  bool has_pending(std::uint32_t target) const;

  /// Move every live pending write owed to `target` into `out` (in
  /// buffering order) and settle the debt (release log space, forget the
  /// log copies).
  void drain_disk(std::uint32_t target, std::vector<PendingWrite>& out);

  /// As drain_disk, but for every pending write whose deadline is <= `t`,
  /// fleet-wide, in deadline order.
  void drain_due(double t, std::vector<PendingWrite>& out);

  std::uint64_t buffered() const { return buffered_; }
  std::uint64_t destaged() const { return destaged_; }
  std::uint64_t live() const { return buffered_ - destaged_; }

private:
  void settle(std::size_t index, std::vector<PendingWrite>& out);

  core::WritePlacer placer_; ///< indexed by log disk *local* id
  std::uint32_t data_disks_;
  std::uint32_t log_disks_;
  double deadline_s_;
  double horizon_s_;
  std::uint64_t capacity_blocks_;

  std::vector<PendingWrite> pending_; ///< append-only; head_ = oldest live
  std::vector<bool> done_;            ///< parallel to pending_
  std::size_t head_ = 0;
  std::vector<std::vector<std::size_t>> by_disk_;   ///< live, per data disk
  std::unordered_map<workload::FileId, std::size_t> latest_; ///< file -> idx
  std::vector<std::uint64_t> log_cursor_; ///< per log disk, blocks
  std::uint64_t buffered_ = 0;
  std::uint64_t destaged_ = 0;
};

} // namespace spindown::orch
