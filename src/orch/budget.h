// budget.h — the global SLO sleep budget (fleet orchestration, mechanism 3).
//
// The per-disk policies (src/disk/, src/adapt/) decide spin-downs from each
// spindle's private history; nothing stops every disk from sleeping at once
// and leaving the next burst to pay a fleet-wide spin-up storm.  SleepBudget
// adds the missing global view: it tracks the fleet arrival-rate estimate
// (adapt::RateEwma) and a streaming p99 of the controller's *predicted*
// response times (adapt::StreamingQuantile — the same estimators the
// per-disk SlackAwarePolicy learns from), and derives how many disks must
// stay awake to hold a p99 response-time SLO.
//
// The closed form is Liu et al.'s M/M/1 sizing: with per-disk service rate
// mu and fleet arrival rate lambda spread over m awake disks, the M/M/1 p99
// is -ln(0.01) / (mu - lambda/m), so the SLO holds iff
//
//     lambda / m  <=  mu - ln(100) / slo
//     m* = ceil(lambda / (mu - ln(100) / slo)),  clamped to [1, disks]
//
// (all disks must stay up when mu <= ln(100)/slo: even an idle server
// misses the SLO).  liu_min_awake() is that formula alone, so the unit test
// can validate it against the closed form directly.
//
// The live quota starts at `disks` (everything awake — the conservative
// state) and is recomputed once per epoch of simulated time: the measured
// p99 estimate corrects the model by +/-1 disk per epoch (over the SLO:
// grow the awake set; under half the SLO and above m*: shrink toward it).
// Everything here is a deterministic function of the observed arrival
// sequence, so the budget inherits the shard bit-identity contract.
#pragma once

#include <cstdint>
#include <optional>

#include "adapt/signals.h"

namespace spindown::orch {

/// Liu et al.'s closed-form minimum awake-disk count for a fleet arrival
/// rate `lambda` (req/s), per-disk service rate `mu` (req/s) and a p99
/// response-time SLO of `slo_s` seconds.  Returns `disks` (everything
/// awake) when the SLO is infeasible even for an unloaded disk, and at
/// least 1 otherwise (lambda <= 0 still keeps one disk up).
std::uint32_t liu_min_awake(double lambda, double mu, double slo_s,
                            std::uint32_t disks);

class SleepBudget {
public:
  /// `disks` = data-disk count the quota ranges over; `mu` = per-disk
  /// service rate (1 / mean service time); `slo_s` = p99 response SLO;
  /// `epoch_s` = how much sim time passes between quota recomputations.
  SleepBudget(std::uint32_t disks, double mu, double slo_s,
              double epoch_s = 60.0);

  /// Feed every foreground arrival (non-decreasing t).
  void observe_arrival(double t) { rate_.observe_arrival(t); }

  /// Feed the controller's predicted response for a routed request.
  void observe_response(double predicted_s) { quantile_.add(predicted_s); }

  /// Cross any epoch boundaries at or before `t`, applying one +/-1
  /// feedback step per epoch.  Returns the new quota when at least one
  /// boundary was crossed, nullopt otherwise.
  std::optional<std::uint32_t> maybe_recompute(double t);

  /// How many disks must currently stay awake ("the awake prefix").
  std::uint32_t quota() const { return quota_; }
  double arrival_rate() const { return rate_.rate(); }
  double p99_estimate() const { return quantile_.estimate(); }
  std::uint64_t epochs() const { return epochs_; }

private:
  void recompute_once();

  std::uint32_t disks_;
  double mu_;
  double slo_s_;
  double epoch_s_;
  double next_epoch_;
  std::uint32_t quota_;
  std::uint64_t epochs_ = 0;
  adapt::RateEwma rate_;
  adapt::StreamingQuantile quantile_;
};

} // namespace spindown::orch
