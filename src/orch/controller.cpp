#include "orch/controller.h"

#include <stdexcept>

namespace spindown::orch {

FleetController::FleetController(
    const Config& config, const ServiceModel& model,
    const std::vector<std::uint32_t>& primary_mapping,
    const std::vector<workload::FileExtent>& primary_extents,
    obs::TraceBuffer* trace)
    : cfg_(config),
      model_(config.data_disks + config.log_disks, config.data_disks, model),
      mapping_(primary_mapping), extents_(primary_extents), trace_(trace) {
  if (cfg_.data_disks == 0) {
    throw std::invalid_argument{"FleetController: need at least 1 data disk"};
  }
  if (mapping_.size() < extents_.size()) {
    throw std::invalid_argument{
        "FleetController: mapping smaller than the extent table"};
  }
  if (cfg_.offload) {
    if (cfg_.log_disks == 0) {
      throw std::invalid_argument{
          "FleetController: offload needs at least 1 log disk"};
    }
    offload_ = std::make_unique<WriteOffload>(
        cfg_.data_disks, cfg_.log_disks, cfg_.disk_capacity,
        cfg_.destage_deadline_s, cfg_.horizon_s);
  }
  if (cfg_.budget) {
    const double mu = 1.0 / model.service(static_cast<util::Bytes>(
                                cfg_.mean_request_bytes));
    budget_ = std::make_unique<SleepBudget>(cfg_.data_disks, mu,
                                            cfg_.slo_p99_s);
  }
  // Replica layout (copies r >= 1): each disk's LBA cursor continues where
  // the replica-0 layout ended, so the primary extents — and with them
  // every orchestration-off result — are byte-for-byte unchanged.
  if (cfg_.replicas > 1) {
    const std::uint32_t disks = cfg_.data_disks;
    const std::uint32_t stride =
        std::max<std::uint32_t>(1, disks / cfg_.replicas);
    std::vector<std::uint64_t> cursor(disks, 0);
    const std::size_t n = extents_.size();
    for (std::size_t f = 0; f < n; ++f) {
      auto& c = cursor[mapping_[f]];
      c = std::max(c, extents_[f].lba + extents_[f].blocks);
    }
    offset_.resize(n + 1, 0);
    for (std::size_t f = 0; f < n; ++f) {
      offset_[f] = static_cast<std::uint32_t>(replica_disk_.size());
      const std::uint32_t primary = mapping_[f];
      for (std::uint32_t r = 1; r < cfg_.replicas; ++r) {
        const std::uint32_t d = (primary + r * stride) % disks;
        bool dup = d == primary; // copies that wrap onto an existing
                                 // replica are dropped (k > distinct disks)
        for (std::size_t i = offset_[f]; !dup && i < replica_disk_.size();
             ++i) {
          dup = replica_disk_[i] == d;
        }
        if (dup) continue;
        replica_disk_.push_back(d);
        replica_extent_.push_back(
            workload::FileExtent{cursor[d], extents_[f].blocks});
        cursor[d] += extents_[f].blocks;
      }
    }
    offset_[n] = static_cast<std::uint32_t>(replica_disk_.size());
  }
}

bool FleetController::classify_write(std::uint64_t id, double fraction) {
  if (fraction <= 0.0) return false;
  // splitmix64 finalizer: a high-quality deterministic hash of the request
  // id — the workload generators' RNG streams are never touched.
  std::uint64_t x = id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < fraction;
}

std::vector<std::uint32_t> FleetController::replica_disks(
    workload::FileId file) const {
  std::vector<std::uint32_t> disks{mapping_[file]};
  if (!offset_.empty()) {
    for (std::uint32_t i = offset_[file]; i < offset_[file + 1]; ++i) {
      disks.push_back(replica_disk_[i]);
    }
  }
  return disks;
}

std::uint32_t FleetController::awake_quota() const {
  return budget_ != nullptr ? budget_->quota() : cfg_.data_disks;
}

void FleetController::route(double t, std::uint64_t id,
                            const workload::FileInfo& file,
                            std::vector<Submission>& out) {
  if (budget_ != nullptr) {
    budget_->observe_arrival(t);
    if (const auto quota = budget_->maybe_recompute(t)) {
      if (trace_ != nullptr && trace_->wants(obs::Kind::kPolicy)) {
        trace_->emit(obs::Kind::kPolicy, obs::kPolicyBudget, t,
                     obs::kDispatcherTrack, budget_->epochs(),
                     static_cast<double>(*quota), budget_->arrival_rate());
      }
    }
  }
  const std::uint32_t primary = mapping_[file.id];
  const auto& extent = extents_[file.id];

  if (offload_ != nullptr && classify_write(id, cfg_.write_fraction)) {
    // Writes target the primary copy only (the replicas are read-time
    // copies; keeping them in sync is the next reorganization's job).
    if (!model_.awake(primary, t)) {
      const auto copy = offload_->absorb(t, id, file.id, file.size,
                                         extent.blocks, extent.lba, primary);
      if (copy.has_value()) {
        ++offloads_;
        if (trace_ != nullptr && trace_->wants(obs::Kind::kPolicy)) {
          trace_->emit(obs::Kind::kPolicy, obs::kPolicyOffload, t,
                       obs::kDispatcherTrack, id,
                       static_cast<double>(copy->log_disk),
                       static_cast<double>(primary));
        }
        submit_foreground(
            t, id, file.size,
            Choice{copy->log_disk, copy->log_lba, extent.blocks}, out);
        return;
      }
    }
    // Awake primary (or a full log tier): write through — and since the
    // primary is spinning for this request anyway, settle its debt now.
    submit_foreground(t, id, file.size,
                      Choice{primary, extent.lba, extent.blocks}, out);
    trigger_destage(t, id, primary, out);
    return;
  }

  const Choice c = pick_read_target(t, file);
  if (c.disk != primary) {
    ++redirects_;
    if (trace_ != nullptr && trace_->wants(obs::Kind::kSpan)) {
      trace_->emit(obs::Kind::kSpan, obs::kSpanRedirect, t,
                   obs::kDispatcherTrack, id, static_cast<double>(c.disk),
                   static_cast<double>(primary));
    }
  }
  submit_foreground(t, id, file.size, c, out);
  if (c.disk < cfg_.data_disks) trigger_destage(t, id, c.disk, out);
}

FleetController::Choice FleetController::pick_read_target(
    double t, const workload::FileInfo& file) {
  const std::uint32_t primary = mapping_[file.id];
  const auto& extent = extents_[file.id];
  if (offload_ != nullptr) {
    if (const auto copy = offload_->log_copy(file.id)) {
      // The freshest bytes live on the log tier until the destage lands.
      return Choice{copy->log_disk, copy->log_lba, extent.blocks};
    }
  }
  if (!cfg_.redirect || offset_.empty()) {
    return Choice{primary, extent.lba, extent.blocks};
  }
  // Replica preference, all ties broken by lowest disk id: (1) a replica
  // the model predicts awake (no spin-up at all), else (2) a replica
  // inside the budget's awake prefix {0..quota-1} (wake a disk that must
  // stay up anyway), else (3) the lowest-id replica.
  const std::uint32_t quota = awake_quota();
  Choice awake_best, prefix_best, id_best;
  bool have_awake = false, have_prefix = false, have_id = false;
  const auto consider = [&](std::uint32_t d, std::uint64_t lba,
                            std::uint64_t blocks) {
    const Choice c{d, lba, blocks};
    if (!have_id || d < id_best.disk) {
      id_best = c;
      have_id = true;
    }
    if ((!have_awake || d < awake_best.disk) && model_.awake(d, t)) {
      awake_best = c;
      have_awake = true;
    }
    if ((!have_prefix || d < prefix_best.disk) && d < quota) {
      prefix_best = c;
      have_prefix = true;
    }
  };
  consider(primary, extent.lba, extent.blocks);
  for (std::uint32_t i = offset_[file.id]; i < offset_[file.id + 1]; ++i) {
    consider(replica_disk_[i], replica_extent_[i].lba,
             replica_extent_[i].blocks);
  }
  if (have_awake) return awake_best;
  if (have_prefix) return prefix_best;
  return id_best;
}

void FleetController::submit_foreground(double t, std::uint64_t id,
                                        util::Bytes bytes, const Choice& c,
                                        std::vector<Submission>& out) {
  if (budget_ != nullptr) {
    budget_->observe_response(model_.predict_response(c.disk, t, bytes));
  }
  model_.on_submit(c.disk, t, bytes);
  out.push_back(Submission{t, id, bytes, c.lba, c.blocks, c.disk, false});
}

void FleetController::trigger_destage(double t, std::uint64_t id,
                                      std::uint32_t disk,
                                      std::vector<Submission>& out) {
  if (offload_ == nullptr || !offload_->has_pending(disk)) return;
  drained_.clear();
  offload_->drain_disk(disk, drained_);
  if (drained_.empty()) return; // every entry had already been settled
  if (trace_ != nullptr && trace_->wants(obs::Kind::kPolicy)) {
    trace_->emit(obs::Kind::kPolicy, obs::kPolicyDestage, t,
                 obs::kDispatcherTrack, id, static_cast<double>(disk),
                 static_cast<double>(drained_.size()));
  }
  emit_destage_subs(t, drained_, out);
}

void FleetController::emit_destage_subs(double t,
                                        const std::vector<PendingWrite>& batch,
                                        std::vector<Submission>& out) {
  for (const PendingWrite& p : batch) {
    model_.on_submit(p.target, t, p.bytes);
    out.push_back(Submission{t, p.request_id | kBackgroundIdBit, p.bytes,
                             p.target_lba, p.blocks, p.target, true});
    ++destages_;
  }
}

void FleetController::flush_deadlines(double t,
                                      std::vector<Submission>& out) {
  if (offload_ == nullptr) return;
  drained_.clear();
  offload_->drain_due(t, drained_);
  for (const PendingWrite& p : drained_) {
    if (trace_ != nullptr && trace_->wants(obs::Kind::kPolicy)) {
      trace_->emit(obs::Kind::kPolicy, obs::kPolicyDestage, p.deadline,
                   obs::kDispatcherTrack, p.request_id,
                   static_cast<double>(p.target), 1.0);
    }
    model_.on_submit(p.target, p.deadline, p.bytes);
    out.push_back(Submission{p.deadline, p.request_id | kBackgroundIdBit,
                             p.bytes, p.target_lba, p.blocks, p.target,
                             true});
    ++destages_;
  }
}

} // namespace spindown::orch
