// stream.h — request streams: the simulation's pull interface for arrivals.
//
// Two implementations:
//   * PoissonZipfStream — Table 1's generator: Poisson arrivals at rate R,
//     each request picking a file by Zipf popularity (O(1) alias sampling).
//   * TraceStream — replays a Trace (used for the NERSC experiments, where
//     "all of the 115,832 requests are regenerated based on the time in the
//     real life workload data").
#pragma once

#include <cstdint>
#include <optional>

#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/distributions.h"
#include "workload/trace.h"

namespace spindown::workload {

struct Request {
  std::uint64_t id = 0;   ///< dense sequence number, 0-based
  double arrival = 0.0;   ///< seconds from simulation start
  FileId file = 0;
  /// Logical block address of the read, in the target disk's address space.
  /// kNoLba (the default) means "whole file at its catalog-layout extent";
  /// trace replays can pin a request to an explicit address instead.
  std::uint64_t lba = kNoLba;
};

/// Pull-based stream of requests in non-decreasing arrival order.
class RequestStream {
public:
  virtual ~RequestStream() = default;
  /// Next request, or nullopt when the stream is exhausted.
  virtual std::optional<Request> next() = 0;
};

/// Table 1 generator: Poisson(R) arrivals, Zipf file choice.
class PoissonZipfStream final : public RequestStream {
public:
  /// Generates until `horizon` seconds (exclusive).  The catalog's
  /// popularity vector defines the file-choice distribution.
  PoissonZipfStream(const FileCatalog& catalog, double rate, double horizon,
                    util::Rng rng);

  std::optional<Request> next() override;

private:
  const FileCatalog& catalog_;
  PoissonProcess arrivals_;
  double horizon_;
  util::Rng rng_;
  util::AliasTable file_choice_;
  std::uint64_t next_id_ = 0;
};

/// Replays a trace verbatim.
class TraceStream final : public RequestStream {
public:
  explicit TraceStream(const Trace& trace);

  std::optional<Request> next() override;

private:
  const Trace& trace_;
  std::size_t pos_ = 0;
};

} // namespace spindown::workload
