// stream.h — request streams: the simulation's pull interface for arrivals.
//
// Implementations:
//   * ArrivalZipfStream — any ArrivalProcess (arrival.h) paired with Zipf
//     file choice (O(1) alias sampling).  This is the general synthetic
//     generator: Poisson reproduces Table 1; NHPP/MMPP produce the
//     non-stationary workloads that stress adaptive spin-down policies.
//   * PoissonZipfStream — Table 1's generator, a thin wrapper over
//     ArrivalZipfStream with a PoissonArrivals process (kept for its name
//     and ubiquity in the benches; draw-for-draw identical to the seed).
//   * TraceStream — replays a Trace (used for the NERSC experiments, where
//     "all of the 115,832 requests are regenerated based on the time in the
//     real life workload data").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "util/rng.h"
#include "workload/arrival.h"
#include "workload/catalog.h"
#include "workload/distributions.h"
#include "workload/trace.h"

namespace spindown::workload {

struct Request {
  std::uint64_t id = 0;   ///< dense sequence number, 0-based
  double arrival = 0.0;   ///< seconds from simulation start
  FileId file = 0;
  /// Logical block address of the read, in the target disk's address space.
  /// kNoLba (the default) means "whole file at its catalog-layout extent";
  /// trace replays can pin a request to an explicit address instead.
  std::uint64_t lba = kNoLba;
};

/// Pull-based stream of requests in non-decreasing arrival order.
class RequestStream {
public:
  virtual ~RequestStream() = default;
  /// Next request, or nullopt when the stream is exhausted.
  virtual std::optional<Request> next() = 0;
};

/// Structure-of-arrays storage for a window of pre-generated requests.
/// The fleet router (sys/fleet.h) fills one block per synchronization
/// window and scans the parallel arrays when routing; keeping the fields
/// in separate contiguous vectors avoids dragging the full Request stride
/// through the cache when a pass only needs arrival times and file ids.
struct RequestBlock {
  std::vector<double> arrival;
  std::vector<std::uint64_t> id;
  std::vector<FileId> file;
  std::vector<std::uint64_t> lba;

  std::size_t size() const { return arrival.size(); }
  bool empty() const { return arrival.empty(); }
  void clear();
  void push(const Request& r);
  /// Reassemble element i (bounds unchecked, like vector::operator[]).
  Request get(std::size_t i) const;
};

/// Batched pre-generation over any RequestStream: draws requests one
/// window at a time while buffering a single lookahead request, so the
/// sequence of next() calls — and therefore every RNG draw of a synthetic
/// generator — is identical to pulling the stream directly.  This is what
/// lets the sharded simulation consume arrivals in windows without
/// perturbing the workload.
class WindowedStream {
public:
  explicit WindowedStream(RequestStream& inner);

  /// Append every request with arrival < `t_end` (at most `max_count`)
  /// onto `out`.  Returns the number appended; 0 means the window is empty
  /// or the stream is exhausted.
  std::size_t fill(double t_end, std::size_t max_count, RequestBlock& out);

  /// True once the underlying stream has returned nullopt.
  bool exhausted() const { return !pending_.has_value(); }
  /// Arrival time of the buffered lookahead request (exhausted() must be
  /// false).
  double next_arrival() const { return pending_->arrival; }

private:
  RequestStream& inner_;
  std::optional<Request> pending_;
};

/// General synthetic generator: arrival times from an ArrivalProcess, file
/// choice by the catalog's popularity vector.
class ArrivalZipfStream final : public RequestStream {
public:
  /// Generates until `horizon` seconds (exclusive).
  ArrivalZipfStream(const FileCatalog& catalog,
                    std::unique_ptr<ArrivalProcess> arrivals, double horizon,
                    util::Rng rng);

  std::optional<Request> next() override;

  const ArrivalProcess& arrivals() const { return *arrivals_; }

private:
  std::unique_ptr<ArrivalProcess> arrivals_;
  double horizon_;
  util::Rng rng_;
  util::AliasTable file_choice_;
  std::uint64_t next_id_ = 0;
};

/// Table 1 generator: Poisson(R) arrivals, Zipf file choice.
class PoissonZipfStream final : public RequestStream {
public:
  /// Generates until `horizon` seconds (exclusive).  The catalog's
  /// popularity vector defines the file-choice distribution.
  PoissonZipfStream(const FileCatalog& catalog, double rate, double horizon,
                    util::Rng rng);

  std::optional<Request> next() override { return inner_.next(); }

private:
  ArrivalZipfStream inner_;
};

/// Replays a trace verbatim.
class TraceStream final : public RequestStream {
public:
  explicit TraceStream(const Trace& trace);

  std::optional<Request> next() override;

private:
  const Trace& trace_;
  std::size_t pos_ = 0;
};

} // namespace spindown::workload
