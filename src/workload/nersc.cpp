#include "workload/nersc.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "workload/distributions.h"

namespace spindown::workload {

NerscSpec NerscSpec::paper() {
  return NerscSpec{}; // defaults mirror §5.1
}

namespace {

/// Sizes: bounded Pareto calibrated to the target mean.  Heavy-tailed, so
/// the 80-bin histogram is log-log linear, matching the paper's observation.
std::vector<util::Bytes> draw_sizes(const NerscSpec& spec, util::Rng& rng) {
  const auto pareto = BoundedPareto::with_mean(
      static_cast<double>(spec.min_size), static_cast<double>(spec.max_size),
      static_cast<double>(spec.mean_size));
  std::vector<util::Bytes> sizes(spec.n_files);
  for (auto& s : sizes) {
    s = static_cast<util::Bytes>(pareto.sample(rng));
  }
  return sizes;
}

/// Access counts: every distinct file appears at least once (the paper saw
/// 88,631 distinct files in 115,832 requests); the surplus is spread
/// Zipf-like over a random permutation of files, making popularity
/// independent of size.
std::vector<std::uint32_t> draw_access_counts(const NerscSpec& spec,
                                              util::Rng& rng) {
  if (spec.n_requests < spec.n_files) {
    throw std::invalid_argument{"NerscSpec: n_requests < n_files"};
  }
  std::vector<std::uint32_t> counts(spec.n_files, 1);
  const std::size_t extra = spec.n_requests - spec.n_files;
  if (extra == 0) return counts;

  // Zipf weights over popularity ranks; ranks map to files via a shuffle.
  const ZipfPopularity zipf{spec.n_files, spec.popularity_exponent};
  util::AliasTable alias{zipf.probabilities()};
  std::vector<std::uint32_t> rank_to_file(spec.n_files);
  std::iota(rank_to_file.begin(), rank_to_file.end(), 0u);
  rng.shuffle(std::span{rank_to_file});
  for (std::size_t e = 0; e < extra; ++e) {
    counts[rank_to_file[alias.sample(rng)]] += 1;
  }
  return counts;
}

} // namespace

Trace synthesize_nersc(const NerscSpec& spec) {
  util::Rng rng{spec.seed};

  const auto sizes = draw_sizes(spec, rng);
  const auto counts = draw_access_counts(spec, rng);

  // Catalog: popularity proportional to access count.
  std::vector<FileInfo> files(spec.n_files);
  for (std::size_t i = 0; i < spec.n_files; ++i) {
    files[i].id = static_cast<FileId>(i);
    files[i].size = sizes[i];
    files[i].popularity = static_cast<double>(counts[i]);
  }
  FileCatalog catalog{std::move(files)};
  catalog.normalize_popularity();

  // Request tokens grouped into 80 size bins so batches can draw
  // similar-size files (the §3.2 phenomenon).
  const double lo = std::max<double>(1.0, static_cast<double>(spec.min_size));
  const double hi = static_cast<double>(spec.max_size) * 1.0001;
  constexpr std::size_t kBins = 80;
  const double log_lo = std::log(lo);
  const double log_w = (std::log(hi) - log_lo) / static_cast<double>(kBins);
  auto bin_of = [&](util::Bytes s) {
    const double ls = std::log(std::max<double>(1.0, static_cast<double>(s)));
    auto b = static_cast<std::size_t>((ls - log_lo) / log_w);
    return std::min(b, kBins - 1);
  };

  std::vector<std::vector<FileId>> bin_tokens(kBins);
  for (std::size_t i = 0; i < spec.n_files; ++i) {
    for (std::uint32_t c = 0; c < counts[i]; ++c) {
      bin_tokens[bin_of(sizes[i])].push_back(static_cast<FileId>(i));
    }
  }
  // Shuffle within each bin so batch membership is not id-ordered.
  for (auto& tokens : bin_tokens) rng.shuffle(std::span{tokens});

  // Remaining-token counts drive weighted bin choice for singleton arrivals.
  std::size_t remaining = spec.n_requests;
  auto pop_from_bin = [&](std::size_t b) {
    FileId f = bin_tokens[b].back();
    bin_tokens[b].pop_back();
    --remaining;
    return f;
  };
  auto pick_weighted_bin = [&]() {
    // Weighted by remaining tokens; linear scan over 80 bins is cheap.
    auto target = rng.uniform_int(0, remaining - 1);
    for (std::size_t b = 0; b < kBins; ++b) {
      const auto sz = bin_tokens[b].size();
      if (target < sz) return b;
      target -= sz;
    }
    // Floating-point-free arithmetic: unreachable if counts are consistent.
    for (std::size_t b = kBins; b-- > 0;) {
      if (!bin_tokens[b].empty()) return b;
    }
    throw std::logic_error{"nersc synth: token pools exhausted early"};
  };

  // Arrival epochs: Poisson with rate chosen so the expected request count
  // over `duration_s` equals n_requests given the batch mix.  With diurnal
  // modulation the process is non-homogeneous (thinning against the peak
  // rate); the final rescale pins the exact duration either way.
  const double mean_batch =
      0.5 * static_cast<double>(spec.batch_min + spec.batch_max);
  const double per_epoch =
      spec.batch_fraction * mean_batch + (1.0 - spec.batch_fraction);
  const double epoch_rate =
      static_cast<double>(spec.n_requests) / (spec.duration_s * per_epoch);
  const double mean_intensity =
      spec.day_fraction + (1.0 - spec.day_fraction) * spec.night_intensity;
  const double peak_rate =
      spec.diurnal ? epoch_rate / mean_intensity : epoch_rate;
  PoissonProcess epochs{peak_rate};
  auto next_epoch = [&]() {
    for (;;) {
      const double t = epochs.next_arrival(rng);
      if (!spec.diurnal) return t;
      const double tod = std::fmod(t, util::kDay);
      const double intensity =
          tod < spec.day_fraction * util::kDay ? 1.0 : spec.night_intensity;
      if (rng.uniform01() <= intensity) return t;
    }
  };

  std::vector<TraceRecord> records;
  records.reserve(spec.n_requests);
  while (remaining > 0) {
    const double t = next_epoch();
    const bool batch = rng.uniform01() < spec.batch_fraction;
    if (batch) {
      // A user fetching a batch of similar-size files: one bin, k tokens.
      std::size_t b = pick_weighted_bin();
      const auto want = static_cast<std::size_t>(
          rng.uniform_int(spec.batch_min, spec.batch_max));
      const auto k = std::min({want, bin_tokens[b].size(), remaining});
      for (std::size_t j = 0; j < k; ++j) {
        records.push_back(
            TraceRecord{t + static_cast<double>(j) * spec.batch_spacing_s,
                        pop_from_bin(b)});
      }
    } else {
      records.push_back(TraceRecord{t, pop_from_bin(pick_weighted_bin())});
    }
  }
  assert(records.size() == spec.n_requests);

  // Rescale timestamps to land the last arrival exactly at duration_s; this
  // pins the mean arrival rate to the published 0.044683/s.
  const double t_max =
      std::max_element(records.begin(), records.end(),
                       [](auto& a, auto& b) { return a.time < b.time; })
          ->time;
  if (t_max > 0.0) {
    const double scale = spec.duration_s / t_max;
    for (auto& r : records) r.time *= scale;
  }

  return Trace{std::move(catalog), std::move(records)};
}

} // namespace spindown::workload
