// catalog.h — the file population: sizes and access popularities.
//
// A FileCatalog is the static input to the allocation problem: for each file
// its size s_i (bytes) and its access probability p_i (sums to 1).  The
// generator reproduces Table 1 of the paper:
//
//   n = 40,000 files; p_i Zipf-like with exponent (1-theta); sizes follow an
//   inverse Zipf-like distribution, "inverse relation between access
//   frequency and size": popularity rank i receives size
//       s_i = S_max / (n + 1 - i)^(1-theta)
//   which simultaneously yields (with S_max = 20 GB, n = 40,000):
//     * minimum size  S_max / n^(1-theta)  ~ 188 MB   (Table 1's minimum),
//     * Zipf-distributed sizes (the size *histogram* is power-law), and
//     * total ~ 12.9 TB (Table 1 reports 12.86 TB).
//   These emergent agreements are checked in tests; they justify reading
//   "inverse Zipf-like" as above.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace spindown::workload {

using FileId = std::uint32_t;

/// "No logical block address": requests carrying this sentinel are located
/// by the dispatcher from the catalog layout (layout_extents below).
inline constexpr std::uint64_t kNoLba = ~0ULL;

struct FileInfo {
  FileId id = 0;
  util::Bytes size = 0;
  double popularity = 0.0; ///< access probability p_i; catalog sums to 1
};

/// Contiguous logical-block extent of a file on its assigned disk:
/// [lba, lba + blocks) in util::kBlockBytes blocks, per-disk address space.
struct FileExtent {
  std::uint64_t lba = 0;
  std::uint64_t blocks = 0;
};

class FileCatalog {
public:
  FileCatalog() = default;
  explicit FileCatalog(std::vector<FileInfo> files);

  std::size_t size() const { return files_.size(); }
  bool empty() const { return files_.empty(); }
  const FileInfo& operator[](std::size_t i) const { return files_[i]; }
  const FileInfo& by_id(FileId id) const;
  const std::vector<FileInfo>& files() const { return files_; }

  util::Bytes total_bytes() const { return total_bytes_; }
  util::Bytes min_size() const;
  util::Bytes max_size() const;

  /// Request-weighted mean size: sum p_i * s_i (expected bytes per request).
  double mean_request_bytes() const;

  /// Popularity vector indexed by file id (for alias-table construction).
  std::vector<double> popularity_vector() const;

  /// Re-normalize popularities to sum to exactly 1 (call after edits).
  void normalize_popularity();

private:
  std::vector<FileInfo> files_; // files_[i].id == i always holds
  util::Bytes total_bytes_ = 0;
};

/// How file size relates to access frequency in a generated catalog.
enum class SizeCorrelation {
  kInverse,     ///< paper's Table 1: most popular file is smallest
  kIndependent, ///< NERSC observation (§5.1): "no significant relationship"
  kDirect,      ///< adversarial: most popular file is largest (for ablation)
};

/// Parameters of the synthetic (Table 1) catalog.
struct SyntheticSpec {
  std::size_t n_files = 40'000;
  double zipf_exponent = 0.0; ///< 0 means "use the paper's 1-theta"
  util::Bytes max_size = util::gb(20.0);
  SizeCorrelation correlation = SizeCorrelation::kInverse;

  /// Exactly Table 1.
  static SyntheticSpec paper_table1();
};

/// Deterministically build a catalog from a spec.  The rng is used only for
/// the kIndependent correlation mode (random size permutation).
FileCatalog generate_catalog(const SyntheticSpec& spec, util::Rng& rng);

/// Logical-block layout of an assignment: file i receives a contiguous
/// extent on disk mapping[i], packed in file-id order from LBA 0 upward
/// (each disk has its own address space).  Packing from the outer tracks
/// down keeps co-located files close, so geometry-aware schedulers see the
/// locality the allocation created.  `mapping` is an Assignment's disk_of;
/// mapping.size() must cover the catalog.  Returned vector is indexed by
/// file id.
std::vector<FileExtent> layout_extents(
    const FileCatalog& catalog, const std::vector<std::uint32_t>& mapping,
    std::uint32_t num_disks);

} // namespace spindown::workload
