// arrival.h — arrival processes: *when* do requests arrive?
//
// The paper's Table 1 workload is a homogeneous Poisson process (rate R in
// [1, 12] req/s), which makes every spin-down question stationary: the best
// idleness threshold is one number, found by the offline sweeps of
// Figures 5/6.  Real farm traffic is diurnal and bursty, so the adaptive
// policies in src/adapt/ need arrival processes whose rate *moves*:
//
//   * PoissonArrivals       — the Table 1 process, draw-for-draw identical
//                             to workload::PoissonProcess (the seed path).
//   * PiecewiseRateArrivals — a non-homogeneous Poisson process with a
//                             piecewise-constant rate function, sampled by
//                             Lewis–Shedler thinning; an optional period
//                             wraps the rate function for diurnal cycles.
//   * MmppArrivals          — a 2-state Markov-modulated Poisson process:
//                             exponential dwell in each state, each state
//                             with its own Poisson rate (bursts vs. lulls).
//
// All processes advance an internal clock and emit strictly increasing
// arrival times; determinism comes entirely from the caller's Rng.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace spindown::workload {

/// Generator of strictly increasing arrival times.
class ArrivalProcess {
public:
  virtual ~ArrivalProcess() = default;

  /// Advance and return the next arrival time.
  virtual double next_arrival(util::Rng& rng) = 0;

  /// Current clock (time of the last arrival generated).
  virtual double now() const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Homogeneous Poisson process: exponential inter-arrivals at a fixed rate.
/// Consumes exactly one exponential draw per arrival — the same stream as
/// workload::PoissonProcess, so the default experiment path is bit-exact.
class PoissonArrivals final : public ArrivalProcess {
public:
  explicit PoissonArrivals(double rate);

  double next_arrival(util::Rng& rng) override;
  double now() const override { return now_; }
  std::string name() const override;
  double rate() const { return rate_; }

private:
  double rate_;
  double now_ = 0.0;
};

/// One piece of a piecewise-constant rate function: `rate` applies from
/// `start` (seconds) until the next segment's start.
struct RateSegment {
  double start = 0.0;
  double rate = 0.0;
};

/// Non-homogeneous Poisson process with a piecewise-constant rate, sampled
/// by thinning: candidate arrivals are generated at the peak rate and
/// accepted with probability rate(t)/peak.  With `period > 0` the rate
/// function wraps (diurnal cycles); otherwise the last segment's rate holds
/// forever (and must be positive, or the process would never emit again).
class PiecewiseRateArrivals final : public ArrivalProcess {
public:
  /// `segments` must be non-empty, start at 0, be strictly increasing in
  /// `start`, and have non-negative rates with at least one positive.
  /// With a period, every start must lie inside [0, period).
  explicit PiecewiseRateArrivals(std::vector<RateSegment> segments,
                                 double period = 0.0);

  double next_arrival(util::Rng& rng) override;
  double now() const override { return now_; }
  std::string name() const override;

  /// The instantaneous rate at absolute time t.
  double rate_at(double t) const;
  double peak_rate() const { return peak_; }
  double period() const { return period_; }
  const std::vector<RateSegment>& segments() const { return segments_; }

private:
  std::vector<RateSegment> segments_;
  double period_;
  double peak_ = 0.0;
  double now_ = 0.0;
};

/// 2-state MMPP parameters: Poisson rate and mean (exponential) dwell time
/// per state.  State 0 is the initial state.
struct MmppParams {
  std::array<double, 2> rate{8.0, 0.5};         ///< req/s per state
  std::array<double, 2> mean_dwell{120.0, 480.0}; ///< seconds per visit
};

/// 2-state Markov-modulated Poisson process.  Memorylessness lets the
/// competing-exponentials simulation discard the losing candidate each
/// step, so the process consumes O(1) draws per arrival plus one per state
/// switch.
class MmppArrivals final : public ArrivalProcess {
public:
  /// Rates must be non-negative with at least one positive; dwells > 0.
  explicit MmppArrivals(MmppParams params);

  double next_arrival(util::Rng& rng) override;
  double now() const override { return now_; }
  std::string name() const override;

  const MmppParams& params() const { return params_; }
  /// Current modulating state (0 or 1) and total switches so far —
  /// observable so tests can verify dwell statistics.
  int state() const { return state_; }
  std::uint64_t switches() const { return switches_; }

private:
  MmppParams params_;
  double now_ = 0.0;
  double switch_at_ = 0.0;
  int state_ = 0;
  bool started_ = false;
  std::uint64_t switches_ = 0;
};

} // namespace spindown::workload
