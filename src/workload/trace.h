// trace.h — request traces: the unit of exchange between workload generation
// and simulation.
//
// A Trace is a time-ordered list of read requests against a FileCatalog.
// Traces can be generated (Poisson/Zipf or the NERSC synthesizer), saved to
// and loaded from CSV, and summarized (the statistics the paper reports for
// its NERSC log: distinct files, arrival rate, mean accessed size, size
// histogram across 80 bins and its log-log linearity).
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "stats/histogram.h"
#include "util/math.h"
#include "workload/catalog.h"

namespace spindown::workload {

struct TraceRecord {
  double time = 0.0; ///< arrival, seconds from trace start
  FileId file = 0;
  /// Optional explicit logical block address; kNoLba = locate the file via
  /// the catalog layout (the common case for synthesized traces).
  std::uint64_t lba = kNoLba;
};

class Trace {
public:
  Trace() = default;
  Trace(FileCatalog catalog, std::vector<TraceRecord> records);

  const FileCatalog& catalog() const { return catalog_; }
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// End time of the trace (time of the last record; 0 if empty).
  double duration() const;

  /// Persist as two CSVs: <stem>.catalog.csv (id,size,popularity) and
  /// <stem>.trace.csv (time,file).  Throws on I/O failure.
  void save(const std::filesystem::path& stem) const;
  static Trace load(const std::filesystem::path& stem);

  /// load() behind a shared_ptr — the ownership shape value-semantic specs
  /// need (WorkloadSpec/ScenarioSpec copies share one loaded trace).
  static std::shared_ptr<const Trace> load_shared(
      const std::filesystem::path& stem);

private:
  FileCatalog catalog_;
  std::vector<TraceRecord> records_; // sorted by time at construction
};

/// Aggregate statistics, mirroring §5.1's description of the NERSC log.
struct TraceStats {
  std::size_t requests = 0;
  std::size_t distinct_files = 0;
  double duration_s = 0.0;
  double arrival_rate = 0.0;       ///< requests per second
  double mean_accessed_bytes = 0;  ///< mean size over *requests*
  util::Bytes total_catalog_bytes = 0;
  /// Minimum disk count to store every requested file (paper: 95).
  std::size_t min_disks(util::Bytes disk_capacity) const;
  /// Log-log fit of the 80-bin size histogram (slope < 0, r2 near 1 for a
  /// Zipf-like size distribution — the paper's §5.1 observation).
  util::LinearFit size_loglog_fit;
  /// Pearson correlation between file size and access count (paper: "no
  /// significant relationship").
  double size_frequency_correlation = 0.0;
};

/// Compute the statistics over a trace (uses 80 log-spaced size bins as in
/// the paper's analysis).
TraceStats analyze(const Trace& trace);

} // namespace spindown::workload
