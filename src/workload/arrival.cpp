#include "workload/arrival.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/units.h"

namespace spindown::workload {

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument{"PoissonArrivals: rate must be > 0"};
  }
}

double PoissonArrivals::next_arrival(util::Rng& rng) {
  now_ += rng.exponential(rate_);
  return now_;
}

std::string PoissonArrivals::name() const {
  return "poisson(" + util::format_double(rate_, 3) + "/s)";
}

PiecewiseRateArrivals::PiecewiseRateArrivals(std::vector<RateSegment> segments,
                                             double period)
    : segments_(std::move(segments)), period_(period) {
  if (segments_.empty()) {
    throw std::invalid_argument{"PiecewiseRateArrivals: no segments"};
  }
  if (segments_.front().start != 0.0) {
    throw std::invalid_argument{
        "PiecewiseRateArrivals: first segment must start at 0"};
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].rate < 0.0) {
      throw std::invalid_argument{"PiecewiseRateArrivals: negative rate"};
    }
    if (i > 0 && segments_[i].start <= segments_[i - 1].start) {
      throw std::invalid_argument{
          "PiecewiseRateArrivals: segment starts must be increasing"};
    }
    peak_ = std::max(peak_, segments_[i].rate);
  }
  if (peak_ <= 0.0) {
    throw std::invalid_argument{
        "PiecewiseRateArrivals: at least one segment rate must be > 0"};
  }
  if (period_ < 0.0) {
    throw std::invalid_argument{"PiecewiseRateArrivals: negative period"};
  }
  if (period_ > 0.0 && segments_.back().start >= period_) {
    throw std::invalid_argument{
        "PiecewiseRateArrivals: segment starts must lie inside the period"};
  }
  if (period_ == 0.0 && segments_.back().rate <= 0.0) {
    // The last rate holds forever: if it is zero the thinning loop would
    // reject candidates unboundedly once the clock passes it.
    throw std::invalid_argument{
        "PiecewiseRateArrivals: trailing zero rate without a period"};
  }
}

double PiecewiseRateArrivals::rate_at(double t) const {
  if (period_ > 0.0) {
    t = std::fmod(t, period_);
    if (t < 0.0) t += period_;
  }
  // Few segments in practice: linear scan from the back.
  for (std::size_t i = segments_.size(); i-- > 0;) {
    if (t >= segments_[i].start) return segments_[i].rate;
  }
  return segments_.front().rate;
}

double PiecewiseRateArrivals::next_arrival(util::Rng& rng) {
  // Lewis–Shedler thinning: homogeneous candidates at the peak rate,
  // accepted with probability rate(t)/peak.
  for (;;) {
    now_ += rng.exponential(peak_);
    const double r = rate_at(now_);
    if (r >= peak_ || rng.uniform01() * peak_ < r) return now_;
  }
}

std::string PiecewiseRateArrivals::name() const {
  std::string out = "nhpp(";
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) out += ";";
    out += util::format_double(segments_[i].start, 3) + ":" +
           util::format_double(segments_[i].rate, 3);
  }
  if (period_ > 0.0) out += " per " + util::format_seconds(period_);
  return out + ")";
}

MmppArrivals::MmppArrivals(MmppParams params) : params_(params) {
  if (params_.rate[0] < 0.0 || params_.rate[1] < 0.0 ||
      (params_.rate[0] <= 0.0 && params_.rate[1] <= 0.0)) {
    throw std::invalid_argument{
        "MmppArrivals: rates must be >= 0 with at least one > 0"};
  }
  if (params_.mean_dwell[0] <= 0.0 || params_.mean_dwell[1] <= 0.0) {
    throw std::invalid_argument{"MmppArrivals: dwell times must be > 0"};
  }
}

double MmppArrivals::next_arrival(util::Rng& rng) {
  if (!started_) {
    started_ = true;
    switch_at_ = now_ + rng.exponential(1.0 / params_.mean_dwell[state_]);
  }
  for (;;) {
    const double rate = params_.rate[static_cast<std::size_t>(state_)];
    // Exponential races are memoryless, so the losing candidate can be
    // discarded and redrawn after the state switch.
    const double candidate =
        rate > 0.0 ? now_ + rng.exponential(rate)
                   : std::numeric_limits<double>::infinity();
    if (candidate < switch_at_) {
      now_ = candidate;
      return now_;
    }
    now_ = switch_at_;
    state_ ^= 1;
    ++switches_;
    switch_at_ = now_ + rng.exponential(1.0 / params_.mean_dwell[state_]);
  }
}

std::string MmppArrivals::name() const {
  return "mmpp(" + util::format_double(params_.rate[0], 3) + "/s x " +
         util::format_seconds(params_.mean_dwell[0]) + ", " +
         util::format_double(params_.rate[1], 3) + "/s x " +
         util::format_seconds(params_.mean_dwell[1]) + ")";
}

} // namespace spindown::workload
