#include "workload/catalog.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/math.h"
#include "workload/distributions.h"

namespace spindown::workload {

FileCatalog::FileCatalog(std::vector<FileInfo> files)
    : files_(std::move(files)) {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].id != i) {
      throw std::invalid_argument{"FileCatalog: ids must be dense 0..n-1"};
    }
    total_bytes_ += files_[i].size;
  }
}

const FileInfo& FileCatalog::by_id(FileId id) const {
  return files_.at(id);
}

util::Bytes FileCatalog::min_size() const {
  if (files_.empty()) return 0;
  return std::min_element(files_.begin(), files_.end(), [](auto& a, auto& b) {
           return a.size < b.size;
         })->size;
}

util::Bytes FileCatalog::max_size() const {
  if (files_.empty()) return 0;
  return std::max_element(files_.begin(), files_.end(), [](auto& a, auto& b) {
           return a.size < b.size;
         })->size;
}

double FileCatalog::mean_request_bytes() const {
  double acc = 0.0;
  for (const auto& f : files_) {
    acc += f.popularity * static_cast<double>(f.size);
  }
  return acc;
}

std::vector<double> FileCatalog::popularity_vector() const {
  std::vector<double> p;
  p.reserve(files_.size());
  for (const auto& f : files_) p.push_back(f.popularity);
  return p;
}

void FileCatalog::normalize_popularity() {
  double sum = 0.0;
  for (const auto& f : files_) sum += f.popularity;
  if (sum <= 0.0) throw std::logic_error{"catalog popularity sums to zero"};
  for (auto& f : files_) f.popularity /= sum;
}

SyntheticSpec SyntheticSpec::paper_table1() {
  return SyntheticSpec{}; // defaults are Table 1
}

FileCatalog generate_catalog(const SyntheticSpec& spec, util::Rng& rng) {
  if (spec.n_files == 0) return FileCatalog{};
  const double a = spec.zipf_exponent > 0.0 ? spec.zipf_exponent
                                            : 1.0 - util::paper_zipf_theta();
  const ZipfPopularity pop{spec.n_files, a};
  const auto n = spec.n_files;
  const double smax = static_cast<double>(spec.max_size);

  // Size by *size rank* r (1 = largest): size(r) = S_max / r^a.
  auto size_of_rank = [&](std::size_t r) {
    return static_cast<util::Bytes>(smax / std::pow(static_cast<double>(r), a));
  };

  // Map popularity rank -> size rank according to the correlation mode.
  std::vector<std::size_t> size_rank_of(n);
  switch (spec.correlation) {
    case SizeCorrelation::kInverse:
      // Popularity rank 1 (hottest) gets size rank n (smallest).
      for (std::size_t i = 0; i < n; ++i) size_rank_of[i] = n - i;
      break;
    case SizeCorrelation::kDirect:
      for (std::size_t i = 0; i < n; ++i) size_rank_of[i] = i + 1;
      break;
    case SizeCorrelation::kIndependent: {
      std::vector<std::size_t> perm(n);
      std::iota(perm.begin(), perm.end(), std::size_t{1});
      rng.shuffle(std::span{perm});
      size_rank_of = std::move(perm);
      break;
    }
  }

  std::vector<FileInfo> files(n);
  for (std::size_t i = 0; i < n; ++i) {
    files[i].id = static_cast<FileId>(i);
    files[i].popularity = pop.pmf(i + 1); // file id i == popularity rank i+1
    files[i].size = size_of_rank(size_rank_of[i]);
  }
  return FileCatalog{std::move(files)};
}

std::vector<FileExtent> layout_extents(
    const FileCatalog& catalog, const std::vector<std::uint32_t>& mapping,
    std::uint32_t num_disks) {
  if (mapping.size() < catalog.size()) {
    throw std::invalid_argument{"layout_extents: mapping smaller than catalog"};
  }
  std::vector<std::uint64_t> cursor(num_disks, 0);
  std::vector<FileExtent> extents(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto disk = mapping[i];
    if (disk >= num_disks) {
      throw std::invalid_argument{
          "layout_extents: mapping references unknown disk"};
    }
    extents[i].lba = cursor[disk];
    extents[i].blocks = util::blocks_of(catalog[i].size);
    cursor[disk] += extents[i].blocks;
  }
  return extents;
}

} // namespace spindown::workload
