#include "workload/distributions.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/math.h"

namespace spindown::workload {

ZipfPopularity::ZipfPopularity(std::size_t n, double exponent)
    : n_(n), exponent_(exponent) {
  if (n == 0) throw std::invalid_argument{"ZipfPopularity: n must be >= 1"};
  if (exponent <= 0.0) {
    throw std::invalid_argument{"ZipfPopularity: exponent must be > 0"};
  }
  normalizer_ = 1.0 / util::generalized_harmonic(n, exponent);
  probs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    probs_[i] = normalizer_ * std::pow(static_cast<double>(i + 1), -exponent);
  }
  alias_ = util::AliasTable{probs_};
}

ZipfPopularity ZipfPopularity::paper(std::size_t n) {
  return ZipfPopularity{n, 1.0 - util::paper_zipf_theta()};
}

double ZipfPopularity::pmf(std::size_t rank) const {
  assert(rank >= 1 && rank <= n_);
  return probs_[rank - 1];
}

std::size_t ZipfPopularity::sample(util::Rng& rng) const {
  return alias_.sample(rng) + 1;
}

PoissonProcess::PoissonProcess(double rate) : rate_(rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument{"PoissonProcess: rate must be > 0"};
  }
}

double PoissonProcess::next_arrival(util::Rng& rng) {
  now_ += rng.exponential(rate_);
  return now_;
}

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument{"BoundedPareto: need 0 < lo < hi"};
  }
  if (alpha <= 0.0 || alpha == 1.0) {
    throw std::invalid_argument{"BoundedPareto: alpha must be > 0, != 1"};
  }
}

double BoundedPareto::mean() const {
  // E[X] = alpha/(alpha-1) * (lo^alpha)(lo^(1-alpha) - hi^(1-alpha))
  //        / (1 - (lo/hi)^alpha)
  const double la = std::pow(lo_, alpha_);
  const double num =
      alpha_ / (alpha_ - 1.0) * la *
      (std::pow(lo_, 1.0 - alpha_) - std::pow(hi_, 1.0 - alpha_));
  const double den = 1.0 - std::pow(lo_ / hi_, alpha_);
  return num / den;
}

double BoundedPareto::sample(util::Rng& rng) const {
  // Inverse-CDF sampling of the truncated Pareto.
  const double u = rng.uniform01();
  const double l_a = std::pow(lo_, alpha_);
  const double h_a = std::pow(hi_, alpha_);
  const double x =
      std::pow(-(u * h_a - u * l_a - h_a) / (h_a * l_a), -1.0 / alpha_);
  return std::min(std::max(x, lo_), hi_);
}

BoundedPareto BoundedPareto::with_mean(double lo, double hi,
                                       double target_mean) {
  if (!(target_mean > lo) || !(target_mean < hi)) {
    throw std::invalid_argument{
        "BoundedPareto::with_mean: target outside (lo, hi)"};
  }
  // mean() is monotone decreasing in alpha on (0, inf)\{1}: larger alpha puts
  // more mass near lo.  Bisection over alpha, dodging the removable
  // singularity at alpha = 1 by nudging.
  auto mean_of = [&](double a) {
    if (std::abs(a - 1.0) < 1e-9) a = 1.0 + 1e-9;
    return BoundedPareto{lo, hi, a}.mean();
  };
  double a_lo = 0.05, a_hi = 5.0;
  if (mean_of(a_lo) < target_mean || mean_of(a_hi) > target_mean) {
    throw std::invalid_argument{
        "BoundedPareto::with_mean: target mean unreachable in alpha range"};
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (a_lo + a_hi);
    if (mean_of(mid) > target_mean) {
      a_lo = mid; // mean too large -> increase alpha
    } else {
      a_hi = mid;
    }
  }
  double a = 0.5 * (a_lo + a_hi);
  if (std::abs(a - 1.0) < 1e-9) a = 1.0 + 1e-9;
  return BoundedPareto{lo, hi, a};
}

} // namespace spindown::workload
