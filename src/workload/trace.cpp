#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/csv.h"

namespace spindown::workload {

Trace::Trace(FileCatalog catalog, std::vector<TraceRecord> records)
    : catalog_(std::move(catalog)), records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
  for (const auto& r : records_) {
    if (r.file >= catalog_.size()) {
      throw std::invalid_argument{"Trace: record references unknown file"};
    }
  }
}

double Trace::duration() const {
  return records_.empty() ? 0.0 : records_.back().time;
}

void Trace::save(const std::filesystem::path& stem) const {
  {
    util::CsvWriter cat{std::filesystem::path{stem.string() + ".catalog.csv"}};
    cat.write_row({"id", "size_bytes", "popularity"});
    for (const auto& f : catalog_.files()) {
      cat.row(std::to_string(f.id), std::to_string(f.size),
              std::to_string(f.popularity));
    }
  }
  {
    // The lba column is only written when some record carries an explicit
    // address, so traces saved by older revisions round-trip unchanged.
    const bool with_lba =
        std::any_of(records_.begin(), records_.end(),
                    [](const TraceRecord& r) { return r.lba != kNoLba; });
    util::CsvWriter tr{std::filesystem::path{stem.string() + ".trace.csv"}};
    if (with_lba) {
      tr.write_row({"time_s", "file_id", "lba"});
      for (const auto& r : records_) {
        tr.row(std::to_string(r.time), std::to_string(r.file),
               r.lba == kNoLba ? std::string{} : std::to_string(r.lba));
      }
    } else {
      tr.write_row({"time_s", "file_id"});
      for (const auto& r : records_) {
        tr.row(std::to_string(r.time), std::to_string(r.file));
      }
    }
  }
}

Trace Trace::load(const std::filesystem::path& stem) {
  std::vector<FileInfo> files;
  {
    util::CsvReader cat{std::filesystem::path{stem.string() + ".catalog.csv"}};
    auto header = cat.next();
    if (!header) throw std::runtime_error{"Trace::load: empty catalog csv"};
    while (auto row = cat.next()) {
      if (row->size() < 3) {
        throw std::runtime_error{"Trace::load: bad catalog row"};
      }
      FileInfo f;
      f.id = static_cast<FileId>(std::stoul((*row)[0]));
      f.size = std::stoull((*row)[1]);
      f.popularity = std::stod((*row)[2]);
      files.push_back(f);
    }
  }
  std::vector<TraceRecord> records;
  {
    util::CsvReader tr{std::filesystem::path{stem.string() + ".trace.csv"}};
    auto header = tr.next();
    if (!header) throw std::runtime_error{"Trace::load: empty trace csv"};
    while (auto row = tr.next()) {
      if (row->size() < 2) {
        throw std::runtime_error{"Trace::load: bad trace row"};
      }
      TraceRecord rec;
      rec.time = std::stod((*row)[0]);
      rec.file = static_cast<FileId>(std::stoul((*row)[1]));
      // Optional third column: explicit lba (may be empty per-row).
      if (row->size() >= 3 && !(*row)[2].empty()) {
        rec.lba = std::stoull((*row)[2]);
      }
      records.push_back(rec);
    }
  }
  return Trace{FileCatalog{std::move(files)}, std::move(records)};
}

std::shared_ptr<const Trace> Trace::load_shared(
    const std::filesystem::path& stem) {
  return std::make_shared<const Trace>(load(stem));
}

std::size_t TraceStats::min_disks(util::Bytes disk_capacity) const {
  if (disk_capacity == 0) return 0;
  return static_cast<std::size_t>(
      std::ceil(static_cast<double>(total_catalog_bytes) /
                static_cast<double>(disk_capacity)));
}

TraceStats analyze(const Trace& trace) {
  TraceStats out;
  out.requests = trace.size();
  out.duration_s = trace.duration();
  out.total_catalog_bytes = trace.catalog().total_bytes();
  if (trace.empty()) return out;

  // Distinct-file count comes from the dense per-file access_count vector
  // rather than a hash set: FileIds are contiguous catalog indices, and the
  // vector keeps this function free of unordered containers entirely.
  double bytes_sum = 0.0;
  std::vector<double> access_count(trace.catalog().size(), 0.0);
  for (const auto& r : trace.records()) {
    bytes_sum += static_cast<double>(trace.catalog().by_id(r.file).size);
    access_count[r.file] += 1.0;
  }
  out.distinct_files = static_cast<std::size_t>(
      std::count_if(access_count.begin(), access_count.end(),
                    [](double c) { return c > 0.0; }));
  out.arrival_rate = out.duration_s > 0.0
                         ? static_cast<double>(out.requests) / out.duration_s
                         : 0.0;
  out.mean_accessed_bytes = bytes_sum / static_cast<double>(out.requests);

  // 80-bin log-spaced size histogram over the catalog, as in §5.1 ("we
  // classified the 88,631 files into 80 bins by their size").
  const double lo = std::max<double>(
      1.0, static_cast<double>(trace.catalog().min_size()));
  const double hi = static_cast<double>(trace.catalog().max_size()) * 1.0001;
  if (hi > lo) {
    stats::LogHistogram hist{lo, hi, 80};
    for (const auto& f : trace.catalog().files()) {
      hist.add(static_cast<double>(f.size));
    }
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < hist.bins(); ++i) {
      if (hist.bin_count(i) > 0) {
        xs.push_back(hist.bin_mid(i));
        ys.push_back(static_cast<double>(hist.bin_count(i)) /
                     static_cast<double>(hist.total()));
      }
    }
    out.size_loglog_fit = util::log_log_fit(xs, ys);
  }

  // Pearson correlation of (size, access count) over files that were
  // accessed at least once.
  {
    std::vector<double> sizes, counts;
    for (const auto& f : trace.catalog().files()) {
      if (access_count[f.id] > 0.0) {
        sizes.push_back(static_cast<double>(f.size));
        counts.push_back(access_count[f.id]);
      }
    }
    if (sizes.size() >= 2) {
      const double ms = util::mean(sizes);
      const double mc = util::mean(counts);
      double num = 0, ds = 0, dc = 0;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        num += (sizes[i] - ms) * (counts[i] - mc);
        ds += (sizes[i] - ms) * (sizes[i] - ms);
        dc += (counts[i] - mc) * (counts[i] - mc);
      }
      if (ds > 0 && dc > 0) {
        out.size_frequency_correlation = num / std::sqrt(ds * dc);
      }
    }
  }
  return out;
}

} // namespace spindown::workload
