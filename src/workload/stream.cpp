#include "workload/stream.h"

#include <stdexcept>

namespace spindown::workload {

PoissonZipfStream::PoissonZipfStream(const FileCatalog& catalog, double rate,
                                     double horizon, util::Rng rng)
    : catalog_(catalog), arrivals_(rate), horizon_(horizon), rng_(rng) {
  if (catalog.empty()) {
    throw std::invalid_argument{"PoissonZipfStream: empty catalog"};
  }
  const auto probs = catalog.popularity_vector();
  file_choice_ = util::AliasTable{probs};
}

std::optional<Request> PoissonZipfStream::next() {
  const double t = arrivals_.next_arrival(rng_);
  if (t >= horizon_) return std::nullopt;
  Request r;
  r.id = next_id_++;
  r.arrival = t;
  r.file = static_cast<FileId>(file_choice_.sample(rng_));
  return r;
}

TraceStream::TraceStream(const Trace& trace) : trace_(trace) {}

std::optional<Request> TraceStream::next() {
  if (pos_ >= trace_.size()) return std::nullopt;
  const auto& rec = trace_.records()[pos_];
  Request r;
  r.id = pos_;
  r.arrival = rec.time;
  r.file = rec.file;
  r.lba = rec.lba;
  ++pos_;
  return r;
}

} // namespace spindown::workload
