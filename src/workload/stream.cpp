#include "workload/stream.h"

#include <stdexcept>

namespace spindown::workload {

ArrivalZipfStream::ArrivalZipfStream(const FileCatalog& catalog,
                                     std::unique_ptr<ArrivalProcess> arrivals,
                                     double horizon, util::Rng rng)
    : arrivals_(std::move(arrivals)), horizon_(horizon), rng_(rng) {
  if (catalog.empty()) {
    throw std::invalid_argument{"ArrivalZipfStream: empty catalog"};
  }
  if (arrivals_ == nullptr) {
    throw std::invalid_argument{"ArrivalZipfStream: null arrival process"};
  }
  const auto probs = catalog.popularity_vector();
  file_choice_ = util::AliasTable{probs};
}

std::optional<Request> ArrivalZipfStream::next() {
  const double t = arrivals_->next_arrival(rng_);
  if (t >= horizon_) return std::nullopt;
  Request r;
  r.id = next_id_++;
  r.arrival = t;
  r.file = static_cast<FileId>(file_choice_.sample(rng_));
  return r;
}

void RequestBlock::clear() {
  arrival.clear();
  id.clear();
  file.clear();
  lba.clear();
}

void RequestBlock::push(const Request& r) {
  arrival.push_back(r.arrival);
  id.push_back(r.id);
  file.push_back(r.file);
  lba.push_back(r.lba);
}

Request RequestBlock::get(std::size_t i) const {
  Request r;
  r.arrival = arrival[i];
  r.id = id[i];
  r.file = file[i];
  r.lba = lba[i];
  return r;
}

WindowedStream::WindowedStream(RequestStream& inner) : inner_(inner) {
  pending_ = inner_.next();
}

std::size_t WindowedStream::fill(double t_end, std::size_t max_count,
                                 RequestBlock& out) {
  std::size_t appended = 0;
  while (pending_.has_value() && appended < max_count &&
         pending_->arrival < t_end) {
    out.push(*pending_);
    pending_ = inner_.next();
    ++appended;
  }
  return appended;
}

PoissonZipfStream::PoissonZipfStream(const FileCatalog& catalog, double rate,
                                     double horizon, util::Rng rng)
    : inner_(catalog, std::make_unique<PoissonArrivals>(rate), horizon, rng) {}

TraceStream::TraceStream(const Trace& trace) : trace_(trace) {}

std::optional<Request> TraceStream::next() {
  if (pos_ >= trace_.size()) return std::nullopt;
  const auto& rec = trace_.records()[pos_];
  Request r;
  r.id = pos_;
  r.arrival = rec.time;
  r.file = rec.file;
  r.lba = rec.lba;
  ++pos_;
  return r;
}

} // namespace spindown::workload
