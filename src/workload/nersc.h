// nersc.h — synthetic substitute for the paper's NERSC workload log.
//
// The paper's §5.1 experiments replay a 30-day log of file read requests
// collected at NERSC (May 31 – June 29, 2008).  That log was never
// published, so we synthesize a trace that matches every aggregate statistic
// the paper reports about it:
//
//   * 88,631 distinct files, 115,832 read requests over 30 days
//     (mean arrival rate 0.044683 requests/second),
//   * mean size of accessed files 544 MB (~7.56 s service at 72 MB/s),
//   * minimum storage ~95 disks of 500 GB (~47.5 TB total),
//   * file sizes Zipf-like: the 80-bin size histogram decreases almost
//     linearly in log-log scale,
//   * no significant correlation between a file's size and its access
//     frequency,
//   * bursts of "a batch of files of similar sizes all at once" — the
//     phenomenon that motivates the Pack_Disks_v variant (§3.2).
//
// Downstream results (Figures 5, 6, and the group-size sweep) depend only on
// these aggregates — skewed cold-tail popularity, the arrival process, and
// burstiness — so matching them preserves the behaviour being measured.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/units.h"
#include "workload/trace.h"

namespace spindown::workload {

struct NerscSpec {
  std::size_t n_files = 88'631;
  std::size_t n_requests = 115'832;
  double duration_s = 30.0 * util::kDay;
  util::Bytes mean_size = util::mb(544.0);
  util::Bytes min_size = util::mb(1.0);
  util::Bytes max_size = util::gb(20.0);
  /// Zipf exponent for the *extra* accesses beyond the one per distinct file.
  double popularity_exponent = 0.9;
  /// Fraction of arrival epochs that are batches of similar-size files.
  /// Scientific retrievals stage whole datasets, so most *requests* arrive
  /// in batches: 0.35 of epochs at mean batch size 8 puts ~80% of requests
  /// into batches, which is what Figures 5/6's flat Pack_Disk curves imply
  /// about the real log (see DESIGN.md §4).
  double batch_fraction = 0.35;
  /// Batch size range (uniform) when a batch fires.
  std::size_t batch_min = 4;
  std::size_t batch_max = 12;
  /// Spacing between requests inside one batch (seconds).
  double batch_spacing_s = 0.5;
  /// Diurnal modulation: arrival intensity is high for `day_fraction` of
  /// each 24 h cycle and `night_intensity` (relative) otherwise.  Real
  /// data-center logs have strong quiet periods; without them no disk could
  /// ever sleep past a 2 h threshold at the published arrival rate, yet the
  /// paper's Figure 5 shows random placement still saving ~30% there.
  bool diurnal = true;
  double day_fraction = 0.4;
  double night_intensity = 0.12;
  std::uint64_t seed = 20090531; ///< default: the log's start date

  static NerscSpec paper();
};

/// Build the synthetic trace.  Deterministic given the spec (seed included).
Trace synthesize_nersc(const NerscSpec& spec);

} // namespace spindown::workload
