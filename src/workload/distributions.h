// distributions.h — the statistical models behind the paper's workloads.
//
// Table 1 of the paper defines the synthetic workload:
//   * access frequencies: Zipf-like, p_i = c / rank_i^(1-theta) with
//     theta = log 0.6 / log 0.4 (so the exponent 1-theta ~ 0.4425) and
//     c = 1 / H_n^(1-theta) the normalizer,
//   * file sizes: inverse Zipf-like (most popular file is smallest),
//     188 MB .. 20 GB,
//   * arrivals: Poisson with rate R in [1, 12] requests/second.
// The NERSC synthesizer additionally needs a bounded Pareto (power-law) size
// sampler whose mean can be calibrated to the published 544 MB.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace spindown::workload {

/// Zipf-like popularity over ranks 1..n: pmf(i) = c / i^exponent.
class ZipfPopularity {
public:
  /// exponent > 0; n >= 1.  For the paper's workload use
  /// `ZipfPopularity::paper(n)`.
  ZipfPopularity(std::size_t n, double exponent);

  /// The paper's parameterization: exponent = 1 - log0.6/log0.4.
  static ZipfPopularity paper(std::size_t n);

  std::size_t n() const { return n_; }
  double exponent() const { return exponent_; }

  /// Probability of rank i (1-based).  Sums to 1 over 1..n.
  double pmf(std::size_t rank) const;

  /// All probabilities, index 0 holding rank 1.
  const std::vector<double>& probabilities() const { return probs_; }

  /// O(1) sampling of a rank in [1, n].
  std::size_t sample(util::Rng& rng) const;

private:
  std::size_t n_;
  double exponent_;
  double normalizer_; // 1 / H_n^(exponent)
  std::vector<double> probs_;
  util::AliasTable alias_;
};

/// Homogeneous Poisson arrival process: exponential inter-arrival times.
class PoissonProcess {
public:
  /// rate in events per second (> 0).
  explicit PoissonProcess(double rate);

  double rate() const { return rate_; }

  /// Advance and return the next arrival time (strictly increasing).
  double next_arrival(util::Rng& rng);

  /// Current clock (time of the last arrival generated).
  double now() const { return now_; }

  void reset(double t0 = 0.0) { now_ = t0; }

private:
  double rate_;
  double now_ = 0.0;
};

/// Bounded Pareto distribution on [lo, hi] with shape alpha > 0, alpha != 1.
/// Used for NERSC-like file sizes: heavy-tailed, log-log-linear histogram.
class BoundedPareto {
public:
  BoundedPareto(double lo, double hi, double alpha);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double alpha() const { return alpha_; }

  /// Closed-form mean of the distribution.
  double mean() const;

  double sample(util::Rng& rng) const;

  /// Find alpha in (0.05, 5] such that mean() == target, by bisection.
  /// Throws std::invalid_argument if the target is outside (lo, hi).
  static BoundedPareto with_mean(double lo, double hi, double target_mean);

private:
  double lo_, hi_, alpha_;
};

} // namespace spindown::workload
