#include "adapt/slack.h"

#include <algorithm>
#include <stdexcept>

#include "util/units.h"

namespace spindown::adapt {

SlackAwarePolicy::SlackAwarePolicy(const disk::DiskParams& params,
                                   SlackConfig config)
    : config_(config), break_even_(params.break_even_threshold()),
      threshold_(config.floor_factor * break_even_),
      quantile_(config.percentile, config.quantile_gain) {
  if (config_.target_response_s <= 0.0) {
    throw std::invalid_argument{"SlackAwarePolicy: SLO must be > 0"};
  }
  if (config_.percentile <= 0.0 || config_.percentile >= 100.0) {
    throw std::invalid_argument{"SlackAwarePolicy: percentile in (0, 100)"};
  }
  if (config_.quantile_gain <= 0.0 || config_.quantile_gain >= 1.0) {
    throw std::invalid_argument{"SlackAwarePolicy: quantile_gain in (0, 1)"};
  }
  if (config_.widen <= 1.0 || config_.narrow <= 0.0 || config_.narrow > 1.0) {
    throw std::invalid_argument{
        "SlackAwarePolicy: need widen > 1 and narrow in (0, 1]"};
  }
  if (config_.floor_factor <= 0.0 ||
      config_.max_factor < config_.floor_factor) {
    throw std::invalid_argument{
        "SlackAwarePolicy: need 0 < floor_factor <= max_factor"};
  }
}

std::optional<double> SlackAwarePolicy::idle_timeout(util::Rng&) {
  return threshold_;
}

void SlackAwarePolicy::observe_completion(double response_time_s) {
  if (response_time_s < 0.0) return;
  quantile_.add(response_time_s);
  const double lo = config_.floor_factor * break_even_;
  const double hi = config_.max_factor * break_even_;
  if (quantile_.estimate() > config_.target_response_s) {
    threshold_ = std::min(hi, threshold_ * config_.widen);
  } else {
    threshold_ = std::max(lo, threshold_ * config_.narrow);
  }
}

std::string SlackAwarePolicy::name() const {
  return "slack(p" + util::format_double(config_.percentile, 1) + "<" +
         util::format_seconds(config_.target_response_s) + ")";
}

std::unique_ptr<disk::SpinDownPolicy> make_slack_policy(
    const disk::DiskParams& params, SlackConfig config) {
  return std::make_unique<SlackAwarePolicy>(params, config);
}

} // namespace spindown::adapt
