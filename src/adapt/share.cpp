#include "adapt/share.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spindown::adapt {

double counterfactual_idle_cost(const disk::DiskParams& params,
                                double threshold_s, double duration_s,
                                double delay_penalty_w) {
  if (duration_s <= threshold_s) {
    // The arrival beat the timeout: the whole period idled at idle power.
    return params.idle_w * duration_s;
  }
  double cost = params.idle_w * threshold_s + params.transition_energy();
  const double past_round_trip =
      duration_s - threshold_s - params.spindown_s - params.spinup_s;
  if (past_round_trip > 0.0) cost += params.standby_w * past_round_trip;
  // Delay seen by the ending arrival: if it lands mid-retraction it waits
  // out the rest of the spin-down (the head cannot abort), then the full
  // spin-up either way.
  const double retraction_left =
      std::max(0.0, threshold_s + params.spindown_s - duration_s);
  cost += delay_penalty_w * (retraction_left + params.spinup_s);
  return cost;
}

ShareThresholdPolicy::ShareThresholdPolicy(const disk::DiskParams& params,
                                           ShareConfig config)
    : params_(params), config_(config) {
  if (config_.experts < 2) {
    throw std::invalid_argument{"ShareThresholdPolicy: need >= 2 experts"};
  }
  if (config_.eta <= 0.0) {
    throw std::invalid_argument{"ShareThresholdPolicy: eta must be > 0"};
  }
  if (config_.share < 0.0 || config_.share >= 1.0) {
    throw std::invalid_argument{"ShareThresholdPolicy: share in [0, 1)"};
  }
  if (config_.delay_penalty_w < 0.0) {
    throw std::invalid_argument{"ShareThresholdPolicy: negative penalty"};
  }
  if (config_.max_factor <= 0.0) {
    throw std::invalid_argument{"ShareThresholdPolicy: max_factor must be > 0"};
  }
  // Grid: the "park immediately" extreme plus a geometric ladder from B/8
  // to max_factor·B — dense near the break-even point where the economics
  // pivot, sparse in the tails.
  const double B = params_.break_even_threshold();
  const std::size_t n = config_.experts;
  thresholds_.reserve(n);
  thresholds_.push_back(0.0);
  const double lo = B / 8.0;
  const double hi = config_.max_factor * B;
  const auto rungs = static_cast<double>(n - 2);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double frac = rungs > 0.0 ? static_cast<double>(i) / rungs : 0.0;
    thresholds_.push_back(lo * std::pow(hi / lo, frac));
  }
  weights_.assign(n, 1.0 / static_cast<double>(n));
  losses_.assign(n, 0.0);
}

double ShareThresholdPolicy::current_threshold() const {
  double t = 0.0;
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    t += weights_[i] * thresholds_[i];
  }
  return t;
}

std::optional<double> ShareThresholdPolicy::idle_timeout(util::Rng&) {
  return current_threshold();
}

void ShareThresholdPolicy::observe_idle(double duration, bool) {
  if (duration < 0.0) return;
  // Counterfactual losses, normalised into [0, 1] by the worst expert so
  // eta has a scale-free meaning regardless of period length.  losses_ is a
  // pre-sized scratch buffer: the update runs once per idle period on the
  // simulator's steady-state path, which stays allocation-free.
  std::vector<double>& losses = losses_;
  double worst = 0.0;
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    losses[i] = counterfactual_idle_cost(params_, thresholds_[i], duration,
                                         config_.delay_penalty_w);
    worst = std::max(worst, losses[i]);
  }
  if (worst <= 0.0) return; // zero-length period: nothing to learn
  double sum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] *= std::exp(-config_.eta * losses[i] / worst);
    sum += weights_[i];
  }
  // Fixed-share mixing (Herbster–Warmuth): keep a uniform floor under every
  // expert so a regime change can resurrect it.
  const double n = static_cast<double>(weights_.size());
  for (auto& w : weights_) {
    w = (1.0 - config_.share) * (w / sum) + config_.share / n;
  }
}

std::string ShareThresholdPolicy::name() const {
  return "share(" + std::to_string(config_.experts) + ")";
}

std::unique_ptr<disk::SpinDownPolicy> make_share_policy(
    const disk::DiskParams& params, ShareConfig config) {
  return std::make_unique<ShareThresholdPolicy>(params, config);
}

} // namespace spindown::adapt
