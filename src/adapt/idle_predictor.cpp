#include "adapt/idle_predictor.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace spindown::adapt {

EwmaIdlePredictorPolicy::EwmaIdlePredictorPolicy(const disk::DiskParams& params,
                                                 EwmaPredictorConfig config)
    : break_even_(params.break_even_threshold()), config_(config) {
  if (config_.alpha <= 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument{"EwmaIdlePredictorPolicy: alpha in (0, 1]"};
  }
  if (config_.deviation_margin < 0.0) {
    throw std::invalid_argument{"EwmaIdlePredictorPolicy: negative margin"};
  }
  if (config_.guard_factor < 1.0) {
    throw std::invalid_argument{
        "EwmaIdlePredictorPolicy: guard_factor must be >= 1"};
  }
  if (config_.park_fraction < 0.0 || config_.park_fraction > 1.0) {
    throw std::invalid_argument{
        "EwmaIdlePredictorPolicy: park_fraction in [0, 1]"};
  }
}

std::optional<double> EwmaIdlePredictorPolicy::idle_timeout(util::Rng&) {
  if (observed_ < config_.warmup) return break_even_;
  if (ewma_ - config_.deviation_margin * dev_ > break_even_) {
    return config_.park_fraction * break_even_; // confident long: park early
  }
  return config_.guard_factor * break_even_; // short or uncertain: dodge the
                                             // dead zone, bounded loss
}

void EwmaIdlePredictorPolicy::observe_idle(double duration, bool) {
  if (duration < 0.0) return;
  if (observed_ == 0) {
    // RFC 6298-style initialisation: first sample seeds the mean, half of
    // it the deviation.
    ewma_ = duration;
    dev_ = duration / 2.0;
  } else {
    // Asymmetric gain: a surprise-short period (the kind that turns an
    // aggressive park into a stall) adapts twice as fast as a long one.
    const double gain = duration < ewma_ ? std::min(1.0, 2.0 * config_.alpha)
                                         : config_.alpha;
    dev_ += gain * (std::abs(duration - ewma_) - dev_);
    ewma_ += gain * (duration - ewma_);
  }
  ++observed_;
}

std::string EwmaIdlePredictorPolicy::name() const {
  return "ewma(a=" + util::format_double(config_.alpha, 3) + ")";
}

std::unique_ptr<disk::SpinDownPolicy> make_ewma_policy(
    const disk::DiskParams& params, EwmaPredictorConfig config) {
  return std::make_unique<EwmaIdlePredictorPolicy>(params, config);
}

} // namespace spindown::adapt
