// signals.h — streaming workload-signal estimators shared by the adaptive
// policies (src/adapt/) and the fleet orchestration layer (src/orch/).
//
// Both consumers need the same two O(1)-state estimates of a live request
// stream: "where is the p-th response-time percentile right now" and "how
// fast are requests arriving".  Extracted here so the per-disk
// SlackAwarePolicy and the fleet-wide SLO sleep budget literally share one
// implementation — the budget's signals feed the same arithmetic the
// per-disk policy learns from.
//
//   * StreamingQuantile — the stochastic-approximation (Frugal-style)
//     quantile tracker: step up by gain·q·p on a sample above the estimate,
//     down by gain·q·(1−p) otherwise.  In equilibrium the up-steps (taken
//     with probability 1−p) balance the down-steps (probability p), which
//     happens exactly at the p-quantile; the multiplicative step keeps it
//     adapting under drift.
//   * RateEwma — an EWMA over inter-arrival gaps, reported as a rate.  The
//     gap (not the rate) is averaged so one long lull cannot be averaged
//     away by many short gaps that preceded it.
//
// Both are deterministic functions of the sample sequence — no clocks, no
// randomness — so every consumer inherits the shard bit-identity contract
// for free.
#pragma once

#include <cstdint>

namespace spindown::adapt {

/// Streaming p-quantile tracker.  add() is O(1); estimate() converges to
/// the p-quantile of the (possibly drifting) sample distribution.  The
/// first sample initializes the estimate directly.
class StreamingQuantile {
public:
  /// `percentile` in (0, 100); `gain` in (0, 1) — the step size as a
  /// fraction of the current estimate (validated by the policy/controller
  /// configs, asserted here only by arithmetic).
  StreamingQuantile(double percentile, double gain)
      : p_(percentile / 100.0), gain_(gain) {}

  void add(double x);

  double estimate() const { return estimate_; }
  std::uint64_t samples() const { return samples_; }

private:
  double p_;
  double gain_;
  double estimate_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// Streaming arrival-rate estimate: EWMA of inter-arrival gaps, exposed as
/// a rate.  Feed it absolute arrival times in non-decreasing order.  Until
/// two arrivals have been seen rate() reports `initial_rate` (0 = unknown).
class RateEwma {
public:
  explicit RateEwma(double alpha = 0.2, double initial_rate = 0.0)
      : alpha_(alpha), rate_(initial_rate) {}

  void observe_arrival(double t);

  double rate() const { return rate_; }
  std::uint64_t arrivals() const { return arrivals_; }

private:
  double alpha_;
  double rate_;
  double last_arrival_ = 0.0;
  double gap_ewma_ = 0.0;
  std::uint64_t arrivals_ = 0;
};

} // namespace spindown::adapt
