// idle_predictor.h — EWMA idle-time prediction for online spin-down.
//
// The paper's fixed break-even threshold B is minimax-optimal when nothing
// is known about the next idle period (2-competitive, Karlin et al.).  But
// the disk *does* know something: the durations of the periods it just
// lived through.  This policy keeps an exponentially-weighted moving
// average of completed idle-period durations plus an EWMA of the absolute
// deviation (the TCP RTT/RTTVAR estimator), giving a confidence band
// [ewma − k·dev, ewma + k·dev] for the next period:
//
//   * band entirely above B  → predicted-long: park after a token
//     park_fraction·B wait (default 0.1·B ≈ 5 s).  The arrival would have
//     met a parked disk under the fixed policy anyway, so this saves almost
//     the whole B-seconds-at-idle-power ramp (≈ 400 J on Table 2's disk) at
//     no extra response cost when the prediction holds — and the token wait
//     means a sudden burst (gaps shorter than it) never triggers the park
//     at all, so a regime change costs one wrong park at most rarely.
//   * otherwise              → raise the threshold to guard·B (default 2B).
//     This dodges the fixed policy's "dead zone" — gaps just past B where
//     spinning down loses energy *and* delays the next arrival — while
//     keeping the worst case bounded (a wrong prediction costs at most
//     guard·B extra idle seconds, i.e. the policy stays (1 + guard +
//     round-trip/B)-competitive on any single period).
//
// Adaptation is deliberately asymmetric (the TCP congestion-control shape):
// a period shorter than the current estimate updates at twice the gain, so
// one surprise-short period after a lull pulls the policy out of its
// aggressive regime almost immediately, while entering that regime takes
// several consistently long periods.  Until `warmup` periods have been
// observed the policy behaves exactly like the paper's break-even default.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "disk/params.h"
#include "disk/spin_policy.h"

namespace spindown::adapt {

struct EwmaPredictorConfig {
  double alpha = 0.25;           ///< EWMA gain for mean and deviation
  double deviation_margin = 1.0; ///< k in the ewma ± k·dev band
  double guard_factor = 2.0;     ///< predicted-short threshold, in units of B
  double park_fraction = 0.1;    ///< predicted-long threshold, in units of B
  std::uint64_t warmup = 3;      ///< observations before trusting the band
};

class EwmaIdlePredictorPolicy final : public disk::SpinDownPolicy {
public:
  explicit EwmaIdlePredictorPolicy(const disk::DiskParams& params,
                                   EwmaPredictorConfig config = {});

  std::optional<double> idle_timeout(util::Rng& rng) override;
  void observe_idle(double duration, bool spun_down) override;
  std::string name() const override;

  /// Trace probe: the EWMA-predicted next idle duration.
  double trace_estimate() const override { return ewma_; }

  double predicted_idle() const { return ewma_; }
  double predicted_deviation() const { return dev_; }
  std::uint64_t observed() const { return observed_; }
  double break_even() const { return break_even_; }

private:
  double break_even_;
  EwmaPredictorConfig config_;
  double ewma_ = 0.0;
  double dev_ = 0.0;
  std::uint64_t observed_ = 0;
};

std::unique_ptr<disk::SpinDownPolicy> make_ewma_policy(
    const disk::DiskParams& params, EwmaPredictorConfig config = {});

} // namespace spindown::adapt
