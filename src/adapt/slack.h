// slack.h — slack-aware spin-down: spend response-time headroom on energy.
//
// TimeTrader's framing (arXiv:1503.05338): latency *slack* — the gap
// between the response-time SLO and what users actually experience — is a
// budget, and power management is the natural place to spend it.  This
// policy tracks a streaming estimate of a response-time percentile (default
// p99 — spin-up stalls hit a few percent of requests, so only the tail sees
// them) from the disk's completion tap and steers a single threshold:
//
//   * estimate above the SLO → widen the threshold multiplicatively (spin
//     down later; protect latency).  Widening is fast (default ×1.25 per
//     completion over the SLO) because SLO violations compound.
//   * estimate at/below the SLO → narrow it slowly (default ×0.98) back
//     toward the break-even floor, re-spending the recovered slack.
//
// The threshold is clamped to [floor_factor·B, max_factor·B]; with the
// default floor of 1·B the policy is never more aggressive than the
// paper's break-even default — it only *widens* under latency pressure,
// which is precisely the move that dodges break-even's unprofitable
// dead-zone spin-downs (gaps just past B) on bursty traffic, improving
// energy and response together.
//
// The percentile estimator is adapt::StreamingQuantile (signals.h), the
// stochastic-approximation quantile tracker (Frugal-style) shared with the
// fleet orchestration layer — O(1) state, converges to the p-quantile, and
// keeps adapting when the workload drifts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "adapt/signals.h"
#include "disk/params.h"
#include "disk/spin_policy.h"

namespace spindown::adapt {

struct SlackConfig {
  double target_response_s = 60.0; ///< the SLO on the tracked percentile
  double percentile = 99.0;        ///< which percentile carries the SLO —
                                   ///< spin-up stalls land on the top few
                                   ///< percent of responses, so the SLO must
                                   ///< watch the tail to see them
  double quantile_gain = 0.05;     ///< estimator step, fraction of estimate
  double widen = 1.25;             ///< threshold factor on SLO violation
  double narrow = 0.98;            ///< threshold factor when meeting the SLO
  double floor_factor = 1.0;       ///< clamp floor, in units of break-even
  double max_factor = 8.0;         ///< clamp ceiling, in units of break-even
};

class SlackAwarePolicy final : public disk::SpinDownPolicy {
public:
  explicit SlackAwarePolicy(const disk::DiskParams& params,
                            SlackConfig config = {});

  std::optional<double> idle_timeout(util::Rng& rng) override;
  void observe_completion(double response_time_s) override;
  std::string name() const override;

  double threshold() const { return threshold_; }
  /// Trace probe: the controller's current spin-down threshold.
  double trace_estimate() const override { return threshold_; }
  /// Current streaming estimate of the tracked percentile.
  double estimated_percentile() const { return quantile_.estimate(); }
  std::uint64_t completions() const { return quantile_.samples(); }

private:
  SlackConfig config_;
  double break_even_;
  double threshold_;
  StreamingQuantile quantile_;
};

std::unique_ptr<disk::SpinDownPolicy> make_slack_policy(
    const disk::DiskParams& params, SlackConfig config = {});

} // namespace spindown::adapt
