#include "adapt/signals.h"

#include <algorithm>

namespace spindown::adapt {

void StreamingQuantile::add(double x) {
  if (x < 0.0) return;
  ++samples_;
  if (samples_ == 1) {
    estimate_ = x;
    return;
  }
  // The max(estimate, 0.1·x) step floor restarts a collapsed estimate: if
  // the stream jumps upward after the estimate converged near zero, a step
  // proportional to the estimate alone could never catch up.
  const double step = gain_ * std::max(estimate_, x * 0.1);
  if (x > estimate_) {
    estimate_ += step * p_;
  } else {
    estimate_ -= step * (1.0 - p_);
  }
  estimate_ = std::max(0.0, estimate_);
}

void RateEwma::observe_arrival(double t) {
  ++arrivals_;
  if (arrivals_ == 1) {
    last_arrival_ = t;
    return;
  }
  const double gap = std::max(1e-9, t - last_arrival_);
  last_arrival_ = t;
  if (arrivals_ == 2) {
    gap_ewma_ = gap;
  } else {
    gap_ewma_ = alpha_ * gap + (1.0 - alpha_) * gap_ewma_;
  }
  rate_ = 1.0 / gap_ewma_;
}

} // namespace spindown::adapt
