// share.h — fixed-share multiplicative-weights combiner over a grid of
// fixed spin-down thresholds.
//
// The Karlin et al. framework (surveyed in the paper's §2 and implemented
// as RandomizedCompetitivePolicy in disk/spin_policy.h) treats each fixed
// threshold as an expert.  The key observation — from Helmbold et al.,
// "Adaptive disk spin-down for mobile computers" — is that an idle period
// of duration d scores *every* expert counterfactually: the cost a
// threshold T would have paid on that period is fully determined by
// (T, d, DiskParams), whether or not T was the threshold actually used.
// So after each period every expert's weight is updated with its own loss,
// and the played threshold is the weight-weighted mean of the grid.
//
// Losses combine energy and a response-time penalty: if d > T the next
// arrival meets a parked (or retracting) disk and waits out the remaining
// spin-down plus the full spin-up; that delay is billed at
// `delay_penalty_w` joule-equivalents per second, making the energy/latency
// exchange rate an explicit knob.
//
// The "share" (fixed-share) step redistributes a small fraction of every
// weight uniformly each round, so the combiner can re-converge after a
// regime change instead of being stuck with collapsed weights — exactly the
// non-stationary setting the NHPP/MMPP workloads create.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "disk/params.h"
#include "disk/spin_policy.h"

namespace spindown::adapt {

struct ShareConfig {
  std::uint32_t experts = 12;    ///< grid size: T=0 plus experts−1 geometric
  double eta = 4.0;              ///< learning rate on normalised losses
  double share = 0.05;           ///< fixed-share mixing fraction per round
  double delay_penalty_w = 25.0; ///< J-equivalent per second of added delay
  double max_factor = 2.0;       ///< grid spans (0, max_factor·B]
};

/// Energy-plus-penalty cost a fixed threshold T would have paid on an idle
/// period of duration d (the counterfactual loss fed to every expert):
/// idle draw until min(T, d); if d > T also the transition energy, standby
/// draw for any remainder past the round trip, and the delay penalty for
/// the remaining retraction plus the spin-up the arrival waits out.
double counterfactual_idle_cost(const disk::DiskParams& params,
                                double threshold_s, double duration_s,
                                double delay_penalty_w);

class ShareThresholdPolicy final : public disk::SpinDownPolicy {
public:
  explicit ShareThresholdPolicy(const disk::DiskParams& params,
                                ShareConfig config = {});

  std::optional<double> idle_timeout(util::Rng& rng) override;
  void observe_idle(double duration, bool spun_down) override;
  std::string name() const override;

  /// The threshold currently played: the weight-weighted mean of the grid.
  double current_threshold() const;
  /// Trace probe: the blended threshold the combiner is playing.
  double trace_estimate() const override { return current_threshold(); }
  const std::vector<double>& thresholds() const { return thresholds_; }
  const std::vector<double>& weights() const { return weights_; }

private:
  disk::DiskParams params_;
  ShareConfig config_;
  std::vector<double> thresholds_;
  std::vector<double> weights_; ///< kept normalised to sum 1
  std::vector<double> losses_;  ///< per-round scratch (no steady-state allocs)
};

std::unique_ptr<disk::SpinDownPolicy> make_share_policy(
    const disk::DiskParams& params, ShareConfig config = {});

} // namespace spindown::adapt
