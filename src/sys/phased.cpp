#include "sys/phased.h"

#include <cmath>
#include <stdexcept>

#include "core/pack_disks.h"

namespace spindown::sys {

workload::FileCatalog drifted_catalog(const workload::FileCatalog& base,
                                      std::uint32_t window,
                                      double drift_per_window) {
  const std::size_t n = base.size();
  if (n == 0) return base;
  const auto shift = static_cast<std::size_t>(
      std::fmod(static_cast<double>(window) * drift_per_window, 1.0) *
      static_cast<double>(n));
  std::vector<workload::FileInfo> files = base.files();
  for (std::size_t i = 0; i < n; ++i) {
    files[i].popularity = base[(i + shift) % n].popularity;
  }
  return workload::FileCatalog{std::move(files)};
}

namespace {

/// Pass-through stream that tallies per-file request counts — the "access
/// statistics accumulated over periodic intervals" the reorganizer feeds on.
class CountingStream final : public workload::RequestStream {
public:
  CountingStream(workload::RequestStream& inner,
                 std::vector<std::uint64_t>& counts)
      : inner_(inner), counts_(counts) {}

  std::optional<workload::Request> next() override {
    auto r = inner_.next();
    if (r.has_value()) counts_.at(r->file) += 1;
    return r;
  }

private:
  workload::RequestStream& inner_;
  std::vector<std::uint64_t>& counts_;
};

} // namespace

PhasedResult run_phased(const PhasedConfig& config) {
  if (config.catalog == nullptr) {
    throw std::invalid_argument{"run_phased: catalog is required"};
  }
  if (config.windows == 0) {
    throw std::invalid_argument{"run_phased: need at least one window"};
  }
  const auto& base = *config.catalog;

  // Initial placement from the window-0 popularity.
  core::PackDisks pack;
  auto current = pack.allocate(
      core::normalize(drifted_catalog(base, 0, 0.0), config.model));

  PhasedResult out;
  core::Reorganizer reorganizer{config.model};
  // Decayed count state: sampling noise in one window is damped by the
  // memory of previous windows (see PhasedConfig::count_decay).
  std::vector<double> count_state(base.size(), 0.0);

  for (std::uint32_t w = 0; w < config.windows; ++w) {
    const auto window_catalog =
        drifted_catalog(base, w, config.drift_per_window);

    WindowReport report;
    report.disks_used = current.disk_count;

    // Simulate this window on the current placement.
    std::vector<std::uint64_t> counts(base.size(), 0);
    {
      const auto cache = CacheSpec::none().make();
      StorageSystem system{window_catalog, current.disk_of,
                           current.disk_count, config.model.disk,
                           config.policy, cache.get(),
                           config.seed + w};
      system.set_scheduler(config.scheduler);
      workload::PoissonZipfStream inner{window_catalog, config.model.rate,
                                        config.window_s,
                                        util::Rng{config.seed + w}};
      CountingStream counting{inner, counts};
      report.run = system.run(counting, config.window_s);
    }
    out.total_energy += report.run.power.energy;
    out.response.merge(report.run.response);

    // Fold this window into the decayed count state.
    for (std::size_t i = 0; i < counts.size(); ++i) {
      count_state[i] = config.count_decay * count_state[i] +
                       static_cast<double>(counts[i]);
    }

    // Plan (and pay for) the reorganization ahead of the next window.
    if (config.reorganize && w + 1 < config.windows) {
      // Scale the fractional state into integer counts for the planner
      // (x1024 keeps the decayed precision).
      std::vector<std::uint64_t> smoothed(count_state.size(), 0);
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < count_state.size(); ++i) {
        smoothed[i] = static_cast<std::uint64_t>(count_state[i] * 1024.0);
        total += smoothed[i];
      }
      // The window length backing the state grows with the memory:
      // sum_{j<=w} decay^j converges to 1/(1-decay).
      double effective_windows = 0.0;
      double weight = 1.0;
      for (std::uint32_t j = 0; j <= w; ++j) {
        effective_windows += weight;
        weight *= config.count_decay;
      }
      if (total > 0) {
        const auto plan = reorganizer.plan(
            base, smoothed, config.window_s * effective_windows * 1024.0,
            current);
        const auto& p = config.model.disk;
        const double migration_energy =
            2.0 * static_cast<double>(plan.bytes_moved) / p.transfer_bps *
            p.active_w;
        out.migrated_bytes += plan.bytes_moved;
        out.migration_energy += migration_energy;
        out.total_energy += migration_energy;
        current = plan.next;
        // The next window's report records what this migration cost.
        report.migrated_bytes = plan.bytes_moved;
        report.migration_energy = migration_energy;
      }
    }
    out.windows.push_back(std::move(report));
  }
  return out;
}

} // namespace spindown::sys
