// fleet.h — one scenario, many calendars: sharded simulation of a disk farm.
//
// A single run's event calendar is partitioned into per-disk-group
// sub-simulations (one des::Simulation per shard, reusing the pooled
// calendar unchanged; disk d lives in shard d % shards).  The cut is clean
// because the system's coupling is one-directional: disks interact only
// through the dispatcher/cache *at arrival time* (the cache mutates when a
// request is routed, never when it completes), and a completion never feeds
// back into shared state.  Two execution pipelines exploit that, chosen by
// classify_fleet_path():
//
//   * kShardLocal (the routerless fast path) — when the scenario is
//     *shard-decomposable*: no front cache (CacheSpec::shard_decomposable)
//     and a placement that resolved to a static file→disk map
//     (PlacementSpec::static_mapping; every built-in placement does).
//     Routing a request is then the pure function mapping[file] — no
//     arrival-order shared state exists — so workers generate arrivals
//     themselves and submit locally: no router thread, no conservative
//     windows, no mailboxes, zero cross-thread traffic on the hot path.
//     The synthetic arrival draws are one global RNG stream (arrival times
//     interleave with file choices), so a worker replays the *whole*
//     stream and keeps the arrivals its disks own; to keep that replicated
//     generation off the critical path on small hosts, the shard calendars
//     — which are fully independent here — are multiplexed onto
//     min(shards, hardware_concurrency) worker threads, each generating
//     the stream once for all the shards it drives.  Worker grouping is an
//     execution detail: every per-shard result is a function of the shard
//     partition alone.
//
//   * kRouted (the pipelined router) — when a front cache makes routing
//     depend on global arrival order.  The router thread generates
//     arrivals in conservative time windows, performs every cache access
//     and mapping lookup in arrival order (exactly the sequence the
//     single-calendar path sees), batches a whole window of decisions, and
//     publishes each shard's pre-routed batch over a lock-free SPSC ring
//     (util/spsc_ring.h); a second ring per shard recycles drained batch
//     arenas back to the router, so the router fills window N+1 while
//     workers drain window N and the steady state allocates nothing.
//     Because the minimum cross-shard latency is infinite (no feedback
//     path), any window length is causally safe; the window bounds
//     router/worker skew and batch memory, never correctness.
//
// Determinism: results are bit-identical on both paths, at every shard
// count, and to the single-calendar path, because
//   * each disk's RNG is split from the farm RNG in disk-id order,
//     independent of the shard partition and of which pipeline runs;
//   * synthetic arrival streams are replayed draw-for-draw (the router
//     pulls one stream; each fast-path worker pulls an identical clone);
//   * within a shard, replay uses run_until(arrival) + submit(), so
//     pending disk events at t <= arrival always execute before a
//     submission at t — a fixed tie rule that does not depend on how many
//     shards exist (the single calendar orders such measure-zero FP ties
//     by insertion sequence instead; synthetic arrival times are
//     continuous, so the two rules agree);
//   * aggregation is canonical (RunResult::recompute_from_per_disk):
//     moments fold in disk-id order, histograms merge bin-wise, so neither
//     completion interleaving nor merge order can leak into the result.
//
// The per-request arithmetic is identical to the sequential path; sharding
// buys wall-clock only.  `events` (calendar events executed) is the one
// RunResult field that differs from the single calendar: both fleet paths
// dispatch arrivals without scheduling them as events (and execute the
// same event count as each other).
#pragma once

#include <cstdint>
#include <vector>

#include "sys/experiment.h"

namespace spindown::sys {

/// Which pipeline a fleet run uses.  Never affects results — only the
/// thread/synchronization structure that produces them.
enum class FleetPath {
  kShardLocal, ///< routerless: workers generate + submit locally
  kRouted,     ///< router thread + per-shard SPSC ring pipeline
};

/// Classify `config`: kShardLocal iff routing decisions are
/// shard-decomposable — no front cache (CacheSpec::shard_decomposable) and
/// a static placement mapping (ExperimentConfig::dynamic_routing false,
/// which every built-in placement resolution guarantees).
FleetPath classify_fleet_path(const ExperimentConfig& config);

/// Pipeline diagnostics for one fleet run: wall-clock and occupancy
/// counters for the bench/regression tooling.  Never part of RunResult or
/// of any determinism contract — two bit-identical runs report different
/// timings.
struct ShardPerf {
  std::uint32_t shard = 0;
  std::uint64_t submissions = 0; ///< requests replayed into this shard
  std::uint64_t batches = 0;     ///< routed batches consumed (0 fast-path)
  std::uint64_t events = 0;      ///< calendar events executed by the shard
  /// Max full-ring occupancy observed right after a router publish (0 on
  /// the fast path): persistent highs mean workers lag the router,
  /// persistent lows mean the router is the bottleneck.
  std::size_t ring_high_water = 0;
};

struct FleetPerf {
  FleetPath path = FleetPath::kShardLocal;
  std::uint32_t shards = 0;
  std::uint32_t workers = 0; ///< OS threads driving shard calendars
  double router_busy_s = 0.0;  ///< router generation + routing time
  double router_stall_s = 0.0; ///< router blocked on a full ring
  std::vector<ShardPerf> per_shard;    ///< indexed by shard
  std::vector<double> worker_busy_s;   ///< indexed by worker
  std::vector<double> worker_wait_s;   ///< blocked on an empty ring
};

/// Resolve a requested shard count: 0 ("auto") becomes
/// hardware_concurrency clamped so every shard owns at least
/// kAutoMinDisksPerShard disks (oversharding a small farm costs more in
/// pipeline overhead than the extra parallelism returns); any explicit
/// request is honored up to [1, num_disks] — a shard owns at least one
/// disk.
std::uint32_t effective_shards(std::uint32_t requested,
                               std::uint32_t num_disks);

/// Floor applied to shards=auto only: auto never creates a shard with
/// fewer than this many disks.  Explicit shard counts may.
inline constexpr std::uint32_t kAutoMinDisksPerShard = 32;

/// Run `config` sharded `shards` ways and return the partial RunResults:
/// element 0 is the generator-side partial (request count, cache stats,
/// cache-hit response moments), elements 1..shards are the disk groups
/// (disk d lives in shard d % shards).  Folding the partials with
/// RunResult::merge — in any order — reproduces the single-calendar
/// result; run_fleet() does exactly that.  `path` selects the pipeline;
/// forcing kShardLocal on a non-decomposable config throws
/// std::invalid_argument (the fast path cannot replay cache decisions).
/// `perf`, when non-null, receives the run's pipeline diagnostics.
/// `trace`, when non-null and config.obs enables any kind, receives the
/// canonical sim-time event stream (obs::append_canonical order —
/// bit-identical at any shard count on either pipeline, and to the
/// single-calendar path) plus, when config.obs.profile is set, wall-clock
/// pipeline stage samples in RunTrace::profile.
/// Requires a positive measurement horizon (every built-in workload has
/// one).  Throws std::invalid_argument on config errors.
std::vector<RunResult> run_fleet_partials(const ExperimentConfig& config,
                                          std::uint32_t shards,
                                          FleetPath path,
                                          FleetPerf* perf = nullptr,
                                          obs::RunTrace* trace = nullptr);
/// As above with path = classify_fleet_path(config).
std::vector<RunResult> run_fleet_partials(const ExperimentConfig& config,
                                          std::uint32_t shards);

/// Run `config` sharded `shards` ways (>= 1; not auto-resolved) and return
/// the merged result.  Bit-identical to run_experiment with shards == 1 on
/// every physical field, whichever pipeline runs.
RunResult run_fleet(const ExperimentConfig& config, std::uint32_t shards,
                    FleetPath path, FleetPerf* perf = nullptr,
                    obs::RunTrace* trace = nullptr);
/// As above with path = classify_fleet_path(config).
RunResult run_fleet(const ExperimentConfig& config, std::uint32_t shards);

} // namespace spindown::sys
