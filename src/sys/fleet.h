// fleet.h — one scenario, many calendars: sharded simulation of a disk farm.
//
// A single run's event calendar is partitioned into per-disk-group
// sub-simulations (one des::Simulation per shard, reusing the pooled
// calendar unchanged) that execute on their own threads.  The cut is clean
// because the system's coupling is one-directional: disks interact only
// through the dispatcher/cache *at arrival time* (the cache mutates when a
// request is routed, never when it completes), and a completion never feeds
// back into shared state.  So the router — running on the calling thread —
// generates arrivals in windows, performs every cache access and mapping
// lookup in arrival order (exactly the sequence the single-calendar path
// sees), and hands each shard a batch of pre-routed submissions; shards
// replay their batches independently and can never require a rollback.
//
// Synchronization is conservative time-windowing: a shard's local clock may
// only advance to the window frontier the router has fully routed, so no
// submission can arrive in a shard's past.  Because the minimum cross-shard
// latency is infinite (no feedback path), any window length is causally
// safe; the window bounds the router/shard skew and the batch memory
// footprint rather than correctness.
//
// Determinism: results are bit-identical at every shard count (and to the
// single-calendar path) because
//   * each disk's RNG is split from the farm RNG in disk-id order on the
//     router thread, independent of the shard partition;
//   * within a shard, batch replay uses run_until(arrival) + submit(), so
//     pending disk events at t <= arrival always execute before a
//     submission at t — a fixed tie rule that does not depend on how many
//     shards exist (the single calendar orders such measure-zero FP ties by
//     insertion sequence instead; synthetic arrival times are continuous,
//     so the two rules agree);
//   * aggregation is canonical (RunResult::recompute_from_per_disk): moments
//     fold in disk-id order, histograms merge bin-wise, so neither
//     completion interleaving nor merge order can leak into the result.
//
// The per-request arithmetic is identical to the sequential path; sharding
// buys wall-clock only.  `events` (calendar events executed) is the one
// RunResult field that differs: the router path dispatches arrivals without
// scheduling them as events.
#pragma once

#include <cstdint>
#include <vector>

#include "sys/experiment.h"

namespace spindown::sys {

/// Resolve a requested shard count: 0 ("auto") becomes
/// hardware_concurrency, and the result is clamped to [1, num_disks] — a
/// shard owns at least one disk.
std::uint32_t effective_shards(std::uint32_t requested,
                               std::uint32_t num_disks);

/// Run `config` sharded `shards` ways and return the partial RunResults:
/// element 0 is the router's partial (request count, cache stats, cache-hit
/// response moments), elements 1..shards are the disk groups (disk d lives
/// in shard d % shards).  Folding the partials with RunResult::merge — in
/// any order — reproduces the single-calendar result; run_fleet() does
/// exactly that.  Requires a positive measurement horizon (every built-in
/// workload has one).  Throws std::invalid_argument on config errors.
std::vector<RunResult> run_fleet_partials(const ExperimentConfig& config,
                                          std::uint32_t shards);

/// Run `config` sharded `shards` ways (>= 1; not auto-resolved) and return
/// the merged result.  Bit-identical to run_experiment with shards == 1 on
/// every physical field.
RunResult run_fleet(const ExperimentConfig& config, std::uint32_t shards);

} // namespace spindown::sys
