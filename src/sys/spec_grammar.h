// spec_grammar.h — shared internal helpers of the spec-key parsers
// (PolicySpec/SchedulerSpec/WorkloadSpec/CacheSpec in experiment/system and
// CatalogSpec/PlacementSpec/ScenarioSpec in scenario).  One tokenizer for
// the "name(a,b,...)" shell and one strict numeric parse each, so the
// grammars cannot drift apart.  Every failure is std::invalid_argument —
// the single exception type the spec parse() contracts document.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "util/units.h"

namespace spindown::sys::detail {

inline std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const auto next = s.find(sep, pos);
    out.push_back(s.substr(pos, next - pos));
    if (next == std::string::npos) return out;
    pos = next + 1;
  }
}

/// The "name(a,b,...)" shell shared by every call-style spec key.
/// `who` names the throwing spec type in error messages.
inline std::vector<std::string> parse_call(const std::string& name,
                                           const std::string& head,
                                           const std::string& who) {
  if (name.size() < head.size() + 2 ||
      name.compare(0, head.size(), head) != 0 || name[head.size()] != '(' ||
      name.back() != ')') {
    throw std::invalid_argument{who + ": malformed '" + name + "'"};
  }
  return split(name.substr(head.size() + 1, name.size() - head.size() - 2),
               ',');
}

inline double parse_number(const std::string& s, const std::string& context,
                           const std::string& who) {
  const auto v = util::parse_finite_double(s);
  if (!v.has_value()) {
    throw std::invalid_argument{who + ": bad number '" + s + "' in " +
                                context};
  }
  return *v;
}

/// Strict decimal std::uint64_t parse.  Rejects signs, garbage, and
/// overflow (at most 19 digits always fits), so std::out_of_range can
/// never escape a spec parser.
inline std::uint64_t parse_unsigned(const std::string& s,
                                    const std::string& context,
                                    const std::string& who) {
  if (s.empty() || s.size() > 19 ||
      s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument{who + ": bad count '" + s + "' in " +
                                context};
  }
  return std::stoull(s);
}

} // namespace spindown::sys::detail
