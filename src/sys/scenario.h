// scenario.h — the whole experiment as a value.
//
// A ScenarioSpec names every axis of the paper's scenario space — catalog ×
// placement × spin-down policy × scheduler × cache × workload × seed — as
// one canonical, parseable string, so any figure point, ablation cell, or
// future sweep is reproducible from a single line:
//
//   catalog=table1(40000,1) placement=pack load=0.8 disks=100
//   policy=break-even sched=fcfs cache=none workload=poisson(6,4000) seed=1
//
// parse(spec()) round-trips at the top level and for every component key.
// The resolution layer (ScenarioCache / resolve_scenario) turns a spec into
// the ExperimentConfig that run_experiment consumes — owning the catalog,
// trace, and mapping that ExperimentConfig only points at — and memoizes
// catalog generation and placement across a sweep so grids don't re-pack
// per point.  examples/spindown_run.cpp is the universal CLI over this API.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sys/experiment.h"
#include "workload/catalog.h"
#include "workload/nersc.h"

namespace spindown::sys {

/// Where the file population comes from.  Synthetic catalogs are generated
/// (Table 1 or fully parameterized), NERSC catalogs are synthesized *with*
/// their 30-day request trace (§5.1), and trace catalogs are loaded from a
/// Trace::save() CSV stem (catalog + records).  The latter two also provide
/// the trace that a "replay" workload runs.
struct CatalogSpec {
  enum class Kind { kSynthetic, kNersc, kTrace };
  Kind kind = Kind::kSynthetic;
  // kSynthetic: generator parameters + the generator's own seed (kept
  // separate from the run seed so e.g. golden configs can pin the layout
  // while sweeping the arrival randomness).
  workload::SyntheticSpec synth = workload::SyntheticSpec::paper_table1();
  std::uint64_t seed = 1;
  // kNersc: the synthesizer's spec.  Only the fields the grammar names
  // (n_files, n_requests, seed, duration_s, batch_fraction, batch_min,
  // batch_max) round-trip; leave the rest at their defaults when the
  // scenario must be nameable by a string.
  workload::NerscSpec nersc;
  // kTrace: CSV stem for Trace::load (no whitespace; the scenario grammar
  // is whitespace-separated).
  std::string path;

  /// Table 1's catalog, optionally scaled down.
  static CatalogSpec table1(std::size_t n_files = 40'000,
                            std::uint64_t seed = 1);
  static CatalogSpec synthetic(const workload::SyntheticSpec& synth,
                               std::uint64_t seed = 1);
  static CatalogSpec nersc_synth(const workload::NerscSpec& spec);
  static CatalogSpec trace(std::string path);

  /// True when resolution yields a request trace alongside the catalog
  /// (what a "replay" workload needs).
  bool has_trace() const { return kind != Kind::kSynthetic; }

  /// Parse a catalog key; accepts everything spec() emits.  Grammar:
  ///   table1(n,seed)                      — Table 1, n files
  ///   synth(n,zipf,maxsize,corr,seed)     — corr: inverse|independent|direct,
  ///                                         zipf 0 = the paper's 1-theta,
  ///                                         maxsize with util::parse_bytes
  ///                                         suffix ("20g")
  ///   nersc(files,requests,seed[,dur_s[,bfrac[,bmin[,bmax]]]])
  ///   trace:<stem>                        — Trace::save CSV stem
  /// Throws std::invalid_argument on anything else.
  static CatalogSpec parse(const std::string& name);
  /// Canonical parseable key such that parse(spec()) round-trips; emits the
  /// table1(...) shorthand when only n_files differs from Table 1.
  std::string spec() const;
};

/// How files land on disks: one declarative front over the src/core
/// allocators (plus MAID's replication scheme).  The load model feeding
/// normalize() comes from the enclosing scenario: R is the workload's mean
/// rate, L the scenario's `load=` key.
struct PlacementSpec {
  enum class Kind { kPack, kGrouped, kRandom, kMaid, kSea, kSegregated, kFfd };
  Kind kind = Kind::kPack;
  std::uint32_t group_size = 4;   ///< kGrouped: Pack_Disks_v's v
  std::uint32_t cache_disks = 4;  ///< kMaid: always-on cache disks
  double hot_load_share = 0.8;    ///< kSea: load carried by the hot zone
  std::uint32_t size_classes = 2; ///< kSegregated: size classes
  /// k-way replication over the base placement (`replicas=` scenario key,
  /// orthogonal to the placement kind): replica r of file f lives at
  /// (mapping[f] + r * stride) % D, stride = max(1, D / k).  With
  /// orchestration redirect enabled, reads route to whichever replica is
  /// predicted spun up; without it replica 0 (the base mapping) serves
  /// every request and results match replicas=1 exactly.
  std::uint32_t replicas = 1;

  static PlacementSpec pack() { return {}; }
  static PlacementSpec grouped(std::uint32_t v) {
    PlacementSpec p;
    p.kind = Kind::kGrouped;
    p.group_size = v;
    return p;
  }
  static PlacementSpec random() {
    PlacementSpec p;
    p.kind = Kind::kRandom;
    return p;
  }
  static PlacementSpec maid(std::uint32_t cache_disks = 4) {
    PlacementSpec p;
    p.kind = Kind::kMaid;
    p.cache_disks = cache_disks;
    return p;
  }
  static PlacementSpec sea(double hot_load_share = 0.8) {
    PlacementSpec p;
    p.kind = Kind::kSea;
    p.hot_load_share = hot_load_share;
    return p;
  }
  static PlacementSpec segregated(std::uint32_t classes = 2) {
    PlacementSpec p;
    p.kind = Kind::kSegregated;
    p.size_classes = classes;
    return p;
  }
  static PlacementSpec ffd() {
    PlacementSpec p;
    p.kind = Kind::kFfd;
    return p;
  }

  /// Parse a placement key — "pack", "grouped:4", "random", "maid:4",
  /// "sea:0.8", "seg:2", "ffd" (bare "grouped"/"maid"/"sea"/"seg" take the
  /// defaults above).  `replicas` is not part of this key; it has its own
  /// top-level `replicas=` scenario key.  Throws std::invalid_argument on
  /// anything else.
  static PlacementSpec parse(const std::string& name);
  /// Canonical parseable key such that parse(spec()) round-trips.
  std::string spec() const;

  /// True when resolution reduces this placement to a fixed file→disk map
  /// (ExperimentConfig::mapping) that never changes during the run.  The
  /// base placements all qualify — they decide disk assignment from the
  /// catalog alone, before the first arrival — which is half of what lets
  /// sharded runs take the routerless fast path (sys/fleet.h).  With
  /// `replicas` > 1 the map is per request: replica-aware redirection
  /// routes each read to whichever copy is spun up, so routing depends on
  /// global arrival order and fleet runs fall back to the router.
  bool static_mapping() const { return replicas <= 1; }
};

/// The complete experiment as a value.  Everything run_experiment needs is
/// derivable from this spec alone; see the file comment for the grammar.
struct ScenarioSpec {
  std::string label; ///< optional display name (no whitespace to round-trip)
  CatalogSpec catalog;
  PlacementSpec placement;
  /// L of the §3 load model: fraction of a disk's max service rate the
  /// packing may load onto it.  Random placement ignores it when `disks`
  /// pins the farm (the paper's lenient baseline).
  double load_fraction = 0.8;
  /// Farm-size floor.  0 lets the allocator decide; random placement with
  /// disks=0 spreads over as many disks as Pack_Disks would use (§5.1's
  /// convention); MAID requires an explicit farm (cache + data disks).
  std::uint32_t disks = 0;
  /// Disk model.  Not part of the string grammar (every experiment in the
  /// paper uses the ST3500630AS); programmatic overrides are invisible to
  /// spec()/operator==.
  disk::DiskParams params = disk::DiskParams::st3500630as();
  PolicySpec policy = PolicySpec::break_even();
  SchedulerSpec scheduler = SchedulerSpec::fcfs();
  CacheSpec cache = CacheSpec::none();
  WorkloadSpec workload;
  std::uint64_t seed = 1;
  /// `shards=<n|auto>`: split the run across n per-disk-group
  /// sub-simulations (sys/fleet.h); 1 (the default) is the single-calendar
  /// path and 0 renders as "auto" (one shard per hardware thread, clamped
  /// so every shard owns at least fleet.h's kAutoMinDisksPerShard disks —
  /// oversharding a small farm costs more than it buys).  Shard
  /// count changes wall-clock only, never results, so it is deliberately
  /// NOT part of the result-determining scenario identity: spec() omits
  /// the key at its default.
  std::uint32_t shards = 1;
  /// `obs=<spec>`: which observability event families a traced run records
  /// (ObsSpec grammar: "off", "all", or '+'-joined
  /// spans|power|policy|metrics[:interval]|profile).  Like shards, tracing
  /// never changes results — the canonical sim-time event stream is
  /// bit-identical at any shard count and the RunResult matches the
  /// untraced run — so spec() omits the key at its default ("off").
  ObsSpec obs;
  /// `orch=<spec>`: fleet power orchestration (OrchSpec grammar: "off" or
  /// '+'-joined redirect|offload[:L[:deadline]]|budget:p99:<slo>|
  /// writes:<frac>).  Enabling any mechanism forces the fleet router path;
  /// results stay bit-identical at any shard count.  spec() omits the key
  /// at its default ("off").
  OrchSpec orch;

  /// Parse a whitespace-separated `key=value` list.  Keys: label, catalog,
  /// placement, replicas, load, disks, policy, sched (alias scheduler),
  /// cache, workload, seed, shards, obs, orch; missing keys keep their
  /// defaults, unknown keys throw std::invalid_argument, later duplicates
  /// win.
  static ScenarioSpec parse(const std::string& text);
  /// Canonical fully-explicit key=value string such that
  /// parse(spec()) == *this.
  std::string spec() const;
  /// Copy with one key reassigned through the parser — the primitive
  /// spindown_run's --sweep uses to cross grids.
  ScenarioSpec with(const std::string& key, const std::string& value) const;

  /// Canonical-name equality: two scenarios are equal iff their canonical
  /// strings are (fields outside the grammar — params, an injected raw
  /// trace — do not participate).
  friend bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) {
    return a.spec() == b.spec();
  }
  friend bool operator!=(const ScenarioSpec& a, const ScenarioSpec& b) {
    return !(a == b);
  }
};

/// A spec made runnable: the ExperimentConfig plus ownership of everything
/// it points at.  Copyable; copies share the immutable catalog/trace/
/// mapping.
struct ResolvedScenario {
  std::shared_ptr<const workload::FileCatalog> catalog;
  /// Non-null when the catalog source carries records (nersc/trace).
  std::shared_ptr<const workload::Trace> trace;
  ExperimentConfig config;
};

/// Resolves specs into configs, memoizing catalog synthesis and placement
/// so a sweep over (policy × threshold × ...) builds each catalog and each
/// mapping once.  Not thread-safe: resolve on one thread (cheap next to the
/// simulations), then run the configs in parallel with run_sweep.
class ScenarioCache {
public:
  ResolvedScenario resolve(const ScenarioSpec& spec);

private:
  struct CatalogEntry {
    std::shared_ptr<const workload::FileCatalog> catalog;
    std::shared_ptr<const workload::Trace> trace;
  };
  struct MappingEntry {
    std::shared_ptr<const std::vector<std::uint32_t>> mapping;
    std::uint32_t alloc_disks = 0; ///< allocator-determined count
    std::vector<std::pair<std::uint32_t, PolicySpec>> policy_overrides;
  };
  const CatalogEntry& catalog_for(const ScenarioSpec& spec);
  const MappingEntry& mapping_for(const ScenarioSpec& spec,
                                  const CatalogEntry& cat, double rate);

  std::map<std::string, CatalogEntry> catalogs_;
  std::map<std::string, MappingEntry> mappings_;
};

/// One-shot resolution (fresh cache).
ResolvedScenario resolve_scenario(const ScenarioSpec& spec);

/// Resolve and run one scenario.
RunResult run_scenario(const ScenarioSpec& spec);

/// Resolve and run one scenario, collecting observability output: when
/// `trace` is non-null and spec.obs enables any kind, the canonical trace
/// lands in it (run_experiment's traced overload); `perf`, when non-null,
/// receives the fleet pipeline diagnostics.
RunResult run_scenario(const ScenarioSpec& spec, obs::RunTrace* trace,
                       FleetPerf* perf = nullptr);

/// Resolve all scenarios through one shared cache, then run them in
/// parallel via run_sweep.  Results land in input order.
std::vector<RunResult> run_scenarios(std::span<const ScenarioSpec> specs,
                                     unsigned max_threads = 0);

/// Machine-readable flat JSON object over a run's headline metrics,
/// including an "idle_periods" summary (count/mean/p50/p99) of the
/// farm-merged per-disk idle-period histogram.
std::string to_json(const RunResult& result);
/// Same, prefixed with the scenario's canonical string (one sweep row).
std::string to_json(const ScenarioSpec& spec, const RunResult& result);
/// Machine-readable JSON object over one fleet run's pipeline diagnostics
/// (sys/fleet.h FleetPerf), with one row per shard.  Wall-clock timings:
/// never deterministic, never part of a result.
std::string to_json(const FleetPerf& perf);

} // namespace spindown::sys
