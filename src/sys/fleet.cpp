#include "sys/fleet.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "des/simulation.h"
#include "disk/disk.h"
#include "stats/summary.h"
#include "stats/welford.h"
#include "util/rng.h"
#include "workload/stream.h"

namespace spindown::sys {
namespace {

/// Pre-routed submissions for one shard, one synchronization window.
/// Structure-of-arrays like workload::RequestBlock: the worker's replay
/// loop touches time[] on every iteration but the payload fields only at
/// submit time.
struct ShardBatch {
  std::vector<double> time;
  std::vector<std::uint64_t> request_id;
  std::vector<util::Bytes> bytes;
  std::vector<std::uint64_t> lba;
  std::vector<std::uint64_t> blocks;
  std::vector<std::uint32_t> local_disk;
  /// The routed frontier: the worker may advance its clock here after
  /// replaying the batch (the router has routed every arrival below it).
  double advance_to = 0.0;
  bool final = false;

  std::size_t size() const { return time.size(); }
  void push(double t, std::uint64_t id, util::Bytes b, std::uint64_t l,
            std::uint64_t nblocks, std::uint32_t disk) {
    time.push_back(t);
    request_id.push_back(id);
    bytes.push_back(b);
    lba.push_back(l);
    blocks.push_back(nblocks);
    local_disk.push_back(disk);
  }
};

/// Mailbox depth per shard: bounds router run-ahead (and batch memory)
/// without stalling workers that lag a window or two.
constexpr std::size_t kMaxQueuedBatches = 16;

/// One shard: a private calendar plus the disks with id % shards == index.
/// The router thread fills the mailbox; the worker thread replays batches
/// with run_until(arrival) + submit() and finalizes into `partial`.
struct ShardState {
  // Inputs, set before the thread starts.
  const ExperimentConfig* config = nullptr;
  std::vector<std::uint32_t> disk_ids;      ///< global ids, ascending
  std::vector<util::Rng> rngs;              ///< one per disk, pre-split
  std::vector<const PolicySpec*> policies;  ///< one per disk
  double horizon = 0.0;

  // Mailbox (mutex-guarded; cv signals both directions).
  std::mutex mu;
  std::condition_variable cv;
  std::deque<ShardBatch> queue;
  bool aborted = false;

  // Outputs, read after join.
  RunResult partial;
  std::exception_ptr error;

  void push(ShardBatch batch) {
    std::unique_lock lock{mu};
    cv.wait(lock, [this] {
      return queue.size() < kMaxQueuedBatches || error != nullptr || aborted;
    });
    if (error != nullptr || aborted) return; // drained at join
    queue.push_back(std::move(batch));
    cv.notify_all();
  }

  void abort() {
    const std::scoped_lock lock{mu};
    aborted = true;
    cv.notify_all();
  }

  void run() {
    try {
      simulate();
    } catch (...) {
      const std::scoped_lock lock{mu};
      error = std::current_exception();
      queue.clear(); // unblock the router; it aborts on the next push
      cv.notify_all();
    }
  }

private:
  void simulate() {
    des::Simulation sim;
    std::vector<std::unique_ptr<disk::Disk>> disks;
    disks.reserve(disk_ids.size());
    std::vector<stats::Welford> responses(disk_ids.size());
    stats::LinearHistogram hist{stats::ResponseSummary::kHistLo,
                                stats::ResponseSummary::kHistHi,
                                stats::ResponseSummary::kHistBins};
    for (std::size_t l = 0; l < disk_ids.size(); ++l) {
      disks.push_back(std::make_unique<disk::Disk>(
          sim, disk_ids[l], config->params,
          policies[l]->make(config->params), rngs[l],
          config->scheduler.make()));
      disks.back()->set_completion_callback(
          [&resp = responses[l], &hist](const disk::Completion& c) {
            resp.add(c.response_time());
            hist.add(c.response_time());
          });
    }

    // The horizon snapshot (freezing the power/queue counters) must be
    // taken before the local clock first passes the horizon, exactly like
    // the single-calendar path's snapshot event.
    std::vector<disk::DiskMetrics> snapshot;
    const auto advance = [&](double t) {
      if (snapshot.empty() && t >= horizon) {
        sim.run_until(horizon);
        snapshot.reserve(disks.size());
        for (const auto& d : disks) snapshot.push_back(d->metrics(horizon));
      }
      sim.run_until(t);
    };

    for (;;) {
      ShardBatch batch;
      {
        std::unique_lock lock{mu};
        cv.wait(lock, [this] { return !queue.empty() || aborted; });
        if (aborted && queue.empty()) return;
        batch = std::move(queue.front());
        queue.pop_front();
        cv.notify_all();
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // Fixed tie rule: every pending disk event at t <= arrival runs
        // before the submission — identical at any shard count.
        advance(batch.time[i]);
        disks[batch.local_disk[i]]->submit(batch.request_id[i],
                                           batch.bytes[i], batch.lba[i],
                                           batch.blocks[i]);
      }
      if (batch.final) break;
      if (batch.advance_to > sim.now()) advance(batch.advance_to);
    }

    // Drain: in-flight services run to completion past the horizon and
    // still record their response times — the same episode structure as
    // the single-calendar path.
    advance(horizon);
    sim.run();
    for (std::size_t l = 0; l < snapshot.size(); ++l) {
      snapshot[l].response = responses[l];
    }
    partial.power.horizon_s = horizon;
    partial.events = sim.executed();
    partial.per_disk = std::move(snapshot);
    partial.recompute_from_per_disk(hist);
  }
};

} // namespace

std::uint32_t effective_shards(std::uint32_t requested,
                               std::uint32_t num_disks) {
  std::uint32_t shards =
      requested != 0 ? requested : std::thread::hardware_concurrency();
  if (shards == 0) shards = 1;
  return std::max<std::uint32_t>(1, std::min(shards, num_disks));
}

std::vector<RunResult> run_fleet_partials(const ExperimentConfig& config,
                                          std::uint32_t shards) {
  if (config.catalog == nullptr) {
    throw std::invalid_argument{"ExperimentConfig: catalog is required"};
  }
  if (config.mapping.size() < config.catalog->size()) {
    throw std::invalid_argument{"run_fleet: mapping smaller than catalog"};
  }
  for (const auto d : config.mapping) {
    if (d >= config.num_disks) {
      throw std::invalid_argument{
          "StorageSystem: mapping references disk >= num_disks"};
    }
  }
  const double horizon = config.workload.measurement_horizon();
  if (horizon <= 0.0) {
    throw std::invalid_argument{
        "run_fleet: needs a positive measurement horizon (whole-episode "
        "measurement is a single-calendar feature)"};
  }
  shards = std::max<std::uint32_t>(
      1, std::min(shards, std::max<std::uint32_t>(1, config.num_disks)));

  // Per-disk RNGs split in disk-id order on this thread: each disk's draw
  // stream is a function of (seed, disk id) alone, never of the partition.
  util::Rng farm_rng{config.seed};
  std::vector<util::Rng> disk_rngs;
  disk_rngs.reserve(config.num_disks);
  for (std::uint32_t d = 0; d < config.num_disks; ++d) {
    disk_rngs.push_back(farm_rng.split());
  }

  std::vector<std::unique_ptr<ShardState>> states;
  states.reserve(shards);
  for (std::uint32_t w = 0; w < shards; ++w) {
    auto state = std::make_unique<ShardState>();
    state->config = &config;
    state->horizon = horizon;
    for (std::uint32_t d = w; d < config.num_disks; d += shards) {
      state->disk_ids.push_back(d);
      state->rngs.push_back(disk_rngs[d]);
      const PolicySpec* policy = &config.policy;
      for (const auto& [disk_id, override_policy] : config.policy_overrides) {
        if (disk_id == d) policy = &override_policy; // last override wins
      }
      state->policies.push_back(policy);
    }
    states.push_back(std::move(state));
  }

  const auto extents = workload::layout_extents(
      *config.catalog, config.mapping, config.num_disks);
  const auto cache = config.cache.make();
  const auto stream =
      config.workload.make_stream(*config.catalog, config.seed);

  RunResult root;
  root.power.horizon_s = horizon;
  stats::LinearHistogram root_hist{stats::ResponseSummary::kHistLo,
                                   stats::ResponseSummary::kHistHi,
                                   stats::ResponseSummary::kHistBins};
  std::uint64_t dispatched = 0;

  {
    std::vector<std::jthread> workers;
    workers.reserve(shards);
    for (auto& state : states) {
      workers.emplace_back([s = state.get()] { s->run(); });
    }
    try {
      // Conservative windows: route all arrivals below each frontier, then
      // let every shard advance to it.  Any length is causally safe (no
      // feedback path); this one bounds batch memory to a few thousand
      // submissions per shard at the bench's request rates.
      const double window = std::max(1e-3, horizon / 256.0);
      workload::WindowedStream windowed{*stream};
      workload::RequestBlock block;
      std::vector<ShardBatch> batches(shards);
      double frontier = 0.0;
      while (!windowed.exhausted()) {
        frontier += window;
        if (windowed.next_arrival() >= frontier) {
          // Idle stretch: jump the frontier to the next arrival's window
          // instead of shipping empty windows one by one.
          frontier = windowed.next_arrival() + window;
        }
        block.clear();
        windowed.fill(frontier, std::numeric_limits<std::size_t>::max(),
                      block);
        for (std::size_t i = 0; i < block.size(); ++i) {
          ++dispatched;
          const auto& file = config.catalog->by_id(block.file[i]);
          if (cache != nullptr && cache->access(file.id, file.size)) {
            // Cache hit, served from memory with zero latency (the only
            // latency the experiment path configures): recorded here, in
            // arrival order, exactly as the single-calendar path does.
            root.hits_response.add(0.0);
            root_hist.add(0.0);
            continue;
          }
          const auto& extent = extents[file.id];
          const std::uint64_t lba = block.lba[i] != workload::kNoLba
                                        ? block.lba[i]
                                        : extent.lba;
          batches[config.mapping[file.id]
                  % shards].push(block.arrival[i], block.id[i], file.size,
                                 lba, extent.blocks,
                                 config.mapping[file.id] / shards);
        }
        for (std::uint32_t w = 0; w < shards; ++w) {
          batches[w].advance_to = frontier;
          states[w]->push(std::move(batches[w]));
          batches[w] = ShardBatch{};
        }
      }
      for (auto& state : states) {
        ShardBatch last;
        last.final = true;
        last.advance_to = horizon;
        state->push(std::move(last));
      }
    } catch (...) {
      for (auto& state : states) state->abort();
      throw; // jthreads join on unwind
    }
  } // workers join here

  for (auto& state : states) {
    if (state->error) std::rethrow_exception(state->error);
  }

  root.requests = dispatched;
  if (cache != nullptr) root.cache = cache->stats();
  root.recompute_from_per_disk(root_hist);

  std::vector<RunResult> partials;
  partials.reserve(1 + shards);
  partials.push_back(std::move(root));
  for (auto& state : states) partials.push_back(std::move(state->partial));
  return partials;
}

RunResult run_fleet(const ExperimentConfig& config, std::uint32_t shards) {
  auto partials = run_fleet_partials(config, shards);
  RunResult result;
  for (const auto& p : partials) result.merge(p);
  return result;
}

} // namespace spindown::sys
