#include "sys/fleet.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "des/simulation.h"
#include "disk/disk.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "orch/controller.h"
#include "stats/summary.h"
#include "stats/welford.h"
#include "util/rng.h"
#include "util/spsc_ring.h"
#include "workload/stream.h"

namespace spindown::sys {
namespace {

// FleetPerf pipeline diagnostics and kProfile trace samples only: the
// measured durations are reported to benches/traces and never touch a
// RunResult.  obs/profile.h is the repo's sole wall-clock site.
using PerfClock = obs::ProfileClock;
using obs::seconds_since;

/// Ring capacity and arena count per routed shard: bounds router run-ahead
/// (and batch memory) without stalling workers that lag a window or two.
/// Because the router can only hold batches it popped from the free ring,
/// the full ring can never overflow — the free ring is the one
/// backpressure point in the pipeline.
constexpr std::size_t kBatchesPerShard = 16;

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

/// Pre-routed submissions for one shard, one synchronization window.
/// Structure-of-arrays like workload::RequestBlock: the worker's replay
/// loop touches time[] on every iteration but the payload fields only at
/// submit time.  Instances live in per-shard arenas and are recycled
/// through the free ring — reset() keeps vector capacity, so the steady
/// state allocates nothing.
struct ShardBatch {
  std::vector<double> time;
  std::vector<std::uint64_t> request_id;
  std::vector<util::Bytes> bytes;
  std::vector<std::uint64_t> lba;
  std::vector<std::uint64_t> blocks;
  std::vector<std::uint32_t> local_disk;
  std::vector<std::uint8_t> background; ///< orchestration destage I/O
  /// The routed frontier: the worker may advance its clock here after
  /// replaying the batch (the router has routed every arrival below it).
  double advance_to = 0.0;
  bool final = false;

  std::size_t size() const { return time.size(); }
  void push(double t, std::uint64_t id, util::Bytes b, std::uint64_t l,
            std::uint64_t nblocks, std::uint32_t disk, bool bg = false) {
    time.push_back(t);
    request_id.push_back(id);
    bytes.push_back(b);
    lba.push_back(l);
    blocks.push_back(nblocks);
    local_disk.push_back(disk);
    background.push_back(bg ? 1 : 0);
  }
  void reset() {
    time.clear();
    request_id.clear();
    bytes.clear();
    lba.clear();
    blocks.clear();
    local_disk.clear();
    background.clear();
    advance_to = 0.0;
    final = false;
  }
};

/// One shard's private calendar: the disks with id % shards == shard
/// (local index l holds global disk shard + l * shards), per-disk response
/// accumulators, and the horizon-snapshot rule — identical for both
/// pipelines, and structurally the same episode as StorageSystem::run.
/// Heap-allocated and never moved: the completion callbacks capture member
/// addresses.
class ShardSim {
public:
  /// `obs_mask` non-zero enables tracing into a shard-private buffer
  /// (single-writer: exactly one thread ever drives this calendar).  The
  /// sampler is started after every disk exists, so its calendar ticks are
  /// inserted after all idle timers — the same insertion order as the
  /// single-calendar path, hence the same measure-zero tie resolution.
  ShardSim(const ExperimentConfig& config, double horizon,
           const std::vector<std::uint32_t>& disk_ids,
           const std::vector<util::Rng>& rngs,
           const std::vector<const PolicySpec*>& policies,
           std::uint32_t obs_mask = 0, double metrics_interval_s = 0.0)
      : horizon_(horizon) {
    if (obs_mask != 0) {
      trace_ = std::make_unique<obs::TraceBuffer>(obs_mask);
    }
    disks_.reserve(disk_ids.size());
    responses_.resize(disk_ids.size());
    for (std::size_t l = 0; l < disk_ids.size(); ++l) {
      disks_.push_back(std::make_unique<disk::Disk>(
          sim_, disk_ids[l], config.params, policies[l]->make(config.params),
          rngs[l], config.scheduler.make()));
      if (trace_ != nullptr) disks_.back()->set_trace(trace_.get());
      disks_.back()->set_completion_callback(
          [&resp = responses_[l], this](const disk::Completion& c) {
            if (c.background) return; // destage I/O: not a client response
            resp.add(c.response_time());
            hist_.add(c.response_time());
          });
    }
    if (trace_ != nullptr) {
      sampler_ = std::make_unique<obs::MetricsSampler>(
          sim_, metrics_interval_s, horizon, trace_.get());
      for (const auto& d : disks_) sampler_->add_disk(d.get());
      sampler_->start();
    }
  }
  ShardSim(const ShardSim&) = delete;
  ShardSim& operator=(const ShardSim&) = delete;

  /// Fixed tie rule: every pending disk event at t <= arrival runs before
  /// a submission at t — identical at any shard count.  The horizon
  /// snapshot (freezing the power/queue counters) is taken before the
  /// local clock first passes the horizon, exactly like the
  /// single-calendar path's snapshot event.
  void advance(double t) {
    if (snapshot_.empty() && t >= horizon_) {
      sim_.run_until(horizon_);
      snapshot_.reserve(disks_.size());
      for (const auto& d : disks_) snapshot_.push_back(d->metrics(horizon_));
    }
    sim_.run_until(t);
  }

  void submit(std::uint32_t local_disk, std::uint64_t request_id,
              util::Bytes bytes, std::uint64_t lba, std::uint64_t blocks,
              bool background = false) {
    disks_[local_disk]->submit(request_id, bytes, lba, blocks, background);
    ++submissions_;
  }

  double now() const { return sim_.now(); }
  std::uint64_t submissions() const { return submissions_; }
  obs::TraceBuffer* trace_buffer() { return trace_.get(); }

  /// Drain: in-flight services run to completion past the horizon and
  /// still record their response times — the same episode structure as
  /// the single-calendar path.
  RunResult finalize() {
    advance(horizon_);
    sim_.run();
    for (std::size_t l = 0; l < snapshot_.size(); ++l) {
      snapshot_[l].response = responses_[l];
    }
    RunResult partial;
    partial.power.horizon_s = horizon_;
    // Sampler ticks are observation overhead, not simulated physics:
    // subtract them so `events` matches the untraced run bit-for-bit.
    partial.events =
        sim_.executed() - (sampler_ != nullptr ? sampler_->ticks() : 0);
    partial.per_disk = std::move(snapshot_);
    partial.recompute_from_per_disk(hist_);
    return partial;
  }

private:
  des::Simulation sim_;
  std::unique_ptr<obs::TraceBuffer> trace_;
  std::unique_ptr<obs::MetricsSampler> sampler_;
  std::vector<std::unique_ptr<disk::Disk>> disks_;
  std::vector<stats::Welford> responses_;
  stats::LinearHistogram hist_{stats::ResponseSummary::kHistLo,
                               stats::ResponseSummary::kHistHi,
                               stats::ResponseSummary::kHistBins};
  std::vector<disk::DiskMetrics> snapshot_;
  double horizon_ = 0.0;
  std::uint64_t submissions_ = 0;
};

/// Everything both pipelines derive from the config before any thread
/// starts: the shard partition, the per-disk RNGs (split in disk-id order
/// on the calling thread, so each disk's draw stream is a function of
/// (seed, disk id) alone, never of the partition), and the shared
/// read-only layout.
struct FleetSetup {
  std::uint32_t shards = 0;
  double horizon = 0.0;
  std::vector<std::vector<std::uint32_t>> disk_ids;      ///< per shard
  std::vector<std::vector<util::Rng>> rngs;              ///< per shard
  std::vector<std::vector<const PolicySpec*>> policies;  ///< per shard
  std::vector<workload::FileExtent> extents;
  /// The orchestration log tier never sleeps — it absorbs writes precisely
  /// because it is always on (policies[] points here for log disks).
  PolicySpec log_policy = PolicySpec::never();

  FleetSetup(const ExperimentConfig& config, std::uint32_t shards_in)
      : shards(shards_in), disk_ids(shards_in), rngs(shards_in),
        policies(shards_in) {
    horizon = config.workload.measurement_horizon();
    util::Rng farm_rng{config.seed};
    for (std::uint32_t d = 0; d < config.num_disks; ++d) {
      const std::uint32_t w = d % shards;
      disk_ids[w].push_back(d);
      rngs[w].push_back(farm_rng.split());
      const PolicySpec* policy = &config.policy;
      for (const auto& [disk_id, override_policy] : config.policy_overrides) {
        if (disk_id == d) policy = &override_policy; // last override wins
      }
      if (config.orch.offload &&
          d >= config.num_disks - config.orch.log_disks) {
        policy = &log_policy;
      }
      policies[w].push_back(policy);
    }
    extents = workload::layout_extents(*config.catalog, config.mapping,
                                       config.num_disks);
  }

  /// `obs_mask` covers the sim-time kinds only (kProfile samples are
  /// collected by the pipelines themselves, not the shard calendars).
  std::unique_ptr<ShardSim> make_sim(const ExperimentConfig& config,
                                     std::uint32_t shard,
                                     std::uint32_t obs_mask = 0) const {
    return std::make_unique<ShardSim>(config, horizon, disk_ids[shard],
                                      rngs[shard], policies[shard], obs_mask,
                                      config.obs.metrics_interval_s);
  }
};

// ---------------------------------------------------------------------------
// Routerless fast path: shard-local arrival generation.
// ---------------------------------------------------------------------------

/// One fast-path worker thread: drives the shard calendars in `owned`.
/// The synthetic arrival draws are a single global RNG stream, so every
/// worker replays the whole stream (identical clone, identical draws) and
/// keeps the arrivals its shards own — routing is the pure function
/// mapping[file], so no shared mutable state exists and no two workers
/// ever communicate.  Multiplexing several shard calendars onto one
/// worker changes nothing: the calendars are independent, and each one
/// sees exactly its own arrivals in arrival order.
struct LocalWorker {
  const ExperimentConfig* config = nullptr;
  const FleetSetup* setup = nullptr;
  std::vector<std::uint32_t> owned;               ///< shard indices
  std::vector<std::unique_ptr<ShardSim>> sims;    ///< parallel to owned
  std::uint64_t generated = 0;  ///< whole-stream arrival count
  double busy_s = 0.0;
  std::exception_ptr error;
  std::vector<RunResult>* partials = nullptr;  ///< slot s+1 per shard s
  /// kProfile stage sampling (obs profile): wall-clock offsets are taken
  /// against the run-wide prof_t0 so every lane shares one time origin.
  bool profiling = false;
  PerfClock::time_point prof_t0{};
  std::vector<obs::TraceEvent> prof; ///< kProfWorkerReplay, read after join

  void run() {
    try {
      simulate();
    } catch (...) {
      error = std::current_exception();
    }
  }

private:
  void simulate() {
    const auto t0 = PerfClock::now();
    const std::uint32_t shards = setup->shards;
    std::vector<std::uint32_t> slot(shards, kNoSlot);
    for (std::size_t i = 0; i < owned.size(); ++i) {
      slot[owned[i]] = static_cast<std::uint32_t>(i);
    }
    const auto stream =
        config->workload.make_stream(*config->catalog, config->seed);
    workload::WindowedStream windowed{*stream};
    workload::RequestBlock block;
    // Demux generation windows into per-shard batches and flush a whole
    // stretch of windows at once: replaying kBatchesPerShard windows of
    // one shard consecutively before touching the next keeps a single
    // calendar's working set hot, exactly the drain pattern the routed
    // pipeline's ring depth produces.  The batching exists purely for
    // cache locality — there is no causality to protect — and cannot
    // change results: each shard still sees its own arrivals in arrival
    // order, and the interleaved run_until targets are monotone per
    // shard, so the per-shard event execution sequence is identical to
    // replaying arrival by arrival.
    const double window = std::max(1e-3, setup->horizon / 256.0);
    std::vector<ShardBatch> batches(owned.size());
    double frontier = 0.0;
    std::size_t buffered_windows = 0;
    std::uint64_t flushes = 0;
    const auto flush = [&] {
      for (std::size_t s = 0; s < owned.size(); ++s) {
        auto& batch = batches[s];
        auto& sim = *sims[s];
        const double p0 = profiling ? seconds_since(prof_t0) : 0.0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          sim.advance(batch.time[i]);
          sim.submit(batch.local_disk[i], batch.request_id[i],
                     batch.bytes[i], batch.lba[i], batch.blocks[i]);
        }
        if (frontier > sim.now()) sim.advance(frontier);
        batch.reset();
        if (profiling) {
          prof.push_back(obs::TraceEvent{p0, flushes,
                                         seconds_since(prof_t0) - p0, 0.0,
                                         owned[s], obs::Kind::kProfile,
                                         obs::kProfWorkerReplay});
        }
      }
      buffered_windows = 0;
      ++flushes;
    };
    while (!windowed.exhausted()) {
      frontier += window;
      if (windowed.next_arrival() >= frontier) {
        frontier = windowed.next_arrival() + window;
      }
      block.clear();
      windowed.fill(frontier, std::numeric_limits<std::size_t>::max(),
                    block);
      generated += block.size();
      for (std::size_t i = 0; i < block.size(); ++i) {
        const auto& file = config->catalog->by_id(block.file[i]);
        const std::uint32_t disk = config->mapping[file.id];
        const std::uint32_t s = slot[disk % shards];
        if (s == kNoSlot) continue; // another worker's shard
        const auto& extent = setup->extents[file.id];
        const std::uint64_t lba = block.lba[i] != workload::kNoLba
                                      ? block.lba[i]
                                      : extent.lba;
        batches[s].push(block.arrival[i], block.id[i], file.size, lba,
                        extent.blocks, disk / shards);
      }
      if (++buffered_windows == kBatchesPerShard) flush();
    }
    flush();
    for (std::size_t i = 0; i < owned.size(); ++i) {
      (*partials)[owned[i] + 1] = sims[i]->finalize();
    }
    busy_s = seconds_since(t0);
  }
};

std::vector<RunResult> run_shard_local(const ExperimentConfig& config,
                                       const FleetSetup& setup,
                                       FleetPerf* perf,
                                       obs::RunTrace* trace) {
  const std::uint32_t shards = setup.shards;
  std::uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const std::uint32_t n_workers = std::min(shards, hw);

  const std::uint32_t mask = trace != nullptr ? config.obs.kind_mask() : 0;
  const std::uint32_t sim_mask = mask & ~obs::kind_bit(obs::Kind::kProfile);
  const bool profiling = trace != nullptr && config.obs.profile;
  const auto prof_t0 = PerfClock::now();

  std::vector<RunResult> partials(1 + shards);
  std::vector<LocalWorker> workers(n_workers);
  for (std::uint32_t w = 0; w < n_workers; ++w) {
    workers[w].config = &config;
    workers[w].setup = &setup;
    workers[w].partials = &partials;
    workers[w].profiling = profiling;
    workers[w].prof_t0 = prof_t0;
    for (std::uint32_t s = w; s < shards; s += n_workers) {
      workers[w].owned.push_back(s);
      workers[w].sims.push_back(setup.make_sim(config, s, sim_mask));
    }
  }
  {
    std::vector<std::jthread> threads;
    threads.reserve(n_workers);
    for (auto& worker : workers) {
      threads.emplace_back([&worker] { worker.run(); });
    }
  } // workers join here
  // Worker 0 owns shard 0: errors rethrow in lowest-shard-first order, the
  // same schedule-independent convention as run_sweep.
  for (const auto& worker : workers) {
    if (worker.error) std::rethrow_exception(worker.error);
  }

  RunResult& root = partials[0];
  root.power.horizon_s = setup.horizon;
  root.requests = workers[0].generated; // every worker replays the whole
                                        // stream; the counts are equal
  const stats::LinearHistogram empty_hist{stats::ResponseSummary::kHistLo,
                                          stats::ResponseSummary::kHistHi,
                                          stats::ResponseSummary::kHistBins};
  root.recompute_from_per_disk(empty_hist);

  if (trace != nullptr && mask != 0) {
    trace->horizon_s = setup.horizon;
    trace->shards = shards;
    trace->workers = n_workers;
    if (sim_mask != 0) {
      // Buffers gathered in shard order; append_canonical re-sorts by
      // track (stably), so the gather order never shows in the output.
      std::vector<obs::TraceBuffer*> buffers(shards, nullptr);
      for (const auto& worker : workers) {
        for (std::size_t i = 0; i < worker.owned.size(); ++i) {
          buffers[worker.owned[i]] = worker.sims[i]->trace_buffer();
        }
      }
      obs::append_canonical(trace->events, buffers);
    }
    // Profile samples are wall-clock (never part of the determinism
    // contract); order them by lane then start offset for readability.
    for (const auto& worker : workers) {
      trace->profile.insert(trace->profile.end(), worker.prof.begin(),
                            worker.prof.end());
    }
    std::stable_sort(trace->profile.begin(), trace->profile.end(),
                     [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                       if (obs::track_rank(a.track) != obs::track_rank(b.track))
                         return obs::track_rank(a.track) <
                                obs::track_rank(b.track);
                       return a.t < b.t;
                     });
  }

  if (perf != nullptr) {
    perf->workers = n_workers;
    perf->per_shard.resize(shards);
    perf->worker_busy_s.assign(n_workers, 0.0);
    perf->worker_wait_s.assign(n_workers, 0.0);
    for (std::uint32_t w = 0; w < n_workers; ++w) {
      perf->worker_busy_s[w] = workers[w].busy_s;
      for (std::size_t i = 0; i < workers[w].owned.size(); ++i) {
        const std::uint32_t s = workers[w].owned[i];
        perf->per_shard[s].shard = s;
        perf->per_shard[s].submissions = workers[w].sims[i]->submissions();
        perf->per_shard[s].events = partials[s + 1].events;
      }
    }
  }
  return partials;
}

// ---------------------------------------------------------------------------
// Pipelined router path: lock-free per-shard rings, recycled batch arenas.
// ---------------------------------------------------------------------------

/// Raised inside the router loop when a worker closed its rings (the
/// worker's own exception is the root cause and is rethrown after join).
struct PipelineAborted {};

/// One routed shard: a private calendar, the full ring (router -> worker,
/// carries filled batches) and the free ring (worker -> router, recycles
/// drained arenas).  The arenas double-buffer generically: the router
/// fills window N+1 (or several) while the worker drains window N, and a
/// full free ring is what parks an idle router.
struct RoutedShard {
  std::unique_ptr<ShardSim> sim;
  util::SpscRing<ShardBatch*> full{kBatchesPerShard};
  util::SpscRing<ShardBatch*> free_ring{kBatchesPerShard};
  std::vector<std::unique_ptr<ShardBatch>> arenas;
  std::uint32_t shard = 0;
  /// kProfile stage sampling (obs profile), shared run-wide time origin.
  bool profiling = false;
  PerfClock::time_point prof_t0{};
  // Outputs, read after join.
  RunResult partial;
  std::exception_ptr error;
  std::uint64_t batches = 0;
  double busy_s = 0.0;
  double wait_s = 0.0;
  std::vector<obs::TraceEvent> prof; ///< kProfRingWait / kProfWorkerReplay

  void init() {
    arenas.reserve(kBatchesPerShard);
    for (std::size_t i = 0; i < kBatchesPerShard; ++i) {
      arenas.push_back(std::make_unique<ShardBatch>());
      ShardBatch* arena = arenas.back().get();
      free_ring.try_push(arena); // capacity == arena count: cannot fail
    }
  }

  void run() {
    try {
      consume();
    } catch (...) {
      error = std::current_exception();
      full.close();
      free_ring.close(); // unblock the router; it aborts on the next pop
    }
  }

private:
  void consume() {
    const auto t0 = PerfClock::now();
    for (;;) {
      ShardBatch* batch = nullptr;
      const auto w0 = PerfClock::now();
      const double wait0 = profiling ? seconds_since(prof_t0) : 0.0;
      if (!full.pop(batch)) return; // rings closed: router-side abort
      wait_s += seconds_since(w0);
      ++batches;
      if (profiling) {
        prof.push_back(obs::TraceEvent{
            wait0, batches, seconds_since(prof_t0) - wait0, 0.0, shard,
            obs::Kind::kProfile, obs::kProfRingWait});
      }
      const double r0 = profiling ? seconds_since(prof_t0) : 0.0;
      for (std::size_t i = 0; i < batch->size(); ++i) {
        sim->advance(batch->time[i]);
        sim->submit(batch->local_disk[i], batch->request_id[i],
                    batch->bytes[i], batch->lba[i], batch->blocks[i],
                    batch->background[i] != 0);
      }
      const bool final = batch->final;
      if (!final && batch->advance_to > sim->now()) {
        sim->advance(batch->advance_to);
      }
      batch->reset();
      free_ring.try_push(batch); // capacity == arena count: cannot fail
      if (profiling) {
        prof.push_back(obs::TraceEvent{
            r0, batches, seconds_since(prof_t0) - r0, 0.0, shard,
            obs::Kind::kProfile, obs::kProfWorkerReplay});
      }
      if (final) break;
    }
    partial = sim->finalize();
    busy_s = seconds_since(t0) - wait_s;
  }
};

/// The controller's guess at how long a disk idles before its spin-down
/// policy puts it to sleep: exact for fixed-threshold and never policies,
/// the break-even threshold (the adaptive policies' anchor point) otherwise.
/// Only a prediction heuristic — routing quality, never correctness,
/// depends on it.
double sleep_after_estimate(const ExperimentConfig& config) {
  switch (config.policy.kind) {
    case PolicySpec::Kind::kNever:
      return std::numeric_limits<double>::infinity();
    case PolicySpec::Kind::kFixed:
      return config.policy.fixed_threshold_s;
    default:
      return config.params.break_even_threshold();
  }
}

/// Build the orchestration controller for a routed run, or null when the
/// scenario has orchestration off.
std::unique_ptr<orch::FleetController> make_controller(
    const ExperimentConfig& config, const FleetSetup& setup,
    obs::TraceBuffer* trace) {
  if (!config.orch.enabled()) return nullptr;
  orch::Config ocfg;
  ocfg.redirect = config.orch.redirect;
  ocfg.offload = config.orch.offload;
  ocfg.budget = config.orch.budget;
  ocfg.log_disks = config.orch.offload ? config.orch.log_disks : 0;
  ocfg.data_disks = config.num_disks - ocfg.log_disks;
  ocfg.replicas = config.replicas;
  ocfg.destage_deadline_s = config.orch.destage_deadline_s;
  ocfg.write_fraction = config.orch.write_fraction;
  ocfg.slo_p99_s = config.orch.slo_p99_s;
  ocfg.horizon_s = setup.horizon;
  ocfg.disk_capacity = config.params.capacity;
  ocfg.mean_request_bytes = config.catalog->mean_request_bytes();
  orch::ServiceModel model;
  model.position_s = config.params.position_time();
  model.transfer_bps = config.params.transfer_bps;
  model.spinup_s = config.params.spinup_s;
  model.sleep_after_s = sleep_after_estimate(config);
  return std::make_unique<orch::FleetController>(ocfg, model, config.mapping,
                                                 setup.extents, trace);
}

std::vector<RunResult> run_routed(const ExperimentConfig& config,
                                  const FleetSetup& setup, FleetPerf* perf,
                                  obs::RunTrace* trace) {
  const std::uint32_t shards = setup.shards;
  const double horizon = setup.horizon;

  const std::uint32_t mask = trace != nullptr ? config.obs.kind_mask() : 0;
  const std::uint32_t sim_mask = mask & ~obs::kind_bit(obs::Kind::kProfile);
  const bool profiling = trace != nullptr && config.obs.profile;
  const auto prof_t0 = PerfClock::now();

  std::vector<std::unique_ptr<RoutedShard>> states;
  states.reserve(shards);
  for (std::uint32_t w = 0; w < shards; ++w) {
    auto state = std::make_unique<RoutedShard>();
    state->sim = setup.make_sim(config, w, sim_mask);
    state->shard = w;
    state->profiling = profiling;
    state->prof_t0 = prof_t0;
    state->init();
    states.push_back(std::move(state));
  }

  const auto cache = config.cache.make();
  const auto stream =
      config.workload.make_stream(*config.catalog, config.seed);

  // The router is the fleet's dispatcher: it owns the cache and performs
  // every routing decision in global arrival order, so the dispatcher-track
  // span events (cache hit/miss) are emitted here — same gate and fields as
  // Dispatcher::dispatch, hence bit-identical to the single-calendar path.
  obs::TraceBuffer router_trace{sim_mask};
  const bool span_trace =
      cache != nullptr && router_trace.wants(obs::Kind::kSpan);
  // Orchestration: the controller rewrites the post-cache arrival stream in
  // global arrival order — a deterministic, shard-count-invariant function
  // — emitting its decisions onto the dispatcher track.
  const auto controller = make_controller(config, setup, &router_trace);
  std::vector<orch::Submission> subs;
  std::vector<obs::TraceEvent> router_prof; ///< kProfRouterFill per window
  std::uint64_t window_idx = 0;

  RunResult root;
  root.power.horizon_s = horizon;
  stats::LinearHistogram root_hist{stats::ResponseSummary::kHistLo,
                                   stats::ResponseSummary::kHistHi,
                                   stats::ResponseSummary::kHistBins};
  std::uint64_t dispatched = 0;
  std::vector<std::size_t> high_water(shards, 0);
  double router_stall = 0.0;
  double router_wall = 0.0;
  std::exception_ptr router_error;

  {
    std::vector<std::jthread> workers;
    workers.reserve(shards);
    for (auto& state : states) {
      workers.emplace_back([s = state.get()] { s->run(); });
    }
    const auto t0 = PerfClock::now();
    try {
      // Pop a drained arena for `shard`, charging blocked time to the
      // router stall counter.  A closed ring means the worker died.
      const auto acquire = [&](std::uint32_t shard) -> ShardBatch* {
        ShardBatch* arena = nullptr;
        auto& ring = states[shard]->free_ring;
        if (!ring.try_pop(arena)) {
          const auto s0 = PerfClock::now();
          if (!ring.pop(arena)) throw PipelineAborted{};
          router_stall += seconds_since(s0);
        }
        return arena;
      };
      const auto publish = [&](std::uint32_t shard, ShardBatch* arena) {
        auto& ring = states[shard]->full;
        ring.try_push(arena); // holds a popped arena: cannot be full
        high_water[shard] = std::max(high_water[shard], ring.size());
      };

      // Conservative windows: route all arrivals below each frontier, then
      // let every shard advance to it.  Any length is causally safe (no
      // feedback path); this one bounds batch memory to a few thousand
      // submissions per shard at the bench's request rates.
      const double window = std::max(1e-3, horizon / 256.0);
      workload::WindowedStream windowed{*stream};
      workload::RequestBlock block;
      std::vector<ShardBatch*> current(shards, nullptr);
      double frontier = 0.0;
      while (!windowed.exhausted()) {
        const double f0 = profiling ? seconds_since(prof_t0) : 0.0;
        frontier += window;
        if (windowed.next_arrival() >= frontier) {
          // Idle stretch: jump the frontier to the next arrival's window
          // instead of shipping empty windows one by one.
          frontier = windowed.next_arrival() + window;
        }
        block.clear();
        windowed.fill(frontier, std::numeric_limits<std::size_t>::max(),
                      block);
        for (std::uint32_t w = 0; w < shards; ++w) current[w] = acquire(w);
        // Whole-window decision batch: every cache access and mapping
        // lookup happens here, in global arrival order — exactly the
        // sequence the single-calendar path sees — before anything is
        // published.
        for (std::size_t i = 0; i < block.size(); ++i) {
          ++dispatched;
          const auto& file = config.catalog->by_id(block.file[i]);
          if (cache != nullptr && cache->access(file.id, file.size)) {
            // Cache hit, served from memory with zero latency (the only
            // latency the experiment path configures): recorded here, in
            // arrival order, exactly as the single-calendar path does.
            if (span_trace) {
              router_trace.emit(obs::Kind::kSpan, obs::kSpanCacheHit,
                                block.arrival[i], obs::kDispatcherTrack,
                                block.id[i], file.size);
            }
            root.hits_response.add(0.0);
            root_hist.add(0.0);
            continue;
          }
          const auto& extent = setup.extents[file.id];
          const std::uint64_t lba = block.lba[i] != workload::kNoLba
                                        ? block.lba[i]
                                        : extent.lba;
          const std::uint32_t disk = config.mapping[file.id];
          if (span_trace) {
            router_trace.emit(obs::Kind::kSpan, obs::kSpanCacheMiss,
                              block.arrival[i], obs::kDispatcherTrack,
                              block.id[i], disk);
          }
          if (controller != nullptr) {
            // Deadline destages due before this arrival ship first (each
            // at its own deadline time), then the arrival's rewritten
            // submissions — so per-shard batch times stay non-decreasing.
            subs.clear();
            controller->flush_deadlines(block.arrival[i], subs);
            controller->route(block.arrival[i], block.id[i], file, subs);
            for (const auto& sub : subs) {
              current[sub.disk % shards]->push(sub.t, sub.request_id,
                                               sub.bytes, sub.lba,
                                               sub.blocks, sub.disk / shards,
                                               sub.background);
            }
            continue;
          }
          current[disk % shards]->push(block.arrival[i], block.id[i],
                                       file.size, lba, extent.blocks,
                                       disk / shards);
        }
        if (controller != nullptr) {
          // Destages due inside this window but after its last arrival:
          // flushed at the frontier so the next window's arrivals (all
          // >= frontier) still land after them.
          subs.clear();
          controller->flush_deadlines(frontier, subs);
          for (const auto& sub : subs) {
            current[sub.disk % shards]->push(sub.t, sub.request_id,
                                             sub.bytes, sub.lba, sub.blocks,
                                             sub.disk / shards,
                                             sub.background);
          }
        }
        for (std::uint32_t w = 0; w < shards; ++w) {
          current[w]->advance_to = frontier;
          publish(w, current[w]);
          current[w] = nullptr;
        }
        if (profiling) {
          router_prof.push_back(obs::TraceEvent{
              f0, window_idx, seconds_since(prof_t0) - f0, 0.0,
              obs::kDispatcherTrack, obs::Kind::kProfile,
              obs::kProfRouterFill});
        }
        ++window_idx;
      }
      if (controller != nullptr) {
        // Every remaining buffered write has a deadline <= horizon (the
        // absorb-time cap), so one flush at the horizon drains the log
        // tier inside the measurement window.
        subs.clear();
        controller->flush_deadlines(horizon, subs);
        if (!subs.empty()) {
          for (std::uint32_t w = 0; w < shards; ++w) current[w] = acquire(w);
          for (const auto& sub : subs) {
            current[sub.disk % shards]->push(sub.t, sub.request_id,
                                             sub.bytes, sub.lba, sub.blocks,
                                             sub.disk / shards,
                                             sub.background);
          }
          for (std::uint32_t w = 0; w < shards; ++w) {
            current[w]->advance_to = horizon;
            publish(w, current[w]);
            current[w] = nullptr;
          }
        }
      }
      for (std::uint32_t w = 0; w < shards; ++w) {
        ShardBatch* last = acquire(w);
        last->final = true;
        last->advance_to = horizon;
        publish(w, last);
      }
    } catch (...) {
      router_error = std::current_exception();
    }
    router_wall = seconds_since(t0);
    // Normal completion: workers exit after their final batch (pushed
    // before the close, so it is still delivered).  Abort: this wakes
    // every blocked worker, which returns without finalizing.
    for (auto& state : states) {
      state->full.close();
      state->free_ring.close();
    }
  } // workers join here

  for (auto& state : states) {
    if (state->error) std::rethrow_exception(state->error);
  }
  if (router_error) std::rethrow_exception(router_error);

  root.requests = dispatched;
  if (cache != nullptr) root.cache = cache->stats();
  root.recompute_from_per_disk(root_hist);

  if (trace != nullptr && mask != 0) {
    trace->horizon_s = horizon;
    trace->shards = shards;
    trace->workers = shards;
    if (sim_mask != 0) {
      std::vector<obs::TraceBuffer*> buffers;
      buffers.reserve(1 + shards);
      buffers.push_back(&router_trace);
      for (const auto& state : states) {
        buffers.push_back(state->sim->trace_buffer());
      }
      obs::append_canonical(trace->events, buffers);
    }
    trace->profile.insert(trace->profile.end(), router_prof.begin(),
                          router_prof.end());
    for (const auto& state : states) {
      trace->profile.insert(trace->profile.end(), state->prof.begin(),
                            state->prof.end());
    }
    std::stable_sort(trace->profile.begin(), trace->profile.end(),
                     [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                       if (obs::track_rank(a.track) != obs::track_rank(b.track))
                         return obs::track_rank(a.track) <
                                obs::track_rank(b.track);
                       return a.t < b.t;
                     });
  }

  std::vector<RunResult> partials;
  partials.reserve(1 + shards);
  partials.push_back(std::move(root));
  for (auto& state : states) partials.push_back(std::move(state->partial));

  if (perf != nullptr) {
    perf->workers = shards;
    perf->router_busy_s = std::max(0.0, router_wall - router_stall);
    perf->router_stall_s = router_stall;
    perf->per_shard.resize(shards);
    perf->worker_busy_s.assign(shards, 0.0);
    perf->worker_wait_s.assign(shards, 0.0);
    for (std::uint32_t w = 0; w < shards; ++w) {
      perf->per_shard[w].shard = w;
      perf->per_shard[w].submissions = states[w]->sim->submissions();
      perf->per_shard[w].batches = states[w]->batches;
      perf->per_shard[w].events = partials[w + 1].events;
      perf->per_shard[w].ring_high_water = high_water[w];
      perf->worker_busy_s[w] = states[w]->busy_s;
      perf->worker_wait_s[w] = states[w]->wait_s;
    }
  }
  return partials;
}

} // namespace

FleetPath classify_fleet_path(const ExperimentConfig& config) {
  return config.cache.shard_decomposable() && !config.dynamic_routing &&
                 !config.orch.enabled()
             ? FleetPath::kShardLocal
             : FleetPath::kRouted;
}

std::uint32_t effective_shards(std::uint32_t requested,
                               std::uint32_t num_disks) {
  std::uint32_t shards = requested;
  if (requested == 0) {
    shards = std::thread::hardware_concurrency();
    if (shards == 0) shards = 1;
    // Oversharding floor: auto never lands a shard below
    // kAutoMinDisksPerShard disks — at that granularity the pipeline
    // overhead outweighs the parallelism (the 4096-disk × 8-shard
    // regression in BENCH_fleet.json's PR-7 snapshot).
    shards = std::min(
        shards,
        std::max<std::uint32_t>(1, num_disks / kAutoMinDisksPerShard));
  }
  return std::max<std::uint32_t>(1, std::min(shards, num_disks));
}

std::vector<RunResult> run_fleet_partials(const ExperimentConfig& config,
                                          std::uint32_t shards,
                                          FleetPath path, FleetPerf* perf,
                                          obs::RunTrace* trace) {
  if (config.catalog == nullptr) {
    throw std::invalid_argument{"ExperimentConfig: catalog is required"};
  }
  if (config.mapping.size() < config.catalog->size()) {
    throw std::invalid_argument{"run_fleet: mapping smaller than catalog"};
  }
  for (const auto d : config.mapping) {
    if (d >= config.num_disks) {
      throw std::invalid_argument{
          "StorageSystem: mapping references disk >= num_disks"};
    }
  }
  const double horizon = config.workload.measurement_horizon();
  if (horizon <= 0.0) {
    throw std::invalid_argument{
        "run_fleet: needs a positive measurement horizon (whole-episode "
        "measurement is a single-calendar feature)"};
  }
  if (path == FleetPath::kShardLocal &&
      classify_fleet_path(config) != FleetPath::kShardLocal) {
    throw std::invalid_argument{
        "run_fleet: the shard-local fast path requires a shard-decomposable "
        "scenario (cache=none and a static placement mapping); this config "
        "needs the router"};
  }
  shards = std::max<std::uint32_t>(
      1, std::min(shards, std::max<std::uint32_t>(1, config.num_disks)));

  const FleetSetup setup{config, shards};
  if (perf != nullptr) {
    *perf = FleetPerf{};
    perf->path = path;
    perf->shards = shards;
  }
  if (trace != nullptr && !config.obs.enabled()) trace = nullptr;
  return path == FleetPath::kShardLocal
             ? run_shard_local(config, setup, perf, trace)
             : run_routed(config, setup, perf, trace);
}

std::vector<RunResult> run_fleet_partials(const ExperimentConfig& config,
                                          std::uint32_t shards) {
  return run_fleet_partials(config, shards, classify_fleet_path(config));
}

RunResult run_fleet(const ExperimentConfig& config, std::uint32_t shards,
                    FleetPath path, FleetPerf* perf, obs::RunTrace* trace) {
  auto partials = run_fleet_partials(config, shards, path, perf, trace);
  RunResult result;
  for (const auto& p : partials) result.merge(p);
  return result;
}

RunResult run_fleet(const ExperimentConfig& config, std::uint32_t shards) {
  return run_fleet(config, shards, classify_fleet_path(config));
}

} // namespace spindown::sys
