// experiment.h — declarative experiment configuration + one-call runner.
//
// Every bench and example builds ExperimentConfig values (catalog, mapping,
// policy, cache, workload) and calls run_experiment(); sweep.h runs batches
// of them in parallel.  This is the public "run the paper's simulation"
// entry point.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sys/system.h"
#include "workload/arrival.h"
#include "workload/stream.h"
#include "workload/trace.h"

namespace spindown::obs {
struct RunTrace;
}

namespace spindown::sys {

struct FleetPerf;

/// What drives the arrivals.  Synthetic kinds pair an ArrivalProcess
/// (workload/arrival.h) with Zipf file choice over [0, horizon); kTrace
/// replays a trace verbatim.  The non-stationary kinds (kNhpp diurnal
/// cycles, kMmpp bursts) exist to stress the adaptive spin-down policies:
/// under them the best threshold moves hour to hour, which a static sweep
/// cannot follow.
struct WorkloadSpec {
  enum class Kind { kPoisson, kTrace, kNhpp, kMmpp, kReplay };
  Kind kind = Kind::kPoisson;
  // Poisson (Table 1): rate R over [0, horizon).
  double rate = 6.0;
  double horizon_s = 4000.0;
  // kNhpp: piecewise-constant rate segments; period_s > 0 wraps them.
  std::vector<workload::RateSegment> segments;
  double period_s = 0.0;
  // kMmpp: 2-state burst model.
  workload::MmppParams mmpp_params;
  // Trace replay (§5.1): not owned.  When the spec was parsed from
  // "trace:<path>" this points into `owned_trace` and `trace_path` names
  // the CSV stem, so spec() stays parseable.
  const workload::Trace* trace = nullptr;
  std::shared_ptr<const workload::Trace> owned_trace;
  std::string trace_path;

  static WorkloadSpec poisson(double rate, double horizon_s) {
    WorkloadSpec w;
    w.kind = Kind::kPoisson;
    w.rate = rate;
    w.horizon_s = horizon_s;
    return w;
  }
  static WorkloadSpec replay(const workload::Trace& trace) {
    WorkloadSpec w;
    w.kind = Kind::kTrace;
    w.trace = &trace;
    return w;
  }
  /// Load the trace saved at `stem` (Trace::save's two-CSV format) and own
  /// it: the parseable, value-semantic form of replay().
  static WorkloadSpec trace_file(const std::string& stem);
  /// Replay whatever trace the enclosing ScenarioSpec's catalog carries
  /// (nersc or trace catalogs).  Only runnable after scenario resolution;
  /// make_stream()/measurement_horizon() throw on an unresolved replay.
  static WorkloadSpec replay_catalog() {
    WorkloadSpec w;
    w.kind = Kind::kReplay;
    return w;
  }
  static WorkloadSpec nhpp(std::vector<workload::RateSegment> segments,
                           double horizon_s, double period_s = 0.0) {
    WorkloadSpec w;
    w.kind = Kind::kNhpp;
    w.segments = std::move(segments);
    w.horizon_s = horizon_s;
    w.period_s = period_s;
    return w;
  }
  static WorkloadSpec mmpp(workload::MmppParams params, double horizon_s) {
    WorkloadSpec w;
    w.kind = Kind::kMmpp;
    w.mmpp_params = params;
    w.horizon_s = horizon_s;
    return w;
  }

  /// Build the request stream this spec describes.  `seed` drives the
  /// synthetic generators (kPoisson consumes the Rng draw-for-draw like the
  /// seed simulator, so the default path stays bit-exact).
  std::unique_ptr<workload::RequestStream> make_stream(
      const workload::FileCatalog& catalog, std::uint64_t seed) const;

  /// The energy-measurement window this spec implies: `horizon_s` for the
  /// synthetic kinds, trace duration + 1 s for replays (so the request at
  /// the trace end lands inside the window).
  double measurement_horizon() const;

  /// Mean arrival rate this spec implies — the R that normalize()'s load
  /// model needs when a placement is derived from the workload: the Poisson
  /// rate, the time-average of NHPP segments over the horizon (one period
  /// when periodic), the MMPP stationary mean, or requests/duration for a
  /// trace.  Throws on an unresolved kReplay.
  double mean_rate() const;

  /// Parse a CLI/report key; accepts everything spec() emits except the
  /// bare "trace" (an injected trace object cannot be named by a string —
  /// save it and use "trace:<stem>").  Throws std::invalid_argument on
  /// anything else.
  static WorkloadSpec parse(const std::string& name);
  /// Canonical parseable key — "poisson(6,4000)",
  /// "nhpp(0:8;1200:0.05,8000,2000)" (segments start:rate, horizon,
  /// optional period), "mmpp(8,0.5,120,480,8000)" (rate0, rate1, dwell0,
  /// dwell1, horizon), "trace:<stem>" (owned trace loaded from CSV) or
  /// "replay" (the scenario catalog's trace) — such that parse(spec())
  /// round-trips.  Only a replay() of an in-memory trace still renders as
  /// the unparseable "trace".
  std::string spec() const;
};

/// Front-cache selection (§5.1 uses a 16 GB LRU).
struct CacheSpec {
  enum class Kind { kNone, kLru, kFifo, kLfu };
  Kind kind = Kind::kNone;
  util::Bytes capacity = util::gb(16.0);

  static CacheSpec none() { return {}; }
  static CacheSpec lru(util::Bytes cap = util::gb(16.0)) {
    return CacheSpec{Kind::kLru, cap};
  }
  static CacheSpec fifo(util::Bytes cap = util::gb(16.0)) {
    return CacheSpec{Kind::kFifo, cap};
  }
  static CacheSpec lfu(util::Bytes cap = util::gb(16.0)) {
    return CacheSpec{Kind::kLfu, cap};
  }

  /// Parse a CLI/report key; accepts everything spec() emits plus bare
  /// policy names ("lru" = 16 GB default) and any util::parse_bytes
  /// capacity suffix ("lru:0.5gb").  Throws std::invalid_argument on
  /// anything else.
  static CacheSpec parse(const std::string& name);
  /// Canonical parseable key — "none", "lru:16g", "fifo:4g", "lfu:16g" —
  /// such that parse(spec()) round-trips the value.
  std::string spec() const;

  /// nullptr for kNone.
  std::unique_ptr<cache::FileCache> make() const;

  /// True when the cache never couples requests routed to different disks
  /// — i.e. there is no cache — so a sharded fleet run may skip the router
  /// and generate arrivals shard-locally (sys/fleet.h FleetPath).  Any
  /// real cache is shared mutable state keyed by global arrival order.
  bool shard_decomposable() const { return kind == Kind::kNone; }
};

/// Observability selection (src/obs/): which trace-event families a run
/// records, plus the sim-time metrics sampling interval.  Everything is off
/// by default; an enabled spec only takes effect when the run is handed a
/// RunTrace sink (run_experiment's trace overload), so carrying an enabled
/// ObsSpec through an untraced run is free.
struct ObsSpec {
  bool spans = false;   ///< request lifecycle edges
  bool power = false;   ///< power-state transitions
  bool policy = false;  ///< spin-down policy decisions
  bool metrics = false; ///< sampled queue/state gauges
  bool profile = false; ///< wall-clock fleet pipeline stage timers
  double metrics_interval_s = 60.0; ///< sampling period (sim seconds)

  bool enabled() const {
    return spans || power || policy || metrics || profile;
  }
  /// Bitmask over obs::Kind for obs::TraceBuffer (kind_bit order).
  std::uint32_t kind_mask() const;

  static ObsSpec off() { return {}; }
  static ObsSpec all() {
    ObsSpec o;
    o.spans = o.power = o.policy = o.metrics = o.profile = true;
    return o;
  }

  /// Parse a CLI/report key; accepts everything spec() emits plus "all".
  /// Grammar: "off", or '+'-joined kinds from
  /// {spans,power,policy,metrics[:interval],profile} in any order.  Throws
  /// std::invalid_argument on anything else.
  static ObsSpec parse(const std::string& name);
  /// Canonical parseable key — "off", "spans+power",
  /// "metrics:30+profile", ... (kinds in declaration order, the metrics
  /// interval attached only when it differs from the 60 s default) — such
  /// that parse(spec()) round-trips the value.
  std::string spec() const;

  friend bool operator==(const ObsSpec&, const ObsSpec&) = default;
};

/// Fleet power-orchestration selection (src/orch/): coordinated spin-state
/// management *across* disks, layered over the per-disk policies.  Three
/// mechanisms compose behind one orch::FleetController:
///
///   * redirect — replica-aware read redirection: with `replicas=k` on the
///     scenario, each read is routed to whichever replica the controller
///     predicts is spun up (deterministic tie-break by disk id), so cold
///     replicas can stay asleep;
///   * offload — write off-loading with deferred destage: a small tier of
///     always-on log disks absorbs writes aimed at sleeping data disks
///     (core::WritePlacer, spinning-aware best-fit) and destages them in a
///     batch when the target next serves a foreground read or when the
///     destage deadline expires;
///   * budget — a global SLO sleep budget: the controller tracks the
///     fleet-wide arrival-rate estimate and a streaming p99 of predicted
///     response, and caps how many disks may sleep using the M/M/1 closed
///     form m* = ceil(lambda / (mu - ln(100)/SLO)) (Liu et al.).
///
/// Orchestration is a deterministic function of the routed arrival stream,
/// so every result stays bit-identical at any shard count; enabling it
/// forces the fleet router path (like caches do via dynamic_routing).
struct OrchSpec {
  bool redirect = false; ///< replica-aware read redirection
  bool offload = false;  ///< write off-loading onto log disks
  bool budget = false;   ///< global SLO sleep budget
  /// kOffload: size of the always-on log-disk tier appended after the data
  /// disks, and the latest a buffered write may wait before being destaged
  /// to its home disk.
  std::uint32_t log_disks = 1;
  double destage_deadline_s = 600.0;
  /// Fraction of requests classified as writes (deterministic hash of the
  /// request id, so arrival streams are unchanged).  Only meaningful with
  /// offload; reads ignore it.
  double write_fraction = 0.2;
  /// kBudget: fleet-wide p99 response SLO (seconds).
  double slo_p99_s = 5.0;

  bool enabled() const { return redirect || offload || budget; }

  static OrchSpec off() { return {}; }

  /// Parse a CLI/report key; accepts everything spec() emits.  Grammar:
  /// "off", or '+'-joined mechanisms from {redirect,
  /// offload[:log_disks[:deadline_s]], budget:p99:<slo_s>,
  /// writes:<fraction>} in any order ("budget" alone takes the default
  /// SLO).  Throws std::invalid_argument on anything else.
  static OrchSpec parse(const std::string& name);
  /// Canonical parseable key — "off", "redirect",
  /// "redirect+offload:1+budget:p99:0.05", ... (mechanisms in declaration
  /// order, knobs attached only when they differ from the defaults) — such
  /// that parse(spec()) round-trips the value.
  std::string spec() const;

  friend bool operator==(const OrchSpec&, const OrchSpec&) = default;
};

struct ExperimentConfig {
  std::string label;
  const workload::FileCatalog* catalog = nullptr; ///< not owned
  std::vector<std::uint32_t> mapping;             ///< file id -> disk
  std::uint32_t num_disks = 0;
  disk::DiskParams params = disk::DiskParams::st3500630as();
  PolicySpec policy = PolicySpec::break_even();
  /// Service discipline per disk (default FCFS = the seed behavior); the
  /// scheduler × spin-policy grid is bench/ablation_schedulers.cpp.
  SchedulerSpec scheduler = SchedulerSpec::fcfs();
  /// Per-disk exceptions to `policy` (e.g. MAID's always-on cache disks).
  std::vector<std::pair<std::uint32_t, PolicySpec>> policy_overrides;
  CacheSpec cache = CacheSpec::none();
  WorkloadSpec workload;
  std::uint64_t seed = 1;
  /// Shard the run's event calendar across this many per-disk-group
  /// sub-simulations (sys/fleet.h).  1 = the single-calendar path; 0 =
  /// auto (one shard per hardware thread, clamped so every shard owns at
  /// least fleet.h's kAutoMinDisksPerShard disks).
  /// Sharding changes wall-clock only: every physical result field is
  /// bit-identical at any shard count.
  std::uint32_t shards = 1;
  /// Set by scenario resolution when the placement does NOT reduce to the
  /// static `mapping` vector above (PlacementSpec::static_mapping false —
  /// i.e. `replicas=k` with k > 1, where the replica a read lands on is
  /// chosen per request at arrival time).  Forces runs onto the router
  /// path even with cache=none, because routing then depends on global
  /// arrival order.
  bool dynamic_routing = false;
  /// k-way replication degree from the placement (`replicas=` scenario
  /// key).  Replica r of file f lives at (mapping[f] + r * stride) % D
  /// with stride = max(1, D / k) over the D data disks; `mapping` above
  /// stores replica 0 (the primary).  1 = no replication.
  std::uint32_t replicas = 1;
  /// Fleet orchestration (`orch=` scenario key).  When enabled() the run
  /// takes the fleet router path at any shard count and num_disks includes
  /// orch.log_disks always-on log disks appended after the data disks.
  OrchSpec orch;
  /// Which trace-event families to record when the run is handed a
  /// RunTrace sink.  Ignored (zero-cost) without one.
  ObsSpec obs;
};

/// Run one experiment to completion.  Deterministic given the config.
RunResult run_experiment(const ExperimentConfig& config);

/// As above, also collecting observability output.  When `trace` is
/// non-null and config.obs enables any kind, the canonical sim-time event
/// stream (bit-identical at any shard count) and — with obs profile on a
/// sharded run — the wall-clock pipeline samples are appended to it.  When
/// `perf` is non-null it receives the fleet pipeline diagnostics (for a
/// single-calendar run: shards == workers == 1 with empty per-shard rows).
/// The RunResult is bit-identical to the untraced overload's.
RunResult run_experiment(const ExperimentConfig& config, obs::RunTrace* trace,
                         FleetPerf* perf = nullptr);

} // namespace spindown::sys
