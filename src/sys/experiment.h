// experiment.h — declarative experiment configuration + one-call runner.
//
// Every bench and example builds ExperimentConfig values (catalog, mapping,
// policy, cache, workload) and calls run_experiment(); sweep.h runs batches
// of them in parallel.  This is the public "run the paper's simulation"
// entry point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sys/system.h"
#include "workload/trace.h"

namespace spindown::sys {

/// What drives the arrivals.
struct WorkloadSpec {
  enum class Kind { kPoisson, kTrace };
  Kind kind = Kind::kPoisson;
  // Poisson (Table 1): rate R over [0, horizon).
  double rate = 6.0;
  double horizon_s = 4000.0;
  // Trace replay (§5.1): not owned.
  const workload::Trace* trace = nullptr;

  static WorkloadSpec poisson(double rate, double horizon_s) {
    WorkloadSpec w;
    w.kind = Kind::kPoisson;
    w.rate = rate;
    w.horizon_s = horizon_s;
    return w;
  }
  static WorkloadSpec replay(const workload::Trace& trace) {
    WorkloadSpec w;
    w.kind = Kind::kTrace;
    w.trace = &trace;
    return w;
  }
};

/// Front-cache selection (§5.1 uses a 16 GB LRU).
struct CacheSpec {
  enum class Kind { kNone, kLru, kFifo, kLfu };
  Kind kind = Kind::kNone;
  util::Bytes capacity = util::gb(16.0);

  static CacheSpec none() { return {}; }
  static CacheSpec lru(util::Bytes cap = util::gb(16.0)) {
    return CacheSpec{Kind::kLru, cap};
  }
  static CacheSpec fifo(util::Bytes cap = util::gb(16.0)) {
    return CacheSpec{Kind::kFifo, cap};
  }
  static CacheSpec lfu(util::Bytes cap = util::gb(16.0)) {
    return CacheSpec{Kind::kLfu, cap};
  }

  /// nullptr for kNone.
  std::unique_ptr<cache::FileCache> make() const;
};

struct ExperimentConfig {
  std::string label;
  const workload::FileCatalog* catalog = nullptr; ///< not owned
  std::vector<std::uint32_t> mapping;             ///< file id -> disk
  std::uint32_t num_disks = 0;
  disk::DiskParams params = disk::DiskParams::st3500630as();
  PolicySpec policy = PolicySpec::break_even();
  /// Service discipline per disk (default FCFS = the seed behavior); the
  /// scheduler × spin-policy grid is bench/ablation_schedulers.cpp.
  SchedulerSpec scheduler = SchedulerSpec::fcfs();
  /// Per-disk exceptions to `policy` (e.g. MAID's always-on cache disks).
  std::vector<std::pair<std::uint32_t, PolicySpec>> policy_overrides;
  CacheSpec cache = CacheSpec::none();
  WorkloadSpec workload;
  std::uint64_t seed = 1;
};

/// Run one experiment to completion.  Deterministic given the config.
RunResult run_experiment(const ExperimentConfig& config);

} // namespace spindown::sys
