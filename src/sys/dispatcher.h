// dispatcher.h — routes file requests to disks via the mapping table.
//
// §4: "Once a request is generated, the file dispatcher forwards it to the
// corresponding disk based on the file-to-disk mapping table, which is built
// using Pack_Disks...  The mapping time in the dispatcher is ignored."
// An optional front cache (§5.1's 16 GB LRU) intercepts requests before they
// reach a disk; hits complete with a configurable latency (0 by default).
//
// Geometry: the dispatcher owns the logical-block layout of the mapping
// (workload::layout_extents) and stamps every submitted request with its
// file's LBA extent, so geometry-aware I/O schedulers see the locality the
// allocation created.  A request carrying an explicit lba (a trace replay)
// keeps it.
#pragma once

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "core/item.h"
#include "des/simulation.h"
#include "disk/disk.h"
#include "util/inline_function.h"
#include "workload/stream.h"

namespace spindown::sys {

class Dispatcher {
public:
  /// `mapping` = disk index per file id (an Assignment's disk_of).
  /// `cache` may be null (no cache).  Cache hits are reported through
  /// `on_hit` with the request's (id, response time).
  Dispatcher(des::Simulation& sim, const workload::FileCatalog& catalog,
             std::vector<std::uint32_t> mapping,
             std::vector<disk::Disk*> disks,
             cache::FileCache* cache = nullptr,
             double cache_hit_latency_s = 0.0);

  /// Inline storage keeps the cache-hit path on the allocation-free loop.
  using HitCallback = util::InlineFunction<void(std::uint64_t, double), 64>;
  void set_hit_callback(HitCallback cb) { on_hit_ = std::move(cb); }

  /// Attach a trace sink (null disables).  With a cache configured, every
  /// request emits a cache_hit/cache_miss span edge on the dispatcher track
  /// — in dispatch order, which is global arrival order, so the routed
  /// fleet pipeline reproduces the identical stream.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  /// Route a request arriving now.
  void dispatch(const workload::Request& request);

  std::uint64_t dispatched() const { return dispatched_; }

  /// Which disk serves this file.
  std::uint32_t disk_of(workload::FileId id) const { return mapping_.at(id); }

  /// The file's LBA extent on its disk (catalog layout order).
  const workload::FileExtent& extent_of(workload::FileId id) const {
    return extents_.at(id);
  }

private:
  des::Simulation& sim_;
  const workload::FileCatalog& catalog_;
  std::vector<std::uint32_t> mapping_;
  std::vector<disk::Disk*> disks_;
  std::vector<workload::FileExtent> extents_;
  cache::FileCache* cache_;
  double cache_hit_latency_;
  obs::TraceBuffer* trace_ = nullptr;
  HitCallback on_hit_;
  std::uint64_t dispatched_ = 0;
};

} // namespace spindown::sys
