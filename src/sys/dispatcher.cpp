#include "sys/dispatcher.h"

#include <stdexcept>

namespace spindown::sys {

Dispatcher::Dispatcher(des::Simulation& sim,
                       const workload::FileCatalog& catalog,
                       std::vector<std::uint32_t> mapping,
                       std::vector<disk::Disk*> disks,
                       cache::FileCache* cache, double cache_hit_latency_s)
    : sim_(sim), catalog_(catalog), mapping_(std::move(mapping)),
      disks_(std::move(disks)), cache_(cache),
      cache_hit_latency_(cache_hit_latency_s) {
  if (mapping_.size() < catalog.size()) {
    throw std::invalid_argument{"Dispatcher: mapping smaller than catalog"};
  }
  for (const auto d : mapping_) {
    if (d >= disks_.size()) {
      throw std::invalid_argument{
          "Dispatcher: mapping references unknown disk"};
    }
  }
  extents_ = workload::layout_extents(
      catalog, mapping_, static_cast<std::uint32_t>(disks_.size()));
}

void Dispatcher::dispatch(const workload::Request& request) {
  ++dispatched_;
  const auto& file = catalog_.by_id(request.file);
  const bool tracing = cache_ != nullptr && trace_ != nullptr &&
                       trace_->wants(obs::Kind::kSpan);
  if (cache_ != nullptr && cache_->access(file.id, file.size)) {
    // Cache hit: served from memory; the disk never sees the request.
    if (tracing) {
      trace_->emit(obs::Kind::kSpan, obs::kSpanCacheHit, sim_.now(),
                   obs::kDispatcherTrack, request.id,
                   static_cast<double>(file.size));
    }
    if (on_hit_) {
      const auto id = request.id;
      const auto latency = cache_hit_latency_;
      if (latency > 0.0) {
        // 24-byte capture: delivered through the calendar's inline buffer.
        sim_.schedule_in(latency,
                         [this, id, latency] { on_hit_(id, latency); });
      } else {
        on_hit_(id, 0.0);
      }
    }
    return;
  }
  if (tracing) {
    trace_->emit(obs::Kind::kSpan, obs::kSpanCacheMiss, sim_.now(),
                 obs::kDispatcherTrack, request.id,
                 static_cast<double>(mapping_[file.id]));
  }
  const auto& extent = extents_[file.id];
  const std::uint64_t lba =
      request.lba != workload::kNoLba ? request.lba : extent.lba;
  disks_[mapping_[file.id]]->submit(request.id, file.size, lba, extent.blocks);
}

} // namespace spindown::sys
