#include "sys/experiment.h"

#include <stdexcept>

#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/lru.h"

namespace spindown::sys {

std::unique_ptr<cache::FileCache> CacheSpec::make() const {
  switch (kind) {
    case Kind::kNone: return nullptr;
    case Kind::kLru: return std::make_unique<cache::LruCache>(capacity);
    case Kind::kFifo: return std::make_unique<cache::FifoCache>(capacity);
    case Kind::kLfu: return std::make_unique<cache::LfuCache>(capacity);
  }
  throw std::logic_error{"CacheSpec: unknown kind"};
}

RunResult run_experiment(const ExperimentConfig& config) {
  if (config.catalog == nullptr) {
    throw std::invalid_argument{"ExperimentConfig: catalog is required"};
  }

  const auto cache = config.cache.make();
  StorageSystem system{*config.catalog, config.mapping, config.num_disks,
                       config.params,   config.policy,  cache.get(),
                       config.seed};
  system.set_scheduler(config.scheduler);
  for (const auto& [disk, policy] : config.policy_overrides) {
    system.set_policy_override(disk, policy);
  }

  switch (config.workload.kind) {
    case WorkloadSpec::Kind::kPoisson: {
      workload::PoissonZipfStream stream{*config.catalog,
                                         config.workload.rate,
                                         config.workload.horizon_s,
                                         util::Rng{config.seed}};
      return system.run(stream, config.workload.horizon_s);
    }
    case WorkloadSpec::Kind::kTrace: {
      if (config.workload.trace == nullptr) {
        throw std::invalid_argument{"ExperimentConfig: trace is required"};
      }
      workload::TraceStream stream{*config.workload.trace};
      // +1 s so the request landing exactly at the trace end is inside the
      // measurement window.
      return system.run(stream, config.workload.trace->duration() + 1.0);
    }
  }
  throw std::logic_error{"ExperimentConfig: unknown workload kind"};
}

} // namespace spindown::sys
