#include "sys/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/lru.h"
#include "obs/trace.h"
#include "sys/fleet.h"
#include "sys/spec_grammar.h"

namespace spindown::sys {
namespace {

double parse_number(const std::string& s, const std::string& context) {
  return detail::parse_number(s, context, "WorkloadSpec");
}

std::vector<std::string> parse_call(const std::string& name,
                                    const std::string& head) {
  return detail::parse_call(name, head, "WorkloadSpec");
}

using detail::split;

} // namespace

std::uint32_t ObsSpec::kind_mask() const {
  std::uint32_t mask = 0;
  if (spans) mask |= obs::kind_bit(obs::Kind::kSpan);
  if (power) mask |= obs::kind_bit(obs::Kind::kPower);
  if (policy) mask |= obs::kind_bit(obs::Kind::kPolicy);
  if (metrics) mask |= obs::kind_bit(obs::Kind::kMetric);
  if (profile) mask |= obs::kind_bit(obs::Kind::kProfile);
  return mask;
}

std::string ObsSpec::spec() const {
  if (!enabled()) return "off";
  std::string out;
  const auto add = [&out](const std::string& token) {
    if (!out.empty()) out += "+";
    out += token;
  };
  if (spans) add("spans");
  if (power) add("power");
  if (policy) add("policy");
  if (metrics) {
    add(metrics_interval_s == 60.0
            ? std::string{"metrics"}
            : "metrics:" + util::format_roundtrip(metrics_interval_s));
  }
  if (profile) add("profile");
  return out;
}

ObsSpec ObsSpec::parse(const std::string& name) {
  if (name == "off") return off();
  if (name == "all") return all();
  ObsSpec o;
  for (const auto& token : split(name, '+')) {
    if (token == "spans") {
      o.spans = true;
    } else if (token == "power") {
      o.power = true;
    } else if (token == "policy") {
      o.policy = true;
    } else if (token == "profile") {
      o.profile = true;
    } else if (token == "metrics") {
      o.metrics = true;
    } else if (token.rfind("metrics:", 0) == 0) {
      o.metrics = true;
      const double interval =
          detail::parse_number(token.substr(8), name, "ObsSpec");
      if (interval <= 0.0) {
        throw std::invalid_argument{
            "ObsSpec: metrics interval must be positive in '" + name + "'"};
      }
      o.metrics_interval_s = interval;
    } else {
      throw std::invalid_argument{
          "ObsSpec: unknown kind '" + token + "' in '" + name +
          "' (want off|all or '+'-joined "
          "spans|power|policy|metrics[:interval]|profile)"};
    }
  }
  return o;
}

std::string OrchSpec::spec() const {
  if (!enabled()) return "off";
  std::string out;
  const auto add = [&out](const std::string& token) {
    if (!out.empty()) out += "+";
    out += token;
  };
  if (redirect) add("redirect");
  if (offload) {
    std::string token = "offload";
    // Knobs render outside-in: the deadline cannot appear without the
    // log-disk count, so an off-default deadline forces both.
    if (log_disks != 1 || destage_deadline_s != 600.0) {
      token += ":";
      token += std::to_string(log_disks);
      if (destage_deadline_s != 600.0) {
        token += ":";
        token += util::format_roundtrip(destage_deadline_s);
      }
    }
    add(token);
    if (write_fraction != 0.2) {
      std::string writes = "writes:";
      writes += util::format_roundtrip(write_fraction);
      add(writes);
    }
  }
  if (budget) {
    std::string token = "budget";
    if (slo_p99_s != 5.0) {
      token += ":p99:";
      token += util::format_roundtrip(slo_p99_s);
    }
    add(token);
  }
  return out;
}

OrchSpec OrchSpec::parse(const std::string& name) {
  if (name == "off") return off();
  OrchSpec o;
  for (const auto& token : split(name, '+')) {
    if (token == "redirect") {
      o.redirect = true;
    } else if (token == "offload") {
      o.offload = true;
    } else if (token.rfind("offload:", 0) == 0) {
      o.offload = true;
      const auto knobs = split(token.substr(8), ':');
      if (knobs.empty() || knobs.size() > 2) {
        throw std::invalid_argument{
            "OrchSpec: want offload[:log_disks[:deadline_s]] in '" + name +
            "'"};
      }
      const double disks = detail::parse_number(knobs[0], name, "OrchSpec");
      if (disks < 1.0 || disks > 64.0 ||
          disks != static_cast<double>(static_cast<std::uint32_t>(disks))) {
        throw std::invalid_argument{
            "OrchSpec: log_disks must be an integer in [1, 64] in '" + name +
            "'"};
      }
      o.log_disks = static_cast<std::uint32_t>(disks);
      if (knobs.size() == 2) {
        const double dl = detail::parse_number(knobs[1], name, "OrchSpec");
        if (dl <= 0.0) {
          throw std::invalid_argument{
              "OrchSpec: destage deadline must be positive in '" + name +
              "'"};
        }
        o.destage_deadline_s = dl;
      }
    } else if (token.rfind("writes:", 0) == 0) {
      const double frac = detail::parse_number(token.substr(7), name,
                                               "OrchSpec");
      if (!(frac >= 0.0 && frac <= 1.0)) {
        throw std::invalid_argument{
            "OrchSpec: write fraction must be in [0, 1] in '" + name + "'"};
      }
      o.write_fraction = frac;
    } else if (token == "budget") {
      o.budget = true;
    } else if (token.rfind("budget:p99:", 0) == 0) {
      o.budget = true;
      const double slo = detail::parse_number(token.substr(11), name,
                                              "OrchSpec");
      if (slo <= 0.0) {
        throw std::invalid_argument{
            "OrchSpec: budget SLO must be positive in '" + name + "'"};
      }
      o.slo_p99_s = slo;
    } else {
      throw std::invalid_argument{
          "OrchSpec: unknown mechanism '" + token + "' in '" + name +
          "' (want off or '+'-joined redirect|offload[:L[:deadline]]|"
          "budget:p99:<slo>|writes:<frac>)"};
    }
  }
  return o;
}

std::unique_ptr<cache::FileCache> CacheSpec::make() const {
  switch (kind) {
    case Kind::kNone: return nullptr;
    case Kind::kLru: return std::make_unique<cache::LruCache>(capacity);
    case Kind::kFifo: return std::make_unique<cache::FifoCache>(capacity);
    case Kind::kLfu: return std::make_unique<cache::LfuCache>(capacity);
  }
  throw std::logic_error{"CacheSpec: unknown kind"};
}

std::string CacheSpec::spec() const {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kLru: return "lru:" + util::format_bytes_spec(capacity);
    case Kind::kFifo: return "fifo:" + util::format_bytes_spec(capacity);
    case Kind::kLfu: return "lfu:" + util::format_bytes_spec(capacity);
  }
  throw std::logic_error{"CacheSpec: unknown kind"};
}

CacheSpec CacheSpec::parse(const std::string& name) {
  if (name == "none") return none();
  const auto colon = name.find(':');
  const std::string head = name.substr(0, colon);
  Kind kind;
  if (head == "lru") kind = Kind::kLru;
  else if (head == "fifo") kind = Kind::kFifo;
  else if (head == "lfu") kind = Kind::kLfu;
  else {
    throw std::invalid_argument{"CacheSpec: unknown cache '" + name +
                                "' (want none|lru[:cap]|fifo[:cap]|lfu[:cap])"};
  }
  CacheSpec spec{kind, util::gb(16.0)};
  if (colon != std::string::npos) {
    const std::string arg = name.substr(colon + 1);
    const auto cap = util::parse_bytes(arg);
    if (!cap.has_value() || *cap == 0) {
      throw std::invalid_argument{"CacheSpec: bad capacity '" + arg +
                                  "' in '" + name + "' (want e.g. 16g, 512m)"};
    }
    spec.capacity = *cap;
  }
  return spec;
}

std::unique_ptr<workload::RequestStream> WorkloadSpec::make_stream(
    const workload::FileCatalog& catalog, std::uint64_t seed) const {
  switch (kind) {
    case Kind::kPoisson:
      return std::make_unique<workload::ArrivalZipfStream>(
          catalog, std::make_unique<workload::PoissonArrivals>(rate),
          horizon_s, util::Rng{seed});
    case Kind::kNhpp:
      return std::make_unique<workload::ArrivalZipfStream>(
          catalog,
          std::make_unique<workload::PiecewiseRateArrivals>(segments,
                                                            period_s),
          horizon_s, util::Rng{seed});
    case Kind::kMmpp:
      return std::make_unique<workload::ArrivalZipfStream>(
          catalog, std::make_unique<workload::MmppArrivals>(mmpp_params),
          horizon_s, util::Rng{seed});
    case Kind::kTrace:
      if (trace == nullptr) {
        throw std::invalid_argument{"WorkloadSpec: trace is required"};
      }
      return std::make_unique<workload::TraceStream>(*trace);
    case Kind::kReplay:
      throw std::invalid_argument{
          "WorkloadSpec: 'replay' must be resolved against a scenario "
          "catalog that carries a trace (sys::resolve_scenario)"};
  }
  throw std::logic_error{"WorkloadSpec: unknown kind"};
}

double WorkloadSpec::measurement_horizon() const {
  if (kind == Kind::kReplay) {
    throw std::invalid_argument{
        "WorkloadSpec: 'replay' must be resolved against a scenario "
        "catalog that carries a trace (sys::resolve_scenario)"};
  }
  if (kind == Kind::kTrace) {
    if (trace == nullptr) {
      throw std::invalid_argument{"WorkloadSpec: trace is required"};
    }
    // +1 s so the request landing exactly at the trace end is inside the
    // measurement window.
    return trace->duration() + 1.0;
  }
  return horizon_s;
}

WorkloadSpec WorkloadSpec::trace_file(const std::string& stem) {
  WorkloadSpec w;
  w.kind = Kind::kTrace;
  w.owned_trace = workload::Trace::load_shared(stem);
  w.trace = w.owned_trace.get();
  w.trace_path = stem;
  return w;
}

double WorkloadSpec::mean_rate() const {
  switch (kind) {
    case Kind::kPoisson: return rate;
    case Kind::kNhpp: {
      // Time-average of the piecewise-constant rate over one period (the
      // pattern wraps) or over the horizon (last segment holds to the end).
      const double span = period_s > 0.0 ? period_s : horizon_s;
      if (segments.empty() || span <= 0.0) return 0.0;
      double integral = 0.0;
      for (std::size_t i = 0; i < segments.size(); ++i) {
        const double start = std::min(segments[i].start, span);
        const double end =
            i + 1 < segments.size() ? std::min(segments[i + 1].start, span)
                                    : span;
        if (end > start) integral += segments[i].rate * (end - start);
      }
      return integral / span;
    }
    case Kind::kMmpp: {
      const double dwell =
          mmpp_params.mean_dwell[0] + mmpp_params.mean_dwell[1];
      if (dwell <= 0.0) return 0.0;
      return (mmpp_params.rate[0] * mmpp_params.mean_dwell[0] +
              mmpp_params.rate[1] * mmpp_params.mean_dwell[1]) /
             dwell;
    }
    case Kind::kTrace:
      if (trace == nullptr) {
        throw std::invalid_argument{"WorkloadSpec: trace is required"};
      }
      return static_cast<double>(trace->size()) /
             std::max(1.0, trace->duration());
    case Kind::kReplay:
      throw std::invalid_argument{
          "WorkloadSpec: 'replay' has no rate until scenario resolution"};
  }
  throw std::logic_error{"WorkloadSpec: unknown kind"};
}

std::string WorkloadSpec::spec() const {
  switch (kind) {
    case Kind::kPoisson:
      return "poisson(" + util::format_roundtrip(rate) + "," +
             util::format_roundtrip(horizon_s) + ")";
    case Kind::kNhpp: {
      std::string segs;
      for (std::size_t i = 0; i < segments.size(); ++i) {
        if (i > 0) segs += ";";
        segs += util::format_roundtrip(segments[i].start) + ":" +
                util::format_roundtrip(segments[i].rate);
      }
      std::string out = "nhpp(";
      out += segs;
      out += ",";
      out += util::format_roundtrip(horizon_s);
      if (period_s > 0.0) {
        out += ",";
        out += util::format_roundtrip(period_s);
      }
      out += ")";
      return out;
    }
    case Kind::kMmpp:
      return "mmpp(" + util::format_roundtrip(mmpp_params.rate[0]) + "," +
             util::format_roundtrip(mmpp_params.rate[1]) + "," +
             util::format_roundtrip(mmpp_params.mean_dwell[0]) + "," +
             util::format_roundtrip(mmpp_params.mean_dwell[1]) + "," +
             util::format_roundtrip(horizon_s) + ")";
    case Kind::kTrace:
      return trace_path.empty() ? "trace" : "trace:" + trace_path;
    case Kind::kReplay: return "replay";
  }
  throw std::logic_error{"WorkloadSpec: unknown kind"};
}

WorkloadSpec WorkloadSpec::parse(const std::string& name) {
  if (name == "replay") return replay_catalog();
  if (name.rfind("trace:", 0) == 0) {
    const std::string stem = name.substr(6);
    if (stem.empty()) {
      throw std::invalid_argument{
          "WorkloadSpec: trace needs a CSV stem (trace:<path>)"};
    }
    return trace_file(stem);
  }
  if (name.rfind("poisson", 0) == 0) {
    const auto args = parse_call(name, "poisson");
    if (args.size() != 2) {
      throw std::invalid_argument{
          "WorkloadSpec: want poisson(rate,horizon), got '" + name + "'"};
    }
    return poisson(parse_number(args[0], name), parse_number(args[1], name));
  }
  if (name.rfind("nhpp", 0) == 0) {
    const auto args = parse_call(name, "nhpp");
    if (args.size() != 2 && args.size() != 3) {
      throw std::invalid_argument{
          "WorkloadSpec: want nhpp(t:r;...,horizon[,period]), got '" + name +
          "'"};
    }
    std::vector<workload::RateSegment> segments;
    for (const auto& seg : split(args[0], ';')) {
      const auto parts = split(seg, ':');
      if (parts.size() != 2) {
        throw std::invalid_argument{"WorkloadSpec: bad segment '" + seg +
                                    "' in '" + name + "'"};
      }
      segments.push_back({parse_number(parts[0], name),
                          parse_number(parts[1], name)});
    }
    const double horizon = parse_number(args[1], name);
    const double period =
        args.size() == 3 ? parse_number(args[2], name) : 0.0;
    return nhpp(std::move(segments), horizon, period);
  }
  if (name.rfind("mmpp", 0) == 0) {
    const auto args = parse_call(name, "mmpp");
    if (args.size() != 5) {
      throw std::invalid_argument{
          "WorkloadSpec: want mmpp(r0,r1,d0,d1,horizon), got '" + name + "'"};
    }
    workload::MmppParams p;
    p.rate[0] = parse_number(args[0], name);
    p.rate[1] = parse_number(args[1], name);
    p.mean_dwell[0] = parse_number(args[2], name);
    p.mean_dwell[1] = parse_number(args[3], name);
    return mmpp(p, parse_number(args[4], name));
  }
  throw std::invalid_argument{
      "WorkloadSpec: unknown workload '" + name +
      "' (want poisson(R,T)|nhpp(t:r;...,T[,P])|mmpp(r0,r1,d0,d1,T)|"
      "trace:<stem>|replay)"};
}

RunResult run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, nullptr, nullptr);
}

RunResult run_experiment(const ExperimentConfig& config, obs::RunTrace* trace,
                         FleetPerf* perf) {
  if (config.catalog == nullptr) {
    throw std::invalid_argument{"ExperimentConfig: catalog is required"};
  }

  const std::uint32_t shards =
      effective_shards(config.shards, config.num_disks);
  // Whole-episode measurement (horizon <= 0) needs the single global
  // calendar; every built-in workload has a positive horizon.  Fleet
  // orchestration lives in the router, so an orchestrated run takes the
  // fleet path even at shards == 1 — one implementation defines its
  // semantics, and shard bit-identity follows for free.
  if ((shards > 1 || config.orch.enabled()) &&
      config.workload.measurement_horizon() > 0.0) {
    return run_fleet(config, shards, classify_fleet_path(config), perf,
                     trace);
  }
  if (config.orch.enabled()) {
    throw std::invalid_argument{
        "ExperimentConfig: orchestration requires a workload with a "
        "positive measurement horizon"};
  }

  const auto cache = config.cache.make();
  StorageSystem system{*config.catalog, config.mapping, config.num_disks,
                       config.params,   config.policy,  cache.get(),
                       config.seed};
  system.set_scheduler(config.scheduler);
  for (const auto& [disk, policy] : config.policy_overrides) {
    system.set_policy_override(disk, policy);
  }
  if (trace != nullptr && config.obs.enabled()) {
    system.set_obs(config.obs.kind_mask(), config.obs.metrics_interval_s,
                   trace);
  }
  if (perf != nullptr) {
    *perf = FleetPerf{};
    perf->path = classify_fleet_path(config);
    perf->shards = 1;
    perf->workers = 1;
  }

  const auto stream = config.workload.make_stream(*config.catalog, config.seed);
  return system.run(*stream, config.workload.measurement_horizon());
}

} // namespace spindown::sys
