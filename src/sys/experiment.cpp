#include "sys/experiment.h"

#include <stdexcept>

#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/lru.h"

namespace spindown::sys {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const auto next = s.find(sep, pos);
    out.push_back(s.substr(pos, next - pos));
    if (next == std::string::npos) return out;
    pos = next + 1;
  }
}

double parse_number(const std::string& s, const std::string& context) {
  const auto v = util::parse_finite_double(s);
  if (!v.has_value()) {
    throw std::invalid_argument{"WorkloadSpec: bad number '" + s + "' in " +
                                context};
  }
  return *v;
}

/// The "name(a,b,...)" shell shared by every synthetic workload key.
std::vector<std::string> parse_call(const std::string& name,
                                    const std::string& head) {
  if (name.size() < head.size() + 2 || name.compare(0, head.size(), head) != 0 ||
      name[head.size()] != '(' || name.back() != ')') {
    throw std::invalid_argument{"WorkloadSpec: malformed '" + name + "'"};
  }
  return split(name.substr(head.size() + 1, name.size() - head.size() - 2),
               ',');
}

} // namespace

std::unique_ptr<cache::FileCache> CacheSpec::make() const {
  switch (kind) {
    case Kind::kNone: return nullptr;
    case Kind::kLru: return std::make_unique<cache::LruCache>(capacity);
    case Kind::kFifo: return std::make_unique<cache::FifoCache>(capacity);
    case Kind::kLfu: return std::make_unique<cache::LfuCache>(capacity);
  }
  throw std::logic_error{"CacheSpec: unknown kind"};
}

std::unique_ptr<workload::RequestStream> WorkloadSpec::make_stream(
    const workload::FileCatalog& catalog, std::uint64_t seed) const {
  switch (kind) {
    case Kind::kPoisson:
      return std::make_unique<workload::ArrivalZipfStream>(
          catalog, std::make_unique<workload::PoissonArrivals>(rate),
          horizon_s, util::Rng{seed});
    case Kind::kNhpp:
      return std::make_unique<workload::ArrivalZipfStream>(
          catalog,
          std::make_unique<workload::PiecewiseRateArrivals>(segments,
                                                            period_s),
          horizon_s, util::Rng{seed});
    case Kind::kMmpp:
      return std::make_unique<workload::ArrivalZipfStream>(
          catalog, std::make_unique<workload::MmppArrivals>(mmpp_params),
          horizon_s, util::Rng{seed});
    case Kind::kTrace:
      if (trace == nullptr) {
        throw std::invalid_argument{"WorkloadSpec: trace is required"};
      }
      return std::make_unique<workload::TraceStream>(*trace);
  }
  throw std::logic_error{"WorkloadSpec: unknown kind"};
}

double WorkloadSpec::measurement_horizon() const {
  if (kind == Kind::kTrace) {
    if (trace == nullptr) {
      throw std::invalid_argument{"WorkloadSpec: trace is required"};
    }
    // +1 s so the request landing exactly at the trace end is inside the
    // measurement window.
    return trace->duration() + 1.0;
  }
  return horizon_s;
}

std::string WorkloadSpec::spec() const {
  switch (kind) {
    case Kind::kPoisson:
      return "poisson(" + util::format_roundtrip(rate) + "," +
             util::format_roundtrip(horizon_s) + ")";
    case Kind::kNhpp: {
      std::string segs;
      for (std::size_t i = 0; i < segments.size(); ++i) {
        if (i > 0) segs += ";";
        segs += util::format_roundtrip(segments[i].start) + ":" +
                util::format_roundtrip(segments[i].rate);
      }
      std::string out = "nhpp(";
      out += segs;
      out += ",";
      out += util::format_roundtrip(horizon_s);
      if (period_s > 0.0) {
        out += ",";
        out += util::format_roundtrip(period_s);
      }
      out += ")";
      return out;
    }
    case Kind::kMmpp:
      return "mmpp(" + util::format_roundtrip(mmpp_params.rate[0]) + "," +
             util::format_roundtrip(mmpp_params.rate[1]) + "," +
             util::format_roundtrip(mmpp_params.mean_dwell[0]) + "," +
             util::format_roundtrip(mmpp_params.mean_dwell[1]) + "," +
             util::format_roundtrip(horizon_s) + ")";
    case Kind::kTrace: return "trace";
  }
  throw std::logic_error{"WorkloadSpec: unknown kind"};
}

WorkloadSpec WorkloadSpec::parse(const std::string& name) {
  if (name.rfind("poisson", 0) == 0) {
    const auto args = parse_call(name, "poisson");
    if (args.size() != 2) {
      throw std::invalid_argument{
          "WorkloadSpec: want poisson(rate,horizon), got '" + name + "'"};
    }
    return poisson(parse_number(args[0], name), parse_number(args[1], name));
  }
  if (name.rfind("nhpp", 0) == 0) {
    const auto args = parse_call(name, "nhpp");
    if (args.size() != 2 && args.size() != 3) {
      throw std::invalid_argument{
          "WorkloadSpec: want nhpp(t:r;...,horizon[,period]), got '" + name +
          "'"};
    }
    std::vector<workload::RateSegment> segments;
    for (const auto& seg : split(args[0], ';')) {
      const auto parts = split(seg, ':');
      if (parts.size() != 2) {
        throw std::invalid_argument{"WorkloadSpec: bad segment '" + seg +
                                    "' in '" + name + "'"};
      }
      segments.push_back({parse_number(parts[0], name),
                          parse_number(parts[1], name)});
    }
    const double horizon = parse_number(args[1], name);
    const double period =
        args.size() == 3 ? parse_number(args[2], name) : 0.0;
    return nhpp(std::move(segments), horizon, period);
  }
  if (name.rfind("mmpp", 0) == 0) {
    const auto args = parse_call(name, "mmpp");
    if (args.size() != 5) {
      throw std::invalid_argument{
          "WorkloadSpec: want mmpp(r0,r1,d0,d1,horizon), got '" + name + "'"};
    }
    workload::MmppParams p;
    p.rate[0] = parse_number(args[0], name);
    p.rate[1] = parse_number(args[1], name);
    p.mean_dwell[0] = parse_number(args[2], name);
    p.mean_dwell[1] = parse_number(args[3], name);
    return mmpp(p, parse_number(args[4], name));
  }
  throw std::invalid_argument{
      "WorkloadSpec: unknown workload '" + name +
      "' (want poisson(R,T)|nhpp(t:r;...,T[,P])|mmpp(r0,r1,d0,d1,T))"};
}

RunResult run_experiment(const ExperimentConfig& config) {
  if (config.catalog == nullptr) {
    throw std::invalid_argument{"ExperimentConfig: catalog is required"};
  }

  const auto cache = config.cache.make();
  StorageSystem system{*config.catalog, config.mapping, config.num_disks,
                       config.params,   config.policy,  cache.get(),
                       config.seed};
  system.set_scheduler(config.scheduler);
  for (const auto& [disk, policy] : config.policy_overrides) {
    system.set_policy_override(disk, policy);
  }

  const auto stream = config.workload.make_stream(*config.catalog, config.seed);
  return system.run(*stream, config.workload.measurement_horizon());
}

} // namespace spindown::sys
