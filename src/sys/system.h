// system.h — the complete simulated storage system.
//
// Wires together the DES kernel, a farm of disks, the dispatcher (plus
// optional cache), and a request stream; runs to completion; and reports
// power and response-time results.  Matches the paper's §4 environment:
// workload generator -> file dispatcher -> disks.
//
// Energy accounting: all disks are snapshotted at the *measurement horizon*
// (the stream's end time), so energy is integrated over an identical window
// for every configuration; requests still in flight at the horizon run to
// completion and their response times are recorded.
#pragma once

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "des/simulation.h"
#include "disk/disk.h"
#include "disk/spin_policy.h"
#include "stats/summary.h"
#include "sys/dispatcher.h"
#include "util/units.h"
#include "workload/stream.h"

namespace spindown::sys {

/// I/O scheduling discipline selection for a whole farm (io_scheduler.h).
/// Declarative like PolicySpec so experiment grids can sweep the discipline
/// axis; the default (FCFS) is bit-compatible with the seed simulator.
struct SchedulerSpec {
  enum class Kind { kFcfs, kSstf, kScan, kClook, kBatch };
  Kind kind = Kind::kFcfs;
  std::uint32_t max_batch = 16;             ///< kBatch: jobs per positioning
  std::uint64_t coalesce_gap_blocks = 2048; ///< kBatch: max forward gap (1 MiB)

  static SchedulerSpec fcfs() { return {}; }
  static SchedulerSpec sstf() { return SchedulerSpec{Kind::kSstf, 0, 0}; }
  static SchedulerSpec scan() { return SchedulerSpec{Kind::kScan, 0, 0}; }
  static SchedulerSpec clook() { return SchedulerSpec{Kind::kClook, 0, 0}; }
  static SchedulerSpec batch(std::uint32_t max_batch = 16,
                             std::uint64_t gap_blocks = 2048) {
    return SchedulerSpec{Kind::kBatch, max_batch, gap_blocks};
  }
  /// Parse a CLI name ("fcfs", "sstf", "scan", "clook", "batch", "batchN",
  /// "batchNxG" with G the coalesce gap in blocks); throws
  /// std::invalid_argument on anything else.
  static SchedulerSpec parse(const std::string& name);

  /// Canonical parseable key — "fcfs", "sstf", "scan", "clook", "batch16",
  /// "batch16x4096" when the gap differs from the default — such that
  /// parse(spec()) round-trips the value.
  std::string spec() const;

  std::unique_ptr<disk::IoScheduler> make() const;
  std::string name() const;
};

/// Spin-down policy selection for a whole farm.  The static kinds are the
/// paper's (plus the competitive-analysis baselines); the adaptive kinds
/// (src/adapt/) are instantiated per disk, so every spindle learns from its
/// own idle/response history.
struct PolicySpec {
  enum class Kind {
    kBreakEven,
    kFixed,
    kNever,
    kRandomized,
    kEwma,  ///< EWMA idle-time predictor (adapt/idle_predictor.h)
    kShare, ///< fixed-share expert combiner (adapt/share.h)
    kSlack, ///< slack-aware SLO controller (adapt/slack.h)
  };
  Kind kind = Kind::kBreakEven;
  double fixed_threshold_s = 0.0;   ///< kFixed
  double ewma_alpha = 0.25;         ///< kEwma: EWMA gain
  std::uint32_t share_experts = 12; ///< kShare: threshold-grid size
  double slack_target_s = 60.0;     ///< kSlack: p99 response SLO (seconds)

  static PolicySpec break_even() { return {}; }
  static PolicySpec fixed(double threshold_s) {
    return PolicySpec{Kind::kFixed, threshold_s};
  }
  static PolicySpec never() { return PolicySpec{Kind::kNever, 0.0}; }
  static PolicySpec randomized() { return PolicySpec{Kind::kRandomized, 0.0}; }
  static PolicySpec ewma(double alpha = 0.25) {
    PolicySpec p;
    p.kind = Kind::kEwma;
    p.ewma_alpha = alpha;
    return p;
  }
  static PolicySpec share(std::uint32_t experts = 12) {
    PolicySpec p;
    p.kind = Kind::kShare;
    p.share_experts = experts;
    return p;
  }
  static PolicySpec slack(double target_response_s = 60.0) {
    PolicySpec p;
    p.kind = Kind::kSlack;
    p.slack_target_s = target_response_s;
    return p;
  }

  /// Parse a CLI/report key; accepts everything spec() emits plus the bare
  /// adaptive names ("ewma", "share", "slack") with default knobs.  Throws
  /// std::invalid_argument on anything else.
  static PolicySpec parse(const std::string& name);
  /// Canonical parseable key — "break-even", "never", "randomized",
  /// "fixed:10", "ewma:0.25", "share:12", "slack:60" — such that
  /// parse(spec()) round-trips the value.
  std::string spec() const;

  std::unique_ptr<disk::SpinDownPolicy> make(const disk::DiskParams& p) const;
  std::string name(const disk::DiskParams& p) const;
};

/// Power-side results over the measurement window.
struct PowerReport {
  double horizon_s = 0.0;       ///< measurement window length
  util::Joules energy = 0.0;    ///< integrated over [0, horizon]
  util::Watts average_power = 0.0;
  util::Joules always_on_energy = 0.0; ///< same workload, no power mgmt
  double saving_vs_always_on = 0.0;    ///< 1 - energy/always_on_energy
  std::uint64_t spin_ups = 0;
  std::uint64_t spin_downs = 0;
  std::array<double, disk::kPowerStateCount> state_time{}; ///< farm totals
};

struct RunResult {
  PowerReport power;
  stats::ResponseSummary response;
  /// Response moments of the cache-hit stream alone (zero when no cache).
  /// Kept separate from `response` because the canonical aggregation —
  /// shared by the single-calendar path, the fleet path, and merge() —
  /// rebuilds `response` as fold(hits, per-disk moments in disk-id order),
  /// which is what makes the result independent of shard count.
  stats::Welford hits_response;
  cache::CacheStats cache;     ///< zeros when no cache configured
  std::uint64_t requests = 0;
  /// Calendar events executed (summed across shards for a fleet run): the
  /// numerator of the events/s throughput figure.  An engine statistic,
  /// not a physical result — the sharded path pre-routes arrivals instead
  /// of scheduling them as calendar events, so `events` varies with shard
  /// count while every physical field is shard-invariant.
  std::uint64_t events = 0;
  std::vector<disk::DiskMetrics> per_disk; ///< at the horizon, disk-id order
  /// Horizon accounting (from the same snapshot as per_disk/energy, so every
  /// dispatched request is counted exactly once at the horizon).  When the
  /// stream's arrivals all land inside [0, horizon) — true for every
  /// built-in workload: Poisson generates up to the horizon exclusive and
  /// trace replays measure over duration + 1 s — the identity
  ///   requests == completed_at_horizon + in_flight_at_horizon + cache.hits
  /// holds exactly.  (`requests` and `cache` are whole-run totals; a custom
  /// stream emitting arrivals past the horizon would inflate them relative
  /// to the two snapshot fields.)  `response` always covers all requests —
  /// in-flight services run to completion after the horizon and record
  /// their response times.
  std::uint64_t completed_at_horizon = 0; ///< sum of per-disk served
  /// Sum of per-disk queued + in_service at the horizon.
  std::uint64_t in_flight_at_horizon = 0;

  /// Combine the result of a disjoint disk-group sub-simulation of the same
  /// scenario window into this one.  Requires equal horizons and disjoint
  /// per_disk disk ids (throws std::invalid_argument otherwise).  Every
  /// per-disk-derived aggregate — power totals, horizon accounting, and the
  /// response summary — is *recomputed* from the merged per_disk vector in
  /// disk-id order rather than combined from the operands' aggregates, so
  /// merge is associative and order-independent bit-for-bit by
  /// construction, and a fold over any shard partition reproduces the
  /// single-calendar run exactly.  Caveat: `hits_response` is combined with
  /// Chan's formula, so bitwise reproducibility requires that at most one
  /// operand in a merge tree carries cache hits (true for fleet partials:
  /// the router-side partial owns all hits).
  RunResult& merge(const RunResult& other);

  /// Recompute the per-disk-derived aggregates of this result — power
  /// totals, completed/in-flight accounting, and response =
  /// fold(hits_response, per_disk[i].response in disk-id order) over
  /// `hist` — the canonical finalize shared by StorageSystem::run, the
  /// fleet path, and merge().  per_disk must be sorted by disk_id and
  /// power.horizon_s set.
  void recompute_from_per_disk(const stats::LinearHistogram& hist);
};

class StorageSystem {
public:
  /// `num_disks` must cover every disk index in `mapping`.  The cache
  /// pointer may be null; ownership stays with the caller.
  StorageSystem(const workload::FileCatalog& catalog,
                std::vector<std::uint32_t> mapping, std::uint32_t num_disks,
                disk::DiskParams params, const PolicySpec& policy,
                cache::FileCache* cache = nullptr,
                std::uint64_t seed = 1, double cache_hit_latency_s = 0.0);

  /// Per-disk spin-down policy overrides (e.g. MAID's always-on cache
  /// disks).  Disks without an entry use the constructor's policy.
  void set_policy_override(std::uint32_t disk, const PolicySpec& policy);

  /// Service discipline for every disk in the farm (default: FCFS, the
  /// seed-compatible behavior).  Call before run().
  void set_scheduler(const SchedulerSpec& scheduler) { scheduler_ = scheduler; }

  /// Enable tracing for the next run(): record the event kinds in
  /// `kind_mask` (obs::kind_bit), sampling metrics every
  /// `metrics_interval_s` of sim time, into `out` (canonical order).
  /// Tracing is read-only — the RunResult is bit-identical with it on or
  /// off.  Call before run(); null `out` or an empty mask disables.
  void set_obs(std::uint32_t kind_mask, double metrics_interval_s,
               obs::RunTrace* out) {
    obs_mask_ = kind_mask;
    obs_interval_s_ = metrics_interval_s;
    obs_out_ = out;
  }

  /// Drive the stream to exhaustion, measure energy over
  /// [0, max(stream end, `min_horizon`)], then drain in-flight requests.
  RunResult run(workload::RequestStream& stream, double min_horizon = 0.0);

private:
  const workload::FileCatalog& catalog_;
  std::vector<std::uint32_t> mapping_;
  std::uint32_t num_disks_;
  disk::DiskParams params_;
  PolicySpec policy_;
  SchedulerSpec scheduler_;
  cache::FileCache* cache_;
  std::uint64_t seed_;
  double cache_hit_latency_;
  std::vector<std::pair<std::uint32_t, PolicySpec>> policy_overrides_;
  std::uint32_t obs_mask_ = 0;
  double obs_interval_s_ = 60.0;
  obs::RunTrace* obs_out_ = nullptr;
};

/// Closed-form energy of the same served workload with power management
/// disabled (every disk spinning for the whole window): the Figure 5
/// normalizer.  `position_s`/`transfer_s` are farm-total busy times.
util::Joules always_on_energy(const disk::DiskParams& p, std::uint32_t disks,
                              double horizon_s, double position_s,
                              double transfer_s);

} // namespace spindown::sys
