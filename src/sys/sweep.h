// sweep.h — run batches of experiments in parallel.
//
// Each simulation is single-threaded and deterministic; a sweep (a figure's
// whole parameter grid) is embarrassingly parallel across configurations.
// Work is pulled from an atomic counter by a small pool of std::jthread
// workers (RAII-joined, per the project's concurrency guidelines); results
// land in input order regardless of completion order.
#pragma once

#include <span>
#include <vector>

#include "sys/experiment.h"

namespace spindown::sys {

/// Run all configs; `max_threads` = 0 means hardware concurrency.
/// Exceptions inside a worker are rethrown on the calling thread.
std::vector<RunResult> run_sweep(std::span<const ExperimentConfig> configs,
                                 unsigned max_threads = 0);

} // namespace spindown::sys
