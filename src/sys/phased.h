// phased.h — semi-dynamic operation: windows, drift, and reorganization.
//
// §1 of the paper: the allocation "can be applied in a semi-dynamic manner
// by accumulating access statistics over periodic intervals and performing
// reorganization of file allocations"; §6 lists migration decisions under
// popularity drift as future work.  This runner implements the loop:
//
//   for each window:
//     simulate the window's workload on the current placement
//     (popularities drift between windows)
//     if adaptive: re-pack from the observed per-file counts
//                  (core::Reorganizer) and pay for the migration
//
// Migration cost model: every moved byte is read once and written once at
// the device's transfer rate and active power — energy `2 * bytes/B * P_act`
// charged to the adaptive strategy's account (the simulator itself keeps
// serving reads; migration I/O is assumed scheduled in the idle troughs, so
// only its energy, not its queueing, is modeled — recorded as a caveat in
// EXPERIMENTS.md).
#pragma once

#include <vector>

#include "core/normalize.h"
#include "core/reorganizer.h"
#include "sys/experiment.h"

namespace spindown::sys {

struct PhasedConfig {
  const workload::FileCatalog* catalog = nullptr;
  core::LoadModel model;            ///< rate = per-window request rate
  std::uint32_t windows = 6;
  double window_s = 20'000.0;
  /// Fraction of the popularity ranking rotated per window (0 = stationary).
  double drift_per_window = 0.25;
  bool reorganize = true;           ///< false = static initial placement
  /// EWMA memory on the access counts the reorganizer consumes:
  /// state = decay * state + new_window_counts.  0 = trust only the last
  /// window (noisy; re-packing thrashes on sampling noise), values near 1
  /// adapt slowly.  The phased tests and bench quantify the effect.
  double count_decay = 0.5;
  PolicySpec policy = PolicySpec::break_even();
  SchedulerSpec scheduler = SchedulerSpec::fcfs();
  std::uint64_t seed = 1;
};

struct WindowReport {
  RunResult run;
  std::uint32_t disks_used = 0;
  /// Migration planned at the end of this window (zero for the last window
  /// and for the static strategy).
  util::Bytes migrated_bytes = 0;
  util::Joules migration_energy = 0.0;
};

struct PhasedResult {
  std::vector<WindowReport> windows;
  util::Joules total_energy = 0.0;     ///< service + migration
  util::Joules migration_energy = 0.0;
  util::Bytes migrated_bytes = 0;
  stats::ResponseSummary response;     ///< merged across windows
};

/// Run the phased loop.  Deterministic given the config.
PhasedResult run_phased(const PhasedConfig& config);

/// The drift model used between windows: popularity of file i in window w is
/// the base popularity of rank (rank_i + w * drift * n) mod n.  Exposed so
/// tests and benches can build the same drifting workloads.
workload::FileCatalog drifted_catalog(const workload::FileCatalog& base,
                                      std::uint32_t window,
                                      double drift_per_window);

} // namespace spindown::sys
