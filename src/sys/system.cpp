#include "sys/system.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "adapt/idle_predictor.h"
#include "obs/sampler.h"
#include "sys/spec_grammar.h"
#include "adapt/share.h"
#include "adapt/slack.h"

namespace spindown::sys {

std::unique_ptr<disk::IoScheduler> SchedulerSpec::make() const {
  switch (kind) {
    case Kind::kFcfs: return disk::make_fcfs_scheduler();
    case Kind::kSstf: return disk::make_sstf_scheduler();
    case Kind::kScan: return disk::make_scan_scheduler();
    case Kind::kClook: return disk::make_clook_scheduler();
    case Kind::kBatch:
      return disk::make_batch_scheduler(max_batch, coalesce_gap_blocks);
  }
  throw std::logic_error{"SchedulerSpec: unknown kind"};
}

std::string SchedulerSpec::name() const { return make()->name(); }

std::string SchedulerSpec::spec() const {
  switch (kind) {
    case Kind::kFcfs: return "fcfs";
    case Kind::kSstf: return "sstf";
    case Kind::kScan: return "scan";
    case Kind::kClook: return "clook";
    case Kind::kBatch: {
      std::string out = "batch";
      out += std::to_string(max_batch);
      if (coalesce_gap_blocks != SchedulerSpec::batch().coalesce_gap_blocks) {
        out += "x";
        out += std::to_string(coalesce_gap_blocks);
      }
      return out;
    }
  }
  throw std::logic_error{"SchedulerSpec: unknown kind"};
}

SchedulerSpec SchedulerSpec::parse(const std::string& name) {
  if (name == "fcfs") return fcfs();
  if (name == "sstf") return sstf();
  if (name == "scan") return scan();
  if (name == "clook") return clook();
  // "batch", "batchN" (N = max batch size; what name() emits, so labels
  // copied from reports round-trip) or "batchNxG" (G = coalesce gap in
  // blocks; what spec() emits for non-default gaps).
  if (name.rfind("batch", 0) == 0) {
    std::string suffix = name.substr(5);
    if (suffix.empty()) return batch();
    std::uint64_t gap = SchedulerSpec::batch().coalesce_gap_blocks;
    if (const auto x = suffix.find('x'); x != std::string::npos) {
      gap = detail::parse_unsigned(suffix.substr(x + 1), name,
                                   "SchedulerSpec");
      suffix = suffix.substr(0, x);
    }
    const auto n = detail::parse_unsigned(suffix, name, "SchedulerSpec");
    if (n == 0 || n > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument{
          "SchedulerSpec: batch size out of range in '" + name + "'"};
    }
    return batch(static_cast<std::uint32_t>(n), gap);
  }
  throw std::invalid_argument{"SchedulerSpec: unknown scheduler '" + name +
                              "' (want fcfs|sstf|scan|clook|batch[N[xG]])"};
}

std::unique_ptr<disk::SpinDownPolicy> PolicySpec::make(
    const disk::DiskParams& p) const {
  switch (kind) {
    case Kind::kBreakEven: return disk::make_break_even_policy(p);
    case Kind::kFixed: return disk::make_fixed_policy(fixed_threshold_s);
    case Kind::kNever: return disk::make_never_policy();
    case Kind::kRandomized: return disk::make_randomized_policy(p);
    case Kind::kEwma: {
      adapt::EwmaPredictorConfig cfg;
      cfg.alpha = ewma_alpha;
      return adapt::make_ewma_policy(p, cfg);
    }
    case Kind::kShare: {
      adapt::ShareConfig cfg;
      cfg.experts = share_experts;
      return adapt::make_share_policy(p, cfg);
    }
    case Kind::kSlack: {
      adapt::SlackConfig cfg;
      cfg.target_response_s = slack_target_s;
      return adapt::make_slack_policy(p, cfg);
    }
  }
  throw std::logic_error{"PolicySpec: unknown kind"};
}

std::string PolicySpec::name(const disk::DiskParams& p) const {
  return make(p)->name();
}

std::string PolicySpec::spec() const {
  switch (kind) {
    case Kind::kBreakEven: return "break-even";
    case Kind::kNever: return "never";
    case Kind::kRandomized: return "randomized";
    case Kind::kFixed:
      return "fixed:" + util::format_roundtrip(fixed_threshold_s);
    case Kind::kEwma: return "ewma:" + util::format_roundtrip(ewma_alpha);
    case Kind::kShare: return "share:" + std::to_string(share_experts);
    case Kind::kSlack: return "slack:" + util::format_roundtrip(slack_target_s);
  }
  throw std::logic_error{"PolicySpec: unknown kind"};
}

PolicySpec PolicySpec::parse(const std::string& name) {
  const auto colon = name.find(':');
  const std::string head = name.substr(0, colon);
  const bool has_arg = colon != std::string::npos && colon + 1 < name.size();
  const std::string arg = has_arg ? name.substr(colon + 1) : std::string{};
  const auto numeric_arg = [&](double fallback) {
    if (!has_arg) return fallback;
    const auto v = util::parse_finite_double(arg);
    if (!v.has_value()) {
      throw std::invalid_argument{"PolicySpec: bad number '" + arg +
                                  "' in '" + name + "'"};
    }
    return *v;
  };
  if (head == "break-even") return break_even();
  if (head == "never") return never();
  if (head == "randomized") return randomized();
  if (head == "fixed") {
    if (!has_arg) {
      throw std::invalid_argument{"PolicySpec: fixed needs a threshold "
                                  "(fixed:<seconds>)"};
    }
    return fixed(numeric_arg(0.0));
  }
  if (head == "ewma") return ewma(numeric_arg(PolicySpec{}.ewma_alpha));
  if (head == "share") {
    const double n =
        numeric_arg(static_cast<double>(PolicySpec{}.share_experts));
    // Range-check before the cast: an out-of-range float-to-int conversion
    // is undefined behavior, not a detectable error.
    if (n < 2.0 || n > 4096.0 || n != std::floor(n)) {
      throw std::invalid_argument{"PolicySpec: share expert count must be an "
                                  "integer in [2, 4096]"};
    }
    return share(static_cast<std::uint32_t>(n));
  }
  if (head == "slack") return slack(numeric_arg(PolicySpec{}.slack_target_s));
  throw std::invalid_argument{
      "PolicySpec: unknown policy '" + name +
      "' (want break-even|never|randomized|fixed:T|ewma[:a]|share[:n]|"
      "slack[:slo])"};
}

util::Joules always_on_energy(const disk::DiskParams& p, std::uint32_t disks,
                              double horizon_s, double position_s,
                              double transfer_s) {
  // Idle draw for the whole window on every spindle, plus the service
  // premium (seek/active over idle) for the actual busy time.
  return static_cast<double>(disks) * horizon_s * p.idle_w +
         position_s * (p.seek_w - p.idle_w) +
         transfer_s * (p.active_w - p.idle_w);
}

void RunResult::recompute_from_per_disk(const stats::LinearHistogram& hist) {
  power.energy = 0.0;
  power.always_on_energy = 0.0;
  power.spin_ups = 0;
  power.spin_downs = 0;
  power.state_time.fill(0.0);
  completed_at_horizon = 0;
  in_flight_at_horizon = 0;
  // Canonical fold: the cache-hit moments first, then every disk's moments
  // in disk-id order.  Welford's combine is floating-point-order-dependent,
  // so fixing this order — rather than using completion order or shard
  // arrival order — is what makes the result identical at any shard count.
  stats::Welford fold = hits_response;
  for (const auto& m : per_disk) {
    power.energy += m.energy_j;
    power.always_on_energy += m.always_on_j;
    power.spin_ups += m.spin_ups;
    power.spin_downs += m.spin_downs;
    for (std::size_t i = 0; i < disk::kPowerStateCount; ++i) {
      power.state_time[i] += m.state_time[i];
    }
    completed_at_horizon += m.served;
    in_flight_at_horizon += m.queued + m.in_service;
    fold.merge(m.response);
  }
  power.average_power =
      power.horizon_s > 0.0 ? power.energy / power.horizon_s : 0.0;
  power.saving_vs_always_on =
      power.always_on_energy > 0.0
          ? 1.0 - power.energy / power.always_on_energy
          : 0.0;
  response = stats::ResponseSummary::from_parts(fold, hist);
}

RunResult& RunResult::merge(const RunResult& other) {
  // A default-constructed RunResult acts as the fold identity.
  const bool identity = per_disk.empty() && response.count() == 0 &&
                        requests == 0 && power.horizon_s == 0.0;
  if (identity) {
    power.horizon_s = other.power.horizon_s;
  } else if (power.horizon_s != other.power.horizon_s) {
    throw std::invalid_argument{
        "RunResult::merge: operands measured over different horizons"};
  }
  std::vector<disk::DiskMetrics> merged;
  merged.reserve(per_disk.size() + other.per_disk.size());
  std::merge(per_disk.begin(), per_disk.end(), other.per_disk.begin(),
             other.per_disk.end(), std::back_inserter(merged),
             [](const disk::DiskMetrics& a, const disk::DiskMetrics& b) {
               return a.disk_id < b.disk_id;
             });
  for (std::size_t i = 1; i < merged.size(); ++i) {
    if (merged[i - 1].disk_id == merged[i].disk_id) {
      throw std::invalid_argument{
          "RunResult::merge: operands share disk id " +
          std::to_string(merged[i].disk_id) +
          " (sub-simulations must cover disjoint disk groups)"};
    }
  }
  per_disk = std::move(merged);
  hits_response.merge(other.hits_response);
  cache.hits += other.cache.hits;
  cache.misses += other.cache.misses;
  cache.evictions += other.cache.evictions;
  requests += other.requests;
  events += other.events;
  auto hist = response.histogram();
  hist.merge(other.response.histogram());
  recompute_from_per_disk(hist);
  return *this;
}

StorageSystem::StorageSystem(const workload::FileCatalog& catalog,
                             std::vector<std::uint32_t> mapping,
                             std::uint32_t num_disks, disk::DiskParams params,
                             const PolicySpec& policy, cache::FileCache* cache,
                             std::uint64_t seed, double cache_hit_latency_s)
    : catalog_(catalog), mapping_(std::move(mapping)), num_disks_(num_disks),
      params_(std::move(params)), policy_(policy), cache_(cache), seed_(seed),
      cache_hit_latency_(cache_hit_latency_s) {
  for (const auto d : mapping_) {
    if (d >= num_disks_) {
      throw std::invalid_argument{
          "StorageSystem: mapping references disk >= num_disks"};
    }
  }
}

void StorageSystem::set_policy_override(std::uint32_t disk,
                                        const PolicySpec& policy) {
  if (disk >= num_disks_) {
    throw std::invalid_argument{"set_policy_override: unknown disk"};
  }
  policy_overrides_.emplace_back(disk, policy);
}

RunResult StorageSystem::run(workload::RequestStream& stream,
                             double min_horizon) {
  des::Simulation sim;
  util::Rng farm_rng{seed_};

  std::vector<std::unique_ptr<disk::Disk>> disks;
  disks.reserve(num_disks_);
  for (std::uint32_t d = 0; d < num_disks_; ++d) {
    const PolicySpec* policy = &policy_;
    for (const auto& [disk_id, override_policy] : policy_overrides_) {
      if (disk_id == d) policy = &override_policy;
    }
    disks.push_back(std::make_unique<disk::Disk>(
        sim, d, params_, policy->make(params_), farm_rng.split(),
        scheduler_.make()));
  }

  RunResult result;
  // Response accumulation is canonical, not chronological: per-disk Welford
  // moments (folded in disk-id order at finalize) plus one shared histogram
  // (bin-wise integer adds commute).  Completion order — which depends on
  // how the calendar interleaves disks, and would differ between a single
  // calendar and a sharded run at equal-timestamp completions — never
  // touches the result.
  std::vector<stats::Welford> per_disk_response(num_disks_);
  stats::LinearHistogram hist{stats::ResponseSummary::kHistLo,
                              stats::ResponseSummary::kHistHi,
                              stats::ResponseSummary::kHistBins};
  for (auto& d : disks) {
    d->set_completion_callback(
        [&per_disk_response, &hist](const disk::Completion& c) {
          per_disk_response[c.disk_id].add(c.response_time());
          hist.add(c.response_time());
        });
  }

  std::vector<disk::Disk*> disk_ptrs;
  disk_ptrs.reserve(disks.size());
  for (auto& d : disks) disk_ptrs.push_back(d.get());

  // Tracing: one single-writer buffer (this path is single-threaded), with
  // the canonical track sort applied at the end.  Read-only with respect to
  // the physics, so the RunResult is identical with tracing on or off.
  const bool tracing = obs_out_ != nullptr && obs_mask_ != 0;
  obs::TraceBuffer trace{tracing ? obs_mask_ : 0};
  if (tracing) {
    for (auto& d : disks) d->set_trace(&trace);
  }

  Dispatcher dispatcher{sim,       catalog_, mapping_,
                        disk_ptrs, cache_,   cache_hit_latency_};
  if (tracing) dispatcher.set_trace(&trace);
  dispatcher.set_hit_callback([&result, &hist](std::uint64_t, double latency) {
    result.hits_response.add(latency);
    hist.add(latency);
  });

  // Pull-scheduled arrivals: each arrival event dispatches and schedules the
  // next one, so only one pending arrival sits in the calendar at a time.
  // The scheduled capture is (pump pointer + Request by value) — well inside
  // the calendar's inline-callback buffer, so the arrival path of a replay
  // performs no heap allocations.
  struct ArrivalPump {
    des::Simulation& sim;
    Dispatcher& dispatcher;
    workload::RequestStream& stream;
    void operator()() {
      auto req = stream.next();
      if (!req.has_value()) return;
      sim.schedule_at(req->arrival, [this, r = *req] {
        dispatcher.dispatch(r);
        (*this)();
      });
    }
  };
  ArrivalPump pump{sim, dispatcher, stream};
  pump();

  // Snapshot every disk ledger exactly at the measurement horizon so energy
  // is integrated over an identical window for every configuration.  With
  // min_horizon == 0 the snapshot happens after the calendar drains instead
  // (measure over the whole episode).
  std::vector<disk::DiskMetrics> snapshot;
  const bool fixed_window = min_horizon > 0.0;
  // Metrics sampling needs a known horizon; open-ended episodes (min_horizon
  // == 0) have none, matching the fleet path's positive-horizon requirement.
  obs::MetricsSampler sampler{sim, obs_interval_s_,
                              fixed_window ? min_horizon : 0.0,
                              tracing ? &trace : nullptr};
  if (tracing && fixed_window) {
    for (auto& d : disks) sampler.add_disk(d.get());
    sampler.start();
  }
  if (fixed_window) {
    sim.schedule_at(min_horizon, [&] {
      snapshot.clear();
      for (auto& d : disks) snapshot.push_back(d->metrics(sim.now()));
    });
  }

  // Run everything: remaining services past the horizon still complete and
  // contribute their response times.
  sim.run();

  const double horizon = fixed_window ? min_horizon : sim.now();
  if (!fixed_window) {
    for (auto& d : disks) snapshot.push_back(d->metrics(sim.now()));
  }

  result.requests = dispatcher.dispatched();
  // Sampler ticks are bookkeeping events, not simulation work; subtracting
  // them keeps `events` identical to the untraced run.
  result.events = sim.executed() - sampler.ticks();
  result.power.horizon_s = horizon;
  // The snapshot freezes the power/queue counters at the horizon; response
  // moments cover the whole episode (post-horizon drain included), so they
  // are attached after the calendar empties.
  for (auto& m : snapshot) m.response = per_disk_response[m.disk_id];
  result.per_disk = std::move(snapshot);
  if (cache_ != nullptr) result.cache = cache_->stats();
  result.recompute_from_per_disk(hist);
  if (tracing) {
    obs_out_->horizon_s = horizon;
    obs_out_->shards = 1;
    obs_out_->workers = 1;
    obs::TraceBuffer* const buffers[] = {&trace};
    obs::append_canonical(obs_out_->events, buffers);
  }
  return result;
}

} // namespace spindown::sys
