#include "sys/scenario.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/greedy.h"
#include "core/maid.h"
#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/pack_grouped.h"
#include "core/pack_segregated.h"
#include "core/random_alloc.h"
#include "core/sea.h"
#include "sys/fleet.h"
#include "sys/spec_grammar.h"
#include "sys/sweep.h"
#include "util/rng.h"

namespace spindown::sys {
namespace {

double parse_number(const std::string& s, const std::string& context) {
  return detail::parse_number(s, context, "ScenarioSpec");
}

std::uint64_t parse_unsigned(const std::string& s,
                             const std::string& context) {
  return detail::parse_unsigned(s, context, "ScenarioSpec");
}

std::vector<std::string> parse_call(const std::string& name,
                                    const std::string& head) {
  return detail::parse_call(name, head, "ScenarioSpec");
}

std::string correlation_name(workload::SizeCorrelation c) {
  switch (c) {
    case workload::SizeCorrelation::kInverse: return "inverse";
    case workload::SizeCorrelation::kIndependent: return "independent";
    case workload::SizeCorrelation::kDirect: return "direct";
  }
  throw std::logic_error{"CatalogSpec: unknown correlation"};
}

workload::SizeCorrelation parse_correlation(const std::string& s,
                                            const std::string& context) {
  if (s == "inverse") return workload::SizeCorrelation::kInverse;
  if (s == "independent") return workload::SizeCorrelation::kIndependent;
  if (s == "direct") return workload::SizeCorrelation::kDirect;
  throw std::invalid_argument{
      "ScenarioSpec: bad correlation '" + s + "' in " + context +
      " (want inverse|independent|direct)"};
}

util::Bytes parse_size(const std::string& s, const std::string& context) {
  const auto v = util::parse_bytes(s);
  if (!v.has_value()) {
    throw std::invalid_argument{"ScenarioSpec: bad size '" + s + "' in " +
                                context};
  }
  return *v;
}

/// Memo key for a catalog: the canonical spec string plus every
/// resolution-relevant field the grammar does *not* carry (programmatic
/// NerscSpec overrides), so two specs that would synthesize different
/// traces never share a cache entry.
std::string catalog_memo_key(const CatalogSpec& c) {
  std::string key = c.spec();
  if (c.kind == CatalogSpec::Kind::kNersc) {
    const auto& n = c.nersc;
    key += "|" + std::to_string(n.mean_size) + "|" +
           std::to_string(n.min_size) + "|" + std::to_string(n.max_size) +
           "|" + util::format_roundtrip(n.popularity_exponent) + "|" +
           util::format_roundtrip(n.batch_spacing_s) + "|" +
           (n.diurnal ? "d1" : "d0") + "|" +
           util::format_roundtrip(n.day_fraction) + "|" +
           util::format_roundtrip(n.night_intensity);
  }
  return key;
}

/// The DiskParams fields that shape a placement: capacity (size
/// normalization, MAID fill) and the service-time model (load
/// normalization).  Part of every mapping memo key, since params is a
/// programmatic (non-grammar) field.
std::string params_memo_key(const disk::DiskParams& p) {
  return std::to_string(p.capacity) + "|" +
         util::format_roundtrip(p.avg_seek_s) + "|" +
         util::format_roundtrip(p.avg_rotation_s) + "|" +
         util::format_roundtrip(p.transfer_bps);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

} // namespace

// ---------------------------------------------------------------- catalog

CatalogSpec CatalogSpec::table1(std::size_t n_files, std::uint64_t seed) {
  CatalogSpec c;
  c.synth = workload::SyntheticSpec::paper_table1();
  c.synth.n_files = n_files;
  c.seed = seed;
  return c;
}

CatalogSpec CatalogSpec::synthetic(const workload::SyntheticSpec& synth,
                                   std::uint64_t seed) {
  CatalogSpec c;
  c.synth = synth;
  c.seed = seed;
  return c;
}

CatalogSpec CatalogSpec::nersc_synth(const workload::NerscSpec& spec) {
  CatalogSpec c;
  c.kind = Kind::kNersc;
  c.nersc = spec;
  return c;
}

CatalogSpec CatalogSpec::trace(std::string path) {
  CatalogSpec c;
  c.kind = Kind::kTrace;
  c.path = std::move(path);
  return c;
}

std::string CatalogSpec::spec() const {
  switch (kind) {
    case Kind::kSynthetic: {
      const auto paper = workload::SyntheticSpec::paper_table1();
      const bool is_table1 = synth.zipf_exponent == paper.zipf_exponent &&
                             synth.max_size == paper.max_size &&
                             synth.correlation == paper.correlation;
      if (is_table1) {
        return "table1(" + std::to_string(synth.n_files) + "," +
               std::to_string(seed) + ")";
      }
      return "synth(" + std::to_string(synth.n_files) + "," +
             util::format_roundtrip(synth.zipf_exponent) + "," +
             util::format_bytes_spec(synth.max_size) + "," +
             correlation_name(synth.correlation) + "," + std::to_string(seed) +
             ")";
    }
    case Kind::kNersc: {
      const workload::NerscSpec d;
      std::string out = "nersc(" + std::to_string(nersc.n_files) + "," +
                        std::to_string(nersc.n_requests) + "," +
                        std::to_string(nersc.seed);
      // Trailing optionals, emitted up to the last non-default value.
      const std::vector<std::pair<bool, std::string>> optionals{
          {nersc.duration_s != d.duration_s,
           util::format_roundtrip(nersc.duration_s)},
          {nersc.batch_fraction != d.batch_fraction,
           util::format_roundtrip(nersc.batch_fraction)},
          {nersc.batch_min != d.batch_min, std::to_string(nersc.batch_min)},
          {nersc.batch_max != d.batch_max, std::to_string(nersc.batch_max)}};
      std::size_t last = 0;
      for (std::size_t i = 0; i < optionals.size(); ++i) {
        if (optionals[i].first) last = i + 1;
      }
      for (std::size_t i = 0; i < last; ++i) out += "," + optionals[i].second;
      return out + ")";
    }
    case Kind::kTrace: return "trace:" + path;
  }
  throw std::logic_error{"CatalogSpec: unknown kind"};
}

CatalogSpec CatalogSpec::parse(const std::string& name) {
  if (name.rfind("trace:", 0) == 0) {
    const std::string stem = name.substr(6);
    if (stem.empty()) {
      throw std::invalid_argument{
          "CatalogSpec: trace needs a CSV stem (trace:<path>)"};
    }
    return trace(stem);
  }
  if (name.rfind("table1", 0) == 0) {
    const auto args = parse_call(name, "table1");
    if (args.size() != 2) {
      throw std::invalid_argument{"CatalogSpec: want table1(n,seed), got '" +
                                  name + "'"};
    }
    return table1(parse_unsigned(args[0], name), parse_unsigned(args[1], name));
  }
  if (name.rfind("synth", 0) == 0) {
    const auto args = parse_call(name, "synth");
    if (args.size() != 5) {
      throw std::invalid_argument{
          "CatalogSpec: want synth(n,zipf,maxsize,corr,seed), got '" + name +
          "'"};
    }
    workload::SyntheticSpec s = workload::SyntheticSpec::paper_table1();
    s.n_files = parse_unsigned(args[0], name);
    s.zipf_exponent = parse_number(args[1], name);
    s.max_size = parse_size(args[2], name);
    s.correlation = parse_correlation(args[3], name);
    return synthetic(s, parse_unsigned(args[4], name));
  }
  if (name.rfind("nersc", 0) == 0) {
    const auto args = parse_call(name, "nersc");
    if (args.size() < 3 || args.size() > 7) {
      throw std::invalid_argument{
          "CatalogSpec: want nersc(files,requests,seed[,dur_s[,bfrac[,bmin"
          "[,bmax]]]]), got '" + name + "'"};
    }
    workload::NerscSpec s;
    s.n_files = parse_unsigned(args[0], name);
    s.n_requests = parse_unsigned(args[1], name);
    s.seed = parse_unsigned(args[2], name);
    if (args.size() > 3) s.duration_s = parse_number(args[3], name);
    if (args.size() > 4) s.batch_fraction = parse_number(args[4], name);
    if (args.size() > 5) s.batch_min = parse_unsigned(args[5], name);
    if (args.size() > 6) s.batch_max = parse_unsigned(args[6], name);
    return nersc_synth(s);
  }
  throw std::invalid_argument{
      "CatalogSpec: unknown catalog '" + name +
      "' (want table1(n,seed)|synth(n,zipf,max,corr,seed)|"
      "nersc(files,requests,seed,...)|trace:<stem>)"};
}

// -------------------------------------------------------------- placement

std::string PlacementSpec::spec() const {
  switch (kind) {
    case Kind::kPack: return "pack";
    case Kind::kGrouped: return "grouped:" + std::to_string(group_size);
    case Kind::kRandom: return "random";
    case Kind::kMaid: return "maid:" + std::to_string(cache_disks);
    case Kind::kSea: return "sea:" + util::format_roundtrip(hot_load_share);
    case Kind::kSegregated: return "seg:" + std::to_string(size_classes);
    case Kind::kFfd: return "ffd";
  }
  throw std::logic_error{"PlacementSpec: unknown kind"};
}

PlacementSpec PlacementSpec::parse(const std::string& name) {
  const auto colon = name.find(':');
  const std::string head = name.substr(0, colon);
  const bool has_arg = colon != std::string::npos && colon + 1 < name.size();
  const std::string arg = has_arg ? name.substr(colon + 1) : std::string{};
  const auto count_arg = [&](std::uint32_t fallback, std::uint32_t lo,
                             std::uint32_t hi) {
    if (!has_arg) return fallback;
    const auto v = parse_unsigned(arg, name);
    if (v < lo || v > hi) {
      throw std::invalid_argument{"PlacementSpec: count out of range in '" +
                                  name + "'"};
    }
    return static_cast<std::uint32_t>(v);
  };
  // Argument-less kinds must really be argument-less: "pack:4" is almost
  // certainly a mistyped "grouped:4", not a request for plain pack.
  const auto no_arg = [&] {
    if (colon != std::string::npos) {
      throw std::invalid_argument{"PlacementSpec: '" + head +
                                  "' takes no argument, got '" + name + "'"};
    }
  };
  if (head == "pack") {
    no_arg();
    return pack();
  }
  if (head == "grouped") return grouped(count_arg(4, 1, 1024));
  if (head == "random") {
    no_arg();
    return random();
  }
  if (head == "maid") return maid(count_arg(4, 1, 1024));
  if (head == "sea") {
    double share = 0.8;
    if (has_arg) {
      share = parse_number(arg, name);
      if (!(share > 0.0 && share <= 1.0)) {
        throw std::invalid_argument{
            "PlacementSpec: sea hot share must be in (0,1], got '" + name +
            "'"};
      }
    }
    return sea(share);
  }
  if (head == "seg") return segregated(count_arg(2, 1, 64));
  if (head == "ffd") {
    no_arg();
    return ffd();
  }
  throw std::invalid_argument{
      "PlacementSpec: unknown placement '" + name +
      "' (want pack|grouped:k|random|maid:c|sea:h|seg:k|ffd)"};
}

// --------------------------------------------------------------- scenario

namespace {

void apply_key(ScenarioSpec& s, const std::string& key,
               const std::string& value) {
  if (key == "label") {
    s.label = value;
  } else if (key == "catalog") {
    s.catalog = CatalogSpec::parse(value);
  } else if (key == "placement") {
    s.placement = PlacementSpec::parse(value);
  } else if (key == "load") {
    const double l = parse_number(value, "load=" + value);
    if (!(l > 0.0 && l <= 1.0)) {
      throw std::invalid_argument{
          "ScenarioSpec: load must be in (0,1], got '" + value + "'"};
    }
    s.load_fraction = l;
  } else if (key == "disks") {
    s.disks = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        parse_unsigned(value, "disks=" + value), 1'000'000));
  } else if (key == "policy") {
    s.policy = PolicySpec::parse(value);
  } else if (key == "sched" || key == "scheduler") {
    s.scheduler = SchedulerSpec::parse(value);
  } else if (key == "cache") {
    s.cache = CacheSpec::parse(value);
  } else if (key == "workload") {
    s.workload = WorkloadSpec::parse(value);
  } else if (key == "seed") {
    s.seed = parse_unsigned(value, "seed=" + value);
  } else if (key == "shards") {
    if (value == "auto") {
      s.shards = 0;
    } else {
      const auto n = parse_unsigned(value, "shards=" + value);
      if (n < 1 || n > 256) {
        throw std::invalid_argument{
            "ScenarioSpec: shards must be 'auto' or in [1, 256], got '" +
            value + "'"};
      }
      s.shards = static_cast<std::uint32_t>(n);
    }
  } else if (key == "obs") {
    s.obs = ObsSpec::parse(value);
  } else if (key == "replicas") {
    const auto k = parse_unsigned(value, "replicas=" + value);
    if (k < 1 || k > 16) {
      throw std::invalid_argument{
          "ScenarioSpec: replicas must be in [1, 16], got '" + value + "'"};
    }
    s.placement.replicas = static_cast<std::uint32_t>(k);
  } else if (key == "orch") {
    s.orch = OrchSpec::parse(value);
  } else {
    throw std::invalid_argument{
        "ScenarioSpec: unknown key '" + key +
        "' (want label|catalog|placement|replicas|load|disks|policy|sched|"
        "cache|workload|seed|shards|obs|orch)"};
  }
}

} // namespace

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec s;
  std::istringstream in{text};
  std::string token;
  bool any = false;
  while (in >> token) {
    any = true;
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument{"ScenarioSpec: expected key=value, got '" +
                                  token + "'"};
    }
    apply_key(s, token.substr(0, eq), token.substr(eq + 1));
  }
  if (!any) {
    throw std::invalid_argument{"ScenarioSpec: empty scenario string"};
  }
  return s;
}

std::string ScenarioSpec::spec() const {
  std::string out;
  if (!label.empty() && label.find_first_of(" \t\n") == std::string::npos) {
    out += "label=" + label + " ";
  }
  out += "catalog=" + catalog.spec();
  out += " placement=" + placement.spec();
  // Result-determining (redirection routes over the replica sets), but 1 —
  // no replication — is the overwhelmingly common case, so the key appears
  // only off-default and pre-orchestration canonical strings are unchanged.
  if (placement.replicas != 1) {
    out += " replicas=" + std::to_string(placement.replicas);
  }
  out += " load=" + util::format_roundtrip(load_fraction);
  out += " disks=" + std::to_string(disks);
  out += " policy=" + policy.spec();
  out += " sched=" + scheduler.spec();
  out += " cache=" + cache.spec();
  out += " workload=" + workload.spec();
  out += " seed=" + std::to_string(seed);
  // Emitted only off-default: shards is an execution knob, not part of the
  // result-determining identity (same results at any shard count), so the
  // canonical strings of all pre-fleet scenarios are unchanged.
  if (shards != 1) {
    out += " shards=";
    out += shards == 0 ? "auto" : std::to_string(shards);
  }
  // Same convention as shards: observability never changes results, so the
  // key appears only when something is enabled.
  if (obs.enabled()) out += " obs=" + obs.spec();
  // Orchestration IS result-determining, but "off" is the default and the
  // only value every pre-orchestration scenario carries.
  if (orch.enabled()) out += " orch=" + orch.spec();
  return out;
}

ScenarioSpec ScenarioSpec::with(const std::string& key,
                                const std::string& value) const {
  ScenarioSpec out = *this;
  apply_key(out, key, value);
  return out;
}

// ------------------------------------------------------------- resolution

const ScenarioCache::CatalogEntry& ScenarioCache::catalog_for(
    const ScenarioSpec& spec) {
  const std::string key = catalog_memo_key(spec.catalog);
  if (const auto it = catalogs_.find(key); it != catalogs_.end()) {
    return it->second;
  }
  CatalogEntry entry;
  switch (spec.catalog.kind) {
    case CatalogSpec::Kind::kSynthetic: {
      util::Rng rng{spec.catalog.seed};
      entry.catalog = std::make_shared<const workload::FileCatalog>(
          workload::generate_catalog(spec.catalog.synth, rng));
      break;
    }
    case CatalogSpec::Kind::kNersc: {
      auto trace = std::make_shared<const workload::Trace>(
          workload::synthesize_nersc(spec.catalog.nersc));
      entry.trace = trace;
      entry.catalog = std::shared_ptr<const workload::FileCatalog>(
          trace, &trace->catalog());
      break;
    }
    case CatalogSpec::Kind::kTrace: {
      // Reuse a trace the workload spec already loaded from the same stem.
      std::shared_ptr<const workload::Trace> trace;
      if (spec.workload.owned_trace != nullptr &&
          spec.workload.trace_path == spec.catalog.path) {
        trace = spec.workload.owned_trace;
      } else {
        trace = workload::Trace::load_shared(spec.catalog.path);
      }
      entry.trace = trace;
      entry.catalog = std::shared_ptr<const workload::FileCatalog>(
          trace, &trace->catalog());
      break;
    }
  }
  return catalogs_.emplace(key, std::move(entry)).first->second;
}

const ScenarioCache::MappingEntry& ScenarioCache::mapping_for(
    const ScenarioSpec& spec, const CatalogEntry& cat, double rate) {
  const auto& placement = spec.placement;
  std::string key = catalog_memo_key(spec.catalog) + "|" + placement.spec() +
                    "|" + params_memo_key(spec.params);

  core::LoadModel model;
  model.rate = rate;
  model.load_fraction = spec.load_fraction;
  model.disk = spec.params;

  // The memo key carries exactly the inputs the mapping depends on, so a
  // sweep over policies/thresholds/seeds reuses one packing per grid, and
  // (for size-only allocators) even the rate axis shares it.
  switch (placement.kind) {
    case PlacementSpec::Kind::kRandom:
      // Random placement ignores load entirely; the mapping depends only on
      // file sizes, the farm and the seed (plus, with disks=0, the packing
      // that sizes the farm — §5.1's "same number of disks as Pack_Disks").
      key += spec.disks > 0
                 ? "|disks=" + std::to_string(spec.disks)
                 : "|L=" + util::format_roundtrip(spec.load_fraction) +
                       "|R=" + util::format_roundtrip(rate);
      key += "|seed=" + std::to_string(spec.seed);
      break;
    case PlacementSpec::Kind::kMaid:
      key += "|disks=" + std::to_string(spec.disks);
      break;
    default:
      key += "|L=" + util::format_roundtrip(spec.load_fraction) +
             "|R=" + util::format_roundtrip(rate);
      break;
  }
  if (const auto it = mappings_.find(key); it != mappings_.end()) {
    return it->second;
  }

  MappingEntry entry;
  const auto from_assignment = [&entry](const core::Assignment& a) {
    entry.mapping =
        std::make_shared<const std::vector<std::uint32_t>>(a.disk_of);
    entry.alloc_disks = a.disk_count;
  };
  switch (placement.kind) {
    case PlacementSpec::Kind::kPack: {
      const auto items = core::normalize(*cat.catalog, model);
      core::PackDisks pack;
      from_assignment(pack.allocate(items));
      break;
    }
    case PlacementSpec::Kind::kGrouped: {
      const auto items = core::normalize(*cat.catalog, model);
      core::PackDisksGrouped pack{placement.group_size};
      from_assignment(pack.allocate(items));
      break;
    }
    case PlacementSpec::Kind::kSegregated: {
      const auto items = core::normalize(*cat.catalog, model);
      core::SegregatedPackDisks seg{placement.size_classes};
      from_assignment(seg.allocate(items));
      break;
    }
    case PlacementSpec::Kind::kFfd: {
      const auto items = core::normalize(*cat.catalog, model);
      core::FirstFitDecreasing ffd;
      from_assignment(ffd.allocate(items));
      break;
    }
    case PlacementSpec::Kind::kSea: {
      const auto items = core::normalize(*cat.catalog, model);
      core::SeaAllocator sea{placement.hot_load_share};
      from_assignment(sea.allocate(items));
      break;
    }
    case PlacementSpec::Kind::kRandom: {
      if (spec.disks > 0) {
        // The paper's Figures 2-4 baseline: spread over a fixed farm.
        // Normalize leniently (L=1): random knows nothing about load.
        core::LoadModel lenient = model;
        lenient.load_fraction = 1.0;
        const auto items = core::normalize(*cat.catalog, lenient);
        core::RandomAllocator rnd{spec.disks, spec.seed};
        from_assignment(rnd.allocate(items));
        entry.alloc_disks = spec.disks;
      } else {
        // §5.1's convention: random packs into the same number of disks as
        // Pack_Disks would use under the scenario's load model.
        const auto items = core::normalize(*cat.catalog, model);
        core::PackDisks pack;
        const auto farm = pack.allocate(items).disk_count;
        core::RandomAllocator rnd{farm, spec.seed};
        from_assignment(rnd.allocate(items));
        entry.alloc_disks = farm;
      }
      break;
    }
    case PlacementSpec::Kind::kMaid: {
      if (spec.disks <= placement.cache_disks) {
        throw std::invalid_argument{
            "ScenarioSpec: maid placement needs disks > cache disks "
            "(set disks=<total farm>)"};
      }
      const auto maid = core::build_maid(*cat.catalog, placement.cache_disks,
                                         spec.disks - placement.cache_disks,
                                         spec.params.capacity);
      entry.mapping = std::make_shared<const std::vector<std::uint32_t>>(
          maid.mapping);
      entry.alloc_disks = maid.total_disks;
      for (std::uint32_t d = 0; d < maid.cache_disks; ++d) {
        entry.policy_overrides.emplace_back(d, PolicySpec::never());
      }
      break;
    }
  }
  return mappings_.emplace(key, std::move(entry)).first->second;
}

ResolvedScenario ScenarioCache::resolve(const ScenarioSpec& spec) {
  // A trace-kind workload must agree with the catalog it replays against:
  // the dispatcher locates every record through the scenario catalog.
  if (spec.workload.kind == WorkloadSpec::Kind::kTrace) {
    if (spec.workload.trace_path.empty()) {
      throw std::invalid_argument{
          "ScenarioSpec: an injected in-memory trace cannot be resolved; "
          "use workload=replay with a nersc/trace catalog, or trace:<stem>"};
    }
    if (spec.catalog.kind != CatalogSpec::Kind::kTrace ||
        spec.catalog.path != spec.workload.trace_path) {
      throw std::invalid_argument{
          "ScenarioSpec: workload trace:" + spec.workload.trace_path +
          " must replay its own catalog (set catalog=trace:" +
          spec.workload.trace_path + " or use workload=replay)"};
    }
  }

  ResolvedScenario out;
  const auto& cat = catalog_for(spec);
  out.catalog = cat.catalog;
  out.trace = cat.trace;

  const bool replays = spec.workload.kind == WorkloadSpec::Kind::kReplay ||
                       spec.workload.kind == WorkloadSpec::Kind::kTrace;
  if (replays && cat.trace == nullptr) {
    throw std::invalid_argument{
        "ScenarioSpec: workload '" + spec.workload.spec() +
        "' needs a catalog that carries a trace (nersc(...) or "
        "trace:<stem>)"};
  }
  const double rate = std::max(
      1e-6, replays ? static_cast<double>(cat.trace->size()) /
                          std::max(1.0, cat.trace->duration())
                    : spec.workload.mean_rate());

  const auto& mapping = mapping_for(spec, cat, rate);

  ExperimentConfig cfg;
  cfg.label = spec.label;
  cfg.catalog = out.catalog.get();
  cfg.mapping = *mapping.mapping;
  cfg.num_disks = mapping.alloc_disks;
  if (spec.placement.kind != PlacementSpec::Kind::kRandom &&
      spec.placement.kind != PlacementSpec::Kind::kMaid) {
    cfg.num_disks = std::max(cfg.num_disks, spec.disks);
  }
  cfg.params = spec.params;
  cfg.policy = spec.policy;
  cfg.scheduler = spec.scheduler;
  cfg.policy_overrides = mapping.policy_overrides;
  cfg.cache = spec.cache;
  cfg.workload = replays ? WorkloadSpec::replay(*cat.trace) : spec.workload;
  cfg.seed = spec.seed;
  cfg.shards = spec.shards;
  cfg.obs = spec.obs;
  // The base placement resolved to the static mapping vector above (replica
  // 0); k > 1 makes routing per-request — replica-aware redirection picks a
  // copy at arrival time — so the run must take the fleet router.
  cfg.dynamic_routing = !spec.placement.static_mapping();
  cfg.replicas = spec.placement.replicas;
  cfg.orch = spec.orch;
  // The off-load tier appends its always-on log disks after the data
  // disks; they hold no catalog files, only deferred writes in flight.
  if (spec.orch.offload) cfg.num_disks += spec.orch.log_disks;
  out.config = std::move(cfg);
  return out;
}

ResolvedScenario resolve_scenario(const ScenarioSpec& spec) {
  ScenarioCache cache;
  return cache.resolve(spec);
}

RunResult run_scenario(const ScenarioSpec& spec) {
  const auto resolved = resolve_scenario(spec);
  return run_experiment(resolved.config);
}

RunResult run_scenario(const ScenarioSpec& spec, obs::RunTrace* trace,
                       FleetPerf* perf) {
  const auto resolved = resolve_scenario(spec);
  return run_experiment(resolved.config, trace, perf);
}

std::vector<RunResult> run_scenarios(std::span<const ScenarioSpec> specs,
                                     unsigned max_threads) {
  ScenarioCache cache;
  std::vector<ResolvedScenario> resolved;
  resolved.reserve(specs.size());
  std::vector<ExperimentConfig> configs;
  configs.reserve(specs.size());
  for (const auto& spec : specs) {
    resolved.push_back(cache.resolve(spec));
    configs.push_back(resolved.back().config);
  }
  return run_sweep(configs, max_threads);
}

// ------------------------------------------------------------------ json

std::string to_json(const RunResult& r) {
  const auto num = [](double v) { return util::format_roundtrip(v); };
  std::string out = "{";
  out += "\"disks\": " + std::to_string(r.per_disk.size());
  out += ", \"requests\": " + std::to_string(r.requests);
  out += ", \"events\": " + std::to_string(r.events);
  out += ", \"horizon_s\": " + num(r.power.horizon_s);
  out += ", \"energy_j\": " + num(r.power.energy);
  out += ", \"avg_power_w\": " + num(r.power.average_power);
  out += ", \"always_on_energy_j\": " + num(r.power.always_on_energy);
  out += ", \"power_saving\": " + num(r.power.saving_vs_always_on);
  out += ", \"spin_ups\": " + std::to_string(r.power.spin_ups);
  out += ", \"spin_downs\": " + std::to_string(r.power.spin_downs);
  out += ", \"resp_mean_s\": " + num(r.response.mean());
  out += ", \"resp_p50_s\": " + num(r.response.p50());
  out += ", \"resp_p95_s\": " + num(r.response.p95());
  out += ", \"resp_p99_s\": " + num(r.response.p99());
  out += ", \"resp_max_s\": " + num(r.response.max());
  out += ", \"cache_hits\": " + std::to_string(r.cache.hits);
  out += ", \"cache_misses\": " + std::to_string(r.cache.misses);
  out += ", \"completed_at_horizon\": " +
         std::to_string(r.completed_at_horizon);
  out += ", \"in_flight_at_horizon\": " +
         std::to_string(r.in_flight_at_horizon);
  // Farm-wide idle-period structure: the per-disk LogHistograms merged
  // bin-wise (order-independent), summarized the same way at any shard
  // count.  The signal the spin-down economics turn on.
  stats::LogHistogram idle{disk::DiskMetrics::kIdleHistLo,
                           disk::DiskMetrics::kIdleHistHi,
                           disk::DiskMetrics::kIdleHistBins};
  for (const auto& d : r.per_disk) idle.merge(d.idle_periods);
  out += ", \"idle_periods\": {\"count\": " + std::to_string(idle.binned());
  out += ", \"mean_s\": " + num(idle.mean());
  out += ", \"p50_s\": " + num(idle.percentile(50.0));
  out += ", \"p99_s\": " + num(idle.percentile(99.0));
  out += "}";
  out += "}";
  return out;
}

std::string to_json(const FleetPerf& perf) {
  const auto num = [](double v) { return util::format_roundtrip(v); };
  std::string out = "{";
  out += "\"path\": \"";
  out += perf.path == FleetPath::kShardLocal ? "shard-local" : "routed";
  out += "\"";
  out += ", \"shards\": " + std::to_string(perf.shards);
  out += ", \"workers\": " + std::to_string(perf.workers);
  out += ", \"router_busy_s\": " + num(perf.router_busy_s);
  out += ", \"router_stall_s\": " + num(perf.router_stall_s);
  out += ", \"worker_busy_s\": [";
  for (std::size_t w = 0; w < perf.worker_busy_s.size(); ++w) {
    if (w != 0) out += ", ";
    out += num(perf.worker_busy_s[w]);
  }
  out += "], \"worker_wait_s\": [";
  for (std::size_t w = 0; w < perf.worker_wait_s.size(); ++w) {
    if (w != 0) out += ", ";
    out += num(perf.worker_wait_s[w]);
  }
  out += "], \"per_shard\": [";
  for (std::size_t s = 0; s < perf.per_shard.size(); ++s) {
    const auto& row = perf.per_shard[s];
    if (s != 0) out += ", ";
    out += "{\"shard\": " + std::to_string(row.shard);
    out += ", \"submissions\": " + std::to_string(row.submissions);
    out += ", \"batches\": " + std::to_string(row.batches);
    out += ", \"events\": " + std::to_string(row.events);
    out += ", \"ring_high_water\": " + std::to_string(row.ring_high_water);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string to_json(const ScenarioSpec& spec, const RunResult& r) {
  std::string out = "{\"scenario\": \"" + json_escape(spec.spec()) + "\", ";
  const std::string body = to_json(r);
  out += body.substr(1); // splice the metric fields into the same object
  return out;
}

} // namespace spindown::sys
