#include "sys/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace spindown::sys {

std::vector<RunResult> run_sweep(std::span<const ExperimentConfig> configs,
                                 unsigned max_threads) {
  std::vector<RunResult> results(configs.size());
  if (configs.empty()) return results;

  unsigned n_threads = max_threads != 0 ? max_threads
                                        : std::thread::hardware_concurrency();
  if (n_threads == 0) n_threads = 1;
  n_threads = std::min<unsigned>(n_threads,
                                 static_cast<unsigned>(configs.size()));

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  {
    std::vector<std::jthread> workers;
    workers.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= configs.size()) return;
          try {
            results[i] = run_experiment(configs[i]);
          } catch (...) {
            const std::scoped_lock lock{error_mutex};
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      });
    }
  } // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

} // namespace spindown::sys
