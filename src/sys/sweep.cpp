#include "sys/sweep.h"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace spindown::sys {

std::vector<RunResult> run_sweep(std::span<const ExperimentConfig> configs,
                                 unsigned max_threads) {
  std::vector<RunResult> results(configs.size());
  if (configs.empty()) return results;

  unsigned n_threads = max_threads != 0 ? max_threads
                                        : std::thread::hardware_concurrency();
  if (n_threads == 0) n_threads = 1;
  n_threads = std::min<unsigned>(n_threads,
                                 static_cast<unsigned>(configs.size()));

  std::atomic<std::size_t> next{0};
  // When workers throw, the error rethrown to the caller must not depend on
  // scheduling: every config is still attempted (a failing worker moves on
  // to its next index instead of bailing out), and the exception kept is
  // the one from the lowest sweep index.
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::mutex error_mutex;

  {
    std::vector<std::jthread> workers;
    workers.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= configs.size()) return;
          try {
            results[i] = run_experiment(configs[i]);
          } catch (...) {
            const std::scoped_lock lock{error_mutex};
            if (i < first_error_index) {
              first_error_index = i;
              first_error = std::current_exception();
            }
          }
        }
      });
    }
  } // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

} // namespace spindown::sys
