#include "core/maid.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace spindown::core {

MaidPlacement build_maid(const workload::FileCatalog& catalog,
                         std::uint32_t cache_disks, std::uint32_t data_disks,
                         util::Bytes disk_capacity) {
  if (data_disks == 0) {
    throw std::invalid_argument{"build_maid: need at least one data disk"};
  }
  MaidPlacement out;
  out.cache_disks = cache_disks;
  out.total_disks = cache_disks + data_disks;
  out.mapping.assign(catalog.size(), 0);

  // Home placement on the data disks: sequential first-fit in id order
  // (MAID keeps data where it landed; no popularity-aware reorganization).
  {
    std::vector<util::Bytes> used(data_disks, 0);
    std::uint32_t cursor = 0;
    for (const auto& f : catalog.files()) {
      std::uint32_t tries = 0;
      while (tries < data_disks &&
             used[(cursor + tries) % data_disks] + f.size > disk_capacity) {
        ++tries;
      }
      if (tries == data_disks) {
        throw std::invalid_argument{
            "build_maid: catalog does not fit on the data disks"};
      }
      cursor = (cursor + tries) % data_disks;
      used[cursor] += f.size;
      out.mapping[f.id] = cache_disks + cursor;
    }
  }

  // Cache fill: hottest first, round-robin over cache disks by free space.
  if (cache_disks > 0) {
    std::vector<workload::FileId> by_popularity(catalog.size());
    std::iota(by_popularity.begin(), by_popularity.end(), 0u);
    std::stable_sort(by_popularity.begin(), by_popularity.end(),
                     [&](workload::FileId a, workload::FileId b) {
                       return catalog.by_id(a).popularity >
                              catalog.by_id(b).popularity;
                     });
    std::vector<util::Bytes> used(cache_disks, 0);
    for (const auto id : by_popularity) {
      const auto& f = catalog.by_id(id);
      // Emptiest cache disk; stop caching once the hottest pending file no
      // longer fits anywhere (popularity beyond it is even smaller: still
      // try, smaller files may fit — classic greedy knapsack by density
      // would differ; MAID's published policy is popularity-ordered).
      const auto d = static_cast<std::uint32_t>(std::distance(
          used.begin(), std::min_element(used.begin(), used.end())));
      if (used[d] + f.size > disk_capacity) continue;
      used[d] += f.size;
      out.mapping[id] = d;
      out.cached_files.push_back(id);
      out.cached_popularity += f.popularity;
    }
  }
  return out;
}

} // namespace spindown::core
