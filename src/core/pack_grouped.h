// pack_grouped.h — Pack_Disks_v, the group round-robin variant (§3.2).
//
// Pack_Disks tends to place many same-size files on the same disk.  When a
// user requests a batch of similar-size files at once (observed in the real
// NERSC log), those requests all queue on one disk and response time
// explodes.  Pack_Disks_v counters this by packing a *group* of v disks at a
// time, distributing consecutive items over the group's disks round-robin,
// so a batch of similar files lands on v different spindles.
//
// The paper specifies the idea but not the low-level details; this
// implementation makes the following (documented) choices, which reduce to
// Pack_Disks exactly when v = 1:
//   * a group of v open disks is packed concurrently; a rotating cursor
//     selects the next disk, skipping disks that have been closed;
//   * each selected disk applies the ordinary Pack_Disks step: draw from the
//     heap opposite to its dominant dimension, evict-and-close on overflow,
//     close when complete;
//   * when every disk in the group is closed, a fresh group of v opens;
//   * the Pack_Remaining phase also proceeds round-robin: an item that does
//     not fit the cursor disk closes it and moves on; when no open disk can
//     take the item, a fresh group is opened.
#pragma once

#include <cstddef>

#include "core/allocator.h"

namespace spindown::core {

class PackDisksGrouped final : public Allocator {
public:
  /// v >= 1: number of disks packed concurrently; v = 1 is Pack_Disks.
  explicit PackDisksGrouped(std::size_t group_size);

  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override;

  std::size_t group_size() const { return v_; }

private:
  std::size_t v_;
};

} // namespace spindown::core
