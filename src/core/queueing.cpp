#include "core/queueing.h"

#include <limits>
#include <stdexcept>

namespace spindown::core {

FarmQueueing predict_mg1(const workload::FileCatalog& catalog,
                         const Assignment& assignment,
                         const LoadModel& model) {
  if (assignment.disk_of.size() < catalog.size()) {
    throw std::invalid_argument{"predict_mg1: assignment smaller than catalog"};
  }
  FarmQueueing out;
  out.disks.assign(assignment.disk_count, DiskQueueing{});

  // First and second moments of the per-disk service mixture:
  //   lambda_d = R * sum(p_i),   E[S^k] = sum(p_i * mu_i^k) / sum(p_i).
  std::vector<double> p_sum(assignment.disk_count, 0.0);
  std::vector<double> s1(assignment.disk_count, 0.0);
  std::vector<double> s2(assignment.disk_count, 0.0);
  for (const auto& f : catalog.files()) {
    const auto d = assignment.disk_of[f.id];
    if (d >= assignment.disk_count) {
      throw std::invalid_argument{"predict_mg1: mapping references bad disk"};
    }
    const double mu = model.mu(f.size);
    p_sum[d] += f.popularity;
    s1[d] += f.popularity * mu;
    s2[d] += f.popularity * mu * mu;
  }

  double weighted_response = 0.0;
  double total_p = 0.0;
  for (std::uint32_t d = 0; d < assignment.disk_count; ++d) {
    auto& q = out.disks[d];
    if (p_sum[d] <= 0.0) continue; // stores data, sees no traffic
    q.arrival_rate = model.rate * p_sum[d];
    q.mean_service = s1[d] / p_sum[d];
    const double es2 = s2[d] / p_sum[d];
    q.utilization = q.arrival_rate * q.mean_service;
    out.max_utilization = std::max(out.max_utilization, q.utilization);
    if (q.utilization >= 1.0) {
      q.stable = false;
      q.mean_wait = std::numeric_limits<double>::infinity();
      q.mean_response = std::numeric_limits<double>::infinity();
      out.stable = false;
    } else {
      q.mean_wait = q.arrival_rate * es2 / (2.0 * (1.0 - q.utilization));
      q.mean_response = q.mean_wait + q.mean_service;
    }
    weighted_response += p_sum[d] * q.mean_response;
    total_p += p_sum[d];
  }
  out.mean_response =
      total_p > 0.0 ? weighted_response / total_p
                    : 0.0; // no traffic anywhere
  return out;
}

} // namespace spindown::core
