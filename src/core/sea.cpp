#include "core/sea.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace spindown::core {

SeaAllocator::SeaAllocator(double hot_load_share)
    : hot_load_share_(hot_load_share) {
  if (hot_load_share <= 0.0 || hot_load_share > 1.0) {
    throw std::invalid_argument{
        "SeaAllocator: hot_load_share must be in (0,1]"};
  }
}

std::string SeaAllocator::name() const {
  return "sea_striping";
}

Assignment SeaAllocator::allocate(std::span<const Item> items) {
  validate_instance(items);
  Assignment out;
  out.disk_of.assign(items.size(), 0);
  hot_disks_ = 0;
  if (items.empty()) return out;

  // Rank by load, hottest first (ties toward the smaller index).
  std::vector<std::uint32_t> order(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (items[a].l != items[b].l) {
                       return items[a].l > items[b].l;
                     }
                     return a < b;
                   });

  double total_load = 0.0;
  for (const auto& it : items) total_load += it.l;

  // Hot prefix: smallest set of hottest files carrying hot_load_share.
  std::size_t hot_count = 0;
  double hot_s = 0.0, hot_l = 0.0;
  for (; hot_count < order.size(); ++hot_count) {
    if (total_load > 0.0 && hot_l >= hot_load_share_ * total_load) break;
    hot_s += items[order[hot_count]].s;
    hot_l += items[order[hot_count]].l;
  }
  if (total_load <= 0.0) hot_count = 0; // no traffic: everything is cold

  // Hot zone size: enough disks for both dimensions of the hot set.
  auto zone_size = [](double s_sum, double l_sum) {
    return static_cast<std::uint32_t>(
        std::max(1.0, std::ceil(std::max(s_sum, l_sum))));
  };

  struct Zone {
    std::vector<double> s;
    std::vector<double> l;
    void grow() {
      s.push_back(0.0);
      l.push_back(0.0);
    }
    std::size_t size() const { return s.size(); }
    bool fits(std::size_t d, const Item& it) const {
      return s[d] + it.s <= 1.0 && l[d] + it.l <= 1.0;
    }
    void add(std::size_t d, const Item& it) {
      s[d] += it.s;
      l[d] += it.l;
    }
  };

  // Stripe the hot set round-robin; a disk that cannot take the file passes
  // it to the next (growing the zone when a full cycle fails).
  Zone hot;
  if (hot_count > 0) {
    for (std::uint32_t d = 0; d < zone_size(hot_s, hot_l); ++d) hot.grow();
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < hot_count; ++i) {
      const Item& it = items[order[i]];
      bool placed = false;
      for (std::size_t attempt = 0; attempt < hot.size(); ++attempt) {
        const std::size_t d = (cursor + attempt) % hot.size();
        if (hot.fits(d, it)) {
          hot.add(d, it);
          out.disk_of[it.index] = static_cast<std::uint32_t>(d);
          cursor = d + 1;
          placed = true;
          break;
        }
      }
      if (!placed) {
        hot.grow();
        const std::size_t d = hot.size() - 1;
        hot.add(d, it);
        out.disk_of[it.index] = static_cast<std::uint32_t>(d);
        cursor = 0;
      }
    }
  }
  hot_disks_ = static_cast<std::uint32_t>(hot.size());
  if (hot_count == 0) hot_disks_ = 0;

  // Cold zone: first-fit by both dimensions (loads are tiny by selection).
  Zone cold;
  for (std::size_t i = hot_count; i < order.size(); ++i) {
    const Item& it = items[order[i]];
    bool placed = false;
    for (std::size_t d = 0; d < cold.size(); ++d) {
      if (cold.fits(d, it)) {
        cold.add(d, it);
        out.disk_of[it.index] =
            hot_disks_ + static_cast<std::uint32_t>(d);
        placed = true;
        break;
      }
    }
    if (!placed) {
      cold.grow();
      cold.add(cold.size() - 1, it);
      out.disk_of[it.index] =
          hot_disks_ + static_cast<std::uint32_t>(cold.size() - 1);
    }
  }
  out.disk_count = hot_disks_ + static_cast<std::uint32_t>(cold.size());
  return out;
}

} // namespace spindown::core
