#include "core/pack_segregated.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/pack_disks.h"

namespace spindown::core {

SegregatedPackDisks::SegregatedPackDisks(std::size_t classes)
    : classes_(classes) {
  if (classes == 0) {
    throw std::invalid_argument{"SegregatedPackDisks: need >= 1 class"};
  }
}

std::string SegregatedPackDisks::name() const {
  return "segregated_pack_disks_" + std::to_string(classes_);
}

Assignment SegregatedPackDisks::allocate(std::span<const Item> items) {
  validate_instance(items);
  Assignment out;
  out.disk_of.assign(items.size(), 0);
  if (items.empty()) return out;

  // Quantile boundaries over the s coordinate (stable order for ties).
  std::vector<std::uint32_t> order(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (items[a].s != items[b].s) {
                       return items[a].s < items[b].s;
                     }
                     return items[a].index < items[b].index;
                   });

  const std::size_t k = std::min(classes_, items.size());
  PackDisks pack;
  std::uint32_t next_disk = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t lo = c * items.size() / k;
    const std::size_t hi = (c + 1) * items.size() / k;
    if (lo == hi) continue;
    // Re-index the class so Pack_Disks sees a dense instance, then map the
    // class-local assignment back through the class member list.
    std::vector<Item> class_items;
    class_items.reserve(hi - lo);
    for (std::size_t j = lo; j < hi; ++j) {
      Item it = items[order[j]];
      it.index = static_cast<std::uint32_t>(class_items.size());
      class_items.push_back(it);
    }
    const auto class_assignment = pack.allocate(class_items);
    for (std::size_t j = lo; j < hi; ++j) {
      out.disk_of[items[order[j]].index] =
          next_disk + class_assignment.disk_of[j - lo];
    }
    next_disk += class_assignment.disk_count;
  }
  out.disk_count = next_disk;
  return out;
}

} // namespace spindown::core
