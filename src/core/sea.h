// sea.h — SEA-inspired striping baseline (Xie [17], §2 related work).
//
// SEA ("striping-based energy-aware" placement) divides a RAID farm into a
// hot zone and a cold zone and stripes popular data across the hot zone so
// a few always-busy disks absorb most traffic while the cold zone sleeps.
// The paper's workload generator follows SEA's request patterns (§4), which
// makes it the natural second baseline next to random placement.
//
// This is a file-granular adaptation (our simulator serves whole files, not
// blocks):
//   * items are ranked by load; the smallest prefix carrying
//     `hot_load_share` of the total load forms the hot set;
//   * hot files are striped round-robin across a hot zone sized to carry
//     them (by both size and load), spreading consecutive hot files over
//     different spindles — SEA's bandwidth idea at file granularity;
//   * cold files are first-fit packed (by size) onto the cold zone, which
//     is expected to spend most time in standby.
//
// Differences from the published SEA (block striping inside RAID groups,
// redundancy) are documented here and in DESIGN.md; the preserved essence
// is the hot/cold zoning + striping of the hot set.
#pragma once

#include "core/allocator.h"

namespace spindown::core {

class SeaAllocator final : public Allocator {
public:
  /// `hot_load_share` in (0, 1]: fraction of the total load the hot zone
  /// must absorb (0.8 is SEA's spirit: most traffic on few disks).
  explicit SeaAllocator(double hot_load_share = 0.8);

  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override;

  /// After allocate(): disks [0, hot_disks) form the hot zone.
  std::uint32_t hot_disks() const { return hot_disks_; }

private:
  double hot_load_share_;
  std::uint32_t hot_disks_ = 0;
};

} // namespace spindown::core
