#include "core/bounds.h"

#include <cmath>
#include <limits>

namespace spindown::core {

BoundReport bound_report(std::span<const Item> items) {
  BoundReport r;
  const auto totals = sums(items);
  r.total_s = totals.total_s;
  r.total_l = totals.total_l;
  r.rho = rho(items);
  const double lb = std::max(r.total_s, r.total_l);
  r.lower_bound = static_cast<std::uint32_t>(std::ceil(lb - 1e-9));
  r.guarantee = r.rho >= 1.0 ? std::numeric_limits<double>::infinity()
                             : 1.0 + lb / (1.0 - r.rho);
  return r;
}

bool within_guarantee(const BoundReport& report, std::uint32_t disks) {
  // +1e-9: the guarantee is a real-valued ceiling on an integer count.
  return static_cast<double>(disks) <= report.guarantee + 1e-9;
}

} // namespace spindown::core
