// reorganizer.h — semi-dynamic reallocation (§1: "accumulating access
// statistics over periodic intervals and performing reorganization of file
// allocations"; §6 lists migration as future work).
//
// The Reorganizer consumes a window of observed per-file access counts,
// re-estimates popularities and the request rate, re-packs with Pack_Disks,
// and then relabels the new disks to maximize byte overlap with the current
// placement (greedy maximum-weight matching) so that the migration moves as
// few bytes as possible.  The output is a migration plan: the relabeled
// assignment plus the list of files that must move and their total size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/item.h"
#include "core/normalize.h"
#include "workload/catalog.h"

namespace spindown::core {

struct MigrationPlan {
  Assignment next;                     ///< relabeled to overlap the old map
  std::vector<std::uint32_t> moved;    ///< file ids that change disks
  util::Bytes bytes_moved = 0;
  std::uint32_t disks_before = 0;
  std::uint32_t disks_after = 0;
  double estimated_rate = 0.0;         ///< observed requests/second
};

class Reorganizer {
public:
  /// The model's `rate` field is ignored: the observed rate of each window
  /// is used instead.
  explicit Reorganizer(LoadModel model);

  /// Plan a reorganization.  `observed_counts[i]` is the number of accesses
  /// of file i during the window of `window_s` seconds; `current` is the
  /// live placement (disk_of indexed by file id).  Files with zero observed
  /// accesses receive a popularity floor (half the smallest observed
  /// probability) so they remain packable.
  MigrationPlan plan(const workload::FileCatalog& catalog,
                     std::span<const std::uint64_t> observed_counts,
                     double window_s, const Assignment& current);

private:
  LoadModel model_;
};

/// Relabel `next`'s disks to maximize the total byte-overlap with `current`
/// (greedy on pairwise overlap weight).  Exposed for testing.
Assignment relabel_for_overlap(const Assignment& current,
                               const Assignment& next,
                               const workload::FileCatalog& catalog);

} // namespace spindown::core
