// pack_segregated.h — size-class-segregated packing (§6 future work).
//
// The paper's conclusions: "we noted that large files that introduce long
// response time delays, residing on the same disk with small and frequently
// accessed files lead to the formation of long queues of requests for the
// latter files ... further improvements to the response time can be made by
// restricting the types of files that are allocated to the same disk."
//
// SegregatedPackDisks implements that restriction: items are partitioned
// into k size classes (equal-population quantiles of the s coordinate) and
// each class is packed with Pack_Disks independently, so a 20 GB archive
// never shares a spindle — and a queue — with a 188 MB hot file.  The cost
// is a few extra disks (each class pays its own "last partial disk"), i.e.
// slightly less power saving; bench_future_work quantifies both sides.
#pragma once

#include <cstddef>

#include "core/allocator.h"

namespace spindown::core {

class SegregatedPackDisks final : public Allocator {
public:
  /// k >= 1 size classes; k = 1 is exactly Pack_Disks.
  explicit SegregatedPackDisks(std::size_t classes);

  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override;

  std::size_t classes() const { return classes_; }

private:
  std::size_t classes_;
};

} // namespace spindown::core
