#include "core/reorganizer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "core/pack_disks.h"

namespace spindown::core {

Reorganizer::Reorganizer(LoadModel model) : model_(std::move(model)) {}

Assignment relabel_for_overlap(const Assignment& current,
                               const Assignment& next,
                               const workload::FileCatalog& catalog) {
  // Overlap weight in bytes between each (new disk, old disk) pair.
  std::map<std::pair<std::uint32_t, std::uint32_t>, util::Bytes> overlap;
  for (const auto& f : catalog.files()) {
    if (f.id >= next.disk_of.size() || f.id >= current.disk_of.size()) continue;
    overlap[{next.disk_of[f.id], current.disk_of[f.id]}] += f.size;
  }

  // Greedy maximum-weight matching: repeatedly bind the heaviest remaining
  // (new, old) pair.  Near-optimal here because overlaps are dominated by
  // the "disk did not change" diagonal.
  std::vector<std::tuple<util::Bytes, std::uint32_t, std::uint32_t>> edges;
  edges.reserve(overlap.size());
  for (const auto& [key, bytes] : overlap) {
    edges.emplace_back(bytes, key.first, key.second);
  }
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) {
      return std::get<0>(a) > std::get<0>(b);
    }
    if (std::get<1>(a) != std::get<1>(b)) {
      return std::get<1>(a) < std::get<1>(b);
    }
    return std::get<2>(a) < std::get<2>(b);
  });

  constexpr auto kUnset = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> label_of_new(next.disk_count, kUnset);
  std::vector<bool> old_taken(
      std::max<std::size_t>(current.disk_count, next.disk_count), false);
  for (const auto& [bytes, nd, od] : edges) {
    if (label_of_new[nd] != kUnset || od >= old_taken.size() || old_taken[od]) {
      continue;
    }
    label_of_new[nd] = od;
    old_taken[od] = true;
  }
  // Unmatched new disks get the lowest free labels.
  std::uint32_t cursor = 0;
  for (auto& label : label_of_new) {
    if (label != kUnset) continue;
    while (cursor < old_taken.size() && old_taken[cursor]) ++cursor;
    if (cursor < old_taken.size()) {
      label = cursor;
      old_taken[cursor] = true;
    } else {
      label = static_cast<std::uint32_t>(old_taken.size());
      old_taken.push_back(true);
    }
  }

  Assignment relabeled;
  relabeled.disk_of.resize(next.disk_of.size());
  std::uint32_t max_label = 0;
  for (std::size_t i = 0; i < next.disk_of.size(); ++i) {
    relabeled.disk_of[i] = label_of_new[next.disk_of[i]];
    max_label = std::max(max_label, relabeled.disk_of[i]);
  }
  relabeled.disk_count = next.disk_of.empty() ? 0 : max_label + 1;
  return relabeled;
}

MigrationPlan Reorganizer::plan(const workload::FileCatalog& catalog,
                                std::span<const std::uint64_t> observed_counts,
                                double window_s, const Assignment& current) {
  if (observed_counts.size() != catalog.size()) {
    throw std::invalid_argument{"Reorganizer: counts/catalog size mismatch"};
  }
  if (window_s <= 0.0) {
    throw std::invalid_argument{"Reorganizer: window must be positive"};
  }

  std::uint64_t total = 0;
  std::uint64_t min_nonzero = std::numeric_limits<std::uint64_t>::max();
  for (const auto c : observed_counts) {
    total += c;
    if (c > 0) min_nonzero = std::min(min_nonzero, c);
  }
  if (total == 0) {
    throw std::invalid_argument{"Reorganizer: window saw no accesses"};
  }

  // Popularity floor for cold files: half the smallest observed mass.
  const double floor_mass = 0.5 * static_cast<double>(min_nonzero);
  std::vector<workload::FileInfo> files = catalog.files();
  double mass_sum = 0.0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const double mass = observed_counts[i] > 0
                            ? static_cast<double>(observed_counts[i])
                            : floor_mass;
    files[i].popularity = mass;
    mass_sum += mass;
  }
  for (auto& f : files) f.popularity /= mass_sum;

  LoadModel model = model_;
  model.rate = static_cast<double>(total) / window_s;

  // Sampling noise can over-estimate a large file's popularity enough that
  // its implied load exceeds one disk's service capacity, which no
  // allocation can satisfy (the paper assumes every item fits, rho < 1).
  // Clamp such estimates to 95% of a disk's capacity; a file persistently
  // hitting the clamp needs replication, which is outside the paper's
  // model.  The clamp only ever lowers load, so feasibility is preserved.
  for (auto& f : files) {
    const double mu = model.mu(f.size);
    if (mu <= 0.0) continue;
    const double cap = 0.95 * model.load_fraction / (model.rate * mu);
    if (f.popularity > cap) f.popularity = cap;
  }
  const workload::FileCatalog observed_catalog{std::move(files)};

  const auto items = normalize(observed_catalog, model);
  PackDisks packer;
  const auto fresh = packer.allocate(items);

  MigrationPlan out;
  out.disks_before = current.disk_count;
  out.disks_after = fresh.disk_count;
  out.estimated_rate = model.rate;
  out.next = relabel_for_overlap(current, fresh, catalog);
  for (const auto& f : catalog.files()) {
    if (f.id < current.disk_of.size() &&
        out.next.disk_of[f.id] != current.disk_of[f.id]) {
      out.moved.push_back(f.id);
      out.bytes_moved += f.size;
    }
  }
  return out;
}

} // namespace spindown::core
