#include "core/write_policy.h"

#include <stdexcept>

namespace spindown::core {

WritePlacer::WritePlacer(std::uint32_t num_disks, util::Bytes disk_capacity,
                         FitRule rule)
    : capacity_(disk_capacity), used_(num_disks, 0), rule_(rule) {
  if (num_disks == 0) {
    throw std::invalid_argument{"WritePlacer: need at least one disk"};
  }
}

void WritePlacer::add_used(std::uint32_t disk, util::Bytes bytes) {
  used_.at(disk) += bytes;
  if (used_[disk] > capacity_) {
    throw std::invalid_argument{"WritePlacer: disk over capacity"};
  }
}

void WritePlacer::release(std::uint32_t disk, util::Bytes bytes) {
  auto& used = used_.at(disk);
  used = bytes > used ? 0 : used - bytes;
}

util::Bytes WritePlacer::free_on(std::uint32_t disk) const {
  return capacity_ - used_.at(disk);
}

std::optional<std::uint32_t> WritePlacer::pick(
    util::Bytes size, const std::vector<bool>& spinning,
    bool want_spinning) const {
  std::optional<std::uint32_t> best;
  util::Bytes best_slack = 0;
  for (std::uint32_t d = 0; d < used_.size(); ++d) {
    const bool is_spinning = d < spinning.size() && spinning[d];
    if (is_spinning != want_spinning) continue;
    if (used_[d] + size > capacity_) continue;
    if (rule_ == FitRule::kFirstFit) return d;
    const util::Bytes slack = capacity_ - used_[d] - size;
    if (!best.has_value() || slack < best_slack) {
      best = d;
      best_slack = slack;
    }
  }
  return best;
}

std::optional<std::uint32_t> WritePlacer::place(
    util::Bytes size, const std::vector<bool>& spinning) {
  auto target = pick(size, spinning, /*want_spinning=*/true);
  if (!target.has_value()) {
    target = pick(size, spinning, /*want_spinning=*/false);
  }
  if (target.has_value()) used_[*target] += size;
  return target;
}

} // namespace spindown::core
