#include "core/pack_grouped.h"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "util/binary_heap.h"

namespace spindown::core {

namespace {

struct HeapElem {
  double key;
  std::uint32_t index;
};
struct LowerPriority {
  bool operator()(const HeapElem& a, const HeapElem& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.index > b.index;
  }
};
using Heap = util::BinaryHeap<HeapElem, LowerPriority>;

struct OpenDisk {
  double S = 0.0;
  double L = 0.0;
  std::vector<std::uint32_t> s_list;
  std::vector<std::uint32_t> l_list;
  bool closed = false;

  bool empty() const { return s_list.empty() && l_list.empty(); }
  void add_s(const Item& it) {
    s_list.push_back(it.index);
    S += it.s;
    L += it.l;
  }
  void add_l(const Item& it) {
    l_list.push_back(it.index);
    S += it.s;
    L += it.l;
  }
};

class GroupPacker {
public:
  GroupPacker(std::span<const Item> items, std::size_t v)
      : items_(items), v_(v) {
    assignment_.disk_of.assign(items.size(), 0);
    rho_ = rho(items);
    std::vector<HeapElem> st, ld;
    for (const auto& it : items) {
      if (it.size_intensive()) {
        st.push_back(HeapElem{it.s_key(), it.index});
      } else {
        ld.push_back(HeapElem{it.l_key(), it.index});
      }
    }
    heap_s_ = Heap{std::move(st)};
    heap_l_ = Heap{std::move(ld)};
    open_group();
  }

  Assignment run() {
    main_loop();
    pack_remaining(heap_s_, /*size_side=*/true);
    pack_remaining(heap_l_, /*size_side=*/false);
    flush_group();
    return std::move(assignment_);
  }

private:
  void open_group() {
    group_.assign(v_, OpenDisk{});
    cursor_ = 0;
  }

  void seal(OpenDisk& d) {
    if (d.closed) return;
    d.closed = true;
    if (d.empty()) return; // an untouched disk costs nothing
    for (auto idx : d.s_list) assignment_.disk_of[idx] = assignment_.disk_count;
    for (auto idx : d.l_list) assignment_.disk_of[idx] = assignment_.disk_count;
    ++assignment_.disk_count;
  }

  void flush_group() {
    for (auto& d : group_) seal(d);
  }

  bool all_closed() const {
    for (const auto& d : group_) {
      if (!d.closed) return false;
    }
    return true;
  }

  /// Advance the cursor to the next open disk; opens a new group if none.
  OpenDisk& next_open_disk() {
    if (all_closed()) open_group();
    for (std::size_t step = 0; step < v_; ++step) {
      auto& d = group_[cursor_ % v_];
      ++cursor_;
      if (!d.closed) return d;
    }
    // all_closed() was false, so a scan of v disks must find one.
    throw std::logic_error{"PackDisksGrouped: cursor found no open disk"};
  }

  bool complete(const OpenDisk& d) const {
    const double threshold = 1.0 - rho_;
    return d.S >= threshold && d.L >= threshold;
  }

  /// One Pack_Disks step applied to disk d.  Returns false when the heap d
  /// wants to draw from is empty (main loop ends for this disk).
  bool step(OpenDisk& d) {
    if (d.S >= d.L) {
      if (heap_l_.empty()) return false;
      const auto e = heap_l_.pop();
      const Item& j = items_[e.index];
      if (d.S + j.s > 1.0) {
        assert(!d.s_list.empty());
        const auto k = d.s_list.back();
        d.s_list.pop_back();
        d.S -= items_[k].s;
        d.L -= items_[k].l;
        heap_s_.push(HeapElem{items_[k].s_key(), k});
        d.add_l(j);
        seal(d);
        return true;
      }
      d.add_l(j);
    } else {
      if (heap_s_.empty()) return false;
      const auto e = heap_s_.pop();
      const Item& j = items_[e.index];
      if (d.L + j.l > 1.0) {
        assert(!d.l_list.empty());
        const auto k = d.l_list.back();
        d.l_list.pop_back();
        d.S -= items_[k].s;
        d.L -= items_[k].l;
        heap_l_.push(HeapElem{items_[k].l_key(), k});
        d.add_s(j);
        seal(d);
        return true;
      }
      d.add_s(j);
    }
    if (complete(d)) seal(d);
    return true;
  }

  void main_loop() {
    // The loop ends when every open disk's preferred heap is empty; disks
    // whose step() fails are skipped (their leftovers are handled by
    // pack_remaining), and termination is guaranteed because each
    // successful step consumes one heap element or closes a disk.
    std::size_t stalled = 0;
    while (!(heap_s_.empty() && heap_l_.empty()) && stalled < v_) {
      auto& d = next_open_disk();
      if (step(d)) {
        stalled = 0;
      } else {
        ++stalled;
      }
    }
  }

  void pack_remaining(Heap& heap, bool size_side) {
    while (!heap.empty()) {
      const auto e = heap.pop();
      const Item& j = items_[e.index];
      // Try every open disk starting at the cursor; close disks the item
      // does not fit (Pack_Remaining's "start a new disk" in group form).
      bool placed = false;
      for (std::size_t attempt = 0; attempt < v_ && !placed; ++attempt) {
        auto& d = next_open_disk();
        const bool fits = size_side ? (d.S + j.s <= 1.0) : (d.L + j.l <= 1.0);
        const bool fits_other =
            size_side ? (d.L + j.l <= 1.0) : (d.S + j.s <= 1.0);
        if (fits && fits_other) {
          if (size_side) {
            d.add_s(j);
          } else {
            d.add_l(j);
          }
          placed = true;
        } else {
          seal(d);
        }
      }
      if (!placed) {
        // No open disk could take it: fresh group, first disk.
        flush_group();
        open_group();
        auto& d = next_open_disk();
        if (size_side) {
          d.add_s(j);
        } else {
          d.add_l(j);
        }
      }
    }
  }

  std::span<const Item> items_;
  std::size_t v_;
  double rho_ = 0.0;
  Heap heap_s_;
  Heap heap_l_;
  std::vector<OpenDisk> group_;
  std::size_t cursor_ = 0;
  Assignment assignment_;
};

} // namespace

PackDisksGrouped::PackDisksGrouped(std::size_t group_size) : v_(group_size) {
  if (group_size == 0) {
    throw std::invalid_argument{"PackDisksGrouped: group size must be >= 1"};
  }
}

std::string PackDisksGrouped::name() const {
  return "pack_disks_" + std::to_string(v_);
}

Assignment PackDisksGrouped::allocate(std::span<const Item> items) {
  validate_instance(items);
  if (items.empty()) return Assignment{};
  GroupPacker packer{items, v_};
  return packer.run();
}

} // namespace spindown::core
