#include "core/pack_disks.h"

#include <cassert>
#include <vector>

#include "util/binary_heap.h"

namespace spindown::core {

namespace {

/// Heap element: key is ~s or ~l; ties broken toward the smaller index so
/// the packing is deterministic.
struct HeapElem {
  double key;
  std::uint32_t index;
};
struct LowerPriority {
  bool operator()(const HeapElem& a, const HeapElem& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.index > b.index; // smaller index pops first among equal keys
  }
};
using Heap = util::BinaryHeap<HeapElem, LowerPriority>;

/// Mutable state of the disk currently being packed.
struct OpenDisk {
  double S = 0.0;
  double L = 0.0;
  std::vector<std::uint32_t> s_list; ///< members drawn from heap ~S, in order
  std::vector<std::uint32_t> l_list; ///< members drawn from heap ~L, in order

  bool empty() const { return s_list.empty() && l_list.empty(); }

  void add_s(const Item& it) {
    s_list.push_back(it.index);
    S += it.s;
    L += it.l;
  }
  void add_l(const Item& it) {
    l_list.push_back(it.index);
    S += it.s;
    L += it.l;
  }
};

class Packer {
public:
  explicit Packer(std::span<const Item> items) : items_(items) {
    assignment_.disk_of.assign(items.size(), 0);
    rho_ = rho(items);
    std::vector<HeapElem> st, ld;
    st.reserve(items.size());
    for (const auto& it : items) {
      if (it.size_intensive()) {
        st.push_back(HeapElem{it.s_key(), it.index});
      } else {
        ld.push_back(HeapElem{it.l_key(), it.index});
      }
    }
    heap_s_ = Heap{std::move(st)};
    heap_l_ = Heap{std::move(ld)};
  }

  Assignment run(std::uint64_t& evictions_out) {
    main_loop(evictions_out);
    pack_remaining_s();
    pack_remaining_l();
    if (!disk_.empty()) close_disk();
    return std::move(assignment_);
  }

private:
  bool complete() const {
    const double threshold = 1.0 - rho_;
    return disk_.S >= threshold && disk_.L >= threshold;
  }

  void close_disk() {
    for (auto idx : disk_.s_list) {
      assignment_.disk_of[idx] = assignment_.disk_count;
    }
    for (auto idx : disk_.l_list) {
      assignment_.disk_of[idx] = assignment_.disk_count;
    }
    ++assignment_.disk_count;
    disk_ = OpenDisk{};
  }

  void main_loop(std::uint64_t& evictions) {
    evictions = 0;
    while ((disk_.S >= disk_.L && !heap_l_.empty()) ||
           (disk_.S < disk_.L && !heap_s_.empty())) {
      if (disk_.S >= disk_.L) {
        // Disk dominated by size: draw the most load-intensive item.
        const auto e = heap_l_.pop();
        const Item& j = items_[e.index];
        if (disk_.S + j.s > 1.0) {
          // Overflow in the dominated dimension: evict the most recent
          // s-side member (O(1) via s-list; Lemma 1 guarantees it exists
          // and is big enough) and close — Lemma 3 proves completeness.
          assert(!disk_.s_list.empty());
          if (disk_.s_list.empty()) {
            // Defensive fallback (unreachable if the lemmas hold): close
            // the full disk and retry the item on a fresh one.
            close_disk();
            disk_.add_l(j);
            continue;
          }
          const auto k = disk_.s_list.back();
          disk_.s_list.pop_back();
          disk_.S -= items_[k].s;
          disk_.L -= items_[k].l;
          heap_s_.push(HeapElem{items_[k].s_key(), k});
          disk_.add_l(j);
          // Post-eviction fit is guaranteed by Lemma 1's key bound.
          assert(disk_.S <= 1.0 + 1e-12 && disk_.L <= 1.0 + 1e-12);
          ++evictions;
          close_disk(); // complete by Lemma 3
          continue;
        }
        disk_.add_l(j);
        // Load cannot overflow here: if it did, the disk would have been
        // complete before the insertion (see header discussion).
        assert(disk_.L <= 1.0 + 1e-12);
      } else {
        // Disk dominated by load: draw the most size-intensive item.
        const auto e = heap_s_.pop();
        const Item& j = items_[e.index];
        if (disk_.L + j.l > 1.0) {
          assert(!disk_.l_list.empty());
          if (disk_.l_list.empty()) {
            close_disk();
            disk_.add_s(j);
            continue;
          }
          const auto k = disk_.l_list.back();
          disk_.l_list.pop_back();
          disk_.S -= items_[k].s;
          disk_.L -= items_[k].l;
          heap_l_.push(HeapElem{items_[k].l_key(), k});
          disk_.add_s(j);
          assert(disk_.S <= 1.0 + 1e-12 && disk_.L <= 1.0 + 1e-12);
          ++evictions;
          close_disk(); // complete by Lemma 4
          continue;
        }
        disk_.add_s(j);
        assert(disk_.S <= 1.0 + 1e-12);
      }
      if (complete()) close_disk();
    }
  }

  void pack_remaining_s() {
    // Leftover items are all size-intensive; the current disk satisfies
    // S >= L (loop exit condition), so load can never overflow here —
    // asserted below.
    while (!heap_s_.empty()) {
      const auto e = heap_s_.pop();
      const Item& j = items_[e.index];
      if (disk_.S + j.s > 1.0) close_disk();
      disk_.add_s(j);
      assert(disk_.L <= disk_.S + 1e-12);
      assert(disk_.L <= 1.0 + 1e-12);
    }
  }

  void pack_remaining_l() {
    while (!heap_l_.empty()) {
      const auto e = heap_l_.pop();
      const Item& j = items_[e.index];
      if (disk_.L + j.l > 1.0) close_disk();
      disk_.add_l(j);
      assert(disk_.S <= disk_.L + 1e-12);
      assert(disk_.S <= 1.0 + 1e-12);
    }
  }

  std::span<const Item> items_;
  double rho_ = 0.0;
  Heap heap_s_;
  Heap heap_l_;
  OpenDisk disk_;
  Assignment assignment_;
};

} // namespace

Assignment PackDisks::allocate(std::span<const Item> items) {
  validate_instance(items);
  if (items.empty()) return Assignment{};
  Packer packer{items};
  return packer.run(evictions_);
}

} // namespace spindown::core
