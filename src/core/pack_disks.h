// pack_disks.h — the paper's core algorithm (§3.1, Algorithm 3).
//
// Pack_Disks is an O(n log n) approximation for two-dimensional vector
// packing with guarantee  C_PD <= C*/(1 - rho) + 1  (Theorem 1), where rho
// bounds every item coordinate.
//
// Mechanics, following the pseudocode:
//   * items are split into the size-intensive set ST (s >= l) keyed by
//     ~s = s - l, and the load-intensive set LD (l > s) keyed by ~l = l - s;
//     each set becomes a max-heap (O(n) build);
//   * the current disk balances itself: when its size total dominates
//     (S >= L) it draws the most load-intensive remaining item, and vice
//     versa;
//   * if the drawn item would overflow the dominating dimension, the last
//     element added from the *other* heap's side is evicted back to its heap
//     (an O(1) operation thanks to the per-disk s-list / l-list — the
//     paper's improvement over Chang–Hwang–Park's O(n) search), the item is
//     inserted, and the disk is provably complete (Lemmas 3/4) and closed;
//   * a disk is also closed as soon as it is "complete": both totals within
//     [1 - rho, 1];
//   * when one heap empties, Pack_Remaining packs the leftovers of the other
//     heap by its own dimension only (the other dimension provably cannot
//     overflow, asserted in the implementation).
//
// Ties between equal heap keys are broken toward the smaller item index so
// the packing is deterministic and bit-identical to the O(n^2) reference
// implementation (chang_reference.h), which the tests exploit.
#pragma once

#include "core/allocator.h"

namespace spindown::core {

class PackDisks final : public Allocator {
public:
  PackDisks() = default;

  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override { return "pack_disks"; }

  /// Number of evictions performed in the last allocate() call (each closes
  /// a disk; exposed for tests of Lemmas 3/4).
  std::uint64_t last_evictions() const { return evictions_; }

private:
  std::uint64_t evictions_ = 0;
};

} // namespace spindown::core
