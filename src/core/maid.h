// maid.h — a MAID-style baseline (Colarelli & Grunwald [4], §2 related work).
//
// MAID (Massive Array of Idle Disks) keeps a small set of always-spinning
// *cache disks* holding copies of the hottest data, while the bulk of the
// farm sleeps.  The paper positions Pack_Disks as complementary to MAID;
// this module implements the MAID placement so the two can be compared on
// identical workloads (bench_future_work):
//
//   * the hottest files, in popularity order, are replicated onto
//     `cache_disks` always-on disks until their space is exhausted
//     (round-robin by remaining capacity);
//   * every file also has a home on the data disks (filled sequentially,
//     first-fit in id order — MAID does not reorganize data);
//   * reads of cached files are served by their cache disk; everything else
//     goes to its data disk.
//
// The result plugs straight into StorageSystem: a mapping plus a per-disk
// policy vector (cache disks never spin down, data disks use the paper's
// break-even threshold).
#pragma once

#include <cstdint>
#include <vector>

#include "core/item.h"
#include "workload/catalog.h"

namespace spindown::core {

struct MaidPlacement {
  /// file id -> serving disk (cache disk for cached files, home otherwise).
  std::vector<std::uint32_t> mapping;
  std::uint32_t cache_disks = 0; ///< disks [0, cache_disks) are the cache
  std::uint32_t total_disks = 0;
  std::vector<workload::FileId> cached_files;
  /// Fraction of the request stream absorbed by the cache disks.
  double cached_popularity = 0.0;
};

/// Build a MAID placement.  `disk_capacity` bounds both cache and data
/// disks; throws if the data cannot fit on `data_disks`.
MaidPlacement build_maid(const workload::FileCatalog& catalog,
                         std::uint32_t cache_disks, std::uint32_t data_disks,
                         util::Bytes disk_capacity);

} // namespace spindown::core
