#include "core/chang_reference.h"

#include <cassert>
#include <vector>

namespace spindown::core {

namespace {

/// Unordered pool scanned linearly for its maximum-key element: the O(n)
/// stand-in for the max-heap.
class ScanPool {
public:
  void add(double key, std::uint32_t index) { elems_.push_back({key, index}); }

  bool empty() const { return elems_.empty(); }

  /// Remove and return the index of the max-key element (ties: smallest
  /// index), by linear scan.
  std::uint32_t pop_max() {
    assert(!elems_.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < elems_.size(); ++i) {
      if (elems_[i].key > elems_[best].key ||
          (elems_[i].key == elems_[best].key &&
           elems_[i].index < elems_[best].index)) {
        best = i;
      }
    }
    const auto idx = elems_[best].index;
    elems_.erase(elems_.begin() + static_cast<std::ptrdiff_t>(best));
    return idx;
  }

private:
  struct Elem {
    double key;
    std::uint32_t index;
  };
  std::vector<Elem> elems_;
};

struct Member {
  std::uint32_t index;
  bool from_s; ///< drawn from the size-intensive pool
};

} // namespace

Assignment ChangHwangPark::allocate(std::span<const Item> items) {
  validate_instance(items);
  Assignment out;
  out.disk_of.assign(items.size(), 0);
  if (items.empty()) return out;

  const double r = rho(items);
  const double threshold = 1.0 - r;

  ScanPool pool_s, pool_l;
  for (const auto& it : items) {
    if (it.size_intensive()) {
      pool_s.add(it.s_key(), it.index);
    } else {
      pool_l.add(it.l_key(), it.index);
    }
  }

  std::vector<Member> disk;

  // Totals recomputed from scratch on every query — the naive O(|Di|) cost
  // this reference exists to exhibit.
  auto S = [&] {
    double acc = 0.0;
    for (const auto& m : disk) acc += items[m.index].s;
    return acc;
  };
  auto L = [&] {
    double acc = 0.0;
    for (const auto& m : disk) acc += items[m.index].l;
    return acc;
  };

  auto close_disk = [&] {
    for (const auto& m : disk) out.disk_of[m.index] = out.disk_count;
    ++out.disk_count;
    disk.clear();
  };

  // Linear search from the back for the most recently added member of the
  // given origin; remove and return its index.
  auto evict_last_of = [&](bool from_s) {
    for (std::size_t i = disk.size(); i-- > 0;) {
      if (disk[i].from_s == from_s) {
        const auto idx = disk[i].index;
        disk.erase(disk.begin() + static_cast<std::ptrdiff_t>(i));
        return idx;
      }
    }
    assert(false && "eviction target must exist (Lemmas 1/2)");
    return disk.back().index;
  };

  auto complete = [&] { return S() >= threshold && L() >= threshold; };

  while ((S() >= L() && !pool_l.empty()) || (S() < L() && !pool_s.empty())) {
    if (S() >= L()) {
      const auto j = pool_l.pop_max();
      if (S() + items[j].s > 1.0) {
        const auto k = evict_last_of(/*from_s=*/true);
        pool_s.add(items[k].s_key(), k);
        disk.push_back(Member{j, false});
        close_disk();
        continue;
      }
      disk.push_back(Member{j, false});
    } else {
      const auto j = pool_s.pop_max();
      if (L() + items[j].l > 1.0) {
        const auto k = evict_last_of(/*from_s=*/false);
        pool_l.add(items[k].l_key(), k);
        disk.push_back(Member{j, true});
        close_disk();
        continue;
      }
      disk.push_back(Member{j, true});
    }
    if (complete()) close_disk();
  }

  while (!pool_s.empty()) {
    const auto j = pool_s.pop_max();
    if (S() + items[j].s > 1.0) close_disk();
    disk.push_back(Member{j, true});
  }
  while (!pool_l.empty()) {
    const auto j = pool_l.pop_max();
    if (L() + items[j].l > 1.0) close_disk();
    disk.push_back(Member{j, false});
  }
  if (!disk.empty()) close_disk();
  return out;
}

} // namespace spindown::core
