// normalize.h — from files to 2DVPP items (the paper's §3 load model).
//
// The load of file i is  l_i = R * p_i * µ(s_i):  the fraction of one disk's
// service time spent on that file, where R is the system request rate, p_i
// the file's access probability and µ the service-time function.  The paper
// notes "any function f(s_i) can be used"; the default is the full
// positioning + transfer model of DiskParams, and `include_positioning =
// false` gives the paper's simpler l_i = r_i * s_i / B form.
//
// Normalization: sizes are divided by (capacity_fraction * disk capacity) —
// the "total storage capacity of a disk that we are allowed to use" — and
// loads by the load constraint L, expressed as a fraction of the maximum
// transfer rate (§5: "the value of L is expressed as a fraction of the
// maximum transfer rate of the disk (72 MB/s)").
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/item.h"
#include "disk/params.h"
#include "workload/catalog.h"

namespace spindown::core {

struct LoadModel {
  double rate = 6.0;             ///< R, requests per second (system-wide)
  double load_fraction = 0.8;    ///< L, fraction of max service rate per disk
  double capacity_fraction = 1.0;///< fraction of disk space allowed for data
  bool include_positioning = true; ///< add seek+rotation to µ
  disk::DiskParams disk = disk::DiskParams::st3500630as();

  /// Optional custom µ(bytes) -> seconds; overrides the disk model if set.
  std::function<double(util::Bytes)> service_time;

  /// µ(s_i) under this model.
  double mu(util::Bytes bytes) const;
};

/// Build the normalized instance; item index == file id.
/// Throws if any file exceeds a disk's (allowed) space or load capacity.
std::vector<Item> normalize(const workload::FileCatalog& catalog,
                            const LoadModel& model);

/// Expected aggregate utilization of the instance in "disks of load" and
/// "disks of space" — the lower-bound terms of Theorem 1, pre-ceiling.
struct Utilization {
  double space_disks = 0.0;
  double load_disks = 0.0;
};
Utilization utilization(std::span<const Item> items);

} // namespace spindown::core
