#include "core/normalize.h"

#include <stdexcept>

namespace spindown::core {

double LoadModel::mu(util::Bytes bytes) const {
  if (service_time) return service_time(bytes);
  if (include_positioning) return disk.service_time(bytes);
  return disk.transfer_time(bytes);
}

std::vector<Item> normalize(const workload::FileCatalog& catalog,
                            const LoadModel& model) {
  if (model.rate <= 0.0) {
    throw std::invalid_argument{"LoadModel: rate must be > 0"};
  }
  if (model.load_fraction <= 0.0 || model.load_fraction > 1.0) {
    throw std::invalid_argument{"LoadModel: load_fraction must be in (0, 1]"};
  }
  if (model.capacity_fraction <= 0.0 || model.capacity_fraction > 1.0) {
    throw std::invalid_argument{
        "LoadModel: capacity_fraction must be in (0, 1]"};
  }
  const double usable_bytes =
      model.capacity_fraction * static_cast<double>(model.disk.capacity);

  std::vector<Item> items;
  items.reserve(catalog.size());
  for (const auto& f : catalog.files()) {
    Item it;
    it.index = f.id;
    it.s = static_cast<double>(f.size) / usable_bytes;
    // Fraction of the *allowed* service capacity L this file consumes.
    it.l = model.rate * f.popularity * model.mu(f.size) / model.load_fraction;
    items.push_back(it);
  }
  validate_instance(items);
  return items;
}

Utilization utilization(std::span<const Item> items) {
  const auto total = sums(items);
  return Utilization{total.total_s, total.total_l};
}

} // namespace spindown::core
