// random_alloc.h — the paper's comparison baseline: random placement.
//
// §4: "for the purpose of comparison of power consumption and response
// times, we also generated a mapping table that randomly maps files among
// all disks".  Figures 2–4 spread files over all 100 disks; §5.1 constrains
// random placement to 96 disks ("the same number of disks as Pack_Disks").
//
// Placement draws a uniformly random disk and retries while the file does
// not fit by *size* (random placement knows nothing about load, like the
// paper's baseline); after a bounded number of rejections it falls back to
// the emptiest disk.  Throws if the instance simply cannot fit.
#pragma once

#include <cstdint>

#include "core/allocator.h"

namespace spindown::core {

class RandomAllocator final : public Allocator {
public:
  /// `num_disks` fixed in advance; `seed` makes allocation deterministic
  /// (each allocate() call restarts the generator).
  RandomAllocator(std::uint32_t num_disks, std::uint64_t seed);

  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override { return "random"; }

  std::uint32_t num_disks() const { return num_disks_; }

private:
  std::uint32_t num_disks_;
  std::uint64_t seed_;
};

} // namespace spindown::core
