#include "core/pack_audit.h"

#include <algorithm>
#include <string>
#include <vector>

namespace spindown::core {

namespace {

constexpr double kEps = 1e-12;

/// Max-key pool with linear scans — deliberately naive (see header).
struct Pool {
  struct Elem {
    double key;
    std::uint32_t index;
  };
  std::vector<Elem> elems;

  bool empty() const { return elems.empty(); }

  std::uint32_t pop_max() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < elems.size(); ++i) {
      if (elems[i].key > elems[best].key ||
          (elems[i].key == elems[best].key &&
           elems[i].index < elems[best].index)) {
        best = i;
      }
    }
    const auto idx = elems[best].index;
    elems.erase(elems.begin() + static_cast<std::ptrdiff_t>(best));
    return idx;
  }

  void add(double key, std::uint32_t index) { elems.push_back({key, index}); }
};

[[noreturn]] void fail(const std::string& what) {
  throw AuditFailure{"Pack_Disks audit: " + what};
}

} // namespace

Assignment allocate_audited(std::span<const Item> items, AuditReport& report) {
  validate_instance(items);
  report = AuditReport{};
  Assignment out;
  out.disk_of.assign(items.size(), 0);
  if (items.empty()) return out;

  report.rho = rho(items);
  const double threshold = 1.0 - report.rho;

  Pool pool_s, pool_l;
  for (const auto& it : items) {
    if (it.size_intensive()) {
      pool_s.add(it.s_key(), it.index);
    } else {
      pool_l.add(it.l_key(), it.index);
    }
  }

  double S = 0.0, L = 0.0;
  std::vector<std::uint32_t> s_list, l_list;

  auto check_capacity = [&] {
    if (S > 1.0 + kEps) fail("size total exceeded 1 on an open disk");
    if (L > 1.0 + kEps) fail("load total exceeded 1 on an open disk");
  };

  auto complete = [&] {
    return S >= threshold - kEps && L >= threshold - kEps;
  };

  auto close_disk = [&](bool must_be_complete) {
    if (must_be_complete && !complete()) {
      fail("Lemma 3/4 violated: post-eviction disk not complete (S=" +
           std::to_string(S) + " L=" + std::to_string(L) + ")");
    }
    if (complete()) ++report.disks_closed_complete;
    report.min_closed_fill = std::min(report.min_closed_fill, std::max(S, L));
    for (const auto idx : s_list) out.disk_of[idx] = out.disk_count;
    for (const auto idx : l_list) out.disk_of[idx] = out.disk_count;
    ++out.disk_count;
    S = L = 0.0;
    s_list.clear();
    l_list.clear();
  };

  while ((S >= L && !pool_l.empty()) || (S < L && !pool_s.empty())) {
    ++report.steps;
    if (S >= L) {
      const auto j = pool_l.pop_max();
      if (S + items[j].s > 1.0) {
        // Lemma 1: s-list non-empty and its last element's key dominates
        // the imbalance.
        if (s_list.empty()) fail("Lemma 1 violated: s-list empty on overflow");
        const auto k = s_list.back();
        if (items[k].s_key() < S - L - kEps) {
          fail("Lemma 1 violated: ~s_k < S(Di) - L(Di)");
        }
        ++report.lemma12_checks;
        s_list.pop_back();
        S -= items[k].s;
        L -= items[k].l;
        pool_s.add(items[k].s_key(), k);
        l_list.push_back(j);
        S += items[j].s;
        L += items[j].l;
        check_capacity();
        ++report.evictions;
        ++report.lemma34_checks;
        close_disk(/*must_be_complete=*/true); // Lemma 3
        continue;
      }
      l_list.push_back(j);
      S += items[j].s;
      L += items[j].l;
      check_capacity();
    } else {
      const auto j = pool_s.pop_max();
      if (L + items[j].l > 1.0) {
        if (l_list.empty()) fail("Lemma 2 violated: l-list empty on overflow");
        const auto k = l_list.back();
        if (items[k].l_key() < L - S - kEps) {
          fail("Lemma 2 violated: ~l_k < L(Di) - S(Di)");
        }
        ++report.lemma12_checks;
        l_list.pop_back();
        S -= items[k].s;
        L -= items[k].l;
        pool_l.add(items[k].l_key(), k);
        s_list.push_back(j);
        S += items[j].s;
        L += items[j].l;
        check_capacity();
        ++report.evictions;
        ++report.lemma34_checks;
        close_disk(/*must_be_complete=*/true); // Lemma 4
        continue;
      }
      s_list.push_back(j);
      S += items[j].s;
      L += items[j].l;
      check_capacity();
    }
    if (complete()) close_disk(/*must_be_complete=*/true);
  }

  // Lemma 5: at most one of the heaps is non-empty after the main loop.
  if (!pool_s.empty() && !pool_l.empty()) {
    fail("Lemma 5 violated: both heaps non-empty after the main loop");
  }

  // Pack_Remaining (size side, then load side — at most one runs).
  while (!pool_s.empty()) {
    const auto j = pool_s.pop_max();
    if (S + items[j].s > 1.0) close_disk(/*must_be_complete=*/false);
    s_list.push_back(j);
    S += items[j].s;
    L += items[j].l;
    check_capacity();
    ++report.remaining_packed;
  }
  while (!pool_l.empty()) {
    const auto j = pool_l.pop_max();
    if (L + items[j].l > 1.0) close_disk(/*must_be_complete=*/false);
    l_list.push_back(j);
    S += items[j].s;
    L += items[j].l;
    check_capacity();
    ++report.remaining_packed;
  }
  if (!s_list.empty() || !l_list.empty()) {
    close_disk(/*must_be_complete=*/false);
  }

  // Lemma 6 / Theorem 1 case analysis: in each dimension count disks that
  // miss the completeness threshold; at most one disk (the last of each
  // phase) may be incomplete in the binding dimension.
  const auto totals = disk_totals(out, items);
  std::uint32_t under_both = 0;
  for (const auto& d : totals) {
    if (std::max(d.s, d.l) < threshold - kEps) ++under_both;
  }
  report.incomplete_disks = under_both;
  if (under_both > 1) {
    fail("Lemma 6 violated: " + std::to_string(under_both) +
         " disks below the completeness threshold in both dimensions");
  }
  if (!is_feasible(out, items)) fail("final assignment infeasible");
  return out;
}

} // namespace spindown::core
