#include "core/item.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spindown::core {

double rho(std::span<const Item> items) {
  double r = 0.0;
  for (const auto& it : items) {
    r = std::max({r, it.s, it.l});
  }
  return r;
}

InstanceSums sums(std::span<const Item> items) {
  InstanceSums out;
  for (const auto& it : items) {
    out.total_s += it.s;
    out.total_l += it.l;
  }
  return out;
}

std::vector<DiskTotals> disk_totals(const Assignment& a,
                                    std::span<const Item> items) {
  std::vector<DiskTotals> out(a.disk_count);
  for (const auto& it : items) {
    const auto d = a.disk_of.at(it.index);
    out.at(d).s += it.s;
    out.at(d).l += it.l;
    out.at(d).items += 1;
  }
  return out;
}

void validate_instance(std::span<const Item> items) {
  for (const auto& it : items) {
    if (!std::isfinite(it.s) || !std::isfinite(it.l)) {
      throw std::invalid_argument{"item coordinates must be finite"};
    }
    if (it.s < 0.0 || it.s > 1.0 || it.l < 0.0 || it.l > 1.0) {
      throw std::invalid_argument{
          "item coordinates must lie in [0,1]; renormalize the instance "
          "(a file bigger than a disk or hotter than one disk's service "
          "capacity cannot be allocated)"};
    }
  }
}

bool is_feasible(const Assignment& a, std::span<const Item> items,
                 double eps) {
  if (a.disk_of.size() < items.size()) return false;
  for (const auto& it : items) {
    if (a.disk_of[it.index] >= a.disk_count) return false;
  }
  for (const auto& d : disk_totals(a, items)) {
    if (d.s > 1.0 + eps || d.l > 1.0 + eps) return false;
  }
  return true;
}

} // namespace spindown::core
