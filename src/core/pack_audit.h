// pack_audit.h — Pack_Disks with the paper's lemmas checked at runtime.
//
// The §3.1 correctness argument rests on invariants the production packer
// only asserts in debug builds.  `allocate_audited` runs the identical
// packing while verifying every one of them on every step, and reports how
// often each was exercised:
//
//   * Lemma 1/2: on overflow, the evicted element's key dominates the
//     disk's imbalance (S-L <= ~s_k, resp. L-S <= ~l_k), and the opposite
//     list is non-empty;
//   * Lemma 3/4: after an eviction-insertion the disk is complete
//     (both totals in [1-rho, 1]);
//   * step feasibility: totals never exceed 1 in either dimension;
//   * Lemma 5/6: at the end, at most one disk is neither s- nor l-complete,
//     and at most one heap survives the main loop;
//   * Lemma 7's accounting: every element is removed from a heap at most
//     (1 + closed disk count) times in total.
//
// Any violation throws AuditFailure (tests turn instances over this at
// scale).  The audited packer is intentionally a separate, simpler
// implementation (flat scans, no O(1) tricks) so it cross-checks the fast
// one rather than sharing its bugs; equality of outputs is asserted by the
// test suite.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>

#include "core/item.h"

namespace spindown::core {

class AuditFailure : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

struct AuditReport {
  std::uint64_t steps = 0;            ///< heap pops in the main loop
  std::uint64_t evictions = 0;        ///< Lemma 1/2 events
  std::uint64_t lemma12_checks = 0;   ///< eviction-key dominance verified
  std::uint64_t lemma34_checks = 0;   ///< post-eviction completeness verified
  std::uint64_t disks_closed_complete = 0;
  std::uint64_t remaining_packed = 0; ///< items placed by Pack_Remaining
  std::uint32_t incomplete_disks = 0; ///< must be <= 1 per dimension case
  double min_closed_fill = 1.0;       ///< min over closed disks of max(S, L)
  double rho = 0.0;
};

/// Pack with full invariant checking; throws AuditFailure on any violation.
Assignment allocate_audited(std::span<const Item> items, AuditReport& report);

} // namespace spindown::core
