#include "core/random_alloc.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace spindown::core {

RandomAllocator::RandomAllocator(std::uint32_t num_disks, std::uint64_t seed)
    : num_disks_(num_disks), seed_(seed) {
  if (num_disks == 0) {
    throw std::invalid_argument{"RandomAllocator: need at least one disk"};
  }
}

Assignment RandomAllocator::allocate(std::span<const Item> items) {
  validate_instance(items);
  util::Rng rng{seed_};
  Assignment out;
  out.disk_of.assign(items.size(), 0);
  out.disk_count = num_disks_;

  std::vector<double> used_s(num_disks_, 0.0);
  constexpr int kMaxTries = 64;

  for (const auto& it : items) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxTries && !placed; ++attempt) {
      const auto d =
          static_cast<std::uint32_t>(rng.uniform_int(0, num_disks_ - 1));
      if (used_s[d] + it.s <= 1.0) {
        out.disk_of[it.index] = d;
        used_s[d] += it.s;
        placed = true;
      }
    }
    if (!placed) {
      // Rejection budget exhausted (disks nearly full): emptiest disk.
      const auto d = static_cast<std::uint32_t>(std::distance(
          used_s.begin(), std::min_element(used_s.begin(), used_s.end())));
      if (used_s[d] + it.s > 1.0) {
        throw std::runtime_error{
            "RandomAllocator: instance does not fit in the given disks"};
      }
      out.disk_of[it.index] = d;
      used_s[d] += it.s;
    }
  }
  return out;
}

} // namespace spindown::core
