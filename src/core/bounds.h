// bounds.h — optimality accounting for Theorem 1.
//
// The proof of Theorem 1 gives a checkable guarantee without knowing the
// optimum C*: every lower bound satisfies C* >= max(sum s_i, sum l_i), and
// the case analysis shows
//     C_PD <= 1 + max(sum s_i, sum l_i) / (1 - rho)
// which is what tests assert on random instances and what the bound-quality
// bench reports.
#pragma once

#include <cstdint>
#include <span>

#include "core/item.h"

namespace spindown::core {

struct BoundReport {
  double total_s = 0.0;
  double total_l = 0.0;
  double rho = 0.0;
  /// ceil(max(total_s, total_l)): a valid lower bound on any packing.
  std::uint32_t lower_bound = 0;
  /// 1 + max(total_s, total_l)/(1 - rho): Theorem 1's checkable ceiling
  /// (infinity when rho == 1).
  double guarantee = 0.0;
};

BoundReport bound_report(std::span<const Item> items);

/// True iff `disks` respects Theorem 1's checkable guarantee.
bool within_guarantee(const BoundReport& report, std::uint32_t disks);

} // namespace spindown::core
