// greedy.h — classic bin-packing heuristics lifted to two dimensions.
//
// Baselines beyond the paper's random placement, used by the bound-quality
// bench and as practical comparators: an item fits a disk when *both*
// coordinate sums stay <= 1.
//
//   * FirstFit          — first open disk that fits, in arrival order.
//   * BestFit           — feasible disk with the least remaining slack
//                         (sum of both dimensions' leftovers) after packing.
//   * FirstFitDecreasing— FirstFit after sorting by max(s, l) descending,
//                         the standard FFD lift.
#pragma once

#include "core/allocator.h"

namespace spindown::core {

class FirstFit final : public Allocator {
public:
  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override { return "first_fit"; }
};

class BestFit final : public Allocator {
public:
  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override { return "best_fit"; }
};

class FirstFitDecreasing final : public Allocator {
public:
  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override { return "first_fit_decreasing"; }
};

} // namespace spindown::core
