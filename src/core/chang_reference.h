// chang_reference.h — O(n^2) reference implementation of the packing.
//
// Re-implementation of the Chang–Hwang–Park two-dimensional vector packing
// algorithm [3] as the paper describes it: the same item-selection rule as
// Pack_Disks, but with naive data structures — the open disk's members live
// in one flat list whose totals are recomputed by scanning, the "heaps" are
// unordered vectors scanned for their maximum, and the element to evict on
// overflow is found by searching the member list.  The packing *decisions*
// are identical to PackDisks (same tie-breaking), which the tests verify by
// comparing assignments item-by-item; only the complexity differs, which
// bench_alloc_complexity measures (Lemma 7's O(n log n) vs O(n^2) claim).
#pragma once

#include "core/allocator.h"

namespace spindown::core {

class ChangHwangPark final : public Allocator {
public:
  Assignment allocate(std::span<const Item> items) override;
  std::string name() const override { return "chang_hwang_park"; }
};

} // namespace spindown::core
