// write_policy.h — energy-friendly write placement (§1.1).
//
// The paper's experiments are read-only, but §1.1 prescribes the write path:
// "write files into an already spinning disk if sufficient space is found on
// it or write it into any other disk (using best-fit or first-fit policy)",
// leaving relocation to the next reorganization.  WritePlacer implements
// exactly that: it tracks per-disk free space and picks a target for each
// incoming write, preferring spinning disks so no spin-up is paid.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/units.h"

namespace spindown::core {

enum class FitRule { kFirstFit, kBestFit };

class WritePlacer {
public:
  WritePlacer(std::uint32_t num_disks, util::Bytes disk_capacity, FitRule rule);

  /// Account existing usage (e.g. from the read catalog's allocation).
  void add_used(std::uint32_t disk, util::Bytes bytes);

  /// Return space to a disk (a buffered write destaged off a log disk, a
  /// file relocated by reorganization).  Clamps at zero.
  void release(std::uint32_t disk, util::Bytes bytes);

  util::Bytes free_on(std::uint32_t disk) const;

  /// Choose a disk for a `size`-byte write given which disks are currently
  /// spinning.  Spinning disks are preferred; within a class the FitRule
  /// decides.  Returns nullopt when no disk has room.
  /// The returned disk's usage is immediately updated.
  std::optional<std::uint32_t> place(util::Bytes size,
                                     const std::vector<bool>& spinning);

private:
  std::optional<std::uint32_t> pick(util::Bytes size,
                                    const std::vector<bool>& spinning,
                                    bool want_spinning) const;

  util::Bytes capacity_;
  std::vector<util::Bytes> used_;
  FitRule rule_;
};

} // namespace spindown::core
