// queueing.h — analytical response-time prediction for a placement.
//
// The paper's load constraint L bounds utilization, which bounds queueing
// delay; its conclusions pitch the method as "a tool for obtaining reliable
// estimates on the size of a disk farm needed to support a given workload
// ... while satisfying constraints on I/O response times".  This module is
// that estimator in closed form: each disk is an M/G/1 queue (Poisson
// arrivals split by the mapping; service time a discrete mixture over the
// disk's files), so the Pollaczek–Khinchine formula gives the mean wait
//
//   W_q = lambda * E[S^2] / (2 * (1 - rho)),   rho = lambda * E[S]
//
// and the request-weighted average over disks predicts the farm's mean
// response time without running the simulator.  Valid for spun-up disks
// (no spin-up penalties) and rho < 1; the capacity-planning example pairs
// the prediction with a simulation column so the error is visible.
#pragma once

#include <span>
#include <vector>

#include "core/item.h"
#include "core/normalize.h"
#include "workload/catalog.h"

namespace spindown::core {

/// Per-disk M/G/1 prediction.
struct DiskQueueing {
  double arrival_rate = 0.0; ///< lambda_d, requests/second
  double utilization = 0.0;  ///< rho_d = lambda_d * E[S]
  double mean_service = 0.0; ///< E[S], seconds
  double mean_wait = 0.0;    ///< W_q; infinity when rho >= 1
  double mean_response = 0.0;///< W_q + E[S]
  bool stable = true;        ///< rho < 1
};

struct FarmQueueing {
  std::vector<DiskQueueing> disks;
  /// Request-weighted mean response over all disks (infinity if any disk
  /// carrying traffic is unstable).
  double mean_response = 0.0;
  double max_utilization = 0.0;
  bool stable = true;
};

/// Predict queueing behaviour of `assignment` under the load model (the
/// model supplies R and the service-time function; its L only affected the
/// packing).  Files with zero popularity contribute storage but no traffic.
FarmQueueing predict_mg1(const workload::FileCatalog& catalog,
                         const Assignment& assignment, const LoadModel& model);

} // namespace spindown::core
