#include "core/greedy.h"

#include <algorithm>
#include <vector>

namespace spindown::core {

namespace {

struct DiskState {
  double s = 0.0;
  double l = 0.0;
  bool fits(const Item& it) const { return s + it.s <= 1.0 && l + it.l <= 1.0; }
};

Assignment pack_in_order(std::span<const Item> items,
                         std::span<const std::uint32_t> order, bool best_fit) {
  Assignment out;
  out.disk_of.assign(items.size(), 0);
  std::vector<DiskState> disks;
  for (const auto pos : order) {
    const Item& it = items[pos];
    std::size_t chosen = disks.size();
    if (best_fit) {
      double best_slack = 3.0; // any feasible disk has slack < 2
      for (std::size_t d = 0; d < disks.size(); ++d) {
        if (!disks[d].fits(it)) continue;
        const double slack =
            (1.0 - disks[d].s - it.s) + (1.0 - disks[d].l - it.l);
        if (slack < best_slack) {
          best_slack = slack;
          chosen = d;
        }
      }
    } else {
      for (std::size_t d = 0; d < disks.size(); ++d) {
        if (disks[d].fits(it)) {
          chosen = d;
          break;
        }
      }
    }
    if (chosen == disks.size()) disks.push_back(DiskState{});
    disks[chosen].s += it.s;
    disks[chosen].l += it.l;
    out.disk_of[it.index] = static_cast<std::uint32_t>(chosen);
  }
  out.disk_count = static_cast<std::uint32_t>(disks.size());
  return out;
}

std::vector<std::uint32_t> identity_order(std::size_t n) {
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  return order;
}

} // namespace

Assignment FirstFit::allocate(std::span<const Item> items) {
  validate_instance(items);
  return pack_in_order(items, identity_order(items.size()), /*best_fit=*/false);
}

Assignment BestFit::allocate(std::span<const Item> items) {
  validate_instance(items);
  return pack_in_order(items, identity_order(items.size()), /*best_fit=*/true);
}

Assignment FirstFitDecreasing::allocate(std::span<const Item> items) {
  validate_instance(items);
  auto order = identity_order(items.size());
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return std::max(items[a].s, items[a].l) >
                            std::max(items[b].s, items[b].l);
                   });
  return pack_in_order(items, order, /*best_fit=*/false);
}

} // namespace spindown::core
