// item.h — the two-dimensional vector packing instance (Definition 1).
//
// Each file i becomes an item (s_i, l_i): its storage and its load, both
// normalized by the per-disk bounds S and L so every disk is a unit square.
// The allocation problem is: partition items into the fewest subsets (disks)
// such that each subset's coordinate-wise sum stays <= 1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace spindown::core {

struct Item {
  double s = 0.0;           ///< normalized size, in [0, 1]
  double l = 0.0;           ///< normalized load, in [0, 1]
  std::uint32_t index = 0;  ///< original position (maps back to the file id)

  /// Size-intensive ("ST(F)" in the paper): s >= l.
  bool size_intensive() const { return s >= l; }
  /// Heap key in the size heap: ~s = s - l.
  double s_key() const { return s - l; }
  /// Heap key in the load heap: ~l = l - s.
  double l_key() const { return l - s; }
};

/// Result of an allocation: disk index per item, by item index.
struct Assignment {
  std::vector<std::uint32_t> disk_of; ///< indexed by Item::index
  std::uint32_t disk_count = 0;
};

/// Per-disk totals of an assignment (for validation and reporting).
struct DiskTotals {
  double s = 0.0;
  double l = 0.0;
  std::uint32_t items = 0;
};

/// rho: the maximum coordinate over all items (the paper's packing bound
/// parameter).  0 for an empty instance.
double rho(std::span<const Item> items);

/// Sum of sizes and loads across the instance.
struct InstanceSums {
  double total_s = 0.0;
  double total_l = 0.0;
};
InstanceSums sums(std::span<const Item> items);

/// Per-disk totals; disk_count entries.
std::vector<DiskTotals> disk_totals(const Assignment& a,
                                    std::span<const Item> items);

/// Throws std::invalid_argument when any coordinate is outside [0, 1] or
/// not finite — such an instance cannot be packed into unit disks.
void validate_instance(std::span<const Item> items);

/// True iff every item is assigned to a disk < disk_count and every disk
/// satisfies both capacity constraints (<= 1 + eps).
bool is_feasible(const Assignment& a, std::span<const Item> items,
                 double eps = 1e-9);

} // namespace spindown::core
