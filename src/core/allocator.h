// allocator.h — common interface of all file-allocation strategies.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "core/item.h"

namespace spindown::core {

class Allocator {
public:
  virtual ~Allocator() = default;

  /// Partition the instance into disks.  Implementations must produce a
  /// feasible assignment (is_feasible) for any valid instance.
  virtual Assignment allocate(std::span<const Item> items) = 0;

  virtual std::string name() const = 0;
};

} // namespace spindown::core
