// power.h — the disk power-state machine of Figure 1.
//
// States and per-state draw:
//
//        Standby (0.8 W)
//          ^   |
//  spin-   |   |  spin-up 15 s @ 24 W
//  down    |   v
//  10 s @  |  Idle (9.3 W) <---> Positioning (seek 12.6 W)
//  9.3 W   |                ---> Transfer (active 13 W)
//
// Legal transitions are encoded in `can_transition`; the Disk actor only
// moves along them, and tests enforce it.
#pragma once

#include <cstdint>
#include <string_view>

#include "disk/params.h"

namespace spindown::disk {

enum class PowerState : std::uint8_t {
  kIdle = 0,        ///< spinning, no request in service
  kPositioning = 1, ///< seek + rotational latency phase of a service
  kTransfer = 2,    ///< data transfer phase of a service
  kSpinningDown = 3,
  kStandby = 4,
  kSpinningUp = 5,
};
inline constexpr std::size_t kPowerStateCount = 6;

constexpr std::string_view to_string(PowerState s) {
  switch (s) {
    case PowerState::kIdle: return "idle";
    case PowerState::kPositioning: return "positioning";
    case PowerState::kTransfer: return "transfer";
    case PowerState::kSpinningDown: return "spinning_down";
    case PowerState::kStandby: return "standby";
    case PowerState::kSpinningUp: return "spinning_up";
  }
  return "?";
}

/// Electrical draw of a state under the given device parameters.
constexpr util::Watts power_of(PowerState s, const DiskParams& p) {
  switch (s) {
    case PowerState::kIdle: return p.idle_w;
    case PowerState::kPositioning: return p.seek_w;
    case PowerState::kTransfer: return p.active_w;
    case PowerState::kSpinningDown: return p.spindown_w;
    case PowerState::kStandby: return p.standby_w;
    case PowerState::kSpinningUp: return p.spinup_w;
  }
  return 0.0;
}

/// Figure 1's legal transitions.
constexpr bool can_transition(PowerState from, PowerState to) {
  switch (from) {
    case PowerState::kIdle:
      return to == PowerState::kPositioning || to == PowerState::kSpinningDown;
    case PowerState::kPositioning:
      return to == PowerState::kTransfer;
    case PowerState::kTransfer:
      // Next request (back-to-back service) or drained queue.
      return to == PowerState::kPositioning || to == PowerState::kIdle;
    case PowerState::kSpinningDown:
      return to == PowerState::kStandby;
    case PowerState::kStandby:
      return to == PowerState::kSpinningUp;
    case PowerState::kSpinningUp:
      // Serve the queue, or (policy quirk) nothing left to serve.
      return to == PowerState::kPositioning || to == PowerState::kIdle;
  }
  return false;
}

/// True when the platters are spinning at speed and a request can be served
/// without a spin-up.
constexpr bool is_spun_up(PowerState s) {
  return s == PowerState::kIdle || s == PowerState::kPositioning ||
         s == PowerState::kTransfer;
}

} // namespace spindown::disk
