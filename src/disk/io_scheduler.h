// io_scheduler.h — pluggable service disciplines for the disk's request
// queue.
//
// The seed simulator served a strict FCFS queue with a constant positioning
// cost, so the service order and the seek cost were frozen — a whole family
// of scenarios (scheduling discipline × spin-down policy) was unreachable.
// This interface makes the discipline a component: the Disk pushes every
// accepted request into its scheduler and, whenever the head is free, asks
// for the next *batch* — one or more jobs that share a single positioning
// phase.  Disciplines:
//
//   * FcfsScheduler  — arrival order, constant avg positioning cost.  The
//                      default; bit-compatible with the pre-scheduler disk.
//   * SstfScheduler  — shortest seek time first: nearest LBA to the head.
//   * ScanScheduler  — the elevator (LOOK variant): sweeps in one direction,
//                      serving requests in LBA order, and reverses at the
//                      last pending request.
//   * ClookScheduler — circular LOOK: sweeps upward only; on reaching the
//                      top it jumps back to the lowest pending LBA.
//   * BatchScheduler — C-LOOK order plus coalescing: LBA-adjacent (or
//                      near-adjacent) extents are merged into one batch and
//                      billed a single positioning phase.
//
// Geometry: a job's location is an LBA extent (start block + length, 512-byte
// blocks, per-disk address space; see workload::layout_extents).  Geometry-
// aware disciplines are billed seek(distance) + rotation per positioning
// phase via DiskParams::seek_time; FCFS keeps the legacy constant
// avg_seek + avg_rotation so Table-1/-2 experiments reproduce exactly.
//
// All schedulers are allocation-free in steady state (grow-only storage):
// the Disk's submit → complete cycle stays on the DES kernel's zero-alloc
// hot path (asserted by tests/des/alloc_count_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/units.h"

namespace spindown::disk {

/// One queued request as the scheduler sees it.
struct IoJob {
  std::uint64_t request_id = 0;
  util::Bytes bytes = 0;
  double arrival = 0.0;     ///< submission time (for FCFS order / reporting)
  std::uint64_t lba = 0;    ///< first block of the file's extent on this disk
  std::uint64_t blocks = 0; ///< extent length in util::kBlockBytes blocks
  std::uint64_t seq = 0;    ///< submission sequence; deterministic tie-break
  /// Background work (orchestration destage): serviced like any job — it
  /// occupies the head and burns energy — but excluded from the foreground
  /// served/queued/in-service accounting and the response statistics.
  bool background = false;
};

/// Service-discipline interface.  Single-threaded, driven by one Disk.
class IoScheduler {
public:
  virtual ~IoScheduler() = default;

  /// Accept a request into the queue.
  virtual void push(const IoJob& job) = 0;

  /// Number of jobs waiting (not yet handed out via pop_batch).
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Remove the next batch — one or more jobs served with a single
  /// positioning phase, appended to `out` in transfer order.  The head is
  /// currently at `head_lba`.  Precondition: !empty().
  virtual void pop_batch(std::uint64_t head_lba, std::vector<IoJob>& out) = 0;

  /// Geometry-aware disciplines are billed DiskParams::seek_time(distance);
  /// FCFS returns false and keeps the legacy constant positioning cost.
  virtual bool geometry_aware() const = 0;

  virtual std::string name() const = 0;
};

/// Arrival order; constant positioning cost (the seed behavior).
class FcfsScheduler final : public IoScheduler {
public:
  void push(const IoJob& job) override;
  std::size_t size() const override { return count_; }
  void pop_batch(std::uint64_t head_lba, std::vector<IoJob>& out) override;
  bool geometry_aware() const override { return false; }
  std::string name() const override { return "fcfs"; }

private:
  // Grow-only ring buffer: steady-state push/pop never allocates (a deque
  // would allocate a fresh block every ~page of throughput).
  std::vector<IoJob> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Shortest seek time first: the job whose LBA is nearest the head.
class SstfScheduler final : public IoScheduler {
public:
  void push(const IoJob& job) override { jobs_.push_back(job); }
  std::size_t size() const override { return jobs_.size(); }
  void pop_batch(std::uint64_t head_lba, std::vector<IoJob>& out) override;
  bool geometry_aware() const override { return true; }
  std::string name() const override { return "sstf"; }

private:
  std::vector<IoJob> jobs_;
};

/// Elevator (LOOK): serve in LBA order along the current sweep direction,
/// reversing when no pending request remains ahead of the head.
class ScanScheduler final : public IoScheduler {
public:
  void push(const IoJob& job) override { jobs_.push_back(job); }
  std::size_t size() const override { return jobs_.size(); }
  void pop_batch(std::uint64_t head_lba, std::vector<IoJob>& out) override;
  bool geometry_aware() const override { return true; }
  std::string name() const override { return "scan"; }

private:
  std::vector<IoJob> jobs_;
  bool upward_ = true;
};

/// Circular LOOK: sweep upward; wrap to the lowest pending LBA at the top.
class ClookScheduler final : public IoScheduler {
public:
  void push(const IoJob& job) override { jobs_.push_back(job); }
  std::size_t size() const override { return jobs_.size(); }
  void pop_batch(std::uint64_t head_lba, std::vector<IoJob>& out) override;
  bool geometry_aware() const override { return true; }
  std::string name() const override { return "clook"; }

private:
  std::vector<IoJob> jobs_;
};

/// C-LOOK order with coalescing: after picking the sweep's next job, any
/// pending extent starting within `coalesce_gap_blocks` after the batch's
/// end is appended (up to `max_batch` jobs), so adjacent extents pay one
/// positioning phase between them.
class BatchScheduler final : public IoScheduler {
public:
  explicit BatchScheduler(std::uint32_t max_batch = 16,
                          std::uint64_t coalesce_gap_blocks = 2048);
  void push(const IoJob& job) override { jobs_.push_back(job); }
  std::size_t size() const override { return jobs_.size(); }
  void pop_batch(std::uint64_t head_lba, std::vector<IoJob>& out) override;
  bool geometry_aware() const override { return true; }
  std::string name() const override;

private:
  std::vector<IoJob> jobs_;
  std::uint32_t max_batch_;
  std::uint64_t coalesce_gap_blocks_;
};

/// Factory helpers (mirror the spin-policy factories).
std::unique_ptr<IoScheduler> make_fcfs_scheduler();
std::unique_ptr<IoScheduler> make_sstf_scheduler();
std::unique_ptr<IoScheduler> make_scan_scheduler();
std::unique_ptr<IoScheduler> make_clook_scheduler();
std::unique_ptr<IoScheduler> make_batch_scheduler(
    std::uint32_t max_batch = 16, std::uint64_t coalesce_gap_blocks = 2048);

} // namespace spindown::disk
