#include "disk/spin_policy.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace spindown::disk {

FixedThresholdPolicy::FixedThresholdPolicy(double threshold_s)
    : threshold_(threshold_s) {
  if (threshold_s < 0.0) {
    throw std::invalid_argument{"FixedThresholdPolicy: negative threshold"};
  }
}

std::string FixedThresholdPolicy::name() const {
  return "fixed(" + util::format_seconds(threshold_) + ")";
}

std::unique_ptr<SpinDownPolicy> make_fixed_policy(double threshold_s) {
  return std::make_unique<FixedThresholdPolicy>(threshold_s);
}

std::unique_ptr<SpinDownPolicy> make_never_policy() {
  return std::make_unique<NeverSpinDownPolicy>();
}

std::unique_ptr<SpinDownPolicy> make_break_even_policy(const DiskParams& p) {
  return std::make_unique<FixedThresholdPolicy>(p.break_even_threshold());
}

RandomizedCompetitivePolicy::RandomizedCompetitivePolicy(const DiskParams& p)
    : break_even_(p.break_even_threshold()) {}

std::optional<double> RandomizedCompetitivePolicy::idle_timeout(
    util::Rng& rng) {
  // Inverse CDF of f(t) = e^(t/B) / (B(e-1)) on [0, B]:
  //   F(t) = (e^(t/B) - 1) / (e - 1)  =>  t = B ln(1 + u(e - 1)).
  const double u = rng.uniform01();
  return break_even_ * std::log(1.0 + u * (M_E - 1.0));
}

std::unique_ptr<SpinDownPolicy> make_randomized_policy(const DiskParams& p) {
  return std::make_unique<RandomizedCompetitivePolicy>(p);
}

util::Joules offline_optimal_idle_energy(const DiskParams& p,
                                         std::span<const double> idle_gaps) {
  const double round_trip = p.spindown_s + p.spinup_s;
  util::Joules total = 0.0;
  for (double g : idle_gaps) {
    const util::Joules stay_idle = p.idle_w * g;
    if (g <= round_trip) {
      total += stay_idle;
      continue;
    }
    const util::Joules go_standby =
        p.transition_energy() + p.standby_w * (g - round_trip);
    total += std::min(stay_idle, go_standby);
  }
  return total;
}

} // namespace spindown::disk
