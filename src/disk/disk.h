// disk.h — the simulated disk: FCFS service queue + Figure 1 power states.
//
// A Disk is a discrete-event actor.  Reads are submitted at the current
// simulation time and served first-come-first-served, one at a time.  Each
// service has two billed phases: positioning (avg seek + avg rotation, at
// seek power) and transfer (size / rate, at active power).  When the queue
// drains the disk goes idle and asks its SpinDownPolicy for a timeout; when
// the timer fires it spins down (10 s) into standby (0.8 W).  A request
// arriving at a standby disk triggers a spin-up (15 s) and is served after
// it; a request arriving mid-spin-down waits for the spin-down to complete
// and then for the spin-up (the head cannot abort a retraction).
//
// Every state residency is integrated into a time-weighted ledger, so energy
// is exact under the piecewise-constant power model.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "des/simulation.h"
#include "disk/params.h"
#include "disk/power.h"
#include "disk/spin_policy.h"
#include "stats/time_weighted.h"
#include "util/rng.h"

namespace spindown::disk {

/// Completion record delivered to the owner's callback.
struct Completion {
  std::uint64_t request_id = 0;
  std::uint32_t disk_id = 0;
  double arrival = 0.0;       ///< submission time
  double service_start = 0.0; ///< positioning began
  double completion = 0.0;
  util::Bytes bytes = 0;

  double response_time() const { return completion - arrival; }
  double wait_time() const { return service_start - arrival; }
};

/// Aggregate per-disk counters; energy follows from the state-time ledger.
struct DiskMetrics {
  std::array<double, kPowerStateCount> state_time{};
  std::uint64_t spin_ups = 0;
  std::uint64_t spin_downs = 0;
  std::uint64_t served = 0;
  util::Bytes bytes_served = 0;

  double time_in(PowerState s) const {
    return state_time[static_cast<std::size_t>(s)];
  }
  double busy_time() const {
    return time_in(PowerState::kPositioning) + time_in(PowerState::kTransfer);
  }
  /// Integrated energy under the device's power model.
  util::Joules energy(const DiskParams& p) const;
};

class Disk {
public:
  using CompletionCallback = std::function<void(const Completion&)>;

  /// The disk starts spun up and idle at sim.now(), as in the paper's runs.
  Disk(des::Simulation& sim, std::uint32_t id, DiskParams params,
       std::unique_ptr<SpinDownPolicy> policy, util::Rng rng);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Submit a whole-file read arriving now.  Completion is reported through
  /// the callback (if set).
  void submit(std::uint64_t request_id, util::Bytes bytes);

  void set_completion_callback(CompletionCallback cb) { on_complete_ = std::move(cb); }

  std::uint32_t id() const { return id_; }
  const DiskParams& params() const { return params_; }
  PowerState state() const { return state_; }
  std::size_t queue_length() const { return queue_.size(); }

  /// Snapshot of the counters with the ledger flushed to `now`.
  DiskMetrics metrics(double now) const;

  /// Completed idle-gap durations (time from going idle to the next
  /// arrival), recorded when the policy never spun the disk down during the
  /// gap.  Input for offline-optimal analysis.
  const std::vector<double>& idle_gaps() const { return idle_gaps_; }

private:
  struct Job {
    std::uint64_t request_id;
    util::Bytes bytes;
    double arrival;
  };

  void enter(PowerState next);
  void start_service();
  void finish_positioning();
  void finish_transfer();
  void go_idle();
  void arm_idle_timer();
  void disarm_idle_timer();
  void begin_spin_down();
  void finish_spin_down();
  void begin_spin_up();
  void finish_spin_up();

  des::Simulation& sim_;
  std::uint32_t id_;
  DiskParams params_;
  std::unique_ptr<SpinDownPolicy> policy_;
  util::Rng rng_;

  PowerState state_ = PowerState::kIdle;
  stats::TimeWeighted<PowerState, kPowerStateCount> ledger_;
  std::deque<Job> queue_;
  Job current_{};
  des::EventHandle idle_timer_;
  double idle_since_ = 0.0;
  double service_start_ = 0.0;

  CompletionCallback on_complete_;
  std::uint64_t spin_ups_ = 0;
  std::uint64_t spin_downs_ = 0;
  std::uint64_t served_ = 0;
  util::Bytes bytes_served_ = 0;
  std::vector<double> idle_gaps_;
};

} // namespace spindown::disk
