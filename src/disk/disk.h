// disk.h — the simulated disk: power-state machine + pluggable I/O scheduler.
//
// A Disk is a discrete-event actor built from two components:
//
//   * the Figure-1 power-state machine (idle/positioning/transfer/
//     spin-down/standby/spin-up, encoded in power.h) — unchanged from the
//     paper's model, and
//   * a pluggable IoScheduler (io_scheduler.h) that decides the service
//     order and the positioning cost.  The default FcfsScheduler serves in
//     arrival order with the constant avg-seek + avg-rotation cost, exactly
//     reproducing the seed simulator; geometry-aware disciplines (SSTF,
//     SCAN, C-LOOK, batching) order by LBA and are billed
//     DiskParams::seek_time(head travel) + rotation per positioning phase.
//
// Each service batch has two billed phases: positioning (at seek power) and
// one transfer per batch member (at active power, back-to-back — a coalesced
// batch pays a single positioning phase).  When the queue drains the disk
// goes idle and asks its SpinDownPolicy for a timeout; when the timer fires
// it spins down (10 s) into standby (0.8 W).  A request arriving at a
// standby disk triggers a spin-up (15 s) and is served after it; a request
// arriving mid-spin-down waits for the spin-down to complete and then for
// the spin-up (the head cannot abort a retraction).
//
// Every state residency is integrated into a time-weighted ledger, so energy
// is exact under the piecewise-constant power model.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "des/simulation.h"
#include "disk/io_scheduler.h"
#include "obs/trace.h"
#include "disk/params.h"
#include "disk/power.h"
#include "disk/spin_policy.h"
#include "stats/histogram.h"
#include "stats/time_weighted.h"
#include "stats/welford.h"
#include "util/inline_function.h"
#include "util/rng.h"

namespace spindown::disk {

/// Completion record delivered to the owner's callback.
struct Completion {
  std::uint64_t request_id = 0;
  std::uint32_t disk_id = 0;
  double arrival = 0.0;       ///< submission time
  double service_start = 0.0; ///< the request's batch began positioning
  double completion = 0.0;
  util::Bytes bytes = 0;
  /// Destage (orchestration background) job: the driver must not fold this
  /// completion into the response statistics.
  bool background = false;

  double response_time() const { return completion - arrival; }
  double wait_time() const { return service_start - arrival; }
};

/// Aggregate per-disk counters; energy follows from the state-time ledger.
/// `queued`/`in_service` snapshot the request population at metrics() time,
/// so a horizon snapshot accounts for every submitted request exactly once:
/// submitted == served + in_service + queued.
struct DiskMetrics {
  /// Which disk these counters belong to.  Farm aggregation folds metrics
  /// in disk-id order, so the result is independent of which shard (or
  /// calendar) produced each record.
  std::uint32_t disk_id = 0;
  std::array<double, kPowerStateCount> state_time{};
  std::uint64_t spin_ups = 0;
  std::uint64_t spin_downs = 0;
  std::uint64_t served = 0;
  util::Bytes bytes_served = 0;
  std::uint64_t queued = 0;       ///< waiting in the scheduler at snapshot
  std::uint64_t in_service = 0;   ///< in the active batch (positioning or
                                  ///< transferring) at snapshot
  /// Orchestration destage (background) jobs, kept out of the foreground
  /// counters above so `submitted == served + in_service + queued` and the
  /// run-level horizon identity hold over foreground requests alone.
  std::uint64_t destage_served = 0;  ///< background jobs completed
  std::uint64_t destage_pending = 0; ///< background queued or in the active
                                     ///< batch at snapshot
  std::uint64_t positionings = 0; ///< positioning phases billed (a coalesced
                                  ///< batch counts one for several requests)
  /// Completed idle-period durations (full time from going idle to the next
  /// arrival, through any spin-down/standby residency), log-binned from 1 ms
  /// to ~28 h.  Exposes the idle structure the spin-down economics turn on —
  /// and the signal the adaptive policies (src/adapt/) learn from.
  stats::LogHistogram idle_periods{kIdleHistLo, kIdleHistHi, kIdleHistBins};
  /// Response-time moments of every request this disk completed over the
  /// whole episode (including services drained past the horizon).  Filled
  /// by the run driver, not the Disk: the disk reports completions through
  /// its callback and the driver owns the per-disk accumulators.
  stats::Welford response;
  /// Integrated energy over [0, snapshot time] under the disk's own power
  /// model, and the energy the same window/busy-time would have cost with
  /// power management off (the Figure 5 normalizer, per disk).  Stored at
  /// metrics() time — where DiskParams is in scope — so farm aggregation
  /// and RunResult::merge need no params.
  util::Joules energy_j = 0.0;
  util::Joules always_on_j = 0.0;

  static constexpr double kIdleHistLo = 1e-3;
  static constexpr double kIdleHistHi = 1e5;
  static constexpr std::size_t kIdleHistBins = 80;

  double time_in(PowerState s) const {
    return state_time[static_cast<std::size_t>(s)];
  }
  double busy_time() const {
    return time_in(PowerState::kPositioning) + time_in(PowerState::kTransfer);
  }
  /// Integrated energy under the device's power model.
  util::Joules energy(const DiskParams& p) const;

  /// Fold another record's counters into this one — disjoint observation
  /// sets of the same farm (window- or shard-aggregation).  Sums the
  /// counters, state times, and energies; merges the histograms bin-wise
  /// and the response moments with Chan's formula; keeps the lower disk_id.
  void merge(const DiskMetrics& other);
};

class Disk {
public:
  /// Inline storage covers every capture in the simulator (a `this` pointer
  /// or a couple of references); completions stay on the allocation-free
  /// hot path.
  using CompletionCallback = util::InlineFunction<void(const Completion&), 64>;

  /// The disk starts spun up and idle at sim.now(), as in the paper's runs.
  /// `scheduler` defaults (nullptr) to FCFS — the seed-compatible
  /// discipline.
  Disk(des::Simulation& sim, std::uint32_t id, DiskParams params,
       std::unique_ptr<SpinDownPolicy> policy, util::Rng rng,
       std::unique_ptr<IoScheduler> scheduler = nullptr);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Submit a whole-file read arriving now.  `lba`/`blocks` locate the
  /// file's extent in this disk's logical-block space (the dispatcher
  /// computes them from the catalog layout); `blocks` == 0 derives the
  /// extent length from `bytes`.  Completion is reported through the
  /// callback (if set).  `background` marks orchestration destage work: it
  /// is serviced (and billed energy) like any job but stays out of the
  /// foreground served/queued/in-service counters, the response statistics,
  /// and the spin-down policy's completion signal.
  void submit(std::uint64_t request_id, util::Bytes bytes,
              std::uint64_t lba = 0, std::uint64_t blocks = 0,
              bool background = false);

  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  /// Attach a trace sink (null disables).  The buffer must be single-writer
  /// from this disk's calendar thread and outlive the disk's activity; the
  /// disk emits power transitions, request-lifecycle spans, and policy
  /// decisions on track `id()` subject to the buffer's kind mask.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  std::uint32_t id() const { return id_; }
  const DiskParams& params() const { return params_; }
  PowerState state() const { return state_; }
  const IoScheduler& scheduler() const { return *scheduler_; }
  std::size_t queue_length() const { return scheduler_->size(); }
  /// Requests in the active batch (cheap gauge taps for the sampler).
  std::size_t in_service_count() const { return batch_.size() - batch_pos_; }
  std::uint64_t served_count() const { return served_; }
  /// Current head position (first block past the last transferred extent).
  std::uint64_t head_lba() const { return head_lba_; }

  /// Snapshot of the counters with the ledger flushed to `now`.
  DiskMetrics metrics(double now) const;

  /// Completed idle-gap durations (time from going idle to the next
  /// arrival), recorded when the policy never spun the disk down during the
  /// gap.  Input for offline-optimal analysis.
  const std::vector<double>& idle_gaps() const { return idle_gaps_; }

private:
  void enter(PowerState next);
  double positioning_time(std::uint64_t target_lba) const;
  void start_service();
  void finish_positioning();
  void start_transfer();
  void finish_transfer();
  void go_idle();
  void arm_idle_timer();
  void disarm_idle_timer();
  void begin_spin_down();
  void finish_spin_down();
  void begin_spin_up();
  void finish_spin_up();

  des::Simulation& sim_;
  std::uint32_t id_;
  DiskParams params_;
  std::unique_ptr<SpinDownPolicy> policy_;
  util::Rng rng_;
  std::unique_ptr<IoScheduler> scheduler_;

  PowerState state_ = PowerState::kIdle;
  stats::TimeWeighted<PowerState, kPowerStateCount> ledger_;
  /// The batch currently owning the head: batch_[batch_pos_] is being
  /// transferred (or about to be, during positioning); earlier entries are
  /// complete.  Storage is reused across batches (grow-only).
  std::vector<IoJob> batch_;
  std::size_t batch_pos_ = 0;
  std::uint64_t head_lba_ = 0;
  double capacity_blocks_ = 1.0;
  std::uint64_t submit_seq_ = 0;
  des::EventHandle idle_timer_;
  double idle_since_ = 0.0;
  /// True from go_idle() (or construction) until the arrival that ends the
  /// period; an arrival mid-spin-down/standby closes the same period, so
  /// the flag distinguishes "first arrival after idling" from "arrival
  /// during a spin-up another request already triggered".
  bool idle_period_open_ = true;
  bool idle_spun_down_ = false;
  double service_start_ = 0.0;

  CompletionCallback on_complete_;
  obs::TraceBuffer* trace_ = nullptr;
  std::uint64_t spin_ups_ = 0;
  std::uint64_t spin_downs_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t destage_served_ = 0;
  /// Background population split by location (scheduler vs active batch),
  /// maintained so metrics() can report foreground queued/in_service
  /// without scanning the queue.
  std::uint64_t bg_in_scheduler_ = 0;
  std::uint64_t bg_in_batch_ = 0;
  std::uint64_t positionings_ = 0;
  util::Bytes bytes_served_ = 0;
  std::vector<double> idle_gaps_;
  stats::LogHistogram idle_periods_{DiskMetrics::kIdleHistLo,
                                    DiskMetrics::kIdleHistHi,
                                    DiskMetrics::kIdleHistBins};
};

} // namespace spindown::disk
