#include "disk/io_scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace spindown::disk {

namespace {

/// Deterministic ordering helper: prefer the smaller key, break ties by
/// submission sequence (earlier wins) so equal-LBA jobs serve in FIFO order.
struct Best {
  std::uint64_t key = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t seq = std::numeric_limits<std::uint64_t>::max();
  std::size_t index = 0;
  bool found = false;

  void offer(std::uint64_t k, const IoJob& job, std::size_t i) {
    if (!found || k < key || (k == key && job.seq < seq)) {
      key = k;
      seq = job.seq;
      index = i;
      found = true;
    }
  }
};

/// Remove jobs[i] without shifting the tail (order inside the pool carries
/// no meaning — every pop scans the whole pool and tie-breaks by seq).
IoJob take(std::vector<IoJob>& jobs, std::size_t i) {
  IoJob job = jobs[i];
  jobs[i] = jobs.back();
  jobs.pop_back();
  return job;
}

std::uint64_t distance(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : b - a;
}

/// C-LOOK pick: the nearest job at or past the head on the upward sweep,
/// wrapping to the globally lowest LBA when nothing lies ahead.  Shared by
/// ClookScheduler and BatchScheduler (which seeds its batch the same way).
std::size_t clook_pick(const std::vector<IoJob>& jobs, std::uint64_t head_lba) {
  Best ahead;
  Best lowest;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto lba = jobs[i].lba;
    if (lba >= head_lba) ahead.offer(lba - head_lba, jobs[i], i);
    lowest.offer(lba, jobs[i], i);
  }
  return ahead.found ? ahead.index : lowest.index;
}

} // namespace

void FcfsScheduler::push(const IoJob& job) {
  if (count_ == ring_.size()) {
    // Full (or empty): grow by re-linearizing into a larger buffer.
    std::vector<IoJob> bigger;
    bigger.reserve(std::max<std::size_t>(8, ring_.size() * 2));
    for (std::size_t i = 0; i < count_; ++i) {
      bigger.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    bigger.resize(bigger.capacity());
    ring_ = std::move(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = job;
  ++count_;
}

void FcfsScheduler::pop_batch(std::uint64_t /*head_lba*/,
                              std::vector<IoJob>& out) {
  assert(count_ > 0);
  out.push_back(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --count_;
}

void SstfScheduler::pop_batch(std::uint64_t head_lba, std::vector<IoJob>& out) {
  assert(!jobs_.empty());
  Best best;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    best.offer(distance(jobs_[i].lba, head_lba), jobs_[i], i);
  }
  out.push_back(take(jobs_, best.index));
}

void ScanScheduler::pop_batch(std::uint64_t head_lba, std::vector<IoJob>& out) {
  assert(!jobs_.empty());
  for (int attempt = 0; attempt < 2; ++attempt) {
    Best best;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      const auto lba = jobs_[i].lba;
      if (upward_ && lba >= head_lba) {
        best.offer(lba - head_lba, jobs_[i], i);
      } else if (!upward_ && lba <= head_lba) {
        best.offer(head_lba - lba, jobs_[i], i);
      }
    }
    if (best.found) {
      out.push_back(take(jobs_, best.index));
      return;
    }
    upward_ = !upward_; // LOOK: reverse at the last pending request
  }
  assert(false && "unreachable: a non-empty pool always matches one sweep");
}

void ClookScheduler::pop_batch(std::uint64_t head_lba,
                               std::vector<IoJob>& out) {
  assert(!jobs_.empty());
  out.push_back(take(jobs_, clook_pick(jobs_, head_lba)));
}

BatchScheduler::BatchScheduler(std::uint32_t max_batch,
                               std::uint64_t coalesce_gap_blocks)
    : max_batch_(std::max<std::uint32_t>(1, max_batch)),
      coalesce_gap_blocks_(coalesce_gap_blocks) {}

std::string BatchScheduler::name() const {
  return "batch" + std::to_string(max_batch_);
}

void BatchScheduler::pop_batch(std::uint64_t head_lba,
                               std::vector<IoJob>& out) {
  assert(!jobs_.empty());
  // Seed the batch with the C-LOOK sweep's next job.
  out.push_back(take(jobs_, clook_pick(jobs_, head_lba)));
  std::uint64_t end = out.back().lba + out.back().blocks;

  // Coalesce: repeatedly absorb the nearest pending extent that starts
  // within the gap window after the batch's end.  Each absorbed job rides
  // the same positioning phase (the head is already streaming past it).
  while (out.size() < max_batch_ && !jobs_.empty()) {
    Best next;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      const auto lba = jobs_[i].lba;
      if (lba >= end && lba - end <= coalesce_gap_blocks_) {
        next.offer(lba - end, jobs_[i], i);
      }
    }
    if (!next.found) break;
    out.push_back(take(jobs_, next.index));
    end = out.back().lba + out.back().blocks;
  }
}

std::unique_ptr<IoScheduler> make_fcfs_scheduler() {
  return std::make_unique<FcfsScheduler>();
}
std::unique_ptr<IoScheduler> make_sstf_scheduler() {
  return std::make_unique<SstfScheduler>();
}
std::unique_ptr<IoScheduler> make_scan_scheduler() {
  return std::make_unique<ScanScheduler>();
}
std::unique_ptr<IoScheduler> make_clook_scheduler() {
  return std::make_unique<ClookScheduler>();
}
std::unique_ptr<IoScheduler> make_batch_scheduler(
    std::uint32_t max_batch, std::uint64_t coalesce_gap_blocks) {
  return std::make_unique<BatchScheduler>(max_batch, coalesce_gap_blocks);
}

} // namespace spindown::disk
