#include "disk/params.h"

namespace spindown::disk {

DiskParams DiskParams::laptop_2_5in() {
  DiskParams p;
  p.model = "generic 2.5-inch 5400rpm";
  p.capacity = util::gb(500.0);
  p.avg_seek_s = 0.012;
  p.avg_rotation_s = 0.00556; // 5400 rpm: half a revolution
  p.transfer_bps = 60.0e6;
  p.idle_w = 1.8;
  p.standby_w = 0.2;
  p.active_w = 2.5;
  p.seek_w = 2.3;
  p.spinup_w = 4.5;
  p.spindown_w = 1.5;
  p.spinup_s = 4.0;
  p.spindown_s = 1.5;
  return p;
}

DiskParams DiskParams::st3500630as() {
  DiskParams p;
  p.model = "Seagate ST3500630AS";
  p.capacity = util::gb(500.0);
  p.avg_seek_s = 0.0085;
  p.avg_rotation_s = 0.00416;
  p.transfer_bps = 72.0e6;
  p.idle_w = 9.3;
  p.standby_w = 0.8;
  p.active_w = 13.0;
  p.seek_w = 12.6;
  p.spinup_w = 24.0;
  p.spindown_w = 9.3;
  p.spinup_s = 15.0;
  p.spindown_s = 10.0;
  return p;
}

} // namespace spindown::disk
