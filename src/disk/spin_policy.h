// spin_policy.h — when does an idle disk spin down?
//
// The paper uses a fixed idleness threshold, defaulting to the break-even
// time (Table 2: 53.3 s), and sweeps the threshold in Figures 5/6.  The
// related-work section (§2) surveys the competitive-analysis literature on
// this choice; we implement those policies as well, for the ablation bench:
//
//   * FixedThresholdPolicy(T)   — the paper's policy; T = 0 is "immediately
//                                 spin down", a useful extreme.
//   * NeverSpinDownPolicy       — the "no power management" baseline that
//                                 Figure 5's normalization divides by.
//   * BreakEvenPolicy           — FixedThreshold at the 2-competitive
//                                 break-even point (the paper's default).
//   * RandomizedCompetitivePolicy — draws the threshold from the density
//       f(t) = e^(t/B) / (B (e - 1)),  t in [0, B]   (B = break-even)
//     which is e/(e-1) ~ 1.58-competitive against oblivious adversaries
//     (Karlin et al.; surveyed in the paper's [8]).
//
// A policy is consulted once per idle-period start and returns the timeout
// after which the disk should begin spinning down, or nullopt for "never".
// The disk also feeds every policy two observation taps — completed
// idle-period durations and per-request response times — which the static
// policies here ignore; the *online* policies built on them (EWMA idle
// prediction, the multiplicative-weights "share" expert combiner, the
// slack-aware SLO controller) live in src/adapt/.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "disk/params.h"
#include "util/rng.h"

namespace spindown::disk {

class SpinDownPolicy {
public:
  virtual ~SpinDownPolicy() = default;

  /// Timeout for the idle period that starts now; nullopt = stay idle.
  virtual std::optional<double> idle_timeout(util::Rng& rng) = 0;

  /// Feedback: an idle period just ended (a request arrived).  `duration` is
  /// the full time from going idle to that arrival — through any spin-down
  /// and standby residency — and `spun_down` says whether the policy's
  /// timeout fired during the period.  Stateless policies ignore this; the
  /// online policies in src/adapt/ learn from it.  The Disk calls this
  /// before asking for the next timeout, so a policy always scores period k
  /// before deciding period k+1.
  virtual void observe_idle(double duration, bool spun_down) {
    (void)duration;
    (void)spun_down;
  }

  /// Feedback: a request on this disk completed with the given response
  /// time (completion minus submission).  The slack-aware policy spends the
  /// gap between this signal and its SLO on deeper power saving.
  virtual void observe_completion(double response_time_s) {
    (void)response_time_s;
  }

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Observability probe: the policy's current operating point, attached to
  /// every decision event on the trace (kind kPolicy, `aux` field).  Static
  /// policies report their threshold; the adaptive policies report their
  /// learned estimate (EWMA-predicted idle, the share combiner's blended
  /// threshold, the slack controller's current threshold).  Read-only and
  /// purely informational — it must never influence a decision.
  virtual double trace_estimate() const { return 0.0; }
};

class FixedThresholdPolicy final : public SpinDownPolicy {
public:
  explicit FixedThresholdPolicy(double threshold_s);
  std::optional<double> idle_timeout(util::Rng&) override { return threshold_; }
  std::string name() const override;
  double trace_estimate() const override { return threshold_; }
  double threshold() const { return threshold_; }

private:
  double threshold_;
};

class NeverSpinDownPolicy final : public SpinDownPolicy {
public:
  std::optional<double> idle_timeout(util::Rng&) override {
    return std::nullopt;
  }
  std::string name() const override { return "never"; }
};

/// Factory helpers.
std::unique_ptr<SpinDownPolicy> make_fixed_policy(double threshold_s);
std::unique_ptr<SpinDownPolicy> make_never_policy();
std::unique_ptr<SpinDownPolicy> make_break_even_policy(const DiskParams& p);

class RandomizedCompetitivePolicy final : public SpinDownPolicy {
public:
  explicit RandomizedCompetitivePolicy(const DiskParams& p);
  std::optional<double> idle_timeout(util::Rng& rng) override;
  std::string name() const override { return "randomized-competitive"; }

private:
  double break_even_;
};

std::unique_ptr<SpinDownPolicy> make_randomized_policy(const DiskParams& p);

/// Offline-optimal energy for a single disk given its idle-gap sequence:
/// for each gap g, the adversary-free optimum pays
///   min(P_idle * g, transition_energy + P_standby * max(0, g - t_down - t_up))
/// when the gap fits a full round trip, else P_idle * g.  Used by the
/// ablation bench to report competitive ratios; not a simulation policy
/// (it needs the future).
util::Joules offline_optimal_idle_energy(const DiskParams& p,
                                         std::span<const double> idle_gaps);

} // namespace spindown::disk
