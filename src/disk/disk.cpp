#include "disk/disk.h"

#include <cassert>

namespace spindown::disk {

util::Joules DiskMetrics::energy(const DiskParams& p) const {
  util::Joules total = 0.0;
  for (std::size_t i = 0; i < kPowerStateCount; ++i) {
    total += state_time[i] * power_of(static_cast<PowerState>(i), p);
  }
  return total;
}

Disk::Disk(des::Simulation& sim, std::uint32_t id, DiskParams params,
           std::unique_ptr<SpinDownPolicy> policy, util::Rng rng)
    : sim_(sim), id_(id), params_(std::move(params)), policy_(std::move(policy)),
      rng_(rng), ledger_(PowerState::kIdle, sim.now()), idle_since_(sim.now()) {
  assert(policy_ != nullptr);
  arm_idle_timer();
}

void Disk::enter(PowerState next) {
  assert(can_transition(state_, next));
  ledger_.transition(sim_.now(), next);
  state_ = next;
}

void Disk::submit(std::uint64_t request_id, util::Bytes bytes) {
  queue_.push_back(Job{request_id, bytes, sim_.now()});
  switch (state_) {
    case PowerState::kIdle:
      // The idle gap ends now; record it for offline-optimal analysis.
      idle_gaps_.push_back(sim_.now() - idle_since_);
      disarm_idle_timer();
      start_service();
      break;
    case PowerState::kStandby:
      begin_spin_up();
      break;
    case PowerState::kSpinningDown:
    case PowerState::kSpinningUp:
    case PowerState::kPositioning:
    case PowerState::kTransfer:
      // Queued; picked up when the current activity finishes.
      break;
  }
}

void Disk::start_service() {
  assert(!queue_.empty());
  assert(state_ == PowerState::kIdle || state_ == PowerState::kTransfer ||
         state_ == PowerState::kSpinningUp);
  current_ = queue_.front();
  queue_.pop_front();
  service_start_ = sim_.now();
  enter(PowerState::kPositioning);
  sim_.schedule_in(params_.position_time(), [this] { finish_positioning(); });
}

void Disk::finish_positioning() {
  enter(PowerState::kTransfer);
  sim_.schedule_in(params_.transfer_time(current_.bytes),
                   [this] { finish_transfer(); });
}

void Disk::finish_transfer() {
  ++served_;
  bytes_served_ += current_.bytes;
  if (on_complete_) {
    Completion c;
    c.request_id = current_.request_id;
    c.disk_id = id_;
    c.arrival = current_.arrival;
    c.service_start = service_start_;
    c.completion = sim_.now();
    c.bytes = current_.bytes;
    on_complete_(c);
  }
  if (!queue_.empty()) {
    start_service();
  } else {
    go_idle();
  }
}

void Disk::go_idle() {
  enter(PowerState::kIdle);
  idle_since_ = sim_.now();
  arm_idle_timer();
}

void Disk::arm_idle_timer() {
  assert(state_ == PowerState::kIdle);
  const auto timeout = policy_->idle_timeout(rng_);
  if (!timeout.has_value()) return; // stay idle forever (never-spin-down)
  if (*timeout <= 0.0) {
    begin_spin_down();
    return;
  }
  idle_timer_ = sim_.schedule_in(*timeout, [this] {
    idle_timer_ = des::EventHandle{};
    begin_spin_down();
  });
}

void Disk::disarm_idle_timer() {
  // Generation-counted handles make this safe unconditionally: cancelling an
  // inert or already-fired handle is a no-op returning false.
  sim_.cancel(idle_timer_);
  idle_timer_ = des::EventHandle{};
}

void Disk::begin_spin_down() {
  assert(state_ == PowerState::kIdle);
  ++spin_downs_;
  enter(PowerState::kSpinningDown);
  sim_.schedule_in(params_.spindown_s, [this] { finish_spin_down(); });
}

void Disk::finish_spin_down() {
  enter(PowerState::kStandby);
  // Requests that arrived during the spin-down force an immediate spin-up.
  if (!queue_.empty()) begin_spin_up();
}

void Disk::begin_spin_up() {
  assert(state_ == PowerState::kStandby);
  ++spin_ups_;
  enter(PowerState::kSpinningUp);
  sim_.schedule_in(params_.spinup_s, [this] { finish_spin_up(); });
}

void Disk::finish_spin_up() {
  if (!queue_.empty()) {
    start_service();
  } else {
    // Cannot normally happen (spin-ups are demand-driven), but a policy
    // extension could spin up proactively; settle into idle.
    go_idle();
  }
}

DiskMetrics Disk::metrics(double now) const {
  auto ledger = ledger_; // copy, then flush the copy to `now`
  ledger.flush(now);
  DiskMetrics m;
  for (std::size_t i = 0; i < kPowerStateCount; ++i) {
    m.state_time[i] = ledger.time_in(static_cast<PowerState>(i));
  }
  m.spin_ups = spin_ups_;
  m.spin_downs = spin_downs_;
  m.served = served_;
  m.bytes_served = bytes_served_;
  return m;
}

} // namespace spindown::disk
