#include "disk/disk.h"

#include <algorithm>
#include <cassert>

namespace spindown::disk {

util::Joules DiskMetrics::energy(const DiskParams& p) const {
  util::Joules total = 0.0;
  for (std::size_t i = 0; i < kPowerStateCount; ++i) {
    total += state_time[i] * power_of(static_cast<PowerState>(i), p);
  }
  return total;
}

void DiskMetrics::merge(const DiskMetrics& other) {
  disk_id = std::min(disk_id, other.disk_id);
  for (std::size_t i = 0; i < kPowerStateCount; ++i) {
    state_time[i] += other.state_time[i];
  }
  spin_ups += other.spin_ups;
  spin_downs += other.spin_downs;
  served += other.served;
  bytes_served += other.bytes_served;
  queued += other.queued;
  in_service += other.in_service;
  destage_served += other.destage_served;
  destage_pending += other.destage_pending;
  positionings += other.positionings;
  idle_periods.merge(other.idle_periods);
  response.merge(other.response);
  energy_j += other.energy_j;
  always_on_j += other.always_on_j;
}

Disk::Disk(des::Simulation& sim, std::uint32_t id, DiskParams params,
           std::unique_ptr<SpinDownPolicy> policy, util::Rng rng,
           std::unique_ptr<IoScheduler> scheduler)
    : sim_(sim),
      id_(id),
      params_(std::move(params)),
      policy_(std::move(policy)),
      rng_(rng),
      scheduler_(scheduler ? std::move(scheduler) : make_fcfs_scheduler()),
      ledger_(PowerState::kIdle, sim.now()), idle_since_(sim.now()) {
  assert(policy_ != nullptr);
  capacity_blocks_ = std::max<double>(
      1.0, static_cast<double>(util::blocks_of(params_.capacity)));
  arm_idle_timer();
}

void Disk::enter(PowerState next) {
  assert(can_transition(state_, next));
  if (trace_ != nullptr && trace_->wants(obs::Kind::kPower)) {
    trace_->emit(obs::Kind::kPower, static_cast<std::uint8_t>(next),
                 sim_.now(), id_, 0,
                 static_cast<double>(static_cast<unsigned>(state_)));
  }
  ledger_.transition(sim_.now(), next);
  state_ = next;
}

void Disk::submit(std::uint64_t request_id, util::Bytes bytes,
                  std::uint64_t lba, std::uint64_t blocks, bool background) {
  IoJob job;
  job.request_id = request_id;
  job.bytes = bytes;
  job.arrival = sim_.now();
  job.lba = lba;
  job.blocks = blocks != 0 ? blocks : util::blocks_of(bytes);
  job.seq = submit_seq_++;
  job.background = background;
  if (background) ++bg_in_scheduler_;
  scheduler_->push(job);
  if (trace_ != nullptr && trace_->wants(obs::Kind::kSpan)) {
    trace_->emit(obs::Kind::kSpan, obs::kSpanSubmit, sim_.now(), id_,
                 request_id, static_cast<double>(bytes));
    trace_->emit(obs::Kind::kSpan, obs::kSpanEnqueue, sim_.now(), id_,
                 request_id, static_cast<double>(scheduler_->size()));
  }
  if (idle_period_open_) {
    // First arrival since the disk went idle: the idle period ends now,
    // whatever power state the policy steered it through.  Score it before
    // any state change so an adaptive policy sees period k before deciding
    // period k+1.
    const double duration = sim_.now() - idle_since_;
    idle_periods_.add(duration);
    policy_->observe_idle(duration, idle_spun_down_);
    idle_period_open_ = false;
  }
  switch (state_) {
    case PowerState::kIdle:
      // The idle gap ends now; record it for offline-optimal analysis.
      idle_gaps_.push_back(sim_.now() - idle_since_);
      disarm_idle_timer();
      start_service();
      break;
    case PowerState::kStandby:
      begin_spin_up();
      break;
    case PowerState::kSpinningDown:
    case PowerState::kSpinningUp:
    case PowerState::kPositioning:
    case PowerState::kTransfer:
      // Queued; picked up when the current activity finishes.
      break;
  }
}

double Disk::positioning_time(std::uint64_t target_lba) const {
  if (!scheduler_->geometry_aware()) return params_.position_time();
  const double travel =
      static_cast<double>(target_lba > head_lba_ ? target_lba - head_lba_
                                                 : head_lba_ - target_lba);
  const double distance = std::min(1.0, travel / capacity_blocks_);
  return params_.seek_time(distance) + params_.avg_rotation_s;
}

void Disk::start_service() {
  assert(!scheduler_->empty());
  assert(state_ == PowerState::kIdle || state_ == PowerState::kTransfer ||
         state_ == PowerState::kSpinningUp);
  batch_.clear();
  batch_pos_ = 0;
  scheduler_->pop_batch(head_lba_, batch_);
  assert(!batch_.empty());
  if (bg_in_scheduler_ > 0) {
    for (const IoJob& job : batch_) {
      if (job.background) {
        --bg_in_scheduler_;
        ++bg_in_batch_;
      }
    }
  }
  service_start_ = sim_.now();
  ++positionings_;
  if (trace_ != nullptr && trace_->wants(obs::Kind::kSpan)) {
    for (const IoJob& job : batch_) {
      trace_->emit(obs::Kind::kSpan, obs::kSpanPosition, sim_.now(), id_,
                   job.request_id, static_cast<double>(batch_.size()));
    }
  }
  enter(PowerState::kPositioning);
  sim_.schedule_in(positioning_time(batch_.front().lba),
                   [this] { finish_positioning(); });
}

void Disk::finish_positioning() {
  enter(PowerState::kTransfer);
  start_transfer();
}

void Disk::start_transfer() {
  if (trace_ != nullptr && trace_->wants(obs::Kind::kSpan)) {
    trace_->emit(obs::Kind::kSpan, obs::kSpanTransfer, sim_.now(), id_,
                 batch_[batch_pos_].request_id,
                 static_cast<double>(batch_[batch_pos_].bytes));
  }
  sim_.schedule_in(params_.transfer_time(batch_[batch_pos_].bytes),
                   [this] { finish_transfer(); });
}

void Disk::finish_transfer() {
  const IoJob& job = batch_[batch_pos_];
  if (job.background) {
    ++destage_served_;
    --bg_in_batch_;
  } else {
    ++served_;
    bytes_served_ += job.bytes;
  }
  head_lba_ = job.lba + job.blocks;
  if (trace_ != nullptr && trace_->wants(obs::Kind::kSpan)) {
    trace_->emit(obs::Kind::kSpan, obs::kSpanComplete, sim_.now(), id_,
                 job.request_id, sim_.now() - job.arrival,
                 service_start_ - job.arrival);
  }
  // Background work carries no response-time signal: the policy learns
  // from foreground traffic only.
  if (!job.background) policy_->observe_completion(sim_.now() - job.arrival);
  if (on_complete_) {
    Completion c;
    c.request_id = job.request_id;
    c.disk_id = id_;
    c.arrival = job.arrival;
    c.service_start = service_start_;
    c.completion = sim_.now();
    c.bytes = job.bytes;
    c.background = job.background;
    on_complete_(c);
  }
  ++batch_pos_;
  if (batch_pos_ < batch_.size()) {
    // Coalesced batch: the next extent is (near-)adjacent, so the head
    // streams straight into it — no further positioning phase is billed.
    start_transfer();
  } else if (!scheduler_->empty()) {
    start_service();
  } else {
    go_idle();
  }
}

void Disk::go_idle() {
  enter(PowerState::kIdle);
  idle_since_ = sim_.now();
  idle_period_open_ = true;
  idle_spun_down_ = false;
  arm_idle_timer();
}

void Disk::arm_idle_timer() {
  assert(state_ == PowerState::kIdle);
  const auto timeout = policy_->idle_timeout(rng_);
  const bool tracing =
      trace_ != nullptr && trace_->wants(obs::Kind::kPolicy);
  if (!timeout.has_value()) {
    if (tracing) {
      trace_->emit(obs::Kind::kPolicy, obs::kPolicyStayIdle, sim_.now(), id_,
                   0, 0.0, policy_->trace_estimate());
    }
    return; // stay idle forever (never-spin-down)
  }
  if (*timeout <= 0.0) {
    if (tracing) {
      trace_->emit(obs::Kind::kPolicy, obs::kPolicySpinDownNow, sim_.now(),
                   id_, 0, *timeout, policy_->trace_estimate());
    }
    begin_spin_down();
    return;
  }
  if (tracing) {
    trace_->emit(obs::Kind::kPolicy, obs::kPolicyTimerArmed, sim_.now(), id_,
                 0, *timeout, policy_->trace_estimate());
  }
  idle_timer_ = sim_.schedule_in(*timeout, [this] {
    idle_timer_ = des::EventHandle{};
    if (trace_ != nullptr && trace_->wants(obs::Kind::kPolicy)) {
      trace_->emit(obs::Kind::kPolicy, obs::kPolicyThresholdFired, sim_.now(),
                   id_, 0, sim_.now() - idle_since_);
    }
    begin_spin_down();
  });
}

void Disk::disarm_idle_timer() {
  // Generation-counted handles make this safe unconditionally: cancelling an
  // inert or already-fired handle is a no-op returning false.
  sim_.cancel(idle_timer_);
  idle_timer_ = des::EventHandle{};
}

void Disk::begin_spin_down() {
  assert(state_ == PowerState::kIdle);
  idle_spun_down_ = true;
  ++spin_downs_;
  enter(PowerState::kSpinningDown);
  sim_.schedule_in(params_.spindown_s, [this] { finish_spin_down(); });
}

void Disk::finish_spin_down() {
  enter(PowerState::kStandby);
  // Requests that arrived during the spin-down force an immediate spin-up.
  if (!scheduler_->empty()) begin_spin_up();
}

void Disk::begin_spin_up() {
  assert(state_ == PowerState::kStandby);
  ++spin_ups_;
  enter(PowerState::kSpinningUp);
  sim_.schedule_in(params_.spinup_s, [this] { finish_spin_up(); });
}

void Disk::finish_spin_up() {
  if (!scheduler_->empty()) {
    start_service();
  } else {
    // Cannot normally happen (spin-ups are demand-driven), but a policy
    // extension could spin up proactively; settle into idle.
    go_idle();
  }
}

DiskMetrics Disk::metrics(double now) const {
  auto ledger = ledger_; // copy, then flush the copy to `now`
  ledger.flush(now);
  DiskMetrics m;
  m.disk_id = id_;
  for (std::size_t i = 0; i < kPowerStateCount; ++i) {
    m.state_time[i] = ledger.time_in(static_cast<PowerState>(i));
  }
  m.energy_j = m.energy(params_);
  // Per-disk share of the always-on normalizer: idle draw for the whole
  // window plus the service premium (seek/active over idle) for this disk's
  // busy time.  Farm totals are the disk-id-order sum of these.
  m.always_on_j = now * params_.idle_w +
                  m.time_in(PowerState::kPositioning) *
                      (params_.seek_w - params_.idle_w) +
                  m.time_in(PowerState::kTransfer) *
                      (params_.active_w - params_.idle_w);
  m.spin_ups = spin_ups_;
  m.spin_downs = spin_downs_;
  m.served = served_;
  m.bytes_served = bytes_served_;
  m.queued = scheduler_->size() - bg_in_scheduler_;
  m.in_service = batch_.size() - batch_pos_ - bg_in_batch_;
  m.destage_served = destage_served_;
  m.destage_pending = bg_in_scheduler_ + bg_in_batch_;
  m.positionings = positionings_;
  m.idle_periods = idle_periods_;
  return m;
}

} // namespace spindown::disk
