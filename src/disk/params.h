// params.h — physical disk characteristics (Table 2 of the paper).
//
// The reference device is the Seagate Barracuda ST3500630AS the authors
// simulated: 500 GB SATA, 7200 rpm, 72 MB/s sustained transfer, with the
// power figures of Figure 1 / Table 2.  All values are plain data so other
// devices can be described too; the paper's disk is
// `DiskParams::st3500630as()`.
#pragma once

#include <string>

#include "util/units.h"

namespace spindown::disk {

struct DiskParams {
  std::string model = "generic";
  util::Bytes capacity = util::gb(500.0);

  // Mechanics.
  double avg_seek_s = 0.0085;      ///< average seek time
  double avg_rotation_s = 0.00416; ///< average rotational latency
  double transfer_bps = 72.0e6;    ///< sustained transfer rate, bytes/second

  // Power by mode (Figure 1).
  util::Watts idle_w = 9.3;
  util::Watts standby_w = 0.8;
  util::Watts active_w = 13.0; ///< read/write transfer
  util::Watts seek_w = 12.6;
  util::Watts spinup_w = 24.0;
  util::Watts spindown_w = 9.3;

  // Transition latencies (Figure 1).
  double spinup_s = 15.0;
  double spindown_s = 10.0;

  /// Service time for a whole-file read of `bytes`:
  /// seek + rotational latency + transfer.  This is the paper's µ_i = f(s_i);
  /// the model is pluggable at the allocation layer, but the simulator uses
  /// this definition.
  double service_time(util::Bytes bytes) const {
    return avg_seek_s + avg_rotation_s +
           static_cast<double>(bytes) / transfer_bps;
  }

  /// Positioning part of a service (seek + rotation), billed at seek power.
  double position_time() const { return avg_seek_s + avg_rotation_s; }

  /// Geometry-aware seek time for a head travel of `distance_fraction` of
  /// the full stroke (0 = already on track, 1 = full sweep).  Linear curve
  ///   seek(d) = s_min + (s_max - s_min) * d
  /// with s_min = avg_seek_s / 3 (the settle floor: even a re-hit of the
  /// current track pays head settling) and s_max = (7/3) * avg_seek_s,
  /// calibrated so the mean over uniform independent head/target positions
  /// (E[|x - y|] = 1/3) is exactly avg_seek_s — Table 1/2's avg_seek_s
  /// keeps its meaning and FCFS under random placement matches the legacy
  /// constant-cost model in expectation.  Used only by geometry-aware I/O
  /// schedulers (io_scheduler.h); FCFS bills position_time() unchanged.
  double seek_time(double distance_fraction) const {
    const double s_min = avg_seek_s / 3.0;
    const double s_max = 3.0 * avg_seek_s - 2.0 * s_min;
    return s_min + (s_max - s_min) * distance_fraction;
  }

  /// Transfer part of a service, billed at active power.
  double transfer_time(util::Bytes bytes) const {
    return static_cast<double>(bytes) / transfer_bps;
  }

  /// Energy cost of one full standby round trip (down then up).
  util::Joules transition_energy() const {
    return spindown_w * spindown_s + spinup_w * spinup_s;
  }

  /// Break-even idleness threshold: the time a disk must remain in standby
  /// for the power saved (idle minus standby draw) to repay one spin-down +
  /// spin-up.  The paper sets its default idleness threshold to exactly this
  /// (Table 2: 53.3 s):
  ///   (9.3*10 + 24*15) / (9.3 - 0.8) = 453 / 8.5 = 53.29 s.
  double break_even_threshold() const {
    return transition_energy() / (idle_w - standby_w);
  }

  /// The paper's simulated device (Table 2).
  static DiskParams st3500630as();

  /// A representative low-power 2.5-inch 5400 rpm drive (typical datasheet
  /// values, not a specific product).  The paper's introduction points at
  /// "new energy efficient disks" as the device-level answer; this profile
  /// lets the benches quantify how the trade-off shifts with the hardware
  /// (much cheaper transitions, much lower idle draw).
  static DiskParams laptop_2_5in();
};

} // namespace spindown::disk
