#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace spindown::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
} // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // Take the top 53 bits: uniform in [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64(); // full 64-bit range requested
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + v % span;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument{"exponential rate must be > 0"};
  // 1 - uniform01() is in (0,1], so the log is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument{"poisson mean must be >= 0"};
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the large
  // means we use it for (batch sizes, request counts).
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

Rng Rng::split() {
  return Rng{next_u64()};
}

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) return;
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument{
          "alias table weights must be finite and >= 0"};
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument{"alias table weights sum to zero"};
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Scaled probabilities; Vose's stable partition into small/large buckets.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers are probability-1 buckets.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  assert(!prob_.empty());
  const std::size_t i =
      static_cast<std::size_t>(rng.uniform_int(0, prob_.size() - 1));
  return rng.uniform01() < prob_[i] ? i : alias_[i];
}

} // namespace spindown::util
