// rng.h — deterministic pseudo-random number generation.
//
// Simulation experiments must be reproducible from a single 64-bit seed, so
// we carry our own generator instead of relying on the (implementation
// defined) std:: distributions.  The generator is xoshiro256**, seeded via
// SplitMix64, which is the standard, well-tested combination; all sampling
// routines on top of it are written out explicitly so every platform produces
// bit-identical streams.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace spindown::util {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** by Blackman & Vigna — fast, 256-bit state, passes BigCrush.
class Rng {
public:
  /// Seed via SplitMix64 expansion; the default seed gives a usable stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi] (unbiased, via rejection).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential variate with the given rate (mean 1/rate); rate must be > 0.
  double exponential(double rate);

  /// Standard normal via Box–Muller (no cached spare, keeps state minimal).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64 where Knuth's product underflows).
  std::uint64_t poisson(double mean);

  /// Fisher–Yates shuffle of a span, deterministic given the stream state.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(0, i - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Split off an independent generator (for parallel sweeps): the child is
  /// seeded from this stream, so a parent seed fully determines the family.
  Rng split();

private:
  std::array<std::uint64_t, 4> state_{};
};

/// Walker alias method for O(1) sampling from a fixed discrete distribution.
/// Build cost is O(n); ideal for the Zipf popularity table with n = 40,000+.
class AliasTable {
public:
  AliasTable() = default;
  /// Weights need not be normalized; they must be non-negative, not all zero.
  explicit AliasTable(std::span<const double> weights);

  /// Sample an index in [0, size()).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

} // namespace spindown::util
