// table.h — aligned console tables for bench/example output.
//
// The benches print the same series the paper plots; a readable fixed-width
// table is the terminal equivalent of a figure.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace spindown::util {

class TablePrinter {
public:
  /// Column headers fix the column count; extra row cells are dropped,
  /// missing ones rendered empty.
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: arbitrary streamable values.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(cellify(values)), ...);
    add_row(std::move(cells));
  }

  /// Render with a header rule; columns padded to max width + 2.
  void print(std::ostream& out) const;

private:
  template <typename T>
  static std::string cellify(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string{v};
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace spindown::util
