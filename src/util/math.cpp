#include "util/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spindown::util {

double generalized_harmonic(std::size_t n, double a) {
  // Summing ascending k loses precision for large n; descending keeps the
  // small tail terms from being absorbed.  n <= a few million in practice.
  double sum = 0.0;
  for (std::size_t k = n; k >= 1; --k) {
    sum += std::pow(static_cast<double>(k), -a);
  }
  return sum;
}

double paper_zipf_theta() {
  return std::log(0.6) / std::log(0.4);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  assert(!x.empty());
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

LinearFit log_log_fit(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log10(x[i]));
      ly.push_back(std::log10(y[i]));
    }
  }
  if (lx.size() < 2) return {};
  return linear_fit(lx, ly);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double v : xs) sum += v;
  return sum / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace spindown::util
