// csv.h — minimal CSV reading/writing for traces and bench output.
//
// The trace format is deliberately simple (no embedded newlines); quoting is
// supported for robustness when fields contain commas or quotes.
#pragma once

#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spindown::util {

/// Streaming CSV writer.  Rows are written immediately; no buffering beyond
/// the underlying stream.
class CsvWriter {
public:
  /// Write to an externally owned stream (e.g. std::cout).
  explicit CsvWriter(std::ostream& out);
  /// Write to a file, truncating; throws std::runtime_error if unopenable.
  explicit CsvWriter(const std::filesystem::path& path);

  void write_row(std::initializer_list<std::string_view> fields);
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: arbitrary streamable values in one row.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(to_field(values)), ...);
    write_row(fields);
  }

private:
  template <typename T>
  static std::string to_field(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string{v};
    } else {
      return std::to_string(v);
    }
  }
  static std::string escape(std::string_view field);

  std::ofstream file_;
  std::ostream* out_;
};

/// Parse one CSV line into fields (handles double-quoted fields with "" as an
/// escaped quote).  Exposed for testing.
std::vector<std::string> split_csv_line(std::string_view line);

/// Whole-file CSV reader; small traces fit easily in memory.
class CsvReader {
public:
  explicit CsvReader(const std::filesystem::path& path);

  /// Next row, or nullopt at EOF.  Blank lines are skipped.
  std::optional<std::vector<std::string>> next();

private:
  std::ifstream in_;
};

} // namespace spindown::util
