// binary_heap.h — the d-ary heap the Pack_Disks algorithm and the DES event
// calendar are built on.
//
// The paper's complexity argument (Lemma 7) relies on two heap properties:
//   * O(n) construction from an unordered collection, and
//   * O(log n) insert / remove-max.
// std::priority_queue provides both but hides its container; we keep our own
// small implementation so tests can verify the heap invariant directly and
// so the allocator code reads like the paper's pseudocode (heaps S and L of
// "size-intensive" / "load-intensive" elements).
//
// Two extensions serve the simulation kernel:
//   * `Arity` generalises the branching factor.  The default of 2 keeps the
//     Pack_Disks semantics (and its invariant tests) untouched; the kernel
//     instantiates Arity = 4, which trades slightly more comparisons per
//     level for half the levels and better cache behaviour on small keys (a
//     4-ary node's children span a single 64-byte line at 16 bytes each).
//   * `MoveObserver` is called as obs(element, index) whenever push / pop /
//     remove_at settles an element at a position, letting the caller
//     maintain an element -> index map and delete arbitrary elements in
//     O(depth) via remove_at (the kernel cancels timers this way; a timer
//     far in the future sits in a leaf, so its removal is O(1) in
//     practice).  The default observer is a no-op that inlines to nothing.
//     Note: the O(n) heapify constructor does not notify — start from an
//     empty heap when using an observer.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace spindown::util {

struct NoopMoveObserver {
  template <typename T>
  void operator()(const T&, std::size_t) const noexcept {}
};

/// D-ary max-heap over T ordered by Compare (std::less -> max-heap, like
/// std::priority_queue).  Construction from a vector is O(n) (Floyd).
template <typename T, typename Compare = std::less<T>, std::size_t Arity = 2,
          typename MoveObserver = NoopMoveObserver>
class BinaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

public:
  BinaryHeap() = default;
  explicit BinaryHeap(Compare cmp, MoveObserver obs = MoveObserver{})
      : cmp_(std::move(cmp)), obs_(std::move(obs)) {}

  /// O(n) heapify of an existing collection.  Does not notify the observer.
  explicit BinaryHeap(std::vector<T> items, Compare cmp = Compare{})
      : data_(std::move(items)), cmp_(std::move(cmp)) {
    if (data_.size() > 1) {
      for (std::size_t i = parent(data_.size() - 1) + 1; i-- > 0;) sift_down(i);
    }
  }

  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }

  /// Pre-size the backing array (the event calendar uses this so steady-state
  /// pushes never reallocate).
  void reserve(std::size_t n) { data_.reserve(n); }

  /// Largest element (by Compare).  Precondition: non-empty.
  const T& top() const {
    assert(!data_.empty());
    return data_.front();
  }

  void push(T value) {
    data_.push_back(std::move(value));
    sift_up(data_.size() - 1);
  }

  /// Remove and return the largest element.  Precondition: non-empty.
  T pop() { return remove_at(0); }

  /// Remove and return the element at backing-array position `i` (found via
  /// the MoveObserver's index map), restoring the invariant.  O(depth); O(1)
  /// when the element is a leaf that compares below its replacement's path.
  T remove_at(std::size_t i) {
    assert(i < data_.size());
    T out = std::move(data_[i]);
    const std::size_t last = data_.size() - 1;
    if (i != last) {
      data_[i] = std::move(data_[last]);
      data_.pop_back();
      if (i > 0 && cmp_(data_[parent(i)], data_[i])) {
        sift_up(i);
      } else {
        sift_down(i);
      }
    } else {
      data_.pop_back();
    }
    return out;
  }

  void clear() { data_.clear(); }

  /// Read-only view of the backing array (tests verify the invariant on it).
  const std::vector<T>& raw() const { return data_; }

  /// True iff every parent >= child under Compare; O(n).
  bool verify_invariant() const {
    for (std::size_t i = 1; i < data_.size(); ++i) {
      if (cmp_(data_[parent(i)], data_[i])) return false;
    }
    return true;
  }

private:
  static std::size_t parent(std::size_t i) { return (i - 1) / Arity; }

  // Both sifts move the displaced element as a "hole" (one move per level
  // instead of a three-move swap); the placement decisions are identical to
  // the textbook swap formulation, so layouts (and pop order under ties)
  // are unchanged.

  void sift_up(std::size_t i) {
    T moving = std::move(data_[i]);
    while (i > 0) {
      const std::size_t p = parent(i);
      if (!cmp_(data_[p], moving)) break;
      data_[i] = std::move(data_[p]);
      obs_(data_[i], i);
      i = p;
    }
    data_[i] = std::move(moving);
    obs_(data_[i], i);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    if (n == 0) return;
    T moving = std::move(data_[i]);
    for (;;) {
      const std::size_t first = Arity * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + Arity, n);
      std::size_t largest = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (cmp_(data_[largest], data_[c])) largest = c;
      }
      if (!cmp_(moving, data_[largest])) break;
      data_[i] = std::move(data_[largest]);
      obs_(data_[i], i);
      i = largest;
    }
    data_[i] = std::move(moving);
    obs_(data_[i], i);
  }

  std::vector<T> data_;
  Compare cmp_;
  MoveObserver obs_;
};

} // namespace spindown::util
