// binary_heap.h — the max-heap the Pack_Disks algorithm is built on.
//
// The paper's complexity argument (Lemma 7) relies on two heap properties:
//   * O(n) construction from an unordered collection, and
//   * O(log n) insert / remove-max.
// std::priority_queue provides both but hides its container; we keep our own
// small implementation so tests can verify the heap invariant directly and
// so the allocator code reads like the paper's pseudocode (heaps S and L of
// "size-intensive" / "load-intensive" elements).
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace spindown::util {

/// Binary max-heap over T ordered by Compare (std::less -> max-heap, like
/// std::priority_queue).  Construction from a vector is O(n) (Floyd).
template <typename T, typename Compare = std::less<T>>
class BinaryHeap {
public:
  BinaryHeap() = default;
  explicit BinaryHeap(Compare cmp) : cmp_(std::move(cmp)) {}

  /// O(n) heapify of an existing collection.
  explicit BinaryHeap(std::vector<T> items, Compare cmp = Compare{})
      : data_(std::move(items)), cmp_(std::move(cmp)) {
    if (data_.size() > 1) {
      for (std::size_t i = parent(data_.size() - 1) + 1; i-- > 0;) sift_down(i);
    }
  }

  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }

  /// Largest element (by Compare).  Precondition: non-empty.
  const T& top() const {
    assert(!data_.empty());
    return data_.front();
  }

  void push(T value) {
    data_.push_back(std::move(value));
    sift_up(data_.size() - 1);
  }

  /// Remove and return the largest element.  Precondition: non-empty.
  T pop() {
    assert(!data_.empty());
    T out = std::move(data_.front());
    data_.front() = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) sift_down(0);
    return out;
  }

  void clear() { data_.clear(); }

  /// Read-only view of the backing array (tests verify the invariant on it).
  const std::vector<T>& raw() const { return data_; }

  /// True iff every parent >= child under Compare; O(n).
  bool verify_invariant() const {
    for (std::size_t i = 1; i < data_.size(); ++i) {
      if (cmp_(data_[parent(i)], data_[i])) return false;
    }
    return true;
  }

private:
  static std::size_t parent(std::size_t i) { return (i - 1) / 2; }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t p = parent(i);
      if (!cmp_(data_[p], data_[i])) break;
      using std::swap;
      swap(data_[p], data_[i]);
      i = p;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    for (;;) {
      std::size_t largest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && cmp_(data_[largest], data_[l])) largest = l;
      if (r < n && cmp_(data_[largest], data_[r])) largest = r;
      if (largest == i) return;
      using std::swap;
      swap(data_[i], data_[largest]);
      i = largest;
    }
  }

  std::vector<T> data_;
  Compare cmp_;
};

} // namespace spindown::util
