// spsc_ring.h — fixed-capacity lock-free single-producer/single-consumer
// ring buffer.
//
// The fleet router (sys/fleet.cpp) ships pre-routed submission batches to
// shard workers over one of these per direction; the PR-7 mailbox it
// replaces paid a mutex acquisition plus a condition-variable signal per
// window on the hot path.  Here the steady-state transfer is two atomic
// operations — a release store by the producer, an acquire load by the
// consumer — with head and tail on separate cache lines so neither side
// ping-pongs the other's cursor.  Each side additionally caches its last
// view of the opposite cursor, so a push/pop only touches the shared
// counter it owns until the cached view says the ring might be full/empty.
//
// try_push/try_pop are wait-free.  The blocking push/pop wrappers spin
// briefly, then yield, then sleep in short fixed increments; they return
// false once close() has been called (and, for pop, the ring has drained),
// which is the shutdown/abort path.  close() may be called by either side
// or by a third thread.
//
// Determinism: this header is pure synchronization — no wall-clock reads,
// no ambient entropy (sleep_for takes a duration and never observes a
// clock), so anything built on it stays bit-deterministic as long as the
// *values* transferred do not depend on timing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace spindown::util {

/// Destructive-interference padding.  std::hardware_destructive_
/// interference_size is ABI-unstable (GCC warns when it leaks into public
/// headers), so pin the conventional 64-byte line.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
public:
  /// Capacity is rounded up to a power of two (minimum 2) so the cursor
  /// arithmetic is a mask, never a modulo.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) {
      if (cap > (std::size_t{1} << 62)) {
        throw std::invalid_argument{"SpscRing: capacity overflow"};
      }
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Occupancy snapshot; exact only when neither side is mid-operation.
  std::size_t size() const {
    const auto tail = tail_.load(std::memory_order_acquire);
    const auto head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty() const { return size() == 0; }

  /// Producer side.  Moves from `value` and returns true when a slot is
  /// free; leaves `value` untouched and returns false when the ring is
  /// full.  Wait-free.
  bool try_push(T& value) {
    const auto tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Moves the oldest element into `out` and returns true;
  /// returns false when the ring is empty.  Wait-free.
  bool try_pop(T& out) {
    const auto head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[static_cast<std::size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Blocking push: retries with backoff until a slot frees up.  Returns
  /// false — without consuming `value` — once the ring is closed.
  bool push(T value) {
    Backoff backoff;
    for (;;) {
      if (closed()) return false;
      if (try_push(value)) return true;
      backoff.pause();
    }
  }

  /// Blocking pop: retries with backoff until an element arrives.  Returns
  /// false once the ring is closed *and* drained — elements pushed before
  /// close() are still delivered.
  bool pop(T& out) {
    Backoff backoff;
    while (!try_pop(out)) {
      if (closed() && empty()) return false;
      backoff.pause();
    }
    return true;
  }

  /// Shutdown/abort signal: wakes any blocked push/pop (they return false).
  /// Idempotent; callable from any thread.
  void close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

private:
  /// Spin a little (the common stall is the peer being one window behind),
  /// then get off the core: under-subscribed fleets park workers here for
  /// most of the run, and on an oversubscribed host a spinning peer would
  /// steal the timeslice the other side needs to make progress.
  struct Backoff {
    std::uint32_t spins = 0;
    void pause() {
      ++spins;
      if (spins < 64) return;           // busy-spin: peer is likely active
      if (spins < 256 || (spins & 7) != 0) {
        std::this_thread::yield();
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds{50});
    }
  };

  std::vector<T> slots_;
  std::size_t mask_ = 1;
  /// Producer cursor plus the producer's cached view of the consumer's.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLineSize) std::uint64_t head_cache_ = 0;
  /// Consumer cursor plus the consumer's cached view of the producer's.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLineSize) std::uint64_t tail_cache_ = 0;
  alignas(kCacheLineSize) std::atomic<bool> closed_{false};
};

} // namespace spindown::util
