// cli.h — tiny argument parser shared by the bench and example binaries.
//
// Supports "--flag", "--key value" and "--key=value".  Unknown arguments are
// collected as positionals.  Just enough for reproducible experiment CLIs;
// not a general-purpose parser.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace spindown::util {

class Cli {
public:
  Cli(int argc, char** argv);

  /// True if "--name" appeared (with or without a value).
  bool has(const std::string& name) const;

  /// Value of "--name value" / "--name=value", or fallback.  A repeated
  /// option keeps its last value here; get_all() sees every occurrence.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Every value of a repeated option, in command-line order (empty when
  /// the option never appeared).  Lets sweep axes stack: --sweep a --sweep b.
  std::vector<std::string> get_all(const std::string& name) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& program() const { return program_; }

private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::pair<std::string, std::string>> ordered_options_;
  std::vector<std::string> positionals_;
};

} // namespace spindown::util
