// units.h — unit conventions and formatting helpers used across the library.
//
// The paper (and disk vendors) use SI units: 1 MB = 1e6 bytes, the Seagate
// ST3500630AS is "500 GB" = 5e11 bytes and transfers 72 MB/s = 7.2e7 B/s.
// We therefore keep *all* byte quantities in SI and all times in seconds
// (double).  Energies are Joules, powers are Watts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace spindown::util {

/// Bytes are exact; use a 64-bit unsigned integer everywhere.
using Bytes = std::uint64_t;

/// Simulated time, wall-clock seconds since simulation start.
using Seconds = double;

/// Power in Watts and energy in Joules (1 J = 1 W * 1 s).
using Watts = double;
using Joules = double;

inline constexpr Bytes kKB = 1'000ULL;
inline constexpr Bytes kMB = 1'000'000ULL;
inline constexpr Bytes kGB = 1'000'000'000ULL;
inline constexpr Bytes kTB = 1'000'000'000'000ULL;

inline constexpr Seconds kMinute = 60.0;
inline constexpr Seconds kHour = 3600.0;
inline constexpr Seconds kDay = 86400.0;

/// Logical-block size for disk geometry (LBA extents).  512-byte sectors:
/// the unit real drives address, small enough that every file in the
/// paper's catalogs spans many blocks.
inline constexpr Bytes kBlockBytes = 512ULL;

/// Extent length of a byte count in kBlockBytes blocks (ceiling).
constexpr std::uint64_t blocks_of(Bytes bytes) {
  return (bytes + kBlockBytes - 1) / kBlockBytes;
}

/// Convenience constructors so call sites read like the paper's tables.
constexpr Bytes mb(double v) {
  return static_cast<Bytes>(v * static_cast<double>(kMB));
}
constexpr Bytes gb(double v) {
  return static_cast<Bytes>(v * static_cast<double>(kGB));
}
constexpr Bytes tb(double v) {
  return static_cast<Bytes>(v * static_cast<double>(kTB));
}

/// "544 MB", "12.86 TB", "970 B" — human-readable SI formatting.
std::string format_bytes(Bytes b);

/// "53.3 s", "1.5 h", "12 ms" — pick the natural time unit.
std::string format_seconds(Seconds s);

/// Fixed-precision double without trailing-zero noise ("0.85", "12").
std::string format_double(double v, int max_decimals = 3);

/// Shortest decimal string that parses back to exactly `v` ("10", "0.25",
/// "0.3333333333333333").  For the PolicySpec/WorkloadSpec key round-trip:
/// parse(spec()) must reproduce the value bit for bit.
std::string format_roundtrip(double v);

/// Strict numeric parse: the whole string must be one finite double;
/// nullopt on trailing garbage, empty input, "nan"/"inf", or overflow.
/// The shared backend of every spec-key parser (a NaN threshold or rate
/// would corrupt the event calendar / hang the arrival loop downstream).
std::optional<double> parse_finite_double(const std::string& s);

/// Byte count with an optional SI suffix — "16g", "0.5gb", "4096", "100m",
/// "64kb", "970b" (suffix case-insensitive; 1 k = 1e3 as everywhere in this
/// tree).  nullopt on garbage, negatives, or non-finite values.  The backend
/// of CacheSpec/CatalogSpec capacity keys.
std::optional<Bytes> parse_bytes(const std::string& s);

/// Canonical spec-key rendering of a byte count such that
/// parse_bytes(format_bytes_spec(b)) == b exactly: the largest SI suffix
/// that divides b evenly ("16g", "1500m", "970"), plain digits otherwise.
std::string format_bytes_spec(Bytes b);

} // namespace spindown::util
