// math.h — small numeric helpers shared by the workload and core modules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spindown::util {

/// Generalized harmonic number H_n^(a) = sum_{k=1..n} k^(-a).
/// The paper's Zipf normalizer uses a = 1 - theta with
/// theta = log 0.6 / log 0.4.
double generalized_harmonic(std::size_t n, double a);

/// The paper's Zipf skew constant theta = log 0.6 / log 0.4 (~0.5575), so the
/// popularity exponent 1 - theta is ~0.4425.  Kept as a function (not a
/// constant) so its derivation is visible at call sites.
double paper_zipf_theta();

/// Result of an ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0; ///< coefficient of determination
};

/// Least-squares fit; x and y must be the same non-zero length.
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fit in log10-log10 space, skipping non-positive points.  Used to check the
/// paper's claim that the NERSC size histogram "decreases almost linearly in
/// the log-log scale".
LinearFit log_log_fit(std::span<const double> x, std::span<const double> y);

/// Arithmetic mean (0 for empty input).
double mean(std::span<const double> xs);

/// Exact percentile by sorting a copy; p in [0,100], linear interpolation.
double percentile(std::vector<double> xs, double p);

} // namespace spindown::util
