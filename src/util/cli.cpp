#include "util/cli.h"

#include <cstdlib>

namespace spindown::util {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      ordered_options_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // "--key value" when the next token is not itself an option.
    if (i + 1 < argc && std::string_view{argv[i + 1]}.rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
      ordered_options_.emplace_back(arg, argv[i]);
    } else {
      options_[arg] = "";
      ordered_options_.emplace_back(arg, "");
    }
  }
}

std::vector<std::string> Cli::get_all(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : ordered_options_) {
    if (key == name) out.push_back(value);
  }
  return out;
}

bool Cli::has(const std::string& name) const {
  return options_.contains(name);
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() || it->second.empty() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

} // namespace spindown::util
