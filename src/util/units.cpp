#include "util/units.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spindown::util {

std::string format_double(double v, int max_decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", max_decimals, v);
  std::string s{buf.data()};
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string format_roundtrip(double v) {
  std::array<char, 40> buf{};
  // Integers print plainly ("10", not the "1e+01" a short %g would pick).
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf.data(), buf.size(), "%.0f", v);
    return std::string{buf.data()};
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf.data(), buf.size(), "%.*g", precision, v);
    if (std::strtod(buf.data(), nullptr) == v) break;
  }
  return std::string{buf.data()};
}

std::optional<double> parse_finite_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<Bytes> parse_bytes(const std::string& s) {
  if (s.empty()) return std::nullopt;
  // Split the trailing alphabetic suffix off the numeric part.
  std::size_t cut = s.size();
  while (cut > 0 && std::isalpha(static_cast<unsigned char>(s[cut - 1]))) {
    --cut;
  }
  std::string suffix = s.substr(cut);
  for (auto& c : suffix) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  double unit = 1.0;
  if (suffix == "k" || suffix == "kb") unit = static_cast<double>(kKB);
  else if (suffix == "m" || suffix == "mb") unit = static_cast<double>(kMB);
  else if (suffix == "g" || suffix == "gb") unit = static_cast<double>(kGB);
  else if (suffix == "t" || suffix == "tb") unit = static_cast<double>(kTB);
  else if (!suffix.empty() && suffix != "b") return std::nullopt;
  const auto v = parse_finite_double(s.substr(0, cut));
  if (!v.has_value() || *v < 0.0) return std::nullopt;
  const double bytes = *v * unit;
  if (bytes > 9.2e18) return std::nullopt; // would overflow Bytes
  return static_cast<Bytes>(bytes);
}

std::string format_bytes_spec(Bytes b) {
  if (b >= kTB && b % kTB == 0) return std::to_string(b / kTB) + "t";
  if (b >= kGB && b % kGB == 0) return std::to_string(b / kGB) + "g";
  if (b >= kMB && b % kMB == 0) return std::to_string(b / kMB) + "m";
  if (b >= kKB && b % kKB == 0) return std::to_string(b / kKB) + "k";
  return std::to_string(b);
}

std::string format_bytes(Bytes b) {
  const double v = static_cast<double>(b);
  if (b >= kTB) return format_double(v / static_cast<double>(kTB), 2) + " TB";
  if (b >= kGB) return format_double(v / static_cast<double>(kGB), 2) + " GB";
  if (b >= kMB) return format_double(v / static_cast<double>(kMB), 2) + " MB";
  if (b >= kKB) return format_double(v / static_cast<double>(kKB), 2) + " KB";
  return format_double(v, 0) + " B";
}

std::string format_seconds(Seconds s) {
  const double a = std::abs(s);
  if (a >= kHour) return format_double(s / kHour, 2) + " h";
  if (a >= kMinute) return format_double(s / kMinute, 2) + " min";
  if (a >= 1.0) return format_double(s, 2) + " s";
  return format_double(s * 1000.0, 2) + " ms";
}

} // namespace spindown::util
