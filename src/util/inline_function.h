// inline_function.h — move-only callable with a small-buffer optimisation.
//
// The simulation kernel fires millions of callbacks per run; wrapping each
// one in std::function costs a heap allocation whenever the capture exceeds
// the implementation's tiny inline buffer (16 bytes on libstdc++ — a `this`
// pointer plus anything else already spills).  InlineFunction keeps a
// caller-chosen inline buffer (64 bytes by default, enough for every capture
// in the simulator's hot path) and only falls back to the heap for oversized
// or potentially-throwing-move captures.
//
// Differences from std::function, on purpose:
//   * move-only (callbacks are scheduled once and fired once; copying them
//     is never needed and forbidding it keeps captures cheap),
//   * no target_type()/target() introspection,
//   * moves are always noexcept (a requirement for storing these in
//     vectors/slabs that relocate), which is why a type with a throwing move
//     constructor is heap-allocated even if it would fit the buffer.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace spindown::util {

template <typename Signature, std::size_t Capacity = 64>
class InlineFunction; // primary template left undefined

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}

  /// Wrap any callable invocable as R(Args...).  Fits-and-nothrow-movable
  /// targets live in the inline buffer; everything else is heap-allocated.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {
    emplace<D>(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Invoke the target.  Precondition: non-empty.
  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  /// Destroy the target (releasing its captures) and become empty.
  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// True if a target of type D would be stored inline (no heap).
  template <typename D>
  static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<D>>;
  }

private:
  enum class Op { kDestroy, kMove };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  /// Trivial inline targets (every `this`-capturing lambda on the hot path)
  /// need no manage function at all: manage_ == nullptr encodes "move is a
  /// buffer copy, destroy is a no-op", saving an indirect call per move and
  /// per destruction.
  template <typename D>
  static constexpr bool trivial_inline =
      fits_inline<D> && std::is_trivially_copyable_v<D> &&
      std::is_trivially_destructible_v<D>;

  template <typename D, typename F>
  void emplace(F&& f) {
    if constexpr (trivial_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](unsigned char* s, Args... a) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(a)...);
      };
      manage_ = nullptr;
    } else if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](unsigned char* s, Args... a) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(a)...);
      };
      manage_ = [](Op op, unsigned char* s, unsigned char* dst) noexcept {
        D* obj = std::launder(reinterpret_cast<D*>(s));
        if (op == Op::kMove) ::new (static_cast<void*>(dst)) D(std::move(*obj));
        obj->~D();
      };
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = [](unsigned char* s, Args... a) -> R {
        return (**std::launder(reinterpret_cast<D**>(s)))(
            std::forward<Args>(a)...);
      };
      manage_ = [](Op op, unsigned char* s, unsigned char* dst) noexcept {
        D** p = std::launder(reinterpret_cast<D**>(s));
        if (op == Op::kMove) {
          // Steal the pointer; the source's slot is trivially dead after.
          ::new (static_cast<void*>(dst)) D*(*p);
        } else {
          delete *p;
        }
      };
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMove, other.buf_, buf_);
      manage_ = other.manage_;
      other.manage_ = nullptr;
    } else {
      // Trivial inline target: blind copy of the whole buffer beats an
      // indirect call (the copy is four vector stores).
      std::memcpy(buf_, other.buf_, Capacity);
      manage_ = nullptr;
    }
    invoke_ = other.invoke_;
    other.invoke_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  R (*invoke_)(unsigned char*, Args...) = nullptr;
  void (*manage_)(Op, unsigned char*, unsigned char*) noexcept = nullptr;
};

} // namespace spindown::util
