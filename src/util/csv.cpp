#include "util/csv.h"

#include <stdexcept>

namespace spindown::util {

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

CsvWriter::CsvWriter(const std::filesystem::path& path)
    : file_(path), out_(&file_) {
  if (!file_) {
    throw std::runtime_error{"CsvWriter: cannot open " + path.string()};
  }
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (auto f : fields) {
    if (!first) *out_ << ',';
    *out_ << escape(f);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *out_ << ',';
    *out_ << escape(f);
    first = false;
  }
  *out_ << '\n';
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

CsvReader::CsvReader(const std::filesystem::path& path) : in_(path) {
  if (!in_) {
    throw std::runtime_error{"CsvReader: cannot open " + path.string()};
  }
}

std::optional<std::vector<std::string>> CsvReader::next() {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty() || line == "\r") continue;
    return split_csv_line(line);
  }
  return std::nullopt;
}

} // namespace spindown::util
