#include "util/table.h"

#include <algorithm>
#include <iomanip>

namespace spindown::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

} // namespace spindown::util
