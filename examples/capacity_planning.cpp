// capacity_planning.cpp — size a disk farm for a workload under response
// constraints.
//
// The paper's conclusions: "The results of this paper can also be used as a
// tool for obtaining reliable estimates on the size of a disk farm needed to
// support a given workload of requests while satisfying constraints on I/O
// response times."  This example is that tool: given a workload description
// (file count, size skew, request rate), it sweeps the load constraint L,
// packs with Pack_Disks, verifies each candidate with a short simulation,
// and reports the smallest farm meeting a target mean response time,
// together with its predicted power bill.
//
//   $ ./capacity_planning --files 40000 --rate 4.0 --target-resp 12
//     (also: --kwh-price 0.12, --seed 1)
#include <iostream>
#include <optional>

#include "core/bounds.h"
#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/queueing.h"
#include "sys/experiment.h"
#include "sys/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/catalog.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--files 40000] [--rate 4.0] [--target-resp 12]"
                 " [--kwh-price 0.12] [--seed 1]\n";
    return 0;
  }
  const auto n_files = static_cast<std::size_t>(cli.get_int("files", 40'000));
  const double rate = cli.get_double("rate", 4.0);
  const double target_resp = cli.get_double("target-resp", 12.0);
  const double kwh_price = cli.get_double("kwh-price", 0.12);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = n_files;
  util::Rng rng{seed};
  const auto catalog = workload::generate_catalog(spec, rng);

  std::cout << "workload: " << catalog.size() << " files, "
            << util::format_bytes(catalog.total_bytes()) << ", R = " << rate
            << " req/s, target mean response " << target_resp << " s\n\n";

  // Candidate packings across the L sweep, each simulated briefly.
  std::vector<double> loads{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  std::vector<sys::ExperimentConfig> configs;
  std::vector<std::uint32_t> farm_sizes;
  std::vector<double> mg1_predictions;
  for (const double l : loads) {
    core::LoadModel model;
    model.rate = rate;
    model.load_fraction = l;
    core::PackDisks pack;
    const auto a = pack.allocate(core::normalize(catalog, model));
    // Closed-form prediction (M/G/1 per disk) before any simulation runs.
    mg1_predictions.push_back(
        core::predict_mg1(catalog, a, model).mean_response);
    sys::ExperimentConfig cfg;
    cfg.catalog = &catalog;
    cfg.mapping = a.disk_of;
    cfg.num_disks = a.disk_count;
    cfg.workload = sys::WorkloadSpec::poisson(rate, 2000.0);
    cfg.seed = seed;
    configs.push_back(std::move(cfg));
    farm_sizes.push_back(a.disk_count);
  }
  const auto results = sys::run_sweep(configs);

  util::TablePrinter table{{"L", "disks", "predicted resp (s)",
                            "mean resp (s)", "p95 (s)", "avg power (W)",
                            "energy $/yr", "meets target"}};
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto& r = results[i];
    const double yearly_kwh = r.power.average_power * 24.0 * 365.0 / 1000.0;
    const bool ok = r.response.mean() <= target_resp;
    if (ok) {
      // Prefer the fewest disks among feasible candidates; ties go to the
      // lower power draw.
      if (!best.has_value() || farm_sizes[i] < farm_sizes[*best] ||
          (farm_sizes[i] == farm_sizes[*best] &&
           r.power.average_power < results[*best].power.average_power)) {
        best = i;
      }
    }
    table.row(util::format_double(loads[i], 1), farm_sizes[i],
              util::format_double(mg1_predictions[i], 2),
              util::format_double(r.response.mean(), 2),
              util::format_double(r.response.p95(), 2),
              util::format_double(r.power.average_power, 1),
              util::format_double(yearly_kwh * kwh_price, 0),
              ok ? "yes" : "no");
  }
  table.print(std::cout);

  const auto report = core::bound_report(
      core::normalize(catalog, [&] {
        core::LoadModel m;
        m.rate = rate;
        m.load_fraction = 1.0;
        return m;
      }()));
  std::cout << "\nabsolute floor (space/load lower bound, L=1): "
            << report.lower_bound << " disks\n";

  if (best.has_value()) {
    std::cout << "\nrecommendation: L = " << loads[*best] << " -> "
              << farm_sizes[*best] << " disks, mean response "
              << util::format_double(results[*best].response.mean(), 2)
              << " s, " << util::format_double(
                     results[*best].power.average_power, 0)
              << " W average draw\n";
  } else {
    std::cout << "\nno candidate met the target; lower L further or add "
                 "spindles beyond the packing (e.g. replicas)\n";
  }
  return 0;
}
