// policy_explorer.cpp — explore spin-down policies on a single disk.
//
// The paper's §2 surveys the dynamic power management literature: fixed
// break-even thresholds are 2-competitive, randomized thresholds get
// e/(e-1).  This example makes those results tangible: it feeds one disk a
// stream of idle gaps drawn from a chosen distribution, runs every policy,
// and reports measured energy and the competitive ratio against the
// offline optimum (computed from the realized gaps).
//
//   $ ./policy_explorer --gaps 2000 --dist exp --mean-gap 60 [--seed 1]
//     [--scheduler fcfs|sstf|scan|clook|batch] [--policy <spec>]
//   distributions: exp | uniform | bimodal (short bursts + long lulls)
//
// The online policies of src/adapt/ run in the same harness — they see the
// gap sequence once, learning from the observe_idle/observe_completion taps
// as they go, and pick their own point on the energy/response frontier
// (the ewma predictor spends energy headroom on response, the share
// combiner hugs the best fixed threshold).  --policy adds one extra row
// from a PolicySpec key ("fixed:30", "ewma:0.4", "share:20", "slack:10").
//
// --scheduler selects the disk's service discipline (sys::SchedulerSpec);
// with the default single-outstanding-request gap pattern the order cannot
// change, but geometry-aware disciplines replace the constant Table-2
// positioning cost with the calibrated seek curve, shifting both energy and
// response — a one-disk view of the ablation_schedulers grid.
#include <iostream>
#include <vector>

#include "des/simulation.h"
#include "disk/disk.h"
#include "disk/io_scheduler.h"
#include "disk/spin_policy.h"
#include "sys/system.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace spindown;

std::vector<double> draw_gaps(const std::string& dist, std::size_t n,
                              double mean_gap, util::Rng& rng) {
  std::vector<double> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (dist == "uniform") {
      gaps.push_back(rng.uniform(0.0, 2.0 * mean_gap));
    } else if (dist == "bimodal") {
      // 80% short gaps (burst), 20% long lulls — adversarial for fixed
      // thresholds sized to the mean.
      gaps.push_back(rng.uniform01() < 0.8
                         ? rng.exponential(1.0 / (0.2 * mean_gap))
                         : rng.exponential(1.0 / (4.2 * mean_gap)));
    } else {
      gaps.push_back(rng.exponential(1.0 / mean_gap));
    }
  }
  return gaps;
}

/// Simulate one disk fed requests separated by the given idle gaps; returns
/// the measured energy attributable to gap handling (idle + transitions +
/// standby) so it is directly comparable to offline_optimal_idle_energy.
util::Joules run_policy(const disk::DiskParams& params,
                        std::unique_ptr<disk::SpinDownPolicy> policy,
                        const sys::SchedulerSpec& scheduler,
                        const std::vector<double>& gaps, std::uint64_t seed,
                        std::uint64_t& spin_downs, double& mean_resp) {
  des::Simulation sim;
  disk::Disk d{sim, 0, params, std::move(policy), util::Rng{seed},
               scheduler.make()};
  double total_resp = 0.0;
  std::uint64_t served = 0;
  d.set_completion_callback([&](const disk::Completion& c) {
    total_resp += c.response_time();
    ++served;
  });

  const util::Bytes file = util::mb(72.0); // 1 s transfer
  const double svc = params.service_time(file);
  // Request k arrives svc + gap after request k-1 *started service*; when a
  // spin-up intervenes the next gap begins after that completion instead, so
  // schedule arrivals cumulatively from each completion.
  double t = 0.0;
  std::uint64_t id = 0;
  sim.schedule_at(t, [&] { d.submit(id++, file); });
  for (const double gap : gaps) {
    t += svc + gap;
    sim.schedule_at(t, [&, t] {
      (void)t;
      d.submit(id++, file);
    });
  }
  sim.run();
  const auto m = d.metrics(sim.now());
  spin_downs = m.spin_downs;
  mean_resp = served > 0 ? total_resp / static_cast<double>(served) : 0.0;
  // Subtract the service energy (identical across policies).
  const double busy =
      m.time_in(disk::PowerState::kPositioning) * params.seek_w +
      m.time_in(disk::PowerState::kTransfer) * params.active_w;
  return m.energy(params) - busy;
}

} // namespace

int main(int argc, char** argv) {
  using namespace spindown;
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--gaps 2000] [--dist exp|uniform|bimodal]"
                 " [--mean-gap 60] [--seed 1]"
                 " [--scheduler fcfs|sstf|scan|clook|batch]"
                 " [--policy <spec>]\n";
    return 0;
  }
  const auto n_gaps = static_cast<std::size_t>(cli.get_int("gaps", 2000));
  const double mean_gap = cli.get_double("mean-gap", 60.0);
  const std::string dist = cli.get("dist", "exp");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto scheduler =
      sys::SchedulerSpec::parse(cli.get("scheduler", "fcfs"));

  const auto params = disk::DiskParams::st3500630as();
  util::Rng rng{seed};
  const auto gaps = draw_gaps(dist, n_gaps, mean_gap, rng);

  std::cout << "disk: " << params.model << ", break-even threshold "
            << util::format_seconds(params.break_even_threshold()) << "\n";
  std::cout << "gaps: " << n_gaps << " x " << dist << " (mean "
            << util::format_seconds(mean_gap) << "), scheduler "
            << scheduler.name() << "\n\n";

  const util::Joules opt = disk::offline_optimal_idle_energy(params, gaps);

  struct Entry {
    std::string name;
    std::function<std::unique_ptr<disk::SpinDownPolicy>()> make;
  };
  std::vector<Entry> policies{
      {"never spin down", [&] { return disk::make_never_policy(); }},
      {"immediate", [&] { return disk::make_fixed_policy(0.0); }},
      {"fixed mean/2",
       [&] { return disk::make_fixed_policy(0.5 * mean_gap); }},
      {"break-even (2-competitive)",
       [&] { return disk::make_break_even_policy(params); }},
      {"randomized (e/(e-1))",
       [&] { return disk::make_randomized_policy(params); }},
      {"ewma predictor (online)",
       [&] { return sys::PolicySpec::ewma().make(params); }},
      {"share combiner (online)",
       [&] { return sys::PolicySpec::share().make(params); }},
  };
  if (cli.has("policy")) {
    const auto spec = sys::PolicySpec::parse(cli.get("policy", "break-even"));
    policies.push_back(
        {"--policy " + spec.spec(), [&, spec] { return spec.make(params); }});
  }

  util::TablePrinter table{{"policy", "gap energy (kJ)", "vs offline opt",
                            "spin-downs", "mean resp (s)"}};
  for (const auto& p : policies) {
    std::uint64_t spin_downs = 0;
    double mean_resp = 0.0;
    const auto energy =
        run_policy(params, p.make(), scheduler, gaps, seed, spin_downs,
                   mean_resp);
    table.row(p.name, util::format_double(energy / 1000.0, 1),
              util::format_double(energy / opt, 3), spin_downs,
              util::format_double(mean_resp, 2));
  }
  table.print(std::cout);
  std::cout << "\noffline optimum (sees the future): "
            << util::format_double(opt / 1000.0, 1) << " kJ\n"
            << "theory: break-even <= 2x optimum on every input; the\n"
            << "randomized policy averages ~1.58x against oblivious inputs\n";
  return 0;
}
