// write_offload.cpp — §1.1's energy-friendly write path, demonstrated.
//
// "in case the access sequence includes write requests we propose to ...
//  write files into an already spinning disk if sufficient space is found on
//  it or write it into any other disk (using best-fit or first-fit policy)"
//
// A Poisson stream of writes lands on a small farm whose disks spin down at
// the break-even threshold.  Two placement strategies are compared:
//   * spinning-aware (the paper's policy, core::WritePlacer): prefer a disk
//     that is currently spun up;
//   * oblivious: round-robin over all disks regardless of power state.
// Spinning-aware writes avoid spin-ups almost entirely, at the cost of
// concentrating queueing on the warm disks — both sides of §1.1's trade-off
// appear in the table (spin-ups and energy vs write latency).
//
//   $ ./write_offload [--writes 400] [--rate 0.02] [--disks 8] [--seed 1]
#include <iostream>

#include "core/write_policy.h"
#include "des/simulation.h"
#include "disk/disk.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace spindown;

struct Outcome {
  std::uint64_t spin_ups = 0;
  std::uint64_t placed = 0;
  std::uint64_t rejected = 0;
  util::Joules energy = 0.0;
  double mean_latency = 0.0;
};

Outcome run(bool spinning_aware, std::uint32_t n_disks, std::size_t n_writes,
            double rate, std::uint64_t seed) {
  const auto params = disk::DiskParams::st3500630as();
  des::Simulation sim;
  util::Rng rng{seed};

  std::vector<std::unique_ptr<disk::Disk>> disks;
  for (std::uint32_t d = 0; d < n_disks; ++d) {
    disks.push_back(std::make_unique<disk::Disk>(
        sim, d, params, disk::make_break_even_policy(params), rng.split()));
  }
  double latency_sum = 0.0;
  std::uint64_t completed = 0;
  for (auto& d : disks) {
    d->set_completion_callback([&](const disk::Completion& c) {
      latency_sum += c.response_time();
      ++completed;
    });
  }

  core::WritePlacer placer{n_disks, params.capacity, core::FitRule::kBestFit};
  Outcome out;
  std::uint32_t rr_cursor = 0;

  double t = 0.0;
  std::uint64_t id = 0;
  for (std::size_t w = 0; w < n_writes; ++w) {
    t += rng.exponential(rate);
    const util::Bytes size = util::gb(rng.uniform(0.1, 2.0));
    sim.schedule_at(t, [&, size] {
      std::optional<std::uint32_t> target;
      if (spinning_aware) {
        std::vector<bool> spinning(disks.size());
        for (std::size_t d = 0; d < disks.size(); ++d) {
          spinning[d] = disk::is_spun_up(disks[d]->state());
        }
        target = placer.place(size, spinning);
      } else {
        // Oblivious: next disk in rotation with room.
        for (std::uint32_t tries = 0; tries < disks.size(); ++tries) {
          const auto d = (rr_cursor + tries) % disks.size();
          if (placer.free_on(static_cast<std::uint32_t>(d)) >= size) {
            placer.add_used(static_cast<std::uint32_t>(d), size);
            target = static_cast<std::uint32_t>(d);
            rr_cursor = static_cast<std::uint32_t>(d + 1);
            break;
          }
        }
      }
      if (!target.has_value()) {
        ++out.rejected;
        return;
      }
      ++out.placed;
      disks[*target]->submit(id++, size);
    });
  }
  sim.run();

  for (auto& d : disks) {
    const auto m = d->metrics(sim.now());
    out.spin_ups += m.spin_ups;
    out.energy += m.energy(params);
  }
  out.mean_latency =
      completed > 0 ? latency_sum / static_cast<double>(completed) : 0.0;
  return out;
}

} // namespace

int main(int argc, char** argv) {
  using namespace spindown;
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--writes 400] [--rate 0.02] [--disks 8] [--seed 1]\n";
    return 0;
  }
  const auto n_writes = static_cast<std::size_t>(cli.get_int("writes", 400));
  const double rate = cli.get_double("rate", 0.02);
  const auto n_disks = static_cast<std::uint32_t>(cli.get_int("disks", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::cout << "write workload: " << n_writes << " writes at " << rate
            << "/s onto " << n_disks
            << " disks (break-even spin-down)\n\n";

  const auto aware = run(true, n_disks, n_writes, rate, seed);
  const auto oblivious = run(false, n_disks, n_writes, rate, seed);

  util::TablePrinter table{{"strategy", "spin-ups", "energy (MJ)",
                            "mean write latency (s)", "placed", "rejected"}};
  auto add = [&](const std::string& name, const Outcome& o) {
    table.row(name, o.spin_ups, util::format_double(o.energy / 1e6, 3),
              util::format_double(o.mean_latency, 2), o.placed, o.rejected);
  };
  add("spinning-aware (paper §1.1)", aware);
  add("oblivious round-robin", oblivious);
  table.print(std::cout);

  std::cout << "\nspinning-aware avoids "
            << (oblivious.spin_ups - aware.spin_ups)
            << " spin-ups; files land hot and migrate later during "
               "reorganization (see core::Reorganizer)\n";
  return 0;
}
