// quickstart.cpp — the 60-second tour of the library.
//
// Builds a small Zipf catalog, allocates it with Pack_Disks and with random
// placement, simulates both under a Poisson read workload, and prints the
// power/latency trade-off — the paper's core result in miniature.
//
//   $ ./quickstart [--files 2000] [--rate 2.0] [--seed 1]
#include <iostream>

#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/random_alloc.h"
#include "sys/experiment.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/catalog.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--files 2000] [--rate 2.0] [--seed 1]\n";
    return 0;
  }
  const auto n_files = static_cast<std::size_t>(cli.get_int("files", 2000));
  const double rate = cli.get_double("rate", 2.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. A catalog of files: Zipf-like popularity, inverse-Zipf sizes
  //    (Table 1 of the paper, scaled down).
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = n_files;
  util::Rng rng{seed};
  const auto catalog = workload::generate_catalog(spec, rng);
  std::cout << "catalog: " << catalog.size() << " files, "
            << util::format_bytes(catalog.total_bytes()) << " total\n";

  // 2. Normalize into 2D vector-packing items: (size, load) per file.
  core::LoadModel model;
  model.rate = rate;
  model.load_fraction = 0.7;
  const auto items = core::normalize(catalog, model);

  // 3. Allocate with the paper's algorithm and with the random baseline.
  core::PackDisks pack;
  const auto packed = pack.allocate(items);
  const std::uint32_t farm = std::max<std::uint32_t>(packed.disk_count * 3, 20);
  core::RandomAllocator rnd{farm, seed};
  const auto random = rnd.allocate(items);
  std::cout << "pack_disks uses " << packed.disk_count << " of " << farm
            << " disks; random spreads over all " << farm << "\n\n";

  // 4. Simulate both placements on the same farm and workload.
  auto run = [&](const core::Assignment& a, const std::string& label) {
    sys::ExperimentConfig cfg;
    cfg.label = label;
    cfg.catalog = &catalog;
    cfg.mapping = a.disk_of;
    cfg.num_disks = farm;
    cfg.workload = sys::WorkloadSpec::poisson(rate, 4000.0);
    cfg.seed = seed;
    return sys::run_experiment(cfg);
  };
  const auto pack_result = run(packed, "pack_disks");
  const auto rnd_result = run(random, "random");

  // 5. The trade-off, in one table.
  util::TablePrinter table{
      {"allocation", "avg power", "energy saving", "mean resp", "p95 resp"}};
  auto add = [&](const std::string& name, const sys::RunResult& r) {
    table.row(name,
              util::format_double(r.power.average_power, 1) + " W",
              util::format_double(100.0 * r.power.saving_vs_always_on, 1) + "%",
              util::format_seconds(r.response.mean()),
              util::format_seconds(r.response.p95()));
  };
  add("pack_disks", pack_result);
  add("random", rnd_result);
  table.print(std::cout);

  const double ratio = rnd_result.power.energy > 0
                           ? 1.0 - pack_result.power.energy /
                                       rnd_result.power.energy
                           : 0.0;
  std::cout << "\npack_disks uses "
            << util::format_double(100.0 * ratio, 1)
            << "% less energy than random placement on this workload.\n";
  return 0;
}
