// quickstart.cpp — the 60-second tour of the library.
//
// Names two experiments as ScenarioSpec strings — the paper's Pack_Disks
// allocation and the random baseline on the same farm and workload — runs
// both, and prints the power/latency trade-off: the paper's core result in
// miniature.  Each printed scenario string can be replayed verbatim with
// examples/spindown_run.cpp.
//
//   $ ./quickstart [--files 2000] [--rate 2.0] [--seed 1]
#include <iostream>

#include "sys/scenario.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--files 2000] [--rate 2.0] [--seed 1]\n";
    return 0;
  }
  const auto n_files = static_cast<std::size_t>(cli.get_int("files", 2000));
  const double rate = cli.get_double("rate", 2.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. The whole experiment as a value: a Table 1-style catalog (Zipf-like
  //    popularity, inverse-Zipf sizes), packed with the paper's algorithm,
  //    under a Poisson read workload.
  sys::ScenarioSpec packed;
  packed.catalog = sys::CatalogSpec::table1(n_files, seed);
  packed.placement = sys::PlacementSpec::pack();
  packed.load_fraction = 0.7;
  packed.workload = sys::WorkloadSpec::poisson(rate, 4000.0);
  packed.seed = seed;

  // 2. Resolve it to see the allocation; the cache memoizes the catalog and
  //    packing across every scenario derived from the same keys.
  sys::ScenarioCache cache;
  const auto first = cache.resolve(packed);
  std::cout << "catalog: " << first.catalog->size() << " files, "
            << util::format_bytes(first.catalog->total_bytes()) << " total\n";
  const std::uint32_t packed_disks = first.config.num_disks;

  // 3. The comparison farm: random placement spreads over 3x the disks
  //    Pack_Disks needs (at least 20), both scenarios simulated on it.
  const std::uint32_t farm = std::max<std::uint32_t>(packed_disks * 3, 20);
  packed = packed.with("disks", std::to_string(farm));
  const auto random =
      packed.with("placement", "random").with("label", "random");
  std::cout << "pack_disks uses " << packed_disks << " of " << farm
            << " disks; random spreads over all " << farm << "\n\n";
  std::cout << "scenarios:\n  " << packed.spec() << "\n  " << random.spec()
            << "\n\n";

  // 4. Run both (same catalog, same workload, same farm).
  const auto pack_result = sys::run_experiment(cache.resolve(packed).config);
  const auto rnd_result = sys::run_experiment(cache.resolve(random).config);

  // 5. The trade-off, in one table.
  util::TablePrinter table{
      {"allocation", "avg power", "energy saving", "mean resp", "p95 resp"}};
  auto add = [&](const std::string& name, const sys::RunResult& r) {
    table.row(name,
              util::format_double(r.power.average_power, 1) + " W",
              util::format_double(100.0 * r.power.saving_vs_always_on, 1) + "%",
              util::format_seconds(r.response.mean()),
              util::format_seconds(r.response.p95()));
  };
  add("pack_disks", pack_result);
  add("random", rnd_result);
  table.print(std::cout);

  const double ratio = rnd_result.power.energy > 0
                           ? 1.0 - pack_result.power.energy /
                                       rnd_result.power.energy
                           : 0.0;
  std::cout << "\npack_disks uses "
            << util::format_double(100.0 * ratio, 1)
            << "% less energy than random placement on this workload.\n"
            << "replay either line above with: spindown_run --scenario '...'\n";
  return 0;
}
