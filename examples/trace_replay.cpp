// trace_replay.cpp — replay a trace file through the full system and compare
// allocation strategies.
//
// Reads a trace saved with Trace::save() (two CSVs sharing a stem); if no
// stem is given, synthesizes a small NERSC-like trace first so the example
// is runnable out of the box.  Replays it under Pack_Disks, Pack_Disks_4,
// random placement, first-fit-decreasing and the SEA-style striping
// baseline — each strategy one ScenarioSpec differing only in its
// placement= key — printing the §5.1-style comparison.
//
//   $ ./trace_replay [--trace /path/stem] [--threshold-h 0.5] [--lru-gb 16]
#include <iostream>
#include <string>
#include <vector>

#include "sys/scenario.h"
#include "sys/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/nersc.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--trace /path/stem] [--threshold-h 0.5] [--lru-gb 16]"
                 " [--seed 1]\n";
    return 0;
  }
  const double threshold_h = cli.get_double("threshold-h", 0.5);
  const double lru_gb = cli.get_double("lru-gb", 0.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // The base scenario: the trace's catalog, replayed.  Strategies swap only
  // the placement key.
  sys::ScenarioSpec base;
  if (cli.has("trace")) {
    const auto stem = cli.get("trace", "");
    std::cout << "loading trace " << stem << "...\n";
    base.catalog = sys::CatalogSpec::trace(stem);
  } else {
    std::cout << "no --trace given; synthesizing a NERSC-like sample...\n";
    workload::NerscSpec spec;
    spec.n_files = 10'000;
    spec.n_requests = 13'000;
    spec.seed = seed;
    base.catalog = sys::CatalogSpec::nersc_synth(spec);
  }
  base.load_fraction = 0.8;
  base.policy = sys::PolicySpec::fixed(threshold_h * util::kHour);
  if (lru_gb > 0.0) base.cache = sys::CacheSpec::lru(util::gb(lru_gb));
  base.workload = sys::WorkloadSpec::replay_catalog();
  base.seed = seed;

  // Resolving the base (pack) scenario loads/synthesizes the trace once —
  // every other strategy reuses it through the cache.
  sys::ScenarioCache cache;
  const auto packed = cache.resolve(base);
  const auto stats = workload::analyze(*packed.trace);
  std::cout << "\ntrace: " << stats.requests << " requests, "
            << stats.distinct_files << " distinct files over "
            << util::format_seconds(stats.duration_s) << "\n"
            << "  arrival rate " << util::format_double(stats.arrival_rate, 5)
            << "/s, mean accessed size "
            << util::format_bytes(
                   static_cast<util::Bytes>(stats.mean_accessed_bytes))
            << "\n  catalog " << util::format_bytes(stats.total_catalog_bytes)
            << " (min " << stats.min_disks(util::gb(500.0)) << " disks)"
            << ", size/frequency correlation "
            << util::format_double(stats.size_frequency_correlation, 3)
            << "\n\n";

  // Every strategy runs on at least Pack_Disks' farm, as in §5.1.
  const auto farm = std::to_string(packed.config.num_disks);
  const std::vector<std::pair<std::string, std::string>> strategies{
      {"pack_disks", "pack"},
      {"pack_disks_4", "grouped:4"},
      {"random (same #disks)", "random"},
      {"first_fit_decreasing", "ffd"},
      {"sea_striping", "sea:0.8"},
  };
  std::vector<sys::ResolvedScenario> resolved;
  std::vector<sys::ExperimentConfig> configs;
  for (const auto& [name, placement] : strategies) {
    resolved.push_back(
        cache.resolve(base.with("placement", placement).with("disks", farm)));
    configs.push_back(resolved.back().config);
  }
  const auto results = sys::run_sweep(configs);

  util::TablePrinter table{{"strategy", "disks", "power saving", "avg W",
                            "mean resp (s)", "p95 (s)", "spin-ups"}};
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    const auto& r = results[i];
    table.row(strategies[i].first, resolved[i].config.num_disks,
              util::format_double(r.power.saving_vs_always_on, 3),
              util::format_double(r.power.average_power, 1),
              util::format_double(r.response.mean(), 2),
              util::format_double(r.response.p95(), 2), r.power.spin_ups);
  }
  table.print(std::cout);
  if (lru_gb > 0.0) {
    std::cout << "\nLRU(" << lru_gb << " GB) hit ratio: "
              << util::format_double(100.0 * results[0].cache.hit_ratio(), 1)
              << "%\n";
  }
  return 0;
}
