// trace_replay.cpp — replay a trace file through the full system and compare
// allocation strategies.
//
// Reads a trace saved with Trace::save() (two CSVs sharing a stem); if no
// stem is given, synthesizes a small NERSC-like trace first so the example
// is runnable out of the box.  Replays it under Pack_Disks, Pack_Disks_4,
// random placement, first-fit-decreasing and the SEA-style striping
// baseline, printing the §5.1-style comparison.
//
//   $ ./trace_replay [--trace /path/stem] [--threshold-h 0.5] [--lru-gb 16]
#include <filesystem>
#include <iostream>

#include "core/greedy.h"
#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/pack_grouped.h"
#include "core/random_alloc.h"
#include "core/sea.h"
#include "sys/experiment.h"
#include "sys/sweep.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/nersc.h"

int main(int argc, char** argv) {
  using namespace spindown;
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    std::cout << "usage: " << cli.program()
              << " [--trace /path/stem] [--threshold-h 0.5] [--lru-gb 16]"
                 " [--seed 1]\n";
    return 0;
  }
  const double threshold_h = cli.get_double("threshold-h", 0.5);
  const double lru_gb = cli.get_double("lru-gb", 0.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  workload::Trace trace = [&] {
    if (cli.has("trace")) {
      const auto stem = std::filesystem::path{cli.get("trace", "")};
      std::cout << "loading trace " << stem << "...\n";
      return workload::Trace::load(stem);
    }
    std::cout << "no --trace given; synthesizing a NERSC-like sample...\n";
    workload::NerscSpec spec;
    spec.n_files = 10'000;
    spec.n_requests = 13'000;
    spec.seed = seed;
    return workload::synthesize_nersc(spec);
  }();

  const auto stats = workload::analyze(trace);
  std::cout << "\ntrace: " << stats.requests << " requests, "
            << stats.distinct_files << " distinct files over "
            << util::format_seconds(stats.duration_s) << "\n"
            << "  arrival rate " << util::format_double(stats.arrival_rate, 5)
            << "/s, mean accessed size "
            << util::format_bytes(
                   static_cast<util::Bytes>(stats.mean_accessed_bytes))
            << "\n  catalog " << util::format_bytes(stats.total_catalog_bytes)
            << " (min " << stats.min_disks(util::gb(500.0)) << " disks)"
            << ", size/frequency correlation "
            << util::format_double(stats.size_frequency_correlation, 3)
            << "\n\n";

  core::LoadModel model;
  model.rate = std::max(1e-6, stats.arrival_rate);
  model.load_fraction = 0.8;
  const auto items = core::normalize(trace.catalog(), model);

  core::PackDisks pack;
  core::PackDisksGrouped pack4{4};
  core::FirstFitDecreasing ffd;
  const auto a_pack = pack.allocate(items);
  core::RandomAllocator rnd{a_pack.disk_count, seed};

  struct Strategy {
    std::string name;
    core::Assignment assignment;
  };
  std::vector<Strategy> strategies;
  strategies.push_back({"pack_disks", a_pack});
  strategies.push_back({"pack_disks_4", pack4.allocate(items)});
  strategies.push_back({"random (same #disks)", rnd.allocate(items)});
  strategies.push_back({"first_fit_decreasing", ffd.allocate(items)});
  core::SeaAllocator sea{0.8};
  strategies.push_back({"sea_striping", sea.allocate(items)});

  std::vector<sys::ExperimentConfig> configs;
  for (const auto& s : strategies) {
    sys::ExperimentConfig cfg;
    cfg.label = s.name;
    cfg.catalog = &trace.catalog();
    cfg.mapping = s.assignment.disk_of;
    cfg.num_disks = std::max(s.assignment.disk_count, a_pack.disk_count);
    cfg.policy = sys::PolicySpec::fixed(threshold_h * util::kHour);
    if (lru_gb > 0.0) cfg.cache = sys::CacheSpec::lru(util::gb(lru_gb));
    cfg.workload = sys::WorkloadSpec::replay(trace);
    cfg.seed = seed;
    configs.push_back(std::move(cfg));
  }
  const auto results = sys::run_sweep(configs);

  util::TablePrinter table{{"strategy", "disks", "power saving", "avg W",
                            "mean resp (s)", "p95 (s)", "spin-ups"}};
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    const auto& r = results[i];
    table.row(strategies[i].name, strategies[i].assignment.disk_count,
              util::format_double(r.power.saving_vs_always_on, 3),
              util::format_double(r.power.average_power, 1),
              util::format_double(r.response.mean(), 2),
              util::format_double(r.response.p95(), 2), r.power.spin_ups);
  }
  table.print(std::cout);
  if (lru_gb > 0.0) {
    std::cout << "\nLRU(" << lru_gb << " GB) hit ratio: "
              << util::format_double(100.0 * results[0].cache.hit_ratio(), 1)
              << "%\n";
  }
  return 0;
}
