// spindown_run.cpp — the universal experiment driver: any point of the
// scenario space (catalog × placement × policy × scheduler × cache ×
// workload × seed) from one string, any grid from --sweep axes.
//
//   $ ./spindown_run --scenario 'catalog=table1(2000,1) placement=pack
//                                load=0.7 workload=poisson(2,1000)'
//   $ ./spindown_run --scenario '...' --sweep 'policy=break-even,never'
//                    --sweep 'seed=1,2,3' --json
//
// Sweep axes cross (every combination runs); values split on top-level
// commas, so workload=poisson(2,1000),poisson(6,1000) is two values.
// --json emits one JSON object per scenario per line (JSONL) on stdout.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/trace.h"
#include "sys/fleet.h"
#include "sys/scenario.h"
#include "sys/sweep.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace spindown;

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program << " --scenario '<key=value ...>' [options]\n\n"
      << "options:\n"
      << "  --scenario <spec>  the experiment (required); keys:\n"
      << "      catalog=table1(n,seed)|synth(n,zipf,max,corr,seed)\n"
      << "              |nersc(files,requests,seed"
         "[,dur[,bfrac[,bmin[,bmax]]]])\n"
      << "              |trace:<stem>\n"
      << "      placement=pack|grouped:k|random|maid:c|sea:h|seg:k|ffd\n"
      << "      load=<(0,1]>    disks=<farm floor; 0 = allocator decides>\n"
      << "      policy=break-even|never|randomized|fixed:T|ewma[:a]\n"
      << "              |share[:n]|slack[:slo]\n"
      << "      sched=fcfs|sstf|scan|clook|batch[N[xG]]\n"
      << "      cache=none|lru:16g|fifo:4g|lfu:16g\n"
      << "      workload=poisson(R,T)|nhpp(t:r;...,T[,P])\n"
      << "              |mmpp(r0,r1,d0,d1,T)|trace:<stem>|replay\n"
      << "      seed=<n>  label=<name>  shards=<n|auto>\n"
      << "      obs=off|all|spans+power+policy+metrics[:iv]+profile\n"
      << "  --sweep 'key=v1,v2,...'  cross one axis (repeatable; axes cross)\n"
      << "  --shards <n|auto>  shard each run's calendar (sys/fleet.h);\n"
      << "                     shorthand for shards=<v> in the scenario —\n"
      << "                     results are bit-identical at any count\n"
      << "  --trace <file>     write the run's trace (single scenario only):\n"
      << "                     .jsonl = one event per line, anything else =\n"
      << "                     Chrome trace_event JSON (load in Perfetto)\n"
      << "  --trace-filter <kinds>  which event families to record (ObsSpec\n"
      << "                     grammar; default: the scenario's obs= key, or\n"
      << "                     spans+power+policy when that is off)\n"
      << "  --metrics-interval <s>  sim-time gauge sampling period; implies\n"
      << "                     the metrics family\n"
      << "  --json             one JSON row per scenario on stdout (JSONL);\n"
      << "                     sharded runs include a fleet_perf object\n"
      << "  --threads <n>      parallel sweep width (default: hardware)\n"
      << "  --help             this text\n";
}

/// Split on commas at paren depth 0, so sweep values may themselves be
/// call-style keys: "poisson(2,1000),poisson(6,1000)" is two values.
std::vector<std::string> split_top_level(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (const char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const util::Cli cli{argc, argv};
  if (cli.has("help")) {
    print_usage(cli.program());
    return 0;
  }
  if (!cli.has("scenario")) {
    print_usage(cli.program());
    std::cerr << "\nerror: --scenario is required\n";
    return 2;
  }
  const bool json = cli.has("json");
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));

  try {
    auto base = sys::ScenarioSpec::parse(cli.get("scenario", ""));
    if (cli.has("shards")) {
      base = base.with("shards", cli.get("shards", "auto"));
    }

    // Cross the sweep axes.  Each scenario remembers its swept values so
    // the table has one column per axis.
    std::vector<sys::ScenarioSpec> specs{base};
    std::vector<std::vector<std::string>> swept{{}};
    std::vector<std::string> axis_keys;
    for (const auto& axis : cli.get_all("sweep")) {
      const auto eq = axis.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= axis.size()) {
        std::cerr << "error: --sweep wants key=v1,v2,..., got '" << axis
                  << "'\n";
        return 2;
      }
      const std::string key = axis.substr(0, eq);
      const auto values = split_top_level(axis.substr(eq + 1));
      axis_keys.push_back(key);
      std::vector<sys::ScenarioSpec> next_specs;
      std::vector<std::vector<std::string>> next_swept;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        for (const auto& value : values) {
          next_specs.push_back(specs[i].with(key, value));
          next_swept.push_back(swept[i]);
          next_swept.back().push_back(value);
        }
      }
      specs = std::move(next_specs);
      swept = std::move(next_swept);
    }

    // --trace records one run's observability stream; a sweep would
    // interleave runs, so tracing is restricted to a single scenario.
    const bool traced = cli.has("trace");
    if (!traced && (cli.has("trace-filter") || cli.has("metrics-interval"))) {
      std::cerr
          << "error: --trace-filter/--metrics-interval require --trace\n";
      return 2;
    }
    if (traced) {
      if (specs.size() != 1) {
        std::cerr << "error: --trace records exactly one scenario "
                     "(drop --sweep)\n";
        return 2;
      }
      auto& spec = specs[0];
      if (cli.has("trace-filter")) {
        spec.obs = sys::ObsSpec::parse(cli.get("trace-filter", ""));
      } else if (!spec.obs.enabled()) {
        spec.obs = sys::ObsSpec::parse("spans+power+policy");
      }
      if (cli.has("metrics-interval")) {
        const double interval = cli.get_double("metrics-interval", 60.0);
        if (!(interval > 0.0)) {
          std::cerr << "error: --metrics-interval wants a positive number "
                       "of sim seconds\n";
          return 2;
        }
        spec.obs.metrics = true;
        spec.obs.metrics_interval_s = interval;
      }
      base = spec;
    }

    auto& info = json ? std::cerr : std::cout;
    info << "running " << specs.size()
         << (specs.size() == 1 ? " scenario:\n" : " scenarios; base:\n")
         << "  " << base.spec() << "\n\n";

    // A lone scenario runs through the perf/trace-aware entry point (a
    // sweep keeps the parallel run_scenarios path; tracing is excluded
    // above and FleetPerf is one-run diagnostics).
    std::vector<sys::RunResult> results;
    obs::RunTrace trace;
    sys::FleetPerf perf;
    bool have_perf = false;
    if (specs.size() == 1) {
      results.push_back(
          sys::run_scenario(specs[0], traced ? &trace : nullptr, &perf));
      have_perf = true;
      if (traced) {
        const std::string path = cli.get("trace", "");
        if (!obs::write_trace_file(path, trace)) {
          std::cerr << "error: cannot write trace to '" << path << "'\n";
          return 1;
        }
        info << "trace: " << trace.events.size() << " events";
        if (!trace.profile.empty()) {
          info << " + " << trace.profile.size() << " profile samples";
        }
        info << " -> " << path << "\n\n";
      }
    } else {
      results = sys::run_scenarios(specs, threads);
    }

    if (json) {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        std::string row = sys::to_json(specs[i], results[i]);
        if (have_perf && specs[i].shards != 1) {
          // Splice the pipeline diagnostics into the scenario row.
          row.pop_back();
          row += ", \"fleet_perf\": " + sys::to_json(perf) + "}";
        }
        std::cout << row << "\n";
      }
      return 0;
    }

    std::vector<std::string> header = axis_keys;
    for (const auto* col :
         {"disks", "energy (kJ)", "saving", "avg W", "mean resp (s)",
          "p95 (s)", "p99 (s)", "spin-ups", "cache hit%"}) {
      header.emplace_back(col);
    }
    util::TablePrinter table{header};
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& r = results[i];
      std::vector<std::string> row = swept[i];
      row.push_back(std::to_string(r.per_disk.size()));
      row.push_back(util::format_double(r.power.energy / 1000.0, 1));
      row.push_back(util::format_double(r.power.saving_vs_always_on, 3));
      row.push_back(util::format_double(r.power.average_power, 1));
      row.push_back(util::format_double(r.response.mean(), 2));
      row.push_back(util::format_double(r.response.p95(), 2));
      row.push_back(util::format_double(r.response.p99(), 2));
      row.push_back(std::to_string(r.power.spin_ups));
      row.push_back(util::format_double(100.0 * r.cache.hit_ratio(), 1));
      table.add_row(row);
    }
    table.print(std::cout);
    if (specs.size() == 1) {
      std::cout << "\nreproduce with:\n  " << cli.program() << " --scenario '"
                << specs[0].spec() << "'\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
