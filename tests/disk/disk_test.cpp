#include "disk/disk.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/units.h"

namespace spindown::disk {
namespace {

class DiskFixture : public ::testing::Test {
protected:
  des::Simulation sim_;
  DiskParams params_ = DiskParams::st3500630as();
  std::vector<Completion> completions_;

  std::unique_ptr<Disk> make_disk(std::unique_ptr<SpinDownPolicy> policy) {
    auto d = std::make_unique<Disk>(sim_, 0, params_, std::move(policy),
                                    util::Rng{1});
    d->set_completion_callback(
        [this](const Completion& c) { completions_.push_back(c); });
    return d;
  }
};

TEST_F(DiskFixture, SingleRequestServiceTime) {
  auto d = make_disk(make_never_policy());
  const util::Bytes size = util::mb(72.0); // exactly 1 s transfer
  sim_.schedule_at(0.0, [&] { d->submit(7, size); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  const auto& c = completions_[0];
  EXPECT_EQ(c.request_id, 7u);
  EXPECT_DOUBLE_EQ(c.arrival, 0.0);
  EXPECT_NEAR(c.completion, params_.service_time(size), 1e-12);
  EXPECT_NEAR(c.response_time(), 1.0 + params_.position_time(), 1e-12);
  EXPECT_DOUBLE_EQ(c.wait_time(), 0.0);
}

TEST_F(DiskFixture, FcfsQueueing) {
  auto d = make_disk(make_never_policy());
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] {
    d->submit(0, size);
    d->submit(1, size);
    d->submit(2, size);
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  const double unit = params_.service_time(size);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(completions_[i].request_id, static_cast<std::uint64_t>(i));
    EXPECT_NEAR(completions_[i].completion, unit * (i + 1), 1e-9);
  }
  // Queue wait grows linearly.
  EXPECT_NEAR(completions_[2].wait_time(), 2 * unit, 1e-9);
}

TEST_F(DiskFixture, SpinsDownAfterThreshold) {
  auto d = make_disk(make_fixed_policy(20.0));
  sim_.schedule_at(0.0, [&] { d->submit(0, util::mb(72.0)); });
  sim_.run();
  EXPECT_EQ(d->state(), PowerState::kStandby);
  const auto m = d->metrics(sim_.now());
  EXPECT_EQ(m.spin_downs, 1u);
  EXPECT_EQ(m.spin_ups, 0u);
  EXPECT_NEAR(m.time_in(PowerState::kIdle), 20.0, 1e-9);
  EXPECT_NEAR(m.time_in(PowerState::kSpinningDown), params_.spindown_s, 1e-9);
}

TEST_F(DiskFixture, RequestToStandbyDiskPaysSpinUp) {
  auto d = make_disk(make_fixed_policy(20.0));
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  const double t2 = 100.0; // disk is long in standby by then
  sim_.schedule_at(t2, [&] { d->submit(1, size); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_NEAR(completions_[1].response_time(),
              params_.spinup_s + params_.service_time(size), 1e-9);
  EXPECT_EQ(d->metrics(sim_.now()).spin_ups, 1u);
}

TEST_F(DiskFixture, ArrivalDuringSpinDownWaitsForFullRoundTrip) {
  auto d = make_disk(make_fixed_policy(20.0));
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  const double svc = params_.service_time(size);
  const double mid_spin_down = svc + 20.0 + 5.0; // 5 s into the spin-down
  sim_.schedule_at(mid_spin_down, [&] { d->submit(1, size); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  // Must wait the remaining 5 s of spin-down, then the 15 s spin-up.
  const double expected_response = 5.0 + params_.spinup_s + svc;
  EXPECT_NEAR(completions_[1].response_time(), expected_response, 1e-9);
  const auto m = d->metrics(sim_.now());
  EXPECT_NEAR(m.time_in(PowerState::kStandby), 0.0, 1e-9);
}

TEST_F(DiskFixture, ArrivalDuringIdleCancelsSpinDown) {
  auto d = make_disk(make_fixed_policy(20.0));
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  const double svc = params_.service_time(size);
  sim_.schedule_at(svc + 10.0, [&] { d->submit(1, size); }); // idle 10 < 20
  sim_.schedule_at(svc + 10.0 + svc + 100.0, [&] {});        // run long enough
  sim_.run();
  const auto m = d->metrics(sim_.now());
  // Exactly one spin-down (after the second service), none between requests.
  EXPECT_EQ(m.spin_downs, 1u);
  EXPECT_EQ(m.spin_ups, 0u);
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_NEAR(completions_[1].response_time(), svc, 1e-9);
}

TEST_F(DiskFixture, NeverPolicyNeverSpinsDown) {
  auto d = make_disk(make_never_policy());
  sim_.schedule_at(0.0, [&] { d->submit(0, util::mb(10.0)); });
  sim_.schedule_at(10'000.0, [&] {});
  sim_.run();
  EXPECT_EQ(d->state(), PowerState::kIdle);
  EXPECT_EQ(d->metrics(sim_.now()).spin_downs, 0u);
}

TEST_F(DiskFixture, ImmediateSpinDownPolicy) {
  auto d = make_disk(make_fixed_policy(0.0));
  // The disk starts idle: it should begin spinning down at t = 0.
  sim_.run();
  EXPECT_EQ(d->state(), PowerState::kStandby);
  EXPECT_EQ(d->metrics(sim_.now()).spin_downs, 1u);
}

TEST_F(DiskFixture, EnergyIntegrationMatchesHandComputation) {
  auto d = make_disk(make_fixed_policy(30.0));
  const util::Bytes size = util::mb(144.0); // 2 s transfer
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  sim_.run();
  // Timeline: position (12.66 ms) + transfer (2 s) + idle 30 s +
  // spin-down 10 s; the run ends in standby with zero standby time.
  const auto m = d->metrics(sim_.now());
  const double expected = params_.position_time() * params_.seek_w +
                          2.0 * params_.active_w + 30.0 * params_.idle_w +
                          params_.spindown_s * params_.spindown_w;
  EXPECT_NEAR(m.energy(params_), expected, 1e-9);
}

TEST_F(DiskFixture, MetricsSnapshotAtIntermediateTime) {
  auto d = make_disk(make_never_policy());
  sim_.schedule_at(0.0, [&] { d->submit(0, util::mb(720.0)); }); // 10 s
  sim_.schedule_at(5.0, [&] {
    const auto m = d->metrics(sim_.now());
    EXPECT_NEAR(m.busy_time(), 5.0, 1e-9);
    EXPECT_EQ(m.served, 0u); // still transferring
  });
  sim_.run();
  const auto m = d->metrics(sim_.now());
  EXPECT_EQ(m.served, 1u);
  EXPECT_EQ(m.bytes_served, util::mb(720.0));
}

TEST_F(DiskFixture, IdleGapsRecordedBetweenArrivals) {
  auto d = make_disk(make_never_policy());
  const util::Bytes size = util::mb(72.0);
  const double svc = params_.service_time(size);
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  sim_.schedule_at(svc + 40.0, [&] { d->submit(1, size); });
  sim_.run();
  // Gap 0: [0, 0) before the first request (disk idle from t = 0);
  // gap 1: 40 s between first completion and second arrival.
  ASSERT_EQ(d->idle_gaps().size(), 2u);
  EXPECT_NEAR(d->idle_gaps()[0], 0.0, 1e-12);
  EXPECT_NEAR(d->idle_gaps()[1], 40.0, 1e-9);
}

TEST_F(DiskFixture, BurstDuringSpinUpQueuesAll) {
  auto d = make_disk(make_fixed_policy(5.0));
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  // Disk reaches standby at svc + 5 + 10; burst arrives at 50.
  sim_.schedule_at(50.0, [&] {
    d->submit(1, size);
    d->submit(2, size);
    d->submit(3, size);
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 4u);
  const double svc = params_.service_time(size);
  // One spin-up for the whole burst; responses stack behind it.
  EXPECT_EQ(d->metrics(sim_.now()).spin_ups, 1u);
  EXPECT_NEAR(completions_[1].response_time(), params_.spinup_s + svc, 1e-9);
  EXPECT_NEAR(completions_[3].response_time(), params_.spinup_s + 3 * svc,
              1e-9);
}

TEST_F(DiskFixture, ManyCyclesCountSpinEvents) {
  auto d = make_disk(make_fixed_policy(10.0));
  const util::Bytes size = util::mb(72.0);
  // Requests spaced far enough apart that the disk standby-cycles each time.
  for (int i = 0; i < 5; ++i) {
    sim_.schedule_at(100.0 * i, [&, i] { d->submit(i, size); });
  }
  sim_.run();
  const auto m = d->metrics(sim_.now());
  EXPECT_EQ(m.served, 5u);
  EXPECT_EQ(m.spin_downs, 5u);
  EXPECT_EQ(m.spin_ups, 4u); // the first request found the disk idle
}

/// Records the feedback taps so tests can assert what the disk reports.
class ProbePolicy final : public SpinDownPolicy {
public:
  explicit ProbePolicy(std::optional<double> timeout) : timeout_(timeout) {}
  std::optional<double> idle_timeout(util::Rng&) override { return timeout_; }
  void observe_idle(double duration, bool spun_down) override {
    idle_periods.emplace_back(duration, spun_down);
  }
  void observe_completion(double response) override {
    responses.push_back(response);
  }
  std::string name() const override { return "probe"; }

  std::vector<std::pair<double, bool>> idle_periods;
  std::vector<double> responses;

private:
  std::optional<double> timeout_;
};

TEST_F(DiskFixture, PolicyObservesIdlePeriodsWithoutSpinDown) {
  auto probe_owner = std::make_unique<ProbePolicy>(std::nullopt);
  ProbePolicy* probe = probe_owner.get();
  auto d = make_disk(std::move(probe_owner));
  const util::Bytes size = util::mb(72.0);
  const double svc = params_.service_time(size);
  sim_.schedule_at(30.0, [&] { d->submit(0, size); });
  sim_.schedule_at(100.0, [&] { d->submit(1, size); });
  sim_.run();
  ASSERT_EQ(probe->idle_periods.size(), 2u);
  // First period: construction (t = 0) to the first arrival.
  EXPECT_DOUBLE_EQ(probe->idle_periods[0].first, 30.0);
  EXPECT_FALSE(probe->idle_periods[0].second);
  // Second: from first completion to the second arrival.
  EXPECT_NEAR(probe->idle_periods[1].first, 100.0 - (30.0 + svc), 1e-9);
  EXPECT_FALSE(probe->idle_periods[1].second);
}

TEST_F(DiskFixture, PolicyObservesFullPeriodAcrossSpinDown) {
  // Timeout 10 s, next arrival 200 s after going idle: the period is
  // reported once, with its *full* duration and the spun_down flag.
  auto probe_owner = std::make_unique<ProbePolicy>(10.0);
  ProbePolicy* probe = probe_owner.get();
  auto d = make_disk(std::move(probe_owner));
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  const double svc = params_.service_time(size);
  sim_.schedule_at(svc + 200.0, [&] { d->submit(1, size); });
  sim_.run();
  ASSERT_EQ(probe->idle_periods.size(), 2u);
  EXPECT_DOUBLE_EQ(probe->idle_periods[0].first, 0.0); // arrival at t = 0
  EXPECT_NEAR(probe->idle_periods[1].first, 200.0, 1e-9);
  EXPECT_TRUE(probe->idle_periods[1].second);
  // An arrival during the spin-up must NOT be reported as another period.
  // (The trailing idle period parks the disk too.)
  EXPECT_EQ(d->metrics(sim_.now()).spin_downs, 1u + 1u);
}

TEST_F(DiskFixture, PolicyObservesEveryCompletionResponse) {
  auto probe_owner = std::make_unique<ProbePolicy>(std::nullopt);
  ProbePolicy* probe = probe_owner.get();
  auto d = make_disk(std::move(probe_owner));
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] {
    d->submit(0, size);
    d->submit(1, size);
  });
  sim_.run();
  ASSERT_EQ(probe->responses.size(), 2u);
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_DOUBLE_EQ(probe->responses[0], completions_[0].response_time());
  EXPECT_DOUBLE_EQ(probe->responses[1], completions_[1].response_time());
}

TEST_F(DiskFixture, MetricsExposeIdlePeriodHistogram) {
  auto d = make_disk(make_never_policy());
  const util::Bytes size = util::mb(72.0);
  const double svc = params_.service_time(size);
  sim_.schedule_at(50.0, [&] { d->submit(0, size); });
  sim_.schedule_at(50.0 + svc + 400.0, [&] { d->submit(1, size); });
  sim_.run();
  const auto m = d->metrics(sim_.now());
  EXPECT_EQ(m.idle_periods.total(), 2u); // 50 s and 400 s periods
  // Both land in the bins that cover their durations.
  std::uint64_t in_range = 0;
  for (std::size_t i = 0; i < m.idle_periods.bins(); ++i) {
    if (m.idle_periods.bin_count(i) == 0) continue;
    in_range += m.idle_periods.bin_count(i);
    EXPECT_TRUE((m.idle_periods.bin_lo(i) <= 50.0 &&
                 m.idle_periods.bin_hi(i) > 50.0) ||
                (m.idle_periods.bin_lo(i) <= 400.0 &&
                 m.idle_periods.bin_hi(i) > 400.0));
  }
  EXPECT_EQ(in_range, 2u);
}

} // namespace
} // namespace spindown::disk
