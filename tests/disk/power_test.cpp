#include "disk/power.h"

#include <gtest/gtest.h>

namespace spindown::disk {
namespace {

TEST(PowerStates, PowerOfMatchesFigure1) {
  const auto p = DiskParams::st3500630as();
  EXPECT_DOUBLE_EQ(power_of(PowerState::kIdle, p), 9.3);
  EXPECT_DOUBLE_EQ(power_of(PowerState::kStandby, p), 0.8);
  EXPECT_DOUBLE_EQ(power_of(PowerState::kTransfer, p), 13.0);
  EXPECT_DOUBLE_EQ(power_of(PowerState::kPositioning, p), 12.6);
  EXPECT_DOUBLE_EQ(power_of(PowerState::kSpinningUp, p), 24.0);
  EXPECT_DOUBLE_EQ(power_of(PowerState::kSpinningDown, p), 9.3);
}

TEST(PowerStates, StateNames) {
  EXPECT_EQ(to_string(PowerState::kIdle), "idle");
  EXPECT_EQ(to_string(PowerState::kStandby), "standby");
  EXPECT_EQ(to_string(PowerState::kSpinningUp), "spinning_up");
}

TEST(PowerStates, SpunUpClassification) {
  EXPECT_TRUE(is_spun_up(PowerState::kIdle));
  EXPECT_TRUE(is_spun_up(PowerState::kPositioning));
  EXPECT_TRUE(is_spun_up(PowerState::kTransfer));
  EXPECT_FALSE(is_spun_up(PowerState::kStandby));
  EXPECT_FALSE(is_spun_up(PowerState::kSpinningUp));
  EXPECT_FALSE(is_spun_up(PowerState::kSpinningDown));
}

TEST(PowerStates, LegalTransitionsOfFigure1) {
  using S = PowerState;
  // The service path.
  EXPECT_TRUE(can_transition(S::kIdle, S::kPositioning));
  EXPECT_TRUE(can_transition(S::kPositioning, S::kTransfer));
  EXPECT_TRUE(can_transition(S::kTransfer, S::kPositioning)); // back-to-back
  EXPECT_TRUE(can_transition(S::kTransfer, S::kIdle));
  // The power-saving path.
  EXPECT_TRUE(can_transition(S::kIdle, S::kSpinningDown));
  EXPECT_TRUE(can_transition(S::kSpinningDown, S::kStandby));
  EXPECT_TRUE(can_transition(S::kStandby, S::kSpinningUp));
  EXPECT_TRUE(can_transition(S::kSpinningUp, S::kPositioning));
  EXPECT_TRUE(can_transition(S::kSpinningUp, S::kIdle));
}

TEST(PowerStates, IllegalTransitionsRejected) {
  using S = PowerState;
  // Standby cannot serve or idle directly — it must spin up.
  EXPECT_FALSE(can_transition(S::kStandby, S::kPositioning));
  EXPECT_FALSE(can_transition(S::kStandby, S::kIdle));
  // A spin-down cannot be aborted.
  EXPECT_FALSE(can_transition(S::kSpinningDown, S::kIdle));
  EXPECT_FALSE(can_transition(S::kSpinningDown, S::kSpinningUp));
  // Positioning always proceeds to transfer.
  EXPECT_FALSE(can_transition(S::kPositioning, S::kIdle));
  EXPECT_FALSE(can_transition(S::kPositioning, S::kSpinningDown));
  // Busy states cannot power down mid-service.
  EXPECT_FALSE(can_transition(S::kTransfer, S::kSpinningDown));
  EXPECT_FALSE(can_transition(S::kTransfer, S::kStandby));
}

TEST(PowerStates, EveryStateHasAtLeastOneExit) {
  for (std::size_t i = 0; i < kPowerStateCount; ++i) {
    const auto from = static_cast<PowerState>(i);
    bool any = false;
    for (std::size_t j = 0; j < kPowerStateCount; ++j) {
      if (can_transition(from, static_cast<PowerState>(j))) any = true;
    }
    EXPECT_TRUE(any) << "state " << to_string(from) << " is a dead end";
  }
}

} // namespace
} // namespace spindown::disk
