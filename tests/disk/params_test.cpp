#include "disk/params.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace spindown::disk {
namespace {

TEST(DiskParams, Table2Values) {
  const auto p = DiskParams::st3500630as();
  EXPECT_EQ(p.capacity, util::gb(500.0));
  EXPECT_DOUBLE_EQ(p.avg_seek_s, 0.0085);
  EXPECT_DOUBLE_EQ(p.avg_rotation_s, 0.00416);
  EXPECT_DOUBLE_EQ(p.transfer_bps, 72.0e6);
  EXPECT_DOUBLE_EQ(p.idle_w, 9.3);
  EXPECT_DOUBLE_EQ(p.standby_w, 0.8);
  EXPECT_DOUBLE_EQ(p.active_w, 13.0);
  EXPECT_DOUBLE_EQ(p.seek_w, 12.6);
  EXPECT_DOUBLE_EQ(p.spinup_w, 24.0);
  EXPECT_DOUBLE_EQ(p.spindown_w, 9.3);
  EXPECT_DOUBLE_EQ(p.spinup_s, 15.0);
  EXPECT_DOUBLE_EQ(p.spindown_s, 10.0);
}

TEST(DiskParams, BreakEvenMatchesTable2) {
  // Table 2's "Idleness threshold: 53.3 secs" is the break-even point:
  // (9.3*10 + 24*15) / (9.3 - 0.8) = 53.29 s.
  const auto p = DiskParams::st3500630as();
  EXPECT_NEAR(p.break_even_threshold(), 53.3, 0.05);
  EXPECT_DOUBLE_EQ(p.transition_energy(), 9.3 * 10.0 + 24.0 * 15.0);
}

TEST(DiskParams, ServiceTimeComposition) {
  const auto p = DiskParams::st3500630as();
  // The paper's example: a 544 MB file takes ~7.56 s at 72 MB/s.
  EXPECT_NEAR(p.transfer_time(util::mb(544.0)), 7.56, 0.01);
  EXPECT_DOUBLE_EQ(p.position_time(), 0.0085 + 0.00416);
  EXPECT_DOUBLE_EQ(p.service_time(util::mb(72.0)),
                   p.position_time() + 1.0);
}

TEST(DiskParams, ZeroByteServiceIsJustPositioning) {
  const auto p = DiskParams::st3500630as();
  EXPECT_DOUBLE_EQ(p.service_time(0), p.position_time());
}

TEST(DiskParams, BreakEvenScalesWithPowerGap) {
  auto p = DiskParams::st3500630as();
  const double base = p.break_even_threshold();
  p.standby_w = 5.0; // smaller idle->standby saving => longer break-even
  EXPECT_GT(p.break_even_threshold(), base);
}

TEST(DiskParams, LaptopProfileIsCheaperToCycle) {
  const auto desktop = DiskParams::st3500630as();
  const auto laptop = DiskParams::laptop_2_5in();
  // The low-power profile transitions far more cheaply and therefore has a
  // much shorter break-even threshold — the device-level trend the paper's
  // introduction describes.
  EXPECT_LT(laptop.transition_energy(), desktop.transition_energy() / 10.0);
  EXPECT_LT(laptop.break_even_threshold(),
            desktop.break_even_threshold() / 2.0);
  EXPECT_LT(laptop.idle_w, desktop.idle_w);
  EXPECT_LT(laptop.standby_w, desktop.standby_w);
  // But it is slower: lower transfer rate, higher positioning latency.
  EXPECT_LT(laptop.transfer_bps, desktop.transfer_bps);
  EXPECT_GT(laptop.position_time(), desktop.position_time());
}

} // namespace
} // namespace spindown::disk
