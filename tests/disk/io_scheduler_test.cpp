// io_scheduler_test.cpp — service disciplines, the seek curve, and the
// disk's geometry-aware service loop.
#include "disk/io_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "disk/disk.h"
#include "util/units.h"

namespace spindown::disk {
namespace {

IoJob job(std::uint64_t id, std::uint64_t lba, std::uint64_t blocks = 8,
          std::uint64_t seq = 0) {
  IoJob j;
  j.request_id = id;
  j.bytes = blocks * util::kBlockBytes;
  j.lba = lba;
  j.blocks = blocks;
  j.seq = seq != 0 ? seq : id;
  return j;
}

std::vector<std::uint64_t> drain(IoScheduler& s, std::uint64_t head = 0) {
  std::vector<std::uint64_t> order;
  std::vector<IoJob> batch;
  while (!s.empty()) {
    batch.clear();
    s.pop_batch(head, batch);
    for (const auto& j : batch) {
      order.push_back(j.request_id);
      head = j.lba + j.blocks;
    }
  }
  return order;
}

TEST(FcfsScheduler, ServesInArrivalOrderIgnoringGeometry) {
  FcfsScheduler s;
  s.push(job(0, 900));
  s.push(job(1, 10));
  s.push(job(2, 500));
  EXPECT_FALSE(s.geometry_aware());
  EXPECT_EQ(drain(s), (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(FcfsScheduler, RingBufferSurvivesGrowthAndWrap) {
  FcfsScheduler s;
  // Interleave pushes and pops so head_ walks around the ring across a
  // growth boundary.
  std::uint64_t next_push = 0, next_pop = 0;
  std::vector<IoJob> batch;
  for (int round = 0; round < 100; ++round) {
    s.push(job(next_push, next_push * 10));
    ++next_push;
    if (round % 3 != 0) {
      batch.clear();
      s.pop_batch(0, batch);
      ASSERT_EQ(batch.size(), 1u);
      EXPECT_EQ(batch[0].request_id, next_pop);
      ++next_pop;
    }
  }
  while (!s.empty()) {
    batch.clear();
    s.pop_batch(0, batch);
    EXPECT_EQ(batch[0].request_id, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SstfScheduler, PicksNearestLba) {
  SstfScheduler s;
  s.push(job(0, 1000));
  s.push(job(1, 100));
  s.push(job(2, 1050));
  s.push(job(3, 2000));
  // Greedy walk with the head moving to the end of each served extent:
  // from 1040 the nearest is 1050; from 1058, 1000; from 1008, 100 (908
  // away) still beats 2000 (992 away); 2000 is last.
  EXPECT_EQ(drain(s, 1040), (std::vector<std::uint64_t>{2, 0, 1, 3}));
}

TEST(SstfScheduler, EqualDistanceBreaksTiesBySubmissionOrder) {
  SstfScheduler s;
  s.push(job(7, 200, 8, /*seq=*/2));
  s.push(job(8, 200, 8, /*seq=*/1));
  std::vector<IoJob> batch;
  s.pop_batch(200, batch);
  EXPECT_EQ(batch[0].request_id, 8u); // earlier seq wins
}

TEST(ScanScheduler, SweepsUpThenReverses) {
  ScanScheduler s;
  s.push(job(0, 500));
  s.push(job(1, 300));
  s.push(job(2, 700));
  s.push(job(3, 100));
  // Head 400, sweeping upward: 500, 700; reverse: 300 (with head at
  // 700+8), then 100.
  EXPECT_EQ(drain(s, 400), (std::vector<std::uint64_t>{0, 2, 1, 3}));
}

TEST(ClookScheduler, WrapsToLowestPendingLba) {
  ClookScheduler s;
  s.push(job(0, 500));
  s.push(job(1, 300));
  s.push(job(2, 700));
  s.push(job(3, 100));
  // Head 400: up to 500, 700; wrap to the lowest (100), then 300.
  EXPECT_EQ(drain(s, 400), (std::vector<std::uint64_t>{0, 2, 3, 1}));
}

TEST(BatchScheduler, CoalescesAdjacentExtentsIntoOneBatch) {
  BatchScheduler s{/*max_batch=*/16, /*coalesce_gap_blocks=*/4};
  s.push(job(0, 100, 10)); // [100, 110)
  s.push(job(1, 110, 10)); // exactly adjacent
  s.push(job(2, 123, 10)); // gap of 3 <= 4: coalesced
  s.push(job(3, 500, 10)); // far away: next batch
  std::vector<IoJob> batch;
  s.pop_batch(0, batch);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request_id, 0u);
  EXPECT_EQ(batch[1].request_id, 1u);
  EXPECT_EQ(batch[2].request_id, 2u);
  batch.clear();
  s.pop_batch(133, batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request_id, 3u);
}

TEST(BatchScheduler, RespectsMaxBatch) {
  BatchScheduler s{/*max_batch=*/2, /*coalesce_gap_blocks=*/64};
  s.push(job(0, 100, 10));
  s.push(job(1, 110, 10));
  s.push(job(2, 120, 10));
  std::vector<IoJob> batch;
  s.pop_batch(0, batch);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(SeekCurve, CalibratedMeanOverUniformDistancesEqualsAvgSeek) {
  const auto p = DiskParams::st3500630as();
  // E[|x - y|] over independent uniform head/target positions is 1/3; the
  // linear curve must average to avg_seek_s there.  Evaluate the exact
  // expectation of the linear curve at d = 1/3.
  EXPECT_NEAR(p.seek_time(1.0 / 3.0), p.avg_seek_s, 1e-15);
  // Monte-Carlo over the uniform-uniform distance distribution as a
  // cross-check of the calibration argument itself.
  util::Rng rng{123};
  double acc = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    acc += p.seek_time(std::abs(rng.uniform01() - rng.uniform01()));
  }
  EXPECT_NEAR(acc / n, p.avg_seek_s, 1e-4);
  // Endpoints: settle floor at a third of the average, monotone to the
  // full-stroke maximum.
  EXPECT_NEAR(p.seek_time(0.0), p.avg_seek_s / 3.0, 1e-15);
  EXPECT_GT(p.seek_time(1.0), p.seek_time(0.5));
}

// ---- the Disk's geometry-aware service loop ---------------------------------

class SchedulerDiskFixture : public ::testing::Test {
protected:
  des::Simulation sim_;
  DiskParams params_ = DiskParams::st3500630as();
  std::vector<Completion> completions_;

  std::unique_ptr<Disk> make_disk(std::unique_ptr<IoScheduler> sched) {
    auto d = std::make_unique<Disk>(sim_, 0, params_, make_never_policy(),
                                    util::Rng{1}, std::move(sched));
    d->set_completion_callback(
        [this](const Completion& c) { completions_.push_back(c); });
    return d;
  }
};

TEST_F(SchedulerDiskFixture, SstfReordersAQueuedBurst) {
  auto d = make_disk(make_sstf_scheduler());
  const util::Bytes size = util::mb(72.0);
  const std::uint64_t blocks = util::blocks_of(size);
  // Burst of three while the first is in service: the far one (id 1) must
  // be served last even though it arrived first.
  sim_.schedule_at(0.0, [&] {
    d->submit(0, size, 0, blocks);
    d->submit(1, size, 800'000'000, blocks); // far
    d->submit(2, size, blocks + 10, blocks); // near the head after job 0
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_EQ(completions_[0].request_id, 0u);
  EXPECT_EQ(completions_[1].request_id, 2u);
  EXPECT_EQ(completions_[2].request_id, 1u);
}

TEST_F(SchedulerDiskFixture, GeometrySeekIsBilledByDistance) {
  auto d = make_disk(make_sstf_scheduler());
  const util::Bytes size = util::mb(72.0); // 1 s transfer
  const std::uint64_t capacity_blocks = util::blocks_of(params_.capacity);
  // One request at LBA 0 (head starts there: zero distance), then one at
  // half the stroke.
  sim_.schedule_at(0.0, [&] { d->submit(0, size, 0, util::blocks_of(size)); });
  sim_.schedule_at(5.0, [&] {
    d->submit(1, size, capacity_blocks / 2, util::blocks_of(size));
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  const double transfer = params_.transfer_time(size);
  EXPECT_NEAR(completions_[0].response_time(),
              params_.seek_time(0.0) + params_.avg_rotation_s + transfer,
              1e-12);
  // Head is at blocks_of(size) after job 0; distance to capacity/2.
  const double dist =
      static_cast<double>(capacity_blocks / 2 - util::blocks_of(size)) /
      static_cast<double>(capacity_blocks);
  EXPECT_NEAR(completions_[1].response_time(),
              params_.seek_time(dist) + params_.avg_rotation_s + transfer,
              1e-9);
}

TEST_F(SchedulerDiskFixture, BatchPaysOnePositioningPhaseForAdjacentExtents) {
  auto d = make_disk(make_batch_scheduler(16, 64));
  const util::Bytes size = util::mb(72.0); // 1 s transfer each
  const std::uint64_t blocks = util::blocks_of(size);
  const std::uint64_t warm_lba = 10'000'000;
  // A warm request occupies the head so the adjacent trio is all pending
  // when the next batch is popped.
  sim_.schedule_at(0.0, [&] { d->submit(9, size, warm_lba, blocks); });
  sim_.schedule_at(0.5, [&] {
    d->submit(0, size, 0, blocks);
    d->submit(1, size, blocks, blocks);     // adjacent
    d->submit(2, size, 2 * blocks, blocks); // adjacent
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 4u);
  const auto m = d->metrics(sim_.now());
  // One positioning phase for the warm request, one for the whole trio.
  EXPECT_EQ(m.positionings, 2u);
  EXPECT_EQ(m.served, 4u);
  const double cap = static_cast<double>(util::blocks_of(params_.capacity));
  const double transfer = params_.transfer_time(size);
  const double pos_warm =
      params_.seek_time(static_cast<double>(warm_lba) / cap) +
      params_.avg_rotation_s;
  // C-LOOK wraps from the warm extent's end down to LBA 0 for the trio.
  const double pos_trio =
      params_.seek_time(static_cast<double>(warm_lba + blocks) / cap) +
      params_.avg_rotation_s;
  EXPECT_NEAR(completions_[3].completion,
              pos_warm + transfer + pos_trio + 3 * transfer, 1e-9);
  EXPECT_NEAR(m.time_in(PowerState::kPositioning), pos_warm + pos_trio, 1e-12);
  EXPECT_NEAR(m.time_in(PowerState::kTransfer), 4 * transfer, 1e-9);
  // The trio shares one service_start (the batch's positioning start).
  EXPECT_DOUBLE_EQ(completions_[1].service_start,
                   completions_[2].service_start);
  EXPECT_DOUBLE_EQ(completions_[1].service_start,
                   completions_[3].service_start);
}

TEST_F(SchedulerDiskFixture, MetricsSnapshotCountsEveryRequestExactlyOnce) {
  auto d = make_disk(make_fcfs_scheduler());
  const util::Bytes size = util::mb(720.0); // 10 s transfer
  sim_.schedule_at(0.0, [&] {
    d->submit(0, size);
    d->submit(1, size);
    d->submit(2, size);
  });
  // Mid-first-transfer: one in service, two queued, none served.
  sim_.schedule_at(5.0, [&] {
    const auto m = d->metrics(sim_.now());
    EXPECT_EQ(m.served, 0u);
    EXPECT_EQ(m.in_service, 1u);
    EXPECT_EQ(m.queued, 2u);
    EXPECT_EQ(m.served + m.in_service + m.queued, 3u);
  });
  // Mid-second-transfer: one served, one in service, one queued.
  sim_.schedule_at(15.0, [&] {
    const auto m = d->metrics(sim_.now());
    EXPECT_EQ(m.served, 1u);
    EXPECT_EQ(m.in_service, 1u);
    EXPECT_EQ(m.queued, 1u);
  });
  sim_.run();
  const auto m = d->metrics(sim_.now());
  EXPECT_EQ(m.served, 3u);
  EXPECT_EQ(m.in_service, 0u);
  EXPECT_EQ(m.queued, 0u);
}

TEST_F(SchedulerDiskFixture, FcfsDefaultMatchesLegacyConstantPositioning) {
  // A Disk constructed without a scheduler serves FCFS with the constant
  // position_time() — the seed simulator's exact timing.
  auto d = std::make_unique<Disk>(sim_, 0, params_, make_never_policy(),
                                  util::Rng{1});
  d->set_completion_callback(
      [this](const Completion& c) { completions_.push_back(c); });
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] { d->submit(9, size, /*lba=*/12345); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_NEAR(completions_[0].completion, params_.service_time(size), 1e-12);
}

} // namespace
} // namespace spindown::disk
