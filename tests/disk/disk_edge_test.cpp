// disk_edge_test.cpp — corner cases of the disk actor beyond the main suite.
#include <gtest/gtest.h>

#include "disk/disk.h"
#include "util/units.h"

namespace spindown::disk {
namespace {

class DiskEdge : public ::testing::Test {
protected:
  des::Simulation sim_;
  DiskParams params_ = DiskParams::st3500630as();
  std::vector<Completion> completions_;

  std::unique_ptr<Disk> make_disk(std::unique_ptr<SpinDownPolicy> policy) {
    auto d = std::make_unique<Disk>(sim_, 3, params_, std::move(policy),
                                    util::Rng{5});
    d->set_completion_callback(
        [this](const Completion& c) { completions_.push_back(c); });
    return d;
  }
};

TEST_F(DiskEdge, ZeroByteReadStillPaysPositioning) {
  auto d = make_disk(make_never_policy());
  sim_.schedule_at(0.0, [&] { d->submit(0, 0); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_NEAR(completions_[0].response_time(), params_.position_time(), 1e-12);
}

TEST_F(DiskEdge, ArrivalDuringPositioningQueues) {
  auto d = make_disk(make_never_policy());
  const util::Bytes size = util::mb(72.0);
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  // Mid-positioning (positioning lasts 12.66 ms).
  sim_.schedule_at(0.005, [&] { d->submit(1, size); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  const double svc = params_.service_time(size);
  EXPECT_NEAR(completions_[1].completion, 2 * svc, 1e-9);
}

TEST_F(DiskEdge, DiskIdCarriedInCompletions) {
  auto d = make_disk(make_never_policy());
  sim_.schedule_at(0.0, [&] { d->submit(77, util::mb(1.0)); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].disk_id, 3u);
  EXPECT_EQ(completions_[0].request_id, 77u);
  EXPECT_EQ(completions_[0].bytes, util::mb(1.0));
}

TEST_F(DiskEdge, BackToBackArrivalAtExactCompletionInstant) {
  // A request arriving in the same event round as a completion must be
  // served (order: completion event first — FIFO by schedule time).
  auto d = make_disk(make_fixed_policy(30.0));
  const util::Bytes size = util::mb(72.0);
  const double svc = params_.service_time(size);
  sim_.schedule_at(0.0, [&] { d->submit(0, size); });
  sim_.schedule_at(svc, [&] { d->submit(1, size); });
  sim_.run();
  ASSERT_EQ(completions_.size(), 2u);
  // No idle gap in between: second service begins immediately.
  EXPECT_NEAR(completions_[1].completion, 2 * svc, 1e-9);
  EXPECT_EQ(d->metrics(sim_.now()).spin_downs, 1u); // only the final one
}

TEST_F(DiskEdge, MetricsEnergyMatchesStateTimes) {
  auto d = make_disk(make_fixed_policy(5.0));
  sim_.schedule_at(0.0, [&] { d->submit(0, util::mb(144.0)); });
  sim_.schedule_at(200.0, [&] { d->submit(1, util::mb(36.0)); });
  sim_.run();
  const auto m = d->metrics(sim_.now());
  util::Joules manual = 0.0;
  for (std::size_t i = 0; i < kPowerStateCount; ++i) {
    manual += m.state_time[i] * power_of(static_cast<PowerState>(i), params_);
  }
  EXPECT_NEAR(m.energy(params_), manual, 1e-12);
  // Total state time covers the whole run.
  double total = 0.0;
  for (const auto t : m.state_time) total += t;
  EXPECT_NEAR(total, sim_.now(), 1e-9);
}

TEST_F(DiskEdge, ManyRapidCyclesRemainConsistent) {
  // Stress: requests spaced just past the (short) threshold force repeated
  // full standby cycles; counters and ledger must stay coherent.
  auto d = make_disk(make_fixed_policy(1.0));
  const util::Bytes size = util::mb(7.2); // 0.1 s transfer
  // One full cycle: spin-up (15) + service (~0.11) + idle (1) + spin-down
  // (10) ~ 26.1 s; space arrivals past it so each lands in standby.
  const double spacing = 30.0;
  for (int i = 0; i < 50; ++i) {
    sim_.schedule_at(spacing * i, [&, i] { d->submit(i, size); });
  }
  sim_.run();
  const auto m = d->metrics(sim_.now());
  EXPECT_EQ(m.served, 50u);
  EXPECT_EQ(completions_.size(), 50u);
  EXPECT_EQ(m.spin_downs, 50u);
  EXPECT_EQ(m.spin_ups, 49u); // first request found it idle
  // Response of every cycled request includes the full spin-up.
  for (std::size_t i = 1; i < completions_.size(); ++i) {
    EXPECT_GE(completions_[i].response_time(), params_.spinup_s);
  }
}

} // namespace
} // namespace spindown::disk
