#include "disk/spin_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace spindown::disk {
namespace {

TEST(FixedThresholdPolicy, ReturnsConstant) {
  FixedThresholdPolicy policy{30.0};
  util::Rng rng{1};
  for (int i = 0; i < 10; ++i) {
    const auto t = policy.idle_timeout(rng);
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(*t, 30.0);
  }
  EXPECT_DOUBLE_EQ(policy.threshold(), 30.0);
}

TEST(FixedThresholdPolicy, RejectsNegative) {
  EXPECT_THROW(FixedThresholdPolicy{-1.0}, std::invalid_argument);
}

TEST(FixedThresholdPolicy, ZeroMeansImmediate) {
  FixedThresholdPolicy policy{0.0};
  util::Rng rng{1};
  EXPECT_DOUBLE_EQ(*policy.idle_timeout(rng), 0.0);
}

TEST(NeverSpinDownPolicy, ReturnsNullopt) {
  NeverSpinDownPolicy policy;
  util::Rng rng{1};
  EXPECT_FALSE(policy.idle_timeout(rng).has_value());
  EXPECT_EQ(policy.name(), "never");
}

TEST(BreakEvenPolicy, UsesTable2Threshold) {
  const auto p = DiskParams::st3500630as();
  const auto policy = make_break_even_policy(p);
  util::Rng rng{1};
  EXPECT_NEAR(*policy->idle_timeout(rng), 53.3, 0.05);
}

TEST(RandomizedCompetitivePolicy, SamplesWithinBreakEven) {
  const auto p = DiskParams::st3500630as();
  RandomizedCompetitivePolicy policy{p};
  util::Rng rng{7};
  const double B = p.break_even_threshold();
  for (int i = 0; i < 5000; ++i) {
    const auto t = policy.idle_timeout(rng);
    ASSERT_TRUE(t.has_value());
    EXPECT_GE(*t, 0.0);
    EXPECT_LE(*t, B + 1e-9);
  }
}

TEST(RandomizedCompetitivePolicy, DensityMatchesTheory) {
  // F(t) = (e^(t/B) - 1)/(e - 1); check the empirical CDF at B/2.
  const auto p = DiskParams::st3500630as();
  RandomizedCompetitivePolicy policy{p};
  util::Rng rng{11};
  const double B = p.break_even_threshold();
  int below = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    if (*policy.idle_timeout(rng) <= B / 2.0) ++below;
  }
  const double expected = (std::exp(0.5) - 1.0) / (M_E - 1.0);
  EXPECT_NEAR(static_cast<double>(below) / kN, expected, 0.005);
}

TEST(RandomizedCompetitivePolicy, KolmogorovSmirnovAgainstTheory) {
  // Full-distribution test: the empirical CDF of sampled thresholds must
  // match F(t) = (e^(t/B) - 1)/(e - 1) on [0, B] everywhere, not just at
  // one probe point.  The KS critical value at alpha = 0.001 is
  // 1.95/sqrt(n); a genuine distribution mismatch (say, uniform sampling)
  // scores an order of magnitude above it.
  const auto p = DiskParams::st3500630as();
  RandomizedCompetitivePolicy policy{p};
  util::Rng rng{23};
  const double B = p.break_even_threshold();
  constexpr std::size_t kN = 20000;
  std::vector<double> samples;
  samples.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    samples.push_back(*policy.idle_timeout(rng));
  }
  std::sort(samples.begin(), samples.end());
  double ks = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double f = (std::exp(samples[i] / B) - 1.0) / (M_E - 1.0);
    const double lo = static_cast<double>(i) / kN;
    const double hi = static_cast<double>(i + 1) / kN;
    ks = std::max({ks, std::abs(f - lo), std::abs(f - hi)});
  }
  EXPECT_LT(ks, 1.95 / std::sqrt(static_cast<double>(kN)));
}

TEST(RandomizedCompetitivePolicy, MeanMatchesClosedForm) {
  // E[T] = int_0^B t e^(t/B) / (B(e-1)) dt = B / (e - 1).
  const auto p = DiskParams::st3500630as();
  RandomizedCompetitivePolicy policy{p};
  util::Rng rng{29};
  const double B = p.break_even_threshold();
  constexpr int kN = 200000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += *policy.idle_timeout(rng);
  const double expected = B / (M_E - 1.0);
  // Standard error: sd < B/4, so 4 sigma is well under 1% of the mean.
  EXPECT_NEAR(sum / kN, expected, 4.0 * (B / 4.0) / std::sqrt(kN));
}

TEST(OfflineOptimal, ShortGapStaysIdle) {
  const auto p = DiskParams::st3500630as();
  const std::vector<double> gaps{10.0}; // shorter than the round trip
  EXPECT_DOUBLE_EQ(offline_optimal_idle_energy(p, gaps), 10.0 * p.idle_w);
}

TEST(OfflineOptimal, LongGapGoesToStandby) {
  const auto p = DiskParams::st3500630as();
  const double gap = 10'000.0;
  const std::vector<double> gaps{gap};
  const double expected = p.transition_energy() +
                          p.standby_w * (gap - p.spindown_s - p.spinup_s);
  EXPECT_DOUBLE_EQ(offline_optimal_idle_energy(p, gaps), expected);
}

TEST(OfflineOptimal, BreakEvenBoundaryPicksCheaper) {
  const auto p = DiskParams::st3500630as();
  // Slightly above the round trip but below profitability: stay idle.
  const std::vector<double> gaps{p.spindown_s + p.spinup_s + 1.0};
  EXPECT_DOUBLE_EQ(offline_optimal_idle_energy(p, gaps),
                   (p.spindown_s + p.spinup_s + 1.0) * p.idle_w);
}

TEST(OfflineOptimal, NeverExceedsAlwaysIdlePolicy) {
  const auto p = DiskParams::st3500630as();
  util::Rng rng{13};
  std::vector<double> gaps;
  double idle_energy = 0.0;
  for (int i = 0; i < 1000; ++i) {
    gaps.push_back(rng.uniform(0.0, 300.0));
    idle_energy += gaps.back() * p.idle_w;
  }
  EXPECT_LE(offline_optimal_idle_energy(p, gaps), idle_energy);
}

TEST(OfflineOptimal, IsLowerBoundForFixedThresholdPolicy) {
  // For any gap sequence and any threshold T, the online fixed-threshold
  // cost must be >= the offline optimum.  (2-competitiveness sanity.)
  const auto p = DiskParams::st3500630as();
  util::Rng rng{17};
  std::vector<double> gaps;
  for (int i = 0; i < 2000; ++i) gaps.push_back(rng.exponential(1.0 / 60.0));
  const double opt = offline_optimal_idle_energy(p, gaps);
  for (const double T : {0.0, 10.0, 53.3, 120.0}) {
    double online = 0.0;
    for (const double g : gaps) {
      if (g <= T) {
        online += g * p.idle_w;
      } else {
        // Idle for T, then pay the transition; standby for the remainder if
        // the gap outlasts the round trip.
        online += T * p.idle_w + p.transition_energy();
        const double rest = g - T - p.spindown_s - p.spinup_s;
        if (rest > 0.0) online += rest * p.standby_w;
      }
    }
    EXPECT_GE(online, opt - 1e-6) << "threshold " << T;
  }
}

} // namespace
} // namespace spindown::disk
