#include "des/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace spindown::des {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const auto h = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelTwiceReturnsFalse) {
  Simulation sim;
  const auto h = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulation, CancelInertHandle) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulation, RunUntilWithCancelledHeadDoesNotOverrun) {
  Simulation sim;
  bool late_ran = false;
  const auto h = sim.schedule_at(1.0, [] {});
  sim.schedule_at(10.0, [&] { late_ran = true; });
  sim.cancel(h);
  sim.run_until(5.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, EventsScheduledDuringExecutionRun) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ExecutedCountsOnlyRealEvents) {
  Simulation sim;
  const auto h = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.executed(), 1u);
}

// ---------------------------------------------------------------------------
// Pooled-calendar semantics: generation-counted handles, exact pending(),
// same-time FIFO across cancellations.

TEST(Simulation, CancelAfterExecuteReturnsFalse) {
  Simulation sim;
  const auto h = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.pending(), 0u);
}

// Regression: the seed kernel computed pending() as queue size minus the
// cancelled-id set size; cancelling an already-executed event grew the set
// while the queue was empty, wrapping pending() to ~2^64.
TEST(Simulation, PendingNeverUnderflowsOnStaleCancel) {
  Simulation sim;
  const auto h1 = sim.schedule_at(1.0, [] {});
  const auto h2 = sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h1));
  EXPECT_FALSE(sim.cancel(h2));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_LT(sim.pending(), 1u << 30); // would fail spectacularly on wrap
  sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulation, PendingTracksScheduleCancelExecuteExactly) {
  Simulation sim;
  const auto a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  const auto c = sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.pending(), 3u);
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.step()); // runs the t=2 event
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.cancel(c));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, StaleHandleAfterSlotReuseCannotCancelNewEvent) {
  Simulation sim;
  // Execute A so its slot is recycled, then schedule B (which reuses it).
  const auto a = sim.schedule_at(1.0, [] {});
  sim.run();
  bool b_ran = false;
  const auto b = sim.schedule_at(2.0, [&] { b_ran = true; });
  EXPECT_FALSE(sim.cancel(a)); // stale generation: must not touch B
  sim.run();
  EXPECT_TRUE(b_ran);
  EXPECT_TRUE(sim.slab_size() >= 1u);
  (void)b;
}

TEST(Simulation, StaleHandleAfterCancelledSlotResurfacesCannotCancel) {
  Simulation sim;
  const auto a = sim.schedule_at(5.0, [] {});
  // Eager cancellation recycles A's slot immediately; the t=7 schedule
  // below may reuse it.
  EXPECT_TRUE(sim.cancel(a));
  sim.schedule_at(6.0, [] {});
  sim.run();
  bool c_ran = false;
  sim.schedule_at(7.0, [&] { c_ran = true; });
  EXPECT_FALSE(sim.cancel(a));
  sim.run();
  EXPECT_TRUE(c_ran);
}

TEST(Simulation, SameTimeFifoSurvivesInterleavedCancellations) {
  Simulation sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(
        sim.schedule_at(5.0, [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event; survivors must still fire in insertion order.
  for (int i = 0; i < 20; i += 3) EXPECT_TRUE(sim.cancel(handles[i]));
  sim.run();
  std::vector<int> expected;
  for (int i = 0; i < 20; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(Simulation, SlotsAreRecycledNotLeaked) {
  Simulation sim;
  // Steady-state schedule->fire keeps reusing the same slot.
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_in(1.0, [] {});
    sim.run();
  }
  EXPECT_LE(sim.slab_size(), 4u);
  EXPECT_EQ(sim.executed(), 1000u);
}

TEST(Simulation, ChurnStressScheduleCancelCycles) {
  // 10^5 schedule/cancel cycles mimicking the fixed-threshold spin-down
  // policy (arm a timer, disarm it when the next request lands), run under
  // the ASan preset in CI to shake out any slab/generation bug.
  Simulation sim;
  std::uint64_t cancelled = 0;
  std::uint64_t fired = 0;
  std::uint64_t i = 0;
  EventHandle timer;
  while (i < 100000) {
    timer = sim.schedule_in(10.0, [&fired] { ++fired; });
    if (i % 5 != 4) {
      // "Request arrives" before the timer: disarm it.
      ASSERT_TRUE(sim.cancel(timer));
      ++cancelled;
      sim.run_until(sim.now() + 1.0);
    } else {
      // Timer fires.
      sim.run_until(sim.now() + 20.0);
    }
    ++i;
  }
  sim.run();
  EXPECT_EQ(cancelled, 80000u);
  EXPECT_EQ(fired, 20000u);
  EXPECT_EQ(sim.pending(), 0u);
  // Eager cancellation recycles the slot immediately, so the slab never
  // grows past the handful of simultaneously live events.
  EXPECT_LE(sim.slab_size(), 4u);
}

TEST(Simulation, ManyEventsStressOrdering) {
  Simulation sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed(), 10000u);
}

} // namespace
} // namespace spindown::des
