#include "des/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace spindown::des {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const auto h = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelTwiceReturnsFalse) {
  Simulation sim;
  const auto h = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulation, CancelInertHandle) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulation, RunUntilWithCancelledHeadDoesNotOverrun) {
  Simulation sim;
  bool late_ran = false;
  const auto h = sim.schedule_at(1.0, [] {});
  sim.schedule_at(10.0, [&] { late_ran = true; });
  sim.cancel(h);
  sim.run_until(5.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, EventsScheduledDuringExecutionRun) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ExecutedCountsOnlyRealEvents) {
  Simulation sim;
  const auto h = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulation, ManyEventsStressOrdering) {
  Simulation sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed(), 10000u);
}

} // namespace
} // namespace spindown::des
