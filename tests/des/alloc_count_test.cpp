// alloc_count_test.cpp — proves the steady-state event loop is allocation-
// free.
//
// The file replaces the global operator new/delete with counting versions
// (they still allocate through std::malloc, so ASan keeps seeing every
// allocation).  The override is binary-wide, which is harmless for the other
// suites in this binary: they only gain a relaxed atomic increment per
// allocation.
//
// Methodology: warm the kernel up past its slab/heap growth phase, snapshot
// the counter, run a large number of schedule -> fire and schedule -> cancel
// cycles, and require the counter delta to be exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "des/simulation.h"
#include "disk/disk.h"
#include "disk/io_scheduler.h"
#include "disk/spin_policy.h"
#include "obs/trace.h"
#include "util/units.h"

namespace {
std::atomic<std::uint64_t> g_news{0};
}

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace spindown::des {
namespace {

std::uint64_t allocation_count() {
  return g_news.load(std::memory_order_relaxed);
}

TEST(AllocCount, SteadyStateScheduleFireCycleIsAllocationFree) {
  Simulation sim;
  struct Chain {
    Simulation& sim;
    std::uint64_t remaining;
    void operator()() {
      if (remaining-- > 0) {
        sim.schedule_in(1.0, [this] { (*this)(); });
      }
    }
  };
  // Warm-up: grows the slab, the calendar heap, and any lazy allocations.
  Chain warm{sim, 1000};
  warm();
  sim.run();

  Chain chain{sim, 50000};
  const std::uint64_t before = allocation_count();
  chain();
  sim.run();
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u);
  EXPECT_GE(sim.executed(), 51000u);
}

TEST(AllocCount, SteadyStateScheduleCancelCycleIsAllocationFree) {
  Simulation sim;
  // Warm-up: one arm/disarm cycle plus a clock-advancing event.
  for (int i = 0; i < 100; ++i) {
    auto h = sim.schedule_in(10.0, [] {});
    sim.cancel(h);
    sim.schedule_in(1.0, [] {});
    sim.run_until(sim.now() + 1.0);
  }
  sim.run();

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 50000; ++i) {
    auto h = sim.schedule_in(10.0, [] {});
    sim.cancel(h);
    sim.schedule_in(1.0, [] {});
    sim.run_until(sim.now() + 1.0);
  }
  sim.run();
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u);
}

// The completion chain through the disk: submit -> schedule positioning ->
// schedule transfer -> completion callback -> resubmit.  With the
// InlineFunction callbacks and the schedulers' grow-only storage the whole
// cycle must be allocation-free once warm — the refactored request path
// keeps PR 2's zero-alloc property end to end.
void run_disk_cycle_test(std::unique_ptr<spindown::disk::IoScheduler> sched) {
  using spindown::disk::Completion;
  using spindown::disk::Disk;
  Simulation sim;
  Disk disk{sim, 0, spindown::disk::DiskParams::st3500630as(),
            spindown::disk::make_never_policy(), spindown::util::Rng{1},
            std::move(sched)};

  struct Chain {
    Simulation& sim;
    Disk& disk;
    std::uint64_t remaining;
    std::uint64_t measure_at;
    std::uint64_t before = 0;
    std::uint64_t lba = 0;
    void submit_next() {
      lba = (lba + 4096) % 1'000'000;
      disk.submit(remaining, 100 * spindown::util::kBlockBytes, lba, 100);
    }
    void operator()(const Completion&) {
      // Snapshot after the warm-up portion of one continuous chain (the
      // disk never goes idle in between, so no lazy growth straddles the
      // measured region).
      if (remaining == measure_at) before = allocation_count();
      if (remaining-- > 0) submit_next();
    }
  };
  Chain chain{sim, disk, 20'000, /*measure_at=*/18'000};
  disk.set_completion_callback([&chain](const Completion& c) { chain(c); });
  sim.schedule_at(0.0, [&chain] { chain.submit_next(); });
  sim.run();
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - chain.before, 0u);
  EXPECT_EQ(disk.metrics(sim.now()).served, 20'001u);
}

TEST(AllocCount, DiskSubmitCompleteCycleIsAllocationFreeFcfs) {
  run_disk_cycle_test(spindown::disk::make_fcfs_scheduler());
}

TEST(AllocCount, DiskSubmitCompleteCycleIsAllocationFreeSstf) {
  run_disk_cycle_test(spindown::disk::make_sstf_scheduler());
}

TEST(AllocCount, DiskSubmitCompleteCycleIsAllocationFreeBatch) {
  run_disk_cycle_test(spindown::disk::make_batch_scheduler());
}

// The same disk cycle with observability wired but OFF: a Disk holding a
// null TraceBuffer pointer (the obs=off path is a branch on that null) must
// stay exactly as allocation-free as an untraced disk.
TEST(AllocCount, DiskCycleWithObsOffIsAllocationFree) {
  using spindown::disk::Completion;
  using spindown::disk::Disk;
  Simulation sim;
  Disk disk{sim, 0, spindown::disk::DiskParams::st3500630as(),
            spindown::disk::make_never_policy(), spindown::util::Rng{1},
            spindown::disk::make_fcfs_scheduler()};
  disk.set_trace(nullptr); // obs=off: explicit null sink

  struct Chain {
    Simulation& sim;
    Disk& disk;
    std::uint64_t remaining;
    std::uint64_t measure_at;
    std::uint64_t before = 0;
    std::uint64_t lba = 0;
    void submit_next() {
      lba = (lba + 4096) % 1'000'000;
      disk.submit(remaining, 100 * spindown::util::kBlockBytes, lba, 100);
    }
    void operator()(const Completion&) {
      if (remaining == measure_at) before = allocation_count();
      if (remaining-- > 0) submit_next();
    }
  };
  Chain chain{sim, disk, 20'000, /*measure_at=*/18'000};
  disk.set_completion_callback([&chain](const Completion& c) { chain(c); });
  sim.schedule_at(0.0, [&chain] { chain.submit_next(); });
  sim.run();
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - chain.before, 0u);
}

// Tracing into a pre-reserved buffer: the emit path is a bounds-checked
// push_back, so once the buffer holds enough capacity the traced steady
// state allocates nothing either.
TEST(AllocCount, DiskCycleTracingIntoReservedBufferIsAllocationFree) {
  using spindown::disk::Completion;
  using spindown::disk::Disk;
  Simulation sim;
  spindown::obs::TraceBuffer trace{
      spindown::obs::kind_bit(spindown::obs::Kind::kSpan) |
      spindown::obs::kind_bit(spindown::obs::Kind::kPower)};
  // 5 span edges plus up to 3 power transitions per request.
  trace.reserve(10 * 21'000);
  Disk disk{sim, 0, spindown::disk::DiskParams::st3500630as(),
            spindown::disk::make_never_policy(), spindown::util::Rng{1},
            spindown::disk::make_fcfs_scheduler()};
  disk.set_trace(&trace);

  struct Chain {
    Simulation& sim;
    Disk& disk;
    std::uint64_t remaining;
    std::uint64_t measure_at;
    std::uint64_t before = 0;
    std::uint64_t lba = 0;
    void submit_next() {
      lba = (lba + 4096) % 1'000'000;
      disk.submit(remaining, 100 * spindown::util::kBlockBytes, lba, 100);
    }
    void operator()(const Completion&) {
      if (remaining == measure_at) before = allocation_count();
      if (remaining-- > 0) submit_next();
    }
  };
  Chain chain{sim, disk, 20'000, /*measure_at=*/18'000};
  disk.set_completion_callback([&chain](const Completion& c) { chain(c); });
  sim.schedule_at(0.0, [&chain] { chain.submit_next(); });
  sim.run();
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - chain.before, 0u);
  EXPECT_GT(trace.size(), 5u * 20'000u); // the events really were recorded
}

TEST(AllocCount, OversizedCaptureDoesAllocate) {
  // Sanity check that the counter actually observes the heap fallback path.
  Simulation sim;
  struct Big {
    char blob[128];
  };
  Big big{};
  const std::uint64_t before = allocation_count();
  sim.schedule_in(1.0, [big] { (void)big; });
  const std::uint64_t after = allocation_count();
  EXPECT_GE(after - before, 1u);
  sim.run();
}

} // namespace
} // namespace spindown::des
