#include "des/process.h"

#include <gtest/gtest.h>

#include <vector>

namespace spindown::des {
namespace {

Process simple_waiter(Simulation& sim, std::vector<double>& log) {
  log.push_back(sim.now());
  co_await delay(sim, 5.0);
  log.push_back(sim.now());
  co_await delay(sim, 2.5);
  log.push_back(sim.now());
}

TEST(Process, DelaysAdvanceSimTime) {
  Simulation sim;
  std::vector<double> log;
  spawn(sim, simple_waiter(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<double>{0.0, 5.0, 7.5}));
}

Process zero_delay(Simulation& sim, int& steps) {
  co_await delay(sim, 0.0); // ready immediately, no suspension
  ++steps;
}

TEST(Process, ZeroDelayDoesNotSuspend) {
  Simulation sim;
  int steps = 0;
  spawn(sim, zero_delay(sim, steps));
  sim.run();
  EXPECT_EQ(steps, 1);
}

Process ping(Simulation& sim, std::vector<std::string>& log, double period,
             std::string name, int reps) {
  for (int i = 0; i < reps; ++i) {
    co_await delay(sim, period);
    log.push_back(name);
  }
}

TEST(Process, InterleavingIsDeterministic) {
  Simulation sim;
  std::vector<std::string> log;
  spawn(sim, ping(sim, log, 2.0, "fast", 3)); // t = 2, 4, 6
  spawn(sim, ping(sim, log, 3.0, "slow", 2)); // t = 3, 6
  sim.run();
  // Both fire at t = 6; "slow" scheduled its t = 6 wake-up at t = 3, before
  // "fast" did at t = 4, so FIFO tie-breaking runs "slow" first.
  EXPECT_EQ(log, (std::vector<std::string>{"fast", "slow", "fast", "slow",
                                           "fast"}));
}

Process waits_for(Simulation& sim, Trigger& t, std::vector<double>& log) {
  co_await t.wait(sim);
  log.push_back(sim.now());
}

Process fires(Simulation& sim, Trigger& t, double at) {
  co_await delay(sim, at);
  t.fire(sim);
}

TEST(Trigger, WakesAllWaitersAtFireTime) {
  Simulation sim;
  Trigger t;
  std::vector<double> log;
  spawn(sim, waits_for(sim, t, log));
  spawn(sim, waits_for(sim, t, log));
  spawn(sim, fires(sim, t, 4.0));
  sim.run();
  EXPECT_EQ(log, (std::vector<double>{4.0, 4.0}));
  EXPECT_TRUE(t.fired());
}

TEST(Trigger, WaitAfterFireCompletesImmediately) {
  Simulation sim;
  Trigger t;
  std::vector<double> log;
  spawn(sim, fires(sim, t, 1.0));
  sim.run();
  spawn(sim, waits_for(sim, t, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<double>{1.0})); // completes at current time
}

TEST(Trigger, DoubleFireIsIdempotent) {
  Simulation sim;
  Trigger t;
  t.fire(sim);
  t.fire(sim);
  sim.run();
  EXPECT_TRUE(t.fired());
}

Process spawner(Simulation& sim, std::vector<double>& log) {
  spawn(sim, simple_waiter(sim, log)); // nested spawn from inside a process
  co_await delay(sim, 1.0);
}

TEST(Process, NestedSpawnWorks) {
  Simulation sim;
  std::vector<double> log;
  spawn(sim, spawner(sim, log));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log.back(), 7.5);
}

} // namespace
} // namespace spindown::des
