#include "des/resource.h"

#include <gtest/gtest.h>

#include <vector>

#include "des/process.h"

namespace spindown::des {
namespace {

TEST(Resource, RejectsZeroCapacity) {
  EXPECT_THROW(Resource{0}, std::invalid_argument);
}

TEST(Resource, CallbackGrantWhenFree) {
  Simulation sim;
  Resource res{1};
  bool granted = false;
  res.enqueue(sim, [&] { granted = true; });
  EXPECT_EQ(res.in_use(), 1u);
  sim.run();
  EXPECT_TRUE(granted);
}

TEST(Resource, FcfsOrderUnderContention) {
  Simulation sim;
  Resource res{1};
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    res.enqueue(sim, [&order, i] { order.push_back(i); });
  }
  // Only the first grant is immediate; release one at a time.
  sim.run();
  ASSERT_EQ(order.size(), 1u);
  for (int i = 1; i < 5; ++i) {
    res.release(sim);
    sim.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(i + 1));
    EXPECT_EQ(order.back(), i);
  }
}

TEST(Resource, CapacityTwoServesTwoConcurrently) {
  Simulation sim;
  Resource res{2};
  int active = 0;
  res.enqueue(sim, [&] { ++active; });
  res.enqueue(sim, [&] { ++active; });
  res.enqueue(sim, [&] { ++active; });
  sim.run();
  EXPECT_EQ(active, 2);
  EXPECT_EQ(res.queue_length(), 1u);
  res.release(sim);
  sim.run();
  EXPECT_EQ(active, 3);
}

TEST(Resource, ReleaseWithoutAcquireThrows) {
  Simulation sim;
  Resource res{1};
  EXPECT_THROW(res.release(sim), std::logic_error);
}

Process worker(Simulation& sim, Resource& res, double hold,
               std::vector<std::pair<double, double>>& spans) {
  co_await res.acquire(sim);
  const double start = sim.now();
  co_await delay(sim, hold);
  res.release(sim);
  spans.emplace_back(start, sim.now());
}

TEST(Resource, CoroutineWorkersSerialize) {
  Simulation sim;
  Resource res{1};
  std::vector<std::pair<double, double>> spans;
  for (int i = 0; i < 3; ++i) spawn(sim, worker(sim, res, 10.0, spans));
  sim.run();
  ASSERT_EQ(spans.size(), 3u);
  // Non-overlapping, back-to-back service.
  EXPECT_DOUBLE_EQ(spans[0].first, 0.0);
  EXPECT_DOUBLE_EQ(spans[1].first, 10.0);
  EXPECT_DOUBLE_EQ(spans[2].first, 20.0);
}

TEST(Resource, MixedCallbackAndCoroutine) {
  Simulation sim;
  Resource res{1};
  std::vector<int> order;
  res.enqueue(sim, [&] { order.push_back(0); });
  std::vector<std::pair<double, double>> spans;
  spawn(sim, worker(sim, res, 1.0, spans));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_TRUE(spans.empty()); // coroutine still waiting on the callback slot
  res.release(sim);
  sim.run();
  ASSERT_EQ(spans.size(), 1u);
}

} // namespace
} // namespace spindown::des
