// controller_test.cpp — FleetController unit behaviour: replica layout,
// deterministic write classification, redirect preferences, and the
// foreground/background submission contract.
#include "orch/controller.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::orch {
namespace {

/// A tiny fleet the controller can rewrite against: four 1 MB files, file f
/// on disk f, each at LBA 0 of its own disk.  The harness owns the mapping
/// and extent vectors because the controller holds references to them.
struct Harness {
  explicit Harness(Config config) {
    const util::Bytes size = util::mb(1.0);
    for (std::uint32_t f = 0; f < 4; ++f) {
      mapping.push_back(f % config.data_disks);
      files.push_back(workload::FileInfo{f, size, 0.25});
    }
    // Pack per-disk in file-id order, mirroring workload::layout_extents.
    std::vector<std::uint64_t> cursor(config.data_disks, 0);
    for (std::uint32_t f = 0; f < 4; ++f) {
      const std::uint64_t blocks = util::blocks_of(size);
      extents.push_back(workload::FileExtent{cursor[mapping[f]], blocks});
      cursor[mapping[f]] += blocks;
    }
    controller = std::make_unique<FleetController>(config, service(), mapping,
                                                   extents, nullptr);
  }

  static ServiceModel service() {
    // 1 MB at 100 MB/s ~ 10 ms + 5 ms positioning; spin-up 5 s; the policy
    // sleeps a disk after 10 s idle.
    return ServiceModel{0.005, 100e6, 5.0, 10.0};
  }

  std::vector<std::uint32_t> mapping;
  std::vector<workload::FileExtent> extents;
  std::vector<workload::FileInfo> files;
  std::unique_ptr<FleetController> controller;
};

Config redirect_config() {
  Config c;
  c.redirect = true;
  c.data_disks = 4;
  c.replicas = 2;
  return c;
}

Config offload_config() {
  Config c;
  c.offload = true;
  c.data_disks = 2;
  c.log_disks = 1;
  c.destage_deadline_s = 50.0;
  c.write_fraction = 0.5;
  c.horizon_s = 10'000.0;
  c.disk_capacity = util::gb(1.0);
  return c;
}

std::uint64_t find_id(bool want_write, double fraction,
                      std::uint64_t start = 1) {
  for (std::uint64_t id = start;; ++id) {
    if (FleetController::classify_write(id, fraction) == want_write) {
      return id;
    }
  }
}

TEST(RedirectController, ReplicaPlacementStridesAcrossTheFleet) {
  Harness h{redirect_config()};
  // k = 2 over 4 disks: stride max(1, 4/2) = 2, so file f's second copy
  // lands on disk (f + 2) % 4.
  EXPECT_EQ(h.controller->replica_disks(0),
            (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(h.controller->replica_disks(1),
            (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(h.controller->replica_disks(2),
            (std::vector<std::uint32_t>{2, 0}));
  EXPECT_EQ(h.controller->replica_disks(3),
            (std::vector<std::uint32_t>{3, 1}));
}

TEST(RedirectController, ReplicaCopiesThatWrapOntoTheSameDiskDeduplicate) {
  auto config = redirect_config();
  config.data_disks = 2;
  config.replicas = 4; // more copies than disks: stride 1, wraps twice
  Harness h{config};
  EXPECT_EQ(h.controller->replica_disks(0),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(h.controller->replica_disks(1),
            (std::vector<std::uint32_t>{1, 0}));
}

TEST(RedirectController, ClassifyWriteIsDeterministicAndCalibrated) {
  // Degenerate fractions never / always classify as a write.
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_FALSE(FleetController::classify_write(id, 0.0));
    EXPECT_TRUE(FleetController::classify_write(id, 1.0));
  }
  // Pure function of the id: repeated calls agree.
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(FleetController::classify_write(id, 0.2),
              FleetController::classify_write(id, 0.2));
  }
  // Frequency matches the requested fraction over sequential ids.
  std::uint64_t writes = 0;
  const std::uint64_t n = 200'000;
  for (std::uint64_t id = 0; id < n; ++id) {
    writes += FleetController::classify_write(id, 0.2) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(n), 0.2,
              0.01);
}

TEST(RedirectController, ReadPrefersThePredictedAwakeReplica) {
  Harness h{redirect_config()};
  std::vector<Submission> out;

  // Park a request on disk 1 late enough that every other disk's predicted
  // idle time exceeds sleep_after_s.  Both of file 1's replicas (1, 3) are
  // asleep, so the read stays home on the lowest-id replica = the primary.
  h.controller->route(995.0, 1, h.files[1], out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].disk, 1u);
  EXPECT_EQ(h.controller->redirects(), 0u);

  // File 3's primary (disk 3) is asleep but its replica lives on disk 1,
  // which the model now predicts spinning: the read redirects there.
  out.clear();
  h.controller->route(1000.0, 2, h.files[3], out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].disk, 1u);
  EXPECT_EQ(h.controller->redirects(), 1u);
  // The replica extent continues after disk 1's primary layout (file 1's
  // extent), so replica bytes never alias primary bytes.
  EXPECT_EQ(out[0].lba, h.extents[1].lba + h.extents[1].blocks);
  EXPECT_EQ(out[0].blocks, h.extents[3].blocks);
}

TEST(RedirectController, QuotaDefaultsToTheWholeFleetWithoutABudget) {
  Harness h{redirect_config()};
  EXPECT_EQ(h.controller->awake_quota(), 4u);
}

TEST(OrchController, SleepingPrimarySendsWritesToTheLogTier) {
  Harness h{offload_config()};
  const std::uint64_t wid = find_id(true, 0.5);
  std::vector<Submission> out;
  // t = 1000: disk 0 has been idle since t = 0 and is predicted asleep.
  h.controller->route(1000.0, wid, h.files[0], out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].disk, 2u); // the one log disk, global id data_disks + 0
  EXPECT_FALSE(out[0].background);
  EXPECT_EQ(h.controller->offloads(), 1u);

  // Until the destage lands, reads of the file follow the freshest copy.
  const std::uint64_t rid = find_id(false, 0.5);
  out.clear();
  h.controller->route(1001.0, rid, h.files[0], out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].disk, 2u);
  EXPECT_EQ(out[0].lba, 0u); // log-structured cursor starts at 0
}

TEST(OrchController, ForegroundServiceTriggersDestageBehindIt) {
  Harness h{offload_config()};
  const std::uint64_t wid = find_id(true, 0.5);
  std::vector<Submission> out;
  h.controller->route(1000.0, wid, h.files[0], out);
  ASSERT_EQ(out.size(), 1u);

  // A read of file 2 (also homed on disk 0, no log copy) spins disk 0 up;
  // the buffered write destages behind it in the same rewrite: foreground
  // first, then the background submission at the same t, tagged with the
  // high id bit and aimed at the home extent.
  const std::uint64_t rid = find_id(false, 0.5);
  out.clear();
  h.controller->route(1002.0, rid, h.files[2], out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].request_id, rid);
  EXPECT_EQ(out[0].disk, 0u);
  EXPECT_FALSE(out[0].background);
  EXPECT_EQ(out[1].request_id, wid | kBackgroundIdBit);
  EXPECT_EQ(out[1].disk, 0u);
  EXPECT_EQ(out[1].lba, h.extents[0].lba);
  EXPECT_TRUE(out[1].background);
  EXPECT_DOUBLE_EQ(out[1].t, 1002.0);
  EXPECT_EQ(h.controller->destages(), 1u);
}

TEST(OrchController, DeadlineFlushDestagesAtTheDeadlineInstant) {
  Harness h{offload_config()};
  const std::uint64_t wid = find_id(true, 0.5);
  std::vector<Submission> out;
  h.controller->route(1000.0, wid, h.files[0], out);
  out.clear();

  h.controller->flush_deadlines(1049.0, out);
  EXPECT_TRUE(out.empty());
  h.controller->flush_deadlines(1050.0, out); // deadline_s = 50
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].t, 1050.0);
  EXPECT_EQ(out[0].request_id, wid | kBackgroundIdBit);
  EXPECT_EQ(out[0].disk, 0u);
  EXPECT_TRUE(out[0].background);
  EXPECT_EQ(h.controller->destages(), 1u);

  // Nothing left: the flush is idempotent.
  out.clear();
  h.controller->flush_deadlines(10'000.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(OrchController, AwakePrimaryWritesThroughWithoutOffload) {
  Harness h{offload_config()};
  const std::uint64_t wid = find_id(true, 0.5);
  std::vector<Submission> out;
  // t = 1: every disk still inside its sleep_after window, so the write
  // goes straight home and nothing is buffered.
  h.controller->route(1.0, wid, h.files[0], out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].disk, 0u);
  EXPECT_EQ(h.controller->offloads(), 0u);
}

} // namespace
} // namespace spindown::orch
