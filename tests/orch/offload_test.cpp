// offload_test.cpp — write off-loading: log-tier placement, destage
// deadlines (edge cases), and the log-copy shadowing contract.
#include "orch/offload.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/units.h"

namespace spindown::orch {
namespace {

constexpr std::uint32_t kDataDisks = 4;
constexpr std::uint32_t kLogDisks = 2;
constexpr double kDeadline = 100.0;
constexpr double kHorizon = 1000.0;

WriteOffload make_offload(util::Bytes capacity = util::gb(1.0)) {
  return WriteOffload{kDataDisks, kLogDisks, capacity, kDeadline, kHorizon};
}

TEST(OrchOffload, AbsorbPlacesOnLogTierAndRecordsDebt) {
  auto off = make_offload();
  const auto copy = off.absorb(/*t=*/10.0, /*id=*/7, /*file=*/3,
                               util::mb(64.0), /*blocks=*/128,
                               /*target_lba=*/555, /*target=*/2);
  ASSERT_TRUE(copy.has_value());
  EXPECT_GE(copy->log_disk, kDataDisks); // global id on the log tier
  EXPECT_LT(copy->log_disk, kDataDisks + kLogDisks);
  EXPECT_TRUE(off.has_pending(2));
  EXPECT_FALSE(off.has_pending(1));
  EXPECT_EQ(off.buffered(), 1u);
  EXPECT_EQ(off.live(), 1u);

  const auto read_copy = off.log_copy(3);
  ASSERT_TRUE(read_copy.has_value());
  EXPECT_EQ(read_copy->log_disk, copy->log_disk);
  EXPECT_EQ(read_copy->log_lba, copy->log_lba);
}

TEST(OrchOffload, DeadlineExactlyDuePopsInclusive) {
  auto off = make_offload();
  off.absorb(10.0, 1, 0, util::mb(1.0), 2, 0, 0);
  std::vector<PendingWrite> out;
  // One tick before the deadline: nothing due.
  off.drain_due(10.0 + kDeadline - 1e-9, out);
  EXPECT_TRUE(out.empty());
  // At the deadline exactly: the write destages (<=, not <).
  off.drain_due(10.0 + kDeadline, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].deadline, 10.0 + kDeadline);
  EXPECT_EQ(out[0].target, 0u);
  EXPECT_EQ(out[0].target_lba, 0u);
  EXPECT_EQ(off.live(), 0u);
  EXPECT_FALSE(off.has_pending(0));
  EXPECT_FALSE(off.log_copy(0).has_value());
}

TEST(OrchOffload, DeadlineIsCappedAtTheHorizon) {
  auto off = make_offload();
  // Absorbed 10 s before the horizon with a 100 s deadline: the cap pulls
  // the destage inside the measurement window.
  off.absorb(kHorizon - 10.0, 1, 0, util::mb(1.0), 2, 0, 1);
  std::vector<PendingWrite> out;
  off.drain_due(kHorizon - 10.5, out);
  EXPECT_TRUE(out.empty());
  off.drain_due(kHorizon, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].deadline, kHorizon);
}

TEST(OrchOffload, TriggeredDrainSettlesBeforeTheDeadline) {
  auto off = make_offload();
  off.absorb(10.0, 1, 0, util::mb(1.0), 2, 100, 3);
  off.absorb(11.0, 2, 1, util::mb(1.0), 2, 200, 3);
  off.absorb(12.0, 3, 2, util::mb(1.0), 2, 300, 1);

  // The target disk serves a foreground request: its whole debt destages
  // now, in buffering order; the other disk's debt is untouched.
  std::vector<PendingWrite> out;
  off.drain_disk(3, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].request_id, 1u);
  EXPECT_EQ(out[1].request_id, 2u);
  EXPECT_FALSE(off.has_pending(3));
  EXPECT_TRUE(off.has_pending(1));

  // The deadline pass later must not re-emit the settled writes.
  out.clear();
  off.drain_due(kHorizon, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].request_id, 3u);
  EXPECT_EQ(off.destaged(), 3u);
  EXPECT_EQ(off.live(), 0u);
}

TEST(OrchOffload, NewerWriteShadowsOlderUntilBothDestage) {
  auto off = make_offload();
  const auto first = off.absorb(10.0, 1, 5, util::mb(1.0), 2, 0, 0);
  const auto second = off.absorb(20.0, 2, 5, util::mb(1.0), 2, 0, 0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Reads see the freshest copy.
  const auto copy = off.log_copy(5);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->log_lba, second->log_lba);
  // Both pendings destage (the home disk converges); the shadow map empties.
  std::vector<PendingWrite> out;
  off.drain_disk(0, out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(off.log_copy(5).has_value());
}

TEST(OrchOffload, FullTierRejectsUntilSpaceIsReleased) {
  auto off = WriteOffload{kDataDisks, /*log_disks=*/1, util::mb(10.0),
                          kDeadline, kHorizon};
  ASSERT_TRUE(off.absorb(1.0, 1, 0, util::mb(6.0), 12, 0, 0).has_value());
  // 6 MB of a 10 MB buffer used: another 6 MB write cannot be absorbed —
  // the caller falls back to writing through to the home disk.
  EXPECT_FALSE(off.absorb(2.0, 2, 1, util::mb(6.0), 12, 0, 1).has_value());
  // Destaging returns the space and the tier absorbs again.
  std::vector<PendingWrite> out;
  off.drain_disk(0, out);
  EXPECT_TRUE(off.absorb(3.0, 3, 1, util::mb(6.0), 12, 0, 1).has_value());
}

} // namespace
} // namespace spindown::orch
