// fleet_orch_test.cpp — orchestration at fleet scale: shard bit-identity
// with every mechanism live, the replicas-without-orch inertness contract,
// and scenario-string resolution of the orch/replica keys.
#include "sys/fleet.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sys/scenario.h"
#include "util/units.h"

namespace spindown::sys {
namespace {

workload::FileCatalog fleet_catalog(std::size_t n_files = 12) {
  std::vector<workload::FileInfo> files(n_files);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = util::mb(50.0 + 10.0 * static_cast<double>(i % 4));
    files[i].popularity = 1.0 / static_cast<double>(n_files);
  }
  return workload::FileCatalog{files};
}

/// A 6-data-disk fleet with orchestration fully on: one log disk appended
/// (num_disks = 7), 2-way replication, redirect + offload + budget.
ExperimentConfig orch_config(const workload::FileCatalog& cat) {
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping.resize(cat.size());
  for (std::size_t i = 0; i < cfg.mapping.size(); ++i) {
    cfg.mapping[i] = static_cast<std::uint32_t>(i % 6);
  }
  cfg.orch = OrchSpec::parse("redirect+offload:1:120+budget:p99:5");
  cfg.num_disks = 6 + cfg.orch.log_disks;
  cfg.replicas = 2;
  cfg.dynamic_routing = true;
  cfg.workload = WorkloadSpec::poisson(0.8, 200.0);
  cfg.seed = 17;
  return cfg;
}

/// Every physical field of two RunResults must agree bitwise (same contract
/// as tests/sys/fleet_test.cpp; `events` deliberately absent).
void expect_same_physical(const RunResult& a, const RunResult& b) {
  EXPECT_DOUBLE_EQ(a.power.horizon_s, b.power.horizon_s);
  EXPECT_DOUBLE_EQ(a.power.energy, b.power.energy);
  EXPECT_DOUBLE_EQ(a.power.average_power, b.power.average_power);
  EXPECT_DOUBLE_EQ(a.power.always_on_energy, b.power.always_on_energy);
  EXPECT_DOUBLE_EQ(a.power.saving_vs_always_on, b.power.saving_vs_always_on);
  EXPECT_EQ(a.power.spin_ups, b.power.spin_ups);
  EXPECT_EQ(a.power.spin_downs, b.power.spin_downs);
  for (std::size_t s = 0; s < a.power.state_time.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.power.state_time[s], b.power.state_time[s]);
  }
  EXPECT_EQ(a.response.count(), b.response.count());
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
  EXPECT_DOUBLE_EQ(a.response.stddev(), b.response.stddev());
  EXPECT_DOUBLE_EQ(a.response.min(), b.response.min());
  EXPECT_DOUBLE_EQ(a.response.max(), b.response.max());
  EXPECT_DOUBLE_EQ(a.response.p50(), b.response.p50());
  EXPECT_DOUBLE_EQ(a.response.p95(), b.response.p95());
  EXPECT_DOUBLE_EQ(a.response.p99(), b.response.p99());
  EXPECT_EQ(a.hits_response.count(), b.hits_response.count());
  EXPECT_DOUBLE_EQ(a.hits_response.mean(), b.hits_response.mean());
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.completed_at_horizon, b.completed_at_horizon);
  EXPECT_EQ(a.in_flight_at_horizon, b.in_flight_at_horizon);
  ASSERT_EQ(a.per_disk.size(), b.per_disk.size());
  for (std::size_t i = 0; i < a.per_disk.size(); ++i) {
    SCOPED_TRACE("disk " + std::to_string(i));
    const auto& da = a.per_disk[i];
    const auto& db = b.per_disk[i];
    EXPECT_EQ(da.disk_id, db.disk_id);
    for (std::size_t s = 0; s < da.state_time.size(); ++s) {
      EXPECT_DOUBLE_EQ(da.state_time[s], db.state_time[s]);
    }
    EXPECT_EQ(da.spin_ups, db.spin_ups);
    EXPECT_EQ(da.spin_downs, db.spin_downs);
    EXPECT_EQ(da.served, db.served);
    EXPECT_EQ(da.bytes_served, db.bytes_served);
    EXPECT_EQ(da.queued, db.queued);
    EXPECT_EQ(da.in_service, db.in_service);
    EXPECT_EQ(da.positionings, db.positionings);
    EXPECT_EQ(da.idle_periods.total(), db.idle_periods.total());
    EXPECT_EQ(da.response.count(), db.response.count());
    EXPECT_DOUBLE_EQ(da.response.mean(), db.response.mean());
    EXPECT_DOUBLE_EQ(da.response.max(), db.response.max());
    EXPECT_DOUBLE_EQ(da.energy_j, db.energy_j);
    EXPECT_DOUBLE_EQ(da.always_on_j, db.always_on_j);
  }
}

TEST(OrchFleet, BitIdenticalAcrossShardCountsWithEveryMechanismOn) {
  // The tentpole contract extended to orchestration: replica-aware
  // redirection + write off-loading (destage deadline 120 s, well inside
  // the 200 s horizon) + the SLO budget, crossed with a bursty workload
  // and a cache, must stay bit-identical at any shard count.
  const auto cat = fleet_catalog();
  const std::vector<WorkloadSpec> workloads{
      WorkloadSpec::poisson(0.8, 200.0),
      WorkloadSpec::mmpp({{2.0, 0.1}, {30.0, 60.0}}, 200.0)};
  const std::vector<CacheSpec> caches{CacheSpec::none(),
                                      CacheSpec::lru(util::mb(200.0))};
  for (const auto& w : workloads) {
    for (const auto& c : caches) {
      auto cfg = orch_config(cat);
      cfg.workload = w;
      cfg.cache = c;
      cfg.shards = 1;
      const auto baseline = run_experiment(cfg);
      for (const std::uint32_t shards : {2u, 4u, 8u}) {
        SCOPED_TRACE("workload " + w.spec() + " cache " + c.spec() +
                     " shards " + std::to_string(shards));
        cfg.shards = shards;
        expect_same_physical(baseline, run_experiment(cfg));
      }
    }
  }
}

TEST(OrchFleet, ForegroundStatsExcludeBackgroundDestages) {
  // Off-loading reroutes and destages I/O but never invents or drops a
  // foreground request: request and response counts match the orch-off run
  // on the identical arrival stream, and the always-on log disk serves the
  // absorbed writes without contributing response samples of its own
  // beyond those foreground services.
  const auto cat = fleet_catalog();
  auto on = orch_config(cat);
  const auto with_orch = run_experiment(on);

  ExperimentConfig off = on;
  off.orch = OrchSpec::off();
  off.num_disks = 6;
  off.replicas = 1;
  off.dynamic_routing = false;
  const auto without = run_experiment(off);

  EXPECT_EQ(with_orch.requests, without.requests);
  EXPECT_EQ(with_orch.response.count(), without.response.count());
  std::uint64_t foreground = 0;
  for (const auto& d : with_orch.per_disk) foreground += d.response.count();
  EXPECT_EQ(foreground, with_orch.response.count());
}

TEST(OrchFleet, ReplicasWithoutOrchestrationAreInert) {
  // Replica copies are laid out after the primary extents, so a run that
  // carries replicas=2 but no orchestration is byte-for-byte the
  // replicas=1 run: nothing reads the copies, nothing moved the originals.
  const auto cat = fleet_catalog();
  auto plain = orch_config(cat);
  plain.orch = OrchSpec::off();
  plain.num_disks = 6;
  plain.replicas = 1;
  plain.dynamic_routing = false;
  const auto baseline = run_experiment(plain);

  auto replicated = plain;
  replicated.replicas = 2;
  replicated.dynamic_routing = true; // what scenario resolution would set
  expect_same_physical(baseline, run_experiment(replicated));
}

TEST(OrchFleet, ScenarioStringDrivesTheWholeStack) {
  // The acceptance shape: one scenario string turns everything on.
  const auto spec = ScenarioSpec::parse(
      "catalog=table1(400,5) load=0.9 workload=poisson(1,200) replicas=2 "
      "orch=redirect+offload:2:120+budget:p99:0.5");
  const auto resolved = resolve_scenario(spec);
  const auto& cfg = resolved.config;
  EXPECT_TRUE(cfg.orch.enabled());
  EXPECT_TRUE(cfg.orch.redirect);
  EXPECT_TRUE(cfg.orch.offload);
  EXPECT_TRUE(cfg.orch.budget);
  EXPECT_EQ(cfg.orch.log_disks, 2u);
  EXPECT_DOUBLE_EQ(cfg.orch.destage_deadline_s, 120.0);
  EXPECT_DOUBLE_EQ(cfg.orch.slo_p99_s, 0.5);
  EXPECT_EQ(cfg.replicas, 2u);
  EXPECT_TRUE(cfg.dynamic_routing); // replicas=2 is a per-request placement
  EXPECT_EQ(classify_fleet_path(cfg), FleetPath::kRouted);

  // The log tier appends to whatever the placement allocated.
  const auto base = resolve_scenario(spec.with("orch", "redirect"));
  EXPECT_EQ(cfg.num_disks, base.config.num_disks + 2);

  // And the string-addressed run obeys the same shard-identity contract.
  auto one = cfg;
  one.shards = 1;
  auto four = cfg;
  four.shards = 4;
  expect_same_physical(run_experiment(one), run_experiment(four));
}

} // namespace
} // namespace spindown::sys
