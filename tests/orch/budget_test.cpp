// budget_test.cpp — the global SLO sleep budget against Liu et al.'s
// closed form.
//
// liu_min_awake must equal the brute-force answer: the smallest awake-disk
// count m for which the M/M/1 p99 response -ln(0.01) / (mu - lambda/m)
// exists (mu > lambda/m) and sits inside the SLO.  The live SleepBudget is
// then checked to start conservative (everything awake) and converge onto
// that closed form, one +/-1 feedback step per epoch.
#include "orch/budget.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

namespace spindown::orch {
namespace {

/// Brute-force reference: smallest m in [1, disks] holding the SLO, or
/// nullopt when even m = disks misses it.
std::optional<std::uint32_t> brute_force_min_awake(double lambda, double mu,
                                                   double slo_s,
                                                   std::uint32_t disks) {
  for (std::uint32_t m = 1; m <= disks; ++m) {
    const double per_disk = lambda / static_cast<double>(m);
    if (per_disk >= mu) continue; // unstable queue: infinite tail
    const double p99 = std::log(100.0) / (mu - per_disk);
    if (p99 <= slo_s) return m;
  }
  return std::nullopt;
}

TEST(OrchBudget, LiuClosedFormMatchesBruteForce) {
  const double mus[] = {0.5, 2.0, 8.0, 50.0};
  const double lambdas[] = {0.1, 1.0, 7.5, 40.0, 160.0};
  const double slos[] = {0.1, 1.0, 5.0, 60.0};
  const std::uint32_t fleets[] = {1, 3, 5, 16, 100};
  for (const double mu : mus) {
    for (const double lambda : lambdas) {
      for (const double slo : slos) {
        for (const std::uint32_t disks : fleets) {
          SCOPED_TRACE("mu=" + std::to_string(mu) +
                       " lambda=" + std::to_string(lambda) +
                       " slo=" + std::to_string(slo) +
                       " disks=" + std::to_string(disks));
          const auto reference =
              brute_force_min_awake(lambda, mu, slo, disks);
          const std::uint32_t got = liu_min_awake(lambda, mu, slo, disks);
          if (reference.has_value()) {
            EXPECT_EQ(got, *reference);
          } else {
            // Infeasible SLO: the budget keeps the whole fleet awake (the
            // conservative answer) rather than pretending a quota helps.
            EXPECT_EQ(got, disks);
          }
        }
      }
    }
  }
}

TEST(OrchBudget, ClosedFormEdgeCases) {
  // mu <= ln(100)/slo: even an idle disk misses the SLO -> all awake.
  EXPECT_EQ(liu_min_awake(1.0, 0.9, 5.0, 8u), 8u);
  // Zero arrival rate (no estimate yet) keeps one disk up, never zero.
  EXPECT_EQ(liu_min_awake(0.0, 10.0, 5.0, 8u), 1u);
  // Saturating load clamps at the fleet size.
  EXPECT_EQ(liu_min_awake(1e9, 10.0, 5.0, 8u), 8u);
}

TEST(OrchBudget, QuotaStartsFullAndDecaysTowardClosedForm) {
  // mu = 10/s, lambda = 4/s, slo = 5 s: m* = ceil(4 / (10 - 0.921)) = 1.
  const std::uint32_t disks = 6;
  SleepBudget budget{disks, /*mu=*/10.0, /*slo_s=*/5.0};
  EXPECT_EQ(budget.quota(), disks);

  double t = 0.0;
  const std::uint32_t target = liu_min_awake(4.0, 10.0, 5.0, disks);
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int i = 0; i < 240; ++i) { // 4/s over a 60 s epoch
      t += 0.25;
      budget.observe_arrival(t);
      budget.observe_response(0.11); // comfortably inside the SLO
      budget.maybe_recompute(t);
    }
  }
  EXPECT_EQ(budget.quota(), target);
  EXPECT_NEAR(budget.arrival_rate(), 4.0, 0.5);
}

TEST(OrchBudget, MeasuredTailOverSloGrowsQuota) {
  const std::uint32_t disks = 4;
  SleepBudget budget{disks, /*mu=*/10.0, /*slo_s=*/1.0};
  // Drive the p99 estimate far above the SLO, then cross one epoch.
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 0.1;
    budget.observe_arrival(t);
    budget.observe_response(30.0);
  }
  EXPECT_GT(budget.p99_estimate(), 1.0);
  // Quota is already at the ceiling, so it must stay there — never shrink
  // while the measured tail violates the SLO.
  budget.maybe_recompute(61.0);
  EXPECT_EQ(budget.quota(), disks);
}

TEST(OrchBudget, IdleEpochsStepOnePerEpoch) {
  // Crossing several epoch boundaries at once applies one feedback step
  // per epoch — a long lull walks the quota down gradually, exactly as if
  // the epochs had been observed live.
  const std::uint32_t disks = 8;
  SleepBudget budget{disks, /*mu=*/10.0, /*slo_s=*/5.0};
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 0.5;
    budget.observe_arrival(t);
    budget.observe_response(0.11);
  }
  const auto quota = budget.maybe_recompute(3.0 * 60.0 + 1.0); // 3 epochs
  ASSERT_TRUE(quota.has_value());
  EXPECT_EQ(budget.epochs(), 3u);
  EXPECT_EQ(*quota, disks - 3u);
}

} // namespace
} // namespace spindown::orch
