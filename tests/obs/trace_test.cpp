// Unit tests for the obs layer: buffer filtering, canonical merge order,
// single-run trace structure, and exporter determinism.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "sys/experiment.h"
#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::obs {
namespace {

TEST(TraceBuffer, MaskFiltersWants) {
  const TraceBuffer spans_only{kind_bit(Kind::kSpan)};
  EXPECT_TRUE(spans_only.wants(Kind::kSpan));
  EXPECT_FALSE(spans_only.wants(Kind::kPower));
  EXPECT_FALSE(spans_only.wants(Kind::kMetric));

  const TraceBuffer off{0};
  for (const Kind k : {Kind::kSpan, Kind::kPower, Kind::kPolicy,
                       Kind::kMetric, Kind::kProfile}) {
    EXPECT_FALSE(off.wants(k));
  }
}

TEST(TraceBuffer, EmitPreservesOrderAndFields) {
  TraceBuffer buf{kind_bit(Kind::kSpan)};
  buf.emit(Kind::kSpan, kSpanSubmit, 1.0, 3, 42, 512.0, 7.0);
  buf.emit(Kind::kSpan, kSpanComplete, 2.5, 3, 42, 1.5);
  ASSERT_EQ(buf.size(), 2u);
  const auto& e = buf.events()[0];
  EXPECT_EQ(e.t, 1.0);
  EXPECT_EQ(e.id, 42u);
  EXPECT_EQ(e.value, 512.0);
  EXPECT_EQ(e.aux, 7.0);
  EXPECT_EQ(e.track, 3u);
  EXPECT_EQ(e.kind, Kind::kSpan);
  EXPECT_EQ(e.code, kSpanSubmit);
  EXPECT_EQ(buf.events()[1].code, kSpanComplete);
}

TEST(TraceCanonical, DispatcherTrackRanksFirstThenDisksAscending) {
  // Two buffers holding interleaved tracks: the merge must order by track
  // rank (dispatcher, disk 0, disk 1, ...) and keep per-track emission
  // order regardless of which buffer a track lived in.
  TraceBuffer a{kind_bit(Kind::kSpan)};
  TraceBuffer b{kind_bit(Kind::kSpan)};
  a.emit(Kind::kSpan, kSpanSubmit, 1.0, 2, 10);
  a.emit(Kind::kSpan, kSpanSubmit, 2.0, 2, 11);
  a.emit(Kind::kSpan, kSpanSubmit, 0.5, 0, 12);
  b.emit(Kind::kSpan, kSpanCacheMiss, 0.1, kDispatcherTrack, 13);
  b.emit(Kind::kSpan, kSpanSubmit, 3.0, 1, 14);

  std::vector<TraceEvent> out;
  TraceBuffer* const buffers[] = {&a, &b};
  append_canonical(out, buffers);

  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].track, kDispatcherTrack);
  EXPECT_EQ(out[1].track, 0u);
  EXPECT_EQ(out[2].track, 1u);
  EXPECT_EQ(out[3].track, 2u);
  EXPECT_EQ(out[4].track, 2u);
  EXPECT_EQ(out[3].id, 10u); // per-track emission order preserved
  EXPECT_EQ(out[4].id, 11u);
}

TEST(TraceNames, KindAndCodeTables) {
  EXPECT_EQ(kind_name(Kind::kSpan), "span");
  EXPECT_EQ(kind_name(Kind::kPower), "power");
  EXPECT_EQ(kind_name(Kind::kProfile), "profile");
  EXPECT_EQ(code_name(Kind::kSpan, kSpanSubmit), "submit");
  EXPECT_EQ(code_name(Kind::kSpan, kSpanCacheHit), "cache_hit");
  EXPECT_EQ(code_name(Kind::kPolicy, kPolicyThresholdFired),
            "threshold_fired");
  EXPECT_EQ(code_name(Kind::kPower, 4), "standby");
}

// ------------------------------------------------------------- run traces

workload::FileCatalog small_catalog(std::size_t n_files = 16) {
  std::vector<workload::FileInfo> files(n_files);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = util::mb(40.0 + 5.0 * static_cast<double>(i % 3));
    files[i].popularity = 1.0 / static_cast<double>(n_files);
  }
  return workload::FileCatalog{files};
}

sys::ExperimentConfig traced_config(const workload::FileCatalog& cat,
                                    std::uint32_t num_disks = 4) {
  sys::ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping.resize(cat.size());
  for (std::size_t i = 0; i < cfg.mapping.size(); ++i) {
    cfg.mapping[i] = static_cast<std::uint32_t>(i % num_disks);
  }
  cfg.num_disks = num_disks;
  cfg.workload = sys::WorkloadSpec::poisson(0.6, 300.0);
  cfg.seed = 11;
  cfg.obs = sys::ObsSpec::all();
  cfg.obs.metrics_interval_s = 50.0;
  return cfg;
}

TEST(RunTraceStructure, PerTrackTimestampsAreMonotone) {
  const auto cat = small_catalog();
  const auto cfg = traced_config(cat);
  RunTrace trace;
  (void)sys::run_experiment(cfg, &trace);
  ASSERT_FALSE(trace.events.empty());

  std::map<std::uint32_t, double> last_t;
  std::uint64_t last_rank = 0;
  for (const auto& e : trace.events) {
    EXPECT_GE(track_rank(e.track), last_rank) << "canonical order broken";
    last_rank = track_rank(e.track);
    const auto it = last_t.find(e.track);
    if (it != last_t.end()) {
      EXPECT_GE(e.t, it->second) << "track " << e.track << " went backwards";
    }
    last_t[e.track] = e.t;
  }
}

TEST(RunTraceStructure, SpanLifecycleEdgesOrdered) {
  const auto cat = small_catalog();
  const auto cfg = traced_config(cat);
  RunTrace trace;
  (void)sys::run_experiment(cfg, &trace);

  // For every request id the lifecycle edges must appear in causal order
  // with non-decreasing timestamps.
  struct Life {
    double submit = -1.0, complete = -1.0;
    int edges = 0;
  };
  std::map<std::uint64_t, Life> lives;
  for (const auto& e : trace.events) {
    if (e.kind != Kind::kSpan) continue;
    auto& l = lives[e.id];
    ++l.edges;
    if (e.code == kSpanSubmit) l.submit = e.t;
    if (e.code == kSpanComplete) {
      l.complete = e.t;
      EXPECT_GE(e.t, l.submit);
      // value = response time: must equal completion - submission.
      EXPECT_NEAR(e.value, e.t - l.submit, 1e-9);
    }
  }
  ASSERT_FALSE(lives.empty());
  std::size_t completed = 0;
  for (const auto& [id, l] : lives) {
    if (l.complete >= 0.0) {
      ++completed;
      EXPECT_GE(l.edges, 4) << "request " << id
                            << ": submit/enqueue/position/transfer/complete";
    }
  }
  EXPECT_GT(completed, 0u);
}

TEST(RunTraceStructure, PowerEventsRespectTransitionTable) {
  const auto cat = small_catalog();
  auto cfg = traced_config(cat);
  cfg.policy = sys::PolicySpec::fixed(5.0); // force spin-downs
  RunTrace trace;
  (void)sys::run_experiment(cfg, &trace);

  // Power events carry (value = previous state, code = next state); every
  // recorded transition must be legal.
  std::size_t power_events = 0;
  for (const auto& e : trace.events) {
    if (e.kind != Kind::kPower) continue;
    ++power_events;
    const auto from = static_cast<disk::PowerState>(
        static_cast<std::uint8_t>(e.value));
    const auto to = static_cast<disk::PowerState>(e.code);
    EXPECT_TRUE(disk::can_transition(from, to))
        << disk::to_string(from) << " -> " << disk::to_string(to);
  }
  EXPECT_GT(power_events, 0u);
}

TEST(RunTraceStructure, MetricsTickOnTheInterval) {
  const auto cat = small_catalog();
  const auto cfg = traced_config(cat); // interval 50 s, horizon 300 s
  RunTrace trace;
  (void)sys::run_experiment(cfg, &trace);

  std::size_t metric_events = 0;
  for (const auto& e : trace.events) {
    if (e.kind != Kind::kMetric) continue;
    ++metric_events;
    const double k = e.t / 50.0;
    EXPECT_DOUBLE_EQ(k, std::round(k)) << "tick off the interval grid";
    EXPECT_LT(e.t, 300.0); // strictly inside the horizon
    EXPECT_GT(e.t, 0.0);
  }
  // 5 in-horizon ticks (50..250), 2 gauges per disk, 4 disks.
  EXPECT_EQ(metric_events, 5u * 2u * 4u);
}

TEST(RunTraceStructure, ObsOffLeavesTraceEmptyAndResultIdentical) {
  const auto cat = small_catalog();
  auto cfg = traced_config(cat);

  const auto traced = [&] {
    RunTrace t;
    return std::pair{sys::run_experiment(cfg, &t), t.events.size()};
  }();
  EXPECT_GT(traced.second, 0u);

  cfg.obs = sys::ObsSpec::off();
  RunTrace empty;
  const auto off = sys::run_experiment(cfg, &empty);
  EXPECT_TRUE(empty.events.empty());
  EXPECT_TRUE(empty.profile.empty());

  const auto plain = sys::run_experiment(cfg);
  // Tracing is read-only: same physics, same event count, on or off.
  EXPECT_EQ(off.events, plain.events);
  EXPECT_EQ(off.requests, plain.requests);
  EXPECT_DOUBLE_EQ(off.power.energy, plain.power.energy);
  EXPECT_DOUBLE_EQ(off.response.mean(), plain.response.mean());
  EXPECT_EQ(traced.first.events, plain.events);
  EXPECT_DOUBLE_EQ(traced.first.power.energy, plain.power.energy);
}

// -------------------------------------------------------------- exporters

TEST(TraceExport, ChromeTraceIsDeterministicAndStructured) {
  const auto cat = small_catalog();
  const auto cfg = traced_config(cat);
  RunTrace trace;
  (void)sys::run_experiment(cfg, &trace);

  std::ostringstream a, b;
  write_chrome_trace(trace, a);
  write_chrome_trace(trace, b);
  const std::string out = a.str();
  EXPECT_EQ(out, b.str()) << "export must be a pure function of the trace";
  EXPECT_EQ(out.rfind(R"({"traceEvents":[)", 0), 0u);
  const std::string tail = R"(],"displayTimeUnit":"ms"})"
                           "\n";
  ASSERT_GE(out.size(), tail.size());
  EXPECT_EQ(out.substr(out.size() - tail.size()), tail);
  // Every span open has a close (async b/e pairs are balanced).
  std::size_t opens = 0, closes = 0;
  for (std::size_t pos = 0; (pos = out.find(R"("ph":"b")", pos)) !=
                            std::string::npos;
       ++pos) {
    ++opens;
  }
  for (std::size_t pos = 0; (pos = out.find(R"("ph":"e")", pos)) !=
                            std::string::npos;
       ++pos) {
    ++closes;
  }
  EXPECT_EQ(opens, closes);
  EXPECT_GT(opens, 0u);
}

TEST(TraceExport, JsonlHasMetaLineAndOneObjectPerEvent) {
  const auto cat = small_catalog();
  const auto cfg = traced_config(cat);
  RunTrace trace;
  (void)sys::run_experiment(cfg, &trace);

  std::ostringstream os;
  write_jsonl_trace(trace, os);
  const std::string out = os.str();
  std::istringstream lines{out};
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++n;
  }
  EXPECT_EQ(n, 1 + trace.events.size() + trace.profile.size());
  EXPECT_EQ(out.rfind(R"({"format":"spindown-trace")", 0), 0u);
}

} // namespace
} // namespace spindown::obs
