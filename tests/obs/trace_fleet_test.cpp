// Shard-count bit-identity of the canonical trace stream: the sim-time
// events recorded by a sharded fleet run — on either pipeline — must equal
// the single-calendar run's trace exactly (TraceEvent field-wise equality),
// mirroring the RunResult invariance contract in tests/sys/fleet_test.cpp.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sys/fleet.h"
#include "sys/scenario.h"
#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::obs {
namespace {

workload::FileCatalog fleet_catalog(std::size_t n_files = 96) {
  std::vector<workload::FileInfo> files(n_files);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = util::mb(30.0 + 15.0 * static_cast<double>(i % 5));
    files[i].popularity = 1.0 / static_cast<double>(i + 1);
  }
  return workload::FileCatalog{files};
}

sys::ExperimentConfig fleet_config(const workload::FileCatalog& cat,
                                   std::uint32_t num_disks) {
  sys::ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping.resize(cat.size());
  for (std::size_t i = 0; i < cfg.mapping.size(); ++i) {
    cfg.mapping[i] = static_cast<std::uint32_t>(i % num_disks);
  }
  cfg.num_disks = num_disks;
  cfg.workload = sys::WorkloadSpec::poisson(3.0, 250.0);
  cfg.seed = 23;
  cfg.policy = sys::PolicySpec::fixed(8.0); // plenty of power transitions
  cfg.obs = sys::ObsSpec::all();
  cfg.obs.profile = false; // profile samples are wall-clock, not compared
  cfg.obs.metrics_interval_s = 40.0;
  return cfg;
}

void expect_same_trace(const RunTrace& a, const RunTrace& b,
                       const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    ASSERT_EQ(a.events[i], b.events[i]) << "event " << i << " differs";
  }
  EXPECT_DOUBLE_EQ(a.horizon_s, b.horizon_s);
}

TEST(TraceFleetIdentity, RouterlessPathMatchesSingleCalendar) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat, 24); // cache=none -> shard-decomposable

  RunTrace single;
  const auto base = sys::run_experiment(cfg, &single);
  ASSERT_FALSE(single.events.empty());

  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    RunTrace sharded;
    const auto r = sys::run_fleet(cfg, shards, sys::FleetPath::kShardLocal,
                                  nullptr, &sharded);
    expect_same_trace(single, sharded,
                      "shard-local, shards=" + std::to_string(shards));
    // `events` is the one field allowed to differ between the single
    // calendar and the fleet paths (fleet.h) — compare physics instead.
    EXPECT_EQ(r.requests, base.requests);
    EXPECT_DOUBLE_EQ(r.power.energy, base.power.energy);
  }
}

TEST(TraceFleetIdentity, RoutedPathMatchesSingleCalendar) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat, 24);
  cfg.cache = sys::CacheSpec::lru(util::mb(200.0)); // forces the router

  RunTrace single;
  const auto base = sys::run_experiment(cfg, &single);
  ASSERT_FALSE(single.events.empty());
  bool saw_cache_hit = false;
  for (const auto& e : single.events) {
    if (e.kind == Kind::kSpan && e.code == kSpanCacheHit) {
      saw_cache_hit = true;
      EXPECT_EQ(e.track, kDispatcherTrack);
    }
  }
  EXPECT_TRUE(saw_cache_hit) << "scenario must exercise the cache";

  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    RunTrace sharded;
    const auto r = sys::run_fleet(cfg, shards, sys::FleetPath::kRouted,
                                  nullptr, &sharded);
    expect_same_trace(single, sharded,
                      "routed, shards=" + std::to_string(shards));
    EXPECT_EQ(r.cache.hits, base.cache.hits);
    EXPECT_DOUBLE_EQ(r.power.energy, base.power.energy);
  }
}

TEST(TraceFleetIdentity, ForcedRouterOnDecomposableConfigMatchesToo) {
  // cache=none normally takes the fast path; forcing the router must
  // produce the same trace — the dispatcher track is simply empty (no
  // cache, no hit/miss events), exactly like the single-calendar path.
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat, 16);

  RunTrace single;
  (void)sys::run_experiment(cfg, &single);
  RunTrace routed;
  (void)sys::run_fleet(cfg, 4, sys::FleetPath::kRouted, nullptr, &routed);
  expect_same_trace(single, routed, "forced router, shards=4");
}

TEST(TraceFleetIdentity, TracedFleetRunMatchesUntracedResult) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat, 24);

  const auto plain = sys::run_fleet(cfg, 4, sys::FleetPath::kShardLocal);
  RunTrace trace;
  const auto traced =
      sys::run_fleet(cfg, 4, sys::FleetPath::kShardLocal, nullptr, &trace);
  // Tracing is read-only — including the engine's event counter (sampler
  // ticks are subtracted).
  EXPECT_EQ(traced.events, plain.events);
  EXPECT_EQ(traced.requests, plain.requests);
  EXPECT_DOUBLE_EQ(traced.power.energy, plain.power.energy);
  EXPECT_DOUBLE_EQ(traced.response.mean(), plain.response.mean());
}

TEST(TraceFleetProfile, ProfileSamplesStayOutOfTheCanonicalStream) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat, 16);
  cfg.obs.profile = true;

  RunTrace fast;
  (void)sys::run_fleet(cfg, 4, sys::FleetPath::kShardLocal, nullptr, &fast);
  EXPECT_FALSE(fast.profile.empty());
  for (const auto& e : fast.events) {
    EXPECT_NE(e.kind, Kind::kProfile);
  }
  for (const auto& e : fast.profile) {
    EXPECT_EQ(e.kind, Kind::kProfile);
    EXPECT_EQ(e.code, kProfWorkerReplay); // no router on the fast path
    EXPECT_GE(e.value, 0.0);
  }

  RunTrace routed;
  cfg.cache = sys::CacheSpec::lru(util::mb(200.0));
  (void)sys::run_fleet(cfg, 4, sys::FleetPath::kRouted, nullptr, &routed);
  bool fill = false, wait = false, replay = false;
  for (const auto& e : routed.profile) {
    fill = fill || e.code == kProfRouterFill;
    wait = wait || e.code == kProfRingWait;
    replay = replay || e.code == kProfWorkerReplay;
    if (e.code == kProfRouterFill) {
      EXPECT_EQ(e.track, kDispatcherTrack);
    }
  }
  EXPECT_TRUE(fill && wait && replay)
      << "all three pipeline stages must be sampled";
  EXPECT_EQ(routed.shards, 4u);
}

} // namespace
} // namespace spindown::obs
