#include "sys/sweep.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace spindown::sys {
namespace {

workload::FileCatalog sweep_catalog() {
  std::vector<workload::FileInfo> files(6);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = util::mb(100.0);
    files[i].popularity = 1.0 / 6.0;
  }
  return workload::FileCatalog{files};
}

ExperimentConfig config_with_rate(const workload::FileCatalog& cat,
                                  double rate) {
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 0, 1, 1, 2, 2};
  cfg.num_disks = 3;
  cfg.workload = WorkloadSpec::poisson(rate, 150.0);
  cfg.seed = 5;
  return cfg;
}

TEST(RunSweep, EmptyInput) {
  EXPECT_TRUE(run_sweep({}).empty());
}

TEST(RunSweep, ResultsInInputOrder) {
  const auto cat = sweep_catalog();
  std::vector<ExperimentConfig> configs;
  for (double rate : {0.2, 0.5, 1.0, 2.0}) {
    configs.push_back(config_with_rate(cat, rate));
  }
  const auto results = run_sweep(configs);
  ASSERT_EQ(results.size(), 4u);
  // More arrivals at higher rates: counts must be increasing.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GT(results[i].requests, results[i - 1].requests);
  }
}

TEST(RunSweep, ParallelMatchesSerial) {
  const auto cat = sweep_catalog();
  std::vector<ExperimentConfig> configs;
  for (double rate : {0.3, 0.7, 1.3}) {
    configs.push_back(config_with_rate(cat, rate));
  }
  const auto serial = run_sweep(configs, 1);
  const auto parallel = run_sweep(configs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].power.energy, parallel[i].power.energy);
    EXPECT_EQ(serial[i].requests, parallel[i].requests);
  }
}

TEST(RunSweep, DeterministicAcrossThreadCounts) {
  // Same configs + seeds must produce bit-identical RunResults no matter
  // how the sweep is scheduled.  The grid deliberately includes the
  // adaptive policies and non-stationary workloads: their per-disk state
  // lives inside each run, so nothing may leak across workers.
  const auto cat = sweep_catalog();
  std::vector<ExperimentConfig> configs;
  const std::vector<PolicySpec> policies{
      PolicySpec::break_even(), PolicySpec::randomized(), PolicySpec::ewma(),
      PolicySpec::share(), PolicySpec::slack(10.0)};
  const std::vector<WorkloadSpec> workloads{
      WorkloadSpec::poisson(1.0, 150.0),
      WorkloadSpec::nhpp({{0.0, 2.0}, {50.0, 0.2}}, 150.0, 100.0),
      WorkloadSpec::mmpp({{2.0, 0.1}, {40.0, 80.0}}, 150.0)};
  for (const auto& p : policies) {
    for (const auto& w : workloads) {
      auto cfg = config_with_rate(cat, 1.0);
      cfg.policy = p;
      cfg.workload = w;
      configs.push_back(std::move(cfg));
    }
  }
  const auto serial = run_sweep(configs, 1);
  for (const unsigned threads : {2u, 8u}) {
    const auto parallel = run_sweep(configs, threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("config " + std::to_string(i) + " threads " +
                   std::to_string(threads));
      EXPECT_EQ(serial[i].requests, parallel[i].requests);
      EXPECT_DOUBLE_EQ(serial[i].power.energy, parallel[i].power.energy);
      EXPECT_EQ(serial[i].power.spin_downs, parallel[i].power.spin_downs);
      EXPECT_EQ(serial[i].power.spin_ups, parallel[i].power.spin_ups);
      EXPECT_EQ(serial[i].response.count(), parallel[i].response.count());
      EXPECT_DOUBLE_EQ(serial[i].response.mean(), parallel[i].response.mean());
      EXPECT_DOUBLE_EQ(serial[i].response.max(), parallel[i].response.max());
      EXPECT_EQ(serial[i].completed_at_horizon,
                parallel[i].completed_at_horizon);
      EXPECT_EQ(serial[i].in_flight_at_horizon,
                parallel[i].in_flight_at_horizon);
    }
  }
}

TEST(RunSweep, DeterministicAcrossShardCounts) {
  // The same adaptive × non-stationary grid, but varying the *intra-run*
  // parallelism: each config re-run with the calendar sharded 2/4/8 ways
  // must reproduce the single-calendar results bit for bit.  (Shard counts
  // above the farm size clamp — still a valid configuration.)
  const auto cat = sweep_catalog();
  std::vector<ExperimentConfig> configs;
  const std::vector<PolicySpec> policies{
      PolicySpec::break_even(), PolicySpec::randomized(), PolicySpec::ewma(),
      PolicySpec::share(), PolicySpec::slack(10.0)};
  const std::vector<WorkloadSpec> workloads{
      WorkloadSpec::poisson(1.0, 150.0),
      WorkloadSpec::nhpp({{0.0, 2.0}, {50.0, 0.2}}, 150.0, 100.0),
      WorkloadSpec::mmpp({{2.0, 0.1}, {40.0, 80.0}}, 150.0)};
  for (const auto& p : policies) {
    for (const auto& w : workloads) {
      auto cfg = config_with_rate(cat, 1.0);
      cfg.policy = p;
      cfg.workload = w;
      configs.push_back(std::move(cfg));
    }
  }
  const auto serial = run_sweep(configs, 1);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    auto sharded_configs = configs;
    for (auto& cfg : sharded_configs) cfg.shards = shards;
    const auto sharded = run_sweep(sharded_configs, 2);
    ASSERT_EQ(serial.size(), sharded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("config " + std::to_string(i) + " shards " +
                   std::to_string(shards));
      EXPECT_EQ(serial[i].requests, sharded[i].requests);
      EXPECT_DOUBLE_EQ(serial[i].power.energy, sharded[i].power.energy);
      EXPECT_DOUBLE_EQ(serial[i].power.saving_vs_always_on,
                       sharded[i].power.saving_vs_always_on);
      EXPECT_EQ(serial[i].power.spin_downs, sharded[i].power.spin_downs);
      EXPECT_EQ(serial[i].power.spin_ups, sharded[i].power.spin_ups);
      EXPECT_EQ(serial[i].response.count(), sharded[i].response.count());
      EXPECT_DOUBLE_EQ(serial[i].response.mean(), sharded[i].response.mean());
      EXPECT_DOUBLE_EQ(serial[i].response.max(), sharded[i].response.max());
      EXPECT_DOUBLE_EQ(serial[i].response.p99(), sharded[i].response.p99());
      EXPECT_EQ(serial[i].completed_at_horizon,
                sharded[i].completed_at_horizon);
      EXPECT_EQ(serial[i].in_flight_at_horizon,
                sharded[i].in_flight_at_horizon);
    }
  }
}

TEST(RunSweep, PropagatesWorkerExceptions) {
  const auto cat = sweep_catalog();
  auto bad = config_with_rate(cat, 1.0);
  bad.catalog = nullptr; // run_experiment will throw
  std::vector<ExperimentConfig> configs{config_with_rate(cat, 0.5), bad};
  EXPECT_THROW(run_sweep(configs), std::invalid_argument);
}

TEST(RunSweep, LowestIndexErrorWinsAcrossSchedules) {
  // Two failing configs with distinguishable messages: the rethrown error
  // must always be the one for the lowest sweep index, regardless of which
  // worker hits its exception first.  (Regression: the old path kept
  // whichever error locked the mutex first, so the surfaced diagnostic
  // changed run to run.)
  const auto cat = sweep_catalog();
  auto bad_mapping = config_with_rate(cat, 0.5);
  bad_mapping.mapping = {0, 0, 1, 1, 2, 9}; // disk 9 does not exist
  auto bad_catalog = config_with_rate(cat, 0.5);
  bad_catalog.catalog = nullptr;
  const std::vector<ExperimentConfig> configs{
      config_with_rate(cat, 0.3), bad_mapping, config_with_rate(cat, 0.4),
      bad_catalog};
  for (int rep = 0; rep < 10; ++rep) {
    for (const unsigned threads : {2u, 4u, 8u}) {
      SCOPED_TRACE("rep " + std::to_string(rep) + " threads " +
                   std::to_string(threads));
      try {
        run_sweep(configs, threads);
        FAIL() << "expected run_sweep to throw";
      } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string{e.what()}.find("mapping references disk"),
                  std::string::npos)
            << "got the index-3 error instead of the index-1 error: "
            << e.what();
      }
    }
  }
}

} // namespace
} // namespace spindown::sys
