#include "sys/phased.h"

#include <gtest/gtest.h>

#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::sys {
namespace {

workload::FileCatalog zipf_catalog(std::size_t n) {
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = n;
  util::Rng rng{3};
  return workload::generate_catalog(spec, rng);
}

TEST(DriftedCatalog, ZeroDriftIsIdentity) {
  const auto base = zipf_catalog(100);
  const auto same = drifted_catalog(base, 5, 0.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(same[i].popularity, base[i].popularity);
    EXPECT_EQ(same[i].size, base[i].size);
  }
}

TEST(DriftedCatalog, RotatesPopularityNotSizes) {
  const auto base = zipf_catalog(100);
  const auto shifted = drifted_catalog(base, 1, 0.25);
  // Popularity multiset preserved; sizes untouched.
  double sum = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(shifted[i].size, base[i].size);
    sum += shifted[i].popularity;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // A quarter rotation moves the hot spot to a different file.
  EXPECT_NE(shifted[0].popularity, base[0].popularity);
  EXPECT_DOUBLE_EQ(shifted[0].popularity, base[25].popularity);
}

TEST(DriftedCatalog, FullRotationWrapsAround) {
  const auto base = zipf_catalog(80);
  const auto wrapped = drifted_catalog(base, 4, 0.25); // 4 * 0.25 = 1.0
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(wrapped[i].popularity, base[i].popularity);
  }
}

TEST(RunPhased, ValidatesConfig) {
  PhasedConfig cfg;
  EXPECT_THROW(run_phased(cfg), std::invalid_argument);
  const auto cat = zipf_catalog(50);
  cfg.catalog = &cat;
  cfg.windows = 0;
  EXPECT_THROW(run_phased(cfg), std::invalid_argument);
}

class PhasedFixture : public ::testing::Test {
protected:
  PhasedConfig base_config(const workload::FileCatalog& cat) {
    PhasedConfig cfg;
    cfg.catalog = &cat;
    cfg.model.rate = 0.5;
    cfg.model.load_fraction = 0.6;
    cfg.windows = 3;
    cfg.window_s = 2000.0;
    cfg.drift_per_window = 0.3;
    cfg.seed = 11;
    return cfg;
  }
};

TEST_F(PhasedFixture, StaticStrategyNeverMigrates) {
  const auto cat = zipf_catalog(400);
  auto cfg = base_config(cat);
  cfg.reorganize = false;
  const auto r = run_phased(cfg);
  ASSERT_EQ(r.windows.size(), 3u);
  EXPECT_EQ(r.migrated_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.migration_energy, 0.0);
  EXPECT_GT(r.total_energy, 0.0);
  EXPECT_GT(r.response.count(), 0u);
}

TEST_F(PhasedFixture, AdaptiveStrategyMigratesUnderDrift) {
  const auto cat = zipf_catalog(400);
  auto cfg = base_config(cat);
  cfg.reorganize = true;
  const auto r = run_phased(cfg);
  EXPECT_GT(r.migrated_bytes, 0u);
  EXPECT_GT(r.migration_energy, 0.0);
  // Last window never migrates (nothing follows it).
  EXPECT_EQ(r.windows.back().migrated_bytes, 0u);
  // Energy accounting: total = sum of window energies + migration.
  double expected = r.migration_energy;
  for (const auto& w : r.windows) expected += w.run.power.energy;
  EXPECT_NEAR(r.total_energy, expected, 1e-6);
}

TEST_F(PhasedFixture, CountSmoothingDampsMigrationThrash) {
  // On a *stationary* workload every reorganization is sampling noise;
  // the decayed count state must shrink the wasted migration traffic
  // relative to trusting each window in isolation.
  const auto cat = zipf_catalog(400);
  auto noisy = base_config(cat);
  noisy.drift_per_window = 0.0;
  noisy.windows = 5;
  noisy.count_decay = 0.0; // last window only
  auto smoothed = noisy;
  smoothed.count_decay = 0.8;
  const auto r_noisy = run_phased(noisy);
  const auto r_smoothed = run_phased(smoothed);
  EXPECT_LT(static_cast<double>(r_smoothed.migrated_bytes),
            static_cast<double>(r_noisy.migrated_bytes));
}

TEST_F(PhasedFixture, AdaptiveKeepsResponseBoundedUnderDrift) {
  // The §6 motivation: "migrating files between disks if it is discovered
  // that the frequency of retrieval of a file deviates significantly from
  // the initial estimates".  A placement packed to the load cap L is only
  // valid for the popularity it was built from; after drift, several hot
  // files can share one disk and its queue explodes.  Re-packing restores
  // the balance — visible in the drifted windows' mean response time.
  // Gradual drift (10% of the ranking per window): the re-pack computed
  // from window w is only ~10% stale when window w+1 runs, while the static
  // placement is ~50% misaligned by the last window.  (Faster drift defeats
  // *any* once-per-window reorganizer — it is one window behind by
  // construction.)
  const auto cat = zipf_catalog(600);
  auto adaptive_cfg = base_config(cat);
  adaptive_cfg.model.load_fraction = 0.8; // packed tight: drift hurts
  adaptive_cfg.windows = 6;
  adaptive_cfg.window_s = 4000.0;
  adaptive_cfg.drift_per_window = 0.1;
  adaptive_cfg.reorganize = true;
  adaptive_cfg.count_decay = 0.3;
  auto static_cfg = adaptive_cfg;
  static_cfg.reorganize = false;
  const auto adaptive = run_phased(adaptive_cfg);
  const auto fixed = run_phased(static_cfg);
  double adaptive_resp = 0.0, static_resp = 0.0;
  for (std::size_t w = 1; w < adaptive.windows.size(); ++w) {
    adaptive_resp += adaptive.windows[w].run.response.mean();
    static_resp += fixed.windows[w].run.response.mean();
  }
  EXPECT_LT(adaptive_resp, static_resp);
}

TEST_F(PhasedFixture, MigrationEnergyFollowsTheByteCostModel) {
  // The migration account bills every moved byte one read + one write at
  // the device's transfer rate and active power:
  //   E = 2 * bytes / B * P_active
  // both in total and per window report.
  const auto cat = zipf_catalog(400);
  auto cfg = base_config(cat);
  cfg.reorganize = true;
  const auto r = run_phased(cfg);
  ASSERT_GT(r.migrated_bytes, 0u);
  const auto& p = cfg.model.disk;
  const double expected_total = 2.0 * static_cast<double>(r.migrated_bytes) /
                                p.transfer_bps * p.active_w;
  EXPECT_NEAR(r.migration_energy, expected_total, 1e-6 * expected_total);
  util::Bytes window_bytes = 0;
  util::Joules window_energy = 0.0;
  for (const auto& w : r.windows) {
    window_bytes += w.migrated_bytes;
    window_energy += w.migration_energy;
    EXPECT_NEAR(w.migration_energy,
                2.0 * static_cast<double>(w.migrated_bytes) / p.transfer_bps *
                    p.active_w,
                1e-9 + 1e-12 * w.migration_energy);
  }
  EXPECT_EQ(window_bytes, r.migrated_bytes);
  EXPECT_NEAR(window_energy, r.migration_energy, 1e-6);
}

TEST_F(PhasedFixture, CountDecayIsARealParameter) {
  // The EWMA state (state = decay * state + window_counts) must actually
  // feed the planner: different decay values reach different plans on a
  // drifting workload, and each value is deterministic.
  const auto cat = zipf_catalog(400);
  auto cfg = base_config(cat);
  cfg.windows = 4;
  cfg.count_decay = 0.0;
  const auto last_only_a = run_phased(cfg);
  const auto last_only_b = run_phased(cfg);
  EXPECT_EQ(last_only_a.migrated_bytes, last_only_b.migrated_bytes);
  cfg.count_decay = 0.9;
  const auto heavy_memory = run_phased(cfg);
  EXPECT_NE(last_only_a.migrated_bytes, heavy_memory.migrated_bytes);
}

TEST_F(PhasedFixture, SchedulerSpecPlumbsThroughPhasedRuns) {
  // The discipline axis reaches the windowed runner: a geometry-aware
  // scheduler changes the positioning cost, so energy moves; FCFS keeps
  // the seed numbers.
  const auto cat = zipf_catalog(300);
  auto cfg = base_config(cat);
  cfg.reorganize = false;
  const auto fcfs_a = run_phased(cfg);
  cfg.scheduler = SchedulerSpec::fcfs();
  const auto fcfs_b = run_phased(cfg);
  EXPECT_DOUBLE_EQ(fcfs_a.total_energy, fcfs_b.total_energy);
  cfg.scheduler = SchedulerSpec::sstf();
  const auto sstf = run_phased(cfg);
  EXPECT_NE(fcfs_a.total_energy, sstf.total_energy);
  EXPECT_NE(fcfs_a.response.mean(), sstf.response.mean());
}

TEST_F(PhasedFixture, DeterministicGivenConfig) {
  const auto cat = zipf_catalog(300);
  const auto cfg = base_config(cat);
  const auto a = run_phased(cfg);
  const auto b = run_phased(cfg);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.migrated_bytes, b.migrated_bytes);
}

} // namespace
} // namespace spindown::sys
