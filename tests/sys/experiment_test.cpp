#include "sys/experiment.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace spindown::sys {
namespace {

workload::FileCatalog small_catalog() {
  std::vector<workload::FileInfo> files(8);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = util::mb(50.0 + 10.0 * static_cast<double>(i));
    files[i].popularity = 1.0 / 8.0;
  }
  return workload::FileCatalog{files};
}

TEST(CacheSpec, Factories) {
  EXPECT_EQ(CacheSpec::none().make(), nullptr);
  auto lru = CacheSpec::lru(util::mb(100.0)).make();
  ASSERT_NE(lru, nullptr);
  EXPECT_EQ(lru->name(), "lru");
  EXPECT_EQ(lru->capacity(), util::mb(100.0));
  EXPECT_EQ(CacheSpec::fifo().make()->name(), "fifo");
  EXPECT_EQ(CacheSpec::lfu().make()->name(), "lfu");
}

TEST(RunExperiment, RequiresCatalog) {
  ExperimentConfig cfg;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(RunExperiment, PoissonWorkloadEndToEnd) {
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 0, 0, 0, 1, 1, 1, 1};
  cfg.num_disks = 4;
  cfg.workload = WorkloadSpec::poisson(0.5, 300.0);
  cfg.seed = 3;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.requests, 100u);
  EXPECT_EQ(r.response.count(), r.requests);
  EXPECT_DOUBLE_EQ(r.power.horizon_s, 300.0);
  EXPECT_GT(r.power.energy, 0.0);
  EXPECT_EQ(r.per_disk.size(), 4u);
}

TEST(RunExperiment, TraceWorkloadEndToEnd) {
  const auto cat = small_catalog();
  const workload::Trace trace{cat, {{1.0, 0}, {2.0, 3}, {50.0, 7}}};
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 0, 0, 0, 0, 0, 0, 0};
  cfg.num_disks = 1;
  cfg.workload = WorkloadSpec::replay(trace);
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.requests, 3u);
  EXPECT_DOUBLE_EQ(r.power.horizon_s, trace.duration() + 1.0);
}

TEST(RunExperiment, TraceWorkloadNeedsTrace) {
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping.assign(8, 0);
  cfg.num_disks = 1;
  cfg.workload.kind = WorkloadSpec::Kind::kTrace;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(RunExperiment, CacheReducesDiskTraffic) {
  const auto cat = small_catalog();
  // Same file requested repeatedly: with a cache only the first goes to disk.
  std::vector<workload::TraceRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back({static_cast<double>(i) * 10.0, 2});
  }
  const workload::Trace trace{cat, records};

  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping.assign(8, 0);
  cfg.num_disks = 1;
  cfg.workload = WorkloadSpec::replay(trace);

  const auto no_cache = run_experiment(cfg);
  cfg.cache = CacheSpec::lru(util::gb(1.0));
  const auto cached = run_experiment(cfg);

  EXPECT_EQ(cached.cache.hits, 19u);
  EXPECT_EQ(cached.cache.misses, 1u);
  EXPECT_LT(cached.power.energy, no_cache.power.energy);
  // Cache hits respond instantly: mean response must collapse.
  EXPECT_LT(cached.response.mean(), no_cache.response.mean() * 0.2);
}

TEST(RunExperiment, DeterministicGivenSeed) {
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 1, 0, 1, 0, 1, 0, 1};
  cfg.num_disks = 2;
  cfg.workload = WorkloadSpec::poisson(1.0, 200.0);
  cfg.seed = 11;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.power.energy, b.power.energy);
  EXPECT_EQ(a.requests, b.requests);
}

} // namespace
} // namespace spindown::sys
