#include "sys/experiment.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/units.h"

namespace spindown::sys {
namespace {

workload::FileCatalog small_catalog() {
  std::vector<workload::FileInfo> files(8);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = util::mb(50.0 + 10.0 * static_cast<double>(i));
    files[i].popularity = 1.0 / 8.0;
  }
  return workload::FileCatalog{files};
}

TEST(CacheSpec, Factories) {
  EXPECT_EQ(CacheSpec::none().make(), nullptr);
  auto lru = CacheSpec::lru(util::mb(100.0)).make();
  ASSERT_NE(lru, nullptr);
  EXPECT_EQ(lru->name(), "lru");
  EXPECT_EQ(lru->capacity(), util::mb(100.0));
  EXPECT_EQ(CacheSpec::fifo().make()->name(), "fifo");
  EXPECT_EQ(CacheSpec::lfu().make()->name(), "lfu");
}

TEST(CacheSpec, SpecRoundTripsEveryKind) {
  const std::vector<std::pair<CacheSpec, std::string>> cases{
      {CacheSpec::none(), "none"},
      {CacheSpec::lru(), "lru:16g"},
      {CacheSpec::fifo(util::gb(4.0)), "fifo:4g"},
      {CacheSpec::lfu(util::gb(16.0)), "lfu:16g"},
      {CacheSpec::lru(util::mb(1500.0)), "lru:1500m"},
      // A capacity with no even SI divisor renders as plain bytes.
      {CacheSpec::lru(1'234'567), "lru:1234567"},
  };
  for (const auto& [spec, key] : cases) {
    SCOPED_TRACE(key);
    EXPECT_EQ(spec.spec(), key);
    const auto parsed = CacheSpec::parse(key);
    EXPECT_EQ(parsed.kind, spec.kind);
    EXPECT_EQ(parsed.capacity, spec.capacity);
    EXPECT_EQ(parsed.spec(), key);
  }
}

TEST(CacheSpec, ParseAcceptsSuffixVariantsAndBareNames) {
  EXPECT_EQ(CacheSpec::parse("lru").capacity, util::gb(16.0)); // §5.1 default
  EXPECT_EQ(CacheSpec::parse("lru:16gb").capacity, util::gb(16.0));
  EXPECT_EQ(CacheSpec::parse("fifo:0.5g").capacity, util::mb(500.0));
  EXPECT_EQ(CacheSpec::parse("lfu:512M").capacity, util::mb(512.0));
}

TEST(CacheSpec, ParseRejectsGarbage) {
  EXPECT_THROW(CacheSpec::parse("arc:16g"), std::invalid_argument);
  EXPECT_THROW(CacheSpec::parse("lru:"), std::invalid_argument);
  EXPECT_THROW(CacheSpec::parse("lru:0"), std::invalid_argument);
  EXPECT_THROW(CacheSpec::parse("lru:sixteen"), std::invalid_argument);
  EXPECT_THROW(CacheSpec::parse("lru:-4g"), std::invalid_argument);
}

TEST(RunExperiment, RequiresCatalog) {
  ExperimentConfig cfg;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(RunExperiment, PoissonWorkloadEndToEnd) {
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 0, 0, 0, 1, 1, 1, 1};
  cfg.num_disks = 4;
  cfg.workload = WorkloadSpec::poisson(0.5, 300.0);
  cfg.seed = 3;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.requests, 100u);
  EXPECT_EQ(r.response.count(), r.requests);
  EXPECT_DOUBLE_EQ(r.power.horizon_s, 300.0);
  EXPECT_GT(r.power.energy, 0.0);
  EXPECT_EQ(r.per_disk.size(), 4u);
}

TEST(RunExperiment, TraceWorkloadEndToEnd) {
  const auto cat = small_catalog();
  const workload::Trace trace{cat, {{1.0, 0}, {2.0, 3}, {50.0, 7}}};
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 0, 0, 0, 0, 0, 0, 0};
  cfg.num_disks = 1;
  cfg.workload = WorkloadSpec::replay(trace);
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.requests, 3u);
  EXPECT_DOUBLE_EQ(r.power.horizon_s, trace.duration() + 1.0);
}

TEST(RunExperiment, TraceWorkloadNeedsTrace) {
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping.assign(8, 0);
  cfg.num_disks = 1;
  cfg.workload.kind = WorkloadSpec::Kind::kTrace;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(RunExperiment, CacheReducesDiskTraffic) {
  const auto cat = small_catalog();
  // Same file requested repeatedly: with a cache only the first goes to disk.
  std::vector<workload::TraceRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back({static_cast<double>(i) * 10.0, 2});
  }
  const workload::Trace trace{cat, records};

  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping.assign(8, 0);
  cfg.num_disks = 1;
  cfg.workload = WorkloadSpec::replay(trace);

  const auto no_cache = run_experiment(cfg);
  cfg.cache = CacheSpec::lru(util::gb(1.0));
  const auto cached = run_experiment(cfg);

  EXPECT_EQ(cached.cache.hits, 19u);
  EXPECT_EQ(cached.cache.misses, 1u);
  EXPECT_LT(cached.power.energy, no_cache.power.energy);
  // Cache hits respond instantly: mean response must collapse.
  EXPECT_LT(cached.response.mean(), no_cache.response.mean() * 0.2);
}

TEST(PolicySpec, SpecRoundTripsEveryKind) {
  const std::vector<PolicySpec> specs{
      PolicySpec::break_even(),  PolicySpec::never(),
      PolicySpec::randomized(),  PolicySpec::fixed(10.5),
      // A value with no short decimal representation: the round-trip must
      // still be exact (format_roundtrip, not fixed-precision printing).
      PolicySpec::fixed(1.0 / 3.0),
      PolicySpec::ewma(0.125),   PolicySpec::share(20),
      PolicySpec::slack(42.25)};
  for (const auto& s : specs) {
    SCOPED_TRACE(s.spec());
    const auto parsed = PolicySpec::parse(s.spec());
    EXPECT_EQ(parsed.kind, s.kind);
    EXPECT_DOUBLE_EQ(parsed.fixed_threshold_s, s.fixed_threshold_s);
    EXPECT_DOUBLE_EQ(parsed.ewma_alpha, s.ewma_alpha);
    EXPECT_EQ(parsed.share_experts, s.share_experts);
    EXPECT_DOUBLE_EQ(parsed.slack_target_s, s.slack_target_s);
    EXPECT_EQ(parsed.spec(), s.spec());
  }
}

TEST(PolicySpec, ParseAcceptsBareAdaptiveNamesWithDefaults) {
  EXPECT_EQ(PolicySpec::parse("ewma").kind, PolicySpec::Kind::kEwma);
  EXPECT_DOUBLE_EQ(PolicySpec::parse("ewma").ewma_alpha,
                   PolicySpec{}.ewma_alpha);
  EXPECT_EQ(PolicySpec::parse("share").share_experts,
            PolicySpec{}.share_experts);
  EXPECT_DOUBLE_EQ(PolicySpec::parse("slack").slack_target_s,
                   PolicySpec{}.slack_target_s);
}

TEST(PolicySpec, ParseRejectsGarbage) {
  EXPECT_THROW(PolicySpec::parse("magic"), std::invalid_argument);
  EXPECT_THROW(PolicySpec::parse("fixed"), std::invalid_argument);
  EXPECT_THROW(PolicySpec::parse("fixed:abc"), std::invalid_argument);
  EXPECT_THROW(PolicySpec::parse("share:1"), std::invalid_argument);
  EXPECT_THROW(PolicySpec::parse("share:2.5"), std::invalid_argument);
  // Non-finite or unrepresentable numbers must fail the parse, not reach
  // the event calendar (a NaN timeout corrupts heap ordering) or trigger
  // an undefined float-to-int cast.
  EXPECT_THROW(PolicySpec::parse("fixed:nan"), std::invalid_argument);
  EXPECT_THROW(PolicySpec::parse("ewma:inf"), std::invalid_argument);
  EXPECT_THROW(PolicySpec::parse("fixed:1e999"), std::invalid_argument);
  EXPECT_THROW(PolicySpec::parse("share:5e9"), std::invalid_argument);
  EXPECT_THROW(PolicySpec::parse("share:nan"), std::invalid_argument);
}

TEST(WorkloadSpec, SpecRoundTripsSyntheticKinds) {
  const std::vector<WorkloadSpec> specs{
      WorkloadSpec::poisson(6.5, 4000.0),
      WorkloadSpec::nhpp({{0.0, 8.0}, {1200.0, 0.05}}, 8000.0),
      WorkloadSpec::nhpp({{0.0, 8.0}, {1200.0, 0.05}, {1800.0, 2.0}}, 8000.0,
                         2000.0),
      WorkloadSpec::mmpp({{8.0, 0.5}, {120.0, 480.0}}, 8000.0)};
  for (const auto& w : specs) {
    SCOPED_TRACE(w.spec());
    const auto parsed = WorkloadSpec::parse(w.spec());
    EXPECT_EQ(parsed.kind, w.kind);
    EXPECT_DOUBLE_EQ(parsed.rate, w.rate);
    EXPECT_DOUBLE_EQ(parsed.horizon_s, w.horizon_s);
    EXPECT_DOUBLE_EQ(parsed.period_s, w.period_s);
    ASSERT_EQ(parsed.segments.size(), w.segments.size());
    for (std::size_t i = 0; i < w.segments.size(); ++i) {
      EXPECT_DOUBLE_EQ(parsed.segments[i].start, w.segments[i].start);
      EXPECT_DOUBLE_EQ(parsed.segments[i].rate, w.segments[i].rate);
    }
    EXPECT_DOUBLE_EQ(parsed.mmpp_params.rate[0], w.mmpp_params.rate[0]);
    EXPECT_DOUBLE_EQ(parsed.mmpp_params.mean_dwell[1],
                     w.mmpp_params.mean_dwell[1]);
    EXPECT_EQ(parsed.spec(), w.spec());
  }
}

TEST(WorkloadSpec, TraceByPathRoundTripsThroughCsv) {
  const auto cat = small_catalog();
  const workload::Trace trace{cat, {{1.0, 0}, {2.0, 3}, {50.0, 7}}};
  const auto stem = (std::filesystem::temp_directory_path() /
                     "spindown_workload_spec_trace_tmp")
                        .string();
  trace.save(stem);

  const auto w = WorkloadSpec::parse("trace:" + stem);
  EXPECT_EQ(w.kind, WorkloadSpec::Kind::kTrace);
  EXPECT_EQ(w.spec(), "trace:" + stem);
  ASSERT_NE(w.trace, nullptr);
  EXPECT_EQ(w.trace, w.owned_trace.get()); // the spec owns its trace
  EXPECT_EQ(w.trace->size(), 3u);
  EXPECT_DOUBLE_EQ(w.measurement_horizon(), trace.duration() + 1.0);

  // Copies share the loaded trace (value semantics, one load).
  const auto copy = w;
  EXPECT_EQ(copy.trace, w.trace);

  // And it is runnable end to end, like any other parsed workload.
  ExperimentConfig cfg;
  cfg.catalog = &w.trace->catalog();
  cfg.mapping.assign(8, 0);
  cfg.num_disks = 1;
  cfg.workload = w;
  EXPECT_EQ(run_experiment(cfg).requests, 3u);

  std::filesystem::remove(stem + ".catalog.csv");
  std::filesystem::remove(stem + ".trace.csv");
}

TEST(WorkloadSpec, ReplayParsesButNeedsResolution) {
  const auto w = WorkloadSpec::parse("replay");
  EXPECT_EQ(w.kind, WorkloadSpec::Kind::kReplay);
  EXPECT_EQ(w.spec(), "replay");
  EXPECT_THROW(w.measurement_horizon(), std::invalid_argument);
  const auto cat = small_catalog();
  EXPECT_THROW(w.make_stream(cat, 1), std::invalid_argument);
}

TEST(WorkloadSpec, MeanRateSummarizesEveryKind) {
  EXPECT_DOUBLE_EQ(WorkloadSpec::poisson(6.0, 4000.0).mean_rate(), 6.0);
  // NHPP: 8/s for the first quarter, idle after — mean 2/s.
  EXPECT_DOUBLE_EQ(
      WorkloadSpec::nhpp({{0.0, 8.0}, {1000.0, 0.0}}, 4000.0).mean_rate(),
      2.0);
  // Periodic NHPP averages over one period.
  EXPECT_DOUBLE_EQ(
      WorkloadSpec::nhpp({{0.0, 8.0}, {500.0, 0.0}}, 4000.0, 1000.0)
          .mean_rate(),
      4.0);
  // MMPP: stationary mean weighted by dwell times.
  EXPECT_DOUBLE_EQ(
      WorkloadSpec::mmpp({{9.0, 1.0}, {100.0, 300.0}}, 4000.0).mean_rate(),
      3.0);
  const auto cat = small_catalog();
  const workload::Trace trace{cat, {{0.0, 0}, {10.0, 1}, {20.0, 2}}};
  EXPECT_DOUBLE_EQ(WorkloadSpec::replay(trace).mean_rate(), 3.0 / 20.0);
}

TEST(WorkloadSpec, ParseRejectsGarbageAndTraces) {
  EXPECT_THROW(WorkloadSpec::parse("trace"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("trace:"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("poisson(6)"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("poisson(6,4000"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("nhpp(0-8,100)"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("mmpp(1,2,3,4)"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("poisson(x,4000)"), std::invalid_argument);
  // A NaN rate would pass PoissonArrivals' rate > 0 check (false for NaN
  // comparisons) and hang the arrival loop forever.
  EXPECT_THROW(WorkloadSpec::parse("poisson(nan,4000)"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("mmpp(inf,1,2,3,100)"),
               std::invalid_argument);
}

TEST(RunExperiment, NhppWorkloadEndToEnd) {
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 0, 0, 0, 1, 1, 1, 1};
  cfg.num_disks = 2;
  cfg.workload =
      WorkloadSpec::nhpp({{0.0, 2.0}, {150.0, 0.05}}, 300.0);
  cfg.seed = 3;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.requests, 100u);
  EXPECT_EQ(r.response.count(), r.requests);
  EXPECT_DOUBLE_EQ(r.power.horizon_s, 300.0);
}

TEST(RunExperiment, MmppWorkloadEndToEnd) {
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 0, 0, 0, 1, 1, 1, 1};
  cfg.num_disks = 2;
  cfg.workload = WorkloadSpec::mmpp({{3.0, 0.1}, {60.0, 60.0}}, 400.0);
  cfg.policy = PolicySpec::ewma();
  cfg.seed = 5;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.requests, 50u);
  EXPECT_EQ(r.response.count(), r.requests);
  EXPECT_DOUBLE_EQ(r.power.horizon_s, 400.0);
}

TEST(RunExperiment, PoissonPathBitExactThroughArrivalProcess) {
  // The WorkloadSpec::make_stream plumbing must not disturb the seed
  // path: running the same config twice (it now goes through
  // ArrivalZipfStream + PoissonArrivals) gives identical results, and the
  // request count matches a hand-built PoissonZipfStream drive.
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 1, 0, 1, 0, 1, 0, 1};
  cfg.num_disks = 2;
  cfg.workload = WorkloadSpec::poisson(1.5, 250.0);
  cfg.seed = 9;
  const auto r = run_experiment(cfg);

  workload::PoissonZipfStream stream{cat, 1.5, 250.0, util::Rng{9}};
  std::uint64_t n = 0;
  while (stream.next().has_value()) ++n;
  EXPECT_EQ(r.requests, n);
}

TEST(RunExperiment, DeterministicGivenSeed) {
  const auto cat = small_catalog();
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 1, 0, 1, 0, 1, 0, 1};
  cfg.num_disks = 2;
  cfg.workload = WorkloadSpec::poisson(1.0, 200.0);
  cfg.seed = 11;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.power.energy, b.power.energy);
  EXPECT_EQ(a.requests, b.requests);
}

} // namespace
} // namespace spindown::sys
