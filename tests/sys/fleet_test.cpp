#include "sys/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "sys/scenario.h"
#include "util/units.h"
#include "workload/trace.h"

namespace spindown::sys {
namespace {

workload::FileCatalog fleet_catalog(std::size_t n_files = 12) {
  std::vector<workload::FileInfo> files(n_files);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = util::mb(50.0 + 10.0 * static_cast<double>(i % 4));
    files[i].popularity = 1.0 / static_cast<double>(n_files);
  }
  return workload::FileCatalog{files};
}

ExperimentConfig fleet_config(const workload::FileCatalog& cat,
                              std::uint32_t num_disks = 6) {
  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping.resize(cat.size());
  for (std::size_t i = 0; i < cfg.mapping.size(); ++i) {
    cfg.mapping[i] = static_cast<std::uint32_t>(i % num_disks);
  }
  cfg.num_disks = num_disks;
  cfg.workload = WorkloadSpec::poisson(0.8, 200.0);
  cfg.seed = 17;
  return cfg;
}

/// Every physical field of two RunResults must agree bitwise.  `events` is
/// deliberately absent: it is an engine statistic (the fleet path routes
/// arrivals without calendar events), not part of the invariance contract.
void expect_same_physical(const RunResult& a, const RunResult& b) {
  EXPECT_DOUBLE_EQ(a.power.horizon_s, b.power.horizon_s);
  EXPECT_DOUBLE_EQ(a.power.energy, b.power.energy);
  EXPECT_DOUBLE_EQ(a.power.average_power, b.power.average_power);
  EXPECT_DOUBLE_EQ(a.power.always_on_energy, b.power.always_on_energy);
  EXPECT_DOUBLE_EQ(a.power.saving_vs_always_on, b.power.saving_vs_always_on);
  EXPECT_EQ(a.power.spin_ups, b.power.spin_ups);
  EXPECT_EQ(a.power.spin_downs, b.power.spin_downs);
  for (std::size_t s = 0; s < a.power.state_time.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.power.state_time[s], b.power.state_time[s]);
  }
  EXPECT_EQ(a.response.count(), b.response.count());
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
  EXPECT_DOUBLE_EQ(a.response.stddev(), b.response.stddev());
  EXPECT_DOUBLE_EQ(a.response.min(), b.response.min());
  EXPECT_DOUBLE_EQ(a.response.max(), b.response.max());
  EXPECT_DOUBLE_EQ(a.response.p50(), b.response.p50());
  EXPECT_DOUBLE_EQ(a.response.p95(), b.response.p95());
  EXPECT_DOUBLE_EQ(a.response.p99(), b.response.p99());
  EXPECT_EQ(a.hits_response.count(), b.hits_response.count());
  EXPECT_DOUBLE_EQ(a.hits_response.mean(), b.hits_response.mean());
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.completed_at_horizon, b.completed_at_horizon);
  EXPECT_EQ(a.in_flight_at_horizon, b.in_flight_at_horizon);
  ASSERT_EQ(a.per_disk.size(), b.per_disk.size());
  for (std::size_t i = 0; i < a.per_disk.size(); ++i) {
    SCOPED_TRACE("disk " + std::to_string(i));
    const auto& da = a.per_disk[i];
    const auto& db = b.per_disk[i];
    EXPECT_EQ(da.disk_id, db.disk_id);
    for (std::size_t s = 0; s < da.state_time.size(); ++s) {
      EXPECT_DOUBLE_EQ(da.state_time[s], db.state_time[s]);
    }
    EXPECT_EQ(da.spin_ups, db.spin_ups);
    EXPECT_EQ(da.spin_downs, db.spin_downs);
    EXPECT_EQ(da.served, db.served);
    EXPECT_EQ(da.bytes_served, db.bytes_served);
    EXPECT_EQ(da.queued, db.queued);
    EXPECT_EQ(da.in_service, db.in_service);
    EXPECT_EQ(da.positionings, db.positionings);
    EXPECT_EQ(da.idle_periods.total(), db.idle_periods.total());
    EXPECT_EQ(da.response.count(), db.response.count());
    EXPECT_DOUBLE_EQ(da.response.mean(), db.response.mean());
    EXPECT_DOUBLE_EQ(da.response.max(), db.response.max());
    EXPECT_DOUBLE_EQ(da.energy_j, db.energy_j);
    EXPECT_DOUBLE_EQ(da.always_on_j, db.always_on_j);
  }
}

TEST(FleetInvariance, MatchesSingleCalendarAcrossShardCounts) {
  // The headline contract: every physical result field is bit-identical at
  // any shard count.  The grid deliberately crosses an adaptive policy and
  // a bursty workload with a cache, so per-disk RNG streams, arrival-order
  // cache mutation, and drain behavior are all exercised.
  const auto cat = fleet_catalog();
  const std::vector<PolicySpec> policies{PolicySpec::break_even(),
                                         PolicySpec::ewma()};
  const std::vector<WorkloadSpec> workloads{
      WorkloadSpec::poisson(0.8, 200.0),
      WorkloadSpec::mmpp({{2.0, 0.1}, {30.0, 60.0}}, 200.0)};
  const std::vector<CacheSpec> caches{CacheSpec::none(),
                                      CacheSpec::lru(util::mb(200.0))};
  for (const auto& p : policies) {
    for (const auto& w : workloads) {
      for (const auto& c : caches) {
        auto cfg = fleet_config(cat);
        cfg.policy = p;
        cfg.workload = w;
        cfg.cache = c;
        cfg.shards = 1;
        const auto baseline = run_experiment(cfg);
        for (const std::uint32_t shards : {2u, 4u, 8u}) {
          SCOPED_TRACE("policy " + p.spec() + " workload " + w.spec() +
                       " cache " + c.spec() + " shards " +
                       std::to_string(shards));
          cfg.shards = shards;
          expect_same_physical(baseline, run_experiment(cfg));
        }
      }
    }
  }
}

TEST(FleetMerge, TwoShardSplitEqualsSingleCalendar) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat);
  cfg.cache = CacheSpec::lru(util::mb(150.0));
  const auto baseline = run_experiment(cfg); // shards == 1
  const auto partials = run_fleet_partials(cfg, 2);
  ASSERT_EQ(partials.size(), 3u); // router + 2 disk groups
  RunResult merged;
  for (const auto& p : partials) merged.merge(p);
  expect_same_physical(baseline, merged);
}

TEST(FleetMerge, FoldIsAssociativeAndOrderIndependent) {
  // merge() recomputes every aggregate from the merged per-disk records, so
  // any fold order over the partials must produce the same bits.
  const auto cat = fleet_catalog();
  const auto cfg = fleet_config(cat);
  const auto partials = run_fleet_partials(cfg, 3);
  ASSERT_EQ(partials.size(), 4u);

  RunResult forward;
  for (const auto& p : partials) forward.merge(p);
  RunResult backward;
  for (auto it = partials.rbegin(); it != partials.rend(); ++it) {
    backward.merge(*it);
  }
  RunResult grouped; // ((0 + 2) + (3 + 1))
  RunResult left, right;
  left.merge(partials[0]).merge(partials[2]);
  right.merge(partials[3]).merge(partials[1]);
  grouped.merge(left).merge(right);

  expect_same_physical(forward, backward);
  expect_same_physical(forward, grouped);

  auto single = cfg;
  single.shards = 1;
  expect_same_physical(run_experiment(single), forward);
}

TEST(FleetMerge, RejectsMismatchedHorizons) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat);
  const auto a = run_experiment(cfg);
  cfg.workload = WorkloadSpec::poisson(0.8, 300.0);
  const auto b = run_experiment(cfg);
  RunResult merged;
  merged.merge(a);
  EXPECT_THROW(merged.merge(b), std::invalid_argument);
}

TEST(FleetMerge, RejectsOverlappingDiskIds) {
  const auto cat = fleet_catalog();
  const auto cfg = fleet_config(cat);
  const auto a = run_experiment(cfg);
  RunResult merged;
  merged.merge(a);
  EXPECT_THROW(merged.merge(a), std::invalid_argument);
}

TEST(DiskMetricsMerge, SumsCountersAndKeepsLowerId) {
  disk::DiskMetrics a, b;
  a.disk_id = 3;
  a.spin_ups = 2;
  a.served = 10;
  a.state_time[0] = 1.5;
  a.energy_j = 100.0;
  a.response.add(1.0);
  a.idle_periods.add(0.5);
  b.disk_id = 1;
  b.spin_ups = 1;
  b.served = 4;
  b.state_time[0] = 2.5;
  b.energy_j = 50.0;
  b.response.add(3.0);
  b.idle_periods.add(2.0, 3);
  a.merge(b);
  EXPECT_EQ(a.disk_id, 1u);
  EXPECT_EQ(a.spin_ups, 3u);
  EXPECT_EQ(a.served, 14u);
  EXPECT_DOUBLE_EQ(a.state_time[0], 4.0);
  EXPECT_DOUBLE_EQ(a.energy_j, 150.0);
  EXPECT_EQ(a.response.count(), 2u);
  EXPECT_DOUBLE_EQ(a.response.mean(), 2.0);
  EXPECT_EQ(a.idle_periods.total(), 4u);
}

TEST(FleetTies, SimultaneousCompletionsMatchSingleCalendar) {
  // Regression for the latent completion-ordering assumption: requests of
  // identical size submitted at the same instant to different disks finish
  // at identical timestamps.  In one calendar those completions execute in
  // insertion order; sharded, each runs on its own calendar.  The result
  // must not depend on that interleaving — canonical aggregation folds
  // per-disk records in disk-id order either way.
  std::vector<workload::FileInfo> files(4);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = util::mb(80.0); // equal sizes -> equal service times
    files[i].popularity = 0.25;
  }
  const workload::FileCatalog cat{files};
  std::vector<workload::TraceRecord> records;
  for (const double t : {0.5, 40.5, 90.5}) {
    for (std::uint32_t f = 0; f < 4; ++f) {
      records.push_back({t, f, workload::kNoLba});
    }
  }
  const workload::Trace trace{cat, std::move(records)};

  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = {0, 1, 2, 3}; // one file per disk
  cfg.num_disks = 4;
  cfg.workload = WorkloadSpec::replay(trace);
  cfg.seed = 23;
  const auto baseline = run_experiment(cfg); // shards == 1
  EXPECT_EQ(baseline.requests, 12u);
  for (const std::uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    expect_same_physical(baseline, run_fleet(cfg, shards));
  }
}

TEST(EffectiveShards, ClampsToFarmAndResolvesAuto) {
  EXPECT_EQ(effective_shards(1, 100), 1u);
  EXPECT_EQ(effective_shards(4, 100), 4u);
  EXPECT_EQ(effective_shards(8, 3), 3u);  // a shard owns >= 1 disk
  EXPECT_EQ(effective_shards(5, 0), 1u);  // degenerate farm
  EXPECT_GE(effective_shards(0, 64), 1u); // auto: hardware_concurrency
  EXPECT_LE(effective_shards(0, 2), 2u);
}

TEST(EffectiveShards, AutoAppliesTheDisksPerShardFloor) {
  // shards=auto must never land in the oversharded regime: each auto
  // shard owns at least kAutoMinDisksPerShard disks, whatever the host's
  // hardware concurrency.  Explicit shard counts are still honored.
  for (const std::uint32_t disks : {1u, 16u, 31u, 32u, 63u, 64u, 4096u}) {
    const std::uint32_t floor_cap =
        std::max(1u, disks / kAutoMinDisksPerShard);
    EXPECT_LE(effective_shards(0, disks), floor_cap)
        << "disks " << disks;
  }
  EXPECT_EQ(effective_shards(0, 31), 1u); // below one floor's worth
  EXPECT_EQ(effective_shards(8, 16), 8u); // explicit: floor not applied
}

TEST(FleetPath, ClassifiesEveryPlacementByCacheOnly) {
  // Every built-in placement resolves to a static file->disk map, so the
  // fast-path/router split is decided by the cache alone: cache=none is
  // shard-decomposable (routerless), any real cache needs the router.
  const std::vector<std::string> placements{
      "pack", "grouped:4", "random", "maid:2", "sea:0.8", "seg:2", "ffd"};
  const std::vector<std::string> caches{"none", "lru:200m", "fifo:200m",
                                        "lfu:200m"};
  for (const auto& placement : placements) {
    EXPECT_TRUE(PlacementSpec::parse(placement).static_mapping())
        << placement;
    for (const auto& cache : caches) {
      SCOPED_TRACE("placement " + placement + " cache " + cache);
      const auto spec =
          ScenarioSpec::parse("catalog=table1(400,5) load=0.9 disks=16 "
                              "workload=poisson(1,200)")
              .with("placement", placement)
              .with("cache", cache);
      const auto resolved = resolve_scenario(spec);
      EXPECT_FALSE(resolved.config.dynamic_routing);
      const auto expected = cache == "none" ? FleetPath::kShardLocal
                                            : FleetPath::kRouted;
      EXPECT_EQ(classify_fleet_path(resolved.config), expected);
    }
  }
}

TEST(FleetPath, DynamicRoutingForcesTheRouter) {
  // Reserved hook for future per-arrival placements (replica-aware
  // redirection): a config flagged dynamic_routing must route even with
  // cache=none, and forcing the fast path on it must throw.
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat);
  ASSERT_EQ(classify_fleet_path(cfg), FleetPath::kShardLocal);
  cfg.dynamic_routing = true;
  EXPECT_EQ(classify_fleet_path(cfg), FleetPath::kRouted);
  EXPECT_THROW(run_fleet(cfg, 2, FleetPath::kShardLocal),
               std::invalid_argument);
}

TEST(FleetPath, ForcingTheFastPathOnACachefulConfigThrows) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat);
  cfg.cache = CacheSpec::lru(util::mb(200.0));
  ASSERT_EQ(classify_fleet_path(cfg), FleetPath::kRouted);
  EXPECT_THROW(run_fleet(cfg, 2, FleetPath::kShardLocal),
               std::invalid_argument);
}

TEST(FleetInvariance, BothPathsAreBitIdenticalOnTheSameScenario) {
  // The tentpole contract: force the router on a shard-decomposable
  // scenario (which would normally take the routerless fast path) and
  // require bit-identical RunResults from both pipelines — and from the
  // single calendar.  Crossed with an adaptive policy and a bursty
  // workload so per-disk RNG consumption differs between disks.
  const auto cat = fleet_catalog();
  const std::vector<WorkloadSpec> workloads{
      WorkloadSpec::poisson(0.8, 200.0),
      WorkloadSpec::mmpp({{2.0, 0.1}, {30.0, 60.0}}, 200.0)};
  for (const auto& w : workloads) {
    auto cfg = fleet_config(cat);
    cfg.policy = PolicySpec::ewma();
    cfg.workload = w;
    ASSERT_EQ(classify_fleet_path(cfg), FleetPath::kShardLocal);
    const auto baseline = run_experiment(cfg); // shards == 1
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      SCOPED_TRACE("workload " + w.spec() + " shards " +
                   std::to_string(shards));
      const auto local = run_fleet(cfg, shards, FleetPath::kShardLocal);
      const auto routed = run_fleet(cfg, shards, FleetPath::kRouted);
      expect_same_physical(baseline, local);
      expect_same_physical(baseline, routed);
      EXPECT_EQ(local.events, routed.events); // same calendars either way
    }
  }
}

TEST(FleetPerf, CountersDescribeThePipeline) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat);

  FleetPerf local;
  const auto fast = run_fleet(cfg, 3, FleetPath::kShardLocal, &local);
  EXPECT_EQ(local.path, FleetPath::kShardLocal);
  EXPECT_EQ(local.shards, 3u);
  EXPECT_GE(local.workers, 1u);
  EXPECT_LE(local.workers, 3u);
  ASSERT_EQ(local.per_shard.size(), 3u);
  std::uint64_t submitted = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(local.per_shard[s].shard, s);
    EXPECT_EQ(local.per_shard[s].batches, 0u); // no router, no batches
    EXPECT_GT(local.per_shard[s].events, 0u);
    submitted += local.per_shard[s].submissions;
  }
  EXPECT_EQ(submitted, fast.requests); // cache=none: every request lands

  FleetPerf routed;
  const auto slow = run_fleet(cfg, 3, FleetPath::kRouted, &routed);
  EXPECT_EQ(routed.path, FleetPath::kRouted);
  EXPECT_EQ(routed.workers, 3u);
  ASSERT_EQ(routed.per_shard.size(), 3u);
  submitted = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_GT(routed.per_shard[s].batches, 0u);
    EXPECT_GE(routed.per_shard[s].ring_high_water, 1u);
    submitted += routed.per_shard[s].submissions;
  }
  EXPECT_EQ(submitted, slow.requests);
  EXPECT_EQ(slow.requests, fast.requests);
  ASSERT_EQ(routed.worker_busy_s.size(), 3u);
  ASSERT_EQ(routed.worker_wait_s.size(), 3u);
  EXPECT_GE(routed.router_busy_s, 0.0);
  EXPECT_GE(routed.router_stall_s, 0.0);
}

TEST(RunFleet, RequiresPositiveHorizon) {
  const auto cat = fleet_catalog();
  auto cfg = fleet_config(cat);
  cfg.workload = WorkloadSpec::poisson(0.8, 0.0);
  EXPECT_THROW(run_fleet(cfg, 2), std::invalid_argument);
}

TEST(FleetScenario, ShardsKeySelectsTheFleetPath) {
  // End to end through the scenario grammar: the shards key changes
  // wall-clock strategy only, never the reported result row.
  const ScenarioSpec base = ScenarioSpec::parse(
      "catalog=table1(400,5) load=0.9 policy=break-even "
      "workload=poisson(1,300) seed=9");
  const auto baseline = run_scenario(base);
  const auto sharded = run_scenario(base.with("shards", "4"));
  expect_same_physical(baseline, sharded);
  EXPECT_EQ(to_json(base, baseline).find("shards"), std::string::npos);
  EXPECT_NE(to_json(base.with("shards", "4"), sharded).find("shards=4"),
            std::string::npos);
}

} // namespace
} // namespace spindown::sys
