// spec_roundtrip_fuzz_test.cpp — property test: parse(spec()) is the
// identity on every spec type, for randomized values of every knob.
//
// The canonical-string contract is what makes a scenario a value: any
// experiment a bench can express must survive a trip through its string
// form bit for bit.  Each iteration draws random knobs (including doubles
// with no short decimal representation), renders, re-parses, and re-renders;
// the two renderings must be identical, and the numeric fields must match
// exactly.
#include <gtest/gtest.h>

#include <random>

#include "sys/scenario.h"
#include "util/units.h"

namespace spindown::sys {
namespace {

class Fuzz {
public:
  explicit Fuzz(std::uint64_t seed) : rng_(seed) {}

  double real(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(rng_);
  }
  std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>{lo, hi}(rng_);
  }
  bool coin() { return integer(0, 1) == 1; }

  PolicySpec policy() {
    switch (integer(0, 6)) {
      case 0: return PolicySpec::break_even();
      case 1: return PolicySpec::never();
      case 2: return PolicySpec::randomized();
      case 3: return PolicySpec::fixed(real(0.0, 7200.0));
      case 4: return PolicySpec::ewma(real(0.01, 1.0));
      case 5:
        return PolicySpec::share(static_cast<std::uint32_t>(integer(2, 64)));
      default: return PolicySpec::slack(real(1.0, 600.0));
    }
  }

  SchedulerSpec scheduler() {
    switch (integer(0, 4)) {
      case 0: return SchedulerSpec::fcfs();
      case 1: return SchedulerSpec::sstf();
      case 2: return SchedulerSpec::scan();
      case 3: return SchedulerSpec::clook();
      default:
        return SchedulerSpec::batch(
            static_cast<std::uint32_t>(integer(1, 128)), integer(1, 1 << 20));
    }
  }

  CacheSpec cache() {
    const auto cap = integer(1, util::tb(2.0));
    switch (integer(0, 3)) {
      case 0: return CacheSpec::none();
      case 1: return CacheSpec::lru(cap);
      case 2: return CacheSpec::fifo(cap);
      default: return CacheSpec::lfu(cap);
    }
  }

  WorkloadSpec workload() {
    const double horizon = real(10.0, 1e6);
    switch (integer(0, 2)) {
      case 0: return WorkloadSpec::poisson(real(0.01, 50.0), horizon);
      case 1: {
        std::vector<workload::RateSegment> segments;
        double t = 0.0;
        const auto n = integer(1, 5);
        for (std::uint64_t i = 0; i < n; ++i) {
          segments.push_back({t, real(0.0, 20.0)});
          t += real(1.0, 5000.0);
        }
        return WorkloadSpec::nhpp(std::move(segments), horizon,
                                  coin() ? real(100.0, 1e5) : 0.0);
      }
      default: {
        workload::MmppParams p;
        p.rate = {real(0.1, 30.0), real(0.01, 5.0)};
        p.mean_dwell = {real(1.0, 5000.0), real(1.0, 5000.0)};
        return WorkloadSpec::mmpp(p, horizon);
      }
    }
  }

  CatalogSpec catalog() {
    switch (integer(0, 2)) {
      case 0:
        return CatalogSpec::table1(integer(10, 100'000), integer(0, 1 << 30));
      case 1: {
        workload::SyntheticSpec s;
        s.n_files = integer(10, 100'000);
        s.zipf_exponent = coin() ? 0.0 : real(0.05, 2.0);
        s.max_size = integer(util::mb(1.0), util::tb(1.0));
        s.correlation = static_cast<workload::SizeCorrelation>(integer(0, 2));
        return CatalogSpec::synthetic(s, integer(0, 1 << 30));
      }
      default: {
        workload::NerscSpec n;
        n.n_files = integer(10, 100'000);
        n.n_requests = n.n_files + integer(0, 100'000);
        n.seed = integer(0, 1 << 30);
        if (coin()) n.duration_s = real(3600.0, 1e7);
        if (coin()) n.batch_fraction = real(0.0, 1.0);
        if (coin()) n.batch_min = integer(1, 8);
        if (coin()) n.batch_max = integer(8, 32);
        return CatalogSpec::nersc_synth(n);
      }
    }
  }

  ObsSpec obs() {
    ObsSpec o;
    // Half the draws stay fully off (the default); the rest toggle each
    // kind independently so every subset of the grammar gets exercised.
    if (coin()) {
      o.spans = coin();
      o.power = coin();
      o.policy = coin();
      o.metrics = coin();
      o.profile = coin();
      if (o.metrics && coin()) o.metrics_interval_s = real(0.001, 1e5);
    }
    return o;
  }

  OrchSpec orch() {
    OrchSpec o;
    // Half the draws stay off (the default, omitted from the canonical
    // string); the rest toggle each mechanism independently.  Knobs are
    // drawn only for enabled mechanisms — the grammar attaches them to
    // their mechanism token, so a disabled mechanism's knob cannot be
    // expressed (and must stay at its default to round-trip).
    if (coin()) return o;
    o.redirect = coin();
    o.offload = coin();
    o.budget = coin();
    if (o.offload) {
      if (coin()) o.log_disks = static_cast<std::uint32_t>(integer(1, 64));
      if (coin()) o.destage_deadline_s = real(0.001, 1e5);
      if (coin()) o.write_fraction = real(0.0, 1.0);
    }
    if (o.budget && coin()) o.slo_p99_s = real(0.001, 600.0);
    return o;
  }

  PlacementSpec placement() {
    switch (integer(0, 6)) {
      case 0: return PlacementSpec::pack();
      case 1:
        return PlacementSpec::grouped(
            static_cast<std::uint32_t>(integer(1, 64)));
      case 2: return PlacementSpec::random();
      case 3:
        return PlacementSpec::maid(static_cast<std::uint32_t>(integer(1, 16)));
      case 4: return PlacementSpec::sea(real(0.05, 1.0));
      case 5:
        return PlacementSpec::segregated(
            static_cast<std::uint32_t>(integer(1, 16)));
      default: return PlacementSpec::ffd();
    }
  }

  ScenarioSpec scenario() {
    ScenarioSpec s;
    s.catalog = catalog();
    s.placement = placement();
    s.load_fraction = real(0.01, 1.0);
    s.disks = static_cast<std::uint32_t>(integer(0, 500));
    s.policy = policy();
    s.scheduler = scheduler();
    s.cache = cache();
    s.workload = workload();
    s.seed = integer(0, ~0ULL >> 1);
    // Mostly the default (omitted from the canonical string), sometimes an
    // explicit count or "auto" (rendered for shards == 0).
    switch (integer(0, 3)) {
      case 0: s.shards = 0; break;
      case 1:
        s.shards = static_cast<std::uint32_t>(integer(2, 256));
        break;
      default: s.shards = 1; break;
    }
    s.obs = obs();
    // Replication degree (own top-level `replicas=` key, default omitted).
    if (coin()) {
      s.placement.replicas = static_cast<std::uint32_t>(integer(2, 16));
    }
    s.orch = orch();
    return s;
  }

private:
  std::mt19937_64 rng_;
};

constexpr int kIterations = 300;

TEST(SpecRoundTripFuzz, PolicySpecIdentity) {
  Fuzz fuzz{101};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.policy();
    SCOPED_TRACE(s.spec());
    const auto parsed = PolicySpec::parse(s.spec());
    EXPECT_EQ(parsed.spec(), s.spec());
    EXPECT_EQ(parsed.kind, s.kind);
    EXPECT_DOUBLE_EQ(parsed.fixed_threshold_s, s.fixed_threshold_s);
    EXPECT_DOUBLE_EQ(parsed.ewma_alpha, s.ewma_alpha);
    EXPECT_EQ(parsed.share_experts, s.share_experts);
    EXPECT_DOUBLE_EQ(parsed.slack_target_s, s.slack_target_s);
  }
}

TEST(SpecRoundTripFuzz, SchedulerSpecIdentity) {
  Fuzz fuzz{102};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.scheduler();
    SCOPED_TRACE(s.spec());
    const auto parsed = SchedulerSpec::parse(s.spec());
    EXPECT_EQ(parsed.spec(), s.spec());
    EXPECT_EQ(parsed.kind, s.kind);
    if (s.kind == SchedulerSpec::Kind::kBatch) {
      EXPECT_EQ(parsed.max_batch, s.max_batch);
      EXPECT_EQ(parsed.coalesce_gap_blocks, s.coalesce_gap_blocks);
    }
  }
}

TEST(SpecRoundTripFuzz, CacheSpecIdentity) {
  Fuzz fuzz{103};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.cache();
    SCOPED_TRACE(s.spec());
    const auto parsed = CacheSpec::parse(s.spec());
    EXPECT_EQ(parsed.spec(), s.spec());
    EXPECT_EQ(parsed.kind, s.kind);
    if (s.kind != CacheSpec::Kind::kNone) {
      EXPECT_EQ(parsed.capacity, s.capacity); // byte-exact through suffixes
    }
  }
}

TEST(SpecRoundTripFuzz, WorkloadSpecIdentity) {
  Fuzz fuzz{104};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.workload();
    SCOPED_TRACE(s.spec());
    const auto parsed = WorkloadSpec::parse(s.spec());
    EXPECT_EQ(parsed.spec(), s.spec());
    EXPECT_EQ(parsed.kind, s.kind);
    EXPECT_DOUBLE_EQ(parsed.horizon_s, s.horizon_s);
    ASSERT_EQ(parsed.segments.size(), s.segments.size());
    for (std::size_t k = 0; k < s.segments.size(); ++k) {
      EXPECT_DOUBLE_EQ(parsed.segments[k].start, s.segments[k].start);
      EXPECT_DOUBLE_EQ(parsed.segments[k].rate, s.segments[k].rate);
    }
  }
  EXPECT_EQ(WorkloadSpec::parse("replay").spec(), "replay");
}

TEST(SpecRoundTripFuzz, ObsSpecIdentity) {
  Fuzz fuzz{108};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.obs();
    SCOPED_TRACE(s.spec());
    const auto parsed = ObsSpec::parse(s.spec());
    EXPECT_EQ(parsed, s); // defaulted ==: every flag and the interval
    EXPECT_EQ(parsed.spec(), s.spec());
    EXPECT_EQ(parsed.kind_mask(), s.kind_mask());
  }
  // The aliases parse too, and "off" is the canonical empty rendering.
  EXPECT_EQ(ObsSpec::parse("all"), ObsSpec::all());
  EXPECT_EQ(ObsSpec::off().spec(), "off");
}

TEST(SpecRoundTripFuzz, OrchSpecIdentity) {
  Fuzz fuzz{109};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.orch();
    SCOPED_TRACE(s.spec());
    const auto parsed = OrchSpec::parse(s.spec());
    EXPECT_EQ(parsed, s); // defaulted ==: every mechanism and knob
    EXPECT_EQ(parsed.spec(), s.spec());
    EXPECT_EQ(parsed.enabled(), s.enabled());
  }
  EXPECT_EQ(OrchSpec::off().spec(), "off");
  EXPECT_FALSE(OrchSpec::parse("off").enabled());
}

TEST(SpecRoundTripFuzz, CatalogSpecIdentity) {
  Fuzz fuzz{105};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.catalog();
    SCOPED_TRACE(s.spec());
    EXPECT_EQ(CatalogSpec::parse(s.spec()).spec(), s.spec());
  }
}

TEST(SpecRoundTripFuzz, PlacementSpecIdentity) {
  Fuzz fuzz{106};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.placement();
    SCOPED_TRACE(s.spec());
    EXPECT_EQ(PlacementSpec::parse(s.spec()).spec(), s.spec());
  }
}

TEST(SpecRoundTripFuzz, ComposedScenarioIdentity) {
  Fuzz fuzz{107};
  for (int i = 0; i < kIterations; ++i) {
    const auto s = fuzz.scenario();
    SCOPED_TRACE(s.spec());
    const auto parsed = ScenarioSpec::parse(s.spec());
    EXPECT_EQ(parsed, s);               // canonical-name equality
    EXPECT_EQ(parsed.spec(), s.spec()); // and the string is a fixed point
  }
}

} // namespace
} // namespace spindown::sys
