#include "sys/system.h"

#include <gtest/gtest.h>

#include "util/units.h"
#include "workload/stream.h"

namespace spindown::sys {
namespace {

workload::FileCatalog uniform_catalog(std::size_t n, util::Bytes size) {
  std::vector<workload::FileInfo> files(n);
  for (std::size_t i = 0; i < n; ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = size;
    files[i].popularity = 1.0 / static_cast<double>(n);
  }
  return workload::FileCatalog{files};
}

TEST(PolicySpec, FactoryNames) {
  const auto p = disk::DiskParams::st3500630as();
  EXPECT_EQ(PolicySpec::never().name(p), "never");
  EXPECT_EQ(PolicySpec::fixed(10.0).name(p), "fixed(10 s)");
  EXPECT_EQ(PolicySpec::randomized().name(p), "randomized-competitive");
  EXPECT_NE(PolicySpec::break_even().name(p).find("53.2"), std::string::npos);
}

TEST(AlwaysOnEnergy, ClosedForm) {
  const auto p = disk::DiskParams::st3500630as();
  // 10 disks for 100 s, no service at all: pure idle.
  EXPECT_DOUBLE_EQ(always_on_energy(p, 10, 100.0, 0.0, 0.0),
                   10 * 100.0 * 9.3);
  // Service premium: position at seek power, transfer at active power.
  EXPECT_DOUBLE_EQ(always_on_energy(p, 1, 100.0, 2.0, 3.0),
                   100.0 * 9.3 + 2.0 * (12.6 - 9.3) + 3.0 * (13.0 - 9.3));
}

TEST(StorageSystem, ValidatesMapping) {
  const auto cat = uniform_catalog(2, util::mb(10.0));
  EXPECT_THROW((StorageSystem{cat, std::vector<std::uint32_t>{0, 5}, 2,
                              disk::DiskParams::st3500630as(),
                              PolicySpec::never()}),
               std::invalid_argument);
}

TEST(StorageSystem, TraceRunAccountsEveryRequest) {
  const auto cat = uniform_catalog(4, util::mb(72.0));
  const workload::Trace trace{
      cat, {{0.0, 0}, {1.0, 1}, {2.0, 2}, {3.0, 3}, {100.0, 0}}};
  StorageSystem sys{cat, {0, 0, 1, 1}, 2, disk::DiskParams::st3500630as(),
                    PolicySpec::never()};
  workload::TraceStream stream{trace};
  const auto r = sys.run(stream, trace.duration() + 1.0);
  EXPECT_EQ(r.requests, 5u);
  EXPECT_EQ(r.response.count(), 5u);
  EXPECT_EQ(r.per_disk.size(), 2u);
  // The per-disk snapshot is taken at the measurement horizon (trace end
  // + 1 s); the final request is still in service there.
  EXPECT_EQ(r.per_disk[0].served + r.per_disk[1].served, 4u);
}

TEST(StorageSystem, NeverPolicyMatchesAlwaysOnEnergy) {
  // With spin-down disabled, measured energy must equal the closed-form
  // always-on normalizer (same integration window) — saving == 0.
  const auto cat = uniform_catalog(3, util::mb(144.0));
  const workload::Trace trace{cat, {{5.0, 0}, {17.0, 1}, {31.0, 2}}};
  StorageSystem sys{cat, {0, 1, 2}, 3, disk::DiskParams::st3500630as(),
                    PolicySpec::never()};
  workload::TraceStream stream{trace};
  const auto r = sys.run(stream, trace.duration() + 1.0);
  EXPECT_NEAR(r.power.energy, r.power.always_on_energy, 1e-6);
  EXPECT_NEAR(r.power.saving_vs_always_on, 0.0, 1e-9);
  EXPECT_EQ(r.power.spin_downs, 0u);
}

TEST(StorageSystem, AggressivePolicySavesEnergyOnSparseLoad) {
  const auto cat = uniform_catalog(3, util::mb(72.0));
  // One request per disk, then a long quiet tail.
  const workload::Trace trace{cat, {{0.0, 0}, {1.0, 1}, {2.0, 2}}};

  auto run_with = [&](PolicySpec policy) {
    StorageSystem sys{cat, {0, 1, 2}, 3, disk::DiskParams::st3500630as(),
                      policy};
    workload::TraceStream stream{trace};
    return sys.run(stream, 4000.0);
  };
  const auto never = run_with(PolicySpec::never());
  const auto fixed = run_with(PolicySpec::fixed(30.0));
  EXPECT_LT(fixed.power.energy, never.power.energy);
  EXPECT_GT(fixed.power.saving_vs_always_on, 0.5); // mostly standby
  EXPECT_EQ(fixed.power.spin_downs, 3u);
  // Power is measured over the same fixed window.
  EXPECT_DOUBLE_EQ(fixed.power.horizon_s, 4000.0);
  EXPECT_DOUBLE_EQ(never.power.horizon_s, 4000.0);
}

TEST(StorageSystem, SpinUpPenaltyVisibleInResponseTimes) {
  const auto cat = uniform_catalog(1, util::mb(72.0));
  const auto params = disk::DiskParams::st3500630as();
  // Second request arrives long after the disk has gone to standby.
  const workload::Trace trace{cat, {{0.0, 0}, {500.0, 0}}};
  StorageSystem sys{cat, {0}, 1, params, PolicySpec::fixed(20.0)};
  workload::TraceStream stream{trace};
  const auto r = sys.run(stream, trace.duration() + 1.0);
  EXPECT_EQ(r.power.spin_ups, 1u);
  EXPECT_NEAR(r.response.max(),
              params.spinup_s + params.service_time(util::mb(72.0)), 1e-9);
  EXPECT_NEAR(r.response.min(), params.service_time(util::mb(72.0)), 1e-9);
}

TEST(StorageSystem, DeterministicAcrossRuns) {
  const auto cat = uniform_catalog(20, util::mb(100.0));
  auto run_once = [&] {
    std::vector<std::uint32_t> mapping(20, 0);
    for (std::uint32_t i = 0; i < 20; ++i) mapping[i] = i % 4;
    StorageSystem sys{cat, mapping, 4, disk::DiskParams::st3500630as(),
                      PolicySpec::break_even(), nullptr, /*seed=*/7};
    workload::PoissonZipfStream stream{cat, 0.5, 500.0, util::Rng{7}};
    return sys.run(stream, 500.0);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.power.energy, b.power.energy);
  EXPECT_EQ(a.response.count(), b.response.count());
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
}

TEST(StorageSystem, RandomizedPolicySeedsDifferPerDisk) {
  // All disks idle from t=0 with no requests: randomized policy should give
  // them different spin-down times (they draw from split RNG streams).
  const auto cat = uniform_catalog(2, util::mb(10.0));
  const workload::Trace empty{cat, {}};
  StorageSystem sys{cat, {0, 1}, 8, disk::DiskParams::st3500630as(),
                    PolicySpec::randomized()};
  workload::TraceStream stream{empty};
  const auto r = sys.run(stream, 200.0);
  EXPECT_EQ(r.power.spin_downs, 8u);
  // Idle times differ across disks (probability of a tie ~ 0).
  std::set<double> idle_times;
  for (const auto& m : r.per_disk) {
    idle_times.insert(m.time_in(disk::PowerState::kIdle));
  }
  EXPECT_GT(idle_times.size(), 1u);
}

} // namespace
} // namespace spindown::sys
