#include "sys/system.h"

#include <gtest/gtest.h>

#include "util/units.h"
#include "workload/stream.h"

namespace spindown::sys {
namespace {

workload::FileCatalog uniform_catalog(std::size_t n, util::Bytes size) {
  std::vector<workload::FileInfo> files(n);
  for (std::size_t i = 0; i < n; ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = size;
    files[i].popularity = 1.0 / static_cast<double>(n);
  }
  return workload::FileCatalog{files};
}

TEST(PolicySpec, FactoryNames) {
  const auto p = disk::DiskParams::st3500630as();
  EXPECT_EQ(PolicySpec::never().name(p), "never");
  EXPECT_EQ(PolicySpec::fixed(10.0).name(p), "fixed(10 s)");
  EXPECT_EQ(PolicySpec::randomized().name(p), "randomized-competitive");
  EXPECT_NE(PolicySpec::break_even().name(p).find("53.2"), std::string::npos);
}

TEST(AlwaysOnEnergy, ClosedForm) {
  const auto p = disk::DiskParams::st3500630as();
  // 10 disks for 100 s, no service at all: pure idle.
  EXPECT_DOUBLE_EQ(always_on_energy(p, 10, 100.0, 0.0, 0.0),
                   10 * 100.0 * 9.3);
  // Service premium: position at seek power, transfer at active power.
  EXPECT_DOUBLE_EQ(always_on_energy(p, 1, 100.0, 2.0, 3.0),
                   100.0 * 9.3 + 2.0 * (12.6 - 9.3) + 3.0 * (13.0 - 9.3));
}

TEST(StorageSystem, ValidatesMapping) {
  const auto cat = uniform_catalog(2, util::mb(10.0));
  EXPECT_THROW((StorageSystem{cat, std::vector<std::uint32_t>{0, 5}, 2,
                              disk::DiskParams::st3500630as(),
                              PolicySpec::never()}),
               std::invalid_argument);
}

TEST(StorageSystem, TraceRunAccountsEveryRequest) {
  const auto cat = uniform_catalog(4, util::mb(72.0));
  const workload::Trace trace{
      cat, {{0.0, 0}, {1.0, 1}, {2.0, 2}, {3.0, 3}, {100.0, 0}}};
  StorageSystem sys{cat, {0, 0, 1, 1}, 2, disk::DiskParams::st3500630as(),
                    PolicySpec::never()};
  workload::TraceStream stream{trace};
  const auto r = sys.run(stream, trace.duration() + 1.0);
  EXPECT_EQ(r.requests, 5u);
  EXPECT_EQ(r.response.count(), 5u);
  EXPECT_EQ(r.per_disk.size(), 2u);
  // The per-disk snapshot is taken at the measurement horizon (trace end
  // + 1 s); the final request is still in service there.
  EXPECT_EQ(r.per_disk[0].served + r.per_disk[1].served, 4u);
}

TEST(StorageSystem, NeverPolicyMatchesAlwaysOnEnergy) {
  // With spin-down disabled, measured energy must equal the closed-form
  // always-on normalizer (same integration window) — saving == 0.
  const auto cat = uniform_catalog(3, util::mb(144.0));
  const workload::Trace trace{cat, {{5.0, 0}, {17.0, 1}, {31.0, 2}}};
  StorageSystem sys{cat, {0, 1, 2}, 3, disk::DiskParams::st3500630as(),
                    PolicySpec::never()};
  workload::TraceStream stream{trace};
  const auto r = sys.run(stream, trace.duration() + 1.0);
  EXPECT_NEAR(r.power.energy, r.power.always_on_energy, 1e-6);
  EXPECT_NEAR(r.power.saving_vs_always_on, 0.0, 1e-9);
  EXPECT_EQ(r.power.spin_downs, 0u);
}

TEST(StorageSystem, AggressivePolicySavesEnergyOnSparseLoad) {
  const auto cat = uniform_catalog(3, util::mb(72.0));
  // One request per disk, then a long quiet tail.
  const workload::Trace trace{cat, {{0.0, 0}, {1.0, 1}, {2.0, 2}}};

  auto run_with = [&](PolicySpec policy) {
    StorageSystem sys{cat, {0, 1, 2}, 3, disk::DiskParams::st3500630as(),
                      policy};
    workload::TraceStream stream{trace};
    return sys.run(stream, 4000.0);
  };
  const auto never = run_with(PolicySpec::never());
  const auto fixed = run_with(PolicySpec::fixed(30.0));
  EXPECT_LT(fixed.power.energy, never.power.energy);
  EXPECT_GT(fixed.power.saving_vs_always_on, 0.5); // mostly standby
  EXPECT_EQ(fixed.power.spin_downs, 3u);
  // Power is measured over the same fixed window.
  EXPECT_DOUBLE_EQ(fixed.power.horizon_s, 4000.0);
  EXPECT_DOUBLE_EQ(never.power.horizon_s, 4000.0);
}

TEST(StorageSystem, SpinUpPenaltyVisibleInResponseTimes) {
  const auto cat = uniform_catalog(1, util::mb(72.0));
  const auto params = disk::DiskParams::st3500630as();
  // Second request arrives long after the disk has gone to standby.
  const workload::Trace trace{cat, {{0.0, 0}, {500.0, 0}}};
  StorageSystem sys{cat, {0}, 1, params, PolicySpec::fixed(20.0)};
  workload::TraceStream stream{trace};
  const auto r = sys.run(stream, trace.duration() + 1.0);
  EXPECT_EQ(r.power.spin_ups, 1u);
  EXPECT_NEAR(r.response.max(),
              params.spinup_s + params.service_time(util::mb(72.0)), 1e-9);
  EXPECT_NEAR(r.response.min(), params.service_time(util::mb(72.0)), 1e-9);
}

TEST(StorageSystem, DeterministicAcrossRuns) {
  const auto cat = uniform_catalog(20, util::mb(100.0));
  auto run_once = [&] {
    std::vector<std::uint32_t> mapping(20, 0);
    for (std::uint32_t i = 0; i < 20; ++i) mapping[i] = i % 4;
    StorageSystem sys{cat, mapping, 4, disk::DiskParams::st3500630as(),
                      PolicySpec::break_even(), nullptr, /*seed=*/7};
    workload::PoissonZipfStream stream{cat, 0.5, 500.0, util::Rng{7}};
    return sys.run(stream, 500.0);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.power.energy, b.power.energy);
  EXPECT_EQ(a.response.count(), b.response.count());
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
}

TEST(StorageSystem, RandomizedPolicySeedsDifferPerDisk) {
  // All disks idle from t=0 with no requests: randomized policy should give
  // them different spin-down times (they draw from split RNG streams).
  const auto cat = uniform_catalog(2, util::mb(10.0));
  const workload::Trace empty{cat, {}};
  StorageSystem sys{cat, {0, 1}, 8, disk::DiskParams::st3500630as(),
                    PolicySpec::randomized()};
  workload::TraceStream stream{empty};
  const auto r = sys.run(stream, 200.0);
  EXPECT_EQ(r.power.spin_downs, 8u);
  // Idle times differ across disks (probability of a tie ~ 0).
  std::set<double> idle_times;
  for (const auto& m : r.per_disk) {
    idle_times.insert(m.time_in(disk::PowerState::kIdle));
  }
  EXPECT_GT(idle_times.size(), 1u);
}

TEST(SchedulerSpecTest, FactoryNamesAndParse) {
  EXPECT_EQ(SchedulerSpec::fcfs().name(), "fcfs");
  EXPECT_EQ(SchedulerSpec::sstf().name(), "sstf");
  EXPECT_EQ(SchedulerSpec::scan().name(), "scan");
  EXPECT_EQ(SchedulerSpec::clook().name(), "clook");
  EXPECT_EQ(SchedulerSpec::batch(8).name(), "batch8");
  EXPECT_EQ(SchedulerSpec::parse("sstf").name(), "sstf");
  EXPECT_EQ(SchedulerSpec::parse("fcfs").kind, SchedulerSpec::Kind::kFcfs);
  // name() round-trips through parse(), including the parameterized batch.
  EXPECT_EQ(SchedulerSpec::parse("batch8").max_batch, 8u);
  EXPECT_EQ(SchedulerSpec::parse(SchedulerSpec::batch(8).name()).name(),
            "batch8");
  EXPECT_THROW(SchedulerSpec::parse("elevator"), std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("batchx"), std::invalid_argument);
  EXPECT_THROW(SchedulerSpec::parse("batch0"), std::invalid_argument);
}

TEST(StorageSystem, SchedulerDisciplineDifferentiatesQueueBuildingLoad) {
  // 40 small files on one disk, all requested in one burst in shuffled
  // order: the queue is deep, FCFS jumps across the layout while the
  // geometry-aware disciplines sweep it — mean response and energy must
  // differ, and the batching scheduler must coalesce positioning phases.
  const auto cat = uniform_catalog(40, util::mb(8.0));
  std::vector<workload::TraceRecord> records;
  for (std::size_t i = 0; i < 40; ++i) {
    // Deterministic shuffle: stride 17 is coprime with 40.
    records.push_back({0.0, static_cast<workload::FileId>((i * 17) % 40)});
  }
  const workload::Trace trace{cat, std::move(records)};

  auto run_with = [&](const SchedulerSpec& spec) {
    StorageSystem sys{cat, std::vector<std::uint32_t>(40, 0), 1,
                      disk::DiskParams::st3500630as(), PolicySpec::never()};
    sys.set_scheduler(spec);
    workload::TraceStream stream{trace};
    return sys.run(stream, 600.0); // horizon covers the full drain
  };
  const auto fcfs = run_with(SchedulerSpec::fcfs());
  const auto sstf = run_with(SchedulerSpec::sstf());
  const auto scan = run_with(SchedulerSpec::scan());
  const auto batch = run_with(SchedulerSpec::batch());

  // The burst built a real queue: mean response far exceeds one service.
  const double svc =
      disk::DiskParams::st3500630as().service_time(util::mb(8.0));
  EXPECT_GT(fcfs.response.mean(), 5.0 * svc);

  // Geometry-aware sweeps position cheaper than the constant-cost FCFS.
  EXPECT_LT(sstf.response.mean(), fcfs.response.mean());
  EXPECT_LT(scan.response.mean(), fcfs.response.mean());
  EXPECT_LT(batch.response.mean(), fcfs.response.mean());
  EXPECT_LT(sstf.power.energy, fcfs.power.energy);
  EXPECT_LT(batch.power.energy, fcfs.power.energy);

  // Batching coalesced adjacent extents: fewer positioning phases than
  // requests; the one-at-a-time disciplines pay one per request.
  auto positionings = [](const RunResult& r) {
    std::uint64_t n = 0;
    for (const auto& m : r.per_disk) n += m.positionings;
    return n;
  };
  EXPECT_EQ(positionings(fcfs), 40u);
  EXPECT_EQ(positionings(sstf), 40u);
  EXPECT_LT(positionings(batch), 40u);

  // Every discipline serves every request exactly once.
  for (const auto* r : {&fcfs, &sstf, &scan, &batch}) {
    EXPECT_EQ(r->response.count(), 40u);
    EXPECT_EQ(r->completed_at_horizon, 40u);
    EXPECT_EQ(r->in_flight_at_horizon, 0u);
  }
}

TEST(StorageSystem, HorizonSnapshotCountsInFlightExactlyOnce) {
  // Two disks, 10 s transfers; at the 11 s horizon disk 0 has one request
  // served and one mid-transfer, disk 1 has one mid-transfer and one
  // queued.  The snapshot must place each of the five requests in exactly
  // one bucket, while the response summary still drains them all.
  const auto cat = uniform_catalog(4, util::mb(720.0));
  const workload::Trace trace{
      cat, {{0.0, 0}, {0.0, 1}, {2.0, 2}, {2.5, 3}}};
  StorageSystem sys{cat, {0, 0, 1, 1}, 2, disk::DiskParams::st3500630as(),
                    PolicySpec::never()};
  workload::TraceStream stream{trace};
  const auto r = sys.run(stream, 11.0);
  EXPECT_EQ(r.requests, 4u);
  EXPECT_EQ(r.completed_at_horizon, 1u);
  EXPECT_EQ(r.in_flight_at_horizon, 3u);
  EXPECT_EQ(r.completed_at_horizon + r.in_flight_at_horizon + r.cache.hits,
            r.requests);
  // Disk 0: served 1, transferring 1.  Disk 1: transferring 1, queued 1.
  EXPECT_EQ(r.per_disk[0].served, 1u);
  EXPECT_EQ(r.per_disk[0].in_service, 1u);
  EXPECT_EQ(r.per_disk[0].queued, 0u);
  EXPECT_EQ(r.per_disk[1].served, 0u);
  EXPECT_EQ(r.per_disk[1].in_service, 1u);
  EXPECT_EQ(r.per_disk[1].queued, 1u);
  // All requests still run to completion and record response times.
  EXPECT_EQ(r.response.count(), 4u);
}

} // namespace
} // namespace spindown::sys
