#include "sys/dispatcher.h"

#include <gtest/gtest.h>

#include "cache/lru.h"
#include "util/units.h"

namespace spindown::sys {
namespace {

class DispatcherFixture : public ::testing::Test {
protected:
  DispatcherFixture() {
    std::vector<workload::FileInfo> files{
        {0, util::mb(72.0), 0.5},
        {1, util::mb(144.0), 0.3},
        {2, util::mb(36.0), 0.2},
    };
    catalog_ = workload::FileCatalog{files};
    params_ = disk::DiskParams::st3500630as();
    for (std::uint32_t i = 0; i < 2; ++i) {
      disks_.push_back(std::make_unique<disk::Disk>(
          sim_, i, params_, disk::make_never_policy(), util::Rng{i}));
      disks_.back()->set_completion_callback(
          [this](const disk::Completion& c) { completions_.push_back(c); });
    }
  }

  std::vector<disk::Disk*> disk_ptrs() {
    std::vector<disk::Disk*> out;
    for (auto& d : disks_) out.push_back(d.get());
    return out;
  }

  workload::Request req(std::uint64_t id, workload::FileId f, double t) {
    workload::Request r;
    r.id = id;
    r.file = f;
    r.arrival = t;
    return r;
  }

  des::Simulation sim_;
  workload::FileCatalog catalog_;
  disk::DiskParams params_;
  std::vector<std::unique_ptr<disk::Disk>> disks_;
  std::vector<disk::Completion> completions_;
};

TEST_F(DispatcherFixture, RoutesByMappingTable) {
  Dispatcher d{sim_, catalog_, {0, 1, 0}, disk_ptrs()};
  sim_.schedule_at(0.0, [&] {
    d.dispatch(req(0, 0, 0.0)); // disk 0
    d.dispatch(req(1, 1, 0.0)); // disk 1
    d.dispatch(req(2, 2, 0.0)); // disk 0
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_EQ(d.dispatched(), 3u);
  EXPECT_EQ(d.disk_of(1), 1u);
  // Requests 0 and 2 serialized on disk 0; request 1 parallel on disk 1.
  int disk0 = 0, disk1 = 0;
  for (const auto& c : completions_) {
    (c.disk_id == 0 ? disk0 : disk1)++;
  }
  EXPECT_EQ(disk0, 2);
  EXPECT_EQ(disk1, 1);
}

TEST_F(DispatcherFixture, ValidatesMapping) {
  EXPECT_THROW((Dispatcher{sim_, catalog_, {0}, disk_ptrs()}),
               std::invalid_argument); // shorter than catalog
  EXPECT_THROW((Dispatcher{sim_, catalog_, {0, 1, 7}, disk_ptrs()}),
               std::invalid_argument); // unknown disk
}

TEST_F(DispatcherFixture, CacheHitsBypassDisks) {
  cache::LruCache cache{util::gb(1.0)};
  Dispatcher d{sim_, catalog_, {0, 1, 0}, disk_ptrs(), &cache};
  std::vector<std::pair<std::uint64_t, double>> hits;
  d.set_hit_callback([&](std::uint64_t id, double lat) {
    hits.emplace_back(id, lat);
  });
  sim_.schedule_at(0.0, [&] { d.dispatch(req(0, 0, 0.0)); }); // miss -> disk
  sim_.schedule_at(10.0, [&] { d.dispatch(req(1, 0, 10.0)); }); // hit
  sim_.run();
  EXPECT_EQ(completions_.size(), 1u);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 1u);
  EXPECT_DOUBLE_EQ(hits[0].second, 0.0);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(DispatcherFixture, CacheHitLatencyIsScheduled) {
  cache::LruCache cache{util::gb(1.0)};
  Dispatcher d{sim_, catalog_, {0, 1, 0}, disk_ptrs(), &cache, 0.25};
  double hit_time = -1.0;
  d.set_hit_callback([&](std::uint64_t, double) { hit_time = sim_.now(); });
  sim_.schedule_at(0.0, [&] { d.dispatch(req(0, 2, 0.0)); });
  sim_.schedule_at(5.0, [&] { d.dispatch(req(1, 2, 5.0)); });
  sim_.run();
  EXPECT_DOUBLE_EQ(hit_time, 5.25);
}

TEST_F(DispatcherFixture, ComputesCatalogLayoutExtents) {
  // Mapping {0, 1, 0}: files 0 and 2 share disk 0, packed in id order.
  Dispatcher d{sim_, catalog_, {0, 1, 0}, disk_ptrs()};
  EXPECT_EQ(d.extent_of(0).lba, 0u);
  EXPECT_EQ(d.extent_of(0).blocks, util::blocks_of(util::mb(72.0)));
  EXPECT_EQ(d.extent_of(1).lba, 0u); // its own disk's address space
  EXPECT_EQ(d.extent_of(2).lba, util::blocks_of(util::mb(72.0)));
  EXPECT_EQ(d.extent_of(2).blocks, util::blocks_of(util::mb(36.0)));
}

TEST_F(DispatcherFixture, StampsRequestsWithLayoutLba) {
  // With an SSTF disk the service order reveals the submitted LBAs: a
  // burst of (file 2, file 0) requests on disk 0 serves file 0 first
  // (extent at LBA 0, nearest the head) even though file 2 arrived first.
  disks_.clear();
  completions_.clear();
  disks_.push_back(std::make_unique<disk::Disk>(
      sim_, 0, params_, disk::make_never_policy(), util::Rng{0},
      disk::make_sstf_scheduler()));
  disks_.back()->set_completion_callback(
      [this](const disk::Completion& c) { completions_.push_back(c); });
  Dispatcher d{sim_, catalog_, {0, 0, 0}, disk_ptrs()};
  // Layout on disk 0 in id order: file 0 at [0, b0), file 1 at [b0, b0+b1),
  // file 2 at [b0+b1, ...).  Serving file 0 parks the head exactly at
  // file 1's extent, so the queued file-1 request beats the earlier-arrived
  // file-2 request — FCFS would serve 0, 1, 2.
  sim_.schedule_at(0.0, [&] {
    d.dispatch(req(0, 0, 0.0)); // in service immediately
    d.dispatch(req(1, 2, 0.0)); // far extent, arrived first
    d.dispatch(req(2, 1, 0.0)); // adjacent extent, arrived second
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_EQ(completions_[0].request_id, 0u);
  EXPECT_EQ(completions_[1].request_id, 2u);
  EXPECT_EQ(completions_[2].request_id, 1u);
}

TEST_F(DispatcherFixture, ExplicitRequestLbaOverridesLayout) {
  disks_.clear();
  completions_.clear();
  disks_.push_back(std::make_unique<disk::Disk>(
      sim_, 0, params_, disk::make_never_policy(), util::Rng{0},
      disk::make_sstf_scheduler()));
  disks_.back()->set_completion_callback(
      [this](const disk::Completion& c) { completions_.push_back(c); });
  Dispatcher d{sim_, catalog_, {0, 0, 0}, disk_ptrs()};
  // A trace-pinned lba reaches the disk: the single request's positioning
  // is billed for the pinned distance, not the layout extent's (file 0's
  // layout lba is 0 = the head's start, which would cost only the settle
  // floor).
  const std::uint64_t pinned = util::blocks_of(params_.capacity) / 2;
  sim_.schedule_at(0.0, [&] {
    auto r = req(0, 0, 0.0);
    r.lba = pinned;
    d.dispatch(r);
  });
  sim_.run();
  ASSERT_EQ(completions_.size(), 1u);
  const double dist = static_cast<double>(pinned) /
                      static_cast<double>(util::blocks_of(params_.capacity));
  EXPECT_NEAR(completions_[0].response_time(),
              params_.seek_time(dist) + params_.avg_rotation_s +
                  params_.transfer_time(util::mb(72.0)),
              1e-9);
}

TEST_F(DispatcherFixture, NoCacheMeansEveryRequestHitsDisks) {
  Dispatcher d{sim_, catalog_, {0, 0, 0}, disk_ptrs()};
  sim_.schedule_at(0.0, [&] {
    for (int i = 0; i < 5; ++i) d.dispatch(req(i, 0, 0.0));
  });
  sim_.run();
  EXPECT_EQ(completions_.size(), 5u);
}

} // namespace
} // namespace spindown::sys
