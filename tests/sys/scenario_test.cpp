#include "sys/scenario.h"

#include <gtest/gtest.h>

#include "core/normalize.h"
#include "core/pack_disks.h"
#include "core/pack_grouped.h"
#include "core/random_alloc.h"
#include "util/units.h"

namespace spindown::sys {
namespace {

TEST(CatalogSpec, Table1RoundTrips) {
  const auto c = CatalogSpec::table1(600, 7);
  EXPECT_EQ(c.spec(), "table1(600,7)");
  const auto parsed = CatalogSpec::parse(c.spec());
  EXPECT_EQ(parsed.kind, CatalogSpec::Kind::kSynthetic);
  EXPECT_EQ(parsed.synth.n_files, 600u);
  EXPECT_EQ(parsed.seed, 7u);
  EXPECT_EQ(parsed.spec(), c.spec());
}

TEST(CatalogSpec, SynthRoundTripsNonPaperShapes) {
  workload::SyntheticSpec s = workload::SyntheticSpec::paper_table1();
  s.n_files = 1000;
  s.zipf_exponent = 0.75;
  s.max_size = util::gb(4.0);
  s.correlation = workload::SizeCorrelation::kIndependent;
  const auto c = CatalogSpec::synthetic(s, 3);
  EXPECT_EQ(c.spec(), "synth(1000,0.75,4g,independent,3)");
  const auto parsed = CatalogSpec::parse(c.spec());
  EXPECT_EQ(parsed.synth.n_files, 1000u);
  EXPECT_DOUBLE_EQ(parsed.synth.zipf_exponent, 0.75);
  EXPECT_EQ(parsed.synth.max_size, util::gb(4.0));
  EXPECT_EQ(parsed.synth.correlation,
            workload::SizeCorrelation::kIndependent);
  EXPECT_EQ(parsed.spec(), c.spec());
}

TEST(CatalogSpec, NerscRoundTripsWithTrailingOptionals) {
  workload::NerscSpec n;
  n.n_files = 2000;
  n.n_requests = 3000;
  n.seed = 11;
  const auto minimal = CatalogSpec::nersc_synth(n);
  EXPECT_EQ(minimal.spec(), "nersc(2000,3000,11)");
  EXPECT_EQ(CatalogSpec::parse(minimal.spec()).spec(), minimal.spec());

  n.duration_s = 86400.0;
  n.batch_fraction = 0.3;
  n.batch_min = 6;
  const auto custom = CatalogSpec::nersc_synth(n);
  EXPECT_EQ(custom.spec(), "nersc(2000,3000,11,86400,0.3,6)");
  const auto parsed = CatalogSpec::parse(custom.spec());
  EXPECT_DOUBLE_EQ(parsed.nersc.duration_s, 86400.0);
  EXPECT_DOUBLE_EQ(parsed.nersc.batch_fraction, 0.3);
  EXPECT_EQ(parsed.nersc.batch_min, 6u);
  EXPECT_EQ(parsed.nersc.batch_max, workload::NerscSpec{}.batch_max);
  EXPECT_EQ(parsed.spec(), custom.spec());
}

TEST(CatalogSpec, ParseRejectsGarbage) {
  EXPECT_THROW(CatalogSpec::parse("table1(600)"), std::invalid_argument);
  EXPECT_THROW(CatalogSpec::parse("table1(x,1)"), std::invalid_argument);
  EXPECT_THROW(CatalogSpec::parse("synth(10,0,20g,weird,1)"),
               std::invalid_argument);
  EXPECT_THROW(CatalogSpec::parse("nersc(10)"), std::invalid_argument);
  EXPECT_THROW(CatalogSpec::parse("trace:"), std::invalid_argument);
  EXPECT_THROW(CatalogSpec::parse("magic"), std::invalid_argument);
}

TEST(PlacementSpec, RoundTripsEveryKind) {
  const std::vector<std::string> keys{"pack",  "grouped:4", "grouped:8",
                                      "random", "maid:4",   "sea:0.8",
                                      "seg:2",  "ffd"};
  for (const auto& key : keys) {
    SCOPED_TRACE(key);
    EXPECT_EQ(PlacementSpec::parse(key).spec(), key);
  }
  // Bare names take the documented defaults.
  EXPECT_EQ(PlacementSpec::parse("grouped").group_size, 4u);
  EXPECT_EQ(PlacementSpec::parse("maid").cache_disks, 4u);
  EXPECT_DOUBLE_EQ(PlacementSpec::parse("sea").hot_load_share, 0.8);
}

TEST(PlacementSpec, ParseRejectsGarbage) {
  EXPECT_THROW(PlacementSpec::parse("stack"), std::invalid_argument);
  EXPECT_THROW(PlacementSpec::parse("grouped:0"), std::invalid_argument);
  EXPECT_THROW(PlacementSpec::parse("grouped:x"), std::invalid_argument);
  EXPECT_THROW(PlacementSpec::parse("sea:0"), std::invalid_argument);
  EXPECT_THROW(PlacementSpec::parse("sea:1.5"), std::invalid_argument);
  // Argument-less kinds reject stray arguments ("pack:4" is almost
  // certainly a mistyped "grouped:4", not plain pack).
  EXPECT_THROW(PlacementSpec::parse("pack:4"), std::invalid_argument);
  EXPECT_THROW(PlacementSpec::parse("random:7"), std::invalid_argument);
  EXPECT_THROW(PlacementSpec::parse("ffd:3"), std::invalid_argument);
}

TEST(ScenarioSpec, DefaultsRoundTrip) {
  const ScenarioSpec s;
  const auto parsed = ScenarioSpec::parse(s.spec());
  EXPECT_EQ(parsed, s);
  EXPECT_EQ(parsed.spec(), s.spec());
}

TEST(ScenarioSpec, FullStringParsesAndCanonicalizes) {
  const auto s = ScenarioSpec::parse(
      "catalog=table1(600,7) placement=grouped:4 load=0.9 disks=40 "
      "policy=fixed:10 sched=batch8 cache=lru:30g "
      "workload=poisson(1.2,800) seed=42 label=golden");
  EXPECT_EQ(s.catalog.synth.n_files, 600u);
  EXPECT_EQ(s.placement.kind, PlacementSpec::Kind::kGrouped);
  EXPECT_DOUBLE_EQ(s.load_fraction, 0.9);
  EXPECT_EQ(s.disks, 40u);
  EXPECT_EQ(s.policy.kind, PolicySpec::Kind::kFixed);
  EXPECT_EQ(s.scheduler.kind, SchedulerSpec::Kind::kBatch);
  EXPECT_EQ(s.scheduler.max_batch, 8u);
  EXPECT_EQ(s.cache.kind, CacheSpec::Kind::kLru);
  EXPECT_EQ(s.cache.capacity, util::gb(30.0));
  EXPECT_EQ(s.workload.kind, WorkloadSpec::Kind::kPoisson);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_EQ(s.label, "golden");
  // Canonical emission is order-normalized and fully explicit.
  EXPECT_EQ(s.spec(),
            "label=golden catalog=table1(600,7) placement=grouped:4 "
            "load=0.9 disks=40 policy=fixed:10 sched=batch8 cache=lru:30g "
            "workload=poisson(1.2,800) seed=42");
  EXPECT_EQ(ScenarioSpec::parse(s.spec()), s);
}

TEST(ScenarioSpec, ParseRejectsBadInput) {
  EXPECT_THROW(ScenarioSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("catalog"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("warp=9"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("load=0"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("load=1.5"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("disks=many"), std::invalid_argument);
  // Overflowing counts stay inside the documented std::invalid_argument
  // contract instead of leaking std::out_of_range from std::stoull.
  EXPECT_THROW(ScenarioSpec::parse("seed=99999999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("sched=batch99999999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("catalog=table1(600,-1)"),
               std::invalid_argument);
}

TEST(ScenarioSpec, ShardsKeyRoundTrips) {
  // Default (1) is omitted from the canonical string; "auto" renders the
  // stored 0; explicit counts round-trip.  Out-of-range counts are grammar
  // errors, not silent clamps.
  const ScenarioSpec base;
  EXPECT_EQ(base.shards, 1u);
  EXPECT_EQ(base.spec().find("shards"), std::string::npos);
  const auto autos = base.with("shards", "auto");
  EXPECT_EQ(autos.shards, 0u);
  EXPECT_NE(autos.spec().find("shards=auto"), std::string::npos);
  EXPECT_EQ(ScenarioSpec::parse(autos.spec()), autos);
  const auto eight = base.with("shards", "8");
  EXPECT_EQ(eight.shards, 8u);
  EXPECT_EQ(ScenarioSpec::parse(eight.spec()), eight);
  EXPECT_EQ(eight.with("shards", "1").spec(), base.spec());
  EXPECT_THROW(ScenarioSpec::parse("shards=0"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("shards=257"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("shards=many"), std::invalid_argument);
}

TEST(ScenarioSpec, WithReassignsOneKey) {
  const ScenarioSpec base;
  const auto swept = base.with("policy", "fixed:60");
  EXPECT_EQ(swept.policy.kind, PolicySpec::Kind::kFixed);
  EXPECT_DOUBLE_EQ(swept.policy.fixed_threshold_s, 60.0);
  EXPECT_EQ(base.policy.kind, PolicySpec::Kind::kBreakEven); // base untouched
  EXPECT_THROW(base.with("nope", "1"), std::invalid_argument);
}

// --- resolution -----------------------------------------------------------

ScenarioSpec small_packed_scenario() {
  ScenarioSpec s;
  s.catalog = CatalogSpec::table1(300, 5);
  s.placement = PlacementSpec::pack();
  s.load_fraction = 0.8;
  s.workload = WorkloadSpec::poisson(1.5, 400.0);
  s.seed = 9;
  return s;
}

TEST(ScenarioResolve, PackMatchesHandBuiltConfig) {
  const auto s = small_packed_scenario();
  const auto resolved = resolve_scenario(s);

  // Hand-built equivalent, the way the benches did it before ScenarioSpec.
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = 300;
  util::Rng rng{5};
  const auto cat = workload::generate_catalog(spec, rng);
  core::LoadModel model;
  model.rate = 1.5;
  model.load_fraction = 0.8;
  core::PackDisks pack;
  const auto a = pack.allocate(core::normalize(cat, model));

  EXPECT_EQ(resolved.config.mapping, a.disk_of);
  EXPECT_EQ(resolved.config.num_disks, a.disk_count);
  EXPECT_EQ(resolved.catalog->size(), cat.size());
  EXPECT_EQ(resolved.config.catalog, resolved.catalog.get());
  EXPECT_EQ(resolved.trace, nullptr);
}

TEST(ScenarioResolve, DisksFloorGrowsTheFarm) {
  auto s = small_packed_scenario();
  const auto tight = resolve_scenario(s);
  s.disks = tight.config.num_disks + 20;
  const auto grown = resolve_scenario(s);
  EXPECT_EQ(grown.config.num_disks, tight.config.num_disks + 20);
  EXPECT_EQ(grown.config.mapping, tight.config.mapping);
}

TEST(ScenarioResolve, RandomWithPinnedFarmMatchesRandomAllocator) {
  auto s = small_packed_scenario();
  s.placement = PlacementSpec::random();
  s.disks = 25;
  const auto resolved = resolve_scenario(s);

  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = 300;
  util::Rng rng{5};
  const auto cat = workload::generate_catalog(spec, rng);
  core::LoadModel model;
  model.rate = 1.5;
  model.load_fraction = 1.0; // random normalizes leniently
  core::RandomAllocator rnd{25, 9};
  const auto a = rnd.allocate(core::normalize(cat, model));
  EXPECT_EQ(resolved.config.mapping, a.disk_of);
  EXPECT_EQ(resolved.config.num_disks, 25u);
}

TEST(ScenarioResolve, RandomWithoutFarmUsesPackDisksCount) {
  auto s = small_packed_scenario();
  const auto packed = resolve_scenario(s);
  s.placement = PlacementSpec::random();
  s.disks = 0;
  const auto resolved = resolve_scenario(s);
  EXPECT_EQ(resolved.config.num_disks, packed.config.num_disks);
}

TEST(ScenarioResolve, NerscCatalogCarriesReplayableTrace) {
  ScenarioSpec s;
  workload::NerscSpec n;
  n.n_files = 400;
  n.n_requests = 700;
  n.duration_s = 4.0 * util::kDay;
  n.seed = 2;
  s.catalog = CatalogSpec::nersc_synth(n);
  s.workload = WorkloadSpec::replay_catalog();
  const auto resolved = resolve_scenario(s);
  ASSERT_NE(resolved.trace, nullptr);
  EXPECT_EQ(resolved.trace->size(), 700u);
  EXPECT_EQ(resolved.config.workload.kind, WorkloadSpec::Kind::kTrace);
  EXPECT_EQ(resolved.config.workload.trace, resolved.trace.get());
  EXPECT_EQ(resolved.config.catalog, &resolved.trace->catalog());
}

TEST(ScenarioResolve, ReplayWithoutTraceCatalogThrows) {
  auto s = small_packed_scenario();
  s.workload = WorkloadSpec::replay_catalog();
  EXPECT_THROW(resolve_scenario(s), std::invalid_argument);
}

TEST(ScenarioResolve, MaidNeedsAnExplicitFarmAndPinsCacheDisks) {
  auto s = small_packed_scenario();
  s.placement = PlacementSpec::maid(2);
  EXPECT_THROW(resolve_scenario(s), std::invalid_argument); // disks = 0
  s.disks = 12;
  const auto resolved = resolve_scenario(s);
  ASSERT_EQ(resolved.config.policy_overrides.size(), 2u);
  EXPECT_EQ(resolved.config.policy_overrides[0].first, 0u);
  EXPECT_EQ(resolved.config.policy_overrides[0].second.kind,
            PolicySpec::Kind::kNever);
}

TEST(ScenarioResolve, InjectedRawTraceIsRejected) {
  // A replay() of an in-memory trace has no name; resolution must refuse
  // rather than silently replaying against an unrelated catalog.
  std::vector<workload::FileInfo> files(2);
  files[0] = {0, util::mb(10.0), 0.5};
  files[1] = {1, util::mb(10.0), 0.5};
  const workload::Trace trace{workload::FileCatalog{files}, {{1.0, 0}}};
  auto s = small_packed_scenario();
  s.workload = WorkloadSpec::replay(trace);
  EXPECT_THROW(resolve_scenario(s), std::invalid_argument);
}

TEST(ScenarioCacheTest, MemoizesCatalogAndMappingAcrossASweep) {
  ScenarioCache cache;
  const auto base = small_packed_scenario();
  const auto a = cache.resolve(base);
  const auto b = cache.resolve(base.with("policy", "fixed:60"));
  const auto c = cache.resolve(base.with("seed", "77"));
  // One catalog object serves the whole grid...
  EXPECT_EQ(a.catalog.get(), b.catalog.get());
  EXPECT_EQ(a.catalog.get(), c.catalog.get());
  // ...and the mapping is identical (seed does not re-pack a deterministic
  // allocator).
  EXPECT_EQ(a.config.mapping, b.config.mapping);
  EXPECT_EQ(a.config.mapping, c.config.mapping);
  // A different load really does re-pack (a laxer constraint packs at
  // least as tight).
  const auto d = cache.resolve(base.with("load", "0.95"));
  EXPECT_LE(d.config.num_disks, a.config.num_disks);
}

TEST(ScenarioCacheTest, ProgrammaticParamsOverridesDoNotShareMappings) {
  // `params` is outside the string grammar but inside the memo key: halving
  // the disk capacity must not reuse the full-capacity packing.
  ScenarioCache cache;
  const auto base = small_packed_scenario();
  auto half = base;
  half.params.capacity /= 2;
  const auto full_cap = cache.resolve(base);
  const auto half_cap = cache.resolve(half);
  EXPECT_GT(half_cap.config.num_disks, full_cap.config.num_disks);
  EXPECT_NE(half_cap.config.mapping, full_cap.config.mapping);
}

TEST(ScenarioCacheTest, NonGrammarNerscFieldsDoNotShareCatalogs) {
  // Programmatic NerscSpec overrides the grammar cannot name (e.g. the
  // diurnal flag) must produce distinct traces, not a stale cache hit.
  workload::NerscSpec n;
  n.n_files = 300;
  n.n_requests = 500;
  n.duration_s = 2.0 * util::kDay;
  ScenarioSpec s;
  s.catalog = CatalogSpec::nersc_synth(n);
  s.workload = WorkloadSpec::replay_catalog();
  auto flat = s;
  flat.catalog.nersc.diurnal = false;
  ScenarioCache cache;
  const auto a = cache.resolve(s);
  const auto b = cache.resolve(flat);
  EXPECT_NE(a.trace.get(), b.trace.get());
}

TEST(ScenarioRun, SweepMatchesIndividualRuns) {
  const auto base = small_packed_scenario();
  const std::vector<ScenarioSpec> specs{
      base, base.with("policy", "fixed:10"), base.with("cache", "lru:5g")};
  const auto swept = run_scenarios(specs, 2);
  ASSERT_EQ(swept.size(), 3u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    const auto solo = run_scenario(specs[i]);
    EXPECT_EQ(swept[i].requests, solo.requests);
    EXPECT_DOUBLE_EQ(swept[i].power.energy, solo.power.energy);
    EXPECT_DOUBLE_EQ(swept[i].response.mean(), solo.response.mean());
  }
}

TEST(ScenarioJson, EmitsOneParseableObject) {
  const auto result = run_scenario(small_packed_scenario());
  const auto json = to_json(small_packed_scenario(), result);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"scenario\": \"catalog=table1(300,5)"),
            std::string::npos);
  EXPECT_NE(json.find("\"energy_j\": "), std::string::npos);
  EXPECT_NE(json.find("\"resp_p99_s\": "), std::string::npos);
  // The one nested object is the idle-period histogram summary; braces
  // balance — a cheap well-formedness check.
  const auto nested = json.find('{', 1);
  ASSERT_NE(nested, std::string::npos);
  EXPECT_LT(json.find("\"idle_periods\": ", 1), nested);
  EXPECT_NE(json.find("\"p99_s\": ", nested), std::string::npos);
  std::size_t depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0u);
}

} // namespace
} // namespace spindown::sys
