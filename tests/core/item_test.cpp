#include "core/item.h"

#include <gtest/gtest.h>

namespace spindown::core {
namespace {

TEST(Item, IntensityClassification) {
  EXPECT_TRUE((Item{0.5, 0.3, 0}).size_intensive());
  EXPECT_TRUE((Item{0.5, 0.5, 0}).size_intensive()); // ties are ST per §3.1
  EXPECT_FALSE((Item{0.3, 0.5, 0}).size_intensive());
}

TEST(Item, HeapKeys) {
  const Item it{0.7, 0.2, 0};
  EXPECT_DOUBLE_EQ(it.s_key(), 0.5);
  EXPECT_DOUBLE_EQ(it.l_key(), -0.5);
}

TEST(Rho, MaxCoordinate) {
  const std::vector<Item> items{{0.1, 0.6, 0}, {0.4, 0.2, 1}};
  EXPECT_DOUBLE_EQ(rho(items), 0.6);
  EXPECT_DOUBLE_EQ(rho(std::vector<Item>{}), 0.0);
}

TEST(Sums, Totals) {
  const std::vector<Item> items{{0.1, 0.6, 0}, {0.4, 0.2, 1}};
  const auto t = sums(items);
  EXPECT_DOUBLE_EQ(t.total_s, 0.5);
  EXPECT_DOUBLE_EQ(t.total_l, 0.8);
}

TEST(DiskTotals, PerDiskAccumulation) {
  const std::vector<Item> items{{0.1, 0.2, 0}, {0.3, 0.4, 1}, {0.2, 0.1, 2}};
  Assignment a;
  a.disk_of = {0, 1, 0};
  a.disk_count = 2;
  const auto totals = disk_totals(a, items);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_DOUBLE_EQ(totals[0].s, 0.3);
  EXPECT_DOUBLE_EQ(totals[0].l, 0.3);
  EXPECT_EQ(totals[0].items, 2u);
  EXPECT_DOUBLE_EQ(totals[1].s, 0.3);
  EXPECT_EQ(totals[1].items, 1u);
}

TEST(ValidateInstance, AcceptsUnitSquare) {
  const std::vector<Item> ok{{0.0, 0.0, 0}, {1.0, 1.0, 1}, {0.5, 0.2, 2}};
  EXPECT_NO_THROW(validate_instance(ok));
}

TEST(ValidateInstance, RejectsOutOfRange) {
  EXPECT_THROW(validate_instance(std::vector<Item>{{1.5, 0.1, 0}}),
               std::invalid_argument);
  EXPECT_THROW(validate_instance(std::vector<Item>{{0.1, -0.1, 0}}),
               std::invalid_argument);
  EXPECT_THROW(validate_instance(std::vector<Item>{
                   {std::numeric_limits<double>::quiet_NaN(), 0.1, 0}}),
               std::invalid_argument);
}

TEST(IsFeasible, DetectsOverflowAndBadIndices) {
  const std::vector<Item> items{{0.6, 0.1, 0}, {0.6, 0.1, 1}};
  Assignment together;
  together.disk_of = {0, 0};
  together.disk_count = 1;
  EXPECT_FALSE(is_feasible(together, items)); // 1.2 > 1 in s
  Assignment split;
  split.disk_of = {0, 1};
  split.disk_count = 2;
  EXPECT_TRUE(is_feasible(split, items));
  Assignment dangling;
  dangling.disk_of = {0, 5};
  dangling.disk_count = 2;
  EXPECT_FALSE(is_feasible(dangling, items));
}

} // namespace
} // namespace spindown::core
