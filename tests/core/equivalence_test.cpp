// equivalence_test.cpp — the O(n log n) Pack_Disks must make *identical*
// packing decisions to the O(n^2) Chang–Hwang–Park reference (§3.1: the
// improvement is purely a data-structure change), and Pack_Disks_v with
// v = 1 must reduce to Pack_Disks.
#include <gtest/gtest.h>

#include "core/chang_reference.h"
#include "core/pack_disks.h"
#include "core/pack_grouped.h"
#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;
using testing::skewed_instance;

struct EquivCase {
  std::size_t n;
  double max_coord;
  std::uint64_t seed;
  bool skewed;
};

class PackingEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(PackingEquivalence, FastMatchesReference) {
  const auto& c = GetParam();
  const auto items = c.skewed ? skewed_instance(c.n, c.max_coord, c.seed)
                              : random_instance(c.n, c.max_coord, c.seed);
  PackDisks fast;
  ChangHwangPark reference;
  const auto a = fast.allocate(items);
  const auto b = reference.allocate(items);
  ASSERT_EQ(a.disk_count, b.disk_count);
  EXPECT_EQ(a.disk_of, b.disk_of);
}

TEST_P(PackingEquivalence, GroupOfOneMatchesPackDisks) {
  const auto& c = GetParam();
  const auto items = c.skewed ? skewed_instance(c.n, c.max_coord, c.seed)
                              : random_instance(c.n, c.max_coord, c.seed);
  PackDisks plain;
  PackDisksGrouped grouped{1};
  const auto a = plain.allocate(items);
  const auto b = grouped.allocate(items);
  ASSERT_EQ(a.disk_count, b.disk_count);
  EXPECT_EQ(a.disk_of, b.disk_of);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, PackingEquivalence,
    ::testing::Values(EquivCase{1, 0.5, 1, false},
                      EquivCase{2, 0.5, 2, false},
                      EquivCase{10, 0.4, 3, false},
                      EquivCase{100, 0.3, 4, false},
                      EquivCase{100, 0.05, 5, false},
                      EquivCase{500, 0.1, 6, false},
                      EquivCase{1000, 0.02, 7, false},
                      EquivCase{250, 0.7, 8, false},
                      EquivCase{500, 0.2, 9, true},
                      EquivCase{1000, 0.08, 10, true},
                      EquivCase{333, 0.33, 11, true},
                      EquivCase{2000, 0.01, 12, true}));

TEST(PackingEquivalence, TieHeavyInstance) {
  // Many identical items: tie-breaking by index must keep both
  // implementations in lockstep.
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 200; ++i) items.push_back({0.21, 0.21, i});
  for (std::uint32_t i = 200; i < 400; ++i) items.push_back({0.1, 0.3, i});
  PackDisks fast;
  ChangHwangPark reference;
  const auto a = fast.allocate(items);
  const auto b = reference.allocate(items);
  EXPECT_EQ(a.disk_of, b.disk_of);
}

} // namespace
} // namespace spindown::core
