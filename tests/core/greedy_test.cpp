#include "core/greedy.h"

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;

TEST(FirstFit, PacksInOrder) {
  FirstFit ff;
  const std::vector<Item> items{{0.6, 0.1, 0}, {0.5, 0.1, 1}, {0.4, 0.1, 2}};
  const auto a = ff.allocate(items);
  // 0.6 -> disk 0; 0.5 doesn't fit disk 0 -> disk 1; 0.4 fits disk 0.
  EXPECT_EQ(a.disk_of[0], 0u);
  EXPECT_EQ(a.disk_of[1], 1u);
  EXPECT_EQ(a.disk_of[2], 0u);
  EXPECT_EQ(a.disk_count, 2u);
}

TEST(FirstFit, RespectsBothDimensions) {
  FirstFit ff;
  // Fits by size but not by load.
  const std::vector<Item> items{{0.2, 0.9, 0}, {0.2, 0.9, 1}};
  const auto a = ff.allocate(items);
  EXPECT_EQ(a.disk_count, 2u);
  EXPECT_TRUE(is_feasible(a, items));
}

TEST(BestFit, PrefersTighterDisk) {
  BestFit bf;
  // After the first two items, disk 0 has slack (0.3, 0.9), disk 1 has
  // slack (0.5, 0.9).  The third item (0.3, 0.1) fits both; best-fit picks
  // disk 0 (smaller remaining slack).
  const std::vector<Item> items{
      {0.7, 0.1, 0}, {0.5, 0.1, 1}, {0.3, 0.1, 2}};
  const auto a = bf.allocate(items);
  EXPECT_EQ(a.disk_of[0], 0u);
  EXPECT_EQ(a.disk_of[1], 1u);
  EXPECT_EQ(a.disk_of[2], 0u);
}

TEST(FirstFitDecreasing, SortsByMaxCoordinate) {
  FirstFitDecreasing ffd;
  // In input order, FF would open three disks; FFD pairs big with small.
  const std::vector<Item> items{
      {0.3, 0.0, 0}, {0.7, 0.0, 1}, {0.3, 0.0, 2}, {0.6, 0.0, 3}};
  const auto a = ffd.allocate(items);
  EXPECT_EQ(a.disk_count, 2u);
  EXPECT_TRUE(is_feasible(a, items));
}

class GreedyFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyFeasibility, AllHeuristicsFeasible) {
  const auto items = random_instance(1200, 0.15, GetParam());
  for (auto* alloc : std::initializer_list<Allocator*>{
           new FirstFit{}, new BestFit{}, new FirstFitDecreasing{}}) {
    std::unique_ptr<Allocator> owned{alloc};
    const auto a = owned->allocate(items);
    EXPECT_TRUE(is_feasible(a, items)) << owned->name();
    EXPECT_GE(a.disk_count, bound_report(items).lower_bound) << owned->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyFeasibility,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(GreedyNames, AreDistinct) {
  EXPECT_EQ(FirstFit{}.name(), "first_fit");
  EXPECT_EQ(BestFit{}.name(), "best_fit");
  EXPECT_EQ(FirstFitDecreasing{}.name(), "first_fit_decreasing");
}

} // namespace
} // namespace spindown::core
