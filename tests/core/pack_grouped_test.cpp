#include "core/pack_grouped.h"

#include <gtest/gtest.h>

#include <set>

#include "core/bounds.h"
#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;

TEST(PackDisksGrouped, RejectsZeroGroup) {
  EXPECT_THROW(PackDisksGrouped{0}, std::invalid_argument);
}

TEST(PackDisksGrouped, NameIncludesGroupSize) {
  EXPECT_EQ(PackDisksGrouped{4}.group_size(), 4u);
  EXPECT_EQ(PackDisksGrouped{4}.name(), "pack_disks_4");
}

TEST(PackDisksGrouped, EmptyAndSingleton) {
  PackDisksGrouped g{4};
  EXPECT_EQ(g.allocate(std::vector<Item>{}).disk_count, 0u);
  const std::vector<Item> one{{0.4, 0.3, 0}};
  const auto a = g.allocate(one);
  EXPECT_EQ(a.disk_count, 1u);
  EXPECT_TRUE(is_feasible(a, one));
}

class GroupSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupSizeSweep, FeasibleForAllGroupSizes) {
  const auto items = random_instance(1500, 0.08, 21);
  PackDisksGrouped g{GetParam()};
  const auto a = g.allocate(items);
  EXPECT_TRUE(is_feasible(a, items));
  // Still within the same order of disks as the lower bound (the group
  // variant trades a little packing tightness for batch dispersion; allow
  // a factor that the paper's v <= 8 stays well inside).
  const auto report = bound_report(items);
  EXPECT_LE(a.disk_count, 2 * report.lower_bound + GetParam() + 1);
}

INSTANTIATE_TEST_SUITE_P(V, GroupSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 16));

TEST(PackDisksGrouped, SpreadsConsecutiveSimilarItems) {
  // The design goal (§3.2): a run of same-size items must land on several
  // disks, not one.  Build a batch of identical items small enough that
  // Pack_Disks would put them all on one disk.
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 16; ++i) items.push_back({0.05, 0.05, i});
  PackDisksGrouped g4{4};
  const auto a = g4.allocate(items);
  // The first four consecutive items must be on four different disks.
  std::set<std::uint32_t> first_four{a.disk_of[0], a.disk_of[1],
                                     a.disk_of[2], a.disk_of[3]};
  EXPECT_EQ(first_four.size(), 4u);
}

TEST(PackDisksGrouped, V1DoesNotSpread) {
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 16; ++i) items.push_back({0.05, 0.05, i});
  PackDisksGrouped g1{1};
  const auto a = g1.allocate(items);
  std::set<std::uint32_t> first_four{a.disk_of[0], a.disk_of[1],
                                     a.disk_of[2], a.disk_of[3]};
  EXPECT_EQ(first_four.size(), 1u);
}

TEST(PackDisksGrouped, GroupLargerThanItems) {
  std::vector<Item> items{{0.2, 0.1, 0}, {0.1, 0.2, 1}};
  PackDisksGrouped g8{8};
  const auto a = g8.allocate(items);
  EXPECT_TRUE(is_feasible(a, items));
  EXPECT_LE(a.disk_count, 2u);
}

TEST(PackDisksGrouped, DeterministicAcrossCalls) {
  const auto items = random_instance(800, 0.1, 33);
  PackDisksGrouped g{4};
  const auto a = g.allocate(items);
  const auto b = g.allocate(items);
  EXPECT_EQ(a.disk_of, b.disk_of);
}

TEST(PackDisksGrouped, AllItemsAssignedExactlyOnce) {
  const auto items = random_instance(3000, 0.05, 55);
  PackDisksGrouped g{6};
  const auto a = g.allocate(items);
  ASSERT_EQ(a.disk_of.size(), items.size());
  for (const auto& it : items) {
    EXPECT_LT(a.disk_of[it.index], a.disk_count);
  }
}

} // namespace
} // namespace spindown::core
