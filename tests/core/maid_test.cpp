#include "core/maid.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace spindown::core {
namespace {

workload::FileCatalog skewed(std::size_t n, util::Bytes size) {
  std::vector<workload::FileInfo> files(n);
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) norm += 1.0 / static_cast<double>(i + 1);
  for (std::size_t i = 0; i < n; ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = size;
    files[i].popularity = 1.0 / static_cast<double>(i + 1) / norm;
  }
  return workload::FileCatalog{files};
}

TEST(BuildMaid, RejectsZeroDataDisks) {
  const auto cat = skewed(10, util::gb(1.0));
  EXPECT_THROW(build_maid(cat, 1, 0, util::gb(500.0)), std::invalid_argument);
}

TEST(BuildMaid, ThrowsWhenDataDoesNotFit) {
  const auto cat = skewed(10, util::gb(100.0)); // 1 TB total
  EXPECT_THROW(build_maid(cat, 0, 1, util::gb(500.0)), std::invalid_argument);
}

TEST(BuildMaid, HottestFilesLandOnCacheDisks) {
  const auto cat = skewed(100, util::gb(10.0)); // 1 TB total
  const auto m = build_maid(cat, 2, 4, util::gb(500.0));
  EXPECT_EQ(m.total_disks, 6u);
  EXPECT_EQ(m.cache_disks, 2u);
  // Cache capacity = 2 * 500 GB = 100 files' worth; everything fits, but the
  // hottest files must be cached first and served from disks [0, 2).
  ASSERT_FALSE(m.cached_files.empty());
  EXPECT_EQ(m.cached_files.front(), 0u); // hottest file cached first
  EXPECT_LT(m.mapping[0], 2u);
  // Cached popularity is the head of the Zipf curve: substantial.
  EXPECT_GT(m.cached_popularity, 0.5);
}

TEST(BuildMaid, UncachedFilesKeepDataDiskHomes) {
  const auto cat = skewed(200, util::gb(10.0)); // 2 TB
  const auto m = build_maid(cat, 1, 4, util::gb(500.0));
  // One 500 GB cache disk holds 50 files; the rest live on data disks.
  std::size_t on_cache = 0, on_data = 0;
  for (const auto d : m.mapping) {
    if (d < m.cache_disks) {
      ++on_cache;
    } else {
      ++on_data;
      EXPECT_LT(d, m.total_disks);
    }
  }
  EXPECT_EQ(on_cache, m.cached_files.size());
  EXPECT_EQ(on_cache + on_data, cat.size());
  EXPECT_EQ(on_cache, 50u);
}

TEST(BuildMaid, CacheDisksRespectCapacity) {
  // 30 files x 9 GB = 270 GB of data on 4 x 100 GB data disks; the two
  // 100 GB cache disks can only take ~11 files each.
  const auto cat = skewed(30, util::gb(9.0));
  const auto m = build_maid(cat, 2, 4, util::gb(100.0));
  std::vector<util::Bytes> used(m.total_disks, 0);
  for (const auto& f : cat.files()) {
    if (m.mapping[f.id] < m.cache_disks) used[m.mapping[f.id]] += f.size;
  }
  for (std::uint32_t d = 0; d < m.cache_disks; ++d) {
    EXPECT_LE(used[d], util::gb(100.0));
  }
}

TEST(BuildMaid, NoCacheDisksMeansPureDataPlacement) {
  const auto cat = skewed(50, util::gb(10.0));
  const auto m = build_maid(cat, 0, 2, util::gb(500.0));
  EXPECT_TRUE(m.cached_files.empty());
  EXPECT_DOUBLE_EQ(m.cached_popularity, 0.0);
  for (const auto d : m.mapping) {
    EXPECT_GE(d, 0u);
    EXPECT_LT(d, 2u);
  }
}

TEST(BuildMaid, DataPlacementRespectsCapacity) {
  const auto cat = skewed(150, util::gb(9.0)); // 1.35 TB on 3 disks: tight
  const auto m = build_maid(cat, 0, 3, util::gb(500.0));
  std::vector<util::Bytes> used(3, 0);
  for (const auto& f : cat.files()) used[m.mapping[f.id]] += f.size;
  for (const auto u : used) EXPECT_LE(u, util::gb(500.0));
}

} // namespace
} // namespace spindown::core
