#include "core/write_policy.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace spindown::core {
namespace {

TEST(WritePlacer, RejectsZeroDisks) {
  EXPECT_THROW((WritePlacer{0, util::gb(1.0), FitRule::kFirstFit}),
               std::invalid_argument);
}

TEST(WritePlacer, PrefersSpinningDiskEvenIfLaterDiskIsEmptier) {
  WritePlacer p{3, 100, FitRule::kFirstFit};
  p.add_used(0, 90);
  // Disk 0 nearly full but spinning; disks 1, 2 empty but in standby.
  const std::vector<bool> spinning{true, false, false};
  const auto d = p.place(10, spinning);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 0u);
}

TEST(WritePlacer, FallsBackToStandbyDiskWhenSpinningFull) {
  WritePlacer p{3, 100, FitRule::kFirstFit};
  p.add_used(0, 95);
  const std::vector<bool> spinning{true, false, false};
  const auto d = p.place(10, spinning);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 1u); // first standby disk with room
}

TEST(WritePlacer, BestFitPicksTightestSpinningDisk) {
  WritePlacer p{3, 100, FitRule::kBestFit};
  p.add_used(0, 50);
  p.add_used(1, 80); // tightest feasible for a 10-byte write
  p.add_used(2, 20);
  const std::vector<bool> spinning{true, true, true};
  const auto d = p.place(10, spinning);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 1u);
}

TEST(WritePlacer, FirstFitPicksLowestIndex) {
  WritePlacer p{3, 100, FitRule::kFirstFit};
  p.add_used(0, 50);
  p.add_used(1, 80);
  const std::vector<bool> spinning{true, true, true};
  EXPECT_EQ(*p.place(10, spinning), 0u);
}

TEST(WritePlacer, PlacementConsumesSpace) {
  WritePlacer p{1, 100, FitRule::kFirstFit};
  const std::vector<bool> spinning{true};
  EXPECT_EQ(*p.place(60, spinning), 0u);
  EXPECT_EQ(p.free_on(0), 40u);
  EXPECT_FALSE(p.place(60, spinning).has_value()); // no longer fits
}

TEST(WritePlacer, NulloptWhenNothingFits) {
  WritePlacer p{2, 50, FitRule::kBestFit};
  p.add_used(0, 45);
  p.add_used(1, 45);
  EXPECT_FALSE(p.place(10, {true, true}).has_value());
}

TEST(WritePlacer, AddUsedOverCapacityThrows) {
  WritePlacer p{1, 100, FitRule::kFirstFit};
  EXPECT_THROW(p.add_used(0, 150), std::invalid_argument);
  EXPECT_THROW(p.add_used(5, 1), std::out_of_range);
}

TEST(WritePlacer, ShortSpinningVectorTreatedAsStandby) {
  WritePlacer p{3, 100, FitRule::kFirstFit};
  // Spinning info only covers disk 0; the rest default to standby.
  const auto d = p.place(10, std::vector<bool>{false});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 0u); // all standby: plain first fit
}

TEST(WritePlacer, EnergyFriendlySequenceAvoidsSpinUps) {
  // A stream of writes with one spinning disk should land entirely on it
  // until it fills, mirroring §1.1's prescription.
  WritePlacer p{4, 100, FitRule::kFirstFit};
  const std::vector<bool> spinning{false, false, true, false};
  int on_spinning = 0;
  for (int i = 0; i < 10; ++i) {
    const auto d = p.place(10, spinning);
    ASSERT_TRUE(d.has_value());
    if (*d == 2) ++on_spinning;
  }
  EXPECT_EQ(on_spinning, 10);
  EXPECT_EQ(p.free_on(2), 0u);
}

} // namespace
} // namespace spindown::core
