// pack_audit_test.cpp — machine-check the paper's §3.1 lemmas on random
// instances, and cross-validate the audited packer against PackDisks.
#include "core/pack_audit.h"

#include <gtest/gtest.h>

#include "core/pack_disks.h"
#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;
using testing::skewed_instance;

struct AuditCase {
  std::size_t n;
  double max_coord;
  std::uint64_t seed;
  bool skewed;
};

class LemmaAudit : public ::testing::TestWithParam<AuditCase> {};

TEST_P(LemmaAudit, AllInvariantsHoldAndOutputsMatch) {
  const auto& c = GetParam();
  const auto items = c.skewed ? skewed_instance(c.n, c.max_coord, c.seed)
                              : random_instance(c.n, c.max_coord, c.seed);
  AuditReport report;
  Assignment audited;
  ASSERT_NO_THROW(audited = allocate_audited(items, report));

  PackDisks fast;
  const auto reference = fast.allocate(items);
  ASSERT_EQ(audited.disk_count, reference.disk_count);
  EXPECT_EQ(audited.disk_of, reference.disk_of);

  // Lemma 7 accounting: each element is popped at most once per residence,
  // and every eviction creates exactly one extra residence.
  EXPECT_LE(report.steps + report.remaining_packed,
            items.size() + report.evictions);
  // Every eviction was lemma-checked and closed a complete disk.
  EXPECT_EQ(report.evictions, report.lemma12_checks);
  EXPECT_EQ(report.evictions, report.lemma34_checks);
  // At most one disk incomplete in both dimensions (Lemma 6 / Theorem 1).
  EXPECT_LE(report.incomplete_disks, 1u);
  EXPECT_DOUBLE_EQ(report.rho, rho(items));
}

INSTANTIATE_TEST_SUITE_P(
    Instances, LemmaAudit,
    ::testing::Values(AuditCase{1, 0.9, 1, false},
                      AuditCase{10, 0.5, 2, false},
                      AuditCase{100, 0.3, 3, false},
                      AuditCase{500, 0.1, 4, false},
                      AuditCase{1000, 0.05, 5, false},
                      AuditCase{2000, 0.02, 6, false},
                      AuditCase{200, 0.8, 7, false},
                      AuditCase{500, 0.2, 8, true},
                      AuditCase{1000, 0.1, 9, true},
                      AuditCase{1500, 0.04, 10, true}));

TEST(LemmaAudit, ManySeedsSweep) {
  // Breadth over depth: quick audits across many seeds and shapes.
  for (std::uint64_t seed = 100; seed < 160; ++seed) {
    const double max_coord = 0.01 + 0.015 * static_cast<double>(seed % 60);
    const auto items = random_instance(300, max_coord, seed);
    AuditReport report;
    ASSERT_NO_THROW(allocate_audited(items, report)) << "seed " << seed;
  }
}

TEST(LemmaAudit, EvictionHeavyInstanceExercisesLemmas) {
  // Alternating large size-heavy and load-heavy items force evictions;
  // the audit must see some and verify the completeness each time.
  std::vector<Item> items;
  std::uint32_t idx = 0;
  for (int i = 0; i < 100; ++i) {
    items.push_back({0.45, 0.02, idx++});
    items.push_back({0.02, 0.45, idx++});
    items.push_back({0.35, 0.3, idx++});
  }
  AuditReport report;
  const auto a = allocate_audited(items, report);
  EXPECT_TRUE(is_feasible(a, items));
  EXPECT_GT(report.steps, 0u);
  // The report's closed-complete count never exceeds total disks.
  EXPECT_LE(report.disks_closed_complete, a.disk_count);
}

TEST(LemmaAudit, EmptyInstance) {
  AuditReport report;
  const auto a = allocate_audited(std::vector<Item>{}, report);
  EXPECT_EQ(a.disk_count, 0u);
  EXPECT_EQ(report.steps, 0u);
}

TEST(LemmaAudit, ClosedDisksAreWellFilled) {
  // min over closed disks of max(S, L) should clear 1 - rho when more than
  // one disk was used (only the final disk may be emptier).
  const auto items = random_instance(3000, 0.05, 42);
  AuditReport report;
  const auto a = allocate_audited(items, report);
  ASSERT_GT(a.disk_count, 2u);
  // All but at most one disk reach the threshold in some dimension.
  const auto totals = disk_totals(a, items);
  std::size_t under = 0;
  for (const auto& d : totals) {
    if (std::max(d.s, d.l) < (1.0 - report.rho) - 1e-9) ++under;
  }
  EXPECT_LE(under, 1u);
}

} // namespace
} // namespace spindown::core
