#include "core/normalize.h"

#include <gtest/gtest.h>

#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::core {
namespace {

workload::FileCatalog two_file_catalog() {
  std::vector<workload::FileInfo> files{
      {0, util::mb(100.0), 0.8},
      {1, util::mb(250.0), 0.2},
  };
  return workload::FileCatalog{files};
}

TEST(Normalize, SizesScaledByDiskCapacity) {
  LoadModel model;
  model.rate = 0.01;
  model.load_fraction = 1.0;
  const auto items = normalize(two_file_catalog(), model);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_NEAR(items[0].s, 100e6 / 500e9, 1e-15); // 100 MB / 500 GB
  EXPECT_NEAR(items[1].s, 250e6 / 500e9, 1e-15);
  EXPECT_EQ(items[0].index, 0u);
}

TEST(Normalize, LoadIsRateTimesPopularityTimesServiceOverL) {
  LoadModel model;
  model.rate = 0.2;
  model.load_fraction = 0.5;
  const auto items = normalize(two_file_catalog(), model);
  const double mu0 = model.disk.service_time(util::mb(100.0));
  EXPECT_NEAR(items[0].l, 0.2 * 0.8 * mu0 / 0.5, 1e-12);
}

TEST(Normalize, PaperSimpleServiceModel) {
  LoadModel model;
  model.rate = 0.1;
  model.load_fraction = 1.0;
  model.include_positioning = false; // l_i = r_i * s_i / B
  const auto items = normalize(two_file_catalog(), model);
  EXPECT_NEAR(items[0].l, 0.1 * 0.8 * (100e6 / 72e6), 1e-9);
}

TEST(Normalize, CustomServiceFunctionWins) {
  LoadModel model;
  model.rate = 1.0;
  model.load_fraction = 1.0;
  model.service_time = [](util::Bytes) { return 0.25; };
  const auto items = normalize(two_file_catalog(), model);
  EXPECT_NEAR(items[0].l, 0.8 * 0.25, 1e-12);
  EXPECT_NEAR(items[1].l, 0.2 * 0.25, 1e-12);
}

TEST(Normalize, CapacityFractionShrinksUsableSpace) {
  LoadModel model;
  model.rate = 0.01;
  model.load_fraction = 1.0;
  model.capacity_fraction = 0.5; // only half of each disk usable
  const auto items = normalize(two_file_catalog(), model);
  EXPECT_NEAR(items[0].s, 100e6 / 250e9, 1e-15);
}

TEST(Normalize, ThrowsWhenFileExceedsDisk) {
  std::vector<workload::FileInfo> files{{0, util::gb(600.0), 1.0}};
  const workload::FileCatalog cat{files};
  LoadModel model;
  EXPECT_THROW(normalize(cat, model), std::invalid_argument);
}

TEST(Normalize, ThrowsWhenFileLoadExceedsDisk) {
  // A single file so hot it saturates more than one disk's service rate.
  std::vector<workload::FileInfo> files{{0, util::gb(400.0), 1.0}};
  const workload::FileCatalog cat{files};
  LoadModel model;
  model.rate = 10.0; // 10/s * ~5558 s service >> 1
  EXPECT_THROW(normalize(cat, model), std::invalid_argument);
}

TEST(Normalize, ParameterValidation) {
  const auto cat = two_file_catalog();
  LoadModel model;
  model.rate = 0.0;
  EXPECT_THROW(normalize(cat, model), std::invalid_argument);
  model = LoadModel{};
  model.load_fraction = 0.0;
  EXPECT_THROW(normalize(cat, model), std::invalid_argument);
  model = LoadModel{};
  model.load_fraction = 1.5;
  EXPECT_THROW(normalize(cat, model), std::invalid_argument);
  model = LoadModel{};
  model.capacity_fraction = 0.0;
  EXPECT_THROW(normalize(cat, model), std::invalid_argument);
}

TEST(Utilization, SumsTheInstance) {
  LoadModel model;
  model.rate = 0.1;
  model.load_fraction = 1.0;
  const auto items = normalize(two_file_catalog(), model);
  const auto u = utilization(items);
  EXPECT_NEAR(u.space_disks, 350e6 / 500e9, 1e-15);
  EXPECT_GT(u.load_disks, 0.0);
}

// Load must scale linearly with R (the paper's key sweep variable).
class RateScaling : public ::testing::TestWithParam<double> {};

TEST_P(RateScaling, LoadLinearInRate) {
  LoadModel base;
  base.rate = 0.1;
  base.load_fraction = 1.0;
  LoadModel scaled = base;
  scaled.rate = GetParam();
  const auto cat = two_file_catalog();
  const auto items1 = normalize(cat, base);
  const auto itemsR = normalize(cat, scaled);
  const double factor = GetParam() / base.rate;
  for (std::size_t i = 0; i < items1.size(); ++i) {
    EXPECT_NEAR(itemsR[i].l, items1[i].l * factor, 1e-9);
    EXPECT_DOUBLE_EQ(itemsR[i].s, items1[i].s);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateScaling,
                         ::testing::Values(0.05, 0.2, 0.3));

} // namespace
} // namespace spindown::core
