#include "core/pack_disks.h"

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;
using testing::skewed_instance;

TEST(PackDisks, EmptyInstance) {
  PackDisks pd;
  const auto a = pd.allocate(std::vector<Item>{});
  EXPECT_EQ(a.disk_count, 0u);
  EXPECT_TRUE(a.disk_of.empty());
}

TEST(PackDisks, SingleItem) {
  PackDisks pd;
  const std::vector<Item> items{{0.3, 0.7, 0}};
  const auto a = pd.allocate(items);
  EXPECT_EQ(a.disk_count, 1u);
  EXPECT_EQ(a.disk_of[0], 0u);
  EXPECT_TRUE(is_feasible(a, items));
}

TEST(PackDisks, TwoComplementaryItemsShareADisk) {
  PackDisks pd;
  // One size-heavy, one load-heavy: the balancing rule packs them together.
  const std::vector<Item> items{{0.7, 0.1, 0}, {0.1, 0.7, 1}};
  const auto a = pd.allocate(items);
  EXPECT_EQ(a.disk_count, 1u);
  EXPECT_EQ(a.disk_of[0], a.disk_of[1]);
}

TEST(PackDisks, FullSizeItemsGetOwnDisks) {
  PackDisks pd;
  const std::vector<Item> items{{1.0, 0.0, 0}, {1.0, 0.0, 1}, {1.0, 0.0, 2}};
  const auto a = pd.allocate(items);
  EXPECT_EQ(a.disk_count, 3u);
  EXPECT_TRUE(is_feasible(a, items));
}

TEST(PackDisks, AllSizeIntensiveFallsToPackRemaining) {
  PackDisks pd;
  // Every item has l = 0: the main loop never runs (heap L is empty);
  // Pack_Remaining_S must still pack sizes tightly.
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 10; ++i) items.push_back({0.25, 0.0, i});
  const auto a = pd.allocate(items);
  EXPECT_TRUE(is_feasible(a, items));
  // 10 * 0.25 = 2.5 of size: needs >= 3 disks; greedy by key gets exactly 3.
  EXPECT_EQ(a.disk_count, 3u);
}

TEST(PackDisks, AllLoadIntensiveSymmetric) {
  PackDisks pd;
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 10; ++i) items.push_back({0.0, 0.25, i});
  const auto a = pd.allocate(items);
  EXPECT_TRUE(is_feasible(a, items));
  EXPECT_EQ(a.disk_count, 3u);
}

TEST(PackDisks, RejectsInvalidItems) {
  PackDisks pd;
  EXPECT_THROW(pd.allocate(std::vector<Item>{{1.2, 0.0, 0}}),
               std::invalid_argument);
}

TEST(PackDisks, DeterministicAcrossCalls) {
  PackDisks pd;
  const auto items = random_instance(500, 0.2, 99);
  const auto a = pd.allocate(items);
  const auto b = pd.allocate(items);
  EXPECT_EQ(a.disk_count, b.disk_count);
  EXPECT_EQ(a.disk_of, b.disk_of);
}

TEST(PackDisks, ClosedDisksAreNearlyFull) {
  // The completeness rule: every closed disk (all but possibly the last in
  // each phase) is s-complete or l-complete — at least 1 - rho in one
  // dimension.  With the theorem's accounting at most one disk may fall
  // short.
  const auto items = random_instance(2000, 0.1, 7);
  PackDisks pd;
  const auto a = pd.allocate(items);
  const double threshold = 1.0 - rho(items);
  const auto totals = disk_totals(a, items);
  std::size_t under = 0;
  for (const auto& d : totals) {
    if (std::max(d.s, d.l) < threshold - 1e-9) ++under;
  }
  EXPECT_LE(under, 1u);
}

// ---- Theorem 1 property sweep -----------------------------------------

struct SweepCase {
  std::size_t n;
  double max_coord;
  std::uint64_t seed;
  bool skewed;
};

class Theorem1Sweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(Theorem1Sweep, FeasibleAndWithinGuarantee) {
  const auto& c = GetParam();
  const auto items = c.skewed ? skewed_instance(c.n, c.max_coord, c.seed)
                              : random_instance(c.n, c.max_coord, c.seed);
  PackDisks pd;
  const auto a = pd.allocate(items);

  // Feasibility: every disk within both unit capacities.
  ASSERT_TRUE(is_feasible(a, items));

  // Theorem 1 (checkable form): C_PD <= 1 + max(sum s, sum l)/(1 - rho).
  const auto report = bound_report(items);
  EXPECT_TRUE(within_guarantee(report, a.disk_count))
      << "disks=" << a.disk_count << " guarantee=" << report.guarantee;

  // And never fewer disks than the lower bound.
  EXPECT_GE(a.disk_count, report.lower_bound);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, Theorem1Sweep,
    ::testing::Values(SweepCase{10, 0.5, 1, false},
                      SweepCase{100, 0.3, 2, false},
                      SweepCase{100, 0.05, 3, false},
                      SweepCase{1000, 0.1, 4, false},
                      SweepCase{1000, 0.02, 5, false},
                      SweepCase{5000, 0.01, 6, false},
                      SweepCase{137, 0.9, 7, false},
                      SweepCase{1000, 0.1, 8, true},
                      SweepCase{2000, 0.05, 9, true},
                      SweepCase{500, 0.5, 10, true}));

// Packing efficiency: on easy instances (small rho) the algorithm should be
// close to the lower bound, not just within the loose guarantee.
TEST(PackDisks, NearOptimalForSmallRho) {
  const auto items = random_instance(20'000, 0.01, 42);
  PackDisks pd;
  const auto a = pd.allocate(items);
  const auto report = bound_report(items);
  EXPECT_LE(static_cast<double>(a.disk_count),
            1.10 * static_cast<double>(report.lower_bound) + 1.0);
}

TEST(PackDisks, EvictionsCloseDisks) {
  // Construct an instance designed to trigger the eviction path: large
  // size-intensive items mixed with load-intensive ones.
  std::vector<Item> items;
  std::uint32_t idx = 0;
  for (int i = 0; i < 50; ++i) items.push_back({0.4, 0.05, idx++});
  for (int i = 0; i < 50; ++i) items.push_back({0.05, 0.4, idx++});
  for (int i = 0; i < 50; ++i) items.push_back({0.3, 0.28, idx++});
  PackDisks pd;
  const auto a = pd.allocate(items);
  EXPECT_TRUE(is_feasible(a, items));
  // The counter is observable; whether evictions occur is instance-specific,
  // but the assignment must remain feasible either way.
  SUCCEED() << "evictions=" << pd.last_evictions();
}

} // namespace
} // namespace spindown::core
