// instance_helpers.h — shared random-instance generators for core tests.
#pragma once

#include <cmath>
#include <vector>

#include "core/item.h"
#include "util/rng.h"

namespace spindown::core::testing {

/// Uniform random instance: coordinates in (0, max_coord].
inline std::vector<Item> random_instance(std::size_t n, double max_coord,
                                         std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<Item> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].index = static_cast<std::uint32_t>(i);
    items[i].s = rng.uniform(1e-6, max_coord);
    items[i].l = rng.uniform(1e-6, max_coord);
  }
  return items;
}

/// Skewed instance resembling the paper's workload: sizes and loads drawn
/// from power laws, loosely anti-correlated.
inline std::vector<Item> skewed_instance(std::size_t n, double max_coord,
                                         std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<Item> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].index = static_cast<std::uint32_t>(i);
    const double u = rng.uniform01();
    items[i].s = max_coord * std::pow(u, 2.0) + 1e-6;
    items[i].l = max_coord * std::pow(1.0 - u, 2.0) * rng.uniform01() + 1e-6;
  }
  return items;
}

} // namespace spindown::core::testing
