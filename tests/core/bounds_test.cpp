#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pack_disks.h"
#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;

TEST(BoundReport, EmptyInstance) {
  const auto r = bound_report(std::vector<Item>{});
  EXPECT_EQ(r.lower_bound, 0u);
  EXPECT_DOUBLE_EQ(r.total_s, 0.0);
  EXPECT_DOUBLE_EQ(r.guarantee, 1.0); // 1 + 0/(1-0)
}

TEST(BoundReport, SimpleTotals) {
  const std::vector<Item> items{{0.6, 0.3, 0}, {0.9, 0.2, 1}};
  const auto r = bound_report(items);
  EXPECT_DOUBLE_EQ(r.total_s, 1.5);
  EXPECT_DOUBLE_EQ(r.total_l, 0.5);
  EXPECT_EQ(r.lower_bound, 2u); // ceil(1.5)
  EXPECT_DOUBLE_EQ(r.rho, 0.9);
  EXPECT_NEAR(r.guarantee, 1.0 + 1.5 / 0.1, 1e-9);
}

TEST(BoundReport, LoadDominatedInstance) {
  const std::vector<Item> items{{0.1, 0.8, 0}, {0.1, 0.8, 1}, {0.1, 0.8, 2}};
  const auto r = bound_report(items);
  EXPECT_EQ(r.lower_bound, 3u); // ceil(2.4)
}

TEST(BoundReport, RhoOneGivesInfiniteGuarantee) {
  const std::vector<Item> items{{1.0, 0.0, 0}};
  const auto r = bound_report(items);
  EXPECT_TRUE(std::isinf(r.guarantee));
  EXPECT_TRUE(within_guarantee(r, 1'000'000));
}

TEST(BoundReport, ExactIntegerBoundaryDoesNotOverCeil) {
  // total exactly 2.0 must give lower bound 2, not 3.
  const std::vector<Item> items{{0.5, 0.0, 0}, {0.5, 0.0, 1},
                                {0.5, 0.0, 2}, {0.5, 0.0, 3}};
  EXPECT_EQ(bound_report(items).lower_bound, 2u);
}

TEST(WithinGuarantee, BoundaryInclusive) {
  BoundReport r;
  r.guarantee = 5.0;
  EXPECT_TRUE(within_guarantee(r, 5));
  EXPECT_FALSE(within_guarantee(r, 6));
}

TEST(Bounds, LowerBoundIsActuallyALowerBound) {
  // No allocator can beat ceil(max(sum s, sum l)); verify against
  // Pack_Disks across seeds.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto items = random_instance(400, 0.2, seed);
    PackDisks pd;
    const auto a = pd.allocate(items);
    EXPECT_GE(a.disk_count, bound_report(items).lower_bound) << seed;
  }
}

} // namespace
} // namespace spindown::core
