#include "core/queueing.h"

#include <gtest/gtest.h>

#include "core/pack_disks.h"
#include "sys/experiment.h"
#include "util/units.h"

namespace spindown::core {
namespace {

workload::FileCatalog single_file_catalog(util::Bytes size) {
  std::vector<workload::FileInfo> files{{0, size, 1.0}};
  return workload::FileCatalog{files};
}

TEST(PredictMg1, MD1ClosedForm) {
  // One file, one disk: M/D/1 (deterministic service).
  //   W_q = lambda * S^2 / (2 (1 - rho)).
  const auto cat = single_file_catalog(util::mb(72.0)); // ~1.0127 s service
  LoadModel model;
  model.rate = 0.5;
  model.load_fraction = 1.0;
  Assignment a;
  a.disk_of = {0};
  a.disk_count = 1;
  const auto q = predict_mg1(cat, a, model);
  const double S = model.disk.service_time(util::mb(72.0));
  const double rho = 0.5 * S;
  const double wq = 0.5 * S * S / (2.0 * (1.0 - rho));
  ASSERT_EQ(q.disks.size(), 1u);
  EXPECT_NEAR(q.disks[0].utilization, rho, 1e-12);
  EXPECT_NEAR(q.disks[0].mean_wait, wq, 1e-12);
  EXPECT_NEAR(q.mean_response, wq + S, 1e-12);
  EXPECT_TRUE(q.stable);
}

TEST(PredictMg1, UnstableDiskFlagged) {
  const auto cat = single_file_catalog(util::mb(720.0)); // 10 s service
  LoadModel model;
  model.rate = 0.2; // rho = 2 > 1
  model.load_fraction = 1.0;
  // Bypass normalize (which would reject l > 1): direct assignment.
  Assignment a;
  a.disk_of = {0};
  a.disk_count = 1;
  const auto q = predict_mg1(cat, a, model);
  EXPECT_FALSE(q.stable);
  EXPECT_FALSE(q.disks[0].stable);
  EXPECT_TRUE(std::isinf(q.mean_response));
}

TEST(PredictMg1, TrafficSplitsByMapping) {
  std::vector<workload::FileInfo> files{
      {0, util::mb(72.0), 0.75},
      {1, util::mb(72.0), 0.25},
  };
  const workload::FileCatalog cat{files};
  LoadModel model;
  model.rate = 0.4;
  Assignment a;
  a.disk_of = {0, 1};
  a.disk_count = 2;
  const auto q = predict_mg1(cat, a, model);
  EXPECT_NEAR(q.disks[0].arrival_rate, 0.3, 1e-12);
  EXPECT_NEAR(q.disks[1].arrival_rate, 0.1, 1e-12);
  EXPECT_GT(q.disks[0].mean_wait, q.disks[1].mean_wait);
}

TEST(PredictMg1, ZeroTrafficDiskIgnored) {
  std::vector<workload::FileInfo> files{
      {0, util::mb(72.0), 1.0},
      {1, util::mb(72.0), 0.0}, // stored but never read
  };
  const workload::FileCatalog cat{files};
  LoadModel model;
  model.rate = 0.1;
  Assignment a;
  a.disk_of = {0, 1};
  a.disk_count = 2;
  const auto q = predict_mg1(cat, a, model);
  EXPECT_DOUBLE_EQ(q.disks[1].arrival_rate, 0.0);
  EXPECT_DOUBLE_EQ(q.disks[1].mean_response, 0.0);
  EXPECT_TRUE(q.stable);
  EXPECT_GT(q.mean_response, 0.0);
}

TEST(PredictMg1, ValidatesArguments) {
  const auto cat = single_file_catalog(util::mb(10.0));
  LoadModel model;
  Assignment too_small;
  too_small.disk_count = 1;
  EXPECT_THROW(predict_mg1(cat, too_small, model), std::invalid_argument);
  Assignment bad_disk;
  bad_disk.disk_of = {3};
  bad_disk.disk_count = 1;
  EXPECT_THROW(predict_mg1(cat, bad_disk, model), std::invalid_argument);
}

TEST(PredictMg1, MatchesSimulationAtModerateLoad) {
  // End-to-end cross-validation: prediction within ~15% of the simulator
  // for a packed placement with never-spin-down disks (the regime the
  // formula models).
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = 2000;
  util::Rng rng{5};
  const auto cat = workload::generate_catalog(spec, rng);
  LoadModel model;
  model.rate = 1.0;
  model.load_fraction = 0.5; // keeps every disk comfortably stable
  PackDisks pack;
  const auto a = pack.allocate(normalize(cat, model));

  const auto predicted = predict_mg1(cat, a, model);
  ASSERT_TRUE(predicted.stable);

  sys::ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = a.disk_of;
  cfg.num_disks = a.disk_count;
  cfg.policy = sys::PolicySpec::never();
  cfg.workload = sys::WorkloadSpec::poisson(model.rate, 20'000.0);
  cfg.seed = 5;
  const auto sim = sys::run_experiment(cfg);

  EXPECT_NEAR(predicted.mean_response, sim.response.mean(),
              sim.response.mean() * 0.15)
      << "predicted=" << predicted.mean_response
      << " simulated=" << sim.response.mean();
}

// Utilization must never exceed the packing's load constraint by more than
// rounding: the L knob really does bound rho (the paper's premise that L
// controls response time).
class LoadConstraintBoundsUtilization
    : public ::testing::TestWithParam<double> {};

TEST_P(LoadConstraintBoundsUtilization, RhoWithinL) {
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = 3000;
  util::Rng rng{7};
  const auto cat = workload::generate_catalog(spec, rng);
  LoadModel model;
  model.rate = 1.0;
  model.load_fraction = GetParam();
  PackDisks pack;
  const auto a = pack.allocate(normalize(cat, model));
  const auto q = predict_mg1(cat, a, model);
  // Every disk's utilization is at most L (normalization bounds sum l <= 1
  // in units of L).
  for (const auto& d : q.disks) {
    EXPECT_LE(d.utilization, GetParam() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadConstraintBoundsUtilization,
                         ::testing::Values(0.4, 0.6, 0.8));

} // namespace
} // namespace spindown::core
