#include "core/random_alloc.h"

#include <gtest/gtest.h>

#include <set>

#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;

TEST(RandomAllocator, RejectsZeroDisks) {
  EXPECT_THROW((RandomAllocator{0, 1}), std::invalid_argument);
}

TEST(RandomAllocator, UsesConfiguredDiskCount) {
  RandomAllocator r{50, 7};
  const auto items = random_instance(500, 0.05, 3);
  const auto a = r.allocate(items);
  EXPECT_EQ(a.disk_count, 50u);
  for (const auto d : a.disk_of) EXPECT_LT(d, 50u);
}

TEST(RandomAllocator, SpreadsAcrossDisks) {
  RandomAllocator r{20, 11};
  const auto items = random_instance(2000, 0.01, 5);
  const auto a = r.allocate(items);
  std::set<std::uint32_t> used(a.disk_of.begin(), a.disk_of.end());
  EXPECT_EQ(used.size(), 20u); // every disk touched with 2000 items
}

TEST(RandomAllocator, RoughlyUniformOccupancy) {
  RandomAllocator r{10, 13};
  const auto items = random_instance(10'000, 0.001, 7);
  const auto a = r.allocate(items);
  std::vector<int> counts(10, 0);
  for (const auto d : a.disk_of) ++counts[d];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 150.0);
  }
}

TEST(RandomAllocator, DeterministicGivenSeed) {
  RandomAllocator r{25, 17};
  const auto items = random_instance(300, 0.1, 9);
  EXPECT_EQ(r.allocate(items).disk_of, r.allocate(items).disk_of);
}

TEST(RandomAllocator, DifferentSeedsDiffer) {
  const auto items = random_instance(300, 0.1, 9);
  RandomAllocator a{25, 1}, b{25, 2};
  EXPECT_NE(a.allocate(items).disk_of, b.allocate(items).disk_of);
}

TEST(RandomAllocator, RespectsSizeCapacity) {
  // Tight instance: 20 items of size 0.5 into 10 disks — exactly 2 each.
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 20; ++i) items.push_back({0.5, 0.0, i});
  RandomAllocator r{10, 19};
  const auto a = r.allocate(items);
  std::vector<double> used(10, 0.0);
  for (const auto& it : items) used[a.disk_of[it.index]] += it.s;
  for (const double u : used) EXPECT_LE(u, 1.0 + 1e-9);
}

TEST(RandomAllocator, ThrowsWhenInstanceCannotFit) {
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 21; ++i) items.push_back({0.5, 0.0, i});
  RandomAllocator r{10, 23}; // 10.5 disks of size demand into 10 disks
  EXPECT_THROW(r.allocate(items), std::runtime_error);
}

TEST(RandomAllocator, IgnoresLoadDimension) {
  // Random placement is oblivious to load (like the paper's baseline): an
  // instance whose load sums far beyond the farm still allocates.
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 40; ++i) items.push_back({0.01, 0.9, i});
  RandomAllocator r{4, 29};
  const auto a = r.allocate(items);
  EXPECT_EQ(a.disk_count, 4u); // feasible in size; load overflows by design
}

} // namespace
} // namespace spindown::core
