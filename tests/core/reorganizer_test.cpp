#include "core/reorganizer.h"

#include <gtest/gtest.h>

#include "core/pack_disks.h"
#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::core {
namespace {

workload::FileCatalog catalog_of(std::size_t n, util::Bytes size_each) {
  std::vector<workload::FileInfo> files(n);
  for (std::size_t i = 0; i < n; ++i) {
    files[i].id = static_cast<workload::FileId>(i);
    files[i].size = size_each;
    files[i].popularity = 1.0 / static_cast<double>(n);
  }
  return workload::FileCatalog{files};
}

LoadModel mild_model() {
  LoadModel m;
  m.rate = 0.1;
  m.load_fraction = 0.9;
  return m;
}

TEST(RelabelForOverlap, IdentityWhenNothingChanges) {
  const auto cat = catalog_of(4, util::gb(10.0));
  Assignment current;
  current.disk_of = {0, 0, 1, 1};
  current.disk_count = 2;
  // New packing identical up to disk renaming.
  Assignment next;
  next.disk_of = {1, 1, 0, 0};
  next.disk_count = 2;
  const auto relabeled = relabel_for_overlap(current, next, cat);
  EXPECT_EQ(relabeled.disk_of, current.disk_of); // fully matched, zero moves
}

TEST(RelabelForOverlap, MaximizesByteOverlap) {
  std::vector<workload::FileInfo> files{
      {0, util::gb(100.0), 0.25},
      {1, util::gb(1.0), 0.25},
      {2, util::gb(1.0), 0.25},
      {3, util::gb(100.0), 0.25},
  };
  const workload::FileCatalog cat{files};
  Assignment current;
  current.disk_of = {0, 0, 1, 1};
  current.disk_count = 2;
  // New disks group {0,2} and {1,3}: by bytes, new disk 0 overlaps old 0
  // (100 GB via file 0), new disk 1 overlaps old 1 (100 GB via file 3).
  Assignment next;
  next.disk_of = {0, 1, 0, 1};
  next.disk_count = 2;
  const auto relabeled = relabel_for_overlap(current, next, cat);
  EXPECT_EQ(relabeled.disk_of[0], 0u);
  EXPECT_EQ(relabeled.disk_of[3], 1u);
}

TEST(RelabelForOverlap, GrowingDiskCountGetsFreshLabels) {
  const auto cat = catalog_of(3, util::gb(1.0));
  Assignment current;
  current.disk_of = {0, 0, 0};
  current.disk_count = 1;
  Assignment next;
  next.disk_of = {0, 1, 2};
  next.disk_count = 3;
  const auto relabeled = relabel_for_overlap(current, next, cat);
  EXPECT_EQ(relabeled.disk_count, 3u);
  // All labels distinct.
  EXPECT_NE(relabeled.disk_of[0], relabeled.disk_of[1]);
  EXPECT_NE(relabeled.disk_of[1], relabeled.disk_of[2]);
}

TEST(Reorganizer, ValidatesInputs) {
  const auto cat = catalog_of(4, util::gb(10.0));
  Reorganizer reorg{mild_model()};
  Assignment current;
  current.disk_of = {0, 0, 0, 0};
  current.disk_count = 1;
  std::vector<std::uint64_t> wrong_len{1, 1};
  EXPECT_THROW(reorg.plan(cat, wrong_len, 100.0, current),
               std::invalid_argument);
  std::vector<std::uint64_t> counts{1, 1, 1, 1};
  EXPECT_THROW(reorg.plan(cat, counts, 0.0, current), std::invalid_argument);
  std::vector<std::uint64_t> zeros{0, 0, 0, 0};
  EXPECT_THROW(reorg.plan(cat, zeros, 100.0, current), std::invalid_argument);
}

TEST(Reorganizer, EstimatesRateFromWindow) {
  const auto cat = catalog_of(10, util::gb(5.0));
  Reorganizer reorg{mild_model()};
  Assignment current;
  current.disk_of.assign(10, 0);
  current.disk_count = 1;
  std::vector<std::uint64_t> counts(10, 5); // 50 accesses over 500 s
  const auto plan = reorg.plan(cat, counts, 500.0, current);
  EXPECT_DOUBLE_EQ(plan.estimated_rate, 0.1);
  EXPECT_EQ(plan.disks_before, 1u);
  EXPECT_GE(plan.disks_after, 1u);
}

TEST(Reorganizer, StablePlacementMovesNothing) {
  // If the observed counts reproduce the popularity the current packing was
  // built from, re-packing should land on the same layout and move nothing.
  const auto cat = catalog_of(50, util::gb(8.0));
  const auto model = mild_model();
  const auto items = normalize(cat, model);
  PackDisks pd;
  const auto current = pd.allocate(items);

  std::vector<std::uint64_t> counts(50, 4); // uniform, matching the catalog
  Reorganizer reorg{model};
  // Window chosen so the observed rate equals the model rate: 50*4/2000.
  const auto plan = reorg.plan(cat, counts, 2000.0, current);
  EXPECT_EQ(plan.bytes_moved, 0u);
  EXPECT_TRUE(plan.moved.empty());
}

TEST(Reorganizer, PopularityShiftTriggersMoves) {
  const auto cat = catalog_of(60, util::gb(8.0));
  const auto model = mild_model();
  PackDisks pd;
  const auto current = pd.allocate(normalize(cat, model));

  // The window observed a drastically different popularity profile: file 59
  // got hot, the first half went cold.  (Kept mild enough that no single
  // file's load exceeds one disk — that would be unallocatable.)
  std::vector<std::uint64_t> counts(60, 0);
  for (std::size_t i = 30; i < 60; ++i) counts[i] = 1;
  counts[59] = 20;
  Reorganizer reorg{model};
  const auto plan = reorg.plan(cat, counts, 3000.0, current);
  // Loads were re-estimated, so feasibility is relative to the observed
  // instance; sizes are invariant, so per-disk space must still fit.
  std::vector<double> disk_bytes(plan.next.disk_count, 0.0);
  for (const auto& f : cat.files()) {
    ASSERT_LT(plan.next.disk_of[f.id], plan.next.disk_count);
    disk_bytes[plan.next.disk_of[f.id]] += static_cast<double>(f.size);
  }
  for (const double b : disk_bytes) {
    EXPECT_LE(b, static_cast<double>(model.disk.capacity) * (1.0 + 1e-9));
  }
  EXPECT_GT(plan.moved.size(), 0u);
  EXPECT_EQ(plan.bytes_moved, plan.moved.size() * util::gb(8.0));
}

} // namespace
} // namespace spindown::core
