#include "core/pack_segregated.h"

#include <gtest/gtest.h>

#include <set>

#include "core/bounds.h"
#include "core/pack_disks.h"
#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;

TEST(SegregatedPackDisks, RejectsZeroClasses) {
  EXPECT_THROW(SegregatedPackDisks{0}, std::invalid_argument);
}

TEST(SegregatedPackDisks, OneClassIsPackDisks) {
  const auto items = random_instance(600, 0.1, 3);
  SegregatedPackDisks seg{1};
  PackDisks plain;
  EXPECT_EQ(seg.allocate(items).disk_of, plain.allocate(items).disk_of);
}

TEST(SegregatedPackDisks, EmptyAndTiny) {
  SegregatedPackDisks seg{4};
  EXPECT_EQ(seg.allocate(std::vector<Item>{}).disk_count, 0u);
  const std::vector<Item> two{{0.1, 0.1, 0}, {0.9, 0.1, 1}};
  const auto a = seg.allocate(two);
  EXPECT_TRUE(is_feasible(a, two));
  // More classes than items: each lands alone.
  EXPECT_EQ(a.disk_count, 2u);
}

TEST(SegregatedPackDisks, NeverMixesExtremeSizeClasses) {
  // Half tiny files, half huge: with 2 classes no disk may hold both kinds.
  std::vector<Item> items;
  std::uint32_t idx = 0;
  for (int i = 0; i < 50; ++i) items.push_back({0.01, 0.02, idx++});
  for (int i = 0; i < 50; ++i) items.push_back({0.5, 0.02, idx++});
  SegregatedPackDisks seg{2};
  const auto a = seg.allocate(items);
  ASSERT_TRUE(is_feasible(a, items));
  std::set<std::uint32_t> small_disks, large_disks;
  for (const auto& it : items) {
    (it.s < 0.1 ? small_disks : large_disks).insert(a.disk_of[it.index]);
  }
  for (const auto d : small_disks) {
    EXPECT_FALSE(large_disks.contains(d)) << "disk " << d << " mixes classes";
  }
}

TEST(SegregatedPackDisks, WithPackDisksSharingIsPossible) {
  // Control for the previous test: plain Pack_Disks on the same instance
  // does co-locate the classes (that is the behaviour §6 flags).
  std::vector<Item> items;
  std::uint32_t idx = 0;
  for (int i = 0; i < 50; ++i) items.push_back({0.01, 0.02, idx++});
  for (int i = 0; i < 50; ++i) items.push_back({0.5, 0.02, idx++});
  PackDisks plain;
  const auto a = plain.allocate(items);
  std::set<std::uint32_t> small_disks, large_disks;
  for (const auto& it : items) {
    (it.s < 0.1 ? small_disks : large_disks).insert(a.disk_of[it.index]);
  }
  bool shared = false;
  for (const auto d : small_disks) {
    if (large_disks.contains(d)) shared = true;
  }
  EXPECT_TRUE(shared);
}

class SegregationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SegregationSweep, FeasibleWithBoundedOverhead) {
  const auto items = random_instance(2000, 0.05, 11);
  SegregatedPackDisks seg{GetParam()};
  PackDisks plain;
  const auto a_seg = seg.allocate(items);
  const auto a_plain = plain.allocate(items);
  EXPECT_TRUE(is_feasible(a_seg, items));
  // Segregation forfeits cross-class balancing (a class's load-heavy items
  // can no longer pair with another class's size-heavy ones), so allow a
  // moderate multiplicative overhead plus one partial disk per class.
  EXPECT_LE(a_seg.disk_count,
            static_cast<std::uint32_t>(1.5 * a_plain.disk_count) +
                static_cast<std::uint32_t>(GetParam()));
  // Every item assigned to a real disk.
  for (const auto& it : items) {
    EXPECT_LT(a_seg.disk_of[it.index], a_seg.disk_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, SegregationSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(SegregatedPackDisks, DeterministicAndNamed) {
  const auto items = random_instance(500, 0.1, 13);
  SegregatedPackDisks seg{3};
  EXPECT_EQ(seg.allocate(items).disk_of, seg.allocate(items).disk_of);
  EXPECT_EQ(seg.name(), "segregated_pack_disks_3");
  EXPECT_EQ(seg.classes(), 3u);
}

} // namespace
} // namespace spindown::core
