#include "core/sea.h"

#include <gtest/gtest.h>

#include <set>

#include "core/bounds.h"
#include "instance_helpers.h"

namespace spindown::core {
namespace {

using testing::random_instance;

TEST(SeaAllocator, RejectsBadShare) {
  EXPECT_THROW(SeaAllocator{0.0}, std::invalid_argument);
  EXPECT_THROW(SeaAllocator{1.5}, std::invalid_argument);
  EXPECT_NO_THROW(SeaAllocator{1.0});
}

TEST(SeaAllocator, EmptyAndSingle) {
  SeaAllocator sea;
  EXPECT_EQ(sea.allocate(std::vector<Item>{}).disk_count, 0u);
  const std::vector<Item> one{{0.2, 0.3, 0}};
  const auto a = sea.allocate(one);
  EXPECT_EQ(a.disk_count, 1u);
  EXPECT_TRUE(is_feasible(a, one));
  EXPECT_EQ(sea.hot_disks(), 1u); // the only file is the whole hot set
}

TEST(SeaAllocator, HotFilesStripedAcrossHotZone) {
  // Four hot files carrying nearly all load, many cold files.
  std::vector<Item> items;
  std::uint32_t idx = 0;
  for (int i = 0; i < 4; ++i) items.push_back({0.05, 0.6, idx++});
  for (int i = 0; i < 40; ++i) items.push_back({0.05, 0.001, idx++});
  SeaAllocator sea{0.8};
  const auto a = sea.allocate(items);
  ASSERT_TRUE(is_feasible(a, items));
  // The 4 hot files (load 0.6 each) cannot share disks: 4 distinct disks,
  // all inside the hot zone.
  std::set<std::uint32_t> hot_homes{a.disk_of[0], a.disk_of[1], a.disk_of[2],
                                    a.disk_of[3]};
  EXPECT_EQ(hot_homes.size(), 4u);
  for (const auto d : hot_homes) EXPECT_LT(d, sea.hot_disks());
}

TEST(SeaAllocator, ColdZoneHoldsOnlyColdFiles) {
  std::vector<Item> items;
  std::uint32_t idx = 0;
  for (int i = 0; i < 3; ++i) items.push_back({0.1, 0.5, idx++});
  for (int i = 0; i < 30; ++i) items.push_back({0.2, 0.002, idx++});
  SeaAllocator sea{0.8};
  const auto a = sea.allocate(items);
  ASSERT_TRUE(is_feasible(a, items));
  // Every disk at index >= hot_disks() holds only low-load files.
  for (const auto& it : items) {
    if (a.disk_of[it.index] >= sea.hot_disks()) {
      EXPECT_LT(it.l, 0.1) << "hot item leaked into the cold zone";
    }
  }
}

TEST(SeaAllocator, ConsecutiveHotItemsOnDifferentSpindles) {
  // The striping property: equally hot small files go round-robin.
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 12; ++i) items.push_back({0.01, 0.3, i});
  SeaAllocator sea{1.0};
  const auto a = sea.allocate(items);
  ASSERT_TRUE(is_feasible(a, items));
  ASSERT_GE(sea.hot_disks(), 3u);
  // The first hot_disks() items land on distinct disks.
  std::set<std::uint32_t> first;
  for (std::uint32_t i = 0; i < sea.hot_disks(); ++i) {
    first.insert(a.disk_of[i]);
  }
  EXPECT_EQ(first.size(), sea.hot_disks());
}

class SeaFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeaFeasibility, RandomInstances) {
  const auto items = random_instance(1500, 0.1, GetParam());
  SeaAllocator sea{0.8};
  const auto a = sea.allocate(items);
  EXPECT_TRUE(is_feasible(a, items));
  EXPECT_GE(a.disk_count, bound_report(items).lower_bound);
  EXPECT_LE(sea.hot_disks(), a.disk_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeaFeasibility, ::testing::Values(1, 2, 3, 4));

TEST(SeaAllocator, DeterministicAndNamed) {
  const auto items = random_instance(400, 0.1, 9);
  SeaAllocator sea{0.7};
  EXPECT_EQ(sea.allocate(items).disk_of, sea.allocate(items).disk_of);
  EXPECT_EQ(sea.name(), "sea_striping");
}

TEST(SeaAllocator, ZeroLoadInstanceIsAllCold) {
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < 10; ++i) items.push_back({0.3, 0.0, i});
  SeaAllocator sea{0.8};
  const auto a = sea.allocate(items);
  EXPECT_TRUE(is_feasible(a, items));
  EXPECT_EQ(sea.hot_disks(), 0u);
}

} // namespace
} // namespace spindown::core
