#include "adapt/slack.h"

#include <gtest/gtest.h>

#include "disk/params.h"

namespace spindown::adapt {
namespace {

const disk::DiskParams kParams = disk::DiskParams::st3500630as();

TEST(SlackAwarePolicy, StartsAtTheFloor) {
  SlackConfig cfg;
  SlackAwarePolicy policy{kParams, cfg};
  util::Rng rng{1};
  EXPECT_DOUBLE_EQ(policy.threshold(),
                   cfg.floor_factor * kParams.break_even_threshold());
  EXPECT_DOUBLE_EQ(*policy.idle_timeout(rng), policy.threshold());
}

TEST(SlackAwarePolicy, SloViolationsWidenToTheCeiling) {
  SlackConfig cfg;
  cfg.target_response_s = 10.0;
  SlackAwarePolicy policy{kParams, cfg};
  for (int i = 0; i < 200; ++i) policy.observe_completion(25.0);
  EXPECT_DOUBLE_EQ(policy.threshold(),
                   cfg.max_factor * kParams.break_even_threshold());
}

TEST(SlackAwarePolicy, MeetingTheSloNarrowsBackToTheFloor) {
  SlackConfig cfg;
  cfg.target_response_s = 10.0;
  SlackAwarePolicy policy{kParams, cfg};
  for (int i = 0; i < 200; ++i) policy.observe_completion(25.0);
  ASSERT_GT(policy.threshold(), kParams.break_even_threshold());
  for (int i = 0; i < 3000; ++i) policy.observe_completion(0.5);
  EXPECT_DOUBLE_EQ(policy.threshold(),
                   cfg.floor_factor * kParams.break_even_threshold());
}

TEST(SlackAwarePolicy, QuantileTrackerApproximatesTheTail) {
  SlackConfig cfg;
  cfg.percentile = 99.0;
  SlackAwarePolicy policy{kParams, cfg};
  util::Rng rng{11};
  // 97% fast responses at ~0.5 s, 3% stalls at ~20 s: the p99 sits inside
  // the stall mode.
  for (int i = 0; i < 50000; ++i) {
    const double r = rng.uniform01() < 0.97 ? rng.uniform(0.2, 0.8)
                                            : rng.uniform(15.0, 25.0);
    policy.observe_completion(r);
  }
  EXPECT_GT(policy.estimated_percentile(), 5.0);
  EXPECT_LT(policy.estimated_percentile(), 30.0);
}

TEST(SlackAwarePolicy, ThresholdStaysInsideTheClamp) {
  SlackConfig cfg;
  cfg.target_response_s = 5.0;
  SlackAwarePolicy policy{kParams, cfg};
  util::Rng rng{13};
  const double lo = cfg.floor_factor * kParams.break_even_threshold();
  const double hi = cfg.max_factor * kParams.break_even_threshold();
  for (int i = 0; i < 5000; ++i) {
    policy.observe_completion(rng.exponential(1.0 / 5.0));
    EXPECT_GE(policy.threshold(), lo - 1e-12);
    EXPECT_LE(policy.threshold(), hi + 1e-12);
  }
}

TEST(SlackAwarePolicy, RejectsBadConfig) {
  SlackConfig bad_slo;
  bad_slo.target_response_s = 0.0;
  EXPECT_THROW((SlackAwarePolicy{kParams, bad_slo}), std::invalid_argument);
  SlackConfig bad_pct;
  bad_pct.percentile = 100.0;
  EXPECT_THROW((SlackAwarePolicy{kParams, bad_pct}), std::invalid_argument);
  SlackConfig bad_clamp;
  bad_clamp.floor_factor = 2.0;
  bad_clamp.max_factor = 1.0;
  EXPECT_THROW((SlackAwarePolicy{kParams, bad_clamp}), std::invalid_argument);
}

} // namespace
} // namespace spindown::adapt
