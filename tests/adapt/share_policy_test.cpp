#include "adapt/share.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "disk/params.h"

namespace spindown::adapt {
namespace {

const disk::DiskParams kParams = disk::DiskParams::st3500630as();

double weight_sum(const ShareThresholdPolicy& p) {
  return std::accumulate(p.weights().begin(), p.weights().end(), 0.0);
}

TEST(CounterfactualCost, ShortPeriodIsPureIdleDraw) {
  EXPECT_DOUBLE_EQ(counterfactual_idle_cost(kParams, 30.0, 20.0, 25.0),
                   20.0 * kParams.idle_w);
}

TEST(CounterfactualCost, LongPeriodPaysTransitionStandbyAndDelay) {
  const double T = 10.0, d = 200.0, penalty = 25.0;
  const double expected = kParams.idle_w * T + kParams.transition_energy() +
                          kParams.standby_w *
                              (d - T - kParams.spindown_s - kParams.spinup_s) +
                          penalty * kParams.spinup_s;
  EXPECT_DOUBLE_EQ(counterfactual_idle_cost(kParams, T, d, penalty), expected);
}

TEST(CounterfactualCost, MidRetractionArrivalPaysTheRemainder) {
  // d lands between T and T + spindown: the arrival waits out the rest of
  // the retraction plus the full spin-up.
  const double T = 50.0, d = 55.0, penalty = 25.0;
  const double retraction_left = T + kParams.spindown_s - d; // 5 s
  const double expected = kParams.idle_w * T + kParams.transition_energy() +
                          penalty * (retraction_left + kParams.spinup_s);
  EXPECT_DOUBLE_EQ(counterfactual_idle_cost(kParams, T, d, penalty), expected);
}

TEST(ShareThresholdPolicy, StartsUniformWithExpectedGrid) {
  ShareConfig cfg;
  ShareThresholdPolicy policy{kParams, cfg};
  ASSERT_EQ(policy.thresholds().size(), cfg.experts);
  EXPECT_DOUBLE_EQ(policy.thresholds().front(), 0.0);
  const double B = kParams.break_even_threshold();
  EXPECT_NEAR(policy.thresholds()[1], B / 8.0, 1e-9);
  EXPECT_NEAR(policy.thresholds().back(), cfg.max_factor * B, 1e-9);
  EXPECT_TRUE(std::is_sorted(policy.thresholds().begin(),
                             policy.thresholds().end()));
  for (const double w : policy.weights()) {
    EXPECT_DOUBLE_EQ(w, 1.0 / static_cast<double>(cfg.experts));
  }
}

TEST(ShareThresholdPolicy, WeightsStayNormalised) {
  ShareThresholdPolicy policy{kParams};
  util::Rng rng{3};
  for (int i = 0; i < 500; ++i) {
    policy.observe_idle(rng.exponential(1.0 / 40.0), false);
    EXPECT_NEAR(weight_sum(policy), 1.0, 1e-9);
  }
}

TEST(ShareThresholdPolicy, ShortPeriodsPushTheThresholdUp) {
  // Periods of ~8 s: every small threshold pays a park + delay on a large
  // fraction of them, so the combiner must drift toward the big end.
  ShareThresholdPolicy policy{kParams};
  const double start = policy.current_threshold();
  util::Rng rng{5};
  for (int i = 0; i < 300; ++i) {
    policy.observe_idle(rng.exponential(1.0 / 8.0), false);
  }
  EXPECT_GT(policy.current_threshold(), start);
  EXPECT_GT(policy.current_threshold(), kParams.break_even_threshold());
}

TEST(ShareThresholdPolicy, LongPeriodsPullTheThresholdDown) {
  ShareThresholdPolicy policy{kParams};
  util::Rng rng{7};
  for (int i = 0; i < 300; ++i) {
    policy.observe_idle(500.0 + rng.uniform(0.0, 100.0), false);
  }
  // Long periods reward early parking: the combiner must sit well below
  // break-even.
  EXPECT_LT(policy.current_threshold(),
            0.5 * kParams.break_even_threshold());
}

TEST(ShareThresholdPolicy, FixedShareFloorEnablesRecovery) {
  ShareConfig cfg;
  ShareThresholdPolicy policy{kParams, cfg};
  for (int i = 0; i < 500; ++i) policy.observe_idle(600.0, false);
  const double low = policy.current_threshold();
  ASSERT_LT(low, 0.5 * kParams.break_even_threshold());
  // Regime change: 30 s periods punish every expert below 30 s (their
  // parks are all unprofitable); the share floor guarantees the spared
  // experts recover within a bounded number of rounds despite 500 rounds
  // of collapsed weights.
  for (int i = 0; i < 60; ++i) policy.observe_idle(30.0, false);
  EXPECT_GT(policy.current_threshold(), low);
  EXPECT_GT(policy.current_threshold(), 0.6 * kParams.break_even_threshold());
  // No weight ever collapses below the mixing floor.
  const double floor = cfg.share / static_cast<double>(cfg.experts);
  for (const double w : policy.weights()) EXPECT_GE(w, floor - 1e-12);
}

TEST(ShareThresholdPolicy, BestExpertGetsTheMostWeight) {
  // Deterministic periods of 300 s: the counterfactually cheapest expert is
  // the smallest threshold > 0... in fact T = 0 (no idle ramp at all, and
  // the delay penalty is paid by every expert whose threshold < 300).
  ShareThresholdPolicy policy{kParams};
  for (int i = 0; i < 400; ++i) policy.observe_idle(300.0, false);
  const auto& w = policy.weights();
  const std::size_t argmax = static_cast<std::size_t>(
      std::max_element(w.begin(), w.end()) - w.begin());
  double best_cost = 1e300;
  std::size_t expected = 0;
  for (std::size_t i = 0; i < policy.thresholds().size(); ++i) {
    const double c =
        counterfactual_idle_cost(kParams, policy.thresholds()[i], 300.0, 25.0);
    if (c < best_cost) {
      best_cost = c;
      expected = i;
    }
  }
  EXPECT_EQ(argmax, expected);
}

TEST(ShareThresholdPolicy, RejectsBadConfig) {
  ShareConfig one;
  one.experts = 1;
  EXPECT_THROW((ShareThresholdPolicy{kParams, one}), std::invalid_argument);
  ShareConfig bad_share;
  bad_share.share = 1.0;
  EXPECT_THROW((ShareThresholdPolicy{kParams, bad_share}),
               std::invalid_argument);
  ShareConfig bad_eta;
  bad_eta.eta = 0.0;
  EXPECT_THROW((ShareThresholdPolicy{kParams, bad_eta}), std::invalid_argument);
}

} // namespace
} // namespace spindown::adapt
