#include "adapt/idle_predictor.h"

#include <gtest/gtest.h>

#include "disk/params.h"

namespace spindown::adapt {
namespace {

const disk::DiskParams kParams = disk::DiskParams::st3500630as();

TEST(EwmaIdlePredictor, WarmupBehavesLikeBreakEven) {
  EwmaIdlePredictorPolicy policy{kParams};
  util::Rng rng{1};
  const double B = kParams.break_even_threshold();
  EXPECT_DOUBLE_EQ(*policy.idle_timeout(rng), B);
  policy.observe_idle(500.0, false);
  policy.observe_idle(500.0, false);
  // Still inside the warmup window (default 3 observations).
  EXPECT_DOUBLE_EQ(*policy.idle_timeout(rng), B);
}

TEST(EwmaIdlePredictor, ConfidentLongParksEarly) {
  EwmaPredictorConfig cfg;
  EwmaIdlePredictorPolicy policy{kParams, cfg};
  util::Rng rng{1};
  for (int i = 0; i < 10; ++i) policy.observe_idle(500.0, false);
  // Constant long periods: deviation collapses, the band sits far above
  // break-even, and the policy parks after the token fraction.
  const double expected = cfg.park_fraction * kParams.break_even_threshold();
  EXPECT_DOUBLE_EQ(*policy.idle_timeout(rng), expected);
  EXPECT_NEAR(policy.predicted_idle(), 500.0, 1e-6);
}

TEST(EwmaIdlePredictor, ShortPeriodsUseTheGuardThreshold) {
  EwmaPredictorConfig cfg;
  EwmaIdlePredictorPolicy policy{kParams, cfg};
  util::Rng rng{1};
  for (int i = 0; i < 10; ++i) policy.observe_idle(5.0, false);
  const double expected = cfg.guard_factor * kParams.break_even_threshold();
  EXPECT_DOUBLE_EQ(*policy.idle_timeout(rng), expected);
}

TEST(EwmaIdlePredictor, UncertainBandUsesTheGuardThreshold) {
  // Alternating short/long periods straddle break-even: the policy must not
  // park early on a coin flip.
  EwmaPredictorConfig cfg;
  EwmaIdlePredictorPolicy policy{kParams, cfg};
  util::Rng rng{1};
  for (int i = 0; i < 40; ++i) {
    policy.observe_idle(i % 2 == 0 ? 5.0 : 150.0, false);
  }
  const double expected = cfg.guard_factor * kParams.break_even_threshold();
  EXPECT_DOUBLE_EQ(*policy.idle_timeout(rng), expected);
}

TEST(EwmaIdlePredictor, OneSurpriseShortPeriodExitsTheParkRegime) {
  // The asymmetric (fast-down) gain: after a lull, a single burst-length
  // period must pull the policy out of early parking.
  EwmaPredictorConfig cfg;
  EwmaIdlePredictorPolicy policy{kParams, cfg};
  util::Rng rng{1};
  for (int i = 0; i < 10; ++i) policy.observe_idle(400.0, false);
  const double park = cfg.park_fraction * kParams.break_even_threshold();
  ASSERT_DOUBLE_EQ(*policy.idle_timeout(rng), park);
  policy.observe_idle(2.0, true);
  policy.observe_idle(2.0, false);
  // Within two short periods the band must straddle or drop below B.
  EXPECT_DOUBLE_EQ(*policy.idle_timeout(rng),
                   cfg.guard_factor * kParams.break_even_threshold());
}

TEST(EwmaIdlePredictor, ConvergesToRegimeAfterChange) {
  EwmaIdlePredictorPolicy policy{kParams};
  util::Rng rng{1};
  for (int i = 0; i < 30; ++i) policy.observe_idle(4.0, false);
  // Regime change to long periods: engagement within a handful of periods.
  int flips = 0;
  for (int i = 0; i < 10; ++i) {
    policy.observe_idle(600.0, false);
    if (*policy.idle_timeout(rng) < kParams.break_even_threshold()) {
      flips = i + 1;
      break;
    }
  }
  EXPECT_GT(flips, 0) << "never engaged early parking";
  EXPECT_LE(flips, 8);
}

TEST(EwmaIdlePredictor, RejectsBadConfig) {
  EwmaPredictorConfig bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_THROW((EwmaIdlePredictorPolicy{kParams, bad_alpha}),
               std::invalid_argument);
  EwmaPredictorConfig bad_guard;
  bad_guard.guard_factor = 0.5;
  EXPECT_THROW((EwmaIdlePredictorPolicy{kParams, bad_guard}),
               std::invalid_argument);
  EwmaPredictorConfig bad_park;
  bad_park.park_fraction = 1.5;
  EXPECT_THROW((EwmaIdlePredictorPolicy{kParams, bad_park}),
               std::invalid_argument);
}

TEST(EwmaIdlePredictor, NameMentionsGain) {
  EwmaIdlePredictorPolicy policy{kParams};
  EXPECT_EQ(policy.name(), "ewma(a=0.25)");
}

} // namespace
} // namespace spindown::adapt
