#include "util/cli.h"

#include <gtest/gtest.h>

#include <array>

namespace spindown::util {
namespace {

Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Cli{static_cast<int>(argv.size()), argv.data()};
}

TEST(Cli, FlagPresence) {
  const auto cli = make_cli({"prog", "--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, KeyValueSpaceForm) {
  const auto cli = make_cli({"prog", "--seed", "42"});
  EXPECT_EQ(cli.get_int("seed", 0), 42);
}

TEST(Cli, KeyValueEqualsForm) {
  const auto cli = make_cli({"prog", "--rate=2.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
}

TEST(Cli, Fallbacks) {
  const auto cli = make_cli({"prog"});
  EXPECT_EQ(cli.get("out", "default.csv"), "default.csv");
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
}

TEST(Cli, Positionals) {
  const auto cli = make_cli({"prog", "file1", "--k", "v", "file2"});
  ASSERT_EQ(cli.positionals().size(), 2u);
  EXPECT_EQ(cli.positionals()[0], "file1");
  EXPECT_EQ(cli.positionals()[1], "file2");
}

TEST(Cli, FlagFollowedByOption) {
  const auto cli = make_cli({"prog", "--full", "--seed", "9"});
  EXPECT_TRUE(cli.has("full"));
  EXPECT_EQ(cli.get_int("seed", 0), 9);
}

TEST(Cli, ProgramName) {
  const auto cli = make_cli({"myprog"});
  EXPECT_EQ(cli.program(), "myprog");
}

TEST(Cli, GetAllCollectsRepeatedOptionsInOrder) {
  const auto cli = make_cli({"prog", "--sweep", "policy=a,b", "--seed", "3",
                             "--sweep=seed=1,2"});
  const auto sweeps = cli.get_all("sweep");
  ASSERT_EQ(sweeps.size(), 2u);
  EXPECT_EQ(sweeps[0], "policy=a,b");
  EXPECT_EQ(sweeps[1], "seed=1,2");
  // get() keeps its last-wins behavior; absent options yield empty.
  EXPECT_EQ(cli.get("sweep", ""), "seed=1,2");
  EXPECT_TRUE(cli.get_all("missing").empty());
}

} // namespace
} // namespace spindown::util
