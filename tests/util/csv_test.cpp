#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace spindown::util {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w{out};
  w.write_row({"plain", "has,comma", "has\"quote", "has\nnewline"});
  EXPECT_EQ(out.str(),
            "plain,\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvWriter, StreamableValues) {
  std::ostringstream out;
  CsvWriter w{out};
  w.row("x", 42, 2.5);
  EXPECT_EQ(out.str().substr(0, 5), "x,42,");
}

TEST(SplitCsvLine, Simple) {
  const auto fields = split_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLine, QuotedFields) {
  const auto fields =
      split_csv_line("\"has,comma\",\"has\"\"quote\"\"\",plain");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "has,comma");
  EXPECT_EQ(fields[1], "has\"quote\"");
  EXPECT_EQ(fields[2], "plain");
}

TEST(SplitCsvLine, EmptyFields) {
  const auto fields = split_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitCsvLine, ToleratesCarriageReturn) {
  const auto fields = split_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

class CsvRoundTrip : public ::testing::Test {
protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() / "spindown_csv_test.csv";
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CsvRoundTrip, WriteThenRead) {
  {
    CsvWriter w{path_};
    w.write_row({"time", "file"});
    w.write_row({"1.5", "42"});
    w.write_row({"2.5", "message, with comma"});
  }
  CsvReader r{path_};
  auto header = r.next();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ((*header)[0], "time");
  auto row1 = r.next();
  ASSERT_TRUE(row1.has_value());
  EXPECT_EQ((*row1)[1], "42");
  auto row2 = r.next();
  ASSERT_TRUE(row2.has_value());
  EXPECT_EQ((*row2)[1], "message, with comma");
  EXPECT_FALSE(r.next().has_value());
}

TEST(CsvReaderErrors, MissingFileThrows) {
  EXPECT_THROW(CsvReader{std::filesystem::path{"/nonexistent/zzz.csv"}},
               std::runtime_error);
}

TEST(CsvWriterErrors, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter{std::filesystem::path{"/nonexistent/dir/x.csv"}},
               std::runtime_error);
}

} // namespace
} // namespace spindown::util
