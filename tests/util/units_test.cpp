#include "util/units.h"

#include <gtest/gtest.h>

namespace spindown::util {
namespace {

TEST(Units, Constructors) {
  EXPECT_EQ(mb(1.0), 1'000'000ULL);
  EXPECT_EQ(gb(0.5), 500'000'000ULL);
  EXPECT_EQ(tb(2.0), 2'000'000'000'000ULL);
  // The paper's numbers.
  EXPECT_EQ(mb(188.0), 188'000'000ULL);
  EXPECT_EQ(gb(20.0), 20'000'000'000ULL);
}

TEST(FormatBytes, PicksUnit) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(mb(544.0)), "544 MB");
  EXPECT_EQ(format_bytes(gb(20.0)), "20 GB");
  EXPECT_EQ(format_bytes(tb(12.86)), "12.86 TB");
}

TEST(FormatSeconds, PicksUnit) {
  EXPECT_EQ(format_seconds(0.0085), "8.5 ms");
  EXPECT_EQ(format_seconds(53.3), "53.3 s");
  EXPECT_EQ(format_seconds(90.0), "1.5 min");
  EXPECT_EQ(format_seconds(7200.0), "2 h");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(0.850, 3), "0.85");
  EXPECT_EQ(format_double(12.0, 3), "12");
  EXPECT_EQ(format_double(0.12345, 2), "0.12");
}

TEST(Units, TimeConstants) {
  EXPECT_DOUBLE_EQ(kHour, 3600.0);
  EXPECT_DOUBLE_EQ(kDay, 86400.0);
}

TEST(Units, FormatRoundtripIsShortAndExact) {
  EXPECT_EQ(format_roundtrip(10.0), "10");
  EXPECT_EQ(format_roundtrip(0.25), "0.25");
  EXPECT_EQ(format_roundtrip(53.3), "53.3");
  // Values with no short decimal form still round-trip bit for bit.
  for (const double v : {1.0 / 3.0, 0.1, 1e-7, 123456.789012345, -0.0}) {
    const auto s = format_roundtrip(v);
    const auto back = parse_finite_double(s);
    ASSERT_TRUE(back.has_value()) << s;
    EXPECT_EQ(*back, v) << s;
  }
}

TEST(Units, ParseBytesAcceptsSiSuffixes) {
  EXPECT_EQ(parse_bytes("16g"), gb(16.0));
  EXPECT_EQ(parse_bytes("16GB"), gb(16.0));
  EXPECT_EQ(parse_bytes("0.5g"), mb(500.0));
  EXPECT_EQ(parse_bytes("512m"), mb(512.0));
  EXPECT_EQ(parse_bytes("64kb"), Bytes{64'000});
  EXPECT_EQ(parse_bytes("2t"), tb(2.0));
  EXPECT_EQ(parse_bytes("970"), Bytes{970});
  EXPECT_EQ(parse_bytes("970b"), Bytes{970});
  EXPECT_FALSE(parse_bytes("").has_value());
  EXPECT_FALSE(parse_bytes("g").has_value());
  EXPECT_FALSE(parse_bytes("16x").has_value());
  EXPECT_FALSE(parse_bytes("-4g").has_value());
  EXPECT_FALSE(parse_bytes("nan").has_value());
  EXPECT_FALSE(parse_bytes("1e30g").has_value()); // overflows Bytes
}

TEST(Units, FormatBytesSpecRoundTripsExactly) {
  EXPECT_EQ(format_bytes_spec(gb(16.0)), "16g");
  EXPECT_EQ(format_bytes_spec(mb(1500.0)), "1500m");
  EXPECT_EQ(format_bytes_spec(tb(2.0)), "2t");
  EXPECT_EQ(format_bytes_spec(Bytes{64'000}), "64k");
  EXPECT_EQ(format_bytes_spec(Bytes{1'234'567}), "1234567");
  for (const Bytes b : {Bytes{0}, Bytes{970}, mb(0.5), gb(16.0), tb(12.86),
                        Bytes{999'999'999}}) {
    const auto back = parse_bytes(format_bytes_spec(b));
    ASSERT_TRUE(back.has_value()) << format_bytes_spec(b);
    EXPECT_EQ(*back, b) << format_bytes_spec(b);
  }
}

TEST(Units, ParseFiniteDoubleIsStrict) {
  ASSERT_TRUE(parse_finite_double("3.5").has_value());
  EXPECT_DOUBLE_EQ(*parse_finite_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_finite_double("-2e3"), -2000.0);
  EXPECT_FALSE(parse_finite_double("").has_value());
  EXPECT_FALSE(parse_finite_double("abc").has_value());
  EXPECT_FALSE(parse_finite_double("3.5x").has_value());
  EXPECT_FALSE(parse_finite_double("nan").has_value());
  EXPECT_FALSE(parse_finite_double("inf").has_value());
  EXPECT_FALSE(parse_finite_double("-infinity").has_value());
  EXPECT_FALSE(parse_finite_double("1e999").has_value());
}

} // namespace
} // namespace spindown::util
