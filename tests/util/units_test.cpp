#include "util/units.h"

#include <gtest/gtest.h>

namespace spindown::util {
namespace {

TEST(Units, Constructors) {
  EXPECT_EQ(mb(1.0), 1'000'000ULL);
  EXPECT_EQ(gb(0.5), 500'000'000ULL);
  EXPECT_EQ(tb(2.0), 2'000'000'000'000ULL);
  // The paper's numbers.
  EXPECT_EQ(mb(188.0), 188'000'000ULL);
  EXPECT_EQ(gb(20.0), 20'000'000'000ULL);
}

TEST(FormatBytes, PicksUnit) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(mb(544.0)), "544 MB");
  EXPECT_EQ(format_bytes(gb(20.0)), "20 GB");
  EXPECT_EQ(format_bytes(tb(12.86)), "12.86 TB");
}

TEST(FormatSeconds, PicksUnit) {
  EXPECT_EQ(format_seconds(0.0085), "8.5 ms");
  EXPECT_EQ(format_seconds(53.3), "53.3 s");
  EXPECT_EQ(format_seconds(90.0), "1.5 min");
  EXPECT_EQ(format_seconds(7200.0), "2 h");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(0.850, 3), "0.85");
  EXPECT_EQ(format_double(12.0, 3), "12");
  EXPECT_EQ(format_double(0.12345, 2), "0.12");
}

TEST(Units, TimeConstants) {
  EXPECT_DOUBLE_EQ(kHour, 3600.0);
  EXPECT_DOUBLE_EQ(kDay, 86400.0);
}

} // namespace
} // namespace spindown::util
