#include "util/binary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "util/rng.h"

namespace spindown::util {
namespace {

TEST(BinaryHeap, EmptyBasics) {
  BinaryHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_TRUE(heap.verify_invariant());
}

TEST(BinaryHeap, PushPopOrdering) {
  BinaryHeap<int> heap;
  for (int v : {5, 1, 9, 3, 7}) heap.push(v);
  EXPECT_EQ(heap.size(), 5u);
  std::vector<int> out;
  while (!heap.empty()) out.push_back(heap.pop());
  EXPECT_EQ(out, (std::vector<int>{9, 7, 5, 3, 1}));
}

TEST(BinaryHeap, HeapifyConstruction) {
  std::vector<int> items{4, 8, 15, 16, 23, 42, 1, 0, -5};
  BinaryHeap<int> heap{items};
  EXPECT_TRUE(heap.verify_invariant());
  EXPECT_EQ(heap.top(), 42);
  std::sort(items.rbegin(), items.rend());
  for (int expected : items) EXPECT_EQ(heap.pop(), expected);
}

TEST(BinaryHeap, Duplicates) {
  BinaryHeap<int> heap{std::vector<int>{3, 3, 3, 1, 1}};
  EXPECT_EQ(heap.pop(), 3);
  EXPECT_EQ(heap.pop(), 3);
  EXPECT_EQ(heap.pop(), 3);
  EXPECT_EQ(heap.pop(), 1);
  EXPECT_EQ(heap.pop(), 1);
}

TEST(BinaryHeap, CustomComparatorMinHeap) {
  BinaryHeap<int, std::greater<>> heap{std::vector<int>{5, 1, 9}};
  EXPECT_EQ(heap.pop(), 1);
  EXPECT_EQ(heap.pop(), 5);
  EXPECT_EQ(heap.pop(), 9);
}

TEST(BinaryHeap, InterleavedPushPopKeepsInvariant) {
  Rng rng{99};
  BinaryHeap<std::uint64_t> heap;
  for (int round = 0; round < 2000; ++round) {
    if (heap.empty() || rng.uniform01() < 0.6) {
      heap.push(rng.uniform_int(0, 1000));
    } else {
      heap.pop();
    }
    ASSERT_TRUE(heap.verify_invariant()) << "round " << round;
  }
}

struct Keyed {
  double key;
  int id;
};
struct KeyedLess {
  bool operator()(const Keyed& a, const Keyed& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.id > b.id; // smaller id wins ties
  }
};

TEST(BinaryHeap, TieBreakDeterminism) {
  BinaryHeap<Keyed, KeyedLess> heap{
      std::vector<Keyed>{{1.0, 5}, {1.0, 2}, {1.0, 9}, {0.5, 1}}};
  EXPECT_EQ(heap.pop().id, 2);
  EXPECT_EQ(heap.pop().id, 5);
  EXPECT_EQ(heap.pop().id, 9);
  EXPECT_EQ(heap.pop().id, 1);
}

// Property sweep: heap sort of random arrays of several sizes must agree
// with std::sort (descending).
class HeapSortProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeapSortProperty, MatchesStdSort) {
  const std::size_t n = GetParam();
  Rng rng{1000 + n};
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng.uniform_int(0, 500);
  BinaryHeap<std::uint64_t> heap{values};
  std::sort(values.rbegin(), values.rend());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(heap.pop(), values[i]) << "index " << i << " n=" << n;
  }
  EXPECT_TRUE(heap.empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeapSortProperty,
                         ::testing::Values(1, 2, 3, 7, 10, 64, 100, 1000,
                                           4096));

// ---------------------------------------------------------------------------
// D-ary instantiations (the simulation calendar uses Arity = 4).

TEST(DaryHeap, QuaternarySortsLikeBinary) {
  Rng rng{4242};
  std::vector<std::uint64_t> values(2000);
  for (auto& v : values) v = rng.uniform_int(0, 100000);
  BinaryHeap<std::uint64_t, std::less<std::uint64_t>, 4> heap{values};
  EXPECT_TRUE(heap.verify_invariant());
  std::sort(values.rbegin(), values.rend());
  for (std::uint64_t expected : values) ASSERT_EQ(heap.pop(), expected);
  EXPECT_TRUE(heap.empty());
}

TEST(DaryHeap, QuaternaryInterleavedChurnKeepsInvariant) {
  Rng rng{77};
  BinaryHeap<std::uint64_t, std::less<std::uint64_t>, 4> heap;
  for (int round = 0; round < 2000; ++round) {
    if (heap.empty() || rng.uniform01() < 0.6) {
      heap.push(rng.uniform_int(0, 1000));
    } else {
      heap.pop();
    }
    ASSERT_TRUE(heap.verify_invariant()) << "round " << round;
  }
}

TEST(DaryHeap, QuaternaryMinHeapTieBreak) {
  BinaryHeap<Keyed, KeyedLess, 4> heap{
      std::vector<Keyed>{{1.0, 5}, {1.0, 2}, {1.0, 9}, {0.5, 1}, {1.0, 3}}};
  EXPECT_EQ(heap.pop().id, 2);
  EXPECT_EQ(heap.pop().id, 3);
  EXPECT_EQ(heap.pop().id, 5);
  EXPECT_EQ(heap.pop().id, 9);
  EXPECT_EQ(heap.pop().id, 1);
}

TEST(DaryHeap, TernarySortsToo) {
  Rng rng{9};
  std::vector<std::uint64_t> values(500);
  for (auto& v : values) v = rng.uniform_int(0, 5000);
  BinaryHeap<std::uint64_t, std::less<std::uint64_t>, 3> heap{values};
  std::sort(values.rbegin(), values.rend());
  for (std::uint64_t expected : values) ASSERT_EQ(heap.pop(), expected);
}

TEST(DaryHeap, ReserveDoesNotChangeContents) {
  BinaryHeap<std::uint64_t, std::less<std::uint64_t>, 4> heap;
  heap.push(3);
  heap.reserve(1024);
  heap.push(9);
  heap.push(1);
  EXPECT_EQ(heap.pop(), 9u);
  EXPECT_EQ(heap.pop(), 3u);
  EXPECT_EQ(heap.pop(), 1u);
}

} // namespace
} // namespace spindown::util
