#include "util/inline_function.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>

namespace spindown::util {
namespace {

using Fn = InlineFunction<void()>;

TEST(InlineFunction, DefaultIsEmpty) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  Fn g{nullptr};
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, InvokesSmallCapture) {
  int hits = 0;
  Fn f{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, SmallCapturesAreStoredInline) {
  struct Small {
    void* a;
    void* b;
    void operator()() const {}
  };
  struct Big {
    std::array<char, 200> blob;
    void operator()() const {}
  };
  EXPECT_TRUE(Fn::stores_inline<Small>());
  EXPECT_FALSE(Fn::stores_inline<Big>());
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapAndStillWorks) {
  std::array<int, 64> payload{};
  payload[0] = 7;
  payload[63] = 42;
  int sum = 0;
  Fn f{[payload, &sum] { sum = payload[0] + payload[63]; }};
  f();
  EXPECT_EQ(sum, 49);
}

TEST(InlineFunction, MoveTransfersTarget) {
  int hits = 0;
  Fn a{[&hits] { ++hits; }};
  Fn b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a)); // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, MoveAssignReplacesTarget) {
  int first = 0;
  int second = 0;
  Fn a{[&first] { ++first; }};
  Fn b{[&second] { ++second; }};
  a = std::move(b);
  a();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InlineFunction, DestructionReleasesCaptures) {
  auto token = std::make_shared<int>(5);
  EXPECT_EQ(token.use_count(), 1);
  {
    Fn f{[token] { (void)*token; }};
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFunction, ResetReleasesCapturesAndEmpties) {
  auto token = std::make_shared<int>(5);
  Fn f{[token] { (void)*token; }};
  token.reset();
  f.reset();
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, HeapTargetMoveStealsPointer) {
  auto token = std::make_shared<int>(1);
  std::array<char, 128> pad{};
  Fn a{[token, pad] { (void)pad; }};
  const long count_before = token.use_count();
  Fn b{std::move(a)};
  // Stealing the heap pointer must not copy (or destroy) the capture.
  EXPECT_EQ(token.use_count(), count_before);
  b();
}

TEST(InlineFunction, ArgumentsAndReturnValues) {
  InlineFunction<int(int, int)> add{[](int a, int b) { return a + b; }};
  EXPECT_EQ(add(2, 3), 5);

  std::string log;
  InlineFunction<void(const std::string&)> append{
      [&log](const std::string& s) { log += s; }};
  append("ab");
  append("cd");
  EXPECT_EQ(log, "abcd");
}

TEST(InlineFunction, MutableCallableKeepsState) {
  InlineFunction<int()> counter{[n = 0]() mutable { return ++n; }};
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

} // namespace
} // namespace spindown::util
