// Tests for util/spsc_ring.h — the lock-free SPSC ring under the fleet
// pipeline (sys/fleet.cpp).  The boundary tests run single-threaded (the
// ring's invariants are sequential facts); the stress tests run a real
// producer/consumer pair and are part of the TSan CI job, which is where
// the acquire/release protocol is actually audited.

#include "util/spsc_ring.h"

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace spindown::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>{1}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{2}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{3}.capacity(), 4u);
  EXPECT_EQ(SpscRing<int>{16}.capacity(), 16u);
  EXPECT_EQ(SpscRing<int>{17}.capacity(), 32u);
}

TEST(SpscRing, PushPopRoundTripsInFifoOrder) {
  SpscRing<int> ring{4};
  for (int v : {10, 20, 30}) {
    int value = v;
    EXPECT_TRUE(ring.try_push(value));
  }
  EXPECT_EQ(ring.size(), 3u);
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 20);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 30);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TryPopOnEmptyFailsWithoutTouchingOut) {
  SpscRing<int> ring{4};
  int out = 42;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, 42);
}

TEST(SpscRing, TryPushOnFullFailsWithoutConsumingValue) {
  SpscRing<std::unique_ptr<int>> ring{2};
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_TRUE(ring.try_push(b));
  EXPECT_EQ(a, nullptr); // moved from on success
  EXPECT_FALSE(ring.try_push(c));
  ASSERT_NE(c, nullptr); // untouched on failure
  EXPECT_EQ(*c, 3);
  EXPECT_EQ(ring.size(), ring.capacity());
}

TEST(SpscRing, WrapsAroundManyTimesWithoutLoss) {
  SpscRing<std::uint64_t> ring{4}; // capacity 4; cursors wrap every lap
  std::uint64_t next_out = 0;
  for (std::uint64_t v = 0; v < 10'000; ++v) {
    std::uint64_t value = v;
    ASSERT_TRUE(ring.try_push(value));
    if ((v & 1) == 0) continue; // drain two at a time, half a lap behind
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, next_out++);
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, next_out++);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, AlternatingFillDrainAtFullBoundary) {
  SpscRing<int> ring{4};
  for (int lap = 0; lap < 100; ++lap) {
    for (int v = 0; v < 4; ++v) {
      int value = lap * 4 + v;
      ASSERT_TRUE(ring.try_push(value));
    }
    int overflow = -1;
    ASSERT_FALSE(ring.try_push(overflow));
    for (int v = 0; v < 4; ++v) {
      int out = -1;
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, lap * 4 + v);
    }
    ASSERT_TRUE(ring.empty());
  }
}

TEST(SpscRing, BlockingPushReturnsFalseOnceClosed) {
  SpscRing<int> ring{2};
  ring.close();
  EXPECT_FALSE(ring.push(7));
}

TEST(SpscRing, BlockingPopDrainsElementsPushedBeforeClose) {
  SpscRing<int> ring{4};
  int value = 5;
  ASSERT_TRUE(ring.try_push(value));
  ring.close();
  int out = 0;
  EXPECT_TRUE(ring.pop(out)); // pre-close elements still delivered
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(ring.pop(out)); // drained + closed
}

TEST(SpscRing, CloseIsIdempotent) {
  SpscRing<int> ring{2};
  ring.close();
  ring.close();
  EXPECT_TRUE(ring.closed());
}

// Cross-thread stress: a dedicated producer and consumer hammer a small
// ring so the cursors wrap thousands of times and both full and empty
// boundaries are hit constantly.  Checks FIFO order and a value checksum;
// under -DSPINDOWN_TSAN this is the data-race audit of the
// acquire/release protocol.
TEST(SpscRingStress, ProducerConsumerFifoUnderContention) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring{8};
  std::uint64_t sum = 0;
  std::uint64_t received = 0;
  bool ordered = true;
  std::thread consumer{[&] {
    std::uint64_t expect = 0;
    std::uint64_t out = 0;
    while (ring.pop(out)) {
      ordered = ordered && out == expect;
      ++expect;
      sum += out;
      ++received;
    }
  }};
  for (std::uint64_t v = 0; v < kCount; ++v) {
    ASSERT_TRUE(ring.push(v));
  }
  ring.close();
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(received, kCount);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

// Shutdown under load: close() arrives from the producer side while the
// consumer is mid-stream.  The consumer must observe every pre-close
// element and then terminate — no hang, no loss, no spurious extras.
TEST(SpscRingStress, CloseMidStreamDeliversExactlyThePushedPrefix) {
  constexpr std::uint64_t kCount = 50'000;
  SpscRing<std::uint64_t> ring{16};
  std::uint64_t received = 0;
  bool ordered = true;
  std::thread consumer{[&] {
    std::uint64_t out = 0;
    std::uint64_t expect = 0;
    while (ring.pop(out)) {
      ordered = ordered && out == expect;
      ++expect;
      ++received;
    }
  }};
  std::uint64_t pushed = 0;
  for (std::uint64_t v = 0; v < kCount; ++v) {
    if (!ring.push(v)) break;
    ++pushed;
  }
  ring.close();
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(received, pushed);
  EXPECT_EQ(pushed, kCount); // nothing closed the ring early
}

// Two rings in the fleet's recycle topology: `full` carries pointers one
// way, `free` returns them.  The pointer payloads must never be observed
// torn or duplicated — each arena is owned by exactly one side at a time.
TEST(SpscRingStress, RecycleLoopNeverDuplicatesAnArena) {
  constexpr int kArenas = 4;
  constexpr std::uint64_t kLaps = 100'000;
  SpscRing<int*> full{kArenas};
  SpscRing<int*> free_ring{kArenas};
  std::vector<int> arenas(kArenas, 0);
  for (auto& arena : arenas) {
    int* p = &arena;
    ASSERT_TRUE(free_ring.try_push(p));
  }
  bool valid = true;
  std::thread worker{[&] {
    int* arena = nullptr;
    while (full.pop(arena)) {
      valid = valid && arena >= arenas.data() &&
              arena < arenas.data() + kArenas;
      *arena += 1; // consumer-side write: TSan sees it if ownership races
      // Recycle with try_push, exactly like the fleet worker: capacity ==
      // arena count so it cannot be full, and unlike blocking push it
      // still recycles after close() so the pre-close tail in `full`
      // keeps draining.
      free_ring.try_push(arena);
    }
  }};
  for (std::uint64_t lap = 0; lap < kLaps; ++lap) {
    int* arena = nullptr;
    ASSERT_TRUE(free_ring.pop(arena));
    ASSERT_TRUE(full.push(arena));
  }
  full.close();
  free_ring.close();
  worker.join();
  EXPECT_TRUE(valid);
  // Every lap incremented exactly one arena exactly once.
  const std::uint64_t total =
      std::accumulate(arenas.begin(), arenas.end(), std::uint64_t{0});
  EXPECT_EQ(total, kLaps);
}

} // namespace
} // namespace spindown::util
