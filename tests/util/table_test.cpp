#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace spindown::util {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t{{"name", "value"}};
  t.row("x", 1);
  t.row("longer", 22);
  std::ostringstream out;
  t.print(out);
  const auto text = out.str();
  // Header, rule, two rows.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Every line has the same column start for "value"/numbers: the header
  // and first row align at the same offset.
  std::istringstream lines{text};
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("value"), row1.find("1"));
  EXPECT_EQ(header.find("value"), row2.find("22"));
}

TEST(TablePrinter, PadsMissingCellsAndDropsExtras) {
  TablePrinter t{{"a", "b"}};
  t.add_row({"only-one"});
  t.add_row({"x", "y", "dropped"});
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str().find("dropped"), std::string::npos);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(TablePrinter, EmptyTableStillPrintsHeader) {
  TablePrinter t{{"col"}};
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("col"), std::string::npos);
}

TEST(TablePrinter, MixedTypesViaRow) {
  TablePrinter t{{"s", "i", "d"}};
  t.row(std::string{"str"}, 42, 2.5);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("str"), std::string::npos);
  EXPECT_NE(out.str().find("42"), std::string::npos);
  EXPECT_NE(out.str().find("2.5"), std::string::npos);
}

} // namespace
} // namespace spindown::util
