#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace spindown::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng{7};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng{11};
  std::array<int, 10> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_LE(v, 9u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5u);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{13};
  const double rate = 4.0;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / kN, 1.0 / rate, 0.005);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng{1};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng{17};
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng{19};
  const double mean = 3.5;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / kN, mean, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng{23};
  const double mean = 500.0;
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / kN, mean, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng{27};
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{29};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(std::span{shuffled});
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.split();
  // The child stream should differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(AliasTable, MatchesWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasTable table{weights};
  Rng rng{37};
  std::array<int, 4> counts{};
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[table.sample(rng)];
  const double total = 10.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kN, weights[i] / total, 0.01)
        << "bucket " << i;
  }
}

TEST(AliasTable, SingleBucket) {
  const std::vector<double> weights{42.0};
  AliasTable table{weights};
  Rng rng{41};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  AliasTable table{weights};
  Rng rng{43};
  for (int i = 0; i < 10000; ++i) {
    const auto s = table.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, RejectsInvalidWeights) {
  const std::vector<double> negative{-1.0, 1.0};
  const std::vector<double> all_zero{0.0, 0.0};
  EXPECT_THROW(AliasTable{negative}, std::invalid_argument);
  EXPECT_THROW(AliasTable{all_zero}, std::invalid_argument);
}

TEST(AliasTable, HighlySkewedZipfLike) {
  std::vector<double> weights(1000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.2);
  }
  AliasTable table{weights};
  Rng rng{47};
  std::vector<int> counts(weights.size(), 0);
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) ++counts[table.sample(rng)];
  // Rank 1 should dominate and sampling frequency should roughly track pmf.
  double wsum = 0.0;
  for (double w : weights) wsum += w;
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, weights[0] / wsum, 0.01);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

} // namespace
} // namespace spindown::util
