#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace spindown::util {
namespace {

TEST(GeneralizedHarmonic, KnownValues) {
  // H_1^a = 1 for any a.
  EXPECT_DOUBLE_EQ(generalized_harmonic(1, 0.5), 1.0);
  // H_3^1 = 1 + 1/2 + 1/3.
  EXPECT_NEAR(generalized_harmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  // a = 0: every term is 1.
  EXPECT_DOUBLE_EQ(generalized_harmonic(5, 0.0), 5.0);
}

TEST(GeneralizedHarmonic, MonotoneInN) {
  double prev = 0.0;
  for (std::size_t n = 1; n <= 100; n *= 10) {
    const double h = generalized_harmonic(n, 0.44);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(PaperZipfTheta, MatchesPublishedConstant) {
  // theta = log 0.6 / log 0.4 ~= 0.5575.
  EXPECT_NEAR(paper_zipf_theta(), std::log(0.6) / std::log(0.4), 1e-15);
  EXPECT_NEAR(paper_zipf_theta(), 0.5575, 0.001);
  // The paper's popularity exponent 1 - theta ~= 0.4425.
  EXPECT_NEAR(1.0 - paper_zipf_theta(), 0.4425, 0.001);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  const std::vector<double> y{1, 3, 5, 7, 9}; // y = 2x + 1
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillCloseAndR2Reasonable) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 2.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(LinearFit, DegenerateVerticalDataHasZeroSlope) {
  const std::vector<double> x{2, 2, 2};
  const std::vector<double> y{1, 2, 3};
  const auto fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(LogLogFit, PowerLawRecovered) {
  // y = 5 * x^(-1.3): slope in log-log space is -1.3.
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(5.0 * std::pow(i, -1.3));
  }
  const auto fit = log_log_fit(x, y);
  EXPECT_NEAR(fit.slope, -1.3, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LogLogFit, SkipsNonPositivePoints) {
  const std::vector<double> x{0.0, 1.0, 10.0, 100.0};
  const std::vector<double> y{5.0, 1.0, 0.1, 0.01};
  const auto fit = log_log_fit(x, y); // first point unusable
  EXPECT_NEAR(fit.slope, -1.0, 1e-9);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(Percentile, InterpolatesAndClamps) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 105), 40.0);
}

} // namespace
} // namespace spindown::util
