#include "cache/fifo.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace spindown::cache {
namespace {

TEST(FifoCache, MissThenHit) {
  FifoCache c{100};
  EXPECT_FALSE(c.access(1, 40));
  EXPECT_TRUE(c.access(1, 40));
}

TEST(FifoCache, EvictsInInsertionOrderIgnoringHits) {
  FifoCache c{100};
  c.access(1, 40);
  c.access(2, 40);
  c.access(1, 40); // a hit must NOT promote under FIFO
  c.access(3, 40); // evicts 1 (the oldest insertion), not 2
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(FifoCache, DiffersFromLruExactlyOnPromotion) {
  // The same access pattern as LruCache.EvictsLeastRecentlyUsed keeps 1
  // under LRU but evicts it under FIFO — the defining behavioural split.
  FifoCache c{100};
  c.access(1, 40);
  c.access(2, 40);
  c.access(1, 40);
  c.access(3, 40);
  EXPECT_FALSE(c.contains(1));
}

TEST(FifoCache, OversizedNeverAdmitted) {
  FifoCache c{50};
  EXPECT_FALSE(c.access(9, 100));
  EXPECT_FALSE(c.contains(9));
}

TEST(FifoCache, CapacityInvariant) {
  FifoCache c{500};
  util::Rng rng{11};
  for (int i = 0; i < 3000; ++i) {
    c.access(static_cast<workload::FileId>(rng.uniform_int(0, 49)),
             rng.uniform_int(1, 200));
    ASSERT_LE(c.used(), 500u);
  }
}

TEST(FifoCache, StatsAccounting) {
  FifoCache c{80};
  c.access(1, 40);
  c.access(2, 40);
  c.access(3, 40); // evicts 1
  c.access(1, 40); // miss again, evicts 2
  EXPECT_EQ(c.stats().misses, 4u);
  EXPECT_EQ(c.stats().evictions, 2u);
  EXPECT_EQ(c.stats().hits, 0u);
}

} // namespace
} // namespace spindown::cache
