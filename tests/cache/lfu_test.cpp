#include "cache/lfu.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace spindown::cache {
namespace {

TEST(LfuCache, MissThenHitTracksFrequency) {
  LfuCache c{100};
  EXPECT_FALSE(c.access(1, 40));
  EXPECT_TRUE(c.access(1, 40));
  EXPECT_TRUE(c.access(1, 40));
  EXPECT_EQ(c.frequency(1), 3u);
  EXPECT_EQ(c.frequency(99), 0u);
}

TEST(LfuCache, EvictsLeastFrequentlyUsed) {
  LfuCache c{100};
  c.access(1, 40);
  c.access(1, 40);
  c.access(1, 40); // freq 3
  c.access(2, 40); // freq 1
  c.access(3, 40); // evicts 2 (lowest frequency)
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(LfuCache, TieBrokenByRecency) {
  LfuCache c{100};
  c.access(1, 40); // freq 1, older
  c.access(2, 40); // freq 1, newer
  c.access(3, 40); // tie at freq 1: evict 1 (least recently touched)
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(LfuCache, FrequentItemSurvivesScan) {
  // The classic LFU advantage: a one-pass scan of cold files must not evict
  // the hot item (it would under LRU).
  LfuCache c{3 * 10};
  for (int i = 0; i < 5; ++i) c.access(100, 10);
  for (workload::FileId f = 0; f < 50; ++f) c.access(f, 10);
  EXPECT_TRUE(c.contains(100));
}

TEST(LfuCache, OversizedNeverAdmitted) {
  LfuCache c{50};
  EXPECT_FALSE(c.access(9, 100));
  EXPECT_FALSE(c.contains(9));
  EXPECT_EQ(c.entries(), 0u);
}

TEST(LfuCache, CapacityInvariantUnderChurn) {
  LfuCache c{700};
  util::Rng rng{13};
  for (int i = 0; i < 5000; ++i) {
    c.access(static_cast<workload::FileId>(rng.uniform_int(0, 79)),
             rng.uniform_int(1, 300));
    ASSERT_LE(c.used(), 700u);
  }
  // Internal bookkeeping agrees.
  EXPECT_GT(c.entries(), 0u);
}

} // namespace
} // namespace spindown::cache
