#include "cache/lru.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace spindown::cache {
namespace {

TEST(LruCache, MissThenHit) {
  LruCache c{100};
  EXPECT_FALSE(c.access(1, 40));
  EXPECT_TRUE(c.access(1, 40));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(c.stats().hit_ratio(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c{100};
  c.access(1, 40);
  c.access(2, 40);
  c.access(1, 40);      // touch 1: now 2 is the LRU entry
  c.access(3, 40);      // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(LruCache, EvictsMultipleForLargeInsert) {
  LruCache c{100};
  c.access(1, 30);
  c.access(2, 30);
  c.access(3, 30);
  c.access(4, 90); // must evict all three
  EXPECT_TRUE(c.contains(4));
  EXPECT_EQ(c.entries(), 1u);
  EXPECT_EQ(c.stats().evictions, 3u);
  EXPECT_EQ(c.used(), 90u);
}

TEST(LruCache, OversizedFileNeverAdmitted) {
  LruCache c{100};
  EXPECT_FALSE(c.access(1, 200));
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.used(), 0u);
  EXPECT_FALSE(c.access(1, 200)); // still a miss
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(LruCache, ExactFitAdmitted) {
  LruCache c{100};
  EXPECT_FALSE(c.access(1, 100));
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.used(), 100u);
}

TEST(LruCache, UsedNeverExceedsCapacity) {
  LruCache c{1000};
  util::Rng rng{5};
  for (int i = 0; i < 5000; ++i) {
    c.access(static_cast<workload::FileId>(rng.uniform_int(0, 99)),
             rng.uniform_int(1, 400));
    ASSERT_LE(c.used(), 1000u);
  }
}

TEST(LruCache, HitRatioGrowsWithSkew) {
  // A hot working set comfortably smaller than capacity should produce a
  // high hit ratio even with cold-tail churn.
  LruCache c{25 * 50};
  util::Rng rng{7};
  for (int i = 0; i < 20000; ++i) {
    // 90% of accesses to files 0..9, the rest to a cold tail.
    const auto id = rng.uniform01() < 0.9
                        ? rng.uniform_int(0, 9)
                        : rng.uniform_int(10, 9999);
    c.access(static_cast<workload::FileId>(id), 50);
  }
  EXPECT_GT(c.stats().hit_ratio(), 0.8);
}

TEST(LruCache, ZeroByteFilesAreFine) {
  LruCache c{10};
  EXPECT_FALSE(c.access(1, 0));
  EXPECT_TRUE(c.access(1, 0));
  EXPECT_EQ(c.used(), 0u);
}

} // namespace
} // namespace spindown::cache
