#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/distributions.h"
#include "workload/stream.h"

namespace spindown::workload {
namespace {

TEST(PoissonArrivals, MatchesPoissonProcessDrawForDraw) {
  // The interface must subsume the seed path bit-exactly: same rng, same
  // arrival sequence.
  PoissonArrivals a{3.5};
  PoissonProcess p{3.5};
  util::Rng ra{42}, rp{42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(a.next_arrival(ra), p.next_arrival(rp));
  }
}

TEST(PoissonArrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonArrivals{0.0}, std::invalid_argument);
  EXPECT_THROW(PoissonArrivals{-1.0}, std::invalid_argument);
}

TEST(PiecewiseRateArrivals, ValidatesSegments) {
  EXPECT_THROW(PiecewiseRateArrivals{{}}, std::invalid_argument);
  EXPECT_THROW((PiecewiseRateArrivals{{{5.0, 1.0}}}), std::invalid_argument);
  EXPECT_THROW((PiecewiseRateArrivals{{{0.0, -1.0}}}), std::invalid_argument);
  EXPECT_THROW((PiecewiseRateArrivals{{{0.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}}}),
               std::invalid_argument);
  // Trailing zero rate without a period would emit nothing ever again.
  EXPECT_THROW((PiecewiseRateArrivals{{{0.0, 1.0}, {10.0, 0.0}}}),
               std::invalid_argument);
  // ... but is fine with a period (the rate wraps back up).
  EXPECT_NO_THROW((PiecewiseRateArrivals{{{0.0, 1.0}, {10.0, 0.0}}, 20.0}));
  // Segment starts must fit inside the period.
  EXPECT_THROW((PiecewiseRateArrivals{{{0.0, 1.0}, {30.0, 2.0}}, 20.0}),
               std::invalid_argument);
}

TEST(PiecewiseRateArrivals, RateAtFollowsSegmentsAndWraps) {
  PiecewiseRateArrivals p{{{0.0, 4.0}, {100.0, 1.0}, {150.0, 0.5}}, 200.0};
  EXPECT_DOUBLE_EQ(p.rate_at(0.0), 4.0);
  EXPECT_DOUBLE_EQ(p.rate_at(99.9), 4.0);
  EXPECT_DOUBLE_EQ(p.rate_at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(p.rate_at(175.0), 0.5);
  EXPECT_DOUBLE_EQ(p.rate_at(225.0), 4.0);  // wrapped
  EXPECT_DOUBLE_EQ(p.rate_at(399.0), 0.5);  // wrapped
  EXPECT_DOUBLE_EQ(p.peak_rate(), 4.0);
}

TEST(PiecewiseRateArrivals, ThinningReproducesSegmentRates) {
  // Two segments, no period: empirical counts per segment must match the
  // rate function (4-sigma tolerance).
  PiecewiseRateArrivals p{{{0.0, 50.0}, {100.0, 10.0}}};
  util::Rng rng{7};
  std::uint64_t first = 0, second = 0;
  for (;;) {
    const double t = p.next_arrival(rng);
    if (t >= 200.0) break;
    if (t < 100.0) {
      ++first;
    } else {
      ++second;
    }
  }
  EXPECT_NEAR(static_cast<double>(first), 5000.0, 4.0 * std::sqrt(5000.0));
  EXPECT_NEAR(static_cast<double>(second), 1000.0, 4.0 * std::sqrt(1000.0));
}

TEST(PiecewiseRateArrivals, PeriodicZeroSegmentIsSilent) {
  // Rate 20 in the first half of each cycle, 0 in the second: no arrival
  // may land in a silent half, and active halves carry the full rate.
  PiecewiseRateArrivals p{{{0.0, 20.0}, {100.0, 0.0}}, 200.0};
  util::Rng rng{9};
  std::uint64_t active = 0;
  for (;;) {
    const double t = p.next_arrival(rng);
    if (t >= 2000.0) break;
    EXPECT_LT(std::fmod(t, 200.0), 100.0);
    ++active;
  }
  // 10 cycles x 100 s x rate 20 = 20000 expected.
  EXPECT_NEAR(static_cast<double>(active), 20000.0, 4.0 * std::sqrt(20000.0));
}

TEST(PiecewiseRateArrivals, StrictlyIncreasingAndDeterministic) {
  PiecewiseRateArrivals a{{{0.0, 5.0}, {50.0, 1.0}}, 100.0};
  PiecewiseRateArrivals b{{{0.0, 5.0}, {50.0, 1.0}}, 100.0};
  util::Rng ra{21}, rb{21};
  double prev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double t = a.next_arrival(ra);
    EXPECT_GT(t, prev);
    prev = t;
    EXPECT_DOUBLE_EQ(t, b.next_arrival(rb));
  }
}

TEST(MmppArrivals, ValidatesParams) {
  MmppParams zero;
  zero.rate = {0.0, 0.0};
  EXPECT_THROW(MmppArrivals{zero}, std::invalid_argument);
  MmppParams bad_dwell;
  bad_dwell.mean_dwell = {0.0, 10.0};
  EXPECT_THROW(MmppArrivals{bad_dwell}, std::invalid_argument);
}

TEST(MmppArrivals, LongRunRateMatchesDwellWeightedMixture) {
  MmppParams params;
  params.rate = {10.0, 1.0};
  params.mean_dwell = {100.0, 100.0};
  MmppArrivals p{params};
  util::Rng rng{5};
  const double horizon = 40000.0;
  std::uint64_t n = 0;
  while (p.next_arrival(rng) < horizon) ++n;
  const double expected = horizon * (10.0 + 1.0) / 2.0; // equal dwell shares
  // MMPP counts are over-dispersed vs. Poisson; allow a generous band.
  EXPECT_NEAR(static_cast<double>(n), expected, 0.05 * expected);
}

TEST(MmppArrivals, DwellTimesAverageToTheConfiguredMeans) {
  MmppParams params;
  params.rate = {30.0, 0.1};
  params.mean_dwell = {50.0, 150.0};
  MmppArrivals p{params};
  util::Rng rng{15};
  const double horizon = 100000.0;
  while (p.next_arrival(rng) < horizon) {
  }
  // Alternating visits: mean dwell over the run is (d0 + d1) / 2.
  const double mean_dwell =
      p.now() / static_cast<double>(std::max<std::uint64_t>(1, p.switches()));
  EXPECT_NEAR(mean_dwell, 100.0, 12.0);
  // Both states were actually visited, many times.
  EXPECT_GT(p.switches(), 500u);
}

TEST(MmppArrivals, SilentStateEmitsNothing) {
  // rate[1] = 0: every arrival must occur while the process is in state 0
  // (the state after next_arrival() returns is the state the arrival was
  // emitted in).  The long-run count halves vs. always-on; MMPP counts are
  // strongly over-dispersed (the ON-time share itself fluctuates), so the
  // band is a loose sanity check, not the structural assertion.
  MmppParams params;
  params.rate = {20.0, 0.0};
  params.mean_dwell = {50.0, 50.0};
  MmppArrivals p{params};
  util::Rng rng{17};
  std::uint64_t n = 0;
  while (p.next_arrival(rng) < 20000.0) {
    ASSERT_EQ(p.state(), 0);
    ++n;
  }
  EXPECT_NEAR(static_cast<double>(n), 200000.0, 0.25 * 200000.0);
}

TEST(ArrivalZipfStream, PoissonPathMatchesPoissonZipfStream) {
  std::vector<FileInfo> files(6);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files[i].id = static_cast<FileId>(i);
    files[i].size = 1000 * (i + 1);
    files[i].popularity = 1.0 / 6.0;
  }
  const FileCatalog cat{files};
  ArrivalZipfStream general{cat, std::make_unique<PoissonArrivals>(2.0), 500.0,
                            util::Rng{33}};
  PoissonZipfStream seedlike{cat, 2.0, 500.0, util::Rng{33}};
  for (;;) {
    const auto a = general.next();
    const auto b = seedlike.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_DOUBLE_EQ(a->arrival, b->arrival);
    EXPECT_EQ(a->file, b->file);
    EXPECT_EQ(a->id, b->id);
  }
}

TEST(ArrivalZipfStream, RejectsNullProcessAndEmptyCatalog) {
  std::vector<FileInfo> files(1);
  files[0].id = 0;
  files[0].size = 100;
  files[0].popularity = 1.0;
  const FileCatalog cat{files};
  EXPECT_THROW((ArrivalZipfStream{cat, nullptr, 10.0, util::Rng{1}}),
               std::invalid_argument);
  const FileCatalog empty{std::vector<FileInfo>{}};
  EXPECT_THROW((ArrivalZipfStream{empty, std::make_unique<PoissonArrivals>(1.0),
                                  10.0, util::Rng{1}}),
               std::invalid_argument);
}

} // namespace
} // namespace spindown::workload
