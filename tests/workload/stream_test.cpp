#include "workload/stream.h"

#include <gtest/gtest.h>

#include <map>

#include "util/units.h"
#include "workload/catalog.h"

namespace spindown::workload {
namespace {

FileCatalog skewed_catalog() {
  std::vector<FileInfo> files{
      {0, util::mb(1.0), 0.7},
      {1, util::mb(2.0), 0.2},
      {2, util::mb(3.0), 0.1},
  };
  return FileCatalog{files};
}

TEST(PoissonZipfStream, ArrivalsAreOrderedAndBounded) {
  const auto cat = skewed_catalog();
  PoissonZipfStream stream{cat, 5.0, 100.0, util::Rng{1}};
  double prev = 0.0;
  std::uint64_t expected_id = 0;
  while (auto r = stream.next()) {
    EXPECT_GE(r->arrival, prev);
    EXPECT_LT(r->arrival, 100.0);
    EXPECT_EQ(r->id, expected_id++);
    EXPECT_LT(r->file, 3u);
    prev = r->arrival;
  }
  EXPECT_FALSE(stream.next().has_value()); // exhausted stays exhausted
}

TEST(PoissonZipfStream, RequestCountNearRateTimesHorizon) {
  const auto cat = skewed_catalog();
  PoissonZipfStream stream{cat, 5.0, 2000.0, util::Rng{2}};
  std::size_t count = 0;
  while (stream.next()) ++count;
  EXPECT_NEAR(static_cast<double>(count), 10000.0, 350.0); // ~3 sigma
}

TEST(PoissonZipfStream, FileChoiceFollowsPopularity) {
  const auto cat = skewed_catalog();
  PoissonZipfStream stream{cat, 50.0, 2000.0, util::Rng{3}};
  std::map<FileId, int> counts;
  int total = 0;
  while (auto r = stream.next()) {
    ++counts[r->file];
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / total, 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / total, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / total, 0.1, 0.02);
}

TEST(PoissonZipfStream, DeterministicGivenSeed) {
  const auto cat = skewed_catalog();
  PoissonZipfStream a{cat, 5.0, 50.0, util::Rng{42}};
  PoissonZipfStream b{cat, 5.0, 50.0, util::Rng{42}};
  while (true) {
    auto ra = a.next();
    auto rb = b.next();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra) break;
    EXPECT_DOUBLE_EQ(ra->arrival, rb->arrival);
    EXPECT_EQ(ra->file, rb->file);
  }
}

TEST(PoissonZipfStream, EmptyCatalogThrows) {
  const FileCatalog empty;
  EXPECT_THROW((PoissonZipfStream{empty, 1.0, 10.0, util::Rng{1}}),
               std::invalid_argument);
}

TEST(TraceStream, ReplaysVerbatim) {
  const Trace trace{skewed_catalog(), {{1.0, 2}, {2.0, 0}, {3.5, 1}}};
  TraceStream stream{trace};
  auto r0 = stream.next();
  ASSERT_TRUE(r0.has_value());
  EXPECT_DOUBLE_EQ(r0->arrival, 1.0);
  EXPECT_EQ(r0->file, 2u);
  EXPECT_EQ(r0->id, 0u);
  auto r1 = stream.next();
  EXPECT_EQ(r1->file, 0u);
  auto r2 = stream.next();
  EXPECT_EQ(r2->file, 1u);
  EXPECT_FALSE(stream.next().has_value());
}

TEST(TraceStream, EmptyTrace) {
  const Trace trace{skewed_catalog(), {}};
  TraceStream stream{trace};
  EXPECT_FALSE(stream.next().has_value());
}

} // namespace
} // namespace spindown::workload
