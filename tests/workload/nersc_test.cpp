#include "workload/nersc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.h"
#include "workload/trace.h"

namespace spindown::workload {
namespace {

// The full-size synthesis is moderately expensive; build it once and check
// every published statistic against it (§5.1 of the paper).
class NerscTraceFixture : public ::testing::Test {
protected:
  static const Trace& trace() {
    static const Trace t = synthesize_nersc(NerscSpec::paper());
    return t;
  }
  static const TraceStats& stats() {
    static const TraceStats s = analyze(trace());
    return s;
  }
};

TEST_F(NerscTraceFixture, RequestAndFileCounts) {
  // Paper: 88,631 distinct files in 115,832 read requests.
  EXPECT_EQ(stats().requests, 115'832u);
  EXPECT_EQ(stats().distinct_files, 88'631u);
}

TEST_F(NerscTraceFixture, ThirtyDayDurationAndArrivalRate) {
  // Paper: average arrival rate 0.044683 requests/second over 30 days.
  EXPECT_NEAR(stats().duration_s, 30.0 * util::kDay, 1.0);
  EXPECT_NEAR(stats().arrival_rate, 0.044683, 0.0005);
}

TEST_F(NerscTraceFixture, MeanAccessedSizeNear544MB) {
  // Paper: mean size of accessed files 544 MB (7.56 s at 72 MB/s).
  EXPECT_NEAR(stats().mean_accessed_bytes, 544e6, 544e6 * 0.10);
}

TEST_F(NerscTraceFixture, MinimumStorageNear95Disks) {
  // Paper: "The minimum space required for storing all the requested files
  // is 95 disks" (500 GB each).
  const auto disks = stats().min_disks(util::gb(500.0));
  EXPECT_GE(disks, 85u);
  EXPECT_LE(disks, 105u);
}

TEST_F(NerscTraceFixture, SizeHistogramIsLogLogLinear) {
  // Paper: "the distribution of file sizes is closely related to a Zipf
  // distribution because the proportion decreases almost linearly in the
  // log-log scale."
  EXPECT_LT(stats().size_loglog_fit.slope, 0.0);
  EXPECT_GT(stats().size_loglog_fit.r2, 0.7);
}

TEST_F(NerscTraceFixture, NoSizeFrequencyCorrelation) {
  // Paper: "no significant relationship can be observed between the file
  // size and its access frequency."
  EXPECT_LT(std::abs(stats().size_frequency_correlation), 0.05);
}

TEST_F(NerscTraceFixture, ContainsSameSizeBatches) {
  // §3.2's phenomenon: bursts of similar-size files close together in time.
  // Scan for windows of >= 4 requests within 10 s whose sizes fall in a
  // narrow band (same log bin width as the synthesizer).
  const auto& records = trace().records();
  const auto& cat = trace().catalog();
  std::size_t batchy_windows = 0;
  for (std::size_t i = 0; i + 4 < records.size(); ++i) {
    if (records[i + 3].time - records[i].time > 10.0) continue;
    const double s0 = static_cast<double>(cat.by_id(records[i].file).size);
    bool similar = true;
    for (std::size_t j = i + 1; j < i + 4; ++j) {
      const double sj = static_cast<double>(cat.by_id(records[j].file).size);
      if (sj < s0 / 1.2 || sj > s0 * 1.2) {
        similar = false;
        break;
      }
    }
    if (similar) ++batchy_windows;
  }
  EXPECT_GT(batchy_windows, 100u);
}

TEST(NerscSynth, DeterministicGivenSeed) {
  NerscSpec spec;
  spec.n_files = 500;
  spec.n_requests = 800;
  spec.duration_s = 10000.0;
  const auto a = synthesize_nersc(spec);
  const auto b = synthesize_nersc(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].time, b.records()[i].time);
    EXPECT_EQ(a.records()[i].file, b.records()[i].file);
  }
}

TEST(NerscSynth, SeedChangesTrace) {
  NerscSpec spec;
  spec.n_files = 500;
  spec.n_requests = 800;
  spec.duration_s = 10000.0;
  const auto a = synthesize_nersc(spec);
  spec.seed += 1;
  const auto b = synthesize_nersc(spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a.records()[i].file != b.records()[i].file;
  }
  EXPECT_TRUE(differs);
}

TEST(NerscSynth, EveryFileRequestedAtLeastOnce) {
  NerscSpec spec;
  spec.n_files = 300;
  spec.n_requests = 400;
  spec.duration_s = 5000.0;
  const auto t = synthesize_nersc(spec);
  const auto stats = analyze(t);
  EXPECT_EQ(stats.distinct_files, 300u);
  EXPECT_EQ(stats.requests, 400u);
}

TEST(NerscSynth, RejectsFewerRequestsThanFiles) {
  NerscSpec spec;
  spec.n_files = 100;
  spec.n_requests = 50;
  EXPECT_THROW(synthesize_nersc(spec), std::invalid_argument);
}

TEST(NerscSynth, DiurnalModulationCreatesQuietNights) {
  NerscSpec spec;
  spec.n_files = 3000;
  spec.n_requests = 12'000;
  spec.duration_s = 10.0 * util::kDay;
  spec.day_fraction = 0.4;
  spec.night_intensity = 0.1;
  const auto trace = synthesize_nersc(spec);

  // Split arrivals by time of day.  The final rescale warps the period by
  // at most a few percent, so count over a slightly shrunk day window.
  std::size_t day = 0, night = 0;
  for (const auto& r : trace.records()) {
    const double tod = std::fmod(r.time, util::kDay);
    (tod < spec.day_fraction * util::kDay ? day : night) += 1;
  }
  // Expected ratio per unit time: 1 : 0.1; the day window holds 40% of the
  // day, so day/night counts should be roughly (0.4) : (0.6 * 0.1) ~ 6.7:1.
  EXPECT_GT(day, night * 3);
}

TEST(NerscSynth, DiurnalOffIsHomogeneous) {
  NerscSpec spec;
  spec.n_files = 3000;
  spec.n_requests = 12'000;
  spec.duration_s = 10.0 * util::kDay;
  spec.diurnal = false;
  const auto trace = synthesize_nersc(spec);
  std::size_t day = 0, night = 0;
  for (const auto& r : trace.records()) {
    const double tod = std::fmod(r.time, util::kDay);
    (tod < 0.4 * util::kDay ? day : night) += 1;
  }
  // Homogeneous Poisson: counts proportional to the window widths (40/60).
  const double ratio = static_cast<double>(day) / static_cast<double>(night);
  EXPECT_NEAR(ratio, 0.4 / 0.6, 0.08);
}

TEST(NerscSynth, DiurnalPreservesHeadlineStatistics) {
  // Modulation must not disturb the counts the paper publishes.
  NerscSpec spec;
  spec.n_files = 2000;
  spec.n_requests = 3000;
  spec.duration_s = 5.0 * util::kDay;
  const auto t_on = synthesize_nersc(spec);
  spec.diurnal = false;
  const auto t_off = synthesize_nersc(spec);
  const auto s_on = analyze(t_on);
  const auto s_off = analyze(t_off);
  EXPECT_EQ(s_on.requests, s_off.requests);
  EXPECT_EQ(s_on.distinct_files, s_off.distinct_files);
  EXPECT_NEAR(s_on.duration_s, s_off.duration_s, 1.0);
  EXPECT_NEAR(s_on.arrival_rate, s_off.arrival_rate, 1e-4);
}

} // namespace
} // namespace spindown::workload
