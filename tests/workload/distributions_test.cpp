#include "workload/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/math.h"

namespace spindown::workload {
namespace {

TEST(ZipfPopularity, PmfSumsToOne) {
  const ZipfPopularity z{1000, 0.8};
  double sum = 0.0;
  for (std::size_t r = 1; r <= z.n(); ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfPopularity, MonotoneDecreasingInRank) {
  const ZipfPopularity z{500, 0.6};
  for (std::size_t r = 1; r < z.n(); ++r) {
    EXPECT_GT(z.pmf(r), z.pmf(r + 1));
  }
}

TEST(ZipfPopularity, PaperParameterization) {
  const auto z = ZipfPopularity::paper(40'000);
  EXPECT_NEAR(z.exponent(), 1.0 - util::paper_zipf_theta(), 1e-12);
  // c = 1/H_n^(1-theta): rank 1 probability equals the normalizer.
  EXPECT_NEAR(z.pmf(1), 1.0 / util::generalized_harmonic(40'000, z.exponent()),
              1e-15);
}

TEST(ZipfPopularity, RatioFollowsPowerLaw) {
  const ZipfPopularity z{100, 0.5};
  // pmf(1)/pmf(4) = 4^0.5 = 2.
  EXPECT_NEAR(z.pmf(1) / z.pmf(4), 2.0, 1e-12);
  EXPECT_NEAR(z.pmf(2) / z.pmf(8), 2.0, 1e-12);
}

TEST(ZipfPopularity, SamplingMatchesPmf) {
  const ZipfPopularity z{50, 0.9};
  util::Rng rng{123};
  std::vector<int> counts(z.n() + 1, 0);
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 1; r <= 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kN, z.pmf(r), 0.01)
        << "rank " << r;
  }
}

TEST(ZipfPopularity, RejectsBadArguments) {
  EXPECT_THROW((ZipfPopularity{0, 0.5}), std::invalid_argument);
  EXPECT_THROW((ZipfPopularity{10, 0.0}), std::invalid_argument);
  EXPECT_THROW((ZipfPopularity{10, -1.0}), std::invalid_argument);
}

// Property sweep over exponents: pmf sums to 1, head dominates tail.
class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, NormalizedAndSkewed) {
  const ZipfPopularity z{2000, GetParam()};
  double sum = 0.0;
  for (std::size_t r = 1; r <= z.n(); ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Per-rank mass in the head strictly dominates the tail: the average
  // probability of the 20 hottest ranks exceeds the average of the bottom
  // half by at least the head/tail rank ratio raised to the exponent.
  double head = 0.0, tail = 0.0;
  for (std::size_t r = 1; r <= 20; ++r) head += z.pmf(r);
  for (std::size_t r = 1000; r <= 2000; ++r) tail += z.pmf(r);
  const double head_avg = head / 20.0;
  const double tail_avg = tail / 1001.0;
  EXPECT_GT(head_avg, tail_avg * std::pow(10.0, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         ::testing::Values(0.3, 0.4425, 0.6, 0.8, 1.0, 1.2));

TEST(PoissonProcess, InterArrivalMeanMatchesRate) {
  PoissonProcess p{4.0};
  util::Rng rng{7};
  double prev = 0.0;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double t = p.next_arrival(rng);
    EXPECT_GT(t, prev);
    sum += t - prev;
    prev = t;
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.005);
}

TEST(PoissonProcess, CountInWindowIsPoisson) {
  // Mean and variance of the per-second counts should both be ~rate.
  PoissonProcess p{6.0};
  util::Rng rng{11};
  std::vector<int> counts(2000, 0);
  double t = 0.0;
  while ((t = p.next_arrival(rng)) < 2000.0) {
    ++counts[static_cast<std::size_t>(t)];
  }
  double mean = 0.0;
  for (int c : counts) mean += c;
  mean /= static_cast<double>(counts.size());
  double var = 0.0;
  for (int c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(counts.size());
  EXPECT_NEAR(mean, 6.0, 0.25);
  EXPECT_NEAR(var, 6.0, 0.6);
}

TEST(PoissonProcess, ResetRestartsClock) {
  PoissonProcess p{1.0};
  util::Rng rng{13};
  p.next_arrival(rng);
  p.reset();
  EXPECT_DOUBLE_EQ(p.now(), 0.0);
}

TEST(PoissonProcess, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonProcess{0.0}, std::invalid_argument);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  const BoundedPareto bp{1.0, 100.0, 1.2};
  util::Rng rng{17};
  for (int i = 0; i < 10000; ++i) {
    const double x = bp.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesClosedForm) {
  const BoundedPareto bp{1.0, 1000.0, 0.9};
  util::Rng rng{19};
  double sum = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) sum += bp.sample(rng);
  EXPECT_NEAR(sum / kN, bp.mean(), bp.mean() * 0.02);
}

TEST(BoundedPareto, WithMeanCalibrates) {
  const double target = 544.0e6; // the NERSC mean file size in bytes
  const auto bp = BoundedPareto::with_mean(1.0e6, 20.0e9, target);
  EXPECT_NEAR(bp.mean(), target, target * 1e-6);
}

TEST(BoundedPareto, WithMeanRejectsUnreachableTargets) {
  EXPECT_THROW(BoundedPareto::with_mean(10.0, 100.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(BoundedPareto::with_mean(10.0, 100.0, 200.0),
               std::invalid_argument);
}

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW((BoundedPareto{0.0, 10.0, 1.2}), std::invalid_argument);
  EXPECT_THROW((BoundedPareto{10.0, 5.0, 1.2}), std::invalid_argument);
  EXPECT_THROW((BoundedPareto{1.0, 10.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((BoundedPareto{1.0, 10.0, 0.0}), std::invalid_argument);
}

// Heavier tails (smaller alpha) must produce larger means.
class ParetoAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ParetoAlphaSweep, MeanDecreasesWithAlpha) {
  const double alpha = GetParam();
  const BoundedPareto lighter{1.0, 1e6, alpha + 0.2};
  const BoundedPareto heavier{1.0, 1e6, alpha};
  EXPECT_GT(heavier.mean(), lighter.mean());
}

INSTANTIATE_TEST_SUITE_P(Alphas, ParetoAlphaSweep,
                         ::testing::Values(0.3, 0.6, 0.9, 1.2, 1.5, 2.0));

} // namespace
} // namespace spindown::workload
