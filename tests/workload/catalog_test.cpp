#include "workload/catalog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/math.h"
#include "util/units.h"

namespace spindown::workload {
namespace {

TEST(FileCatalog, RequiresDenseIds) {
  std::vector<FileInfo> files{{0, 100, 0.5}, {2, 100, 0.5}};
  EXPECT_THROW(FileCatalog{files}, std::invalid_argument);
}

TEST(FileCatalog, TotalsAndLookup) {
  std::vector<FileInfo> files{{0, 100, 0.25}, {1, 300, 0.75}};
  const FileCatalog cat{files};
  EXPECT_EQ(cat.size(), 2u);
  EXPECT_EQ(cat.total_bytes(), 400u);
  EXPECT_EQ(cat.by_id(1).size, 300u);
  EXPECT_EQ(cat.min_size(), 100u);
  EXPECT_EQ(cat.max_size(), 300u);
  EXPECT_DOUBLE_EQ(cat.mean_request_bytes(), 0.25 * 100 + 0.75 * 300);
}

TEST(FileCatalog, NormalizePopularity) {
  std::vector<FileInfo> files{{0, 1, 3.0}, {1, 1, 1.0}};
  FileCatalog cat{files};
  cat.normalize_popularity();
  EXPECT_DOUBLE_EQ(cat[0].popularity, 0.75);
  EXPECT_DOUBLE_EQ(cat[1].popularity, 0.25);
}

// --- The Table 1 consistency checks from DESIGN.md §6 -----------------

class PaperCatalog : public ::testing::Test {
protected:
  static const FileCatalog& catalog() {
    static const FileCatalog cat = [] {
      util::Rng rng{1};
      return generate_catalog(SyntheticSpec::paper_table1(), rng);
    }();
    return cat;
  }
};

TEST_F(PaperCatalog, FileCountMatchesTable1) {
  EXPECT_EQ(catalog().size(), 40'000u);
}

TEST_F(PaperCatalog, SizeBoundsMatchTable1) {
  // Table 1: minimum 188 MB, maximum 20 GB.  The minimum emerges from the
  // inverse-Zipf construction: S_max / n^(1-theta) ~ 184 MB (the paper
  // rounds to 188 MB).
  EXPECT_EQ(catalog().max_size(), util::gb(20.0));
  EXPECT_NEAR(static_cast<double>(catalog().min_size()),
              static_cast<double>(util::mb(188.0)), 8e6);
}

TEST_F(PaperCatalog, TotalSpaceMatchesTable1) {
  // Table 1: 12.86 TB.  Allow 5%: the paper's rounding of theta affects it.
  EXPECT_NEAR(static_cast<double>(catalog().total_bytes()),
              static_cast<double>(util::tb(12.86)),
              static_cast<double>(util::tb(12.86)) * 0.05);
}

TEST_F(PaperCatalog, PopularitySumsToOne) {
  double sum = 0.0;
  for (const auto& f : catalog().files()) sum += f.popularity;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(PaperCatalog, InverseSizeFrequencyRelation) {
  // "a file has an inverse relation between its access frequency and its
  // size": the hottest file is the smallest, the coldest the largest.
  const auto& files = catalog().files();
  EXPECT_EQ(files.front().size, catalog().min_size());
  EXPECT_EQ(files.back().size, catalog().max_size());
  // Monotone: higher popularity -> smaller or equal size.
  for (std::size_t i = 1; i < files.size(); ++i) {
    EXPECT_GE(files[i].size, files[i - 1].size);
    EXPECT_LT(files[i].popularity, files[i - 1].popularity);
  }
}

TEST(CatalogCorrelationModes, DirectPutsBigFilesFirst) {
  SyntheticSpec spec;
  spec.n_files = 100;
  spec.correlation = SizeCorrelation::kDirect;
  util::Rng rng{2};
  const auto cat = generate_catalog(spec, rng);
  EXPECT_EQ(cat[0].size, cat.max_size());
  EXPECT_EQ(cat[99].size, cat.min_size());
}

TEST(CatalogCorrelationModes, IndependentIsAPermutationOfInverse) {
  SyntheticSpec spec;
  spec.n_files = 200;
  util::Rng rng1{3}, rng2{3};
  spec.correlation = SizeCorrelation::kInverse;
  const auto inv = generate_catalog(spec, rng1);
  spec.correlation = SizeCorrelation::kIndependent;
  const auto ind = generate_catalog(spec, rng2);
  // Same multiset of sizes, same total.
  EXPECT_EQ(inv.total_bytes(), ind.total_bytes());
  EXPECT_EQ(inv.min_size(), ind.min_size());
  EXPECT_EQ(inv.max_size(), ind.max_size());
  // But not the same order (overwhelmingly likely for 200 files).
  bool any_differs = false;
  for (std::size_t i = 0; i < 200; ++i) {
    if (inv[i].size != ind[i].size) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(LayoutExtents, PacksPerDiskInFileIdOrder) {
  std::vector<FileInfo> files{
      {0, util::mb(1.0), 0.25},  // 1954 blocks
      {1, util::mb(2.0), 0.25},  // 3907 blocks
      {2, util::mb(0.5), 0.25},  // 977 blocks
      {3, 100, 0.25},            // 1 block
  };
  const FileCatalog cat{files};
  const auto ext = layout_extents(cat, {0, 1, 0, 1}, 2);
  ASSERT_EQ(ext.size(), 4u);
  // Disk 0 holds files 0 and 2, contiguously from LBA 0.
  EXPECT_EQ(ext[0].lba, 0u);
  EXPECT_EQ(ext[0].blocks, util::blocks_of(util::mb(1.0)));
  EXPECT_EQ(ext[2].lba, ext[0].blocks);
  EXPECT_EQ(ext[2].blocks, util::blocks_of(util::mb(0.5)));
  // Disk 1 holds files 1 and 3, in its own address space.
  EXPECT_EQ(ext[1].lba, 0u);
  EXPECT_EQ(ext[3].lba, ext[1].blocks);
  EXPECT_EQ(ext[3].blocks, 1u);
}

TEST(LayoutExtents, ExtentsNeverOverlapWithinADisk) {
  SyntheticSpec spec;
  spec.n_files = 300;
  util::Rng rng{9};
  const auto cat = generate_catalog(spec, rng);
  std::vector<std::uint32_t> mapping(cat.size());
  for (std::size_t i = 0; i < cat.size(); ++i) {
    mapping[i] = static_cast<std::uint32_t>(i % 7);
  }
  const auto ext = layout_extents(cat, mapping, 7);
  // Per disk: sort extents by lba and verify back-to-back packing.
  for (std::uint32_t d = 0; d < 7; ++d) {
    std::vector<FileExtent> on_disk;
    for (std::size_t i = 0; i < cat.size(); ++i) {
      if (mapping[i] == d) on_disk.push_back(ext[i]);
    }
    std::sort(on_disk.begin(), on_disk.end(),
              [](const FileExtent& a, const FileExtent& b) {
                return a.lba < b.lba;
              });
    std::uint64_t cursor = 0;
    for (const auto& e : on_disk) {
      EXPECT_EQ(e.lba, cursor); // contiguous: no holes, no overlap
      cursor += e.blocks;
    }
  }
}

TEST(LayoutExtents, ValidatesMapping) {
  const auto files = std::vector<FileInfo>{{0, util::mb(1.0), 1.0}};
  const FileCatalog cat{files};
  EXPECT_THROW(layout_extents(cat, {}, 1), std::invalid_argument);
  EXPECT_THROW(layout_extents(cat, {5}, 1), std::invalid_argument);
}

TEST(CatalogGeneration, EmptySpecYieldsEmptyCatalog) {
  SyntheticSpec spec;
  spec.n_files = 0;
  util::Rng rng{4};
  const auto cat = generate_catalog(spec, rng);
  EXPECT_TRUE(cat.empty());
}

TEST(CatalogGeneration, CustomExponentRespected) {
  SyntheticSpec spec;
  spec.n_files = 1000;
  spec.zipf_exponent = 1.1;
  util::Rng rng{5};
  const auto cat = generate_catalog(spec, rng);
  // pmf(1)/pmf(2) = 2^1.1.
  EXPECT_NEAR(cat[0].popularity / cat[1].popularity, std::pow(2.0, 1.1), 1e-9);
}

} // namespace
} // namespace spindown::workload
