#include "workload/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/units.h"

namespace spindown::workload {
namespace {

FileCatalog small_catalog() {
  std::vector<FileInfo> files{
      {0, util::mb(10.0), 0.5},
      {1, util::mb(20.0), 0.3},
      {2, util::mb(30.0), 0.2},
  };
  return FileCatalog{files};
}

TEST(Trace, SortsRecordsByTime) {
  const Trace t{small_catalog(),
                {{5.0, 1}, {1.0, 0}, {3.0, 2}}};
  EXPECT_DOUBLE_EQ(t.records()[0].time, 1.0);
  EXPECT_DOUBLE_EQ(t.records()[1].time, 3.0);
  EXPECT_DOUBLE_EQ(t.records()[2].time, 5.0);
  EXPECT_DOUBLE_EQ(t.duration(), 5.0);
}

TEST(Trace, RejectsUnknownFiles) {
  EXPECT_THROW((Trace{small_catalog(), {{1.0, 9}}}), std::invalid_argument);
}

TEST(Trace, EmptyTraceBasics) {
  const Trace t{small_catalog(), {}};
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.duration(), 0.0);
}

class TraceIo : public ::testing::Test {
protected:
  std::filesystem::path stem_ =
      std::filesystem::temp_directory_path() / "spindown_trace_test";
  void TearDown() override {
    std::filesystem::remove(stem_.string() + ".catalog.csv");
    std::filesystem::remove(stem_.string() + ".trace.csv");
  }
};

TEST_F(TraceIo, SaveLoadRoundTrip) {
  const Trace original{small_catalog(), {{1.0, 0}, {2.5, 2}, {7.25, 1}}};
  original.save(stem_);
  const Trace loaded = Trace::load(stem_);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.records()[i].time, original.records()[i].time);
    EXPECT_EQ(loaded.records()[i].file, original.records()[i].file);
  }
  ASSERT_EQ(loaded.catalog().size(), original.catalog().size());
  for (std::size_t i = 0; i < loaded.catalog().size(); ++i) {
    EXPECT_EQ(loaded.catalog()[i].size, original.catalog()[i].size);
    EXPECT_NEAR(loaded.catalog()[i].popularity,
                original.catalog()[i].popularity, 1e-9);
  }
}

TEST_F(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(Trace::load(stem_), std::runtime_error);
}

TEST_F(TraceIo, LbaColumnRoundTrips) {
  std::vector<TraceRecord> records{{1.0, 0}, {2.0, 1}, {3.0, 2}};
  records[1].lba = 123'456'789;
  const Trace original{small_catalog(), std::move(records)};
  original.save(stem_);
  const Trace loaded = Trace::load(stem_);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.records()[0].lba, kNoLba); // empty cell stays "no lba"
  EXPECT_EQ(loaded.records()[1].lba, 123'456'789u);
  EXPECT_EQ(loaded.records()[2].lba, kNoLba);
}

TEST_F(TraceIo, TracesWithoutLbaKeepTheLegacyTwoColumnFormat) {
  const Trace original{small_catalog(), {{1.0, 0}, {2.0, 1}}};
  original.save(stem_);
  std::ifstream in{stem_.string() + ".trace.csv"};
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_s,file_id");
}

TEST(TraceAnalyze, BasicStatistics) {
  const Trace t{small_catalog(), {{0.0, 0}, {50.0, 0}, {100.0, 1}}};
  const auto stats = analyze(t);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.distinct_files, 2u);
  EXPECT_DOUBLE_EQ(stats.duration_s, 100.0);
  EXPECT_DOUBLE_EQ(stats.arrival_rate, 0.03);
  EXPECT_DOUBLE_EQ(stats.mean_accessed_bytes,
                   (10e6 + 10e6 + 20e6) / 3.0);
  EXPECT_EQ(stats.total_catalog_bytes, util::mb(60.0));
}

TEST(TraceAnalyze, MinDisks) {
  TraceStats stats;
  stats.total_catalog_bytes = util::tb(47.5);
  EXPECT_EQ(stats.min_disks(util::gb(500.0)), 95u); // the paper's value
  EXPECT_EQ(stats.min_disks(0), 0u);
}

TEST(TraceAnalyze, EmptyTrace) {
  const auto stats = analyze(Trace{small_catalog(), {}});
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.distinct_files, 0u);
}

} // namespace
} // namespace spindown::workload
