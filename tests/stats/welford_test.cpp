#include "stats/welford.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace spindown::stats {
namespace {

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 0.0);
  EXPECT_DOUBLE_EQ(w.max(), 0.0);
}

TEST(Welford, SingleSample) {
  Welford w;
  w.add(4.5);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 4.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 4.5);
  EXPECT_DOUBLE_EQ(w.max(), 4.5);
}

TEST(Welford, KnownSeries) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0); // classic population-variance example
  EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
  EXPECT_DOUBLE_EQ(w.sum(), 40.0);
}

TEST(Welford, NumericallyStableOnShiftedData) {
  // Large offset breaks naive sum-of-squares; Welford must not.
  Welford w;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) w.add(x);
  EXPECT_NEAR(w.mean(), offset + 2.0, 1e-6);
  EXPECT_NEAR(w.variance(), 2.0 / 3.0, 1e-6);
}

TEST(Welford, MergeMatchesSequential) {
  util::Rng rng{5};
  Welford all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Welford, MergeWithEmptySides) {
  Welford a, b;
  a.add(3.0);
  a.merge(b); // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a); // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

} // namespace
} // namespace spindown::stats
