#include "stats/summary.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.h"

namespace spindown::stats {
namespace {

TEST(ResponseSummary, Empty) {
  ResponseSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(ResponseSummary, BasicMoments) {
  ResponseSummary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(ResponseSummary, PercentilesOnUniformData) {
  ResponseSummary s;
  util::Rng rng{3};
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(s.p50(), 50.0, 1.0);
  EXPECT_NEAR(s.p95(), 95.0, 1.0);
  EXPECT_NEAR(s.p99(), 99.0, 1.0);
}

TEST(ResponseSummary, MergeApproximatesUnion) {
  ResponseSummary a, b;
  util::Rng rng{4};
  for (int i = 0; i < 20000; ++i) a.add(rng.uniform(0.0, 10.0));
  for (int i = 0; i < 20000; ++i) b.add(rng.uniform(10.0, 20.0));
  a.merge(b);
  EXPECT_EQ(a.count(), 40000u);
  EXPECT_NEAR(a.mean(), 10.0, 0.2);
  EXPECT_NEAR(a.p50(), 10.0, 0.5);
}

TEST(ResponseSummary, MergeIsExactOnHistogram) {
  // Regression vs the old midpoint re-binning merge: every cell of the
  // merged histogram — including overflow past kHistHi — must carry over
  // exactly, so percentiles after a merge equal percentiles of the union.
  ResponseSummary a, b, whole;
  util::Rng rng{9};
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 30.0);
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  b.add(5000.0); // overflow sample (> kHistHi)
  whole.add(5000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.p50(), whole.p50());
  EXPECT_DOUBLE_EQ(a.p95(), whole.p95());
  EXPECT_DOUBLE_EQ(a.p99(), whole.p99());
  EXPECT_EQ(a.histogram().overflow(), whole.histogram().overflow());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
}

TEST(ResponseSummary, FromPartsRebuildsExactly) {
  // The sharded run's canonical aggregation: per-disk Welford accumulators
  // folded in disk-id order + one shared histogram reproduce the summary
  // the sequential path builds, field for field.
  Welford moments;
  LinearHistogram hist{ResponseSummary::kHistLo, ResponseSummary::kHistHi,
                       ResponseSummary::kHistBins};
  ResponseSummary direct;
  util::Rng rng{11};
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(0.0, 500.0);
    moments.add(x);
    hist.add(x);
    direct.add(x);
  }
  const ResponseSummary rebuilt = ResponseSummary::from_parts(moments, hist);
  EXPECT_EQ(rebuilt.count(), direct.count());
  EXPECT_DOUBLE_EQ(rebuilt.mean(), direct.mean());
  EXPECT_DOUBLE_EQ(rebuilt.stddev(), direct.stddev());
  EXPECT_DOUBLE_EQ(rebuilt.min(), direct.min());
  EXPECT_DOUBLE_EQ(rebuilt.max(), direct.max());
  EXPECT_DOUBLE_EQ(rebuilt.p50(), direct.p50());
  EXPECT_DOUBLE_EQ(rebuilt.p99(), direct.p99());
}

TEST(ResponseSummary, FromPartsValidatesParts) {
  Welford moments;
  moments.add(1.0);
  LinearHistogram wrong_geometry{0.0, 10.0, 10};
  wrong_geometry.add(1.0);
  EXPECT_THROW(ResponseSummary::from_parts(moments, wrong_geometry),
               std::invalid_argument);
  LinearHistogram empty{ResponseSummary::kHistLo, ResponseSummary::kHistHi,
                        ResponseSummary::kHistBins};
  // Count mismatch between moments and histogram means a sample was lost.
  EXPECT_THROW(ResponseSummary::from_parts(moments, empty),
               std::invalid_argument);
}

TEST(ResponseSummary, BriefMentionsCountAndMean) {
  ResponseSummary s;
  s.add(2.0);
  const auto text = s.brief();
  EXPECT_NE(text.find("n=1"), std::string::npos);
  EXPECT_NE(text.find("mean=2"), std::string::npos);
}

TEST(ResponseSummary, SubSecondResolution) {
  ResponseSummary s;
  for (int i = 0; i < 1000; ++i) s.add(0.05);
  EXPECT_NEAR(s.p50(), 0.05, 0.1); // within one 0.1 s bin
}

} // namespace
} // namespace spindown::stats
