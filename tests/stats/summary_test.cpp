#include "stats/summary.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace spindown::stats {
namespace {

TEST(ResponseSummary, Empty) {
  ResponseSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(ResponseSummary, BasicMoments) {
  ResponseSummary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(ResponseSummary, PercentilesOnUniformData) {
  ResponseSummary s;
  util::Rng rng{3};
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(s.p50(), 50.0, 1.0);
  EXPECT_NEAR(s.p95(), 95.0, 1.0);
  EXPECT_NEAR(s.p99(), 99.0, 1.0);
}

TEST(ResponseSummary, MergeApproximatesUnion) {
  ResponseSummary a, b;
  util::Rng rng{4};
  for (int i = 0; i < 20000; ++i) a.add(rng.uniform(0.0, 10.0));
  for (int i = 0; i < 20000; ++i) b.add(rng.uniform(10.0, 20.0));
  a.merge(b);
  EXPECT_EQ(a.count(), 40000u);
  EXPECT_NEAR(a.mean(), 10.0, 0.2);
  EXPECT_NEAR(a.p50(), 10.0, 0.5);
}

TEST(ResponseSummary, BriefMentionsCountAndMean) {
  ResponseSummary s;
  s.add(2.0);
  const auto text = s.brief();
  EXPECT_NE(text.find("n=1"), std::string::npos);
  EXPECT_NE(text.find("mean=2"), std::string::npos);
}

TEST(ResponseSummary, SubSecondResolution) {
  ResponseSummary s;
  for (int i = 0; i < 1000; ++i) s.add(0.05);
  EXPECT_NEAR(s.p50(), 0.05, 0.1); // within one 0.1 s bin
}

} // namespace
} // namespace spindown::stats
