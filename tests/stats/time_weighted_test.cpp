#include "stats/time_weighted.h"

#include <gtest/gtest.h>

namespace spindown::stats {
namespace {

enum class Mode : std::size_t { kA = 0, kB = 1, kC = 2 };

TEST(TimeWeighted, AttributesDurationsToPreviousState) {
  TimeWeighted<Mode, 3> tw{Mode::kA, 0.0};
  tw.transition(5.0, Mode::kB);   // A held 5
  tw.transition(7.5, Mode::kC);   // B held 2.5
  tw.flush(10.0);                 // C held 2.5
  EXPECT_DOUBLE_EQ(tw.time_in(Mode::kA), 5.0);
  EXPECT_DOUBLE_EQ(tw.time_in(Mode::kB), 2.5);
  EXPECT_DOUBLE_EQ(tw.time_in(Mode::kC), 2.5);
  EXPECT_DOUBLE_EQ(tw.total(), 10.0);
}

TEST(TimeWeighted, NonZeroStart) {
  TimeWeighted<Mode, 3> tw{Mode::kB, 100.0};
  tw.flush(130.0);
  EXPECT_DOUBLE_EQ(tw.time_in(Mode::kB), 30.0);
  EXPECT_DOUBLE_EQ(tw.elapsed(), 30.0);
}

TEST(TimeWeighted, RepeatedFlushIsIdempotent) {
  TimeWeighted<Mode, 3> tw{Mode::kA, 0.0};
  tw.flush(4.0);
  tw.flush(4.0);
  EXPECT_DOUBLE_EQ(tw.time_in(Mode::kA), 4.0);
}

TEST(TimeWeighted, SelfTransitionAccumulates) {
  TimeWeighted<Mode, 3> tw{Mode::kA, 0.0};
  tw.transition(2.0, Mode::kA);
  tw.transition(5.0, Mode::kA);
  tw.flush(6.0);
  EXPECT_DOUBLE_EQ(tw.time_in(Mode::kA), 6.0);
}

TEST(TimeWeighted, CurrentTracksLatestState) {
  TimeWeighted<Mode, 3> tw{Mode::kA, 0.0};
  EXPECT_EQ(tw.current(), Mode::kA);
  tw.transition(1.0, Mode::kC);
  EXPECT_EQ(tw.current(), Mode::kC);
}

TEST(TimeWeighted, CopySnapshotDoesNotDisturbOriginal) {
  TimeWeighted<Mode, 3> tw{Mode::kA, 0.0};
  tw.transition(3.0, Mode::kB);
  auto snap = tw;
  snap.flush(10.0);
  EXPECT_DOUBLE_EQ(snap.time_in(Mode::kB), 7.0);
  tw.flush(4.0); // original still at last_change 3.0
  EXPECT_DOUBLE_EQ(tw.time_in(Mode::kB), 1.0);
}

} // namespace
} // namespace spindown::stats
