#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace spindown::stats {
namespace {

TEST(LinearHistogram, BinPlacement) {
  LinearHistogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, UnderOverflow) {
  LinearHistogram h{0.0, 10.0, 5};
  h.add(-1.0);
  h.add(10.0); // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, WeightedAdd) {
  LinearHistogram h{0.0, 10.0, 10};
  h.add(5.0, 7);
  EXPECT_EQ(h.bin_count(5), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(LinearHistogram, BinEdges) {
  LinearHistogram h{0.0, 10.0, 10};
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(LinearHistogram, PercentileUniformData) {
  LinearHistogram h{0.0, 100.0, 1000};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95.0), 95.0, 1.5);
  EXPECT_NEAR(h.percentile(5.0), 5.0, 1.5);
}

TEST(LinearHistogram, PercentileEdgeCases) {
  LinearHistogram h{0.0, 10.0, 10};
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0); // empty -> lo
  h.add(5.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 5.0);
  EXPECT_LE(p50, 6.0);
}

TEST(LinearHistogram, MergeIsExactBinwise) {
  LinearHistogram a{0.0, 10.0, 5};
  LinearHistogram b{0.0, 10.0, 5};
  a.add(-1.0);   // underflow
  a.add(2.5);    // bin 1
  b.add(2.7, 3); // bin 1
  b.add(100.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.bin_count(1), 4u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(LinearHistogram, MergeOrderIndependent) {
  // Integer adds commute: parts merged in either order equal the histogram
  // built from the union — the property sharded aggregation relies on.
  LinearHistogram union_h{0.0, 100.0, 50};
  LinearHistogram ab{0.0, 100.0, 50}, ba{0.0, 100.0, 50};
  LinearHistogram a{0.0, 100.0, 50}, b{0.0, 100.0, 50};
  for (int i = 0; i < 200; ++i) {
    const double x = 0.7 * i - 20.0; // spans under/in/overflow
    union_h.add(x);
    (i % 2 ? a : b).add(x);
  }
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  for (std::size_t i = 0; i < union_h.bins(); ++i) {
    EXPECT_EQ(ab.bin_count(i), union_h.bin_count(i));
    EXPECT_EQ(ba.bin_count(i), union_h.bin_count(i));
  }
  EXPECT_EQ(ab.underflow(), union_h.underflow());
  EXPECT_EQ(ab.overflow(), union_h.overflow());
  EXPECT_EQ(ab.total(), union_h.total());
  EXPECT_EQ(ba.total(), union_h.total());
}

TEST(LinearHistogram, MergeRejectsGeometryMismatch) {
  LinearHistogram a{0.0, 10.0, 5};
  const LinearHistogram wrong_bins{0.0, 10.0, 6};
  const LinearHistogram wrong_hi{0.0, 20.0, 5};
  const LinearHistogram wrong_lo{1.0, 10.0, 5};
  EXPECT_THROW(a.merge(wrong_bins), std::invalid_argument);
  EXPECT_THROW(a.merge(wrong_hi), std::invalid_argument);
  EXPECT_THROW(a.merge(wrong_lo), std::invalid_argument);
}

TEST(LogHistogram, GeometricBinning) {
  LogHistogram h{1.0, 1000.0, 3}; // bins: [1,10), [10,100), [100,1000)
  h.add(2.0);
  h.add(20.0);
  h.add(200.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-9);
  EXPECT_NEAR(h.bin_mid(1), std::sqrt(10.0 * 100.0), 1e-9);
}

TEST(LogHistogram, ClampsOutOfRangeIntoEdgeBins) {
  LogHistogram h{1.0, 100.0, 2};
  h.add(0.5);    // below lo -> first bin
  h.add(1000.0); // above hi -> last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(LogHistogram, NonPositiveDroppedButCounted) {
  LogHistogram h{1.0, 100.0, 2};
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

TEST(LogHistogram, ProportionsSumToOneWhenAllBinned) {
  LogHistogram h{1.0, 1e6, 80};
  for (double x = 2.0; x < 9e5; x *= 1.7) h.add(x);
  const auto props = h.proportions();
  double sum = 0.0;
  for (double p : props) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(props.size(), 80u);
}

TEST(LogHistogram, MergeIsExactBinwise) {
  LogHistogram a{1.0, 1000.0, 3};
  LogHistogram b{1.0, 1000.0, 3};
  a.add(2.0);
  a.add(0.0); // non-positive: counted in total, binned nowhere
  b.add(20.0, 5);
  b.add(200.0);
  a.merge(b);
  EXPECT_EQ(a.bin_count(0), 1u);
  EXPECT_EQ(a.bin_count(1), 5u);
  EXPECT_EQ(a.bin_count(2), 1u);
  EXPECT_EQ(a.total(), 8u);
}

TEST(LogHistogram, MergeRejectsGeometryMismatch) {
  LogHistogram a{1.0, 1000.0, 3};
  const LogHistogram wrong_bins{1.0, 1000.0, 4};
  const LogHistogram wrong_range{1.0, 100.0, 3};
  EXPECT_THROW(a.merge(wrong_bins), std::invalid_argument);
  EXPECT_THROW(a.merge(wrong_range), std::invalid_argument);
}

TEST(LogHistogram, PowerLawIsLogLogLinear) {
  // Zipf-like mass over sizes: proportions in log-log space should fall on
  // a line — this is the §5.1 check our TraceStats relies on.
  LogHistogram h{1.0, 1e6, 30};
  for (std::size_t i = 0; i < 30; ++i) {
    const double mid = h.bin_mid(i);
    h.add(mid, static_cast<std::uint64_t>(1e9 * std::pow(mid, -0.9)));
  }
  // Ratio of consecutive log-bin counts should be roughly constant.
  double prev_ratio = 0.0;
  for (std::size_t i = 1; i + 1 < 30; ++i) {
    const double r = static_cast<double>(h.bin_count(i + 1)) /
                     static_cast<double>(h.bin_count(i));
    if (prev_ratio != 0.0) {
      EXPECT_NEAR(r, prev_ratio, 0.02);
    }
    prev_ratio = r;
  }
}

} // namespace
} // namespace spindown::stats
