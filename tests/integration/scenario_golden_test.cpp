// scenario_golden_test.cpp — the scenario path must be a pure re-spelling
// of the programmatic path: running a ScenarioSpec string (exactly what
// examples/spindown_run.cpp does with --scenario) is bit-exact with the
// equivalent hand-built run_experiment() call, on the same configuration
// the FCFS golden guard pins.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/normalize.h"
#include "core/pack_disks.h"
#include "sys/scenario.h"
#include "workload/catalog.h"
#include "workload/trace.h"

namespace spindown::sys {
namespace {

void expect_bit_exact(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.completed_at_horizon, b.completed_at_horizon);
  EXPECT_EQ(a.in_flight_at_horizon, b.in_flight_at_horizon);
  EXPECT_DOUBLE_EQ(a.power.energy, b.power.energy);
  EXPECT_DOUBLE_EQ(a.power.always_on_energy, b.power.always_on_energy);
  EXPECT_DOUBLE_EQ(a.power.saving_vs_always_on, b.power.saving_vs_always_on);
  EXPECT_EQ(a.power.spin_ups, b.power.spin_ups);
  EXPECT_EQ(a.power.spin_downs, b.power.spin_downs);
  EXPECT_EQ(a.response.count(), b.response.count());
  EXPECT_DOUBLE_EQ(a.response.mean(), b.response.mean());
  EXPECT_DOUBLE_EQ(a.response.max(), b.response.max());
  EXPECT_DOUBLE_EQ(a.response.p99(), b.response.p99());
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  ASSERT_EQ(a.per_disk.size(), b.per_disk.size());
  for (std::size_t d = 0; d < a.per_disk.size(); ++d) {
    EXPECT_EQ(a.per_disk[d].served, b.per_disk[d].served);
    EXPECT_EQ(a.per_disk[d].spin_ups, b.per_disk[d].spin_ups);
    for (std::size_t st = 0; st < a.per_disk[d].state_time.size(); ++st) {
      EXPECT_DOUBLE_EQ(a.per_disk[d].state_time[st],
                       b.per_disk[d].state_time[st]);
    }
  }
}

TEST(ScenarioGolden, ScenarioStringMatchesProgrammaticGoldenConfig) {
  // The golden guard's configuration (golden_guard_test.cpp), as a string.
  const auto scenario = ScenarioSpec::parse(
      "catalog=table1(600,7) placement=pack load=0.9 "
      "workload=poisson(1.2,800) seed=42");

  // The pre-ScenarioSpec way: every bench built this by hand.
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = 600;
  util::Rng rng{7};
  const auto cat = workload::generate_catalog(spec, rng);
  core::LoadModel model;
  model.rate = 1.2;
  model.load_fraction = 0.9;
  core::PackDisks pack;
  const auto a = pack.allocate(core::normalize(cat, model));
  ASSERT_EQ(a.disk_count, 34u); // the layout the golden guard asserts

  ExperimentConfig cfg;
  cfg.catalog = &cat;
  cfg.mapping = a.disk_of;
  cfg.num_disks = a.disk_count;
  cfg.workload = WorkloadSpec::poisson(1.2, 800.0);
  cfg.seed = 42;

  expect_bit_exact(run_scenario(scenario), run_experiment(cfg));

  // The cached/LRU golden branch too.
  cfg.policy = PolicySpec::never();
  cfg.cache = CacheSpec::lru(util::gb(30.0));
  expect_bit_exact(
      run_scenario(scenario.with("policy", "never").with("cache", "lru:30g")),
      run_experiment(cfg));
}

TEST(ScenarioGolden, TraceByPathMatchesProgrammaticReplay) {
  // Save a small synthetic trace, then drive it via the parseable
  // trace:<stem> catalog — the satellite closing WorkloadSpec's trace hole.
  workload::SyntheticSpec spec = workload::SyntheticSpec::paper_table1();
  spec.n_files = 40;
  util::Rng rng{3};
  const auto cat = workload::generate_catalog(spec, rng);
  std::vector<workload::TraceRecord> records;
  util::Rng arrivals{11};
  double t = 0.0;
  for (int i = 0; i < 120; ++i) {
    t += arrivals.exponential(0.05);
    records.push_back(
        {t, static_cast<workload::FileId>(
                arrivals.uniform_int(0, spec.n_files - 1))});
  }
  const workload::Trace trace{cat, records};

  const auto stem = (std::filesystem::temp_directory_path() /
                     "spindown_scenario_golden_tmp")
                        .string();
  trace.save(stem);

  const auto scenario = ScenarioSpec::parse(
      "catalog=trace:" + stem +
      " placement=pack load=0.8 policy=fixed:120 workload=replay seed=5");

  // Programmatic equivalent over the *loaded* trace (CSV round-trips times
  // through text, so the loaded copy is the ground truth for both paths).
  const auto loaded = workload::Trace::load(stem);
  core::LoadModel model;
  model.rate = static_cast<double>(loaded.size()) /
               std::max(1.0, loaded.duration());
  model.load_fraction = 0.8;
  core::PackDisks pack;
  const auto a = pack.allocate(core::normalize(loaded.catalog(), model));
  ExperimentConfig cfg;
  cfg.catalog = &loaded.catalog();
  cfg.mapping = a.disk_of;
  cfg.num_disks = a.disk_count;
  cfg.policy = PolicySpec::fixed(120.0);
  cfg.workload = WorkloadSpec::replay(loaded);
  cfg.seed = 5;

  expect_bit_exact(run_scenario(scenario), run_experiment(cfg));

  // And the WorkloadSpec-level round-trip: trace:<stem> is parseable and
  // canonical.
  const auto wl = WorkloadSpec::parse("trace:" + stem);
  EXPECT_EQ(wl.spec(), "trace:" + stem);
  ASSERT_NE(wl.trace, nullptr);
  EXPECT_EQ(wl.trace->size(), loaded.size());

  std::filesystem::remove(stem + ".catalog.csv");
  std::filesystem::remove(stem + ".trace.csv");
}

} // namespace
} // namespace spindown::sys
